(** Injectable fabric faults.

    Every engine owns one [Fabric.t] (like its {!Probe.t}): a table of
    directed link faults keyed by [(src host id, dst host id)] plus a set
    of hosts whose permission-switch fast path is forced to fail. The
    RDMA layer consults it on every post; with no faults installed that
    costs one empty-hashtable check, and — crucially for determinism —
    no random draw, so fault-free runs consume exactly the random
    streams they did before this module existed.

    Faults are {e directed}: blocking [src -> dst] leaves [dst -> src]
    untouched, which is how asymmetric partitions (a leader that can
    write but not hear acks) are expressed. The fault-injection library
    ([lib/faults]) drives this table from declarative scenarios. *)

type fault = {
  mutable blocked : bool;  (** Packets never get through: RC retransmits
                               until the transport timeout fires. *)
  mutable extra_delay : int;  (** Added to the leg's wire time, ns. *)
  mutable loss : float;  (** Per-attempt drop probability; the simulated
                             NIC retries a bounded number of times, each
                             retry adding a retransmission delay. *)
  mutable dup : float;  (** Duplicate-delivery probability. Under RC the
                             responder discards duplicates by PSN, so a
                             duplicate only costs extra NIC/ack time. *)
}

type t

val create : unit -> t

val quiet : t -> bool
(** No faults installed at all. *)

val find : t -> src:int -> dst:int -> fault option
(** The fault installed on the directed link, if any. O(1), allocation
    free when the table is empty. *)

val edit : t -> src:int -> dst:int -> fault
(** Find-or-create the directed link's fault record. *)

val block : t -> src:int -> dst:int -> unit
val unblock : t -> src:int -> dst:int -> unit

val set_delay : t -> src:int -> dst:int -> int -> unit
(** Extra one-way delay in ns; 0 clears. Raises on negative values. *)

val set_loss : t -> src:int -> dst:int -> float -> unit
(** Per-attempt loss probability; 0 clears. Raises outside [0,1]. *)

val set_dup : t -> src:int -> dst:int -> float -> unit
(** Duplicate probability; 0 clears. Raises outside [0,1]. *)

val partition : t -> int list -> int list -> unit
(** [partition t a b] blocks both directions between every host in [a]
    and every host in [b] (a symmetric partition). *)

val heal : t -> unit
(** Remove every link fault (blocks, delays, loss, duplication). Forced
    permission failures are {e not} cleared; see
    {!force_perm_failure}. *)

val force_perm_failure : t -> pid:int -> bool -> unit
(** Force (or stop forcing) the permission-switch fast path
    ([Rdma.Perm.change_qp_flags]) to fail on host [pid], driving Mu onto
    the slow path (§7.3's permission-switch failure experiments). *)

val perm_failure_forced : t -> pid:int -> bool
