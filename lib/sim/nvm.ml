(* Simulated non-volatile memory: named byte regions keyed by owner id
   that survive host crashes. A host's volatile state dies with
   [Host.kill_host]; regions in this store belong to the *machine
   identity* (the replica id), so a restarted host re-opens them and
   finds the bytes its previous incarnation wrote.

   Write-through is modelled by handing out the region's backing bytes
   directly (see [Rdma.Mr.register ~backing]): every store into the
   mapped region *is* a store into NVM, with no copy and no extra
   virtual time. Latency of flushing to the persistence domain is
   modelled separately ([Calibration.pmem_flush], used by the
   persistent-log path); this module is only about survival. *)

type t = { regions : (int * string, Bytes.t) Hashtbl.t }

let create () = { regions = Hashtbl.create 16 }

let region t ~owner ~name ~size =
  if size <= 0 then invalid_arg "Nvm.region: size must be positive";
  match Hashtbl.find_opt t.regions (owner, name) with
  | Some b ->
    if Bytes.length b <> size then
      invalid_arg
        (Printf.sprintf "Nvm.region: %s/%d exists with size %d, requested %d" name owner
           (Bytes.length b) size);
    b
  | None ->
    let b = Bytes.make size '\000' in
    Hashtbl.replace t.regions (owner, name) b;
    b

let mem t ~owner ~name = Hashtbl.mem t.regions (owner, name)

let erase t ~owner ~name = Hashtbl.remove t.regions (owner, name)
