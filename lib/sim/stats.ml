let ns_to_us ns = float_of_int ns /. 1000.0

module Summary = struct
  type t = {
    mutable n : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
  }

  let create () = { n = 0; mean = 0.0; m2 = 0.0; min = infinity; max = neg_infinity }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x

  let count t = t.n
  let mean t = t.mean
  let stddev t = if t.n < 2 then 0.0 else sqrt (t.m2 /. float_of_int (t.n - 1))
  let min t = t.min
  let max t = t.max
end

module Samples = struct
  type t = {
    mutable data : int array;
    mutable size : int;
    mutable sorted : int array option;  (* cache, invalidated on add *)
  }

  let create () = { data = [||]; size = 0; sorted = None }

  let add t x =
    if t.size = Array.length t.data then begin
      let ncap = Stdlib.max 1024 (2 * Array.length t.data) in
      let ndata = Array.make ncap 0 in
      Array.blit t.data 0 ndata 0 t.size;
      t.data <- ndata
    end;
    t.data.(t.size) <- x;
    t.size <- t.size + 1;
    t.sorted <- None

  let count t = t.size
  let is_empty t = t.size = 0

  let sorted t =
    match t.sorted with
    | Some s -> s
    | None ->
      let s = Array.sub t.data 0 t.size in
      Array.sort compare s;
      t.sorted <- Some s;
      s

  let percentile t p =
    if t.size = 0 then invalid_arg "Samples.percentile: empty";
    if p < 0.0 || p > 100.0 then invalid_arg "Samples.percentile: p out of range";
    let s = sorted t in
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int t.size)) in
    let idx = Stdlib.max 0 (Stdlib.min (t.size - 1) (rank - 1)) in
    s.(idx)

  let median t = percentile t 50.0

  let percentile_opt t p =
    if t.size = 0 || p < 0.0 || p > 100.0 then None else Some (percentile t p)

  (* Linear-interpolation quantile (type 7, the R/numpy default): exact
     order statistics at h = q*(n-1) integral, interpolated between the
     surrounding samples otherwise. q=0 is the min, q=1 the max, and a
     single sample answers every q. *)
  let quantile_opt t q =
    if t.size = 0 || q < 0.0 || q > 1.0 || Float.is_nan q then None
    else begin
      let s = sorted t in
      let n = t.size in
      if n = 1 then Some (float_of_int s.(0))
      else begin
        let h = q *. float_of_int (n - 1) in
        let lo = int_of_float (Float.floor h) in
        let lo = Stdlib.max 0 (Stdlib.min (n - 2) lo) in
        let frac = h -. float_of_int lo in
        Some (float_of_int s.(lo) +. (frac *. float_of_int (s.(lo + 1) - s.(lo))))
      end
    end

  let median_opt t = percentile_opt t 50.0
  let min_opt t = if t.size = 0 then None else Some (sorted t).(0)
  let max_opt t = if t.size = 0 then None else Some (sorted t).(t.size - 1)

  let mean_opt t =
    if t.size = 0 then None
    else begin
      let sum = ref 0.0 in
      for i = 0 to t.size - 1 do
        sum := !sum +. float_of_int t.data.(i)
      done;
      Some (!sum /. float_of_int t.size)
    end

  let mean t =
    if t.size = 0 then invalid_arg "Samples.mean: empty";
    let sum = ref 0.0 in
    for i = 0 to t.size - 1 do
      sum := !sum +. float_of_int t.data.(i)
    done;
    !sum /. float_of_int t.size

  let min t = percentile t 0.0
  let max t = percentile t 100.0
  let to_list t = Array.to_list (Array.sub t.data 0 t.size)

  let pp_us ppf t =
    if t.size = 0 then Fmt.string ppf "<no samples>"
    else
      Fmt.pf ppf "%.2f (%.2f .. %.2f) us"
        (ns_to_us (median t))
        (ns_to_us (percentile t 1.0))
        (ns_to_us (percentile t 99.0))
end

module Histogram = struct
  type t = { bucket_width : int; counts : (int, int) Hashtbl.t; mutable total : int }

  let create ~bucket_width =
    if bucket_width <= 0 then invalid_arg "Histogram.create: width must be positive";
    { bucket_width; counts = Hashtbl.create 64; total = 0 }

  let add t x =
    let b = if x >= 0 then x / t.bucket_width else (x - t.bucket_width + 1) / t.bucket_width in
    let cur = Option.value (Hashtbl.find_opt t.counts b) ~default:0 in
    Hashtbl.replace t.counts b (cur + 1);
    t.total <- t.total + 1

  let buckets t =
    Hashtbl.fold (fun b c acc -> (b * t.bucket_width, c) :: acc) t.counts []
    |> List.sort compare

  let total t = t.total

  let pp ?(max_width = 50) () ppf t =
    let bs = buckets t in
    let peak = List.fold_left (fun acc (_, c) -> Stdlib.max acc c) 1 bs in
    List.iter
      (fun (start, c) ->
        let bar = Stdlib.max 1 (c * max_width / peak) in
        Fmt.pf ppf "%8.1f us | %-*s %d@."
          (ns_to_us start)
          max_width
          (String.make bar '#')
          c)
      bs
end
