(** Deterministic discrete-event simulation engine with cooperative fibers.

    The engine owns a virtual clock (integer nanoseconds) and a priority
    queue of pending events. Protocol code runs inside {e fibers}: OCaml 5
    effect-based coroutines that suspend on {!sleep}, channel receives,
    ivar reads, and RDMA completions. A fiber segment runs to completion
    before any other event fires, so each segment is atomic with respect to
    simulated concurrency — exactly the semantics of a pinned thread that
    only observes the outside world through explicit waits.

    Determinism: two runs with equal seeds execute identical event orders.
    Events scheduled for the same instant fire in scheduling order. *)

type t

exception Fiber_crash of string * exn
(** Raised out of {!run} when a fiber raises; carries the fiber name. *)

val create : ?seed:int64 -> unit -> t
(** Fresh engine at time 0. [seed] (default 1) seeds the root PRNG. *)

val now : t -> int
(** Current virtual time in nanoseconds. *)

val rng : t -> Rng.t
(** The engine's root PRNG. Components should derive their own streams via
    {!Rng.split}. *)

val fabric : t -> Fabric.t
(** The engine's fault-injection table, consulted by the RDMA layer on
    every post. Empty by default; see {!Fabric}. *)

val nvm : t -> Nvm.t
(** The engine's simulated non-volatile memory: per-owner byte regions
    that survive {!Host.kill_host}, for crash-recovery experiments. *)

val schedule : t -> at:int -> (unit -> unit) -> unit
(** Schedule a thunk at an absolute time (>= [now]). *)

val schedule_after : t -> int -> (unit -> unit) -> unit
(** Schedule a thunk at [now + delay]. *)

val spawn : t -> ?name:string -> ?pid:int -> (unit -> unit) -> unit
(** Start a fiber at the current time. The body may use the suspension
    operations below. [pid] tags the fiber's probe events with a host id
    (default -1: no host); {!Host.spawn} passes its own id. *)

val run : ?until:int -> t -> unit
(** Execute events until the queue is empty, [until] is reached, or
    {!halt}. On normal return with [~until], {!now} is [until] even if
    the queue drained early — the engine has observed all of virtual
    time up to the limit, so back-to-back [run ~until] calls see a
    consistent monotone clock. After {!halt} (or an exception), {!now}
    stays at the last executed event. Re-entrant calls are not
    allowed. *)

val halt : t -> unit
(** Stop {!run} after the current event. *)

val pending_events : t -> int

(** {1 Profiling}

    Whole-run virtual-time attribution, consumed by the [profile]
    library. The engine attributes the interval between consecutive
    events to the identity that {e scheduled} the interval-ending event
    — (host pid, fiber id, open provenance-span stack) captured inside
    {!schedule} — so per-identity exclusive times sum exactly to the
    run's span. With no profiler attached every hook site is a single
    option check and allocates nothing; with one attached, each
    scheduled event carries one extra closure. Attaching a profiler
    never touches any PRNG and emits no probe events, so a profiled
    run's event order, trace bytes and PRNG streams are byte-identical
    to the unprofiled run. *)

type profiler = {
  prof_event : now:int -> unit;
      (** The run loop advanced the clock to [now]; a thunk fires next.
          Accumulate [now - last] as the pending interval. *)
  prof_attr : pid:int -> tid:int -> spans:int list -> unit;
      (** Claim the pending interval for this scheduling identity.
          [spans] is innermost-first. Called by the scheduled thunk's
          wrapper, after {!prof_event} for the same instant. *)
  prof_fiber : tid:int -> pid:int -> name:string -> unit;
      (** A fiber was spawned (names the [tid]). *)
  prof_span : id:int -> name:string -> unit;
      (** A provenance span id was allocated (names the [id]). *)
  prof_host : pid:int -> name:string -> unit;
      (** A host announced its name (via {!trace_meta_process}). *)
}

val set_profiler : t -> profiler -> unit
(** Attach a profiler. Attach before scheduling any work: events already
    queued are not wrapped, and their intervals fall into the
    profiler's idle bucket rather than a fiber's. *)

val clear_profiler : t -> unit

val profiled : t -> bool
(** [true] iff a profiler is attached. *)

type selfcost
(** Stride-sampled wall-clock accounting of the engine's own event
    queue (push + pop). Wall-clock readings never feed the virtual
    clock, so sampling cannot perturb the simulation. The numbers are
    volatile: never byte-compare them. *)

val selfcost_create : ?stride:int -> clock:(unit -> float) -> unit -> selfcost
(** [stride] (default 64): measure one queue op in [stride]. *)

val set_selfcost : t -> selfcost -> unit
val clear_selfcost : t -> unit

val selfcost_queue : selfcost -> int * int * float
(** [(ops, sampled, wall_s)]: total queue ops, ops measured, and wall
    seconds summed over the measured ops. Extrapolate with
    [wall_s *. float ops /. float sampled]. *)

(** {1 Telemetry}

    Like tracing, telemetry is opt-in: with no registry attached every
    instrumented site in the engine (and in components that consult
    {!metrics} at creation time) costs a single option check. *)

val set_metrics : t -> Telemetry.Registry.t -> unit
(** Attach a metrics registry. The engine registers [sim_events_total],
    [sim_event_queue_depth] and [sim_fibers_spawned_total]; components
    created afterwards resolve their own instruments via {!metrics}. *)

val metrics : t -> Telemetry.Registry.t option

(** {1 Tracing}

    Every engine owns a {!Probe.t}. With no sink installed (the default),
    every [trace_*] call below is a single option check; the [trace]
    library installs a sink to record structured traces. Events are
    stamped with the virtual clock, so equal seeds yield identical event
    streams. Emitting never perturbs the simulation. *)

val probe : t -> Probe.t
(** The engine's probe; install a sink with {!Probe.set_sink}. *)

val traced : t -> bool
(** [true] iff a sink is installed. Guard argument-list construction on
    hot paths with this. *)

val current_fiber : t -> int
(** Id of the fiber whose segment is executing (0 = scheduler). *)

val trace_instant :
  t -> ?cat:string -> ?pid:int -> ?tid:int -> ?args:(string * string) list -> string -> unit

val trace_begin :
  t -> ?cat:string -> ?pid:int -> ?tid:int -> ?args:(string * string) list -> string -> unit

val trace_end :
  t -> ?cat:string -> ?pid:int -> ?tid:int -> ?args:(string * string) list -> string -> unit

val trace_async_begin :
  t -> ?cat:string -> ?pid:int -> ?args:(string * string) list -> id:int -> string -> unit
(** Async spans pair by (cat, name, id) and may end on a different fiber
    than they began (e.g. an RDMA post and its completion). *)

val trace_async_end :
  t -> ?cat:string -> ?pid:int -> ?args:(string * string) list -> id:int -> string -> unit

val trace_counter : t -> ?cat:string -> ?pid:int -> string -> value:int -> unit

val trace_meta_process : t -> pid:int -> string -> unit
(** Name a host for trace viewers; emitted by {!Host.create}. *)

val trace_meta_thread : t -> pid:int -> tid:int -> string -> unit

val trace_span :
  t -> ?cat:string -> ?pid:int -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [trace_span t ~cat name f] brackets [f] in a begin/end pair; the end
    event is emitted even when [f] raises. When no sink is installed this
    is exactly [f ()]. *)

(** {1 Provenance}

    Per-request causal spans, layered on the probe: spans and their causal
    edges are emitted as [Instant] events in cat ["prov"], reconstructed
    offline by the [provenance] library. Off by default; until
    {!set_provenance} opts in {e and} a sink is installed, every call below
    is a single bool check, no span ids are allocated, and traces are
    byte-identical to a build without instrumentation. Nothing here touches
    any PRNG. *)

val set_provenance : t -> bool -> unit
(** Enable/disable provenance span emission. *)

val provenance_on : t -> bool
(** [true] iff provenance is enabled and a probe sink {e or a profiler}
    is installed (the profiler consumes span stacks as part of its
    attribution identity; with no sink the span events themselves go
    nowhere). Guard argument construction on hot paths with this. *)

val current_span : t -> int
(** Innermost open {!with_span} span of the executing fiber (0 = none).
    Fiber-local: tracked per fiber across suspensions. *)

val span_open : t -> ?pid:int -> ?parent:int -> ?args:(string * string) list -> string -> int
(** Open a {e detached} span and return its id (0 when provenance is off).
    [parent] defaults to {!current_span}. Detached spans may be closed from
    a different fiber (e.g. an RDMA post closed by its completion) and may
    overlap their siblings; the caller owns the id and must {!span_close}
    it. *)

val span_close : t -> ?pid:int -> ?args:(string * string) list -> int -> unit
(** Close a span by id; extra [args] (e.g. a completion status) attach to
    the end event. No-op for id 0. *)

val span_point : t -> ?pid:int -> ?args:(string * string) list -> span:int -> string -> unit
(** Attach an instantaneous named point to a span (e.g. a client retry). *)

val span_edge : t -> ?pid:int -> kind:string -> src:int -> dst:int -> unit -> unit
(** Record a causal edge between two spans (e.g. ["batched_into"],
    ["blocked_by"]). No-op when either end is 0. *)

val with_span : t -> ?pid:int -> ?args:(string * string) list -> string -> (int -> 'a) -> 'a
(** [with_span t name f] runs [f id] inside a stack-scoped span: the span
    becomes {!current_span} for the dynamic extent of [f] (parenting both
    nested [with_span]s and detached {!span_open}s), and is closed when [f]
    returns or raises. [f] receives 0 when provenance is off. *)

val span_scope : t -> ?pid:int -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** {!with_span} when the body does not need the span id. *)

val span_stacks_live : t -> int
(** Number of fibers with an open {!with_span} stack — bounded by live
    fibers, not by fibers ever created (exposed for leak regression
    tests). *)

(** {1 Fiber operations} — valid only inside a fiber body. *)

val suspend : (('a -> unit) -> unit) -> 'a
(** [suspend register] captures the current continuation, passes a one-shot
    [resume] function to [register], and suspends. Calling [resume v]
    schedules the fiber to continue with [v] at the engine's current time.
    The building block for all other waiting primitives. *)

val sleep : t -> int -> unit
(** Suspend for the given number of virtual nanoseconds. *)

val yield : t -> unit
(** Suspend and resume at the same instant, after already-queued events. *)

(** Write-once cell; readers block until filled. *)
module Ivar : sig
  type 'a ivar

  val create : t -> 'a ivar
  val fill : 'a ivar -> 'a -> unit
  (** Fill the cell, waking all readers. Raises [Invalid_argument] if
      already filled. *)

  val try_fill : 'a ivar -> 'a -> bool
  (** Like {!fill} but returns [false] instead of raising when full. *)

  val read : 'a ivar -> 'a
  (** Block until filled (immediate if already filled). *)

  val peek : 'a ivar -> 'a option
  val is_filled : 'a ivar -> bool
end

(** Unbounded FIFO channel between fibers. *)
module Chan : sig
  type 'a chan

  val create : t -> 'a chan
  val send : 'a chan -> 'a -> unit
  val recv : 'a chan -> 'a
  (** Block until an element is available. *)

  val recv_timeout : 'a chan -> int -> 'a option
  (** [recv_timeout c ns] waits at most [ns] virtual nanoseconds; [None] on
      timeout. *)

  val poll : 'a chan -> 'a option
  (** Non-blocking receive. *)

  val length : 'a chan -> int
end
