type fault = {
  mutable blocked : bool;
  mutable extra_delay : int;
  mutable loss : float;
  mutable dup : float;
}

type t = {
  links : (int * int, fault) Hashtbl.t;
  perm_fail : (int, unit) Hashtbl.t;
}

let create () = { links = Hashtbl.create 16; perm_fail = Hashtbl.create 4 }

let quiet t = Hashtbl.length t.links = 0 && Hashtbl.length t.perm_fail = 0

let find t ~src ~dst =
  if Hashtbl.length t.links = 0 then None else Hashtbl.find_opt t.links (src, dst)

let edit t ~src ~dst =
  match Hashtbl.find_opt t.links (src, dst) with
  | Some f -> f
  | None ->
    let f = { blocked = false; extra_delay = 0; loss = 0.; dup = 0. } in
    Hashtbl.replace t.links (src, dst) f;
    f

(* Entries that carry no fault are removed so [find] (and therefore the hot
   post path) stays on its empty-table fast path after a heal. *)
let gc t ~src ~dst =
  match Hashtbl.find_opt t.links (src, dst) with
  | Some f when (not f.blocked) && f.extra_delay = 0 && f.loss = 0. && f.dup = 0. ->
    Hashtbl.remove t.links (src, dst)
  | Some _ | None -> ()

let block t ~src ~dst = (edit t ~src ~dst).blocked <- true

let unblock t ~src ~dst =
  (match Hashtbl.find_opt t.links (src, dst) with
  | Some f -> f.blocked <- false
  | None -> ());
  gc t ~src ~dst

let set_delay t ~src ~dst ns =
  if ns < 0 then invalid_arg "Fabric.set_delay: negative delay";
  (edit t ~src ~dst).extra_delay <- ns;
  gc t ~src ~dst

let check_prob name p =
  if not (p >= 0. && p <= 1.) then invalid_arg (name ^ ": probability outside [0,1]")

let set_loss t ~src ~dst p =
  check_prob "Fabric.set_loss" p;
  (edit t ~src ~dst).loss <- p;
  gc t ~src ~dst

let set_dup t ~src ~dst p =
  check_prob "Fabric.set_dup" p;
  (edit t ~src ~dst).dup <- p;
  gc t ~src ~dst

let partition t a b =
  List.iter
    (fun x ->
      List.iter
        (fun y ->
          if x <> y then begin
            block t ~src:x ~dst:y;
            block t ~src:y ~dst:x
          end)
        b)
    a

let heal t = Hashtbl.reset t.links

let force_perm_failure t ~pid forced =
  if forced then Hashtbl.replace t.perm_fail pid ()
  else Hashtbl.remove t.perm_fail pid

let perm_failure_forced t ~pid =
  Hashtbl.length t.perm_fail > 0 && Hashtbl.mem t.perm_fail pid
