(* Profiler hooks: the whole-run virtual-time profiler (lib/profile)
   registers one of these. The engine attributes the interval between
   consecutive events to the identity captured when the interval-ending
   event was scheduled: [schedule] wraps the thunk with a closure that
   carries (pid, fiber, open span stack), the run loop announces each
   clock advance through [prof_event], and the wrapper claims the
   accumulated interval through [prof_attr] before running the real
   thunk. Everything is a single option check when no profiler is
   attached. *)
type profiler = {
  prof_event : now:int -> unit;
      (* run loop: clock advanced to [now], a thunk is about to fire *)
  prof_attr : pid:int -> tid:int -> spans:int list -> unit;
      (* claim the pending interval for this identity (innermost span first) *)
  prof_fiber : tid:int -> pid:int -> name:string -> unit;
  prof_span : id:int -> name:string -> unit;
  prof_host : pid:int -> name:string -> unit;
}

(* Simulator self-cost sampling: wall-clock spent in the event queue,
   stride-sampled so a profiled run stays close to full speed. Queue
   push/pop are allocation-free, so only wall time is measured here;
   allocation attribution for the observability layers happens in their
   own wrappers (Monitor.Overhead.Attached). Wall-clock never feeds the
   virtual clock, so sampling cannot perturb the simulation — it only
   slows it. *)
type selfcost = {
  sc_clock : unit -> float;
  sc_stride : int;
  sc_bias : float; (* wall seconds an empty clock-pair measurement costs *)
  mutable sc_arm : int; (* countdown to the next measured op *)
  mutable sc_queue_ops : int; (* all queue ops (push + pop) *)
  mutable sc_queue_sampled : int; (* ops actually measured *)
  mutable sc_queue_wall : float; (* wall seconds over the sampled ops *)
}

(* A queue op costs tens of ns; the clock pair around it can cost as
   much. Calibrate the empty-measurement floor and subtract it from
   every sample, or the extrapolation charges the clock to the queue. *)
let selfcost_calibrate clock =
  let best = ref infinity in
  for _ = 1 to 128 do
    let c0 = clock () in
    let d = clock () -. c0 in
    if d < !best then best := d
  done;
  !best

let selfcost_create ?(stride = 64) ~clock () =
  if stride <= 0 then invalid_arg "Engine.selfcost_create: stride must be positive";
  {
    sc_clock = clock;
    sc_stride = stride;
    sc_bias = selfcost_calibrate clock;
    sc_arm = stride;
    sc_queue_ops = 0;
    sc_queue_sampled = 0;
    sc_queue_wall = 0.0;
  }

let selfcost_queue sc = (sc.sc_queue_ops, sc.sc_queue_sampled, sc.sc_queue_wall)

type t = {
  mutable now : int;
  mutable seq : int;
  events : (unit -> unit) Wheel.t;
  root_rng : Rng.t;
  mutable halted : bool;
  mutable running : bool;
  probe : Probe.t;
  fabric : Fabric.t;
  nvm : Nvm.t;
  mutable next_fiber : int;
  mutable cur_fiber : int;
  mutable cur_pid : int;
  (* Provenance: per-request causal spans. Off by default; every span_*
     call below is a single bool check until [set_provenance] opts in AND
     a probe sink is installed, so fault-free runs with provenance off
     emit byte-identical traces and consume the same PRNG stream. *)
  mutable prov : bool;
  mutable next_span : int;
  span_stacks : (int, int list ref) Hashtbl.t; (* fiber id -> open span stack *)
  (* Telemetry: absent by default. [tel_on] is the flat-bool guard the
     hot loop checks before touching any handle, so a metrics-off run
     costs one load per event and allocates nothing. Handles are
     resolved once in [set_metrics]. *)
  mutable tel_on : bool;
  mutable reg : Telemetry.Registry.t option;
  mutable tel_events : Telemetry.Registry.counter option;
  mutable tel_depth : Telemetry.Registry.gauge option;
  mutable tel_fibers : Telemetry.Registry.counter option;
  (* Wheel-shape gauges (satellite of the profiler work): one gauge per
     wheel level plus overflow/past heap sizes. Packed in one array so
     the run loop updates them with plain field writes; empty when
     metrics are off. *)
  mutable tel_wheel : Telemetry.Registry.gauge array;
  (* Profiler: absent by default; every hook site below is one option
     check (no allocation) until [set_profiler] attaches one. *)
  mutable prof : profiler option;
  mutable selfcost : selfcost option;
}

exception Fiber_crash of string * exn

let () =
  Printexc.register_printer (function
    | Fiber_crash (name, exn) ->
      Some (Printf.sprintf "Fiber_crash(%s: %s)" name (Printexc.to_string exn))
    | _ -> None)

let create ?(seed = 1L) () =
  {
    now = 0;
    seq = 0;
    events = Wheel.create ();
    root_rng = Rng.create seed;
    halted = false;
    running = false;
    probe = Probe.create ();
    fabric = Fabric.create ();
    nvm = Nvm.create ();
    next_fiber = 0;
    cur_fiber = 0;
    cur_pid = -1;
    prov = false;
    next_span = 0;
    span_stacks = Hashtbl.create 64;
    tel_on = false;
    reg = None;
    tel_events = None;
    tel_depth = None;
    tel_fibers = None;
    tel_wheel = [||];
    prof = None;
    selfcost = None;
  }

let now t = t.now
let rng t = t.root_rng
let fabric t = t.fabric
let nvm t = t.nvm
let pending_events t = Wheel.length t.events

(* Telemetry ------------------------------------------------------------ *)

let set_metrics t reg =
  t.tel_on <- true;
  t.reg <- Some reg;
  t.tel_events <-
    Some (Telemetry.Registry.counter reg ~help:"Events executed by the engine" "sim_events_total");
  t.tel_depth <-
    Some (Telemetry.Registry.gauge reg ~help:"Pending events in the queue" "sim_event_queue_depth");
  t.tel_fibers <-
    Some (Telemetry.Registry.counter reg ~help:"Fibers spawned" "sim_fibers_spawned_total");
  t.tel_wheel <-
    Array.init 6 (fun i ->
        if i < 4 then
          Telemetry.Registry.gauge reg ~help:"Events stored at this wheel level"
            ~labels:[ ("level", string_of_int i) ]
            "sim_wheel_level_events"
        else if i = 4 then
          Telemetry.Registry.gauge reg ~help:"Events beyond the wheel horizon"
            "sim_wheel_overflow_events"
        else
          Telemetry.Registry.gauge reg ~help:"Events behind the wheel clock"
            "sim_wheel_past_events")

let metrics t = t.reg

(* Profiler ------------------------------------------------------------- *)

let set_profiler t p = t.prof <- Some p
let clear_profiler t = t.prof <- None
let profiled t = match t.prof with Some _ -> true | None -> false
let set_selfcost t sc = t.selfcost <- Some sc
let clear_selfcost t = t.selfcost <- None

(* Tracing ------------------------------------------------------------- *)

let probe t = t.probe
let traced t = Probe.enabled t.probe
let current_fiber t = t.cur_fiber

let emit t ~kind ?(cat = "sim") ?pid ?tid ?(id = 0) ?(args = []) name =
  match Probe.sink t.probe with
  | None -> ()
  | Some f ->
    f
      {
        Probe.ts = t.now;
        kind;
        name;
        cat;
        pid = (match pid with Some p -> p | None -> t.cur_pid);
        tid = (match tid with Some x -> x | None -> t.cur_fiber);
        id;
        args;
      }

let trace_instant t ?cat ?pid ?tid ?args name =
  emit t ~kind:Probe.Instant ?cat ?pid ?tid ?args name

let trace_begin t ?cat ?pid ?tid ?args name =
  emit t ~kind:Probe.Span_begin ?cat ?pid ?tid ?args name

let trace_end t ?cat ?pid ?tid ?args name =
  emit t ~kind:Probe.Span_end ?cat ?pid ?tid ?args name

let trace_async_begin t ?cat ?pid ?args ~id name =
  emit t ~kind:Probe.Async_begin ?cat ?pid ~id ?args name

let trace_async_end t ?cat ?pid ?args ~id name =
  emit t ~kind:Probe.Async_end ?cat ?pid ~id ?args name

(* The [~args] list (and its [string_of_int]) must only be built once a
   sink is known to exist — counters sit on the commit hot path and an
   untraced run must not allocate here. *)
let trace_counter t ?cat ?pid name ~value =
  if Probe.enabled t.probe then
    emit t ~kind:Probe.Counter ?cat ?pid ~args:[ ("value", string_of_int value) ] name

let trace_meta_process t ~pid name =
  (match t.prof with Some p -> p.prof_host ~pid ~name | None -> ());
  emit t ~kind:Probe.Meta_process ~pid ~tid:0 name
let trace_meta_thread t ~pid ~tid name = emit t ~kind:Probe.Meta_thread ~pid ~tid name

let trace_span t ?cat ?pid ?args name f =
  if not (Probe.enabled t.probe) then f ()
  else begin
    trace_begin t ?cat ?pid ?args name;
    Fun.protect ~finally:(fun () -> trace_end t ?cat ?pid name) f
  end

(* Provenance -------------------------------------------------------------

   Spans are recorded as [Instant] events in cat "prov" ("span_begin" /
   "span_end" / "point" / "edge") so the existing Breakdown accumulator —
   which ignores instants — is unaffected, and the span tree is rebuilt
   offline by the [provenance] library from the trace ring. Span ids are
   allocated only while provenance is on; allocation order follows the
   (deterministic) event order, so equal seeds yield equal ids. *)

let set_provenance t on = t.prov <- on

(* An attached profiler also consumes span stacks (they are the third
   component of its attribution identity), so provenance machinery runs
   for it even with no probe sink installed — span ids are allocated in
   deterministic event order and touch no PRNG, and [emit] without a
   sink is a no-op, so this changes no trace bytes. *)
let provenance_on t =
  t.prov && (Probe.enabled t.probe || match t.prof with Some _ -> true | None -> false)

let span_stack t =
  match Hashtbl.find_opt t.span_stacks t.cur_fiber with
  | Some s -> s
  | None ->
    let s = ref [] in
    Hashtbl.replace t.span_stacks t.cur_fiber s;
    s

let current_span t =
  match Hashtbl.find_opt t.span_stacks t.cur_fiber with
  | Some { contents = s :: _ } -> s
  | _ -> 0

let span_open t ?pid ?parent ?(args = []) name =
  if not (provenance_on t) then 0
  else begin
    t.next_span <- t.next_span + 1;
    let id = t.next_span in
    (match t.prof with Some p -> p.prof_span ~id ~name | None -> ());
    let parent = match parent with Some p -> p | None -> current_span t in
    emit t ~kind:Probe.Instant ~cat:"prov" ?pid
      ~args:
        (("span", string_of_int id)
        :: ("parent", string_of_int parent)
        :: ("name", name) :: args)
      "span_begin";
    id
  end

let span_close t ?pid ?(args = []) id =
  if provenance_on t && id <> 0 then
    emit t ~kind:Probe.Instant ~cat:"prov" ?pid
      ~args:(("span", string_of_int id) :: args)
      "span_end"

let span_point t ?pid ?(args = []) ~span name =
  if provenance_on t && span <> 0 then
    emit t ~kind:Probe.Instant ~cat:"prov" ?pid
      ~args:(("span", string_of_int span) :: ("name", name) :: args)
      "point"

let span_edge t ?pid ~kind ~src ~dst () =
  if provenance_on t && src <> 0 && dst <> 0 then
    emit t ~kind:Probe.Instant ~cat:"prov" ?pid
      ~args:
        [ ("src", string_of_int src); ("dst", string_of_int dst); ("kind", kind) ]
      "edge"

let with_span t ?pid ?args name f =
  if not (provenance_on t) then f 0
  else begin
    (* Stack-scoped spans are tagged sync=1: they nest strictly within the
       opening fiber, so the analyzer can partition a parent's duration
       over them. Detached [span_open] spans (RDMA posts, requests) may
       overlap siblings and are excluded from that partition. *)
    let args = ("sync", "1") :: Option.value args ~default:[] in
    let id = span_open t ?pid ~args name in
    let stack = span_stack t in
    stack := id :: !stack;
    Fun.protect
      ~finally:(fun () ->
        (match !stack with s :: rest when s = id -> stack := rest | _ -> ());
        (* The finally runs in the opening fiber's segment, so
           [t.cur_fiber] is the key [span_stack] registered the ref
           under; dropping the entry when the stack empties keeps the
           table bounded by fibers with an open span rather than by
           every fiber that ever opened one. *)
        if !stack = [] then Hashtbl.remove t.span_stacks t.cur_fiber;
        span_close t ?pid id)
      (fun () -> f id)
  end

let span_stacks_live t = Hashtbl.length t.span_stacks

(* Short-circuit before wrapping [f]: the closure below must not be
   built when provenance is off — this runs on the fiber hot path. *)
let span_scope t ?pid ?args name f =
  if not (provenance_on t) then f () else with_span t ?pid ?args name (fun _ -> f ())

(* Profiling wrap: capture the scheduling identity (host, fiber, open
   span stack — an immutable list snapshot) and claim the inter-event
   interval for it just before the real thunk runs. Attribution at
   schedule time is what makes exclusive times exact: virtual time
   elapses *between* events, and the interval ending at this event is
   precisely the wait this identity asked for (a sleep, an RDMA delay,
   a timer). *)
let[@inline never] prof_wrap t (p : profiler) thunk =
  let pid = t.cur_pid and tid = t.cur_fiber in
  let spans =
    match Hashtbl.find_opt t.span_stacks t.cur_fiber with Some s -> !s | None -> []
  in
  fun () ->
    p.prof_attr ~pid ~tid ~spans;
    thunk ()

let schedule t ~at thunk =
  let at = if at < t.now then t.now else at in
  t.seq <- t.seq + 1;
  let thunk = match t.prof with None -> thunk | Some p -> prof_wrap t p thunk in
  match t.selfcost with
  | None -> Wheel.push t.events ~key:at ~seq:t.seq thunk
  | Some sc ->
    sc.sc_queue_ops <- sc.sc_queue_ops + 1;
    sc.sc_arm <- sc.sc_arm - 1;
    if sc.sc_arm > 0 then Wheel.push t.events ~key:at ~seq:t.seq thunk
    else begin
      sc.sc_arm <- sc.sc_stride;
      let c0 = sc.sc_clock () in
      Wheel.push t.events ~key:at ~seq:t.seq thunk;
      sc.sc_queue_wall <-
        sc.sc_queue_wall +. Float.max 0.0 (sc.sc_clock () -. c0 -. sc.sc_bias);
      sc.sc_queue_sampled <- sc.sc_queue_sampled + 1
    end

let schedule_after t delay thunk = schedule t ~at:(t.now + delay) thunk
let halt t = t.halted <- true

(* Fibers -------------------------------------------------------------- *)

type _ Effect.t +=
  | Suspend : (('a -> unit) -> unit) -> 'a Effect.t
  | Sleep : int -> unit Effect.t

let suspend register = Effect.perform (Suspend register)

let spawn t ?(name = "fiber") ?(pid = -1) f =
  t.next_fiber <- t.next_fiber + 1;
  if t.tel_on then
    (match t.tel_fibers with Some c -> Telemetry.Registry.Counter.inc c | None -> ());
  let fid = t.next_fiber in
  (match t.prof with Some p -> p.prof_fiber ~tid:fid ~pid ~name | None -> ());
  if traced t then begin
    trace_meta_thread t ~pid ~tid:fid name;
    trace_instant t ~pid ~tid:fid ~args:[ ("name", name) ] "fiber_spawn"
  end;
  (* Fiber identity is tracked across suspensions so probe events emitted
     from inside a segment carry the right (pid, tid) by default. A segment
     runs to completion before any other event fires, so save/restore
     around each segment is exact; the restore is inlined (rather than a
     [Fun.protect ~finally] pair) so a resume costs one event closure and
     nothing else. *)
  let handler : (unit, unit) Effect.Deep.handler =
    {
      retc = (fun () -> ());
      exnc = (fun exn -> raise (Fiber_crash (name, exn)));
      effc =
        (fun (type b) (eff : b Effect.t) ->
          match eff with
          | Sleep d ->
            (* [sleep] keeps the same two-event shape as the generic path
               below — a timer event that then re-queues the continuation
               behind everything already due at the wake instant — so the
               event sequence (and therefore any same-seed trace) is
               byte-identical to the [suspend]-based implementation it
               replaces. What it saves is the register/resume closure
               pair and the one-shot guard per call. *)
            Some
              (fun (k : (b, _) Effect.Deep.continuation) ->
                if traced t then trace_instant t "fiber_park";
                schedule t ~at:(t.now + d) (fun () ->
                    schedule t ~at:t.now (fun () ->
                        t.cur_fiber <- fid;
                        t.cur_pid <- pid;
                        match Effect.Deep.continue k () with
                        | () ->
                          t.cur_fiber <- 0;
                          t.cur_pid <- -1
                        | exception e ->
                          t.cur_fiber <- 0;
                          t.cur_pid <- -1;
                          raise e)))
          | Suspend register ->
            Some
              (fun (k : (b, _) Effect.Deep.continuation) ->
                if traced t then trace_instant t "fiber_park";
                let resumed = ref false in
                let resume v =
                  if !resumed then invalid_arg "Engine: fiber resumed twice";
                  resumed := true;
                  schedule t ~at:t.now (fun () ->
                      t.cur_fiber <- fid;
                      t.cur_pid <- pid;
                      match Effect.Deep.continue k v with
                      | () ->
                        t.cur_fiber <- 0;
                        t.cur_pid <- -1
                      | exception e ->
                        t.cur_fiber <- 0;
                        t.cur_pid <- -1;
                        raise e)
                in
                register resume)
          | _ -> None);
    }
  in
  schedule t ~at:t.now (fun () ->
      t.cur_fiber <- fid;
      t.cur_pid <- pid;
      match Effect.Deep.match_with f () handler with
      | () ->
        t.cur_fiber <- 0;
        t.cur_pid <- -1
      | exception e ->
        t.cur_fiber <- 0;
        t.cur_pid <- -1;
        raise e)

let sleep (_ : t) delay = Effect.perform (Sleep delay)
let yield t = sleep t 0

let run ?until t =
  if t.running then invalid_arg "Engine.run: already running";
  t.running <- true;
  t.halted <- false;
  let limit = match until with None -> max_int | Some u -> u in
  let rec loop () =
    if not t.halted then begin
      let at = Wheel.next_key t.events in
      if at = max_int then () (* queue drained *)
      else if at > limit then t.now <- limit
      else begin
        let thunk =
          match t.selfcost with
          | None -> Wheel.pop_exn t.events
          | Some sc ->
            sc.sc_queue_ops <- sc.sc_queue_ops + 1;
            sc.sc_arm <- sc.sc_arm - 1;
            if sc.sc_arm > 0 then Wheel.pop_exn t.events
            else begin
              sc.sc_arm <- sc.sc_stride;
              let c0 = sc.sc_clock () in
              let th = Wheel.pop_exn t.events in
              sc.sc_queue_wall <-
                sc.sc_queue_wall +. Float.max 0.0 (sc.sc_clock () -. c0 -. sc.sc_bias);
              sc.sc_queue_sampled <- sc.sc_queue_sampled + 1;
              th
            end
        in
        t.now <- at;
        if t.tel_on then begin
          (match t.tel_events with
          | Some c -> Telemetry.Registry.Counter.inc c
          | None -> ());
          (match t.tel_depth with
          | Some g -> Telemetry.Registry.Gauge.set g (Wheel.length t.events)
          | None -> ());
          let ws = t.tel_wheel in
          if Array.length ws = 6 then begin
            Telemetry.Registry.Gauge.set ws.(0) (Wheel.level_events t.events 0);
            Telemetry.Registry.Gauge.set ws.(1) (Wheel.level_events t.events 1);
            Telemetry.Registry.Gauge.set ws.(2) (Wheel.level_events t.events 2);
            Telemetry.Registry.Gauge.set ws.(3) (Wheel.level_events t.events 3);
            Telemetry.Registry.Gauge.set ws.(4) (Wheel.overflow_size t.events);
            Telemetry.Registry.Gauge.set ws.(5) (Wheel.past_size t.events)
          end
        end;
        (match t.prof with Some p -> p.prof_event ~now:at | None -> ());
        thunk ();
        loop ()
      end
    end
  in
  Fun.protect
    ~finally:(fun () -> t.running <- false)
    (fun () ->
      loop ();
      (* [run ~until] returning normally means the engine observed all of
         virtual time up to [limit]; advance the clock even when the queue
         drained early so back-to-back [run ~until] calls see a consistent
         monotone clock. A {!halt}ed run stops at the halting event's
         time. *)
      if (not t.halted) && limit <> max_int && t.now < limit then t.now <- limit)

(* Ivar ----------------------------------------------------------------- *)

module Ivar = struct
  type 'a state = Empty of ('a -> unit) list | Full of 'a
  type 'a ivar = { mutable state : 'a state }

  let create (_ : t) = { state = Empty [] }

  let try_fill iv v =
    match iv.state with
    | Full _ -> false
    | Empty waiters ->
      iv.state <- Full v;
      List.iter (fun w -> w v) (List.rev waiters);
      true

  let fill iv v = if not (try_fill iv v) then invalid_arg "Ivar.fill: already filled"

  let read iv =
    match iv.state with
    | Full v -> v
    | Empty _ ->
      suspend (fun resume ->
          match iv.state with
          | Full v -> resume v
          | Empty waiters -> iv.state <- Empty (resume :: waiters))

  let peek iv = match iv.state with Full v -> Some v | Empty _ -> None
  let is_filled iv = match iv.state with Full _ -> true | Empty _ -> false
end

(* Chan ----------------------------------------------------------------- *)

module Chan = struct
  (* A waiter is "done" once either a value was delivered to it or its
     timeout fired; both paths race and the flag makes them one-shot.

     Cells are mutable and recycled through a per-channel free list so a
     steady-state recv/send (or recv_timeout/send) cycle reuses one cell
     instead of allocating a record plus a [Queue] node each time. The
     waiter queue is an intrusive FIFO threaded through [next], with a
     per-channel sentinel [nil] standing for both "end of list" and
     "empty free list". Recycling discipline: a cell goes back on the
     free list only once nothing else can reach it — on dequeue for
     finished (timed-out) cells, and at the timer for cells whose value
     arrived before the timeout (the timer closure is the last reference
     then). A timed-out cell parked in the waiter queue is reclaimed by
     the next [wake_one] that walks past it. *)
  type 'a waiter = {
    mutable finished : bool;
    mutable has_timer : bool;
    mutable deliver : 'a -> unit;
    mutable next : 'a waiter;
  }

  type 'a chan = {
    engine : t;
    items : 'a Queue.t;
    nil : 'a waiter;
    mutable w_head : 'a waiter;
    mutable w_tail : 'a waiter;
    mutable free : 'a waiter;
  }

  let create engine =
    let rec nil = { finished = true; has_timer = false; deliver = ignore; next = nil } in
    { engine; items = Queue.create (); nil; w_head = nil; w_tail = nil; free = nil }

  let enqueue_waiter c w =
    w.next <- c.nil;
    if c.w_head == c.nil then c.w_head <- w else c.w_tail.next <- w;
    c.w_tail <- w

  (* Returns [c.nil] when no waiter is queued. *)
  let dequeue_waiter c =
    let w = c.w_head in
    if w != c.nil then begin
      c.w_head <- w.next;
      if c.w_head == c.nil then c.w_tail <- c.nil;
      w.next <- c.nil
    end;
    w

  let recycle c w =
    w.deliver <- ignore;
    (* drop the continuation *)
    w.has_timer <- false;
    w.next <- c.free;
    c.free <- w

  let alloc_waiter c ~has_timer deliver =
    let w = c.free in
    if w == c.nil then { finished = false; has_timer; deliver; next = c.nil }
    else begin
      c.free <- w.next;
      w.next <- c.nil;
      w.finished <- false;
      w.has_timer <- has_timer;
      w.deliver <- deliver;
      w
    end

  let rec wake_one c v =
    let w = dequeue_waiter c in
    if w == c.nil then Queue.push v c.items
    else if w.finished then begin
      (* Timed out earlier: its timer already fired, and it just left the
         waiter queue, so nothing references it any more. *)
      recycle c w;
      wake_one c v
    end
    else begin
      w.finished <- true;
      let deliver = w.deliver in
      (* A cell with a pending timer is still referenced by the timer
         closure; the timer recycles it when it fires. *)
      if not w.has_timer then recycle c w;
      deliver v
    end

  let send c v = wake_one c v

  let recv c =
    match Queue.take_opt c.items with
    | Some v -> v
    | None -> suspend (fun resume -> enqueue_waiter c (alloc_waiter c ~has_timer:false resume))

  let recv_timeout c timeout =
    match Queue.take_opt c.items with
    | Some v -> Some v
    | None ->
      suspend (fun resume ->
          let w = alloc_waiter c ~has_timer:true (fun v -> resume (Some v)) in
          enqueue_waiter c w;
          schedule_after c.engine timeout (fun () ->
              if w.finished then recycle c w (* value won the race; timer owns the cell *)
              else begin
                w.finished <- true;
                resume None
              end))

  let poll c = Queue.take_opt c.items
  let length c = Queue.length c.items
end
