(** Minimal binary min-heap specialised for the event queue.

    Elements are ordered by an integer key with an integer tiebreaker
    (insertion sequence), giving deterministic FIFO order among events
    scheduled for the same instant.

    The implementation keeps keys, sequence numbers and payloads in
    parallel arrays: a push/pop cycle allocates nothing beyond amortised
    array growth, and popped slots are cleared immediately so a payload
    (e.g. an event closure and everything it captures) never stays
    reachable from the heap after it has been removed. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> key:int -> seq:int -> 'a -> unit

val peek_key : 'a t -> (int * int) option
(** Key and sequence of the minimum element, if any. *)

val top_key : 'a t -> int
(** Key of the minimum element; [max_int] when empty. Allocation-free
    companion to {!peek_key} for hot loops. *)

val top_seq : 'a t -> int
(** Sequence of the minimum element; [max_int] when empty. *)

val top : 'a t -> 'a
(** The minimum element without removing it. Raises [Invalid_argument]
    when empty. *)

val drop : 'a t -> unit
(** Remove the minimum element (clearing its slot). Raises
    [Invalid_argument] when empty. [top] followed by [drop] is the
    allocation-free equivalent of {!pop}. *)

val pop : 'a t -> 'a option
(** Remove and return the minimum element. *)
