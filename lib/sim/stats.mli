(** Measurement statistics: online summaries, sample sets with percentiles,
    and fixed-width histograms.

    The paper reports median / 1-percentile / 99-percentile latencies over
    1 M samples (§7); {!Samples} reproduces those statistics, and
    {!Histogram} reproduces the fail-over distribution of Fig. 6. *)

(** Online mean/variance (Welford) without retaining samples. *)
module Summary : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val stddev : t -> float
  val min : t -> float
  val max : t -> float
end

(** Retained sample set (ints, typically nanoseconds) with percentiles. *)
module Samples : sig
  type t

  val create : unit -> t
  val add : t -> int -> unit
  val count : t -> int
  val is_empty : t -> bool

  val percentile : t -> float -> int
  (** [percentile t p] with [p] in [0, 100]; nearest-rank on the sorted
      samples. Raises [Invalid_argument] if empty. *)

  val percentile_opt : t -> float -> int option
  (** Total variant of {!percentile}: [None] when empty or [p] is outside
      [0, 100]. *)

  val quantile_opt : t -> float -> float option
  (** [quantile_opt t q] with [q] in [0, 1]; linear interpolation between
      order statistics (R type 7). [q = 0.] is the minimum, [q = 1.] the
      maximum, and a single sample answers every [q] with itself. [None]
      when empty or [q] is outside [0, 1] (including NaN). *)

  val median_opt : t -> int option
  val mean_opt : t -> float option
  val min_opt : t -> int option
  val max_opt : t -> int option

  val median : t -> int
  val mean : t -> float
  val min : t -> int
  val max : t -> int

  val to_list : t -> int list
  (** Samples in insertion order. *)

  val pp_us : t Fmt.t
  (** Render as "median (p1 .. p99) µs" — the paper's bar + error-bar
      format. *)
end

(** Fixed-width histogram over integer values. *)
module Histogram : sig
  type t

  val create : bucket_width:int -> t
  val add : t -> int -> unit
  val buckets : t -> (int * int) list
  (** [(bucket_start, count)] for non-empty buckets, ascending. *)

  val total : t -> int

  val pp : ?max_width:int -> unit -> t Fmt.t
  (** ASCII rendering, one row per bucket with a proportional bar. *)
end

val ns_to_us : int -> float
(** Nanoseconds to microseconds. *)
