(* Binary min-heap over (key, seq) with the payload kept out of the
   comparison path. Entries live in parallel arrays — an int array per
   ordering component and one [Obj.t] array for payloads — so a
   push/pop cycle allocates nothing (the boxed { key; seq; value }
   record of the original implementation cost four minor words per
   event on the engine hot path).

   The [Obj.t] payload array is created with an immediate dummy, so it
   is never a flat float array and stores to it are plain pointer (or
   immediate) writes; [push]/[pop] are the only readers and writers and
   always go through [Obj.repr]/[Obj.obj] at the boundary of the typed
   interface. Vacated slots are overwritten with the dummy immediately
   — a popped payload (an event closure and everything it captures)
   must not stay reachable from the heap's backing store. *)

let dummy : Obj.t = Obj.repr 0

type 'a t = {
  mutable keys : int array;
  mutable seqs : int array;
  mutable vals : Obj.t array;
  mutable size : int;
}

let create () = { keys = [||]; seqs = [||]; vals = [||]; size = 0 }
let length t = t.size
let is_empty t = t.size = 0

let grow t =
  let cap = Array.length t.keys in
  let ncap = if cap = 0 then 64 else cap * 2 in
  let nkeys = Array.make ncap 0 in
  let nseqs = Array.make ncap 0 in
  let nvals = Array.make ncap dummy in
  Array.blit t.keys 0 nkeys 0 t.size;
  Array.blit t.seqs 0 nseqs 0 t.size;
  Array.blit t.vals 0 nvals 0 t.size;
  t.keys <- nkeys;
  t.seqs <- nseqs;
  t.vals <- nvals

let[@inline] less t i j =
  t.keys.(i) < t.keys.(j) || (t.keys.(i) = t.keys.(j) && t.seqs.(i) < t.seqs.(j))

let[@inline] swap t i j =
  let k = t.keys.(i) and s = t.seqs.(i) and v = t.vals.(i) in
  t.keys.(i) <- t.keys.(j);
  t.seqs.(i) <- t.seqs.(j);
  t.vals.(i) <- t.vals.(j);
  t.keys.(j) <- k;
  t.seqs.(j) <- s;
  t.vals.(j) <- v

let push t ~key ~seq value =
  if t.size = Array.length t.keys then grow t;
  let i = ref t.size in
  t.keys.(!i) <- key;
  t.seqs.(!i) <- seq;
  t.vals.(!i) <- Obj.repr value;
  t.size <- t.size + 1;
  while
    !i > 0
    &&
    let parent = (!i - 1) / 2 in
    less t !i parent
  do
    let parent = (!i - 1) / 2 in
    swap t !i parent;
    i := parent
  done

let top_key t = if t.size = 0 then max_int else t.keys.(0)
let top_seq t = if t.size = 0 then max_int else t.seqs.(0)
let peek_key t = if t.size = 0 then None else Some (t.keys.(0), t.seqs.(0))

let sift_down t =
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < t.size && less t l !smallest then smallest := l;
    if r < t.size && less t r !smallest then smallest := r;
    if !smallest = !i then continue := false
    else begin
      swap t !smallest !i;
      i := !smallest
    end
  done

(* Remove the minimum without returning it. The vacated slot is cleared
   so the popped payload is unreachable from [t] the moment it leaves. *)
let drop t =
  if t.size = 0 then invalid_arg "Heap.drop: empty";
  t.size <- t.size - 1;
  if t.size > 0 then begin
    t.keys.(0) <- t.keys.(t.size);
    t.seqs.(0) <- t.seqs.(t.size);
    t.vals.(0) <- t.vals.(t.size)
  end;
  t.keys.(t.size) <- 0;
  t.seqs.(t.size) <- 0;
  t.vals.(t.size) <- dummy;
  if t.size > 1 then sift_down t

let top t =
  if t.size = 0 then invalid_arg "Heap.top: empty";
  (Obj.obj t.vals.(0) : 'a)

let pop t =
  if t.size = 0 then None
  else begin
    let v = (Obj.obj t.vals.(0) : 'a) in
    drop t;
    Some v
  end
