(** Hierarchical timing-wheel event queue.

    Drop-in replacement for {!Heap} on the engine hot path: elements
    are ordered by an integer key (virtual-time nanoseconds) with an
    integer sequence tiebreaker, and pops leave in exactly the same
    ascending [(key, seq)] total order the binary heap produced — the
    property that keeps same-seed simulation traces byte-identical.

    Four levels of 256 slots cover a 2^32-tick horizon with O(1)
    push and amortised-O(1) pop; events beyond the horizon wait in an
    overflow min-heap, and events pushed behind the wheel clock (which
    [peek_key]/[next_key] may advance past a [run ~until] limit) go to
    a small "past" heap that always drains first. Buckets are parallel
    int/payload arrays and a push/pop cycle allocates nothing; vacated
    payload slots are cleared immediately so retired event closures are
    never retained by the queue. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> key:int -> seq:int -> 'a -> unit
(** Keys may be arbitrary non-negative ints and need not be monotonic;
    [seq] must be globally monotonic across pushes (the engine's event
    sequence counter), which is what lets buckets stay sorted without
    comparisons. *)

val next_key : 'a t -> int
(** Key of the minimum element; [max_int] when empty. Allocation-free
    companion to {!peek_key} for hot loops. May advance the internal
    wheel clock (cascading upper levels down), which never changes the
    pop order. *)

val peek_key : 'a t -> (int * int) option
(** Key and sequence of the minimum element, if any. *)

val pop_exn : 'a t -> 'a
(** Remove and return the minimum element. Raises [Invalid_argument]
    when empty. Allocation-free. *)

val pop : 'a t -> 'a option
(** Remove and return the minimum element. *)

(** {1 Occupancy}

    Queue-shape introspection for the profiler and the monitor rules:
    how deep each wheel level sits and how much spills into the
    overflow/past heaps. Event counts per level are maintained
    incrementally, so the accessors below are allocation-free and safe
    to read per event (the engine exports them as telemetry gauges);
    {!stats} additionally derives occupied-slot counts from the
    occupancy bitmap and allocates its result. *)

val level_events : 'a t -> int -> int
(** Events currently stored at wheel level [l] (0..3). Allocation-free. *)

val past_size : 'a t -> int
(** Events in the behind-the-clock heap. Allocation-free. *)

val overflow_size : 'a t -> int
(** Events beyond the 2^32-tick horizon. Allocation-free. *)

type stats = {
  level_events : int array;  (** Events per level, index = level. *)
  level_slots : int array;  (** Occupied slots per level (of 256). *)
  past : int;
  overflow : int;
}

val stats : 'a t -> stats
(** Snapshot of the wheel's shape. Allocates; intended for sampling
    cadence, not the per-event hot path. *)
