(* Hierarchical timing-wheel event queue.

   Four levels of 256 slots over 1-ns ticks cover a 2^32 ns horizon;
   level [l] holds events whose key agrees with the wheel clock [now]
   on every bit above [8*(l+1)] but differs somewhere in bits
   [8*l .. 8*(l+1)-1] (test: [key lxor now < 1 lsl (8*(l+1))]). Events
   beyond the horizon wait in an overflow min-heap and are drained into
   the wheel when the clock reaches their 2^32-aligned region; events
   pushed behind [now] (possible after a peek advanced the wheel past a
   [run ~until] limit) go to a small "past" heap that always pops first.

   Determinism. Pops leave in exact ascending [(key, seq)] order — the
   same total order as the binary heap this structure replaced — by
   construction rather than by sorting:
   - a level-0 slot only ever holds one exact key between drains
     (level 0 spans one 256-tick revolution, and the clock crosses a
     revolution boundary only when level 0 is empty);
   - a bucket is only appended to by (a) direct pushes, whose seq is
     globally monotonic and therefore larger than anything already
     queued, and (b) a single cascade from the level above, which
     happens when the clock first enters the slot's span — before any
     direct push can target it — and which preserves the source
     bucket's insertion (= seq) order.
   So every bucket is seq-sorted at all times and the front of the
   current level-0 bucket is the global minimum.

   Allocation. Buckets are parallel int/int/[Obj.t] arrays (grown
   geometrically, never shrunk) and occupancy is a 1024-bit bitmap in
   32-bit words, so a push/pop cycle allocates nothing. Payload slots
   are overwritten with an immediate dummy the moment an event leaves
   (pop, cascade, drain) — a retired event closure must not stay
   reachable from the queue. The [Obj.t] payload arrays are created
   with an immediate witness, so they are never flat float arrays;
   [Obj.repr]/[Obj.obj] appear only at the typed API boundary. *)

let bits = 8
let slots = 1 lsl bits
let mask = slots - 1
let levels = 4
let horizon = 1 lsl (bits * levels)
let buckets = levels * slots
let dummy : Obj.t = Obj.repr 0

type 'a t = {
  mutable now : int; (* every wheel event has key >= now *)
  bkeys : int array array; (* bucket b = level*256 + slot *)
  bseqs : int array array;
  bvals : Obj.t array array;
  sizes : int array;
  occ : int array; (* occupancy bitmap, 32 bits per word *)
  mutable cur : int; (* level-0 bucket being drained, -1 if none *)
  mutable head : int; (* consumed prefix of [cur] *)
  mutable count : int; (* events in the wheel proper *)
  lvl : int array; (* events per level, maintained by place/cascade/pop *)
  past : Obj.t Heap.t;
  overflow : Obj.t Heap.t;
}

let create () =
  {
    now = 0;
    bkeys = Array.make buckets [||];
    bseqs = Array.make buckets [||];
    bvals = Array.make buckets [||];
    sizes = Array.make buckets 0;
    occ = Array.make (buckets / 32) 0;
    cur = -1;
    head = 0;
    count = 0;
    lvl = Array.make levels 0;
    past = Heap.create ();
    overflow = Heap.create ();
  }

let length t = t.count + Heap.length t.past + Heap.length t.overflow
let is_empty t = length t = 0

let[@inline] set_bit t b = t.occ.(b lsr 5) <- t.occ.(b lsr 5) lor (1 lsl (b land 31))
let[@inline] clear_bit t b = t.occ.(b lsr 5) <- t.occ.(b lsr 5) land lnot (1 lsl (b land 31))

let grow_bucket t b =
  let cap = Array.length t.bkeys.(b) in
  let ncap = if cap = 0 then 8 else cap * 2 in
  let nkeys = Array.make ncap 0 in
  let nseqs = Array.make ncap 0 in
  let nvals = Array.make ncap dummy in
  Array.blit t.bkeys.(b) 0 nkeys 0 t.sizes.(b);
  Array.blit t.bseqs.(b) 0 nseqs 0 t.sizes.(b);
  Array.blit t.bvals.(b) 0 nvals 0 t.sizes.(b);
  t.bkeys.(b) <- nkeys;
  t.bseqs.(b) <- nseqs;
  t.bvals.(b) <- nvals

(* Place an event already known to satisfy [now <= key < now + horizon
   region] into its level/slot. Does not touch [count]. *)
let place t ~key ~seq v =
  let x = key lxor t.now in
  let l =
    if x < 1 lsl bits then 0
    else if x < 1 lsl (2 * bits) then 1
    else if x < 1 lsl (3 * bits) then 2
    else 3
  in
  let b = (l * slots) + ((key lsr (l * bits)) land mask) in
  let n = t.sizes.(b) in
  if n = Array.length t.bkeys.(b) then grow_bucket t b;
  t.bkeys.(b).(n) <- key;
  t.bseqs.(b).(n) <- seq;
  t.bvals.(b).(n) <- v;
  t.sizes.(b) <- n + 1;
  t.lvl.(l) <- t.lvl.(l) + 1;
  if n = 0 then set_bit t b

let push t ~key ~seq value =
  let v = Obj.repr value in
  if key < t.now then Heap.push t.past ~key ~seq v
  else if key lxor t.now >= horizon then Heap.push t.overflow ~key ~seq v
  else begin
    place t ~key ~seq v;
    t.count <- t.count + 1
  end

(* First occupied slot of level [l] at index >= [from]; -1 if none. *)
let scan t l from =
  if from > mask then -1
  else begin
    let res = ref (-1) in
    let b = ref ((l * slots) + from) in
    let stop = (l * slots) + mask in
    while !res < 0 && !b <= stop do
      let rest = t.occ.(!b lsr 5) lsr (!b land 31) in
      if rest = 0 then b := ((!b lsr 5) + 1) lsl 5 (* next word *)
      else if rest land 1 = 1 then res := !b
      else incr b
    done;
    if !res < 0 then -1 else !res - (l * slots)
  end

(* Move every event of bucket [b] (level >= 1) one or more levels down,
   now that [t.now] sits at the start of the bucket's span. Preserves
   per-target-bucket seq order because the source is traversed in
   insertion order. *)
let cascade t b =
  let n = t.sizes.(b) in
  t.sizes.(b) <- 0;
  clear_bit t b;
  let src = b / slots in
  t.lvl.(src) <- t.lvl.(src) - n;
  let keys = t.bkeys.(b) and seqs = t.bseqs.(b) and vals = t.bvals.(b) in
  for i = 0 to n - 1 do
    let v = vals.(i) in
    vals.(i) <- dummy;
    place t ~key:keys.(i) ~seq:seqs.(i) v
  done

(* Advance to the next wheel event: leaves [cur]/[head] on its level-0
   bucket with [t.now] equal to its key and returns [true]; returns
   [false] when the wheel and overflow are both empty. *)
let rec locate t =
  if t.cur >= 0 && t.head < t.sizes.(t.cur) then true
  else begin
    if t.cur >= 0 then begin
      (* fully drained: retire the bucket *)
      t.sizes.(t.cur) <- 0;
      clear_bit t t.cur;
      t.cur <- -1;
      t.head <- 0
    end;
    if t.count > 0 then begin
      (* Level 0 holds only the current revolution, so scanning from
         [now]'s slot (inclusive — a same-instant push may have refilled
         it) forward is exhaustive. *)
      let s0 = scan t 0 (t.now land mask) in
      if s0 >= 0 then begin
        t.now <- t.now land lnot mask lor s0;
        t.cur <- s0;
        t.head <- 0;
        true
      end
      else begin
        (* Current revolution exhausted: enter the next occupied span of
           the closest level above, cascade it down, and rescan. The
           slot holding [now] itself is never occupied at level >= 1
           (its events would be lower-level by definition), hence the
           strict [+ 1]. *)
        let rec up l =
          if l >= levels then invalid_arg "Wheel: occupancy out of sync"
          else begin
            let sl = scan t l (((t.now lsr (l * bits)) land mask) + 1) in
            if sl < 0 then up (l + 1)
            else begin
              let keep = lnot ((1 lsl ((l + 1) * bits)) - 1) in
              t.now <- t.now land keep lor (sl lsl (l * bits));
              cascade t ((l * slots) + sl);
              locate t
            end
          end
        in
        up 1
      end
    end
    else if not (Heap.is_empty t.overflow) then begin
      (* Wheel empty: jump to the overflow's earliest region and drain
         everything that fits under the horizon from there. *)
      t.now <- Heap.top_key t.overflow;
      while
        (not (Heap.is_empty t.overflow)) && Heap.top_key t.overflow lxor t.now < horizon
      do
        let key = Heap.top_key t.overflow and seq = Heap.top_seq t.overflow in
        let v = Heap.top t.overflow in
        Heap.drop t.overflow;
        place t ~key ~seq v;
        t.count <- t.count + 1
      done;
      locate t
    end
    else false
  end

let next_key t =
  if Heap.length t.past > 0 then Heap.top_key t.past
  else if locate t then t.now
  else max_int

let peek_key t =
  if Heap.length t.past > 0 then Heap.peek_key t.past
  else if locate t then Some (t.now, t.bseqs.(t.cur).(t.head))
  else None

let pop_exn t =
  if Heap.length t.past > 0 then begin
    let v = Heap.top t.past in
    Heap.drop t.past;
    (Obj.obj v : 'a)
  end
  else if locate t then begin
    let b = t.cur and i = t.head in
    let v = t.bvals.(b).(i) in
    t.bvals.(b).(i) <- dummy;
    t.head <- i + 1;
    t.count <- t.count - 1;
    (* [cur] is always a level-0 bucket. *)
    t.lvl.(0) <- t.lvl.(0) - 1;
    (Obj.obj v : 'a)
  end
  else invalid_arg "Wheel.pop_exn: empty"

let pop t = if is_empty t then None else Some (pop_exn t)

(* --- occupancy ---------------------------------------------------------- *)

let level_events t l = t.lvl.(l)
let past_size t = Heap.length t.past
let overflow_size t = Heap.length t.overflow

type stats = {
  level_events : int array;
  level_slots : int array;
  past : int;
  overflow : int;
}

let stats t =
  let level_slots = Array.make levels 0 in
  (* Popcount over the occupancy bitmap, 8 words of 32 bits per level. *)
  for l = 0 to levels - 1 do
    let n = ref 0 in
    for w = l * slots / 32 to (((l + 1) * slots) / 32) - 1 do
      let x = ref t.occ.(w) in
      while !x <> 0 do
        x := !x land (!x - 1);
        incr n
      done
    done;
    level_slots.(l) <- !n
  done;
  {
    level_events = Array.copy t.lvl;
    level_slots;
    past = Heap.length t.past;
    overflow = Heap.length t.overflow;
  }
