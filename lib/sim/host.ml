type liveness = Running | Paused | Process_stopped | Host_dead

type t = {
  engine : Engine.t;
  calibration : Calibration.t;
  id : int;
  name : string;
  rng : Rng.t;
  mutable state : liveness;
  mutable resume_gate : unit Engine.Ivar.ivar;
  mutable cpu_since_jitter : int;
  mutable next_jitter_at : int;
  tel_jitter : Telemetry.Hdr.t option;
}

let schedule_next_jitter t =
  (* Exponentially-distributed CPU budget until the next descheduling
     event. *)
  let mean = float_of_int t.calibration.Calibration.cpu_jitter_period in
  t.next_jitter_at <- int_of_float (Rng.exponential t.rng ~mean) + 1

let create engine calibration ~id ~name =
  let t =
    {
      engine;
      calibration;
      id;
      name;
      rng = Rng.split (Engine.rng engine);
      state = Running;
      resume_gate = Engine.Ivar.create engine;
      cpu_since_jitter = 0;
      next_jitter_at = max_int;
      tel_jitter =
        (match Engine.metrics engine with
        | Some reg ->
          Some
            (Telemetry.Registry.histogram reg ~help:"Scheduling jitter injected into cpu()"
               ~labels:[ ("host", name) ] "sim_sched_jitter_ns")
        | None -> None);
    }
  in
  schedule_next_jitter t;
  if Engine.traced engine || Engine.profiled engine then
    Engine.trace_meta_process engine ~pid:id name;
  t

let engine t = t.engine
let calibration t = t.calibration
let id t = t.id
let name t = t.name
let rng t = t.rng
let liveness t = t.state

let nic_reachable t =
  match t.state with Running | Paused | Process_stopped -> true | Host_dead -> false

let process_alive t = match t.state with Running | Paused -> true | Process_stopped | Host_dead -> false

let park_forever () = Engine.suspend (fun (_ : unit -> unit) -> ())

let rec check t =
  match t.state with
  | Running -> ()
  | Paused ->
    Engine.Ivar.read t.resume_gate;
    check t
  | Process_stopped | Host_dead -> park_forever ()

let cpu t ns =
  check t;
  Engine.sleep t.engine ns;
  t.cpu_since_jitter <- t.cpu_since_jitter + ns;
  if t.cpu_since_jitter >= t.next_jitter_at then begin
    t.cpu_since_jitter <- 0;
    schedule_next_jitter t;
    let jitter = Distribution.sample_ns t.calibration.Calibration.cpu_jitter t.rng in
    (match t.tel_jitter with Some h -> Telemetry.Hdr.record h jitter | None -> ());
    if Engine.traced t.engine then
      Engine.trace_instant t.engine ~pid:t.id
        ~args:[ ("ns", string_of_int jitter) ]
        "sched_jitter";
    Engine.sleep t.engine jitter
  end;
  check t

let idle t ns =
  check t;
  Engine.sleep t.engine ns;
  check t

let spawn t ~name f =
  Engine.spawn t.engine ~name:(Printf.sprintf "%s/%s" t.name name) ~pid:t.id (fun () ->
      check t;
      f ())

let pause t =
  match t.state with
  | Running ->
    t.state <- Paused;
    Engine.trace_instant t.engine ~pid:t.id "host_pause";
    t.resume_gate <- Engine.Ivar.create t.engine
  | Paused | Process_stopped | Host_dead -> ()

let resume t =
  match t.state with
  | Paused ->
    t.state <- Running;
    Engine.trace_instant t.engine ~pid:t.id "host_resume";
    Engine.Ivar.fill t.resume_gate ()
  | Running | Process_stopped | Host_dead -> ()

let stop_process t =
  match t.state with
  | Host_dead -> ()
  | Running | Paused | Process_stopped ->
    t.state <- Process_stopped;
    Engine.trace_instant t.engine ~pid:t.id "host_stop"

let kill_host t =
  t.state <- Host_dead;
  Engine.trace_instant t.engine ~pid:t.id "host_kill"
