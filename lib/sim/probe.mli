(** Pluggable structured-event hook for the simulation.

    A probe is a mutable slot for an event sink. Every engine owns one;
    when no sink is installed, emitting is a single option check and
    allocates nothing, so instrumentation can stay on permanently in hot
    paths. The [trace] library installs a sink that records events into a
    bounded ring buffer and folds spans into percentile tables — but the
    sim layer knows nothing about it, only about this event shape.

    Events carry the {e virtual} timestamp of the engine, so two runs with
    equal seeds produce identical event streams. *)

type kind =
  | Instant  (** Point event. *)
  | Span_begin  (** Start of a synchronous span; nests per (pid, tid). *)
  | Span_end
  | Async_begin  (** Start of an async span; paired by (cat, name, id). *)
  | Async_end
  | Counter  (** Sampled value; [args] holds [("value", v)]. *)
  | Meta_process  (** Names process [pid]; [name] is the display name. *)
  | Meta_thread  (** Names thread [tid] of [pid]. *)

type event = {
  ts : int;  (** Virtual nanoseconds. *)
  kind : kind;
  name : string;
  cat : string;  (** Category, e.g. ["sim"], ["rdma"], ["mu"]. *)
  pid : int;  (** Host id, or -1 for engine-global events. *)
  tid : int;  (** Fiber id, or 0 for the scheduler. *)
  id : int;  (** Pairing id for async spans; 0 otherwise. *)
  args : (string * string) list;
}

type t

val create : unit -> t
val set_sink : t -> (event -> unit) -> unit
val clear_sink : t -> unit

val enabled : t -> bool
(** [true] iff a sink is installed. Check this before building argument
    lists on hot paths. *)

val sink : t -> (event -> unit) option

val emit : t -> event -> unit
(** Deliver to the sink, if any. *)
