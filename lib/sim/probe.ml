type kind =
  | Instant
  | Span_begin
  | Span_end
  | Async_begin
  | Async_end
  | Counter
  | Meta_process
  | Meta_thread

type event = {
  ts : int;
  kind : kind;
  name : string;
  cat : string;
  pid : int;
  tid : int;
  id : int;
  args : (string * string) list;
}

type t = { mutable sink : (event -> unit) option }

let create () = { sink = None }
let set_sink t f = t.sink <- Some f
let clear_sink t = t.sink <- None
let enabled t = t.sink <> None
let emit t ev = match t.sink with None -> () | Some f -> f ev
let sink t = t.sink
