(** Simulated non-volatile memory.

    Named byte regions keyed by an owner id (the machine identity, e.g.
    a replica id) that survive {!Host.kill_host}: a restarted host
    re-opens its regions and finds the bytes written before the crash.
    Regions are handed out as raw backing bytes — registering an MR over
    one ({!Rdma.Mr.register}[ ~backing]) makes every write to the region
    write-through to NVM by construction. Creating or opening a region
    consumes no virtual time and no randomness, so runs that never
    restart a host are unaffected by durable state being on. *)

type t

val create : unit -> t

val region : t -> owner:int -> name:string -> size:int -> Bytes.t
(** Open (or create, zero-filled) the region [name] of [owner]. Raises
    [Invalid_argument] if it exists with a different size. *)

val mem : t -> owner:int -> name:string -> bool
(** Whether the region already exists (i.e. a previous incarnation of
    [owner] created it). *)

val erase : t -> owner:int -> name:string -> unit
(** Discard a region — models replacing the machine's NVM device. *)
