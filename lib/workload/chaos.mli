(** Chaos runner: Mu under injected faults, checked for safety.

    Each run builds a fresh cluster of [n] replicas serving the KV
    application, installs a {!Faults.Scenario.t} over the engine, and
    drives closed-loop clients whose operations are recorded as a
    real-time history. After the run, two independent safety checks fire:
    the Appendix A invariants over raw replica state
    ({!Mu.Invariants.check_all}) and linearizability of the observed
    history ({!Linearizability.check}) — the paper's §2.2 claims,
    checked empirically under every scenario the generator can produce.

    Determinism: same [seed] + same scenario ⇒ an identical run, to the
    byte, including any attached trace — which makes {!repro_json} a
    complete reproduction of a failure. *)

(** {1 Scripted histories}

    The modelcheck conformance runner (lib/modelcheck) drives the same
    harness with a {e generated} history instead of the built-in random
    clients: one op list per client, each op carrying its request id and
    a think gap, and every response recorded verbatim so it can be
    checked against the pure reference model. *)

type scripted_op = {
  s_think : int;  (** Virtual-ns pause before submitting this op. *)
  s_req : int;  (** Request id (unique per client; dedup identity). *)
  s_cmd : Apps.Kv_store.command;
}

type recorded = {
  r_proc : int;
  r_req : int;
  r_invoked : int;
  r_responded : int;  (** [max_int] = never answered (open interval). *)
  r_cmd : Apps.Kv_store.command;
  r_reply : Apps.Kv_store.reply option;  (** [None] = unanswered. *)
}

type outcome = {
  seed : int64;
  n : int;
  scenario : Faults.Scenario.t;
  completed : bool;
      (** All client operations finished before the safety horizon. A
          stall means the scenario (or a bug) cost the cluster liveness;
          safety is still checked. *)
  ops : int;  (** Operations in the checked history. *)
  committed : int;  (** Highest FUO reached by any replica. *)
  linearizable : bool;
  witness : Linearizability.witness option;
      (** Minimal failing sub-history when not linearizable. *)
  record : recorded list;
      (** Scripted runs only: every op with its observed reply, sorted by
          (invocation, proc, req). Empty for the built-in random clients. *)
  violations : Mu.Invariants.violation list;
  rejoins : Mu.Smr.rejoin list;
      (** Completed kill→restart→rejoin pipelines (oldest first). *)
  shed : int;  (** Requests shed by a degraded leader's queue bound. *)
  degraded_ns : int;  (** Total quorum-lost window duration. *)
}

val passed : outcome -> bool
(** Completed, linearizable, and invariant-clean. *)

val pp_outcome : outcome Fmt.t
(** One line; on a linearizability failure, the minimal counterexample
    witness follows on indented lines. *)

val run :
  ?trace:Trace.Tracer.t ->
  ?metrics:Telemetry.Sampler.t ->
  ?on_engine:(Sim.Engine.t -> unit) ->
  ?provenance:bool ->
  ?clients:int ->
  ?ops_per_client:int ->
  ?think:int ->
  ?horizon:int ->
  ?durable:bool ->
  ?queue_limit:int ->
  ?script:scripted_op list list ->
  seed:int64 ->
  n:int ->
  Faults.Scenario.t ->
  outcome
(** One chaos run. [horizon] (default 2 virtual seconds) bounds a stalled
    run; writes still pending at the horizon stay in the history with an
    open response interval, so a write that took effect but never
    answered cannot fake a linearizability violation. [provenance]
    (default false) additionally records causal request spans for
    [mu_demo explain] — each client op wraps its request span with
    (proc, req, key, op) labels; a provenance-off run is byte-identical
    with or without the flag. [think] (default 0) inserts a fixed
    virtual-ns pause between a client's operations — use it to stretch a
    small (checker-friendly) history across a scenario's fault window
    instead of piling on operations. [durable] (default true) backs each
    replica's log with simulated NVM so [restart] events can recover it;
    [queue_limit] (default 0 = unbounded) bounds the leader's incoming
    queue — shed requests answer with {!Mu.Smr.retryable_error} and the
    clients here back off and retry under the same invocation time.
    [metrics] attaches a telemetry sampler exactly as
    {!Experiments.run_sim} does (new epoch, virtual-time tick fiber);
    [on_engine] runs after the engine is fully configured but before the
    cluster starts — the hook the online monitor attaches through. Both
    consume no PRNG; the protocol schedule is unchanged. [script]
    replaces the built-in random clients with one fiber per listed
    client, replaying the given op lists verbatim (client i is proc
    i+1); [clients]/[ops_per_client]/[think] are ignored and every
    submitted op lands in {!outcome.record} with its observed reply. A
    run without [script] is byte-identical to one built before the
    option existed. *)

(** {1 Minimized repro} *)

val repro_json : outcome -> string
(** Seed + n + scenario + violation summary, as one JSON document. *)

val parse_repro : string -> (int64 * int * Faults.Scenario.t, string) result
(** Recover the replay inputs from a repro file; {!run} on them
    reproduces the failing run byte-identically. *)

(** {1 Randomized sweep} *)

type sweep = {
  runs : int;
  failures : outcome list;
  coverage : Faults.Scenario.coverage;
      (** What the generator actually exercised across the sweep: action
          counts, partition shapes, crash/restart mix. Surfaced so a
          sweep can never silently narrow its fault coverage. *)
}

val sweep :
  ?count:int ->
  ?ns:int list ->
  ?log:(int -> outcome -> unit) ->
  seed:int64 ->
  unit ->
  sweep
(** [sweep ~seed ()] runs [count] (default 50) random scenarios, cycling
    cluster sizes through [ns] (default [[3; 5]]). Every run's seed is
    drawn from a root PRNG seeded with [seed], and its scenario is
    generated from that per-run seed — so each failure replays from one
    64-bit number, and {!repro_json} of a failing outcome is a complete
    repro. [log] observes every outcome as it completes. *)
