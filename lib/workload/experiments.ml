type setup = {
  seed : int64;
  cal : Sim.Calibration.t;
  trace : Trace.Tracer.t option;
  metrics : Telemetry.Sampler.t option;
  faults : Faults.Scenario.t option;
  provenance : bool;
  on_engine : (Sim.Engine.t -> unit) option;
}

let default_setup =
  { seed = 42L; cal = Sim.Calibration.default; trace = None; metrics = None;
    faults = None; provenance = false; on_engine = None }

(* Inject the setup's fault scenario (if any) over a running Mu cluster;
   scenario host ids are replica ids. Experiments that build their own
   topologies (baselines, microbenchmarks) don't take fault scenarios —
   chaos belongs to the cluster experiments and [Chaos.run]. *)
let install_faults setup e smr =
  match setup.faults with
  | None -> ()
  | Some scenario ->
    let replicas = Mu.Smr.replicas smr in
    Faults.Injector.install e
      ~hosts:(fun pid ->
        if pid >= 0 && pid < Array.length replicas then
          Some replicas.(pid).Mu.Replica.host
        else None)
      scenario

(* Run one simulation to completion of the experiment body. Each run is a
   fresh engine (virtual time restarts at 0), so a shared sampler opens a
   new epoch per run; the sampler fiber ticks on virtual time and dies
   with the engine. *)
let run_sim setup ?until f =
  let e = Sim.Engine.create ~seed:setup.seed () in
  (match setup.trace with Some tr -> Trace.Tracer.attach tr e | None -> ());
  if setup.provenance then Sim.Engine.set_provenance e true;
  (match setup.metrics with
  | Some sampler ->
    Sim.Engine.set_metrics e (Telemetry.Sampler.registry sampler);
    Telemetry.Sampler.start_epoch sampler;
    let interval = Telemetry.Sampler.interval sampler in
    Sim.Engine.spawn e ~name:"telemetry-sampler" (fun () ->
        let rec loop () =
          Telemetry.Sampler.tick sampler ~now:(Sim.Engine.now e);
          Sim.Engine.sleep e interval;
          loop ()
        in
        loop ())
  | None -> ());
  (match setup.on_engine with Some f -> f e | None -> ());
  let result = ref None in
  Sim.Engine.spawn e ~name:"experiment" (fun () ->
      result := Some (f e);
      Sim.Engine.halt e);
  Sim.Engine.run ?until e;
  match !result with
  | Some r -> r
  | None -> failwith "experiment did not complete (deadlock or until-limit)"

(* Run [f] in a fiber of [host] and block the calling fiber until done. *)
let on_host host f =
  let done_ = Sim.Engine.Ivar.create (Sim.Host.engine host) in
  Sim.Host.spawn host ~name:"driver" (fun () ->
      let v = f () in
      Sim.Engine.Ivar.fill done_ v);
  Sim.Engine.Ivar.read done_

(* ----------------------------------------------------------------------- *)
(* Fig. 2                                                                   *)
(* ----------------------------------------------------------------------- *)

type fig2_row = {
  log_size : int;
  qp_flags_us : float;
  qp_restart_us : float;
  mr_rereg_us : float;
}

let fig2_permission_switch setup ~samples ~sizes =
  run_sim setup (fun e ->
      let a = Sim.Host.create e setup.cal ~id:0 ~name:"perm-a" in
      let b = Sim.Host.create e setup.cal ~id:1 ~name:"perm-b" in
      let cq_a = Rdma.Cq.create e and cq_b = Rdma.Cq.create e in
      let qa = Rdma.Qp.create a ~cq:cq_a and qb = Rdma.Qp.create b ~cq:cq_b in
      Rdma.Qp.connect qa qb;
      let rng = Sim.Rng.split (Sim.Engine.rng e) in
      on_host a (fun () ->
          List.map
            (fun log_size ->
              let flags = Sim.Stats.Samples.create () in
              let restart = Sim.Stats.Samples.create () in
              let rereg = Sim.Stats.Samples.create () in
              for _ = 1 to samples do
                let t0 = Sim.Engine.now e in
                (match Rdma.Perm.change_qp_flags qa Rdma.Verbs.access_rw with
                | Ok () -> ()
                | Error `Qp_error -> Rdma.Qp.set_state qa Rdma.Verbs.Rts);
                Sim.Stats.Samples.add flags (Sim.Engine.now e - t0);
                let t0 = Sim.Engine.now e in
                Rdma.Perm.restart_qp qa Rdma.Verbs.access_rw;
                Sim.Stats.Samples.add restart (Sim.Engine.now e - t0);
                (* MR re-registration cost scales with the region size; we
                   sample the calibrated cost model directly rather than
                   allocating multi-GiB buffers. *)
                Sim.Stats.Samples.add rereg
                  (Sim.Distribution.sample_ns
                     (Sim.Calibration.mr_rereg_time setup.cal ~bytes:log_size)
                     rng)
              done;
              {
                log_size;
                qp_flags_us = Sim.Stats.ns_to_us (Sim.Stats.Samples.median flags);
                qp_restart_us = Sim.Stats.ns_to_us (Sim.Stats.Samples.median restart);
                mr_rereg_us = Sim.Stats.ns_to_us (Sim.Stats.Samples.median rereg);
              })
            sizes))

(* ----------------------------------------------------------------------- *)
(* Fig. 3 / Fig. 4 — replication latency                                    *)
(* ----------------------------------------------------------------------- *)

let standalone_config ?(value_cap = 1024) () =
  {
    Mu.Config.default with
    Mu.Config.log_slots = 16_384;
    recycle_interval = 2_000_000;
    value_cap;
  }

let wait_for_leader e (smr : Mu.Smr.t) =
  let rec go () =
    match Mu.Smr.leader smr with
    | Some r -> r
    | None ->
      Sim.Engine.sleep e 20_000;
      go ()
  in
  go ()

let attach_cost cal = function
  | Mu.Config.Standalone -> 0
  | Mu.Config.Direct -> cal.Sim.Calibration.direct_interference
  | Mu.Config.Handover -> cal.Sim.Calibration.handover_hop

let stage_cost cal len =
  cal.Sim.Calibration.memcpy_request
  + int_of_float (float_of_int len *. cal.Sim.Calibration.memcpy_byte)

let mu_latency_with_config setup ~samples ~payload ~attach cfg =
  run_sim setup (fun e ->
      let cfg = { cfg with Mu.Config.attach } in
      let smr =
        Mu.Smr.create e setup.cal cfg ~make_app:(fun _ ->
            Mu.Smr.stateless_app (fun _ -> Bytes.empty))
      in
      Mu.Smr.start ~client_service:false smr;
      install_faults setup e smr;
      let leader = wait_for_leader e smr in
      let rng = Sim.Rng.split (Sim.Engine.rng e) in
      let out = Sim.Stats.Samples.create () in
      on_host leader.Mu.Replica.host (fun () ->
          let propose_once record =
            let body = Generators.payload rng ~size:payload in
            let value = Mu.Smr.encode_batch [ body ] in
            let t0 = Sim.Engine.now e in
            (* The request span brackets exactly the measured interval, so
               its sync children (attach/stage/propose phases) partition the
               recorded latency. *)
            Sim.Engine.span_scope e ~pid:leader.Mu.Replica.id
              ~args:[ ("len", string_of_int payload) ]
              "request"
              (fun () ->
                Sim.Engine.span_scope e ~pid:leader.Mu.Replica.id "attach" (fun () ->
                    Sim.Host.cpu leader.Mu.Replica.host (attach_cost setup.cal attach));
                Sim.Engine.span_scope e ~pid:leader.Mu.Replica.id "stage" (fun () ->
                    Sim.Host.cpu leader.Mu.Replica.host (stage_cost setup.cal payload));
                try ignore (Mu.Replication.propose leader value)
                with Mu.Replication.Aborted _ ->
                  Sim.Host.idle leader.Mu.Replica.host 100_000);
            if record then Sim.Stats.Samples.add out (Sim.Engine.now e - t0)
          in
          for _ = 1 to 100 do
            propose_once false
          done;
          for _ = 1 to samples do
            propose_once true
          done);
      Mu.Smr.stop smr;
      out)

let mu_replication_latency setup ~samples ~payload ~attach =
  mu_latency_with_config setup ~samples ~payload ~attach
    (standalone_config ~value_cap:(max 1024 (payload + 64)) ())

let mu_latency_persistence setup ~samples ~persistent =
  mu_latency_with_config setup ~samples ~payload:64 ~attach:Mu.Config.Standalone
    { (standalone_config ()) with Mu.Config.persistent_log = persistent }

let baseline_replication_latency setup ~samples ~system ~payload =
  run_sim setup (fun e ->
      let c = Baselines.Common.create e setup.cal ~n:3 ~mr_size:65_536 in
      let engine =
        match system with
        | `Dare -> Baselines.Dare.create c
        | `Apus -> Baselines.Apus.create c
        | `Hermes -> Baselines.Hermes.create c
        | `Hovercraft -> Baselines.Hovercraft.create c
      in
      let rng = Sim.Rng.split (Sim.Engine.rng e) in
      let out = Sim.Stats.Samples.create () in
      on_host c.Baselines.Common.hosts.(0) (fun () ->
          for _ = 1 to 100 do
            ignore (engine.Baselines.Common.replicate (Generators.payload rng ~size:payload))
          done;
          for _ = 1 to samples do
            Sim.Stats.Samples.add out
              (engine.Baselines.Common.replicate (Generators.payload rng ~size:payload))
          done);
      out)

(* ----------------------------------------------------------------------- *)
(* Fig. 5 — end-to-end latency                                              *)
(* ----------------------------------------------------------------------- *)

type e2e_system = Unreplicated | With_mu | With_apus | Dare_kv

let end_to_end_latency setup ~samples ~app ~system =
  run_sim setup (fun e ->
      let rng = Sim.Rng.split (Sim.Engine.rng e) in
      let transport = Apps.Transport.create app setup.cal (Sim.Rng.split (Sim.Engine.rng e)) in
      let compute = Apps.Transport.app_compute app setup.cal in
      (* Request generator: real commands for the real application. *)
      let flow = Generators.order_flow rng in
      let req_counter = ref 0 in
      let next_request () =
        incr req_counter;
        match app with
        | Apps.Transport.Erpc -> Apps.Exchange.encode_command (Generators.next_order flow)
        | Apps.Transport.Tcp_memcached | Apps.Transport.Tcp_redis | Apps.Transport.Herd_rdma
          ->
          Apps.Kv_store.encode_command ~client:1 ~req_id:!req_counter
            (Generators.kv_command rng Generators.default_kv_mix ~client:1
               ~req_id:!req_counter)
      in
      let make_app () =
        match app with
        | Apps.Transport.Erpc -> Apps.Exchange.smr_app ()
        | Apps.Transport.Tcp_memcached | Apps.Transport.Tcp_redis | Apps.Transport.Herd_rdma
          ->
          Apps.Kv_store.smr_app ()
      in
      let out = Sim.Stats.Samples.create () in
      (* The server-side handler: takes a request, returns when the reply
         would leave the server. *)
      let serve =
        match system with
        | Unreplicated ->
          let host = Sim.Host.create e setup.cal ~id:100 ~name:"server" in
          let application = make_app () in
          fun payload ->
            on_host host (fun () ->
                Sim.Host.cpu host compute;
                ignore (application.Mu.Smr.apply payload))
        | With_mu ->
          let attach =
            match app with
            | Apps.Transport.Erpc | Apps.Transport.Herd_rdma -> Mu.Config.Direct
            | Apps.Transport.Tcp_memcached | Apps.Transport.Tcp_redis -> Mu.Config.Handover
          in
          let cfg = { (standalone_config ()) with Mu.Config.attach } in
          let smr = Mu.Smr.create e setup.cal cfg ~make_app:(fun _ -> make_app ()) in
          Mu.Smr.start smr;
          Mu.Smr.wait_live smr;
          (* Application compute happens after replication at the leader;
             the submit path already charges capture and staging costs. *)
          fun payload ->
            let leader_host =
              match Mu.Smr.leader smr with
              | Some r -> r.Mu.Replica.host
              | None -> (Mu.Smr.replica smr 0).Mu.Replica.host
            in
            ignore (Mu.Smr.submit smr payload);
            on_host leader_host (fun () -> Sim.Host.cpu leader_host compute)
        | With_apus | Dare_kv ->
          let c = Baselines.Common.create e setup.cal ~n:3 ~mr_size:65_536 in
          let engine =
            match system with
            | With_apus -> Baselines.Apus.create c
            | _ -> Baselines.Dare.create c
          in
          let application = make_app () in
          let host = c.Baselines.Common.hosts.(0) in
          fun payload ->
            on_host host (fun () ->
                ignore (engine.Baselines.Common.replicate payload);
                Sim.Host.cpu host compute;
                ignore (application.Mu.Smr.apply payload))
      in
      (* Closed-loop client. *)
      for i = 1 to samples + 50 do
        let payload = next_request () in
        let rtt = Apps.Transport.rtt_sample transport in
        let t0 = Sim.Engine.now e in
        Sim.Engine.sleep e (Apps.Transport.request_leg transport rtt);
        serve payload;
        Sim.Engine.sleep e (Apps.Transport.response_leg transport rtt);
        if i > 50 then Sim.Stats.Samples.add out (Sim.Engine.now e - t0)
      done;
      out)

(* HERD measured on the executable server (Apps.Herd) rather than the
   calibrated transport model — a cross-check that the fabric derives the
   same end-to-end numbers the model was pinned to. *)
let herd_real setup ~samples ~replicated =
  run_sim setup (fun e ->
      let out = Sim.Stats.Samples.create () in
      let run_with handler host =
        let srv = Apps.Herd.server e setup.cal ~host ~clients:1 ~handler in
        let cl =
          Apps.Herd.connect srv ~id:0
            ~host:(Sim.Host.create e setup.cal ~id:99 ~name:"herd-client")
        in
        for i = 1 to samples + 50 do
          let t0 = Sim.Engine.now e in
          ignore
            (Apps.Herd.call cl
               (Apps.Kv_store.encode_command ~client:1 ~req_id:i
                  (Apps.Kv_store.Put { key = string_of_int (i mod 64); value = "v" })));
          if i > 50 then Sim.Stats.Samples.add out (Sim.Engine.now e - t0)
        done
      in
      let store = Apps.Kv_store.create () in
      let execute payload =
        match Apps.Kv_store.decode_command payload with
        | Some (client, req_id, cmd) ->
          Apps.Kv_store.encode_reply (Apps.Kv_store.apply_dedup store ~client ~req_id cmd)
        | None -> Bytes.empty
      in
      if not replicated then begin
        let host = Sim.Host.create e setup.cal ~id:98 ~name:"herd-server" in
        run_with execute host
      end
      else begin
        let smr =
          Mu.Smr.create e setup.cal (standalone_config ()) ~make_app:(fun _ ->
              Mu.Smr.stateless_app (fun _ -> Bytes.empty))
        in
        Mu.Smr.start ~client_service:false smr;
        let leader = wait_for_leader e smr in
        let established = Sim.Engine.Ivar.create e in
        Sim.Host.spawn leader.Mu.Replica.host ~name:"establish" (fun () ->
            (try ignore (Mu.Replication.propose leader (Bytes.of_string "boot"))
             with Mu.Replication.Aborted _ -> ());
            Sim.Engine.Ivar.fill established ());
        Sim.Engine.Ivar.read established;
        let handler payload =
          (try ignore (Mu.Replication.propose leader payload)
           with Mu.Replication.Aborted _ -> ());
          execute payload
        in
        run_with handler leader.Mu.Replica.host;
        Mu.Smr.stop smr
      end;
      out)

(* Liquibook measured on the executable eRPC layer (Apps.Erpc) with the
   real matching engine, optionally replicated with Mu — the other
   cross-check row of Fig. 5. *)
let liquibook_real setup ~samples ~replicated =
  run_sim setup (fun e ->
      let out = Sim.Stats.Samples.create () in
      let book = Apps.Order_book.create () in
      let execute cal host payload =
        Sim.Host.cpu host cal.Sim.Calibration.order_match;
        match Apps.Exchange.decode_command payload with
        | Some cmd -> Apps.Exchange.encode_events (Apps.Exchange.apply book cmd)
        | None -> Bytes.empty
      in
      let run_with handler host =
        let srv = Apps.Erpc.server e setup.cal ~host ~handler in
        let client_host = Sim.Host.create e setup.cal ~id:97 ~name:"liq-client" in
        let cl = Apps.Erpc.connect srv ~host:client_host in
        let flow = Generators.order_flow (Sim.Rng.split (Sim.Engine.rng e)) in
        let d = Sim.Engine.Ivar.create e in
        Sim.Host.spawn client_host ~name:"liq-driver" (fun () ->
            for i = 1 to samples + 50 do
              let cmd = Apps.Exchange.encode_command (Generators.next_order flow) in
              let t0 = Sim.Engine.now e in
              ignore (Apps.Erpc.call cl cmd);
              if i > 50 then Sim.Stats.Samples.add out (Sim.Engine.now e - t0)
            done;
            Sim.Engine.Ivar.fill d ());
        Sim.Engine.Ivar.read d
      in
      if not replicated then begin
        let host = Sim.Host.create e setup.cal ~id:96 ~name:"liq-server" in
        run_with (execute setup.cal host) host
      end
      else begin
        let smr =
          Mu.Smr.create e setup.cal
            { (standalone_config ()) with Mu.Config.attach = Mu.Config.Direct }
            ~make_app:(fun _ -> Mu.Smr.stateless_app (fun _ -> Bytes.empty))
        in
        Mu.Smr.start ~client_service:false smr;
        let leader = wait_for_leader e smr in
        let established = Sim.Engine.Ivar.create e in
        Sim.Host.spawn leader.Mu.Replica.host ~name:"establish" (fun () ->
            (try ignore (Mu.Replication.propose leader (Bytes.of_string "boot"))
             with Mu.Replication.Aborted _ -> ());
            Sim.Engine.Ivar.fill established ());
        Sim.Engine.Ivar.read established;
        let host = leader.Mu.Replica.host in
        let handler payload =
          (* Capture-replicate-execute (Fig. 1), direct attach mode. *)
          Sim.Host.cpu host (setup.cal.Sim.Calibration.direct_interference);
          (try ignore (Mu.Replication.propose leader payload)
           with Mu.Replication.Aborted _ -> ());
          execute setup.cal host payload
        in
        run_with handler host;
        Mu.Smr.stop smr
      end;
      out)

(* ----------------------------------------------------------------------- *)
(* Fig. 6 — fail-over                                                       *)
(* ----------------------------------------------------------------------- *)

type failover_stats = {
  total : Sim.Stats.Samples.t;
  detection : Sim.Stats.Samples.t;
  switch : Sim.Stats.Samples.t;
}

let failover setup ~rounds =
  run_sim setup (fun e ->
      let cfg = standalone_config () in
      let smr =
        Mu.Smr.create e setup.cal cfg ~make_app:(fun _ ->
            Mu.Smr.stateless_app (fun _ -> Bytes.empty))
      in
      Mu.Smr.start smr;
      install_faults setup e smr;
      Mu.Smr.wait_live smr;
      let total = Sim.Stats.Samples.create () in
      let detection = Sim.Stats.Samples.create () in
      let switch = Sim.Stats.Samples.create () in
      (* The same phase decomposition, as registry histograms. *)
      let tel_hists =
        match Sim.Engine.metrics e with
        | None -> None
        | Some reg ->
          let h name help =
            Telemetry.Registry.histogram reg ~help name
          in
          Some
            ( h "failover_total_ns" "Failure injection to new leader serving",
              h "failover_detection_ns" "Failure injection to new leader elected",
              h "failover_switch_ns" "Election to confirmed followers ready" )
      in
      let poll = 2_000 in
      let wait_until pred =
        while not (pred ()) do
          Sim.Engine.sleep e poll
        done
      in
      let unique_leader () = Mu.Smr.leader smr in
      for _ = 1 to rounds do
        (* Stabilize: a unique established leader, scores saturated. *)
        wait_until (fun () ->
            match unique_leader () with
            | Some r -> not r.Mu.Replica.need_new_followers
            | None -> false);
        Sim.Engine.sleep e 1_500_000;
        let leader = Option.get (unique_leader ()) in
        let next =
          Array.to_list (Mu.Smr.replicas smr)
          |> List.filter (fun (r : Mu.Replica.t) -> r.Mu.Replica.id <> leader.Mu.Replica.id)
          |> List.map (fun (r : Mu.Replica.t) -> r.Mu.Replica.id)
          |> List.fold_left min max_int
          |> Mu.Smr.replica smr
        in
        let t_fail = Sim.Engine.now e in
        Sim.Host.pause leader.Mu.Replica.host;
        (* The fail-over decomposition as spans (cat "failover"): [total]
           wraps a [detect] phase (injection until the next leader's role
           flips) and a [perm_switch] phase (permission acquisition +
           catch-up until the new leader commits). The Fig. 6 acceptance
           check recomputes the paper's ~30% switch share from these. *)
        Sim.Engine.trace_begin e ~cat:"failover" "total";
        Sim.Engine.trace_begin e ~cat:"failover" "detect";
        wait_until (fun () -> Mu.Replica.is_leader next);
        let t_detect = Sim.Engine.now e in
        Sim.Engine.trace_end e ~cat:"failover" "detect";
        Sim.Engine.trace_begin e ~cat:"failover" "perm_switch";
        let fuo_at_detect = Mu.Log.fuo next.Mu.Replica.log in
        wait_until (fun () ->
            (not next.Mu.Replica.need_new_followers)
            && Mu.Log.fuo next.Mu.Replica.log > fuo_at_detect);
        let t_live = Sim.Engine.now e in
        Sim.Engine.trace_end e ~cat:"failover" "perm_switch";
        Sim.Engine.trace_end e ~cat:"failover" "total";
        Sim.Stats.Samples.add total (t_live - t_fail);
        Sim.Stats.Samples.add detection (t_detect - t_fail);
        Sim.Stats.Samples.add switch (t_live - t_detect);
        (match tel_hists with
        | Some (ht, hd, hs) ->
          Telemetry.Hdr.record ht (t_live - t_fail);
          Telemetry.Hdr.record hd (t_detect - t_fail);
          Telemetry.Hdr.record hs (t_live - t_detect)
        | None -> ());
        (* Recovery: the resumed lowest-id replica reclaims leadership. *)
        Sim.Host.resume leader.Mu.Replica.host;
        wait_until (fun () ->
            match unique_leader () with
            | Some r ->
              r.Mu.Replica.id = leader.Mu.Replica.id && not r.Mu.Replica.need_new_followers
            | None -> false)
      done;
      Mu.Smr.stop smr;
      { total; detection; switch })

let dare_failover setup ~rounds =
  run_sim setup (fun e ->
      let c = Baselines.Common.create e setup.cal ~n:3 ~mr_size:65_536 in
      let d = Baselines.Dare_election.create c in
      Baselines.Dare_election.measure_failover d ~rounds)

(* ----------------------------------------------------------------------- *)
(* Fig. 7 — throughput                                                      *)
(* ----------------------------------------------------------------------- *)

type throughput_point = {
  batch : int;
  outstanding : int;
  ops_per_us : float;
  median_latency_ns : int;
  p99_latency_ns : int;
}

let throughput_point setup ~requests ~batch ~outstanding =
  run_sim setup (fun e ->
      let value_cap = max 1024 ((batch * 80) + 64) in
      (* Size the log to hold the whole run, as the paper's setup does (a
         4 GiB log never wraps within 1 M samples), so recycling traffic
         does not share the wire with the measured requests. *)
      let cfg =
        {
          Mu.Config.default with
          Mu.Config.log_slots = (requests / batch) + 1_024;
          value_cap;
          max_batch = batch;
          max_outstanding = outstanding;
          recycle_interval = 1_000_000_000;
          recycle_slack = 128;
        }
      in
      let smr =
        Mu.Smr.create e setup.cal cfg ~make_app:(fun _ ->
            Mu.Smr.stateless_app (fun _ -> Bytes.empty))
      in
      Mu.Smr.start smr;
      Mu.Smr.wait_live smr;
      let rng = Sim.Rng.split (Sim.Engine.rng e) in
      let warmup = requests / 10 in
      let completed = ref 0 in
      let t_start = ref 0 and t_end = ref 0 in
      let lat = Sim.Stats.Samples.create () in
      let clients = max 1 ((batch * outstanding) + if batch > 1 then batch else 0) in
      let all_done = Sim.Engine.Ivar.create e in
      let client () =
        let rec loop () =
          if !completed < requests then begin
            let payload = Generators.payload rng ~size:64 in
            let t0 = Sim.Engine.now e in
            ignore (Sim.Engine.Ivar.read (Mu.Smr.submit_async ~retry:false smr payload));
            incr completed;
            if !completed > warmup then Sim.Stats.Samples.add lat (Sim.Engine.now e - t0);
            if !completed = warmup then t_start := Sim.Engine.now e;
            if !completed = requests then begin
              t_end := Sim.Engine.now e;
              ignore (Sim.Engine.Ivar.try_fill all_done ())
            end;
            loop ()
          end
        in
        loop ()
      in
      for _ = 1 to clients do
        Sim.Engine.spawn e ~name:"client" client
      done;
      Sim.Engine.Ivar.read all_done;
      let dt = max 1 (!t_end - !t_start) in
      let measured = requests - warmup in
      Mu.Smr.stop smr;
      {
        batch;
        outstanding;
        ops_per_us = float_of_int measured *. 1000.0 /. float_of_int dt;
        median_latency_ns = Sim.Stats.Samples.median lat;
        p99_latency_ns = Sim.Stats.Samples.percentile lat 99.0;
      })

let sharded_throughput setup ~requests ~shards =
  run_sim setup (fun e ->
      let cfg =
        {
          Mu.Config.default with
          Mu.Config.log_slots = (requests / shards) + 2_048;
          max_outstanding = 2;
          recycle_interval = 1_000_000_000;
        }
      in
      let s =
        Mu.Sharded.create e setup.cal cfg ~shards ~make_app:(fun ~shard:_ ~replica:_ ->
            Mu.Smr.stateless_app (fun _ -> Bytes.empty))
      in
      Mu.Sharded.start s;
      Mu.Sharded.wait_live s;
      let rng = Sim.Rng.split (Sim.Engine.rng e) in
      let completed = ref 0 in
      let t_start = ref 0 and t_end = ref 0 in
      let warmup = requests / 10 in
      let all_done = Sim.Engine.Ivar.create e in
      (* A few closed-loop clients per shard, each on its own key space so
         operations commute across shards. *)
      let clients_per_shard = 4 in
      for shard = 0 to shards - 1 do
        for c = 1 to clients_per_shard do
          Sim.Engine.spawn e ~name:(Printf.sprintf "client-%d-%d" shard c) (fun () ->
              let key = Printf.sprintf "shard%d" shard in
              let rec loop () =
                if !completed < requests then begin
                  ignore (Mu.Sharded.submit s ~key (Generators.payload rng ~size:64));
                  incr completed;
                  if !completed = warmup then t_start := Sim.Engine.now e;
                  if !completed = requests then begin
                    t_end := Sim.Engine.now e;
                    ignore (Sim.Engine.Ivar.try_fill all_done ())
                  end;
                  loop ()
                end
              in
              loop ())
        done
      done;
      Sim.Engine.Ivar.read all_done;
      Mu.Sharded.stop s;
      float_of_int (requests - warmup) *. 1000.0 /. float_of_int (max 1 (!t_end - !t_start)))

(* ----------------------------------------------------------------------- *)
(* Ablations                                                                *)
(* ----------------------------------------------------------------------- *)

let ablation_omit_prepare setup ~samples =
  let with_opt =
    mu_replication_latency setup ~samples ~payload:64 ~attach:Mu.Config.Standalone
  in
  let without_opt =
    mu_latency_with_config setup ~samples ~payload:64 ~attach:Mu.Config.Standalone
      { (standalone_config ()) with Mu.Config.disable_omit_prepare = true }
  in
  (with_opt, without_opt)

let ablation_permissions setup ~samples =
  let mu =
    mu_replication_latency setup ~samples ~payload:64 ~attach:Mu.Config.Standalone
  in
  (* Disk-Paxos-style race detection: without permissions, a leader must
     re-read the slot after writing it to detect a concurrent leader,
     doubling the round trips (§4.1, [23]). *)
  let disk_paxos =
    run_sim setup (fun e ->
        let c = Baselines.Common.create e setup.cal ~n:3 ~mr_size:65_536 in
        let rng = Sim.Rng.split (Sim.Engine.rng e) in
        let out = Sim.Stats.Samples.create () in
        let followers = [ 1; 2 ] in
        let needed = 1 in
        on_host c.Baselines.Common.hosts.(0) (fun () ->
            let wr = ref 0 in
            let readback = Bytes.create 128 in
            for i = 1 to samples + 100 do
              let payload = Generators.payload rng ~size:64 in
              let t0 = Sim.Engine.now e in
              List.iter
                (fun j -> Baselines.Common.write_to c ~src:0 ~dst:j ~data:payload ~off:0)
                followers;
              Baselines.Common.await_successes c ~node:0 ~count:needed;
              Baselines.Common.await_successes c ~node:0
                ~count:(List.length followers - needed);
              List.iter
                (fun j ->
                  incr wr;
                  Rdma.Qp.post_read
                    c.Baselines.Common.qps.(0).(j)
                    ~wr_id:!wr ~dst:readback ~dst_off:0 ~len:64
                    ~mr:c.Baselines.Common.mrs.(j) ~src_off:0)
                followers;
              Baselines.Common.await_successes c ~node:0 ~count:needed;
              Baselines.Common.await_successes c ~node:0
                ~count:(List.length followers - needed);
              if i > 100 then Sim.Stats.Samples.add out (Sim.Engine.now e - t0)
            done);
        out)
  in
  (mu, disk_paxos)

type fd_result = {
  detector : string;
  detection_us : float;
  false_positives : int;
  observation_s : float;
}

(* A wire with rare multi-millisecond delay spikes: the regime where push
   heartbeats need large timeouts but pull-score does not (§5.1). *)
let spiky_cal cal =
  {
    cal with
    Sim.Calibration.wire =
      Sim.Distribution.Mixture
        [
          (0.9995, cal.Sim.Calibration.wire);
          (0.0005, Sim.Distribution.Uniform { lo = 500_000.0; hi = 3_000_000.0 });
        ];
  }

let ablation_failure_detector setup =
  let cal = spiky_cal setup.cal in
  let quiet_ns = 5_000_000_000 in
  let observation_s = 5.0 in
  (* --- pull-score (Mu, §5.1) --- *)
  let pull_run ~fail =
    let e = Sim.Engine.create ~seed:setup.seed () in
    let a = Sim.Host.create e cal ~id:0 ~name:"leader" in
    let b = Sim.Host.create e cal ~id:1 ~name:"monitor" in
    let mr_a = Rdma.Mr.register a ~size:64 ~access:Rdma.Verbs.access_rw in
    let cq_b = Rdma.Cq.create e and cq_a = Rdma.Cq.create e in
    let qb = Rdma.Qp.create b ~cq:cq_b and qa = Rdma.Qp.create a ~cq:cq_a in
    Rdma.Qp.connect qb qa;
    Rdma.Qp.set_access qa Rdma.Verbs.access_rw;
    Rdma.Qp.set_access qb Rdma.Verbs.access_rw;
    Sim.Host.spawn a ~name:"hb" (fun () ->
        let rec loop () =
          let v = Rdma.Mr.get_i64 mr_a ~off:0 in
          Rdma.Mr.set_i64 mr_a ~off:0 (Int64.add v 1L);
          Sim.Host.cpu a cal.Sim.Calibration.hb_increment_interval;
          loop ()
        in
        loop ());
    let fps = ref 0 in
    let detected_at = ref None in
    let fail_at = quiet_ns in
    if fail then Sim.Engine.schedule e ~at:fail_at (fun () -> Sim.Host.pause a);
    Sim.Host.spawn b ~name:"monitor" (fun () ->
        let score = ref cal.Sim.Calibration.score_max in
        let last = ref (-1L) in
        let alive = ref true in
        let buf = Bytes.create 8 in
        let wr = ref 0 in
        let rec loop () =
          Sim.Host.idle b cal.Sim.Calibration.fd_read_interval;
          incr wr;
          Rdma.Qp.post_read qb ~wr_id:!wr ~dst:buf ~dst_off:0 ~len:8 ~mr:mr_a ~src_off:0;
          ignore (Rdma.Cq.await cq_b);
          let v = Bytes.get_int64_le buf 0 in
          let advanced = Int64.compare v !last > 0 in
          last := v;
          score :=
            min cal.Sim.Calibration.score_max
              (max cal.Sim.Calibration.score_min
                 (if advanced then !score + 1 else !score - 1));
          if !alive && !score < cal.Sim.Calibration.score_fail then begin
            alive := false;
            if Sim.Engine.now e < fail_at || not fail then incr fps
            else if !detected_at = None then
              detected_at := Some (Sim.Engine.now e - fail_at)
          end
          else if (not !alive) && !score > cal.Sim.Calibration.score_recover then
            alive := true;
          loop ()
        in
        loop ());
    let horizon = if fail then quiet_ns + 50_000_000 else quiet_ns in
    Sim.Engine.run ~until:horizon e;
    (!fps, !detected_at)
  in
  let fps_quiet, _ = pull_run ~fail:false in
  let _, det = pull_run ~fail:true in
  let pull =
    {
      detector = "pull-score (Mu)";
      detection_us = (match det with Some d -> float_of_int d /. 1000.0 | None -> nan);
      false_positives = fps_quiet;
      observation_s;
    }
  in
  (* --- conventional push heartbeats with a timeout --- *)
  let push_run ~timeout ~fail =
    let e = Sim.Engine.create ~seed:setup.seed () in
    let a = Sim.Host.create e cal ~id:0 ~name:"leader" in
    let b = Sim.Host.create e cal ~id:1 ~name:"monitor" in
    let mr_b = Rdma.Mr.register b ~size:64 ~access:Rdma.Verbs.access_rw in
    let cq_a = Rdma.Cq.create e and cq_b = Rdma.Cq.create e in
    let qa = Rdma.Qp.create a ~cq:cq_a and qb = Rdma.Qp.create b ~cq:cq_b in
    Rdma.Qp.connect qa qb;
    Rdma.Qp.set_access qa Rdma.Verbs.access_rw;
    Rdma.Qp.set_access qb Rdma.Verbs.access_rw;
    let interval = 100_000 in
    let last_arrival = ref 0 in
    Rdma.Mr.set_write_hook mr_b
      (Some (fun ~off:_ ~len:_ -> last_arrival := Sim.Engine.now e));
    let seq = ref 0 in
    Sim.Host.spawn a ~name:"hb-push" (fun () ->
        let buf = Bytes.create 8 in
        let rec loop () =
          incr seq;
          Bytes.set_int64_le buf 0 (Int64.of_int !seq);
          Rdma.Qp.post_write qa ~wr_id:!seq ~src:buf ~src_off:0 ~len:8 ~mr:mr_b ~dst_off:0;
          ignore (Rdma.Cq.await cq_a);
          Sim.Host.cpu a interval;
          loop ()
        in
        loop ());
    let fps = ref 0 in
    let detected_at = ref None in
    let fail_at = quiet_ns in
    if fail then Sim.Engine.schedule e ~at:fail_at (fun () -> Sim.Host.pause a);
    Sim.Host.spawn b ~name:"checker" (fun () ->
        let suspected = ref false in
        let rec loop () =
          Sim.Host.idle b interval;
          let age = Sim.Engine.now e - !last_arrival in
          if (not !suspected) && age > timeout then begin
            suspected := true;
            if Sim.Engine.now e < fail_at || not fail then incr fps
            else if !detected_at = None then
              detected_at := Some (Sim.Engine.now e - fail_at)
          end
          else if !suspected && age <= timeout then suspected := false;
          loop ()
        in
        loop ());
    let horizon = if fail then quiet_ns + 100_000_000 else quiet_ns in
    Sim.Engine.run ~until:horizon e;
    (!fps, !detected_at)
  in
  let push timeout label =
    let fps_quiet, _ = push_run ~timeout ~fail:false in
    let _, det = push_run ~timeout ~fail:true in
    {
      detector = label;
      detection_us = (match det with Some d -> float_of_int d /. 1000.0 | None -> nan);
      false_positives = fps_quiet;
      observation_s;
    }
  in
  [
    pull;
    push 1_000_000 "push heartbeat, 1 ms timeout";
    push 10_000_000 "push heartbeat, 10 ms timeout";
  ]
