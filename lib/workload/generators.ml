let payload rng ~size =
  let b = Bytes.create size in
  for i = 0 to size - 1 do
    Bytes.set b i (Char.chr (Sim.Rng.int rng 256))
  done;
  b

(* Zipf via the Gray et al. quick approximation: draw u and map through the
   generalized harmonic CDF computed once per (n, theta). *)
let zipf_cache : (int * float, float array) Hashtbl.t = Hashtbl.create 8

let zipf_cdf n theta =
  match Hashtbl.find_opt zipf_cache (n, theta) with
  | Some c -> c
  | None ->
    let weights = Array.init n (fun i -> 1.0 /. (float_of_int (i + 1) ** theta)) in
    let total = Array.fold_left ( +. ) 0.0 weights in
    let cdf = Array.make n 0.0 in
    let acc = ref 0.0 in
    Array.iteri
      (fun i w ->
        acc := !acc +. (w /. total);
        cdf.(i) <- !acc)
      weights;
    Hashtbl.replace zipf_cache (n, theta) cdf;
    cdf

let zipf rng ~n ~theta =
  if theta <= 0.0 then Sim.Rng.int rng n
  else begin
    let cdf = zipf_cdf n theta in
    let u = Sim.Rng.float rng in
    (* Binary search for the first index with cdf >= u. *)
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if cdf.(mid) >= u then hi := mid else lo := mid + 1
    done;
    !lo
  end

(* Arrival-process samplers for the serving tier. All draw exclusively
   from the rng passed in — never from an engine stream — so a run that
   does not construct a serving population stays byte-identical to one
   compiled without lib/serving at all. *)

let poisson_gap rng ~rate =
  if rate <= 0.0 then invalid_arg "Generators.poisson_gap: rate must be positive";
  max 1 (int_of_float (Sim.Rng.exponential rng ~mean:(1.0 /. rate)))

let diurnal_rate ~base ~amplitude ~period_ns ~now =
  if period_ns <= 0 then invalid_arg "Generators.diurnal_rate: period must be positive";
  let phase =
    2.0 *. Float.pi *. (float_of_int (now mod period_ns) /. float_of_int period_ns)
  in
  Float.max (base *. 0.05) (base *. (1.0 +. (amplitude *. sin phase)))

let think_gap rng ~mean_ns =
  if mean_ns <= 0 then invalid_arg "Generators.think_gap: mean must be positive";
  max 0 (int_of_float (Sim.Rng.exponential rng ~mean:(float_of_int mean_ns)))

type kv_mix = { read_ratio : float; keys : int; value_size : int; theta : float }

let default_kv_mix = { read_ratio = 0.5; keys = 10_000; value_size = 32; theta = 0.99 }

let kv_command rng mix ~client:_ ~req_id:_ =
  let key = Printf.sprintf "key-%08d" (zipf rng ~n:mix.keys ~theta:mix.theta) in
  if Sim.Rng.float rng < mix.read_ratio then Apps.Kv_store.Get { key }
  else
    Apps.Kv_store.Put
      { key; value = Bytes.to_string (payload rng ~size:mix.value_size) }

type order_flow = {
  rng : Sim.Rng.t;
  mutable midpoint : int;
  spread : int;
  mutable next_id : int;
  mutable open_ids : int list;
  mutable placed : int;
}

let order_flow ?(midpoint = 10_000) ?(spread = 10) rng =
  { rng; midpoint; spread; next_id = 1; open_ids = []; placed = 0 }

let next_order t =
  let fresh_id () =
    let id = t.next_id in
    t.next_id <- t.next_id + 1;
    id
  in
  let roll = Sim.Rng.float t.rng in
  if roll < 0.08 then begin
    (* Random walk of the midpoint keeps the book moving. *)
    t.midpoint <- max 100 (t.midpoint + Sim.Rng.int t.rng 5 - 2);
    let id = fresh_id () in
    t.placed <- t.placed + 1;
    Apps.Exchange.Market
      {
        id;
        side = (if Sim.Rng.bool t.rng then Apps.Order_book.Buy else Apps.Order_book.Sell);
        qty = 1 + Sim.Rng.int t.rng 20;
      }
  end
  else if roll < 0.18 && t.open_ids <> [] then begin
    match t.open_ids with
    | id :: rest ->
      t.open_ids <- rest;
      Apps.Exchange.Cancel { id }
    | [] -> assert false
  end
  else begin
    let id = fresh_id () in
    t.placed <- t.placed + 1;
    let side = if Sim.Rng.bool t.rng then Apps.Order_book.Buy else Apps.Order_book.Sell in
    let off = Sim.Rng.int t.rng t.spread in
    let price =
      match side with
      | Apps.Order_book.Buy -> t.midpoint - t.spread + off + Sim.Rng.int t.rng (t.spread + 2)
      | Apps.Order_book.Sell -> t.midpoint + t.spread - off - Sim.Rng.int t.rng (t.spread + 2)
    in
    let price = max 1 price in
    if List.length t.open_ids < 512 then t.open_ids <- id :: t.open_ids;
    Apps.Exchange.Limit { id; side; price; qty = 1 + Sim.Rng.int t.rng 10 }
  end

let order_flow_orders_placed t = t.placed
