(** Workload generators for the evaluation harness (§7).

    The paper's experiments use small fixed-size payloads (64 B unless
    stated, §7), KV operations over a keyspace, and a stream of exchange
    orders. All generators are deterministic given their PRNG. *)

val payload : Sim.Rng.t -> size:int -> Bytes.t
(** Random opaque payload of the given size. *)

val zipf : Sim.Rng.t -> n:int -> theta:float -> int
(** Zipfian key index in [0, n) with skew [theta] (0 = uniform; 0.99 =
    YCSB default). Uses the standard rejection-free approximation. *)

(** {1 Arrival-process samplers}

    Used by the serving tier's open-loop population model. Each draws
    {e only} from the [Sim.Rng.t] passed in — never from an engine
    stream — so serving-off runs stay byte-identical to seed. *)

val poisson_gap : Sim.Rng.t -> rate:float -> int
(** Exponential inter-arrival gap (≥ 1 ns) for a Poisson process of
    [rate] events per ns. Raises [Invalid_argument] on a non-positive
    rate. *)

val diurnal_rate : base:float -> amplitude:float -> period_ns:int -> now:int -> float
(** Sinusoidal day/night modulation of a base arrival rate:
    [base · (1 + amplitude · sin(2π · now/period))], floored at 5% of
    [base]. Pure — no randomness. *)

val think_gap : Sim.Rng.t -> mean_ns:int -> int
(** Exponential per-client think time with the given mean. *)

type kv_mix = { read_ratio : float; keys : int; value_size : int; theta : float }

val default_kv_mix : kv_mix

val kv_command : Sim.Rng.t -> kv_mix -> client:int -> req_id:int -> Apps.Kv_store.command
(** One GET/PUT per the mix. *)

(** A stream of plausible exchange order flow: limit orders around a
    drifting midpoint, occasional market orders and cancels. *)
type order_flow

val order_flow : ?midpoint:int -> ?spread:int -> Sim.Rng.t -> order_flow

val next_order : order_flow -> Apps.Exchange.command
(** Generate the next command; ids are unique and increasing. *)

val order_flow_orders_placed : order_flow -> int
