(** Experiment drivers: one function per paper figure/table (see
    DESIGN.md's experiment index). Each driver builds a fresh simulated
    cluster, runs the workload, and returns the same statistics the paper
    plots. The bench harness ([bench/main.ml]) formats them next to the
    paper's numbers. *)

type setup = {
  seed : int64;
  cal : Sim.Calibration.t;
  trace : Trace.Tracer.t option;
      (** When set, every engine an experiment creates gets this tracer
          attached; fail-over rounds additionally emit per-phase spans
          under category ["failover"]. *)
  metrics : Telemetry.Sampler.t option;
      (** When set, every engine gets the sampler's registry attached
          ({!Sim.Engine.set_metrics}) and a sampler fiber ticking on
          virtual time; each experiment run opens a new sampler epoch.
          Fail-over rounds additionally record [failover_*_ns]
          histograms. *)
  faults : Faults.Scenario.t option;
      (** When set, the scenario is injected over the Mu cluster of every
          cluster experiment (replication latency, fail-over); scenario
          host ids are replica ids. Experiments with private topologies
          (baselines, microbenchmarks) ignore it. *)
  provenance : bool;
      (** When true (and a tracer is attached), every engine records causal
          request spans ({!Sim.Engine.set_provenance}): the latency drivers
          wrap each measured propose in a ["request"] span whose sync
          children partition the end-to-end latency. Off by default — a
          provenance-off run is byte-identical to the seed. *)
  on_engine : (Sim.Engine.t -> unit) option;
      (** When set, called on every engine {!run_sim} creates, after
          tracer/provenance/metrics are attached and before the
          experiment fiber spawns — the hook the online monitor attaches
          through. Must not consume engine PRNG. *)
}

val default_setup : setup

val run_sim : setup -> ?until:int -> (Sim.Engine.t -> 'a) -> 'a
(** Run one simulation to completion of [f]: a fresh engine seeded from
    the setup, with tracer/provenance/metrics-sampler attached per the
    setup's fields, [f] spawned as the experiment fiber, and the engine
    run (bounded by [until] when given). Fails if [f] does not complete
    — a deadlock or an exhausted [until] budget. Exposed so external
    drivers (e.g. the serving tier's surface sweep) compose with the
    same instrumentation contract as the figure experiments. *)

(** {1 Fig. 2 — permission-switch mechanisms vs log size} *)

type fig2_row = {
  log_size : int;  (** Bytes. *)
  qp_flags_us : float;  (** Median, microseconds. *)
  qp_restart_us : float;
  mr_rereg_us : float;
}

val fig2_permission_switch : setup -> samples:int -> sizes:int list -> fig2_row list

(** {1 Fig. 3 / Fig. 4 — replication latency} *)

val mu_replication_latency :
  setup ->
  samples:int ->
  payload:int ->
  attach:Mu.Config.attach_mode ->
  Sim.Stats.Samples.t
(** Mu's replication latency: the leader-side capture→commit span of one
    propose (standalone runs use [Standalone]; attached runs add the
    direct/handover capture cost, §7.1). *)

val baseline_replication_latency :
  setup -> samples:int -> system:[ `Dare | `Apus | `Hermes | `Hovercraft ] -> payload:int ->
  Sim.Stats.Samples.t
(** Replication latency of a comparison system on the same fabric. *)

(** {1 Fig. 5 — end-to-end client latency} *)

type e2e_system = Unreplicated | With_mu | With_apus | Dare_kv

val end_to_end_latency :
  setup -> samples:int -> app:Apps.Transport.kind -> system:e2e_system ->
  Sim.Stats.Samples.t
(** Client-observed request latency: transport legs + server-side capture,
    replication (if any) and application execution. *)

val herd_real : setup -> samples:int -> replicated:bool -> Sim.Stats.Samples.t
(** Client-to-client latency of the {e executable} HERD server
    ({!Apps.Herd}), optionally replicated with Mu in the Fig. 1
    composition — a cross-check of the calibrated transport model used by
    {!end_to_end_latency}. *)

val liquibook_real : setup -> samples:int -> replicated:bool -> Sim.Stats.Samples.t
(** Client latency of the {e executable} Liquibook service: the real
    matching engine behind the {!Apps.Erpc} layer, optionally replicated
    with Mu — the Fig. 5 panel 1 cross-check. *)

(** {1 Fig. 6 — fail-over time} *)

type failover_stats = {
  total : Sim.Stats.Samples.t;  (** Failure injection → new leader serving. *)
  detection : Sim.Stats.Samples.t;  (** Injection → new leader elected. *)
  switch : Sim.Stats.Samples.t;  (** Election → confirmed followers ready
                                     (permission switches + catch-up). *)
}

val failover : setup -> rounds:int -> failover_stats

val dare_failover : setup -> rounds:int -> Sim.Stats.Samples.t
(** Measured fail-over of the executable DARE election
    ({!Baselines.Dare_election}): pause the leader, time until a follower
    wins a term. The paper reports ~30 ms (§1). *)

(** {1 Fig. 7 — throughput vs latency} *)

type throughput_point = {
  batch : int;
  outstanding : int;
  ops_per_us : float;
  median_latency_ns : int;
  p99_latency_ns : int;
}

val throughput_point :
  setup -> requests:int -> batch:int -> outstanding:int -> throughput_point

val sharded_throughput : setup -> requests:int -> shards:int -> float
(** Aggregate throughput (ops/µs) of [shards] parallel Mu instances over
    commuting (per-shard-key) operations — the §8 extension. *)

(** {1 Ablations (DESIGN.md §6)} *)

val ablation_omit_prepare : setup -> samples:int -> Sim.Stats.Samples.t * Sim.Stats.Samples.t
(** (with omit-prepare, without): propose latency. *)

val mu_latency_persistence :
  setup -> samples:int -> persistent:bool -> Sim.Stats.Samples.t
(** Propose latency with or without the persistent-log extension (remote
    flush before ack — the durability the paper anticipates from
    RDMA-to-persistent-memory hardware, §1). *)

val ablation_permissions : setup -> samples:int -> Sim.Stats.Samples.t * Sim.Stats.Samples.t
(** (Mu one-sided write with permissions, Disk-Paxos-style write-then-read
    race detection): replication span per request. *)

type fd_result = {
  detector : string;
  detection_us : float;  (** Median detection latency after a real failure. *)
  false_positives : int;  (** Spurious failure declarations in a quiet run. *)
  observation_s : float;  (** Quiet-run length (simulated seconds). *)
}

val ablation_failure_detector : setup -> fd_result list
(** Pull-score (Mu, §5.1) vs a conventional push-heartbeat detector with
    1 ms and 10 ms timeouts, under identical network jitter. *)
