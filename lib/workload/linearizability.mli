(** A linearizability checker for key-value histories.

    Mu claims linearizability (§1, §2.2); this module lets tests verify
    the claim empirically: record each client operation's invocation and
    response times plus its observed result, and {!check} searches for a
    legal linearization — a total order of the operations that (a)
    respects real-time precedence (an operation that responded before
    another was invoked must come first) and (b) is a valid sequential
    KV execution producing exactly the observed results.

    The search is the standard Wing & Gong backtracking restricted to
    register semantics per key; histories are checked per key
    independently (KV operations on distinct keys commute). Intended for
    test-sized histories (hundreds of operations). *)

type op_kind =
  | Read of string option  (** Observed value ([None] = not found). *)
  | Write of string
  | Erase  (** Delete: sets the register back to [None]. *)

type op = {
  proc : int;  (** Client id (operations of one client never overlap). *)
  invoked : int;  (** Virtual invocation time. *)
  responded : int;  (** Virtual response time ([max_int] = never). *)
  key : string;
  kind : op_kind;
}

val check : op list -> bool
(** Whether the history is linearizable. *)

val check_key : op list -> bool
(** Check a single-key history (all ops must share one key). *)

(** {1 Minimal counterexample}

    When a history is not linearizable, a bare [false] forces whoever is
    debugging to stare at the whole run. {!witness} instead minimizes the
    failure: it picks the (alphabetically first) failing key and greedily
    removes operations whose absence keeps the sub-history failing,
    yielding the shortest failing prefix the minimizer can reach plus the
    set of still-open (never-responded) operations in it.

    Soundness: every candidate removal is itself re-checked, and a write
    (or erase) is only dropped when no retained read could have observed
    its effect — removing an op can otherwise manufacture a spurious
    violation (a read of a value whose write was deleted). The witness is
    therefore a genuine sub-history of real events that is non-linearizable
    on its own. Deterministic: the same history always minimizes to the
    same witness. *)

type witness = {
  wkey : string;  (** The failing key. *)
  wops : op list;  (** Minimal failing sub-history, invocation order. *)
  wpending : op list;
      (** Ops in {!wops} with an open response interval — invoked but
          never answered (crashed leader, horizon cut). Their placement
          is unconstrained on the right, so they are the usual suspects. *)
}

val witness : op list -> witness option
(** [None] iff the history is linearizable ({!check} agreement). *)

val pp_witness : witness Fmt.t
(** Multi-line rendering: one op per line with real-time intervals and
    observed results, pending ops flagged. *)
