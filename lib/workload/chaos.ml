(* Chaos harness: run a Mu cluster under an injected fault scenario while
   KV clients collect a real-time history, then check the two safety nets
   the paper's claims rest on — the Appendix A invariants over replica
   state and linearizability of the observed history (§2.2). *)

type scripted_op = { s_think : int; s_req : int; s_cmd : Apps.Kv_store.command }

type recorded = {
  r_proc : int;
  r_req : int;
  r_invoked : int;
  r_responded : int;
  r_cmd : Apps.Kv_store.command;
  r_reply : Apps.Kv_store.reply option;
}

type outcome = {
  seed : int64;
  n : int;
  scenario : Faults.Scenario.t;
  completed : bool;
  ops : int;
  committed : int;
  linearizable : bool;
  witness : Linearizability.witness option;
  record : recorded list;
  violations : Mu.Invariants.violation list;
  rejoins : Mu.Smr.rejoin list;
  shed : int;
  degraded_ns : int;
}

let passed o = o.linearizable && o.violations = [] && o.completed

let pp_outcome ppf o =
  Fmt.pf ppf "%-18s seed=%-8Ld n=%d  %4d ops, %4d committed%s  %s"
    o.scenario.Faults.Scenario.name o.seed o.n o.ops o.committed
    (match o.rejoins with
    | [] -> ""
    | rs ->
      Fmt.str ", %d rejoin%s (%s)" (List.length rs)
        (if List.length rs = 1 then "" else "s")
        (String.concat ", "
           (List.map
              (fun r ->
                Printf.sprintf "host %d: %d entries in %dus" r.Mu.Smr.pid
                  r.Mu.Smr.entries_pulled
                  ((r.Mu.Smr.parity_at - r.Mu.Smr.restarted_at) / 1_000))
              rs)))
    (if passed o then "ok"
     else
       String.concat ", "
         ((if o.completed then [] else [ "stalled" ])
         @ (if o.linearizable then [] else [ "NOT LINEARIZABLE" ])
         @
         match o.violations with
         | [] -> []
         | vs -> [ Printf.sprintf "%d invariant violation(s)" (List.length vs) ]));
  (* Passing outcomes keep their historical one-line format; the witness
     only ever extends a failing line, so existing golden output (CI
     double-run [cmp]) is unchanged. *)
  match o.witness with
  | None -> ()
  | Some w -> Fmt.pf ppf "@\n  %a" Linearizability.pp_witness w

(* One client fiber: closed-loop Puts/Gets on a small shared key space,
   each op recorded with its invocation/response times. Request ids make
   retries idempotent (the KV app deduplicates), so the at-least-once
   delivery of SMR under leader change stays linearizable. *)
let client_fiber e smr ~proc ~ops ~think ~keys ~history ~pending ~on_done =
  let rng = Sim.Rng.split (Sim.Engine.rng e) in
  Mu.Smr.wait_live smr;
  for i = 1 to ops do
    if think > 0 && i > 1 then Sim.Engine.sleep e think;
    let key = keys.(Sim.Rng.int rng (Array.length keys)) in
    let cmd =
      if Sim.Rng.bool rng then
        Apps.Kv_store.Put { key; value = Printf.sprintf "c%d-%d" proc i }
      else Apps.Kv_store.Get { key }
    in
    let payload = Apps.Kv_store.encode_command ~client:proc ~req_id:i cmd in
    let invoked = Sim.Engine.now e in
    Hashtbl.replace pending proc (invoked, key, cmd);
    (* The client_op span labels the detached "request" span that
       [Smr.submit] opens underneath it with (proc, req, key, op), so
       [mu_demo explain] can name the requests caught in a fail-over.
       A shed reply (degraded leader past its queue bound) is retried
       after a back-off under the same invocation time: the operation is
       still one linearizability event, it just took longer to admit. *)
    let rec attempt () =
      let reply = Mu.Smr.submit smr payload in
      if Mu.Smr.is_retryable reply then begin
        Sim.Engine.sleep e 500_000;
        attempt ()
      end
      else reply
    in
    let reply =
      Sim.Engine.span_scope e
        ~args:
          [
            ("proc", string_of_int proc);
            ("req", string_of_int i);
            ("key", key);
            ( "op",
              match cmd with
              | Apps.Kv_store.Put _ -> "put"
              | Apps.Kv_store.Get _ -> "get"
              | Apps.Kv_store.Delete _ -> "delete" );
          ]
        "client_op" attempt
    in
    let responded = Sim.Engine.now e in
    Hashtbl.remove pending proc;
    let kind =
      match cmd, Apps.Kv_store.decode_reply reply with
      | Apps.Kv_store.Put { value; _ }, _ -> Linearizability.Write value
      | Apps.Kv_store.Get _, Some (Apps.Kv_store.Value v) ->
        Linearizability.Read (Some v)
      | (Apps.Kv_store.Get _ | Apps.Kv_store.Delete _), _ ->
        Linearizability.Read None
    in
    history :=
      { Linearizability.proc; invoked; responded; key; kind } :: !history
  done;
  on_done ()

(* One scripted client fiber: replays a generated op list verbatim —
   think gap, request id and command all come from the script — and
   records every decoded reply so the modelcheck conformance layer can
   compare the run against the pure reference model. Shed replies retry
   with the same back-off as the random clients, under the same
   invocation time. *)
let scripted_fiber e smr ~proc ~script ~records ~pending ~on_done =
  Mu.Smr.wait_live smr;
  List.iter
    (fun { s_think; s_req; s_cmd } ->
      if s_think > 0 then Sim.Engine.sleep e s_think;
      let payload = Apps.Kv_store.encode_command ~client:proc ~req_id:s_req s_cmd in
      let invoked = Sim.Engine.now e in
      Hashtbl.replace pending proc (invoked, s_req, s_cmd);
      let rec attempt () =
        let reply = Mu.Smr.submit smr payload in
        if Mu.Smr.is_retryable reply then begin
          Sim.Engine.sleep e 500_000;
          attempt ()
        end
        else reply
      in
      let key =
        match s_cmd with
        | Apps.Kv_store.Get { key } | Apps.Kv_store.Delete { key } -> key
        | Apps.Kv_store.Put { key; _ } -> key
      in
      let reply =
        Sim.Engine.span_scope e
          ~args:
            [
              ("proc", string_of_int proc);
              ("req", string_of_int s_req);
              ("key", key);
              ( "op",
                match s_cmd with
                | Apps.Kv_store.Put _ -> "put"
                | Apps.Kv_store.Get _ -> "get"
                | Apps.Kv_store.Delete _ -> "delete" );
            ]
          "client_op" attempt
      in
      let responded = Sim.Engine.now e in
      Hashtbl.remove pending proc;
      records :=
        {
          r_proc = proc;
          r_req = s_req;
          r_invoked = invoked;
          r_responded = responded;
          r_cmd = s_cmd;
          r_reply = Apps.Kv_store.decode_reply reply;
        }
        :: !records)
    script;
  on_done ()

(* Linearizability view of one recorded op. Deletes are erases; a write
   or erase that never answered stays with an open interval (it may have
   taken effect); a read that never answered (or answered garbage)
   observed nothing and is dropped. *)
let history_of_recorded r =
  let key =
    match r.r_cmd with
    | Apps.Kv_store.Get { key } | Apps.Kv_store.Delete { key } -> key
    | Apps.Kv_store.Put { key; _ } -> key
  in
  let kind =
    match (r.r_cmd, r.r_reply) with
    | Apps.Kv_store.Put { value; _ }, _ -> Some (Linearizability.Write value)
    | Apps.Kv_store.Delete _, _ -> Some Linearizability.Erase
    | Apps.Kv_store.Get _, Some (Apps.Kv_store.Value v) ->
      Some (Linearizability.Read (Some v))
    | Apps.Kv_store.Get _, Some _ -> Some (Linearizability.Read None)
    | Apps.Kv_store.Get _, None -> None
  in
  Option.map
    (fun kind ->
      {
        Linearizability.proc = r.r_proc;
        invoked = r.r_invoked;
        responded = r.r_responded;
        key;
        kind;
      })
    kind

let run ?trace ?metrics ?on_engine ?(provenance = false) ?(clients = 4)
    ?(ops_per_client = 25) ?(think = 0) ?(horizon = 2_000_000_000)
    ?(durable = true) ?(queue_limit = 0) ?script ~seed ~n scenario =
  let e = Sim.Engine.create ~seed () in
  (match trace with Some tr -> Trace.Tracer.attach tr e | None -> ());
  if provenance then Sim.Engine.set_provenance e true;
  (* Same shape as Experiments.run_sim: the sampler fiber ticks on
     virtual time and dies with the engine; attaching it consumes no
     PRNG, so the protocol schedule is unchanged. *)
  (match metrics with
  | Some sampler ->
    Sim.Engine.set_metrics e (Telemetry.Sampler.registry sampler);
    Telemetry.Sampler.start_epoch sampler;
    let interval = Telemetry.Sampler.interval sampler in
    Sim.Engine.spawn e ~name:"telemetry-sampler" (fun () ->
        let rec loop () =
          Telemetry.Sampler.tick sampler ~now:(Sim.Engine.now e);
          Sim.Engine.sleep e interval;
          loop ()
        in
        loop ())
  | None -> ());
  (match on_engine with Some f -> f e | None -> ());
  let cfg =
    {
      Mu.Config.default with
      Mu.Config.n;
      log_slots = 4096;
      recycle_interval = 1_000_000;
      durable_state = durable;
      queue_limit;
    }
  in
  let smr =
    Mu.Smr.create e Sim.Calibration.default cfg ~make_app:(fun _ ->
        Apps.Kv_store.smr_app ())
  in
  Mu.Smr.start smr;
  (* Host lookups re-resolve through the cluster on every event: a
     restart replaces the replica (and its host) under the same id, and
     later faults must land on the new incarnation. *)
  Faults.Injector.install e
    ~hosts:(fun pid ->
      if pid >= 0 && pid < Array.length (Mu.Smr.replicas smr) then
        Some (Mu.Smr.replica smr pid).Mu.Replica.host
      else None)
    ~restart:(fun pid -> Mu.Smr.restart_replica smr ~id:pid)
    scenario;
  let history = ref [] in
  let records = ref [] in
  let pending = Hashtbl.create 8 in
  let spending = Hashtbl.create 8 in
  let nclients =
    match script with Some ss -> List.length ss | None -> clients
  in
  let remaining = ref nclients in
  let completed = ref false in
  let keys = [| "a"; "b"; "c" |] in
  let on_done () =
    decr remaining;
    if !remaining = 0 then begin
      (* Quiesce: run past the last scheduled restart (clients
         often finish before a late restart fires), give any
         rejoin pipeline a bounded window to reach log parity,
         then let stragglers (replayers, recycler, elections
         after the last fault) settle before the state checks.
         Only restarts extend the run — they are the one fault
         whose effect (a completed rejoin) the outcome reports. *)
      let restart_horizon =
        List.fold_left
          (fun a ev ->
            match ev.Faults.Scenario.action with
            | Faults.Scenario.Restart _ -> max a ev.Faults.Scenario.at
            | _ -> a)
          0 scenario.Faults.Scenario.events
      in
      if Sim.Engine.now e < restart_horizon + 1_000 then
        Sim.Engine.sleep e (restart_horizon + 1_000 - Sim.Engine.now e);
      let budget = ref 100 in
      while Mu.Smr.restarts_in_flight smr > 0 && !budget > 0 do
        decr budget;
        Sim.Engine.sleep e 1_000_000
      done;
      Sim.Engine.sleep e 5_000_000;
      completed := true;
      Mu.Smr.stop smr;
      Sim.Engine.halt e
    end
  in
  (match script with
  | Some scripts ->
    List.iteri
      (fun i script ->
        let proc = i + 1 in
        Sim.Engine.spawn e
          ~name:(Printf.sprintf "chaos-client-%d" proc)
          (fun () ->
            scripted_fiber e smr ~proc ~script ~records ~pending:spending
              ~on_done))
      scripts
  | None ->
    for proc = 1 to clients do
      Sim.Engine.spawn e
        ~name:(Printf.sprintf "chaos-client-%d" proc)
        (fun () ->
          client_fiber e smr ~proc ~ops:ops_per_client ~think ~keys ~history
            ~pending ~on_done)
    done);
  Sim.Engine.run ~until:horizon e;
  (* A run that stalled (e.g. a scenario that left no majority) still gets
     checked for safety: writes that never responded may or may not have
     taken effect, so they stay in the history with an open interval —
     the checker may linearize them anywhere after their invocation.
     Unresponded reads observed nothing and are dropped. *)
  let record, history =
    match script with
    | None ->
      let history = !history in
      let history =
        if !completed then history
        else
          Hashtbl.fold
            (fun proc (invoked, key, cmd) acc ->
              match cmd with
              | Apps.Kv_store.Put { value; _ } ->
                {
                  Linearizability.proc;
                  invoked;
                  responded = max_int;
                  key;
                  kind = Linearizability.Write value;
                }
                :: acc
              | Apps.Kv_store.Get _ | Apps.Kv_store.Delete _ -> acc)
            pending history
      in
      ([], history)
    | Some _ ->
      let record =
        Hashtbl.fold
          (fun proc (invoked, req, cmd) acc ->
            {
              r_proc = proc;
              r_req = req;
              r_invoked = invoked;
              r_responded = max_int;
              r_cmd = cmd;
              r_reply = None;
            }
            :: acc)
          spending !records
      in
      let record =
        List.sort
          (fun a b ->
            compare (a.r_invoked, a.r_proc, a.r_req)
              (b.r_invoked, b.r_proc, b.r_req))
          record
      in
      (record, List.filter_map history_of_recorded record)
  in
  (* Re-read the replica array: restarts swap entries in place, and the
     safety checks must see the final incarnations. *)
  let replicas = Mu.Smr.replicas smr in
  let witness = Linearizability.witness history in
  {
    seed;
    n;
    scenario;
    completed = !completed;
    ops = List.length history;
    committed =
      Array.fold_left (fun acc r -> max acc (Mu.Log.fuo r.Mu.Replica.log)) 0 replicas;
    linearizable = Option.is_none witness;
    witness;
    record;
    violations = Mu.Invariants.check_all replicas;
    rejoins = Mu.Smr.rejoins smr;
    shed = Mu.Smr.shed_requests smr;
    degraded_ns = Mu.Smr.degraded_total_ns smr;
  }

(* --- minimized repro ----------------------------------------------------- *)

(* Everything needed to replay a failing run byte-for-byte: the seed, the
   replica count and the full scenario. The violation summary is carried
   for humans; replay only needs the first three. *)
let repro_json o =
  Faults.Json.to_string
    (Faults.Json.Obj
       [
         ("seed", Faults.Json.Str (Int64.to_string o.seed));
         ("n", Faults.Json.num_of_int o.n);
         ("scenario", Faults.Scenario.to_json o.scenario);
         ( "violation",
           Faults.Json.Str
             (if not o.linearizable then "history not linearizable"
              else if o.violations <> [] then
                Fmt.str "%a" (Fmt.list Mu.Invariants.pp_violation) o.violations
              else if not o.completed then "liveness stall (clients never finished)"
              else "none") );
       ])

let parse_repro s =
  let ( let* ) = Result.bind in
  let* j = Faults.Json.of_string s in
  let* seed =
    match Option.bind (Faults.Json.member "seed" j) Faults.Json.to_str with
    | Some s -> (
      match Int64.of_string_opt s with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "repro: bad seed %S" s))
    | None -> Error "repro: missing \"seed\""
  in
  let* n =
    match Option.bind (Faults.Json.member "n" j) Faults.Json.to_int with
    | Some n -> Ok n
    | None -> Error "repro: missing \"n\""
  in
  let* scenario =
    match Faults.Json.member "scenario" j with
    | Some sj -> Faults.Scenario.of_json sj
    | None -> Error "repro: missing \"scenario\""
  in
  let* () = Faults.Scenario.validate ~n scenario in
  Ok (seed, n, scenario)

(* --- randomized sweep ----------------------------------------------------- *)

type sweep = {
  runs : int;
  failures : outcome list;
  coverage : Faults.Scenario.coverage;
}

(* Each iteration derives its own seed from the sweep's root PRNG; the
   scenario is generated from that seed and the engine is seeded with it
   too, so one 64-bit number replays the whole run. *)
let sweep ?(count = 50) ?(ns = [ 3; 5 ]) ?log ~seed () =
  let root = Sim.Rng.create seed in
  let ns = Array.of_list ns in
  let failures = ref [] in
  let scenarios = ref [] in
  for i = 0 to count - 1 do
    let run_seed = Sim.Rng.int64 root in
    let n = ns.(i mod Array.length ns) in
    let scenario =
      Faults.Scenario.generate (Sim.Rng.create run_seed) ~n ~horizon:40_000_000
    in
    scenarios := scenario :: !scenarios;
    let o = run ~seed:run_seed ~n scenario in
    if not (passed o) then failures := o :: !failures;
    match log with Some f -> f i o | None -> ()
  done;
  {
    runs = count;
    failures = List.rev !failures;
    coverage = Faults.Scenario.coverage (List.rev !scenarios);
  }
