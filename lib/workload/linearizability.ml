type op_kind = Read of string option | Write of string | Erase

type op = { proc : int; invoked : int; responded : int; key : string; kind : op_kind }

(* Backtracking search for a linearization of one key's history. State is
   the current register value. A candidate for the next linearization
   point is any remaining operation invoked before every remaining
   operation's response (i.e., not real-time-after any remaining op). *)
let check_key ops =
  (match ops with
  | [] -> ()
  | first :: rest ->
    List.iter (fun o -> if o.key <> first.key then invalid_arg "check_key: multiple keys") rest);
  let arr = Array.of_list ops in
  let n = Array.length arr in
  let used = Array.make n false in
  let rec go remaining state =
    if remaining = 0 then true
    else begin
      (* minimum response time among remaining ops *)
      let min_res = ref max_int in
      for i = 0 to n - 1 do
        if (not used.(i)) && arr.(i).responded < !min_res then min_res := arr.(i).responded
      done;
      let rec try_candidates i =
        if i >= n then false
        else if used.(i) || arr.(i).invoked > !min_res then try_candidates (i + 1)
        else begin
          let o = arr.(i) in
          let ok, state' =
            match o.kind with
            | Write v -> (true, Some v)
            | Erase -> (true, None)
            | Read observed -> (observed = state, state)
          in
          if ok then begin
            used.(i) <- true;
            if go (remaining - 1) state' then true
            else begin
              used.(i) <- false;
              try_candidates (i + 1)
            end
          end
          else try_candidates (i + 1)
        end
      in
      try_candidates 0
    end
  in
  go n None

let by_key ops =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun o ->
      let cur = Option.value (Hashtbl.find_opt tbl o.key) ~default:[] in
      Hashtbl.replace tbl o.key (o :: cur))
    ops;
  (* Deterministic key order: the same history must always yield the same
     verdict path (and, below, the same witness). *)
  Hashtbl.fold (fun k key_ops acc -> (k, List.rev key_ops) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let check ops = List.for_all (fun (_, key_ops) -> check_key key_ops) (by_key ops)

(* --- minimal counterexample ---------------------------------------------- *)

type witness = { wkey : string; wops : op list; wpending : op list }

(* An op is safe to *try* removing when no retained read could have
   observed its effect: reads only constrain, so dropping one never
   manufactures a failure; a write is only droppable when no retained
   read observed its value (take a valid linearization of the full
   history and delete the write — every retained read sat outside the
   deleted value's reign, so the shorter sequence is still valid); an
   erase is only droppable when no retained read observed [None] (the
   erase's reign is the [None] segment it opens). Each candidate is then
   re-checked to still fail, so the witness is a genuine counterexample. *)
let removable retained o =
  match o.kind with
  | Read _ -> true
  | Write v ->
    not
      (List.exists
         (fun r -> r != o && match r.kind with Read (Some u) -> u = v | _ -> false)
         retained)
  | Erase ->
    not
      (List.exists
         (fun r -> r != o && match r.kind with Read None -> true | _ -> false)
         retained)

let minimize_key ops =
  (* Invocation order with a total tie-break, so the greedy scan —
     last-to-first, repeated to fixpoint — visits ops in one fixed order
     regardless of how the caller accumulated the history. *)
  let ops =
    List.stable_sort
      (fun a b -> compare (a.invoked, a.responded, a.proc) (b.invoked, b.responded, b.proc))
      ops
  in
  let current = ref ops in
  let progress = ref true in
  while !progress do
    progress := false;
    (* Scan from the back: suffix ops fall first, shortening the prefix. *)
    List.iter
      (fun o ->
        let kept = List.filter (fun x -> x != o) !current in
        if
          List.memq o !current && removable !current o && kept <> []
          && not (check_key kept)
        then begin
          current := kept;
          progress := true
        end)
      (List.rev !current)
  done;
  !current

let witness ops =
  let rec first_failing = function
    | [] -> None
    | (key, key_ops) :: rest ->
      if check_key key_ops then first_failing rest else Some (key, key_ops)
  in
  match first_failing (by_key ops) with
  | None -> None
  | Some (key, key_ops) ->
    let wops = minimize_key key_ops in
    { wkey = key; wops; wpending = List.filter (fun o -> o.responded = max_int) wops }
    |> Option.some

let pp_op ppf o =
  let kind =
    match o.kind with
    | Write v -> Printf.sprintf "write %S" v
    | Erase -> "erase"
    | Read (Some v) -> Printf.sprintf "read -> %S" v
    | Read None -> "read -> (none)"
  in
  if o.responded = max_int then
    Fmt.pf ppf "proc %d  [%d, open)      %-18s PENDING" o.proc o.invoked kind
  else Fmt.pf ppf "proc %d  [%d, %d]  %s" o.proc o.invoked o.responded kind

let pp_witness ppf w =
  Fmt.pf ppf "key %S: %d-op failing sub-history (%d pending)" w.wkey
    (List.length w.wops) (List.length w.wpending);
  (* Forced newlines, not box breaks: the witness is embedded in outcome
     lines printed outside any formatting box. *)
  List.iter (fun o -> Fmt.pf ppf "@\n    %a" pp_op o) w.wops
