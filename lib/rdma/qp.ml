type link = { mutable up : bool }

(* A posted receive buffer awaiting a Send from the peer. *)
type recv = { rwr_id : int; rdst : Bytes.t; rdst_off : int; rmax_len : int }

(* A Send that arrived before any receive was posted: under RC the
   requester NIC retries (RNR-NAK) until the responder posts a buffer. *)
type pending_send = { payload : Bytes.t; complete : arrived_at:int -> len:int -> unit }

(* Telemetry handles, per-host labels (one instrument shared by all of a
   host's QPs — per-QP labels would explode cardinality). *)
type qp_tel = {
  posted : Telemetry.Registry.counter;
  completed : Telemetry.Registry.counter;
  outstanding_g : Telemetry.Registry.gauge;
}

type t = {
  host : Sim.Host.t;
  cq : Cq.t;
  tel : qp_tel option;
  mutable peer : t option;
  mutable state : Verbs.qp_state;
  mutable acc : Verbs.access;
  mutable outstanding : int;
  mutable last_arrival : int;  (* monotonic arrival clock at the responder *)
  mutable last_completion : int;  (* monotonic completion clock at the requester *)
  mutable link : link;
  recvq : recv Queue.t;
  pending_sends : pending_send Queue.t;
}

let create host ~cq =
  let tel =
    match Sim.Engine.metrics (Sim.Host.engine host) with
    | None -> None
    | Some reg ->
      let labels = [ ("host", Sim.Host.name host) ] in
      Some
        {
          posted = Telemetry.Registry.counter reg ~help:"Work requests posted" ~labels
              "rdma_wr_posted_total";
          completed = Telemetry.Registry.counter reg ~help:"Work completions delivered" ~labels
              "rdma_wr_completed_total";
          outstanding_g = Telemetry.Registry.gauge reg ~help:"Posted-but-uncompleted WRs" ~labels
              "rdma_wr_outstanding";
        }
  in
  {
    host;
    cq;
    tel;
    peer = None;
    state = Verbs.Reset;
    acc = Verbs.access_none;
    outstanding = 0;
    last_arrival = 0;
    last_completion = 0;
    link = { up = true };
    recvq = Queue.create ();
    pending_sends = Queue.create ();
  }

let connect a b =
  if a.peer <> None || b.peer <> None then invalid_arg "Qp.connect: already connected";
  a.peer <- Some b;
  b.peer <- Some a;
  let link = { up = true } in
  a.link <- link;
  b.link <- link;
  a.state <- Verbs.Rts;
  b.state <- Verbs.Rts

let host t = t.host
let peer t = t.peer
let state t = t.state
let access t = t.acc
let set_access t acc = t.acc <- acc

let engine t = Sim.Host.engine t.host
let cal t = Sim.Host.calibration t.host

(* Transitions into ERR are the observable edge the failure detector and
   permission slow path react to, so they get an instant probe event. *)
let mark_err t =
  if t.state <> Verbs.Err then begin
    t.state <- Verbs.Err;
    let e = engine t in
    if Sim.Engine.traced e then
      Sim.Engine.trace_instant e ~cat:"rdma" ~pid:(Sim.Host.id t.host) "qp_err"
  end

let set_state t s = if s = Verbs.Err then mark_err t else t.state <- s
let repair t = if t.state = Verbs.Err then t.state <- Verbs.Rts

(* Tear down a connection for good: both endpoints go to ERR and stay
   there (repair would bring them back, but a disconnected pair is meant
   to be replaced by fresh QPs — the re-establishment path a host takes
   after a reboot). Posted-but-undelivered operations still complete,
   with whatever status the transport assigns them. *)
let disconnect t =
  mark_err t;
  match t.peer with Some p -> mark_err p | None -> ()
let outstanding t = t.outstanding
let link_up t = t.link.up
let set_link_up t up = t.link.up <- up

let tel_post t =
  match t.tel with
  | None -> ()
  | Some m ->
    Telemetry.Registry.Counter.inc m.posted;
    Telemetry.Registry.Gauge.add m.outstanding_g 1

let tel_complete t =
  match t.tel with
  | None -> ()
  | Some m ->
    Telemetry.Registry.Counter.inc m.completed;
    Telemetry.Registry.Gauge.add m.outstanding_g (-1)

let kind_name = function
  | `Write -> "write"
  | `Read -> "read"
  | `Send -> "send"
  | `Recv -> "recv"

(* Async-span pairing id: host id composed with wr_id so concurrent posts
   from different hosts never collide. *)
let async_id t wr_id = ((Sim.Host.id t.host + 1) lsl 40) lor (wr_id land 0xFF_FFFF_FFFF)

let trace_post t ~wr_id ~kind ~len =
  let e = engine t in
  if Sim.Engine.traced e then
    Sim.Engine.trace_async_begin e ~cat:"rdma" ~pid:(Sim.Host.id t.host)
      ~id:(async_id t wr_id)
      ~args:[ ("len", string_of_int len) ]
      (kind_name kind)

(* Provenance child span per posted operation, parented on the posting
   fiber's current span — so each follower's accept write is a separate
   child of the leader's "accept" phase and quorum stragglers are
   attributable. Closed (with the completion status) by
   [deliver_completion], possibly from the scheduler context. *)
let prov_post t ~kind ~len =
  let e = engine t in
  if not (Sim.Engine.provenance_on e) then 0
  else
    let peer = match t.peer with Some p -> Sim.Host.id p.host | None -> -1 in
    Sim.Engine.span_open e ~pid:(Sim.Host.id t.host)
      ~args:[ ("peer", string_of_int peer); ("len", string_of_int len) ]
      (kind_name kind)

(* Monotonic clocks preserve RC's in-order guarantees even though wire
   jitter is sampled independently per operation. *)
let arrival_time t ideal =
  let at = max ideal (t.last_arrival + 1) in
  t.last_arrival <- at;
  at

let completion_time t ideal =
  let at = max ideal (t.last_completion + 1) in
  t.last_completion <- at;
  at

let deliver_completion t ~at ~wr_id ~kind ~status ?(byte_len = 0) ?(prov = 0) ~before () =
  let at = completion_time t at in
  Sim.Engine.schedule (engine t) ~at (fun () ->
      t.outstanding <- t.outstanding - 1;
      tel_complete t;
      let e = engine t in
      if Sim.Engine.traced e then
        Sim.Engine.trace_async_end e ~cat:"rdma" ~pid:(Sim.Host.id t.host)
          ~id:(async_id t wr_id)
          ~args:[ ("status", Fmt.str "%a" Verbs.pp_wc_status status) ]
          (kind_name kind);
      if prov <> 0 then
        Sim.Engine.span_close e ~pid:(Sim.Host.id t.host)
          ~args:[ ("status", Fmt.str "%a" Verbs.pp_wc_status status) ]
          prov;
      before ();
      Cq.push t.cq { Verbs.wr_id; kind; status; byte_len })

let wire_delay t ~len =
  let c = cal t in
  Sim.Distribution.sample_ns c.Sim.Calibration.wire (Sim.Host.rng t.host)
  + int_of_float (float_of_int len *. c.Sim.Calibration.wire_byte)

(* Requester-side cost between posting and the packet leaving the NIC:
   NIC processing plus, past the inline threshold, a DMA fetch of the
   payload (§6). *)
let tx_delay t ~payload =
  let c = cal t in
  let fetch =
    if payload <= c.Sim.Calibration.inline_threshold then 0
    else
      c.Sim.Calibration.dma_fetch
      + int_of_float (float_of_int payload *. c.Sim.Calibration.dma_byte)
  in
  c.Sim.Calibration.nic_tx + fetch

(* --- injected fabric faults -------------------------------------------- *)

(* Outcome of one directed leg under the engine's fault table: either the
   packet is lost for good (RC gives up and the transport timeout fires)
   or it gets through with some extra delay. *)
type leg = { lost : bool; extra : int }

let no_fault = { lost = false; extra = 0 }

(* RC retransmission backoff per lost attempt, and how many retries the
   NIC attempts before declaring the peer unreachable. 8 attempts at
   rnic_timeout/8 keeps every retried-but-delivered packet under the
   transport timeout, so ordering with genuinely dropped operations is
   preserved. *)
let retry_attempts = 8

let trace_fault t ~src ~dst ~what =
  let e = engine t in
  if Sim.Engine.traced e then
    Sim.Engine.trace_instant e ~cat:"fault" ~pid:(Sim.Host.id t.host)
      ~args:[ ("src", string_of_int src); ("dst", string_of_int dst) ]
      what

(* Evaluate the directed link [src -> dst] under injected faults. Draws
   from the requester host's PRNG only when a probabilistic fault is
   installed on the link, so fault-free runs consume exactly the random
   stream they did before fault injection existed. *)
let eval_leg t ~src ~dst =
  match Sim.Fabric.find (Sim.Engine.fabric (engine t)) ~src ~dst with
  | None -> no_fault
  | Some f ->
    if f.Sim.Fabric.blocked then begin
      trace_fault t ~src ~dst ~what:"fabric_blocked";
      { lost = true; extra = 0 }
    end
    else begin
      let c = cal t in
      let rng = Sim.Host.rng t.host in
      let extra = ref f.Sim.Fabric.extra_delay in
      let lost = ref false in
      if f.Sim.Fabric.loss > 0. then begin
        let retry_ns = c.Sim.Calibration.rnic_timeout / retry_attempts in
        let attempts = ref 0 in
        while (not !lost) && Sim.Rng.float rng < f.Sim.Fabric.loss do
          incr attempts;
          if !attempts >= retry_attempts then lost := true
          else extra := !extra + retry_ns
        done;
        if !attempts > 0 then
          trace_fault t ~src ~dst ~what:(if !lost then "fabric_drop" else "fabric_retransmit")
      end;
      if (not !lost) && f.Sim.Fabric.dup > 0. && Sim.Rng.float rng < f.Sim.Fabric.dup
      then begin
        (* RC discards the duplicate by PSN; it only occupies the
           responder NIC for one extra receive. *)
        extra := !extra + c.Sim.Calibration.nic_rx;
        trace_fault t ~src ~dst ~what:"fabric_dup"
      end;
      if !lost then { lost = true; extra = 0 } else { lost = false; extra = !extra }
    end

let responder_allows resp ~(mr : Mr.t) ~off ~len ~need_write =
  (match resp.state with Verbs.Rtr | Verbs.Rts -> true | Verbs.Reset | Verbs.Init | Verbs.Err -> false)
  && (if need_write then resp.acc.Verbs.remote_write else resp.acc.Verbs.remote_read)
  && (if need_write then (Mr.access mr).Verbs.remote_write else (Mr.access mr).Verbs.remote_read)
  && Mr.is_valid mr
  && Mr.in_bounds mr ~off ~len

(* Shared post path for Read and Write. [payload_out] is the number of
   bytes serialised on the request; [payload_back] on the response.
   [apply] runs at the responder at arrival time when allowed (memory
   effect / data capture); [on_complete] runs at the requester just before
   the success completion is delivered. *)
let post t ~wr_id ~kind ~payload_out ~payload_back ~mr ~off ~len ~need_write ~apply ~on_complete
    =
  let e = engine t in
  let c = cal t in
  Sim.Host.cpu t.host c.Sim.Calibration.wr_post;
  t.outstanding <- t.outstanding + 1;
  tel_post t;
  trace_post t ~wr_id ~kind ~len:payload_out;
  let prov = prov_post t ~kind ~len:payload_out in
  match t.state, t.peer with
  | Verbs.Rts, Some resp when Mr.host mr == resp.host ->
    let t0 = Sim.Engine.now e in
    let src = Sim.Host.id t.host and dst = Sim.Host.id resp.host in
    let req = eval_leg t ~src ~dst in
    let arrive =
      arrival_time t
        (t0 + tx_delay t ~payload:payload_out + wire_delay t ~len:payload_out + req.extra)
    in
    Sim.Engine.schedule e ~at:arrive (fun () ->
        if req.lost || (not t.link.up) || not (Sim.Host.nic_reachable resp.host) then begin
          (* RC retransmits silently until the transport timeout fires. *)
          mark_err t;
          deliver_completion t
            ~at:(t0 + c.Sim.Calibration.rnic_timeout)
            ~wr_id ~kind ~status:Verbs.Operation_timeout ~prov
            ~before:(fun () -> ())
            ()
        end
        else if not (responder_allows resp ~mr ~off ~len ~need_write) then begin
          (* NAK: both ends of the connection go to ERR (§5.2). *)
          mark_err resp;
          let back = Sim.Engine.now e + c.Sim.Calibration.nic_rx + wire_delay t ~len:0 in
          deliver_completion t ~at:back ~wr_id ~kind ~status:Verbs.Remote_access_error ~prov
            ~before:(fun () -> mark_err t)
            ()
        end
        else begin
          apply ();
          match eval_leg t ~src:dst ~dst:src with
          | { lost = true; _ } ->
            (* The operation took effect at the responder but the ack never
               makes it back — the adversarial asymmetric-partition case.
               The requester cannot tell this from a dropped request. *)
            mark_err t;
            deliver_completion t
              ~at:(t0 + c.Sim.Calibration.rnic_timeout)
              ~wr_id ~kind ~status:Verbs.Operation_timeout ~prov
              ~before:(fun () -> ())
              ()
          | { lost = false; extra } ->
            (* Writes into persistent memory are acknowledged only once
               flushed (SNIA RDMA persistence extension, paper §1). *)
            let flush =
              if need_write && Mr.is_persistent mr then c.Sim.Calibration.pmem_flush else 0
            in
            let back =
              Sim.Engine.now e + c.Sim.Calibration.nic_rx + flush
              + wire_delay t ~len:payload_back
              + c.Sim.Calibration.cq_poll + extra
            in
            deliver_completion t ~at:back ~wr_id ~kind ~status:Verbs.Success ~byte_len:len
              ~prov ~before:on_complete ()
        end)
  | Verbs.Rts, Some _ -> invalid_arg "Qp.post: MR does not belong to the peer host"
  | Verbs.Rts, None -> invalid_arg "Qp.post: not connected"
  | (Verbs.Reset | Verbs.Init | Verbs.Rtr | Verbs.Err), _ ->
    (* Work posted to a non-RTS QP is flushed. *)
    deliver_completion t
      ~at:(Sim.Engine.now e + c.Sim.Calibration.cq_poll)
      ~wr_id ~kind ~status:Verbs.Flushed ~prov
      ~before:(fun () -> ())
      ()

let post_write t ~wr_id ~src ~src_off ~len ~mr ~dst_off =
  if src_off < 0 || len < 0 || src_off + len > Bytes.length src then
    invalid_arg "Qp.post_write: bad source range";
  (* Inline semantics: the payload is captured at post time regardless of
     later changes to [src]. *)
  let payload = Bytes.sub src src_off len in
  post t ~wr_id ~kind:`Write ~payload_out:len ~payload_back:0 ~mr ~off:dst_off ~len
    ~need_write:true
    ~apply:(fun () ->
      Bytes.blit payload 0 (Mr.buffer mr) dst_off len;
      Mr.notify_write mr ~off:dst_off ~len)
    ~on_complete:(fun () -> ())

let post_read t ~wr_id ~dst ~dst_off ~len ~mr ~src_off =
  if dst_off < 0 || len < 0 || dst_off + len > Bytes.length dst then
    invalid_arg "Qp.post_read: bad destination range";
  let snapshot = ref Bytes.empty in
  post t ~wr_id ~kind:`Read ~payload_out:0 ~payload_back:len ~mr ~off:src_off ~len
    ~need_write:false
    ~apply:(fun () -> snapshot := Bytes.sub (Mr.buffer mr) src_off len)
    ~on_complete:(fun () -> Bytes.blit !snapshot 0 dst dst_off len)

(* --- two-sided Send/Receive -------------------------------------------- *)

(* Consume a posted receive for [payload] at the responder: copy the data,
   deliver the receive completion, and report the match back so the sender
   completion can be scheduled. *)
let consume_recv (resp : t) ~payload ~at ~notify =
  let c = cal resp in
  let r = Queue.pop resp.recvq in
  let len = Bytes.length payload in
  if len > r.rmax_len then begin
    (* Local length error at the responder; the connection breaks. *)
    mark_err resp;
    let at = completion_time resp (at + c.Sim.Calibration.nic_rx) in
    Sim.Engine.schedule (engine resp) ~at (fun () ->
        Cq.push resp.cq
          { Verbs.wr_id = r.rwr_id; kind = `Recv; status = Verbs.Remote_access_error;
            byte_len = 0 });
    notify ~arrived_at:at ~len:(-1)
  end
  else begin
    Bytes.blit payload 0 r.rdst r.rdst_off len;
    let at = completion_time resp (at + c.Sim.Calibration.nic_rx) in
    Sim.Engine.schedule (engine resp) ~at (fun () ->
        Cq.push resp.cq
          { Verbs.wr_id = r.rwr_id; kind = `Recv; status = Verbs.Success; byte_len = len });
    notify ~arrived_at:at ~len
  end

let post_recv t ~wr_id ~dst ~dst_off ~max_len =
  if dst_off < 0 || max_len < 0 || dst_off + max_len > Bytes.length dst then
    invalid_arg "Qp.post_recv: bad buffer range";
  Queue.push { rwr_id = wr_id; rdst = dst; rdst_off = dst_off; rmax_len = max_len } t.recvq;
  (* Match a sender that was RNR-retrying. *)
  if not (Queue.is_empty t.pending_sends) then begin
    let p = Queue.pop t.pending_sends in
    consume_recv t ~payload:p.payload ~at:(Sim.Engine.now (engine t))
      ~notify:(fun ~arrived_at ~len -> p.complete ~arrived_at ~len)
  end

let post_send t ~wr_id ~src ~src_off ~len =
  if src_off < 0 || len < 0 || src_off + len > Bytes.length src then
    invalid_arg "Qp.post_send: bad source range";
  let e = engine t in
  let c = cal t in
  Sim.Host.cpu t.host c.Sim.Calibration.wr_post;
  t.outstanding <- t.outstanding + 1;
  tel_post t;
  trace_post t ~wr_id ~kind:`Send ~len;
  let prov = prov_post t ~kind:`Send ~len in
  match t.state, t.peer with
  | Verbs.Rts, Some resp ->
    let payload = Bytes.sub src src_off len in
    let t0 = Sim.Engine.now e in
    let sid = Sim.Host.id t.host and did = Sim.Host.id resp.host in
    let req = eval_leg t ~src:sid ~dst:did in
    let arrive =
      arrival_time t (t0 + tx_delay t ~payload:len + wire_delay t ~len + req.extra)
    in
    Sim.Engine.schedule e ~at:arrive (fun () ->
        if req.lost || (not t.link.up) || not (Sim.Host.nic_reachable resp.host) then begin
          mark_err t;
          deliver_completion t
            ~at:(t0 + c.Sim.Calibration.rnic_timeout)
            ~wr_id ~kind:`Send ~status:Verbs.Operation_timeout ~prov
            ~before:(fun () -> ())
            ()
        end
        else if
          match resp.state with
          | Verbs.Rtr | Verbs.Rts -> false
          | Verbs.Reset | Verbs.Init | Verbs.Err -> true
        then begin
          mark_err resp;
          let back = Sim.Engine.now e + c.Sim.Calibration.nic_rx + wire_delay t ~len:0 in
          deliver_completion t ~at:back ~wr_id ~kind:`Send
            ~status:Verbs.Remote_access_error ~prov
            ~before:(fun () -> mark_err t)
            ()
        end
        else begin
          let notify ~arrived_at ~len:got =
            if got < 0 then
              deliver_completion t
                ~at:(arrived_at + wire_delay t ~len:0)
                ~wr_id ~kind:`Send ~status:Verbs.Remote_access_error ~prov
                ~before:(fun () -> mark_err t)
                ()
            else
              match eval_leg t ~src:did ~dst:sid with
              | { lost = true; _ } ->
                (* Delivered, but the ack never returns. *)
                mark_err t;
                deliver_completion t
                  ~at:(t0 + c.Sim.Calibration.rnic_timeout)
                  ~wr_id ~kind:`Send ~status:Verbs.Operation_timeout ~prov
                  ~before:(fun () -> ())
                  ()
              | { lost = false; extra } ->
                deliver_completion t
                  ~at:(arrived_at + wire_delay t ~len:0 + c.Sim.Calibration.cq_poll + extra)
                  ~wr_id ~kind:`Send ~status:Verbs.Success ~byte_len:got ~prov
                  ~before:(fun () -> ())
                  ()
          in
          if Queue.is_empty resp.recvq then
            (* RNR: the requester NIC retries until a buffer is posted. *)
            Queue.push
              { payload; complete = (fun ~arrived_at ~len -> notify ~arrived_at ~len) }
              resp.pending_sends
          else consume_recv resp ~payload ~at:(Sim.Engine.now e) ~notify
        end)
  | Verbs.Rts, None -> invalid_arg "Qp.post_send: not connected"
  | (Verbs.Reset | Verbs.Init | Verbs.Rtr | Verbs.Err), _ ->
    deliver_completion t
      ~at:(Sim.Engine.now e + c.Sim.Calibration.cq_poll)
      ~wr_id ~kind:`Send ~status:Verbs.Flushed ~prov
      ~before:(fun () -> ())
      ()

let posted_recvs t = Queue.length t.recvq
