let cal qp = Sim.Host.calibration (Qp.host qp)

let span qp name f =
  let host = Qp.host qp in
  Sim.Engine.trace_span (Sim.Host.engine host) ~cat:"rdma" ~pid:(Sim.Host.id host) name f

let change_qp_flags qp access =
  span qp "perm_flags" (fun () ->
      let host = Qp.host qp in
      let c = cal qp in
      let hazardous =
        match Qp.peer qp with None -> false | Some peer -> Qp.outstanding peer > 0
      in
      Sim.Host.cpu host
        (Sim.Distribution.sample_ns c.Sim.Calibration.perm_qp_flags (Sim.Host.rng host));
      if hazardous && Sim.Rng.bool (Sim.Host.rng host) then begin
        Qp.set_state qp Verbs.Err;
        Error `Qp_error
      end
      else begin
        Qp.set_access qp access;
        Ok ()
      end)

let restart_qp qp access =
  span qp "perm_restart" (fun () ->
      let host = Qp.host qp in
      let c = cal qp in
      (* The QP is torn down first, so operations arriving during the cycle are
         denied — this is what makes the slow path robust. *)
      Qp.set_state qp Verbs.Reset;
      Sim.Host.cpu host
        (Sim.Distribution.sample_ns c.Sim.Calibration.perm_qp_restart (Sim.Host.rng host));
      Qp.set_access qp access;
      Qp.set_state qp Verbs.Rts)

let rereg_mr mr access =
  let host = Mr.host mr in
  Sim.Engine.trace_span (Sim.Host.engine host) ~cat:"rdma" ~pid:(Sim.Host.id host) "mr_rereg"
    (fun () ->
      let c = Sim.Host.calibration host in
      let d = Sim.Calibration.mr_rereg_time c ~bytes:(Mr.size mr) in
      Sim.Host.cpu host (Sim.Distribution.sample_ns d (Sim.Host.rng host));
      Mr.set_access mr access)

let fast_slow_switch qp access =
  match change_qp_flags qp access with
  | Ok () -> ()
  | Error `Qp_error ->
    let host = Qp.host qp in
    let e = Sim.Host.engine host in
    if Sim.Engine.traced e then
      Sim.Engine.trace_instant e ~cat:"rdma" ~pid:(Sim.Host.id host) "perm_slow_path";
    restart_qp qp access
