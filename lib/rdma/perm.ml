let cal qp = Sim.Host.calibration (Qp.host qp)

let span qp name f =
  let host = Qp.host qp in
  Sim.Engine.trace_span (Sim.Host.engine host) ~cat:"rdma" ~pid:(Sim.Host.id host) name f

(* Wrap [f] so its virtual-time duration lands in
   rdma_perm_switch_ns{path}. One option check when telemetry is off. *)
let timed host ~path f =
  let e = Sim.Host.engine host in
  match Sim.Engine.metrics e with
  | None -> f ()
  | Some reg ->
    let h =
      Telemetry.Registry.histogram reg ~help:"Permission switch latency by mechanism"
        ~labels:[ ("path", path) ] "rdma_perm_switch_ns"
    in
    let t0 = Sim.Engine.now e in
    Fun.protect ~finally:(fun () -> Telemetry.Hdr.record h (Sim.Engine.now e - t0)) f

let change_qp_flags qp access =
  span qp "perm_flags" (fun () ->
      timed (Qp.host qp) ~path:"flags" @@ fun () ->
      let host = Qp.host qp in
      let c = cal qp in
      let hazardous =
        match Qp.peer qp with None -> false | Some peer -> Qp.outstanding peer > 0
      in
      (* Injected fault: a scenario may force this host's fast path to fail
         (driving Mu onto the QP-restart slow path, §7.3). Checked before
         the hazard draw so forcing never perturbs the random stream of a
         fault-free run. *)
      let forced =
        Sim.Fabric.perm_failure_forced
          (Sim.Engine.fabric (Sim.Host.engine host))
          ~pid:(Sim.Host.id host)
      in
      Sim.Host.cpu host
        (Sim.Distribution.sample_ns c.Sim.Calibration.perm_qp_flags (Sim.Host.rng host));
      if forced || (hazardous && Sim.Rng.bool (Sim.Host.rng host)) then begin
        let e = Sim.Host.engine host in
        if forced && Sim.Engine.traced e then
          Sim.Engine.trace_instant e ~cat:"fault" ~pid:(Sim.Host.id host)
            "perm_fail_forced";
        Qp.set_state qp Verbs.Err;
        Error `Qp_error
      end
      else begin
        Qp.set_access qp access;
        Ok ()
      end)

let restart_qp qp access =
  span qp "perm_restart" (fun () ->
      timed (Qp.host qp) ~path:"restart" @@ fun () ->
      let host = Qp.host qp in
      let c = cal qp in
      (* The QP is torn down first, so operations arriving during the cycle are
         denied — this is what makes the slow path robust. *)
      Qp.set_state qp Verbs.Reset;
      Sim.Host.cpu host
        (Sim.Distribution.sample_ns c.Sim.Calibration.perm_qp_restart (Sim.Host.rng host));
      Qp.set_access qp access;
      Qp.set_state qp Verbs.Rts)

let rereg_mr mr access =
  let host = Mr.host mr in
  Sim.Engine.trace_span (Sim.Host.engine host) ~cat:"rdma" ~pid:(Sim.Host.id host) "mr_rereg"
    (fun () ->
      timed host ~path:"mr_rereg" @@ fun () ->
      let c = Sim.Host.calibration host in
      let d = Sim.Calibration.mr_rereg_time c ~bytes:(Mr.size mr) in
      Sim.Host.cpu host (Sim.Distribution.sample_ns d (Sim.Host.rng host));
      Mr.set_access mr access)

let fast_slow_switch qp access =
  match change_qp_flags qp access with
  | Ok () -> ()
  | Error `Qp_error ->
    let host = Qp.host qp in
    let e = Sim.Host.engine host in
    if Sim.Engine.traced e then
      Sim.Engine.trace_instant e ~cat:"rdma" ~pid:(Sim.Host.id host) "perm_slow_path";
    restart_qp qp access
