type outcome = { succeeded : int list; pending : int }

exception Operation_failed of { index : int; status : Verbs.wc_status }

type t = {
  cq : Cq.t;
  inflight : (int, int * int) Hashtbl.t;  (* wr_id -> (round, index) *)
  mutable next_wr : int;
  mutable round : int;
  mutable stale_failures : int;
}

let create cq =
  { cq; inflight = Hashtbl.create 32; next_wr = 0; round = 0; stale_failures = 0 }

(* Next tracked completion: (round, index, status). Never raises — whether
   an error completion matters depends on which round it belongs to, and
   only the callers below know the current round. Raising here aborted the
   *current* round on errors left over from a pre-fail-over round (e.g. a
   Flushed completion of a write posted before the QP went down). *)
let take t =
  let wc = Cq.await t.cq in
  match Hashtbl.find_opt t.inflight wc.Verbs.wr_id with
  | None -> None (* foreign completion on a shared CQ round; ignore *)
  | Some (round, index) ->
    Hashtbl.remove t.inflight wc.Verbs.wr_id;
    Some (round, index, wc.Verbs.status)

let stale_failure t =
  t.stale_failures <- t.stale_failures + 1

let post_and_wait t ~needed ~post =
  t.round <- t.round + 1;
  let round = t.round in
  if needed > List.length post then
    invalid_arg "Quorum.post_and_wait: needed exceeds posted operations";
  List.iteri
    (fun index f ->
      t.next_wr <- t.next_wr + 1;
      Hashtbl.replace t.inflight t.next_wr (round, index);
      f ~wr_id:t.next_wr)
    post;
  let succeeded = ref [] in
  while List.length !succeeded < needed do
    match take t with
    | Some (r, index, Verbs.Success) when r = round -> succeeded := index :: !succeeded
    | Some (r, index, status) when r = round -> raise (Operation_failed { index; status })
    | Some (_, _, Verbs.Success) | None -> () (* stale success: already accounted *)
    | Some (_, _, _) -> stale_failure t (* stale failure: the round it could
                                            abort is already over *)
  done;
  let pending =
    Hashtbl.fold (fun _ (r, _) acc -> if r = round then acc + 1 else acc) t.inflight 0
  in
  { succeeded = List.rev !succeeded; pending }

let drain t =
  while Hashtbl.length t.inflight > 0 do
    match take t with
    | Some (_, _, Verbs.Success) | None -> ()
    | Some (_, _, _) -> stale_failure t
  done

let stale_failures t = t.stale_failures
