type t = {
  host : Sim.Host.t;
  buf : Bytes.t;
  mutable access : Verbs.access;
  mutable valid : bool;
  mutable write_hook : (off:int -> len:int -> unit) option;
  persistent : bool;
}

let register ?(persistent = false) ?backing host ~size ~access =
  if size <= 0 then invalid_arg "Mr.register: size must be positive";
  let buf =
    match backing with
    | None -> Bytes.make size '\000'
    | Some b ->
      if Bytes.length b <> size then
        invalid_arg "Mr.register: backing size does not match region size";
      b
  in
  { host; buf; access; valid = true; write_hook = None; persistent }

let alias t ~access =
  {
    host = t.host;
    buf = t.buf;
    access;
    valid = true;
    write_hook = None;
    persistent = t.persistent;
  }
let host t = t.host
let size t = Bytes.length t.buf
let access t = t.access
let set_access t access = t.access <- access
let invalidate t = t.valid <- false
let is_valid t = t.valid
let buffer t = t.buf
let in_bounds t ~off ~len = off >= 0 && len >= 0 && off + len <= Bytes.length t.buf
let set_write_hook t hook = t.write_hook <- hook
let is_persistent t = t.persistent

let notify_write t ~off ~len =
  match t.write_hook with None -> () | Some hook -> hook ~off ~len

let get_i64 t ~off = Bytes.get_int64_le t.buf off
let set_i64 t ~off v = Bytes.set_int64_le t.buf off v
let get_bytes t ~off ~len = Bytes.sub t.buf off len
let set_bytes t ~off b = Bytes.blit b 0 t.buf off (Bytes.length b)
