(** Writing to all and waiting for a majority.

    One of the "common practical problems in RDMA-based distributed
    computing" Mu packages as an independently reusable module (§6): post
    the same operation to a set of QPs and block until [needed] of them
    completed successfully, while accounting for every other completion
    that arrives on the shared CQ in the meantime.

    The caller owns the CQ and must be its only consumer. Completions from
    earlier rounds — successes {e and} failures — are recognised by their
    work-request ids and discarded: a stale [Flushed] or timeout left over
    from a pre-fail-over round says nothing about the current round and
    must not abort it. Stale failures are counted (see {!stale_failures})
    so callers can surface them in telemetry. Only an error completion
    belonging to the {e current} round raises (in Mu's usage an error
    means lost permission — grounds to abort, §4.1). *)

type outcome = {
  succeeded : int list;  (** Indices (into the posted list) that completed. *)
  pending : int;  (** Operations still in flight when the wait returned. *)
}

exception Operation_failed of { index : int; status : Verbs.wc_status }

type t
(** Tracker for one CQ shared by successive quorum rounds. *)

val create : Cq.t -> t

val post_and_wait : t -> needed:int -> post:(wr_id:int -> unit) list -> outcome
(** [post_and_wait t ~needed ~post] invokes each closure in [post] with a
    fresh work-request id, then consumes completions until [needed] of
    {e this round's} operations succeeded. Raises {!Operation_failed} on
    an error completion of this round; error completions of earlier
    rounds are counted and discarded. Must run in a fiber. *)

val drain : t -> unit
(** Consume completions of all still-pending operations from earlier
    rounds (blocking). Never raises: failures of abandoned operations are
    counted and discarded, and [inflight] is empty on return. *)

val stale_failures : t -> int
(** Error completions from past rounds discarded so far — non-zero after
    fail-overs or injected faults; useful for assertions and telemetry. *)
