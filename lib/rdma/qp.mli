(** Reliable-Connection queue pairs with one-sided Read/Write.

    Semantics modelled after InfiniBand RC, which Mu's correctness argument
    leans on (§4, Appendix A):

    - {b FIFO}: operations posted on a QP arrive at the responder, apply to
      memory, and complete at the requester in posting order.
    - {b Permission enforcement at the responder}: an operation is allowed
      only if the responder QP is in RTR/RTS, its access flags permit the
      opcode, and the target MR permits it and is valid and in bounds.
      A denied operation completes with [Remote_access_error] and moves
      {e both} QPs to ERR — so a deposed leader cannot write and learns it.
    - {b Error flushing}: posting on a non-RTS QP completes immediately
      with [Flushed].
    - {b Transport timeout}: if the responder NIC is unreachable (dead host
      or partitioned link), the operation completes with
      [Operation_timeout] after the RC timeout, and the QP moves to ERR.
    - {b One-sidedness}: a paused or even crashed {e process} still serves
      incoming operations — only {!Sim.Host.kill_host} stops the NIC. This
      is precisely the property Mu's pull-score failure detector exploits.
    - {b Inlining}: payloads up to the inline threshold are copied at post
      time; larger payloads incur an extra NIC DMA fetch (§6, §7.1).

    Posting functions must be called from a fiber of the owning host; they
    consume the work-request posting cost and return immediately (the
    operation proceeds asynchronously; await the CQ for the outcome). *)

type t

val create : Sim.Host.t -> cq:Cq.t -> t
(** A fresh QP in RESET with no access granted. *)

val connect : t -> t -> unit
(** Connect two QPs (both move to RTS). Does not change access flags. *)

val host : t -> Sim.Host.t
val peer : t -> t option
val state : t -> Verbs.qp_state
val access : t -> Verbs.access
(** What the {e remote} peer may do to this host's memory via this QP. *)

val set_access : t -> Verbs.access -> unit
(** Instantaneous flag update; the timing of permission switches is
    modelled in {!Perm}. *)

val set_state : t -> Verbs.qp_state -> unit

val repair : t -> unit
(** Requester-side recovery after ERR: back to RTS so new work can be
    posted (the "gracefully handling broken RDMA connections" machinery of
    §6; its latency is folded into the permission grant). *)

val disconnect : t -> unit
(** Move both endpoints to ERR permanently — the pair is being replaced,
    not repaired. Used when a host reboots: its surviving peers tear down
    the stale connections and establish fresh QPs to the new incarnation
    (QP re-establishment, as in Velos' connection recovery). *)

val outstanding : t -> int
(** Posted but not yet completed work requests on this QP. *)

val link_up : t -> bool

val set_link_up : t -> bool -> unit
(** Partition injection: when down, operations in either direction time
    out. *)

val post_write :
  t -> wr_id:int -> src:Bytes.t -> src_off:int -> len:int -> mr:Mr.t -> dst_off:int -> unit
(** One-sided RDMA Write of [len] bytes into the remote region [mr] at
    [dst_off]. [mr] must belong to the peer's host. *)

val post_read :
  t -> wr_id:int -> dst:Bytes.t -> dst_off:int -> len:int -> mr:Mr.t -> src_off:int -> unit
(** One-sided RDMA Read of [len] bytes from the remote region [mr]; data
    lands in [dst] when the completion is delivered. *)

(** {1 Two-sided Send/Receive}

    Unused by Mu itself (§2.3) but needed by two-sided comparison systems.
    A Send consumes the oldest posted Receive at the responder; if none is
    posted, the RC transport retries (RNR) until one appears. The receiver
    gets a [`Recv] completion carrying the payload length; sending more
    than the buffer holds breaks the connection. *)

val post_recv : t -> wr_id:int -> dst:Bytes.t -> dst_off:int -> max_len:int -> unit
val post_send : t -> wr_id:int -> src:Bytes.t -> src_off:int -> len:int -> unit

val posted_recvs : t -> int
(** Receive buffers currently posted. *)
