(** Registered memory regions.

    An MR owns a byte buffer pinned on its host and carries remote access
    flags. Overlapping registrations (the paper's first permission
    mechanism, §5.2) are modelled by {!alias}: a second MR over the same
    buffer with independent flags. An operation is allowed only if both the
    QP it arrives on and the target MR permit it. *)

type t

val register :
  ?persistent:bool -> ?backing:Bytes.t -> Sim.Host.t -> size:int -> access:Verbs.access -> t
(** Register a fresh zero-filled region. Instantaneous (initial
    registration cost is off the critical path); re-registration cost is
    modelled by {!Perm.rereg_mr}. [persistent] marks the region as remote
    persistent memory: incoming Writes pay the flush cost before acking
    (the paper's anticipated persistence extension, §1). [backing]
    registers the MR over caller-provided bytes instead of a fresh
    buffer — used to map a {!Sim.Nvm} region so every write (local or
    remote) lands in durable memory by construction; the length must
    equal [size]. *)

val alias : t -> access:Verbs.access -> t
(** Register the same memory again with different flags (overlapping MR). *)

val host : t -> Sim.Host.t
val size : t -> int
val access : t -> Verbs.access
val set_access : t -> Verbs.access -> unit
(** Instantaneous flag update — timing belongs to {!Perm}. *)

val invalidate : t -> unit
(** Deregister: subsequent remote operations fail. *)

val is_valid : t -> bool

val buffer : t -> Bytes.t
(** The underlying memory, for local access by the owning process. *)

val in_bounds : t -> off:int -> len:int -> bool

val set_write_hook : t -> (off:int -> len:int -> unit) option -> unit
(** Install a callback fired whenever a remote Write lands in this region
    (at its arrival instant). This models a process noticing the write on
    its next memory poll without simulating every poll iteration; the
    subscriber adds its own poll-phase delay. Used by the two-sided
    baselines (APUS, Hermes) and by tests. *)

val notify_write : t -> off:int -> len:int -> unit
(** Used by the transport; not by protocol code. *)

val is_persistent : t -> bool

(** {1 Local typed access helpers} — used by replicas to read/write their
    own region; remote access goes through {!Qp}. *)

val get_i64 : t -> off:int -> int64
val set_i64 : t -> off:int -> int64 -> unit
val get_bytes : t -> off:int -> len:int -> Bytes.t
val set_bytes : t -> off:int -> Bytes.t -> unit
