(** Stack attribution core: nested begin/end frames to inclusive and
    {e exclusive} (self) durations.

    The single implementation behind both {!Breakdown} (per-category
    duration tables) and the profile library's report view. Frames nest
    LIFO per (pid, tid); an end event pops until a frame with the same
    (cat, name) matches, counting skipped frames and orphan ends as
    unmatched — exactly the pairing discipline Breakdown has always
    used, so layering it on this core leaves Breakdown's output
    byte-identical. Exclusive = inclusive − inclusive-of-completed-
    children, computed online. *)

type t

val create : unit -> t

val on_close :
  t ->
  (cat:string ->
  name:string ->
  pid:int ->
  tid:int ->
  inclusive:int ->
  exclusive:int ->
  unit) ->
  unit
(** Install the consumer called at every completed frame, in event
    order. Replaces any previous consumer. *)

val add : t -> Sim.Probe.event -> unit
(** Feed an event; only [Span_begin]/[Span_end] are significant. *)

val unmatched : t -> int
(** End events without a matching begin, plus begins whose end was
    lost (skipped during a pop). *)

val open_frames : t -> int
(** Frames currently open across all (pid, tid) stacks. *)

val frame_totals : (string list * int) list -> (string * int * int) list
(** [frame_totals folded] aggregates folded stacks (root-first frame
    lists with exclusive weights) into [(frame, self_ns, total_ns)]
    sorted by frame name. Total counts a stack's weight once per frame
    even when the frame repeats in the stack (recursion). *)
