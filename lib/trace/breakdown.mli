(** Phase-breakdown accumulator: folds span events into per-(category,
    name) duration statistics.

    Fed streaming from the tracer's sink — not from the ring buffer — so
    statistics cover the whole run even when the ring has dropped old
    events. Synchronous spans pair LIFO per (pid, tid) through the
    shared {!Attrib} core (which also yields per-span {e exclusive}
    time); async spans pair by (cat, name, id). Instants, counters and
    metadata are ignored.

    This is how the fail-over decomposition of the paper's Fig. 6 is
    checked: [failover/perm_switch] and [failover/detect] rows sum to
    [failover/total]. *)

type t

val create : unit -> t

val add : t -> Sim.Probe.event -> unit

val rows : t -> (string * string * Sim.Stats.Samples.t * int) list
(** [(cat, name, durations_ns, total_ns)] sorted by (cat, name) — a
    deterministic order regardless of hash-table iteration. *)

val find : t -> cat:string -> name:string -> Sim.Stats.Samples.t option

val total_ns : t -> cat:string -> name:string -> int
(** Sum of all recorded durations for the span; 0 if absent. *)

val exclusive_ns : t -> cat:string -> name:string -> int
(** Sum of exclusive (self) durations: inclusive minus time spent in
    nested sync spans. Equal to {!total_ns} for async spans and for
    sync spans with no children; 0 if absent. *)

val exclusive_rows : t -> (string * string * int * int) list
(** [(cat, name, exclusive_ns, total_ns)] sorted by (cat, name). *)

val unmatched : t -> int
(** End events without a matching begin (or vice versa). *)

val pp : t Fmt.t
(** Plain-text summary table: count, median/p1/p99 in µs, total, and
    share of the category's largest span. *)
