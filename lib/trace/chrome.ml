(* Chrome trace-event JSON ("JSON Object Format"), loadable in Perfetto
   (ui.perfetto.dev) and chrome://tracing.

   Determinism: timestamps are integer nanoseconds rendered as fixed-point
   microseconds ("%d.%03d") — no float formatting anywhere on the event
   path — and process/thread metadata is emitted in sorted order, so equal
   seeds produce byte-identical files. *)

let buf_escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Stdlib.Buffer.add_string b "\\\""
      | '\\' -> Stdlib.Buffer.add_string b "\\\\"
      | '\n' -> Stdlib.Buffer.add_string b "\\n"
      | '\r' -> Stdlib.Buffer.add_string b "\\r"
      | '\t' -> Stdlib.Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Stdlib.Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Stdlib.Buffer.add_char b c)
    s

let add_str b s =
  Stdlib.Buffer.add_char b '"';
  buf_escape b s;
  Stdlib.Buffer.add_char b '"'

(* Host -1 ("no host": scheduler, experiment harness fibers) maps to a
   synthetic high pid — trace viewers dislike negative pids. *)
let engine_pid = 65535
let out_pid p = if p < 0 then engine_pid else p

let add_ts b ns = Stdlib.Buffer.add_string b (Printf.sprintf "%d.%03d" (ns / 1000) (ns mod 1000))

let add_args b args =
  Stdlib.Buffer.add_string b ",\"args\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Stdlib.Buffer.add_char b ',';
      add_str b k;
      Stdlib.Buffer.add_char b ':';
      (* Numeric-looking values go out as JSON numbers so Perfetto can
         plot counters. *)
      match int_of_string_opt v with
      | Some n -> Stdlib.Buffer.add_string b (string_of_int n)
      | None -> add_str b v)
    args;
  Stdlib.Buffer.add_char b '}'

let add_event b (ev : Sim.Probe.event) =
  let ph =
    match ev.kind with
    | Sim.Probe.Instant -> "i"
    | Sim.Probe.Span_begin -> "B"
    | Sim.Probe.Span_end -> "E"
    | Sim.Probe.Async_begin -> "b"
    | Sim.Probe.Async_end -> "e"
    | Sim.Probe.Counter -> "C"
    | Sim.Probe.Meta_process -> "M"
    | Sim.Probe.Meta_thread -> "M"
  in
  Stdlib.Buffer.add_string b "{\"name\":";
  add_str b ev.name;
  Stdlib.Buffer.add_string b ",\"cat\":";
  add_str b (if ev.cat = "" then "sim" else ev.cat);
  Stdlib.Buffer.add_string b ",\"ph\":\"";
  Stdlib.Buffer.add_string b ph;
  Stdlib.Buffer.add_string b "\",\"ts\":";
  add_ts b ev.ts;
  Stdlib.Buffer.add_string b (Printf.sprintf ",\"pid\":%d,\"tid\":%d" (out_pid ev.pid) ev.tid);
  (match ev.kind with
  | Sim.Probe.Instant -> Stdlib.Buffer.add_string b ",\"s\":\"t\""
  | Sim.Probe.Async_begin | Sim.Probe.Async_end ->
    Stdlib.Buffer.add_string b (Printf.sprintf ",\"id\":\"0x%x\"" ev.id)
  | _ -> ());
  if ev.args <> [] then add_args b ev.args;
  Stdlib.Buffer.add_char b '}'

let add_meta b ~name ~pid ?tid value =
  Stdlib.Buffer.add_string b "{\"name\":\"";
  Stdlib.Buffer.add_string b name;
  Stdlib.Buffer.add_string b (Printf.sprintf "\",\"ph\":\"M\",\"pid\":%d" (out_pid pid));
  (match tid with
  | Some tid -> Stdlib.Buffer.add_string b (Printf.sprintf ",\"tid\":%d" tid)
  | None -> ());
  Stdlib.Buffer.add_string b ",\"args\":{\"name\":";
  add_str b value;
  Stdlib.Buffer.add_string b "}}"

(* Helpers for building raw trace events outside this module (the
   provenance exporter renders flow and nestable-async phases that have no
   [Probe.kind]); using these keeps escaping and timestamp formatting — and
   hence byte-determinism — in one place. *)
let json_string s =
  let b = Stdlib.Buffer.create (String.length s + 2) in
  add_str b s;
  Stdlib.Buffer.contents b

let fixed_ts ns = Printf.sprintf "%d.%03d" (ns / 1000) (ns mod 1000)

let to_buffer b ?(extra = []) ~processes ~threads events =
  Stdlib.Buffer.add_string b "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
  let first = ref true in
  let sep () =
    if !first then first := false else Stdlib.Buffer.add_string b ",\n"
  in
  List.iter
    (fun (pid, name) ->
      sep ();
      add_meta b ~name:"process_name" ~pid name)
    processes;
  List.iter
    (fun ((pid, tid), name) ->
      sep ();
      add_meta b ~name:"thread_name" ~pid ~tid name)
    threads;
  List.iter
    (fun ev ->
      sep ();
      add_event b ev)
    events;
  List.iter
    (fun json ->
      sep ();
      Stdlib.Buffer.add_string b json)
    extra;
  Stdlib.Buffer.add_string b "\n]}\n"

let to_string ?extra ~processes ~threads events =
  let b = Stdlib.Buffer.create 65536 in
  to_buffer b ?extra ~processes ~threads events;
  Stdlib.Buffer.contents b

let write_file path ?extra ~processes ~threads events =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ?extra ~processes ~threads events))
