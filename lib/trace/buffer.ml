type t = {
  cap : int;
  data : Sim.Probe.event array;
  mutable head : int;
  mutable len : int;
  mutable dropped : int;
}

let dummy =
  {
    Sim.Probe.ts = 0;
    kind = Sim.Probe.Instant;
    name = "";
    cat = "";
    pid = 0;
    tid = 0;
    id = 0;
    args = [];
  }

let create ~capacity =
  if capacity <= 0 then invalid_arg "Trace.Buffer.create: capacity must be positive";
  { cap = capacity; data = Array.make capacity dummy; head = 0; len = 0; dropped = 0 }

let capacity t = t.cap
let length t = t.len
let dropped t = t.dropped
let recorded t = t.len + t.dropped

let add t ev =
  if t.len < t.cap then begin
    t.data.((t.head + t.len) mod t.cap) <- ev;
    t.len <- t.len + 1
  end
  else begin
    t.data.(t.head) <- ev;
    t.head <- (t.head + 1) mod t.cap;
    t.dropped <- t.dropped + 1
  end

let iter t f =
  for i = 0 to t.len - 1 do
    f t.data.((t.head + i) mod t.cap)
  done

let to_list t =
  List.init t.len (fun i -> t.data.((t.head + i) mod t.cap))

let clear t =
  t.head <- 0;
  t.len <- 0;
  t.dropped <- 0
