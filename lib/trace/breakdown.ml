type row = {
  samples : Sim.Stats.Samples.t;
  mutable total_ns : int;
  mutable excl_ns : int;
}

(* Synchronous spans go through the shared Attrib core (which owns the
   per-(pid, tid) stack discipline and computes exclusive time on the
   side); async spans pair by (cat, name, id) and stay here — they may
   overlap arbitrarily, so "exclusive" degenerates to inclusive for
   them. The row tables and the printed output are byte-identical to
   the pre-Attrib implementation. *)
type t = {
  rows : (string * string, row) Hashtbl.t; (* (cat, name) -> durations *)
  attrib : Attrib.t;
  async_open : (string * string * int, int) Hashtbl.t;
  (* (cat, name, id) -> begin_ts *)
  mutable async_unmatched : int;
}

let row t key =
  match Hashtbl.find_opt t.rows key with
  | Some r -> r
  | None ->
    let r = { samples = Sim.Stats.Samples.create (); total_ns = 0; excl_ns = 0 } in
    Hashtbl.add t.rows key r;
    r

let record t ~cat ~name ~excl dur =
  let r = row t (cat, name) in
  Sim.Stats.Samples.add r.samples dur;
  r.total_ns <- r.total_ns + dur;
  r.excl_ns <- r.excl_ns + excl

let create () =
  let t =
    {
      rows = Hashtbl.create 32;
      attrib = Attrib.create ();
      async_open = Hashtbl.create 64;
      async_unmatched = 0;
    }
  in
  Attrib.on_close t.attrib (fun ~cat ~name ~pid:_ ~tid:_ ~inclusive ~exclusive ->
      record t ~cat ~name ~excl:exclusive inclusive);
  t

let add t (ev : Sim.Probe.event) =
  match ev.kind with
  | Sim.Probe.Span_begin | Sim.Probe.Span_end -> Attrib.add t.attrib ev
  | Sim.Probe.Async_begin ->
    let key = (ev.cat, ev.name, ev.id) in
    if Hashtbl.mem t.async_open key then t.async_unmatched <- t.async_unmatched + 1;
    Hashtbl.replace t.async_open key ev.ts
  | Sim.Probe.Async_end -> (
    let key = (ev.cat, ev.name, ev.id) in
    match Hashtbl.find_opt t.async_open key with
    | Some ts ->
      Hashtbl.remove t.async_open key;
      let dur = ev.ts - ts in
      record t ~cat:ev.cat ~name:ev.name ~excl:dur dur
    | None -> t.async_unmatched <- t.async_unmatched + 1)
  | Sim.Probe.Instant | Sim.Probe.Counter | Sim.Probe.Meta_process
  | Sim.Probe.Meta_thread ->
    ()

let unmatched t = t.async_unmatched + Attrib.unmatched t.attrib

let rows t =
  Hashtbl.fold (fun (cat, name) r acc -> (cat, name, r.samples, r.total_ns) :: acc) t.rows []
  |> List.sort (fun (c1, n1, _, _) (c2, n2, _, _) ->
         match compare c1 c2 with 0 -> compare n1 n2 | c -> c)

let find t ~cat ~name =
  Option.map (fun r -> r.samples) (Hashtbl.find_opt t.rows (cat, name))

let total_ns t ~cat ~name =
  match Hashtbl.find_opt t.rows (cat, name) with Some r -> r.total_ns | None -> 0

let exclusive_ns t ~cat ~name =
  match Hashtbl.find_opt t.rows (cat, name) with Some r -> r.excl_ns | None -> 0

let exclusive_rows t =
  Hashtbl.fold (fun (cat, name) r acc -> (cat, name, r.excl_ns, r.total_ns) :: acc) t.rows []
  |> List.sort (fun (c1, n1, _, _) (c2, n2, _, _) ->
         match compare c1 c2 with 0 -> compare n1 n2 | c -> c)

let pp ppf t =
  let rows = rows t in
  if rows = [] then Fmt.pf ppf "(no spans recorded)@."
  else begin
    (* Share is relative to the largest total in the category — normally
       the enclosing span, so e.g. failover/perm_switch prints its share
       of failover/total. *)
    let cat_max = Hashtbl.create 8 in
    List.iter
      (fun (cat, _, _, total) ->
        match Hashtbl.find_opt cat_max cat with
        | Some m when m >= total -> ()
        | _ -> Hashtbl.replace cat_max cat total)
      rows;
    Fmt.pf ppf "%-28s %8s %10s %10s %10s %12s %7s@." "category/span" "count"
      "median_us" "p1_us" "p99_us" "total_us" "share";
    List.iter
      (fun (cat, name, samples, total) ->
        let p q = Sim.Stats.ns_to_us (Sim.Stats.Samples.percentile samples q) in
        let denom = Hashtbl.find cat_max cat in
        let share = if denom = 0 then 0. else 100. *. float_of_int total /. float_of_int denom in
        Fmt.pf ppf "%-28s %8d %10.2f %10.2f %10.2f %12.1f %6.1f%%@."
          (cat ^ "/" ^ name)
          (Sim.Stats.Samples.count samples)
          (p 50.) (p 1.) (p 99.)
          (Sim.Stats.ns_to_us total)
          share)
      rows;
    if unmatched t > 0 then Fmt.pf ppf "(%d unmatched span edges)@." (unmatched t)
  end
