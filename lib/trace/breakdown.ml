type row = {
  samples : Sim.Stats.Samples.t;
  mutable total_ns : int;
}

type t = {
  rows : (string * string, row) Hashtbl.t; (* (cat, name) -> durations *)
  sync_stack : (int * int, (string * string * int) list ref) Hashtbl.t;
  (* (pid, tid) -> stack of open (cat, name, begin_ts) *)
  async_open : (string * string * int, int) Hashtbl.t;
  (* (cat, name, id) -> begin_ts *)
  mutable unmatched : int;
}

let create () =
  {
    rows = Hashtbl.create 32;
    sync_stack = Hashtbl.create 16;
    async_open = Hashtbl.create 64;
    unmatched = 0;
  }

let row t key =
  match Hashtbl.find_opt t.rows key with
  | Some r -> r
  | None ->
    let r = { samples = Sim.Stats.Samples.create (); total_ns = 0 } in
    Hashtbl.add t.rows key r;
    r

let record t ~cat ~name dur =
  let r = row t (cat, name) in
  Sim.Stats.Samples.add r.samples dur;
  r.total_ns <- r.total_ns + dur

let stack t key =
  match Hashtbl.find_opt t.sync_stack key with
  | Some s -> s
  | None ->
    let s = ref [] in
    Hashtbl.add t.sync_stack key s;
    s

let add t (ev : Sim.Probe.event) =
  match ev.kind with
  | Sim.Probe.Span_begin ->
    let s = stack t (ev.pid, ev.tid) in
    s := (ev.cat, ev.name, ev.ts) :: !s
  | Sim.Probe.Span_end ->
    let s = stack t (ev.pid, ev.tid) in
    (* Pop until the matching begin; skipped frames are begins whose end
       was lost (e.g. a fiber killed mid-span) and count as unmatched. *)
    let rec pop = function
      | [] ->
        t.unmatched <- t.unmatched + 1;
        []
      | (cat, name, ts) :: rest when cat = ev.cat && name = ev.name ->
        record t ~cat ~name (ev.ts - ts);
        rest
      | _skipped :: rest ->
        t.unmatched <- t.unmatched + 1;
        pop rest
    in
    s := pop !s
  | Sim.Probe.Async_begin ->
    let key = (ev.cat, ev.name, ev.id) in
    if Hashtbl.mem t.async_open key then t.unmatched <- t.unmatched + 1;
    Hashtbl.replace t.async_open key ev.ts
  | Sim.Probe.Async_end -> (
    let key = (ev.cat, ev.name, ev.id) in
    match Hashtbl.find_opt t.async_open key with
    | Some ts ->
      Hashtbl.remove t.async_open key;
      record t ~cat:ev.cat ~name:ev.name (ev.ts - ts)
    | None -> t.unmatched <- t.unmatched + 1)
  | Sim.Probe.Instant | Sim.Probe.Counter | Sim.Probe.Meta_process
  | Sim.Probe.Meta_thread ->
    ()

let unmatched t = t.unmatched

let rows t =
  Hashtbl.fold (fun (cat, name) r acc -> (cat, name, r.samples, r.total_ns) :: acc) t.rows []
  |> List.sort (fun (c1, n1, _, _) (c2, n2, _, _) ->
         match compare c1 c2 with 0 -> compare n1 n2 | c -> c)

let find t ~cat ~name =
  Option.map (fun r -> r.samples) (Hashtbl.find_opt t.rows (cat, name))

let total_ns t ~cat ~name =
  match Hashtbl.find_opt t.rows (cat, name) with Some r -> r.total_ns | None -> 0

let pp ppf t =
  let rows = rows t in
  if rows = [] then Fmt.pf ppf "(no spans recorded)@."
  else begin
    (* Share is relative to the largest total in the category — normally
       the enclosing span, so e.g. failover/perm_switch prints its share
       of failover/total. *)
    let cat_max = Hashtbl.create 8 in
    List.iter
      (fun (cat, _, _, total) ->
        match Hashtbl.find_opt cat_max cat with
        | Some m when m >= total -> ()
        | _ -> Hashtbl.replace cat_max cat total)
      rows;
    Fmt.pf ppf "%-28s %8s %10s %10s %10s %12s %7s@." "category/span" "count"
      "median_us" "p1_us" "p99_us" "total_us" "share";
    List.iter
      (fun (cat, name, samples, total) ->
        let p q = Sim.Stats.ns_to_us (Sim.Stats.Samples.percentile samples q) in
        let denom = Hashtbl.find cat_max cat in
        let share = if denom = 0 then 0. else 100. *. float_of_int total /. float_of_int denom in
        Fmt.pf ppf "%-28s %8d %10.2f %10.2f %10.2f %12.1f %6.1f%%@."
          (cat ^ "/" ^ name)
          (Sim.Stats.Samples.count samples)
          (p 50.) (p 1.) (p 99.)
          (Sim.Stats.ns_to_us total)
          share)
      rows;
    if t.unmatched > 0 then Fmt.pf ppf "(%d unmatched span edges)@." t.unmatched
  end
