type t = {
  ring : Buffer.t;
  bd : Breakdown.t;
  procs : (int, string) Hashtbl.t;
  threads : (int * int, string) Hashtbl.t;
}

let create ?(capacity = 65536) () =
  {
    ring = Buffer.create ~capacity;
    bd = Breakdown.create ();
    procs = Hashtbl.create 16;
    threads = Hashtbl.create 64;
  }

let sink t (ev : Sim.Probe.event) =
  match ev.kind with
  | Sim.Probe.Meta_process -> Hashtbl.replace t.procs ev.pid ev.name
  | Sim.Probe.Meta_thread -> Hashtbl.replace t.threads (ev.pid, ev.tid) ev.name
  | _ ->
    (* Breakdown first: it must see every span even if the ring later
       drops the oldest window. *)
    Breakdown.add t.bd ev;
    Buffer.add t.ring ev

let attach t engine = Sim.Probe.set_sink (Sim.Engine.probe engine) (sink t)
let detach engine = Sim.Probe.clear_sink (Sim.Engine.probe engine)

let events t = Buffer.to_list t.ring
let recorded t = Buffer.recorded t.ring
let dropped t = Buffer.dropped t.ring
let breakdown t = t.bd

let processes t =
  Hashtbl.fold (fun pid name acc -> (pid, name) :: acc) t.procs []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let threads t =
  Hashtbl.fold (fun key name acc -> (key, name) :: acc) t.threads []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let write_chrome t path =
  Chrome.write_file path ~processes:(processes t) ~threads:(threads t) (events t)

let chrome_string t =
  Chrome.to_string ~processes:(processes t) ~threads:(threads t) (events t)

let pp_summary ppf t =
  Fmt.pf ppf "trace: %d events recorded, %d in ring, %d dropped@." (recorded t)
    (Stdlib.List.length (events t))
    (dropped t);
  Breakdown.pp ppf t.bd
