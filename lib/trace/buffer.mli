(** Bounded ring buffer of probe events.

    When full, the oldest event is overwritten and counted in {!dropped},
    so a long run keeps the newest window of activity — the part that
    usually matters when diagnosing a counterexample. Accumulators that
    must see {e every} event (e.g. {!Breakdown}) are fed from the sink
    directly, before the ring. *)

type t

val create : capacity:int -> t
val capacity : t -> int

val add : t -> Sim.Probe.event -> unit

val length : t -> int
(** Events currently held. *)

val dropped : t -> int
(** Events overwritten since creation. *)

val recorded : t -> int
(** Total events ever added ([length + dropped]). *)

val iter : t -> (Sim.Probe.event -> unit) -> unit
(** Oldest to newest. *)

val to_list : t -> Sim.Probe.event list
(** Oldest to newest. *)

val clear : t -> unit
