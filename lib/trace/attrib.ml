(* Stack attribution core: the one implementation of "turn nested
   begin/end frames into inclusive and exclusive durations", shared by
   the Breakdown accumulator (per-category tables) and the profile
   library's report view. Exclusive time is inclusive time minus the
   inclusive time of completed children — the flame-graph "self"
   column — computed online with one mutable child accumulator per open
   frame, no post-processing pass.

   Pairing discipline matches what Breakdown has always done (its
   output must stay byte-identical): frames nest LIFO per (pid, tid);
   an end event pops until it finds a frame with the same (cat, name),
   counting every skipped frame — a begin whose end was lost, e.g. a
   fiber killed mid-span — as unmatched, and counts the end itself as
   unmatched when no frame matches. A skipped frame's accumulated child
   time is dropped with it. *)

type frame = {
  f_cat : string;
  f_name : string;
  f_begin : int;
  mutable f_child : int; (* inclusive ns of completed children *)
}

type t = {
  stacks : (int * int, frame list ref) Hashtbl.t; (* (pid, tid) -> open frames *)
  mutable unmatched : int;
  mutable on_close :
    cat:string -> name:string -> pid:int -> tid:int -> inclusive:int -> exclusive:int -> unit;
}

let create () =
  {
    stacks = Hashtbl.create 16;
    unmatched = 0;
    on_close = (fun ~cat:_ ~name:_ ~pid:_ ~tid:_ ~inclusive:_ ~exclusive:_ -> ());
  }

let on_close t f = t.on_close <- f

let stack t key =
  match Hashtbl.find_opt t.stacks key with
  | Some s -> s
  | None ->
    let s = ref [] in
    Hashtbl.add t.stacks key s;
    s

let add t (ev : Sim.Probe.event) =
  match ev.kind with
  | Sim.Probe.Span_begin ->
    let s = stack t (ev.pid, ev.tid) in
    s := { f_cat = ev.cat; f_name = ev.name; f_begin = ev.ts; f_child = 0 } :: !s
  | Sim.Probe.Span_end ->
    let s = stack t (ev.pid, ev.tid) in
    let rec pop = function
      | [] ->
        t.unmatched <- t.unmatched + 1;
        []
      | f :: rest when f.f_cat = ev.cat && f.f_name = ev.name ->
        let inclusive = ev.ts - f.f_begin in
        let exclusive = inclusive - f.f_child in
        (match rest with
        | parent :: _ -> parent.f_child <- parent.f_child + inclusive
        | [] -> ());
        t.on_close ~cat:f.f_cat ~name:f.f_name ~pid:ev.pid ~tid:ev.tid ~inclusive
          ~exclusive;
        rest
      | _skipped :: rest ->
        t.unmatched <- t.unmatched + 1;
        pop rest
    in
    s := pop !s
  | Sim.Probe.Async_begin | Sim.Probe.Async_end | Sim.Probe.Instant | Sim.Probe.Counter
  | Sim.Probe.Meta_process | Sim.Probe.Meta_thread ->
    ()

let unmatched t = t.unmatched

let open_frames t =
  Hashtbl.fold (fun _ s acc -> acc + List.length !s) t.stacks 0

(* --- folded-stack aggregation ------------------------------------------- *)

(* Per-frame self/total over a folded-stack profile (root-first frame
   lists with exclusive weights — the profile library's export shape).
   Self sums the weights of stacks whose leaf is the frame; total sums
   the weights of stacks containing the frame, counted once per stack
   even when the frame repeats (recursion must not double-count). *)
let frame_totals stacks =
  let tbl : (string, int ref * int ref) Hashtbl.t = Hashtbl.create 64 in
  let cell f =
    match Hashtbl.find_opt tbl f with
    | Some c -> c
    | None ->
      let c = (ref 0, ref 0) in
      Hashtbl.add tbl f c;
      c
  in
  List.iter
    (fun (frames, w) ->
      match List.rev frames with
      | [] -> ()
      | leaf :: _ ->
        let self, _ = cell leaf in
        self := !self + w;
        let seen = Hashtbl.create 8 in
        List.iter
          (fun f ->
            if not (Hashtbl.mem seen f) then begin
              Hashtbl.add seen f ();
              let _, total = cell f in
              total := !total + w
            end)
          frames)
    stacks;
  Hashtbl.fold (fun f (self, total) acc -> (f, !self, !total) :: acc) tbl []
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
