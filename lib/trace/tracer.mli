(** Per-engine structured event tracer.

    A tracer bundles a bounded {!Buffer} ring, a streaming {!Breakdown}
    accumulator, and process/thread name registries. It is installed on
    an engine with {!attach} (the sink slot of {!Sim.Engine.probe});
    when detached or never attached, tracing costs the simulation a
    single option check per probe call.

    One tracer may be attached to several engines in sequence (the
    workload layer builds a fresh engine per experiment); host ids are
    stable across engines, so events aggregate naturally. *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] bounds the event ring (default 65536). The breakdown
    accumulator is not bounded — it keeps only per-span duration
    statistics, not events. *)

val attach : t -> Sim.Engine.t -> unit
val detach : Sim.Engine.t -> unit

val events : t -> Sim.Probe.event list
(** Events still in the ring, oldest first. *)

val recorded : t -> int
val dropped : t -> int

val breakdown : t -> Breakdown.t

val processes : t -> (int * string) list
(** (host id, name), sorted. *)

val threads : t -> ((int * int) * string) list
(** ((host id, fiber id), name), sorted. *)

val write_chrome : t -> string -> unit
(** Write Chrome trace-event JSON (Perfetto-loadable). Byte-identical
    across runs with equal seeds. *)

val chrome_string : t -> string

val pp_summary : t Fmt.t
(** Ring statistics plus the phase-breakdown table. *)
