(** Chrome trace-event JSON exporter (Perfetto / chrome://tracing).

    Hosts render as processes, fibers as threads. Mapping:
    - {!Sim.Probe.Span_begin}/[Span_end] -> ["B"]/["E"] (nested per thread)
    - [Async_begin]/[Async_end] -> ["b"]/["e"] with ["id"] (RDMA verbs)
    - [Instant] -> ["i"] thread-scoped
    - [Counter] -> ["C"] (numeric args plotted as counter tracks)
    - process/thread names -> ["M"] metadata

    Timestamps are virtual nanoseconds rendered as fixed-point
    microseconds with integer arithmetic only; given identical event
    streams the output is byte-identical. Events with pid -1 (scheduler,
    experiment harness) are grouped under synthetic process 65535. *)

val engine_pid : int
(** Synthetic pid (65535) that hostless events are exported under. *)

val json_string : string -> string
(** Escape and quote a string exactly as the event path does. *)

val fixed_ts : int -> string
(** Virtual ns as fixed-point µs ("%d.%03d"), the only timestamp format
    this exporter emits. *)

(** [extra] is a list of pre-rendered JSON event objects appended verbatim
    after the probe events — the provenance exporter uses it for flow and
    nestable-async phases that have no {!Sim.Probe.kind}. Callers are
    responsible for rendering them with {!json_string}/{!fixed_ts} so the
    file stays byte-deterministic. *)

val to_buffer :
  Stdlib.Buffer.t ->
  ?extra:string list ->
  processes:(int * string) list ->
  threads:((int * int) * string) list ->
  Sim.Probe.event list ->
  unit

val to_string :
  ?extra:string list ->
  processes:(int * string) list ->
  threads:((int * int) * string) list ->
  Sim.Probe.event list ->
  string

val write_file :
  string ->
  ?extra:string list ->
  processes:(int * string) list ->
  threads:((int * int) * string) list ->
  Sim.Probe.event list ->
  unit
