(** Chrome trace-event JSON exporter (Perfetto / chrome://tracing).

    Hosts render as processes, fibers as threads. Mapping:
    - {!Sim.Probe.Span_begin}/[Span_end] -> ["B"]/["E"] (nested per thread)
    - [Async_begin]/[Async_end] -> ["b"]/["e"] with ["id"] (RDMA verbs)
    - [Instant] -> ["i"] thread-scoped
    - [Counter] -> ["C"] (numeric args plotted as counter tracks)
    - process/thread names -> ["M"] metadata

    Timestamps are virtual nanoseconds rendered as fixed-point
    microseconds with integer arithmetic only; given identical event
    streams the output is byte-identical. Events with pid -1 (scheduler,
    experiment harness) are grouped under synthetic process 65535. *)

val engine_pid : int
(** Synthetic pid (65535) that hostless events are exported under. *)

val to_buffer :
  Stdlib.Buffer.t ->
  processes:(int * string) list ->
  threads:((int * int) * string) list ->
  Sim.Probe.event list ->
  unit

val to_string :
  processes:(int * string) list ->
  threads:((int * int) * string) list ->
  Sim.Probe.event list ->
  string

val write_file :
  string ->
  processes:(int * string) list ->
  threads:((int * int) * string) list ->
  Sim.Probe.event list ->
  unit
