open Workload.Chaos

(* One linearization step of the per-key model: given the key's current
   value, does this recorded reply fit, and what value results? An
   unanswered write/delete has no reply to contradict — it may always be
   linearized (at worst dead last, where it affects nothing retained). *)
let step state (r : recorded) =
  match (r.r_cmd, r.r_reply) with
  | Apps.Kv_store.Put { value; _ }, (Some Apps.Kv_store.Stored | None) ->
    Some (Some value)
  | Apps.Kv_store.Put _, Some _ -> None
  | Apps.Kv_store.Get _, Some (Apps.Kv_store.Value v) ->
    if state = Some v then Some state else None
  | Apps.Kv_store.Get _, Some Apps.Kv_store.Not_found ->
    if state = None then Some state else None
  | Apps.Kv_store.Get _, _ -> None
  | Apps.Kv_store.Delete _, Some Apps.Kv_store.Deleted ->
    if state <> None then Some None else None
  | Apps.Kv_store.Delete _, Some Apps.Kv_store.Not_found ->
    if state = None then Some None else None
  | Apps.Kv_store.Delete _, None -> Some None
  | Apps.Kv_store.Delete _, Some _ -> None

(* Wing & Gong over one key's recorded ops: a candidate for the next
   linearization point is any remaining op not real-time-after another
   remaining op. *)
let check_key ops =
  let arr = Array.of_list ops in
  let n = Array.length arr in
  let used = Array.make n false in
  let rec go remaining state =
    if remaining = 0 then true
    else begin
      let min_res = ref max_int in
      for i = 0 to n - 1 do
        if (not used.(i)) && arr.(i).r_responded < !min_res then
          min_res := arr.(i).r_responded
      done;
      let rec try_candidates i =
        if i >= n then false
        else if used.(i) || arr.(i).r_invoked > !min_res then try_candidates (i + 1)
        else
          match step state arr.(i) with
          | Some state' ->
            used.(i) <- true;
            if go (remaining - 1) state' then true
            else begin
              used.(i) <- false;
              try_candidates (i + 1)
            end
          | None -> try_candidates (i + 1)
      in
      try_candidates 0
    end
  in
  go n None

let key_of (r : recorded) =
  match r.r_cmd with
  | Apps.Kv_store.Get { key } | Apps.Kv_store.Delete { key } -> key
  | Apps.Kv_store.Put { key; _ } -> key

(* Unanswered reads observed nothing; everything else is checkable. *)
let checkable (r : recorded) =
  match (r.r_cmd, r.r_reply) with Apps.Kv_store.Get _, None -> false | _ -> true

let by_key records =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun r ->
      if checkable r then begin
        let key = key_of r in
        let cur = Option.value (Hashtbl.find_opt tbl key) ~default:[] in
        Hashtbl.replace tbl key (r :: cur)
      end)
    records;
  Hashtbl.fold (fun k ops acc -> (k, List.rev ops) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* --- minimal witness ------------------------------------------------------ *)

(* Sound removal guard, mirroring Linearizability.removable: dropping [o]
   from a conformant sub-history must keep it conformant, so a candidate
   that still fails is a genuine counterexample. Reads only constrain;
   a write is kept while any retained read observed its value or any
   retained delete answered [Deleted] (its success may rest on this
   write); a delete is kept while any retained reply asserts absence
   ([Not_found] from a read or another delete). *)
let removable retained (o : recorded) =
  let depends pred = List.exists (fun r -> r != o && pred r) retained in
  match o.r_cmd with
  | Apps.Kv_store.Get _ -> true
  | Apps.Kv_store.Put { value; _ } ->
    not
      (depends (fun r ->
           match (r.r_cmd, r.r_reply) with
           | Apps.Kv_store.Get _, Some (Apps.Kv_store.Value v) -> v = value
           | Apps.Kv_store.Delete _, Some Apps.Kv_store.Deleted -> true
           | _ -> false))
  | Apps.Kv_store.Delete _ ->
    not
      (depends (fun r ->
           match (r.r_cmd, r.r_reply) with
           | ( (Apps.Kv_store.Get _ | Apps.Kv_store.Delete _),
               Some Apps.Kv_store.Not_found ) ->
             true
           | _ -> false))

let minimize_key ops =
  let ops =
    List.stable_sort
      (fun a b ->
        compare (a.r_invoked, a.r_responded, a.r_proc, a.r_req)
          (b.r_invoked, b.r_responded, b.r_proc, b.r_req))
      ops
  in
  let current = ref ops in
  let progress = ref true in
  while !progress do
    progress := false;
    List.iter
      (fun o ->
        let kept = List.filter (fun x -> x != o) !current in
        if
          List.memq o !current && removable !current o && kept <> []
          && not (check_key kept)
        then begin
          current := kept;
          progress := true
        end)
      (List.rev !current)
  done;
  !current

type witness = { ckey : string; cops : recorded list }

let check records =
  let rec first_failing = function
    | [] -> None
    | (key, ops) :: rest ->
      if check_key ops then first_failing rest else Some (key, ops)
  in
  match first_failing (by_key records) with
  | None -> None
  | Some (key, ops) -> Some { ckey = key; cops = minimize_key ops }

let pp_recorded ppf (r : recorded) =
  let reply =
    match r.r_reply with
    | Some rep -> Fmt.str "%a" Apps.Kv_store.pp_reply rep
    | None -> "(no reply)"
  in
  if r.r_responded = max_int then
    Fmt.pf ppf "proc %d req %d  [%d, open)  %a -> PENDING" r.r_proc r.r_req
      r.r_invoked Apps.Kv_store.pp_command r.r_cmd
  else
    Fmt.pf ppf "proc %d req %d  [%d, %d]  %a -> %s" r.r_proc r.r_req r.r_invoked
      r.r_responded Apps.Kv_store.pp_command r.r_cmd reply

let pp_witness ppf w =
  Fmt.pf ppf "key %S: %d-op non-conformant sub-history" w.ckey
    (List.length w.cops);
  (* Forced newlines: printed outside any formatting box. *)
  List.iter (fun r -> Fmt.pf ppf "@\n    %a" pp_recorded r) w.cops

(* --- verdicts ------------------------------------------------------------- *)

type verdict = Pass | Not_conformant | Invariant_violation | Stall

let verdict_to_string = function
  | Pass -> "pass"
  | Not_conformant -> "not-conformant"
  | Invariant_violation -> "invariant-violation"
  | Stall -> "stall"

let verdict_of_string = function
  | "pass" -> Some Pass
  | "not-conformant" -> Some Not_conformant
  | "invariant-violation" -> Some Invariant_violation
  | "stall" -> Some Stall
  | _ -> None

let failing = function Pass -> false | _ -> true

let judge (o : outcome) =
  match check o.record with
  | Some w -> (Not_conformant, Some w)
  | None ->
    if o.violations <> [] then (Invariant_violation, None)
    else if not o.completed then (Stall, None)
    else (Pass, None)
