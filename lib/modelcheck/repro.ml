type t = { b_triple : Shrink.triple; b_verdict : Conformance.verdict }

let schema = "mu-verify-repro/1"

(* --- encode --------------------------------------------------------------- *)

let cmd_to_json = function
  | Apps.Kv_store.Get { key } ->
    Faults.Json.Obj [ ("op", Faults.Json.Str "get"); ("key", Faults.Json.Str key) ]
  | Apps.Kv_store.Put { key; value } ->
    Faults.Json.Obj
      [
        ("op", Faults.Json.Str "put");
        ("key", Faults.Json.Str key);
        ("value", Faults.Json.Str value);
      ]
  | Apps.Kv_store.Delete { key } ->
    Faults.Json.Obj
      [ ("op", Faults.Json.Str "delete"); ("key", Faults.Json.Str key) ]

let op_to_json (op : Workload.Chaos.scripted_op) =
  Faults.Json.Obj
    [
      ("think", Faults.Json.num_of_int op.s_think);
      ("req", Faults.Json.num_of_int op.s_req);
      ("cmd", cmd_to_json op.s_cmd);
    ]

let to_string b =
  let t = b.b_triple in
  Faults.Json.to_string
    (Faults.Json.Obj
       [
         ("schema", Faults.Json.Str schema);
         ("seed", Faults.Json.Str (Int64.to_string t.Shrink.t_seed));
         ("n", Faults.Json.num_of_int t.Shrink.t_n);
         ("inject", Faults.Json.num_of_int t.Shrink.t_inject);
         ("scenario", Faults.Scenario.to_json t.Shrink.t_scenario);
         ( "history",
           Faults.Json.List
             (List.map
                (fun client -> Faults.Json.List (List.map op_to_json client))
                t.Shrink.t_history) );
         ( "verdict",
           Faults.Json.Str (Conformance.verdict_to_string b.b_verdict) );
       ])

(* --- decode --------------------------------------------------------------- *)

let ( let* ) = Result.bind

let field name conv j =
  match Option.bind (Faults.Json.member name j) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "repro: missing or bad %S" name)

let cmd_of_json j =
  let* key = field "key" Faults.Json.to_str j in
  match Option.bind (Faults.Json.member "op" j) Faults.Json.to_str with
  | Some "get" -> Ok (Apps.Kv_store.Get { key })
  | Some "delete" -> Ok (Apps.Kv_store.Delete { key })
  | Some "put" ->
    let* value = field "value" Faults.Json.to_str j in
    Ok (Apps.Kv_store.Put { key; value })
  | Some op -> Error (Printf.sprintf "repro: unknown op %S" op)
  | None -> Error "repro: missing or bad \"op\""

let op_of_json j =
  let* s_think = field "think" Faults.Json.to_int j in
  let* s_req = field "req" Faults.Json.to_int j in
  let* s_cmd =
    match Faults.Json.member "cmd" j with
    | Some cj -> cmd_of_json cj
    | None -> Error "repro: missing \"cmd\""
  in
  Ok { Workload.Chaos.s_think; s_req; s_cmd }

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
    let* y = f x in
    let* ys = map_result f rest in
    Ok (y :: ys)

let of_string s =
  let* j = Faults.Json.of_string s in
  let* () =
    match Option.bind (Faults.Json.member "schema" j) Faults.Json.to_str with
    | Some v when v = schema -> Ok ()
    | Some v -> Error (Printf.sprintf "repro: unknown schema %S" v)
    | None -> Error "repro: missing \"schema\""
  in
  let* seed =
    let* s = field "seed" Faults.Json.to_str j in
    match Int64.of_string_opt s with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "repro: bad seed %S" s)
  in
  let* n = field "n" Faults.Json.to_int j in
  let* inject = field "inject" Faults.Json.to_int j in
  let* scenario =
    match Faults.Json.member "scenario" j with
    | Some sj -> Faults.Scenario.of_json sj
    | None -> Error "repro: missing \"scenario\""
  in
  let* () = Faults.Scenario.validate ~n scenario in
  let* history =
    match Option.bind (Faults.Json.member "history" j) Faults.Json.to_list with
    | Some clients ->
      map_result
        (fun cj ->
          match Faults.Json.to_list cj with
          | Some ops -> map_result op_of_json ops
          | None -> Error "repro: history client is not a list")
        clients
    | None -> Error "repro: missing or bad \"history\""
  in
  let* b_verdict =
    let* v = field "verdict" Faults.Json.to_str j in
    match Conformance.verdict_of_string v with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "repro: unknown verdict %S" v)
  in
  Ok
    {
      b_triple =
        {
          Shrink.t_seed = seed;
          t_n = n;
          t_inject = inject;
          t_scenario = scenario;
          t_history = history;
        };
      b_verdict;
    }
