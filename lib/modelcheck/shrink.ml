type triple = {
  t_seed : int64;
  t_n : int;
  t_inject : int;
  t_scenario : Faults.Scenario.t;
  t_history : Workload.Chaos.scripted_op list list;
}

type result = {
  verdict : Conformance.verdict;
  witness : Conformance.witness option;
  outcome : Workload.Chaos.outcome;
}

let ops t = List.fold_left (fun acc c -> acc + List.length c) 0 t.t_history

let run ?horizon t =
  let saved = !Apps.Kv_store.test_only_lose_put_every in
  Apps.Kv_store.test_only_lose_put_every := t.t_inject;
  Fun.protect
    ~finally:(fun () -> Apps.Kv_store.test_only_lose_put_every := saved)
    (fun () ->
      let outcome =
        Workload.Chaos.run ?horizon ~script:t.t_history ~seed:t.t_seed ~n:t.t_n
          t.t_scenario
      in
      let verdict, witness = Conformance.judge outcome in
      { verdict; witness; outcome })

(* --- candidate enumeration ------------------------------------------------ *)

(* Drop empty client lists; the script shape (list per client) is
   otherwise preserved so proc numbering of survivors shifts minimally
   and deterministically. *)
let prune history = List.filter (fun c -> c <> []) history

(* Every candidate one structural move away, best (biggest cut) first.
   The enumeration order is a pure function of the triple — the heart of
   shrink determinism. *)
let candidates t =
  let cs = ref [] in
  let add c = cs := c :: !cs in
  let nclients = List.length t.t_history in
  (* 1. Drop one whole client. *)
  if nclients > 1 then
    for i = nclients - 1 downto 0 do
      add { t with t_history = prune (List.filteri (fun j _ -> j <> i) t.t_history) }
    done;
  (* 2. Truncate one client to its first half. *)
  List.iteri
    (fun i c ->
      let len = List.length c in
      if len > 1 then
        add
          {
            t with
            t_history =
              prune
                (List.mapi
                   (fun j c' ->
                     if j = i then List.filteri (fun k _ -> k < len / 2) c' else c')
                   t.t_history);
          })
    t.t_history;
  (* 3. Delete one op, scanning each client back to front. *)
  List.iteri
    (fun i c ->
      let len = List.length c in
      for k = len - 1 downto 0 do
        if len > 1 || nclients > 1 then
          add
            {
              t with
              t_history =
                prune
                  (List.mapi
                     (fun j c' ->
                       if j = i then List.filteri (fun k' _ -> k' <> k) c' else c')
                     t.t_history);
            }
      done)
    t.t_history;
  (* 4. Drop one fault event, last scheduled first; dropping a stop/kill
     can orphan a restart, so invalid scenarios are skipped here rather
     than spent from the rerun budget. *)
  let nevents = List.length t.t_scenario.Faults.Scenario.events in
  for i = nevents - 1 downto 0 do
    match Faults.Scenario.drop_event t.t_scenario i with
    | Some sc when Result.is_ok (Faults.Scenario.validate ~n:t.t_n sc) ->
      add { t with t_scenario = sc }
    | _ -> ()
  done;
  (* 5. Shrink the cluster. *)
  if t.t_n > 3 && Result.is_ok (Faults.Scenario.validate ~n:3 t.t_scenario) then
    add { t with t_n = 3 };
  List.rev !cs

type shrunk = {
  minimized : triple;
  final : result;
  reruns : int;
  exhausted : bool;
}

let describe t =
  Fmt.str "%d clients / %d ops, %d fault events, n=%d"
    (List.length t.t_history) (ops t)
    (List.length t.t_scenario.Faults.Scenario.events)
    t.t_n

let shrink ?(budget = 500) ?(log = fun _ -> ()) t r =
  if not (Conformance.failing r.verdict) then
    invalid_arg "Shrink.shrink: triple does not fail";
  let current = ref t in
  let current_result = ref r in
  let reruns = ref 0 in
  let exhausted = ref false in
  let progress = ref true in
  while !progress && not !exhausted do
    progress := false;
    let rec try_cands = function
      | [] -> ()
      | cand :: rest ->
        if !reruns >= budget then exhausted := true
        else begin
          incr reruns;
          let cr = run cand in
          if Conformance.failing cr.verdict then begin
            (* Greedy: restart the scan from the smaller triple. *)
            current := cand;
            current_result := cr;
            progress := true;
            log
              (Fmt.str "shrink: kept %s (%s) after %d reruns" (describe cand)
                 (Conformance.verdict_to_string cr.verdict) !reruns)
          end
          else try_cands rest
        end
    in
    try_cands (candidates !current)
  done;
  if !exhausted then
    log
      (Fmt.str
         "shrink: budget of %d reruns exhausted at %s — result may not be minimal"
         budget (describe !current));
  {
    minimized = !current;
    final = !current_result;
    reruns = !reruns;
    exhausted = !exhausted;
  }
