(** Pure executable reference models of the two replicated applications.

    These are the specifications the conformance runner checks the real
    cluster against (DESIGN.md §19): no engine, no RDMA, no mutation —
    just [apply : model -> op -> model * response] over persistent data
    structures. Deliberately written against the application {e
    semantics} (the .mli contracts), not the implementations, so a bug in
    the optimized imperative code cannot be mirrored here by
    construction. *)

(** {1 Key-value store}

    The reference for {!Apps.Kv_store}: a string map plus the per-client
    (request id → reply) memo that gives exactly-once semantics on
    at-least-once delivery. *)

module Kv : sig
  type t

  val empty : t

  val apply :
    t -> client:int -> req_id:int -> Apps.Kv_store.command -> t * Apps.Kv_store.reply
  (** Execute with duplicate suppression: re-applying a client's last
      request id returns the recorded reply without touching the map,
      exactly like {!Apps.Kv_store.apply_dedup}. *)

  val find : t -> string -> string option
end

(** {1 Order book}

    The reference for {!Apps.Order_book} driven through
    {!Apps.Exchange.command}: price-time priority over persistent sorted
    lists, producing the exact event sequence the real engine emits —
    fills in maker order, [Done] on exhaustion, IOC market orders,
    cancel/replace with the time-priority rules of the .mli. *)

module Book : sig
  type t

  val empty : t

  val apply : t -> Apps.Exchange.command -> t * Apps.Order_book.event list

  val open_orders : t -> int
  val open_qty : t -> Apps.Order_book.side -> int
end
