(** Deterministic shrinking of failing (seed, scenario, history) triples.

    Greedy delta debugging to a fixpoint: each candidate — a client
    dropped, a per-client suffix truncated, a single op deleted, a fault
    event dropped, the cluster shrunk from 5 to 3 — is re-executed
    through the real cluster ({!run}) and kept only if it {e still
    fails} (any failing verdict; a shrink step may legitimately change
    {e how} it fails). Candidates are enumerated in one fixed order and
    every re-execution is a deterministic simulation, so the same triple
    always shrinks to the same minimum — the property the shrink
    determinism tests pin down. *)

type triple = {
  t_seed : int64;
  t_n : int;
  t_inject : int;
      (** {!Apps.Kv_store.test_only_lose_put_every} during the run
          (0 = off) — part of the triple so a repro is self-contained. *)
  t_scenario : Faults.Scenario.t;
  t_history : Workload.Chaos.scripted_op list list;
}

type result = {
  verdict : Conformance.verdict;
  witness : Conformance.witness option;
  outcome : Workload.Chaos.outcome;
}

val run : ?horizon:int -> triple -> result
(** Execute the triple: set the injection flag, drive the cluster through
    {!Workload.Chaos.run}'s [script] mode, judge the recorded replies.
    The flag is restored on exit, even on raise. *)

type shrunk = {
  minimized : triple;
  final : result;  (** The minimized triple's own (still failing) run. *)
  reruns : int;  (** Candidate executions spent. *)
  exhausted : bool;
      (** Budget ran out before the fixpoint — the result is a smaller
          repro but may not be minimal. Loudly reported, never silent. *)
}

val shrink : ?budget:int -> ?log:(string -> unit) -> triple -> result -> shrunk
(** [shrink t r] with [r] a failing run of [t]. [budget] (default 500)
    bounds candidate re-executions. [log] observes accepted steps and
    budget exhaustion. Raises [Invalid_argument] if [r] passes. *)

val ops : triple -> int
(** Total ops across clients. *)
