(** Conformance of a recorded cluster run against the pure KV model.

    {!Workload.Linearizability} checks the history as an abstract
    register — it cannot tell a [Deleted] from a [Not_found] reply. This
    checker linearizes the {e recorded replies} against {!Model.Kv}
    semantics: there must exist a single sequential order, consistent
    with real time, in which every committed reply is exactly what the
    pure model returns. A write acknowledged [Stored] whose value no
    later read can observe (the injected-bug self-test, DESIGN.md §19)
    fails here even though every replica agrees — the Appendix A
    invariants are blind to it by construction.

    Keys are independent under KV semantics, so the search runs per key
    (Wing & Gong backtracking with the key's value as the state), which
    keeps it exact yet fast on the small generated histories. *)

type witness = { ckey : string; cops : Workload.Chaos.recorded list }
(** A minimal non-conformant sub-history on one key: every op retained is
    needed — dropping any (under the soundness guard) makes the rest
    linearizable. *)

val check : Workload.Chaos.recorded list -> witness option
(** [None] = conformant. Unanswered reads are ignored (they observed
    nothing); unanswered writes and deletes may be linearized anywhere
    after invocation or — equivalently, since they always succeed — at
    the very end. *)

val pp_witness : witness Fmt.t

(** {1 Verdicts} *)

type verdict =
  | Pass
  | Not_conformant  (** Replies inconsistent with every model order. *)
  | Invariant_violation  (** Appendix A failed on raw replica state. *)
  | Stall  (** Clients never finished before the horizon. *)

val verdict_to_string : verdict -> string
val verdict_of_string : string -> verdict option
(** Stable strings for the repro bundle: ["pass"], ["not-conformant"],
    ["invariant-violation"], ["stall"]. *)

val judge : Workload.Chaos.outcome -> verdict * witness option
(** Overall verdict of a scripted run, most specific first: model
    non-conformance (with its witness), then invariant violations, then
    a liveness stall. *)

val failing : verdict -> bool
