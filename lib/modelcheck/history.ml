(* History generation. Explicit loops, not List.init: the PRNG draw
   order is part of the determinism contract. *)

let default_keys = [| "a"; "b"; "c" |]

let generate ?(keys = default_keys) ?(think_max = 2_000_000) ~clients
    ~ops_per_client rng =
  let out = ref [] in
  for proc = 1 to clients do
    let ops = ref [] in
    for req = 1 to ops_per_client do
      let think = if think_max > 0 then Sim.Rng.int rng think_max else 0 in
      let key = keys.(Sim.Rng.int rng (Array.length keys)) in
      let roll = Sim.Rng.int rng 100 in
      let cmd =
        if roll < 45 then
          Apps.Kv_store.Put { key; value = Printf.sprintf "v%d.%d" proc req }
        else if roll < 85 then Apps.Kv_store.Get { key }
        else Apps.Kv_store.Delete { key }
      in
      ops := { Workload.Chaos.s_think = think; s_req = req; s_cmd = cmd } :: !ops
    done;
    out := List.rev !ops :: !out
  done;
  List.rev !out

type stats = { h_ops : int; h_puts : int; h_gets : int; h_deletes : int }

let stats history =
  List.fold_left
    (List.fold_left (fun s (op : Workload.Chaos.scripted_op) ->
         match op.s_cmd with
         | Apps.Kv_store.Put _ ->
           { s with h_ops = s.h_ops + 1; h_puts = s.h_puts + 1 }
         | Apps.Kv_store.Get _ ->
           { s with h_ops = s.h_ops + 1; h_gets = s.h_gets + 1 }
         | Apps.Kv_store.Delete _ ->
           { s with h_ops = s.h_ops + 1; h_deletes = s.h_deletes + 1 }))
    { h_ops = 0; h_puts = 0; h_gets = 0; h_deletes = 0 }
    history

let pp_stats ppf s =
  Fmt.pf ppf "%d ops (%d put, %d get, %d delete)" s.h_ops s.h_puts s.h_gets
    s.h_deletes
