(* Pure reference models (DESIGN.md §19). Everything here is persistent:
   apply returns a new model, never mutates. *)

module SMap = Map.Make (String)
module IMap = Map.Make (Int)

module Kv = struct
  type t = {
    table : string SMap.t;
    last : (int * Apps.Kv_store.reply) IMap.t;  (* client -> last (req, reply) *)
  }

  let empty = { table = SMap.empty; last = IMap.empty }

  let eval table cmd =
    match cmd with
    | Apps.Kv_store.Get { key } -> (
      ( table,
        match SMap.find_opt key table with
        | Some v -> Apps.Kv_store.Value v
        | None -> Apps.Kv_store.Not_found ))
    | Apps.Kv_store.Put { key; value } ->
      (SMap.add key value table, Apps.Kv_store.Stored)
    | Apps.Kv_store.Delete { key } ->
      if SMap.mem key table then (SMap.remove key table, Apps.Kv_store.Deleted)
      else (table, Apps.Kv_store.Not_found)

  let apply t ~client ~req_id cmd =
    match IMap.find_opt client t.last with
    | Some (last, reply) when last = req_id -> (t, reply)
    | Some _ | None ->
      let table, reply = eval t.table cmd in
      ({ table; last = IMap.add client (req_id, reply) t.last }, reply)

  let find t key = SMap.find_opt key t.table
end

module Book = struct
  (* A resting order carries the sequence number of its (re-)entry into
     the book: price-time priority is the lexicographic order on
     (price, seq) — best price first, oldest entry first within it. *)
  type resting = { o_id : int; o_side : Apps.Order_book.side; o_price : int; o_qty : int; o_seq : int }

  type t = { resting : resting list; next_seq : int }

  let empty = { resting = []; next_seq = 0 }

  let open_orders t = List.length t.resting

  let open_qty t side =
    List.fold_left
      (fun acc o -> if o.o_side = side then acc + o.o_qty else acc)
      0 t.resting

  let find t id = List.find_opt (fun o -> o.o_id = id) t.resting
  let remove t id = { t with resting = List.filter (fun o -> o.o_id <> id) t.resting }

  (* Best maker on [side]: max price for bids, min for asks; oldest seq
     within a price level. *)
  let best t side =
    let better a b =
      if a.o_price <> b.o_price then
        match side with
        | Apps.Order_book.Buy -> a.o_price > b.o_price
        | Apps.Order_book.Sell -> a.o_price < b.o_price
      else a.o_seq < b.o_seq
    in
    List.fold_left
      (fun acc o ->
        if o.o_side <> side then acc
        else match acc with Some b when better b o -> acc | _ -> Some o)
      None t.resting

  let crosses ~taker_side ~limit ~maker_price =
    match (taker_side, limit) with
    | _, None -> true
    | Apps.Order_book.Buy, Some l -> maker_price <= l
    | Apps.Order_book.Sell, Some l -> maker_price >= l

  let rec match_incoming t ~taker_id ~taker_side ~limit ~remaining acc =
    if remaining = 0 then (t, remaining, List.rev acc)
    else
      let maker_side =
        match taker_side with
        | Apps.Order_book.Buy -> Apps.Order_book.Sell
        | Apps.Order_book.Sell -> Apps.Order_book.Buy
      in
      match best t maker_side with
      | Some maker when crosses ~taker_side ~limit ~maker_price:maker.o_price ->
        let traded = min remaining maker.o_qty in
        let fill =
          Apps.Order_book.Filled
            { taker = taker_id; maker = maker.o_id; price = maker.o_price; qty = traded }
        in
        if traded = maker.o_qty then
          match_incoming (remove t maker.o_id) ~taker_id ~taker_side ~limit
            ~remaining:(remaining - traded)
            (Apps.Order_book.Done { id = maker.o_id } :: fill :: acc)
        else
          let t =
            {
              t with
              resting =
                List.map
                  (fun o ->
                    if o.o_id = maker.o_id then { o with o_qty = o.o_qty - traded }
                    else o)
                  t.resting;
            }
          in
          match_incoming t ~taker_id ~taker_side ~limit ~remaining:(remaining - traded)
            (fill :: acc)
      | _ -> (t, remaining, List.rev acc)

  let submit_limit t ~id ~side ~price ~qty =
    if find t id <> None then
      (t, [ Apps.Order_book.Rejected { id; reason = "duplicate id" } ])
    else if price <= 0 || qty <= 0 then
      (t, [ Apps.Order_book.Rejected { id; reason = "bad price/qty" } ])
    else
      let t, remaining, events =
        match_incoming t ~taker_id:id ~taker_side:side ~limit:(Some price)
          ~remaining:qty []
      in
      if remaining > 0 then
        ( {
            resting =
              { o_id = id; o_side = side; o_price = price; o_qty = remaining; o_seq = t.next_seq }
              :: t.resting;
            next_seq = t.next_seq + 1;
          },
          events @ [ Apps.Order_book.Accepted { id } ] )
      else (t, events @ [ Apps.Order_book.Done { id } ])

  let submit_market t ~id ~side ~qty =
    if find t id <> None then
      (t, [ Apps.Order_book.Rejected { id; reason = "duplicate id" } ])
    else if qty <= 0 then (t, [ Apps.Order_book.Rejected { id; reason = "bad qty" } ])
    else
      let t, remaining, events =
        match_incoming t ~taker_id:id ~taker_side:side ~limit:None ~remaining:qty []
      in
      if remaining = qty then
        (t, events @ [ Apps.Order_book.Rejected { id; reason = "no liquidity" } ])
      else if remaining > 0 then
        (t, events @ [ Apps.Order_book.Cancelled { id; remaining } ])
      else (t, events @ [ Apps.Order_book.Done { id } ])

  let cancel t ~id =
    match find t id with
    | None -> (t, [ Apps.Order_book.Rejected { id; reason = "unknown order" } ])
    | Some o ->
      (remove t id, [ Apps.Order_book.Cancelled { id; remaining = o.o_qty } ])

  let replace t ~id ~price ~qty =
    match find t id with
    | None -> (t, [ Apps.Order_book.Rejected { id; reason = "unknown order" } ])
    | Some o ->
      let new_price = Option.value price ~default:o.o_price in
      if qty <= 0 || new_price <= 0 then
        (t, [ Apps.Order_book.Rejected { id; reason = "bad price/qty" } ])
      else if new_price = o.o_price && qty <= o.o_qty then
        (* Pure size decrease keeps time priority (same seq). *)
        ( {
            t with
            resting =
              List.map
                (fun r -> if r.o_id = id then { r with o_qty = qty } else r)
                t.resting;
          },
          [ Apps.Order_book.Replaced { id } ] )
      else
        (* Price change or size increase: cancel and re-enter, losing
           time priority (and possibly matching immediately). *)
        let t, _ = cancel t ~id in
        let t, events = submit_limit t ~id ~side:o.o_side ~price:new_price ~qty in
        ( t,
          Apps.Order_book.Replaced { id }
          :: List.filter
               (function Apps.Order_book.Accepted _ -> false | _ -> true)
               events )

  let apply t cmd =
    match cmd with
    | Apps.Exchange.Limit { id; side; price; qty } -> submit_limit t ~id ~side ~price ~qty
    | Apps.Exchange.Market { id; side; qty } -> submit_market t ~id ~side ~qty
    | Apps.Exchange.Cancel { id } -> cancel t ~id
    | Apps.Exchange.Replace { id; price; qty } -> replace t ~id ~price ~qty
end
