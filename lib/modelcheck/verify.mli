(** The verify sweep: generated (seed, scenario, history) triples driven
    through the real cluster and judged against the pure model, with the
    first failure shrunk to a minimized repro bundle.

    Each case derives a scenario {e and} a history from one per-case
    seed (drawn from a root PRNG), so a failing case is replayable from
    a single 64-bit number — and the emitted bundle carries scenario and
    history explicitly anyway, so a repro outlives generator changes. *)

type report = {
  cases : int;
  failed : int;
  verdicts : (int64 * int * Conformance.verdict) list;
      (** Per case: (seed, n, verdict), in execution order. *)
  coverage : Faults.Scenario.coverage;  (** Fault mix actually generated. *)
  op_stats : History.stats;  (** Op mix actually generated. *)
  first_witness : Conformance.witness option;
      (** The first failure's witness from its {e un}shrunk run. *)
  minimized : (Repro.t * Shrink.shrunk) option;
      (** First failure shrunk to a bundle; [None] when all cases pass. *)
}

val sweep :
  ?cases:int ->
  ?ns:int list ->
  ?inject:int ->
  ?clients:int ->
  ?ops_per_client:int ->
  ?budget:int ->
  ?log:(string -> unit) ->
  seed:int64 ->
  unit ->
  report
(** [cases] (default 25) generated triples, cluster sizes cycling through
    [ns] (default [[3; 5]]); [inject] (default 0) sets
    {!Apps.Kv_store.test_only_lose_put_every} for every run — the
    self-test hook; [clients] × [ops_per_client] (default 3 × 8) shape
    each history; [budget] bounds the shrinker's re-executions. [log]
    observes one line per case plus shrink progress. *)

val replay : Repro.t -> Shrink.result * string
(** Re-execute a bundle's triple and re-emit the bundle with the verdict
    the run actually produced: byte-identical to the input exactly when
    the failure still reproduces. *)
