(** Byte-stable repro bundles (schema [mu-verify-repro/1]).

    A bundle is everything {!Shrink.run} needs to re-execute a minimized
    failing triple — seed, cluster size, injection flag, fault scenario,
    scripted history — plus the expected verdict. The codec is canonical:
    printing preserves a fixed field order and {!of_string} followed by
    {!to_string} is the identity on any bundle this module printed, so
    CI can replay a committed bundle and [cmp] the re-emitted bytes. *)

type t = {
  b_triple : Shrink.triple;
  b_verdict : Conformance.verdict;
}

val schema : string

val to_string : t -> string
val of_string : string -> (t, string) result
(** Strict: unknown schema, missing fields, bad op or verdict strings are
    errors, with a field path in the message. *)
