(** Random client histories for the conformance runner.

    A history is one op list per client, in the exact shape
    {!Workload.Chaos.run}'s [script] option replays: every op carries its
    request id, its command (values included, so shrinking never rewrites
    a surviving op) and a think gap that spreads the history across the
    scenario's fault window. Generation draws from a caller-owned
    {!Sim.Rng.t} — same stream position, same history — which is how the
    verify sweep derives scenario and history from one per-case seed. *)

val generate :
  ?keys:string array ->
  ?think_max:int ->
  clients:int ->
  ops_per_client:int ->
  Sim.Rng.t ->
  Workload.Chaos.scripted_op list list
(** Mix: 45% [Put], 40% [Get], 15% [Delete] over [keys] (default
    [[|"a"; "b"; "c"|]]); request ids run 1..[ops_per_client] per client;
    values are ["v<proc>.<req>"]; think gaps are uniform in
    [\[0, think_max)] (default 2ms virtual). *)

type stats = { h_ops : int; h_puts : int; h_gets : int; h_deletes : int }

val stats : Workload.Chaos.scripted_op list list -> stats
(** Op mix actually generated — logged by the sweep next to the fault
    coverage, so a history generator that silently degenerates (all
    reads, say) is visible. *)

val pp_stats : stats Fmt.t
