type report = {
  cases : int;
  failed : int;
  verdicts : (int64 * int * Conformance.verdict) list;
  coverage : Faults.Scenario.coverage;
  op_stats : History.stats;
  first_witness : Conformance.witness option;
  minimized : (Repro.t * Shrink.shrunk) option;
}

let sweep ?(cases = 25) ?(ns = [ 3; 5 ]) ?(inject = 0) ?(clients = 3)
    ?(ops_per_client = 8) ?budget ?(log = fun _ -> ()) ~seed () =
  let root = Sim.Rng.create seed in
  let ns = Array.of_list ns in
  let verdicts = ref [] in
  let scenarios = ref [] in
  let stats = ref { History.h_ops = 0; h_puts = 0; h_gets = 0; h_deletes = 0 } in
  let first_failure = ref None in
  for i = 0 to cases - 1 do
    let run_seed = Sim.Rng.int64 root in
    let n = ns.(i mod Array.length ns) in
    (* One per-case PRNG feeds scenario then history: the whole case
       replays from run_seed alone. *)
    let crng = Sim.Rng.create run_seed in
    let scenario = Faults.Scenario.generate crng ~n ~horizon:40_000_000 in
    let history = History.generate ~clients ~ops_per_client crng in
    scenarios := scenario :: !scenarios;
    let s = History.stats history in
    stats :=
      {
        History.h_ops = !stats.History.h_ops + s.History.h_ops;
        h_puts = !stats.History.h_puts + s.History.h_puts;
        h_gets = !stats.History.h_gets + s.History.h_gets;
        h_deletes = !stats.History.h_deletes + s.History.h_deletes;
      };
    let triple =
      {
        Shrink.t_seed = run_seed;
        t_n = n;
        t_inject = inject;
        t_scenario = scenario;
        t_history = history;
      }
    in
    let r = Shrink.run triple in
    verdicts := (run_seed, n, r.Shrink.verdict) :: !verdicts;
    log
      (Fmt.str "case %3d  seed=%-20Ld n=%d  %-18s %s" i run_seed n
         scenario.Faults.Scenario.name
         (Conformance.verdict_to_string r.Shrink.verdict));
    if Conformance.failing r.Shrink.verdict && !first_failure = None then
      first_failure := Some (triple, r)
  done;
  let minimized, first_witness =
    match !first_failure with
    | None -> (None, None)
    | Some (triple, r) ->
      let shrunk = Shrink.shrink ?budget ~log triple r in
      ( Some
          ( {
              Repro.b_triple = shrunk.Shrink.minimized;
              b_verdict = shrunk.Shrink.final.Shrink.verdict;
            },
            shrunk ),
        r.Shrink.witness )
  in
  let verdicts = List.rev !verdicts in
  {
    cases;
    failed =
      List.length
        (List.filter (fun (_, _, v) -> Conformance.failing v) verdicts);
    verdicts;
    coverage = Faults.Scenario.coverage (List.rev !scenarios);
    op_stats = !stats;
    first_witness;
    minimized;
  }

let replay (b : Repro.t) =
  let r = Shrink.run b.Repro.b_triple in
  ( r,
    Repro.to_string
      { Repro.b_triple = b.Repro.b_triple; b_verdict = r.Shrink.verdict } )
