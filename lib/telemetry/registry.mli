(** Metrics registry: named counters, gauges and HDR histograms.

    Components resolve their instruments once at creation time and keep
    the returned handles; updating an instrument is a record-field write
    with no registry involvement. Registering the same (name, labels)
    pair again returns the existing instrument, so instruments shared
    across components (e.g. a per-host counter used by many QPs)
    aggregate naturally, and repeated experiments accumulate into one
    series of metrics.

    Labels are canonicalised (sorted by key) at registration and all
    iteration is sorted by (name, labels), which is what makes the
    exporters byte-deterministic for equal-seed runs. *)

type counter
type gauge

type kind = Counter of counter | Gauge of gauge | Histogram of Hdr.t

type metric = {
  name : string;
  labels : (string * string) list;  (** Sorted by key. *)
  help : string;
  kind : kind;
}

type t

val create : unit -> t

val counter : t -> ?help:string -> ?labels:(string * string) list -> string -> counter
(** Find-or-create. Raises [Invalid_argument] if the name is already
    registered with a different instrument kind, or the name is not a
    valid metric identifier ([a-zA-Z0-9_:]+). *)

val gauge : t -> ?help:string -> ?labels:(string * string) list -> string -> gauge

val histogram :
  t -> ?precision:int -> ?help:string -> ?labels:(string * string) list -> string -> Hdr.t

val metrics : t -> metric list
(** All registered metrics, sorted by (name, labels). *)

val find : t -> ?labels:(string * string) list -> string -> metric option

module Counter : sig
  type t = counter

  val inc : t -> unit
  val add : t -> int -> unit
  val value : t -> int
end

module Gauge : sig
  type t = gauge

  val set : t -> int -> unit
  val add : t -> int -> unit
  val value : t -> int
end

val pp : t Fmt.t
