(** Text dashboard over a {!Registry.t} and optional {!Sampler.t}.

    Renders the latency percentile table (p50/p90/p99/p99.9, in
    microseconds, for [_ns]-suffixed histograms), the fail-over phase
    breakdown (total / detection / permission-switch medians and
    shares), and an ASCII timeline of follower pull-scores showing the
    crossing below the fail threshold and back above the recover
    threshold. *)

val percentile_table : ?prefix:string -> Registry.t -> string
(** One row per non-empty [_ns] histogram (optionally filtered by name
    prefix); empty string if there are none. *)

val failover_breakdown : Registry.t -> string
(** Median/p99 and share-of-total for the [failover_*_ns] histograms;
    empty string if no fail-over ran. *)

val recovery_summary : Registry.t -> string
(** Crash-recovery instruments: per-replica rejoin count, median
    restart-to-parity latency and catch-up entries pulled
    ([mu_rejoin_time_to_parity_ns] / [mu_catch_up_entries_total]), plus
    degraded-window and shed-request totals; empty string if no
    recovery ran. *)

val serving_summary : Registry.t -> string
(** Serving-tier instruments: one row per shard (queue depth and
    in-flight gauges, committed/shed/retried counters, tier latency
    p50/p99 from [serving_latency_ns]) plus the [mu_batch_occupancy]
    histogram merged across replicas as an ASCII bar chart; empty
    string if no serving run was recorded. *)

val score_timeline : ?width:int -> ?fail:int -> ?recover:int -> Sampler.t -> string
(** One row per (replica, peer, epoch) [mu_score] series that crossed
    below [fail] (default 2); scores render as one hex digit (0-f) per
    column, min-in-window downsampled to [width] (default 64) columns,
    annotated with the first fail and recover crossing times. *)

val has_fail_recover_crossing : ?fail:int -> ?recover:int -> Sampler.t -> bool
(** True iff some [mu_score] series drops below [fail] and later rises
    above [recover] — the acceptance check for a detected fail-over. *)

val render : ?sampler:Sampler.t -> Registry.t -> string
(** All sections that have data, or a placeholder line if none do. *)
