(* Log-bucketed histogram in the HdrHistogram style: exponential buckets,
   each split into 2^precision linear sub-buckets, so any recorded value
   is off by at most a factor of 2^-precision from its bucket's
   representative. Counts are plain ints in a growable array; merging two
   histograms of equal precision is element-wise addition, which makes
   quantiles mergeable across replicas and experiments. *)

type t = {
  precision : int;  (* sub-bucket bits; relative error <= 2^-precision *)
  sub_half : int;  (* 1 lsl precision *)
  sub_count : int;  (* 2 * sub_half: values below this are exact *)
  mutable counts : int array;
  mutable total : int;
  mutable min_v : int;
  mutable max_v : int;
  mutable sum : float;
}

let default_precision = 7

let create ?(precision = default_precision) () =
  if precision < 1 || precision > 20 then
    invalid_arg "Hdr.create: precision must be in [1, 20]";
  let sub_half = 1 lsl precision in
  {
    precision;
    sub_half;
    sub_count = 2 * sub_half;
    counts = Array.make (4 * sub_half) 0;
    total = 0;
    min_v = max_int;
    max_v = -1;
    sum = 0.0;
  }

let precision t = t.precision
let count t = t.total
let is_empty t = t.total = 0
let sum t = t.sum
let min_value t = if t.total = 0 then None else Some t.min_v
let max_value t = if t.total = 0 then None else Some t.max_v
let mean t = if t.total = 0 then None else Some (t.sum /. float_of_int t.total)

(* Position of the highest set bit of [x] (x >= 1). *)
let msb x =
  let r = ref 0 and x = ref x in
  while !x > 1 do
    incr r;
    x := !x lsr 1
  done;
  !r

(* How far [v] must be shifted right for its sub-bucket index to fit in
   [sub_half, sub_count); 0 for values that are recorded exactly. *)
let shift_of t v = msb (v lor (t.sub_count - 1)) - t.precision

let index_of t v =
  let s = shift_of t v in
  (s * t.sub_half) + (v lsr s)

(* Lowest and highest value mapping to counts slot [i]. *)
let bounds_of_index t i =
  if i < t.sub_count then (i, i)
  else begin
    let s = (i / t.sub_half) - 1 in
    let sub = i - (s * t.sub_half) in
    let lo = sub lsl s in
    (lo, lo + (1 lsl s) - 1)
  end

let ensure_capacity t i =
  if i >= Array.length t.counts then begin
    let cap = ref (Array.length t.counts) in
    while i >= !cap do
      cap := !cap * 2
    done;
    let n = Array.make !cap 0 in
    Array.blit t.counts 0 n 0 (Array.length t.counts);
    t.counts <- n
  end

let record ?(n = 1) t v =
  if n > 0 then begin
    let v = if v < 0 then 0 else v in
    let i = index_of t v in
    ensure_capacity t i;
    t.counts.(i) <- t.counts.(i) + n;
    t.total <- t.total + n;
    t.sum <- t.sum +. (float_of_int v *. float_of_int n);
    if v < t.min_v then t.min_v <- v;
    if v > t.max_v then t.max_v <- v
  end

let quantile t q =
  if t.total = 0 || q < 0.0 || q > 1.0 then None
  else begin
    let target =
      let r = int_of_float (ceil ((q *. float_of_int t.total) -. 1e-9)) in
      if r < 1 then 1 else if r > t.total then t.total else r
    in
    let cum = ref 0 and i = ref 0 and res = ref t.max_v in
    (try
       while true do
         cum := !cum + t.counts.(!i);
         if !cum >= target then begin
           let _, hi = bounds_of_index t !i in
           res := hi;
           raise Exit
         end;
         incr i
       done
     with Exit -> ());
    let v = !res in
    Some (if v > t.max_v then t.max_v else if v < t.min_v then t.min_v else v)
  end

let merge ~into src =
  if into.precision <> src.precision then
    invalid_arg "Hdr.merge: precision mismatch";
  ensure_capacity into (Array.length src.counts - 1);
  Array.iteri (fun i c -> if c > 0 then into.counts.(i) <- into.counts.(i) + c) src.counts;
  into.total <- into.total + src.total;
  into.sum <- into.sum +. src.sum;
  if src.total > 0 then begin
    if src.min_v < into.min_v then into.min_v <- src.min_v;
    if src.max_v > into.max_v then into.max_v <- src.max_v
  end

let copy t = { t with counts = Array.copy t.counts }

(* [diff ~since t] with both snapshots of the same monotonically-recorded
   histogram: the distribution of values recorded after [since] was taken.
   Min/max of the window are not recoverable from the cumulative snapshots,
   so they come from the diffed buckets' bounds — within the usual bucket
   error. *)
let diff ~since t =
  if t.precision <> since.precision then invalid_arg "Hdr.diff: precision mismatch";
  let d = create ~precision:t.precision () in
  ensure_capacity d (Array.length t.counts - 1);
  let total = ref 0 in
  Array.iteri
    (fun i c ->
      let before = if i < Array.length since.counts then since.counts.(i) else 0 in
      let dc = c - before in
      if dc > 0 then begin
        d.counts.(i) <- dc;
        total := !total + dc;
        let lo, hi = bounds_of_index t i in
        if lo < d.min_v then d.min_v <- lo;
        if hi > d.max_v then d.max_v <- hi
      end)
    t.counts;
  d.total <- !total;
  d.sum <- (if !total = 0 then 0.0 else t.sum -. since.sum);
  d

let iter_buckets t f =
  Array.iteri
    (fun i c ->
      if c > 0 then begin
        let lo, hi = bounds_of_index t i in
        f ~lo ~hi ~count:c
      end)
    t.counts

let buckets t =
  let acc = ref [] in
  iter_buckets t (fun ~lo ~hi ~count -> acc := (lo, hi, count) :: !acc);
  List.rev !acc

let pp ppf t =
  if t.total = 0 then Fmt.string ppf "<empty>"
  else
    let q p = match quantile t p with Some v -> v | None -> 0 in
    Fmt.pf ppf "n=%d min=%d p50=%d p99=%d max=%d" t.total t.min_v (q 0.5) (q 0.99)
      t.max_v
