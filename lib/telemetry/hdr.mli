(** Log-bucketed histogram with mergeable quantiles (HdrHistogram-style).

    Values are non-negative integers (negative inputs clamp to 0),
    typically nanoseconds. Exponential buckets are split into
    [2^precision] linear sub-buckets, bounding the relative quantile
    error at [2^-precision] (default precision 7: <= 0.79%). Values
    below [2^(precision+1)] are recorded exactly.

    Recording is O(1) and allocation-free once the counts array has
    grown to cover the observed range; merging is element-wise, so
    per-replica histograms combine into cluster-wide quantiles without
    retaining samples. *)

type t

val default_precision : int

val create : ?precision:int -> unit -> t
(** Raises [Invalid_argument] unless [precision] is in [1, 20]. *)

val precision : t -> int
val record : ?n:int -> t -> int -> unit
val count : t -> int
val is_empty : t -> bool
val sum : t -> float
val min_value : t -> int option
val max_value : t -> int option
val mean : t -> float option

val quantile : t -> float -> int option
(** [quantile t q] with [q] in [0, 1]: the highest value equivalent to
    the bucket holding the q-th recorded value, clamped to the recorded
    [min]/[max]. [None] when empty or [q] is out of range. *)

val merge : into:t -> t -> unit
(** Element-wise addition. Raises [Invalid_argument] on precision
    mismatch. Associative and commutative up to the resulting counts. *)

val copy : t -> t
(** Independent snapshot; further recording into either side does not
    affect the other. *)

val diff : since:t -> t -> t
(** [diff ~since t], where [since] is an earlier {!copy} of the same
    histogram: the distribution of the values recorded in between — the
    windowed view the online monitor evaluates percentiles over.
    Negative per-bucket deltas (not possible for true snapshots) clamp
    to zero. Min/max derive from the diffed buckets' bounds, so they
    carry the usual bucket error. Raises [Invalid_argument] on precision
    mismatch. *)

val iter_buckets : t -> (lo:int -> hi:int -> count:int -> unit) -> unit
(** Non-empty buckets in ascending value order. *)

val buckets : t -> (int * int * int) list
(** [(lo, hi, count)] for non-empty buckets, ascending. *)

val pp : t Fmt.t
