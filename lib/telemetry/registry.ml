(* Named-metric registry. Instruments are resolved once (at component
   creation) and then updated through a record field write, so the hot
   path never touches the registry; lookup cost is paid only at
   registration. Labels are sorted at registration so a (name, labels)
   pair has one canonical identity, which also makes every exporter's
   iteration order deterministic. *)

type counter = { mutable cv : int }
type gauge = { mutable gv : int }

type kind = Counter of counter | Gauge of gauge | Histogram of Hdr.t

type metric = {
  name : string;
  labels : (string * string) list;  (* sorted by key *)
  help : string;
  kind : kind;
}

type t = { tbl : (string, metric) Hashtbl.t }

let create () = { tbl = Hashtbl.create 64 }

let valid_name name =
  name <> ""
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
         || c = '_' || c = ':')
       name

let key name labels =
  String.concat "\x00" (name :: List.concat_map (fun (k, v) -> [ k; v ]) labels)

let kind_name = function Counter _ -> "counter" | Gauge _ -> "gauge" | Histogram _ -> "histogram"

let register t ~name ~labels ~help ~make ~extract ~wanted =
  if not (valid_name name) then invalid_arg ("Registry: invalid metric name " ^ name);
  let labels = List.sort compare labels in
  let k = key name labels in
  match Hashtbl.find_opt t.tbl k with
  | Some m -> (
    match extract m.kind with
    | Some v -> v
    | None ->
      invalid_arg
        (Printf.sprintf "Registry: %s already registered as a %s, not a %s" name
           (kind_name m.kind) wanted))
  | None ->
    let v, kind = make () in
    Hashtbl.replace t.tbl k { name; labels; help; kind };
    v

let counter t ?(help = "") ?(labels = []) name =
  register t ~name ~labels ~help ~wanted:"counter"
    ~make:(fun () ->
      let c = { cv = 0 } in
      (c, Counter c))
    ~extract:(function Counter c -> Some c | _ -> None)

let gauge t ?(help = "") ?(labels = []) name =
  register t ~name ~labels ~help ~wanted:"gauge"
    ~make:(fun () ->
      let g = { gv = 0 } in
      (g, Gauge g))
    ~extract:(function Gauge g -> Some g | _ -> None)

let histogram t ?precision ?(help = "") ?(labels = []) name =
  register t ~name ~labels ~help ~wanted:"histogram"
    ~make:(fun () ->
      let h = Hdr.create ?precision () in
      (h, Histogram h))
    ~extract:(function Histogram h -> Some h | _ -> None)

(* Sorted by (name, labels): the canonical order every exporter and the
   sampler iterate in, so equal registry contents export byte-identically. *)
let metrics t =
  Hashtbl.fold (fun _ m acc -> m :: acc) t.tbl []
  |> List.sort (fun a b ->
         match compare a.name b.name with 0 -> compare a.labels b.labels | c -> c)

let find t ?(labels = []) name =
  Hashtbl.find_opt t.tbl (key name (List.sort compare labels))

module Counter = struct
  type t = counter

  let inc c = c.cv <- c.cv + 1
  let add c n = c.cv <- c.cv + n
  let value c = c.cv
end

module Gauge = struct
  type t = gauge

  let set g v = g.gv <- v
  let add g n = g.gv <- g.gv + n
  let value g = g.gv
end

let pp_labels ppf labels =
  if labels <> [] then
    Fmt.pf ppf "{%a}"
      (Fmt.list ~sep:(Fmt.any ",") (fun ppf (k, v) -> Fmt.pf ppf "%s=%S" k v))
      labels

let pp ppf t =
  List.iter
    (fun m ->
      match m.kind with
      | Counter c -> Fmt.pf ppf "%s%a %d@." m.name pp_labels m.labels c.cv
      | Gauge g -> Fmt.pf ppf "%s%a %d@." m.name pp_labels m.labels g.gv
      | Histogram h -> Fmt.pf ppf "%s%a %a@." m.name pp_labels m.labels Hdr.pp h)
    (metrics t)
