(* Virtual-time sampler: snapshots every registered metric into a
   time-series on a fixed simulated-time interval. The driver (usually
   Workload.Experiments.run_sim) owns the cadence: it calls [tick] from
   a fiber that sleeps [interval] virtual nanoseconds between calls, so
   sampling consumes zero virtual time and cannot perturb the measured
   system.

   Experiments build a fresh engine each, so virtual time restarts from
   0 repeatedly within one bench run; [start_epoch] opens a new epoch
   and every sample is tagged with it, keeping per-run timelines
   separate and monotonic.

   Memory is bounded per (series, epoch): when an epoch reaches
   [max_points] stored samples it is compacted by dropping every other
   point and doubling the sampling stride. The compaction is a pure
   function of the tick sequence, so equal-seed runs still export
   byte-identical series. *)

type epoch = {
  eid : int;
  mutable ts : int array;
  mutable vs : float array;
  mutable n : int;
  mutable stride : int;  (* record every stride-th tick *)
  mutable ticks : int;  (* ticks seen by this epoch, recorded or not *)
}

type series = { metric : Registry.metric; mutable epochs : epoch list (* newest first *) }

type subscriber = now:int -> epoch:int -> (Registry.metric * float) list -> unit

type t = {
  reg : Registry.t;
  interval : int;
  max_points : int;
  mutable eid : int;
  tbl : (string, series) Hashtbl.t;
  mutable subs : subscriber list; (* reverse registration order *)
  (* Self-cost hook (the profile plane): when set, every tick body runs
     through this wrapper so its wall-clock and allocation can be
     attributed to the telemetry layer. One option check when unset. *)
  mutable prof : (unit -> unit) -> unit;
  mutable prof_on : bool;
}

let create ?(max_points_per_epoch = 65_536) reg ~interval =
  if interval <= 0 then invalid_arg "Sampler.create: interval must be positive";
  if max_points_per_epoch < 16 then
    invalid_arg "Sampler.create: max_points_per_epoch must be >= 16";
  { reg; interval; max_points = max_points_per_epoch; eid = -1; tbl = Hashtbl.create 64;
    subs = []; prof = (fun f -> f ()); prof_on = false }

let subscribe t f = t.subs <- f :: t.subs

let set_profile t wrap =
  t.prof <- wrap;
  t.prof_on <- true

let clear_profile t =
  t.prof <- (fun f -> f ());
  t.prof_on <- false

let registry t = t.reg
let interval t = t.interval
let start_epoch t = t.eid <- t.eid + 1
let current_epoch t = t.eid

let skey (m : Registry.metric) =
  String.concat "\x00" (m.name :: List.concat_map (fun (k, v) -> [ k; v ]) m.labels)

let value_of (m : Registry.metric) =
  match m.kind with
  | Registry.Counter c -> float_of_int (Registry.Counter.value c)
  | Registry.Gauge g -> float_of_int (Registry.Gauge.value g)
  | Registry.Histogram h -> float_of_int (Hdr.count h)

let fresh_epoch t =
  { eid = t.eid; ts = Array.make 256 0; vs = Array.make 256 0.0; n = 0; stride = 1; ticks = 0 }

let compact ep =
  let half = ep.n / 2 in
  for i = 0 to half - 1 do
    ep.ts.(i) <- ep.ts.(2 * i);
    ep.vs.(i) <- ep.vs.(2 * i)
  done;
  ep.n <- half;
  ep.stride <- ep.stride * 2

let append t ep ~now v =
  if ep.n = Array.length ep.ts then begin
    let cap = 2 * Array.length ep.ts in
    let nts = Array.make cap 0 and nvs = Array.make cap 0.0 in
    Array.blit ep.ts 0 nts 0 ep.n;
    Array.blit ep.vs 0 nvs 0 ep.n;
    ep.ts <- nts;
    ep.vs <- nvs
  end;
  ep.ts.(ep.n) <- now;
  ep.vs.(ep.n) <- v;
  ep.n <- ep.n + 1;
  if ep.n >= t.max_points then compact ep

let tick_body t ~now =
  if t.eid < 0 then invalid_arg "Sampler.tick: no epoch started";
  (* One registry scan per tick: the (metric, value) snapshot feeds both
     the stored series and every subscriber, so window evaluators (the
     monitor library) reuse the sampler's cadence instead of re-reading
     the registry on their own. *)
  let samples =
    List.map (fun (m : Registry.metric) -> (m, value_of m)) (Registry.metrics t.reg)
  in
  List.iter
    (fun ((m : Registry.metric), v) ->
      let k = skey m in
      let s =
        match Hashtbl.find_opt t.tbl k with
        | Some s -> s
        | None ->
          let s = { metric = m; epochs = [] } in
          Hashtbl.replace t.tbl k s;
          s
      in
      let ep =
        match s.epochs with
        | e :: _ when e.eid = t.eid -> e
        | _ ->
          let e = fresh_epoch t in
          s.epochs <- e :: s.epochs;
          e
      in
      ep.ticks <- ep.ticks + 1;
      if (ep.ticks - 1) mod ep.stride = 0 then append t ep ~now v)
    samples;
  List.iter (fun f -> f ~now ~epoch:t.eid samples) (List.rev t.subs)

let tick t ~now =
  if t.prof_on then t.prof (fun () -> tick_body t ~now) else tick_body t ~now

let points ep = Array.init ep.n (fun i -> (ep.ts.(i), ep.vs.(i)))

let series t =
  Hashtbl.fold (fun _ s acc -> s :: acc) t.tbl []
  |> List.sort (fun a b ->
         match compare a.metric.Registry.name b.metric.Registry.name with
         | 0 -> compare a.metric.Registry.labels b.metric.Registry.labels
         | c -> c)
  |> List.map (fun s ->
         ( s.metric,
           List.rev_map (fun (ep : epoch) -> (ep.eid, points ep)) s.epochs ))
