(** Deterministic exporters for a {!Registry.t} (and optionally the
    {!Sampler.t} time-series).

    All exporters iterate in the registry's canonical sorted order and
    format numbers deterministically, so equal-seed runs produce
    byte-identical output — the CI determinism job diffs two dumps. *)

val prometheus : Registry.t -> string
(** Prometheus text exposition format. Histograms emit cumulative
    [_bucket{le="..."}] rows (upper bucket edges), [_sum] and
    [_count]. *)

val csv : Registry.t -> string
(** [metric,labels,kind,field,value] rows; histograms expand into
    count/sum/min/max/p0.5/p0.9/p0.99/p0.999 rows. *)

val series_csv : Sampler.t -> string
(** [metric,labels,epoch,t_ns,value] rows for every sampled point. *)

val json : ?sampler:Sampler.t -> Registry.t -> string
(** Single JSON document: metrics (histograms with buckets and
    quantiles) plus, when [sampler] is given, every time-series. *)

val to_file : ?sampler:Sampler.t -> Registry.t -> string -> unit
(** Write to [path], format selected by extension: [.json] (metrics +
    series), [.csv] (metrics, with series in [<base>_series.csv]),
    [.prom]/[.txt] (Prometheus text). Unknown extensions get JSON. *)
