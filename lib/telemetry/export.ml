(* Exporters. Everything iterates in Registry/Sampler's canonical sorted
   order and formats numbers through one deterministic path, so two runs
   with equal seeds produce byte-identical files — CI diffs them. *)

let quantiles = [ (0.5, "0.5"); (0.9, "0.9"); (0.99, "0.99"); (0.999, "0.999") ]

(* Integral floats print as ints (counts, ns values); everything else
   with fixed precision. Never locale- or platform-dependent. *)
let num v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6f" v

(* --- Prometheus text format -------------------------------------------- *)

let prom_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let prom_labels ?extra labels =
  let labels = match extra with None -> labels | Some kv -> labels @ [ kv ] in
  if labels = [] then ""
  else
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (prom_escape v)) labels)
    ^ "}"

let prometheus reg =
  let b = Buffer.create 4096 in
  let last_header = ref "" in
  List.iter
    (fun (m : Registry.metric) ->
      if m.name <> !last_header then begin
        last_header := m.name;
        if m.help <> "" then Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" m.name m.help);
        let ty =
          match m.kind with
          | Registry.Counter _ -> "counter"
          | Registry.Gauge _ -> "gauge"
          | Registry.Histogram _ -> "histogram"
        in
        Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" m.name ty)
      end;
      match m.kind with
      | Registry.Counter c ->
        Buffer.add_string b
          (Printf.sprintf "%s%s %d\n" m.name (prom_labels m.labels) (Registry.Counter.value c))
      | Registry.Gauge g ->
        Buffer.add_string b
          (Printf.sprintf "%s%s %d\n" m.name (prom_labels m.labels) (Registry.Gauge.value g))
      | Registry.Histogram h ->
        let cum = ref 0 in
        Hdr.iter_buckets h (fun ~lo:_ ~hi ~count ->
            cum := !cum + count;
            Buffer.add_string b
              (Printf.sprintf "%s_bucket%s %d\n" m.name
                 (prom_labels m.labels ~extra:("le", string_of_int hi))
                 !cum));
        Buffer.add_string b
          (Printf.sprintf "%s_bucket%s %d\n" m.name
             (prom_labels m.labels ~extra:("le", "+Inf"))
             (Hdr.count h));
        Buffer.add_string b
          (Printf.sprintf "%s_sum%s %s\n" m.name (prom_labels m.labels) (num (Hdr.sum h)));
        Buffer.add_string b
          (Printf.sprintf "%s_count%s %d\n" m.name (prom_labels m.labels) (Hdr.count h)))
    (Registry.metrics reg);
  Buffer.contents b

(* --- CSV ---------------------------------------------------------------- *)

let csv_labels labels = String.concat ";" (List.map (fun (k, v) -> k ^ "=" ^ v) labels)

let csv reg =
  let b = Buffer.create 4096 in
  Buffer.add_string b "metric,labels,kind,field,value\n";
  let row name labels kind field value =
    Buffer.add_string b
      (Printf.sprintf "%s,%s,%s,%s,%s\n" name (csv_labels labels) kind field value)
  in
  List.iter
    (fun (m : Registry.metric) ->
      match m.kind with
      | Registry.Counter c ->
        row m.name m.labels "counter" "value" (string_of_int (Registry.Counter.value c))
      | Registry.Gauge g ->
        row m.name m.labels "gauge" "value" (string_of_int (Registry.Gauge.value g))
      | Registry.Histogram h ->
        row m.name m.labels "histogram" "count" (string_of_int (Hdr.count h));
        row m.name m.labels "histogram" "sum" (num (Hdr.sum h));
        (match Hdr.min_value h with
        | Some v -> row m.name m.labels "histogram" "min" (string_of_int v)
        | None -> ());
        (match Hdr.max_value h with
        | Some v -> row m.name m.labels "histogram" "max" (string_of_int v)
        | None -> ());
        List.iter
          (fun (q, qs) ->
            match Hdr.quantile h q with
            | Some v -> row m.name m.labels "histogram" ("p" ^ qs) (string_of_int v)
            | None -> ())
          quantiles)
    (Registry.metrics reg);
  Buffer.contents b

let series_csv sampler =
  let b = Buffer.create 4096 in
  Buffer.add_string b "metric,labels,epoch,t_ns,value\n";
  List.iter
    (fun ((m : Registry.metric), epochs) ->
      List.iter
        (fun (eid, pts) ->
          Array.iter
            (fun (ts, v) ->
              Buffer.add_string b
                (Printf.sprintf "%s,%s,%d,%d,%s\n" m.name (csv_labels m.labels) eid ts (num v)))
            pts)
        epochs)
    (Sampler.series sampler);
  Buffer.contents b

(* --- JSON --------------------------------------------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_labels labels =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)) labels)
  ^ "}"

let json ?sampler reg =
  let b = Buffer.create 8192 in
  Buffer.add_string b "{\"schema\":\"mu-telemetry/1\",\"metrics\":[";
  let first = ref true in
  List.iter
    (fun (m : Registry.metric) ->
      if not !first then Buffer.add_char b ',';
      first := false;
      Buffer.add_string b
        (Printf.sprintf "{\"name\":\"%s\",\"labels\":%s," (json_escape m.name)
           (json_labels m.labels));
      (match m.kind with
      | Registry.Counter c ->
        Buffer.add_string b
          (Printf.sprintf "\"kind\":\"counter\",\"value\":%d" (Registry.Counter.value c))
      | Registry.Gauge g ->
        Buffer.add_string b
          (Printf.sprintf "\"kind\":\"gauge\",\"value\":%d" (Registry.Gauge.value g))
      | Registry.Histogram h ->
        Buffer.add_string b
          (Printf.sprintf "\"kind\":\"histogram\",\"count\":%d,\"sum\":%s" (Hdr.count h)
             (num (Hdr.sum h)));
        (match Hdr.min_value h, Hdr.max_value h with
        | Some lo, Some hi -> Buffer.add_string b (Printf.sprintf ",\"min\":%d,\"max\":%d" lo hi)
        | _ -> ());
        Buffer.add_string b ",\"quantiles\":{";
        let qfirst = ref true in
        List.iter
          (fun (q, qs) ->
            match Hdr.quantile h q with
            | Some v ->
              if not !qfirst then Buffer.add_char b ',';
              qfirst := false;
              Buffer.add_string b (Printf.sprintf "\"%s\":%d" qs v)
            | None -> ())
          quantiles;
        Buffer.add_string b "},\"buckets\":[";
        let bfirst = ref true in
        Hdr.iter_buckets h (fun ~lo ~hi ~count ->
            if not !bfirst then Buffer.add_char b ',';
            bfirst := false;
            Buffer.add_string b (Printf.sprintf "[%d,%d,%d]" lo hi count));
        Buffer.add_char b ']');
      Buffer.add_char b '}')
    (Registry.metrics reg);
  Buffer.add_string b "],\"series\":[";
  (match sampler with
  | None -> ()
  | Some s ->
    let sfirst = ref true in
    List.iter
      (fun ((m : Registry.metric), epochs) ->
        if not !sfirst then Buffer.add_char b ',';
        sfirst := false;
        Buffer.add_string b
          (Printf.sprintf "{\"name\":\"%s\",\"labels\":%s,\"epochs\":[" (json_escape m.name)
             (json_labels m.labels));
        let efirst = ref true in
        List.iter
          (fun (eid, pts) ->
            if not !efirst then Buffer.add_char b ',';
            efirst := false;
            Buffer.add_string b (Printf.sprintf "{\"epoch\":%d,\"points\":[" eid);
            Array.iteri
              (fun i (ts, v) ->
                if i > 0 then Buffer.add_char b ',';
                Buffer.add_string b (Printf.sprintf "[%d,%s]" ts (num v)))
              pts;
            Buffer.add_string b "]}")
          epochs;
        Buffer.add_string b "]}")
      (Sampler.series s));
  Buffer.add_string b "]}";
  Buffer.contents b

(* --- files --------------------------------------------------------------- *)

let write_string path s =
  let oc = open_out path in
  output_string oc s;
  close_out oc

(* Format chosen by extension: .json (metrics + series), .csv (metrics;
   series land next to it in <base>_series.csv), .prom / .txt
   (Prometheus text, no series). Anything else gets JSON. *)
let to_file ?sampler reg path =
  match String.lowercase_ascii (Filename.extension path) with
  | ".csv" ->
    write_string path (csv reg);
    (match sampler with
    | Some s -> write_string (Filename.remove_extension path ^ "_series.csv") (series_csv s)
    | None -> ())
  | ".prom" | ".txt" -> write_string path (prometheus reg)
  | _ -> write_string path (json ?sampler reg)
