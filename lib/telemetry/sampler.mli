(** Virtual-time metric sampler.

    Snapshots every metric of a {!Registry.t} into per-metric
    time-series. The sampler has no clock of its own: a driver fiber
    calls {!tick} with the engine's virtual [now] every [interval]
    virtual nanoseconds, so sampling never perturbs the simulated
    microsecond path (it runs between events, in zero virtual time).

    Counters and gauges sample their current value; histograms sample
    their cumulative count (distributions are exported once at the end
    via {!Export}, not per-sample).

    {b Epochs.} Experiment harnesses build a fresh engine per
    experiment, restarting virtual time from 0. Call {!start_epoch}
    when (re)attaching the sampler to a new engine; every sample is
    tagged with the epoch id so timelines from successive experiments
    do not interleave.

    {b Bounded memory.} Each (series, epoch) stores at most
    [max_points_per_epoch] samples: on overflow it drops every other
    stored point and doubles its sampling stride. The decimation
    depends only on the tick sequence, keeping equal-seed exports
    byte-identical. *)

type t

val create : ?max_points_per_epoch:int -> Registry.t -> interval:int -> t
(** [interval] is in virtual nanoseconds (it is advisory — the driver
    enforces the cadence). Default [max_points_per_epoch] is 65536. *)

val registry : t -> Registry.t
val interval : t -> int

val start_epoch : t -> unit
val current_epoch : t -> int
(** -1 before the first {!start_epoch}. *)

val tick : t -> now:int -> unit
(** Sample every registered metric at virtual time [now]. Raises
    [Invalid_argument] before the first {!start_epoch}. *)

type subscriber = now:int -> epoch:int -> (Registry.metric * float) list -> unit

val subscribe : t -> subscriber -> unit
(** Called at the end of every {!tick} with the same (metric, value)
    snapshot the sampler just stored — one registry scan serves both
    the series store and every subscriber. Subscribers run in
    registration order, in zero virtual time; online evaluators (the
    monitor library) hook in here instead of re-reading the registry
    on their own cadence. *)

val set_profile : t -> ((unit -> unit) -> unit) -> unit
(** Install a self-cost wrapper: every subsequent {!tick} body runs
    inside it, so a profiler can attribute the tick's wall-clock and
    allocation to the telemetry layer. The wrapper must call its
    argument exactly once. When unset (the default), {!tick} pays one
    extra bool check. *)

val clear_profile : t -> unit

val series : t -> (Registry.metric * (int * (int * float) array) list) list
(** All series, sorted by (name, labels); per series the epochs in
    ascending epoch order, each with its (virtual ts, value) samples in
    recording order. *)
