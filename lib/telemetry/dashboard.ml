(* Text dashboard: percentile tables, fail-over phase breakdown, and an
   ASCII score timeline showing follower pull-scores crossing the
   fail (<2) and recover (>6) thresholds during fail-over. *)

let default_fail = 2
let default_recover = 6

let ns_to_us v = float_of_int v /. 1_000.0

let label_string labels =
  if labels = [] then "-"
  else String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) labels)

let histograms ?prefix reg =
  List.filter_map
    (fun (m : Registry.metric) ->
      match m.kind with
      | Registry.Histogram h ->
        let keep =
          match prefix with
          | None -> true
          | Some p ->
            String.length m.name >= String.length p
            && String.sub m.name 0 (String.length p) = p
        in
        if keep && Hdr.count h > 0 then Some (m, h) else None
      | _ -> None)
    (Registry.metrics reg)

let is_ns (m : Registry.metric) =
  let n = m.name in
  String.length n > 3 && String.sub n (String.length n - 3) 3 = "_ns"

let percentile_table ?prefix reg =
  let hs = histograms ?prefix reg in
  if hs = [] then ""
  else begin
    let b = Buffer.create 1024 in
    let cell h q =
      match Hdr.quantile h q with Some v -> Printf.sprintf "%10.2f" (ns_to_us v) | None -> "         -"
    in
    Buffer.add_string b
      (Printf.sprintf "%-34s %-22s %8s %10s %10s %10s %10s\n" "histogram (us)" "labels" "count"
         "p50" "p90" "p99" "p99.9");
    List.iter
      (fun ((m : Registry.metric), h) ->
        if is_ns m then
          Buffer.add_string b
            (Printf.sprintf "%-34s %-22s %8d %s %s %s %s\n" m.name (label_string m.labels)
               (Hdr.count h) (cell h 0.5) (cell h 0.9) (cell h 0.99) (cell h 0.999)))
      hs;
    Buffer.contents b
  end

let failover_breakdown reg =
  let phases =
    [ ("failover_total_ns", "total"); ("failover_detection_ns", "detection");
      ("failover_switch_ns", "perm_switch") ]
  in
  let get name =
    List.find_map
      (fun ((m : Registry.metric), h) -> if m.name = name then Some h else None)
      (histograms reg)
  in
  match get "failover_total_ns" with
  | None -> ""
  | Some total_h ->
    let total_med = match Hdr.quantile total_h 0.5 with Some v -> v | None -> 0 in
    let b = Buffer.create 512 in
    Buffer.add_string b
      (Printf.sprintf "%-14s %8s %12s %12s %8s\n" "phase" "rounds" "median(us)" "p99(us)" "share");
    List.iter
      (fun (name, label) ->
        match get name with
        | None -> ()
        | Some h ->
          let med = match Hdr.quantile h 0.5 with Some v -> v | None -> 0 in
          let p99 = match Hdr.quantile h 0.99 with Some v -> v | None -> 0 in
          let share =
            if total_med > 0 then
              Printf.sprintf "%6.1f%%" (100.0 *. float_of_int med /. float_of_int total_med)
            else "      -"
          in
          Buffer.add_string b
            (Printf.sprintf "%-14s %8d %12.2f %12.2f %8s\n" label (Hdr.count h) (ns_to_us med)
               (ns_to_us p99) share))
      phases;
    Buffer.contents b

(* --- crash recovery ------------------------------------------------------ *)

(* Rejoin/degradation instruments in one table, keyed by replica label:
   restart-to-parity latency, entries pulled during catch-up, requests
   shed by the queue bound, and quorum-lost window time. Counters don't
   appear in the percentile table, so they get their own section. *)
let recovery_summary reg =
  let counter_value name labels =
    List.find_map
      (fun (m : Registry.metric) ->
        match m.kind with
        | Registry.Counter c when m.name = name && m.labels = labels ->
          Some (Registry.Counter.value c)
        | _ -> None)
      (Registry.metrics reg)
  in
  let rows =
    List.filter_map
      (fun ((m : Registry.metric), h) ->
        if m.name = "mu_rejoin_time_to_parity_ns" then Some (m.labels, h) else None)
      (histograms reg)
  in
  let shed_total =
    List.fold_left
      (fun acc (m : Registry.metric) ->
        match m.kind with
        | Registry.Counter c when m.name = "mu_shed_requests_total" ->
          acc + Registry.Counter.value c
        | _ -> acc)
      0 (Registry.metrics reg)
  in
  let degraded =
    List.filter_map
      (fun ((m : Registry.metric), h) ->
        if m.name = "mu_degraded_ns" then Some h else None)
      (histograms reg)
  in
  if rows = [] && shed_total = 0 && degraded = [] then ""
  else begin
    let b = Buffer.create 512 in
    if rows <> [] then begin
      Buffer.add_string b
        (Printf.sprintf "%-22s %8s %16s %12s\n" "rejoin" "count" "parity p50(us)"
           "entries");
      List.iter
        (fun (labels, h) ->
          let p50 = match Hdr.quantile h 0.5 with Some v -> ns_to_us v | None -> 0. in
          let entries =
            match counter_value "mu_catch_up_entries_total" labels with
            | Some v -> string_of_int v
            | None -> "-"
          in
          Buffer.add_string b
            (Printf.sprintf "%-22s %8d %16.2f %12s\n" (label_string labels)
               (Hdr.count h) p50 entries))
        rows
    end;
    List.iter
      (fun h ->
        let total =
          (* Sum via count * mean is unavailable; report count and p50. *)
          match Hdr.quantile h 0.5 with Some v -> ns_to_us v | None -> 0.
        in
        Buffer.add_string b
          (Printf.sprintf "degraded windows: %d (median %.2f us)\n" (Hdr.count h) total))
      degraded;
    if shed_total > 0 then
      Buffer.add_string b (Printf.sprintf "shed requests: %d\n" shed_total);
    Buffer.contents b
  end

(* --- serving tier -------------------------------------------------------- *)

(* Per-shard serving instruments in one table — queue depth and in-flight
   gauges (their value at the last update), shed/committed/retried
   counters, tier latency percentiles — plus the leaders' batch-occupancy
   histogram (requests coalesced per committed log entry) merged across
   replicas and drawn as an ASCII bar chart. *)
let serving_summary reg =
  let metrics = Registry.metrics reg in
  let shard_of (m : Registry.metric) = List.assoc_opt "shard" m.labels in
  let counter name shard =
    List.find_map
      (fun (m : Registry.metric) ->
        match m.kind with
        | Registry.Counter c when m.name = name && shard_of m = Some shard ->
          Some (Registry.Counter.value c)
        | _ -> None)
      metrics
  in
  let gauge name shard =
    List.find_map
      (fun (m : Registry.metric) ->
        match m.kind with
        | Registry.Gauge g when m.name = name && shard_of m = Some shard ->
          Some (Registry.Gauge.value g)
        | _ -> None)
      metrics
  in
  let hist name shard =
    List.find_map
      (fun (m : Registry.metric) ->
        match m.kind with
        | Registry.Histogram h when m.name = name && shard_of m = Some shard -> Some h
        | _ -> None)
      metrics
  in
  let shards =
    List.filter_map
      (fun (m : Registry.metric) ->
        if m.name = "serving_committed_total" then shard_of m else None)
      metrics
  in
  let occupancy =
    List.filter_map
      (fun (m : Registry.metric) ->
        match m.kind with
        | Registry.Histogram h when m.name = "mu_batch_occupancy" && Hdr.count h > 0 ->
          Some h
        | _ -> None)
      metrics
  in
  if shards = [] && occupancy = [] then ""
  else begin
    let b = Buffer.create 1024 in
    if shards <> [] then begin
      Buffer.add_string b
        (Printf.sprintf "%-6s %6s %9s %9s %7s %8s %10s %10s\n" "shard" "queue" "inflight"
           "committed" "shed" "retried" "p50(us)" "p99(us)");
      List.iter
        (fun shard ->
          let num name = match counter name shard with Some v -> v | None -> 0 in
          let gv name = match gauge name shard with Some v -> v | None -> 0 in
          let pct q =
            match hist "serving_latency_ns" shard with
            | Some h -> (
              match Hdr.quantile h q with
              | Some v -> Printf.sprintf "%10.2f" (ns_to_us v)
              | None -> "         -")
            | None -> "         -"
          in
          Buffer.add_string b
            (Printf.sprintf "%-6s %6d %9d %9d %7d %8d %s %s\n" shard
               (gv "serving_queue_depth") (gv "serving_inflight")
               (num "serving_committed_total") (num "serving_shed_total")
               (num "serving_retried_total") (pct 0.5) (pct 0.99)))
        shards
    end;
    (match occupancy with
    | [] -> ()
    | first :: rest ->
      let merged = Hdr.create ~precision:(Hdr.precision first) () in
      List.iter (fun h -> Hdr.merge ~into:merged h) (first :: rest);
      let bks = Hdr.buckets merged in
      let widest = List.fold_left (fun acc (_, _, c) -> max acc c) 1 bks in
      Buffer.add_string b "batch occupancy (requests per committed entry):\n";
      List.iter
        (fun (lo, hi, count) ->
          let bar = String.make (max 1 (count * 32 / widest)) '#' in
          let label = if lo = hi then string_of_int lo else Printf.sprintf "%d-%d" lo hi in
          Buffer.add_string b (Printf.sprintf "  %-8s %8d |%s\n" label count bar))
        bks);
    Buffer.contents b
  end

(* --- score timeline ------------------------------------------------------ *)

(* One row per (replica, peer, epoch) score series that actually moved.
   Points are downsampled to [width] columns taking the minimum in each
   window (the interesting excursion is downward), rendered as one hex
   digit per column (scores are 0..15). *)

let score_series sampler =
  List.filter_map
    (fun ((m : Registry.metric), epochs) ->
      if m.name = "mu_score" then Some (m, epochs) else None)
    (Sampler.series sampler)

let moved fail recover pts =
  Array.exists (fun (_, v) -> v < float_of_int fail) pts
  && Array.exists (fun (_, v) -> v > float_of_int recover) pts

let downsample width pts =
  let n = Array.length pts in
  if n = 0 then [||]
  else if n <= width then Array.copy pts
  else
    Array.init width (fun c ->
        let lo = c * n / width and hi = ((c + 1) * n / width) - 1 in
        let hi = max lo hi in
        let best = ref pts.(lo) in
        for i = lo + 1 to hi do
          if snd pts.(i) < snd !best then best := pts.(i)
        done;
        !best)

let glyph v =
  let i = max 0 (min 15 (int_of_float (Float.round v))) in
  "0123456789abcdef".[i]

let first_crossing ~below pts threshold =
  let t = float_of_int threshold in
  let r = ref None in
  Array.iter
    (fun (ts, v) ->
      if !r = None && (if below then v < t else v > t) then r := Some ts)
    pts;
  !r

let fail_recover_pair ~fail ~recover pts =
  match first_crossing ~below:true pts fail with
  | None -> None
  | Some t_fail ->
    let after = Array.of_seq (Seq.filter (fun (ts, _) -> ts >= t_fail) (Array.to_seq pts)) in
    (match first_crossing ~below:false after recover with
    | None -> None
    | Some t_rec -> Some (t_fail, t_rec))

let has_fail_recover_crossing ?(fail = default_fail) ?(recover = default_recover) sampler =
  List.exists
    (fun (_, epochs) ->
      List.exists (fun (_, pts) -> fail_recover_pair ~fail ~recover pts <> None) epochs)
    (score_series sampler)

let score_timeline ?(width = 64) ?(fail = default_fail) ?(recover = default_recover) sampler =
  let rows =
    List.concat_map
      (fun ((m : Registry.metric), epochs) ->
        List.filter_map
          (fun (eid, pts) ->
            if moved fail recover pts then Some (m, eid, pts) else None)
          epochs)
      (score_series sampler)
  in
  if rows = [] then ""
  else begin
    let b = Buffer.create 2048 in
    Buffer.add_string b
      (Printf.sprintf "score timeline (hex 0-f per column; fail <%d, recover >%d)\n" fail recover);
    List.iter
      (fun ((m : Registry.metric), eid, pts) ->
        let ds = downsample width pts in
        let line = String.init (Array.length ds) (fun i -> glyph (snd ds.(i))) in
        let annot =
          match fail_recover_pair ~fail ~recover pts with
          | Some (t_fail, t_rec) ->
            Printf.sprintf "  fail@%.1fus recover@%.1fus" (ns_to_us t_fail) (ns_to_us t_rec)
          | None -> ""
        in
        Buffer.add_string b
          (Printf.sprintf "  %-22s e%-3d |%s|%s\n" (label_string m.labels) eid line annot))
      rows;
    Buffer.contents b
  end

let render ?sampler reg =
  let b = Buffer.create 4096 in
  let section title body =
    if body <> "" then begin
      Buffer.add_string b ("== " ^ title ^ " ==\n");
      Buffer.add_string b body;
      Buffer.add_char b '\n'
    end
  in
  section "latency percentiles" (percentile_table reg);
  section "fail-over breakdown" (failover_breakdown reg);
  section "crash recovery" (recovery_summary reg);
  section "serving tier" (serving_summary reg);
  (match sampler with
  | Some s -> section "failure-detector scores" (score_timeline s)
  | None -> ());
  if Buffer.length b = 0 then "(no telemetry recorded)\n" else Buffer.contents b
