(* Key -> shard routing plus per-shard serving counters. The hash is
   Mu.Sharded.key_hash, so the router agrees with the shard mapping of
   the cluster it fronts by construction. *)

type shard_stats = {
  mutable submitted : int;
  mutable committed : int;
  mutable shed : int;
  mutable retried : int;
  mutable inflight : int;
  mutable max_inflight : int;
  latency : Sim.Stats.Samples.t;
}

type t = { shards : int; stats : shard_stats array }

let create ~shards =
  if shards < 1 then invalid_arg "Router.create: need at least one shard";
  {
    shards;
    stats =
      Array.init shards (fun _ ->
          {
            submitted = 0;
            committed = 0;
            shed = 0;
            retried = 0;
            inflight = 0;
            max_inflight = 0;
            latency = Sim.Stats.Samples.create ();
          });
  }

let shards t = t.shards
let route t key = Mu.Sharded.key_hash key mod t.shards
let stats t i = t.stats.(i)
