(* The serving tier: an open-loop population drives a Mu.Sharded cluster
   through a router, with per-shard admission control. One generator
   fiber paces arrivals; each admitted request gets a short-lived fiber
   that submits, retries shed replies with back-off, and records
   latency. Shedding happens at two points: tier admission (per-shard
   in-flight bound, Recovery.Backpressure) and, under it, the leader's
   own queue bound when configured. *)

type shard_report = {
  shard : int;
  submitted : int;
  committed : int;
  shed : int;
  retried : int;
  max_inflight : int;
  p50_ns : int;
  p99_ns : int;
}

type report = {
  offered : int;
  completed : int;
  shed : int;
  retried : int;
  suppressed : int;
  duration_ns : int;
  offered_per_us : float;
  committed_per_us : float;
  p50_ns : int;
  p99_ns : int;
  per_shard : shard_report list;
}

(* Pre-resolved per-shard instruments, created only when the engine has
   a registry attached — telemetry-off runs never touch the registry. *)
type handles = {
  queue_g : Telemetry.Registry.gauge array;
  inflight_g : Telemetry.Registry.gauge array;
  shed_c : Telemetry.Registry.counter array;
  committed_c : Telemetry.Registry.counter array;
  retried_c : Telemetry.Registry.counter array;
  lat_h : Telemetry.Hdr.t array;
}

let handles_of reg ~shards =
  let mk f = Array.init shards (fun i -> f [ ("shard", string_of_int i) ]) in
  {
    queue_g =
      mk (fun labels ->
          Telemetry.Registry.gauge reg ~help:"Leader incoming-queue depth of a shard"
            ~labels "serving_queue_depth");
    inflight_g =
      mk (fun labels ->
          Telemetry.Registry.gauge reg ~help:"Tier-level in-flight requests on a shard"
            ~labels "serving_inflight");
    shed_c =
      mk (fun labels ->
          Telemetry.Registry.counter reg
            ~help:"Requests shed by tier admission or abandoned after shed-retry" ~labels
            "serving_shed_total");
    committed_c =
      mk (fun labels ->
          Telemetry.Registry.counter reg ~help:"Requests completed with a response"
            ~labels "serving_committed_total");
    retried_c =
      mk (fun labels ->
          Telemetry.Registry.counter reg ~help:"Back-off retries after a shed reply"
            ~labels "serving_retried_total");
    lat_h =
      mk (fun labels ->
          Telemetry.Registry.histogram reg ~help:"Tier-observed completion latency"
            ~labels "serving_latency_ns");
  }

let run e cal cfg ~shards ~population ~duration ?(admit_limit = 128) () =
  if duration <= 0 then invalid_arg "Tier.run: duration must be positive";
  let s =
    Mu.Sharded.create e cal cfg ~shards ~make_app:(fun ~shard:_ ~replica:_ ->
        Mu.Smr.stateless_app (fun b -> b))
  in
  Mu.Sharded.start s;
  Mu.Sharded.wait_live s;
  let router = Router.create ~shards in
  let bp = Array.init shards (fun _ -> Recovery.Backpressure.create ~limit:admit_limit) in
  let tel = Option.map (fun reg -> handles_of reg ~shards) (Sim.Engine.metrics e) in
  let lat = Sim.Stats.Samples.create () in
  let t_start = Sim.Engine.now e in
  let t_end = t_start + duration in
  let open_reqs = ref 0 in
  let draining = ref false in
  (match tel with
  | Some h ->
    Sim.Engine.spawn e ~name:"serving-sampler" (fun () ->
        while (not !draining) || !open_reqs > 0 do
          for i = 0 to shards - 1 do
            Telemetry.Registry.Gauge.set h.queue_g.(i) (Mu.Sharded.queue_depth s i);
            Telemetry.Registry.Gauge.set h.inflight_g.(i) (Router.stats router i).Router.inflight
          done;
          Sim.Engine.sleep e 50_000
        done)
  | None -> ());
  let issue (a : Population.arrival) =
    let shard = Router.route router a.Population.key in
    let st = Router.stats router shard in
    if not (Recovery.Backpressure.admit bp.(shard) ~depth:st.Router.inflight) then begin
      st.Router.shed <- st.Router.shed + 1;
      match tel with
      | Some h -> Telemetry.Registry.Counter.inc h.shed_c.(shard)
      | None -> ()
    end
    else begin
      st.Router.inflight <- st.Router.inflight + 1;
      if st.Router.inflight > st.Router.max_inflight then
        st.Router.max_inflight <- st.Router.inflight;
      st.Router.submitted <- st.Router.submitted + 1;
      incr open_reqs;
      let body =
        Bytes.of_string (Printf.sprintf "c%d:%s" a.Population.client a.Population.key)
      in
      Sim.Engine.spawn e ~name:"serving-req" (fun () ->
          let started = Sim.Engine.now e in
          let rec attempt tries =
            let reply =
              Sim.Engine.Ivar.read (Mu.Sharded.submit_async s ~key:a.Population.key body)
            in
            if Mu.Smr.is_retryable reply && tries > 0 then begin
              st.Router.retried <- st.Router.retried + 1;
              (match tel with
              | Some h -> Telemetry.Registry.Counter.inc h.retried_c.(shard)
              | None -> ());
              Sim.Engine.sleep e 200_000;
              attempt (tries - 1)
            end
            else reply
          in
          let reply = attempt 3 in
          st.Router.inflight <- st.Router.inflight - 1;
          decr open_reqs;
          if Mu.Smr.is_retryable reply then begin
            st.Router.shed <- st.Router.shed + 1;
            match tel with
            | Some h -> Telemetry.Registry.Counter.inc h.shed_c.(shard)
            | None -> ()
          end
          else begin
            st.Router.committed <- st.Router.committed + 1;
            let d = Sim.Engine.now e - started in
            Sim.Stats.Samples.add st.Router.latency d;
            Sim.Stats.Samples.add lat d;
            match tel with
            | Some h ->
              Telemetry.Registry.Counter.inc h.committed_c.(shard);
              Telemetry.Hdr.record h.lat_h.(shard) d
            | None -> ()
          end)
    end
  in
  let rec generate () =
    let now = Sim.Engine.now e in
    if now < t_end then begin
      let a = Population.next population ~now in
      Sim.Engine.sleep e a.Population.gap_ns;
      if Sim.Engine.now e < t_end then issue a;
      generate ()
    end
  in
  generate ();
  draining := true;
  (* Bounded drain: give the in-flight tail a grace window, then stop.
     Requests still open past it (e.g. parked behind a lost quorum)
     count as neither committed nor shed. *)
  let grace_end = Sim.Engine.now e + 20_000_000 in
  while !open_reqs > 0 && Sim.Engine.now e < grace_end do
    Sim.Engine.sleep e 100_000
  done;
  Mu.Sharded.stop s;
  let pct samples q =
    match Sim.Stats.Samples.percentile_opt samples q with Some v -> v | None -> 0
  in
  let per_shard =
    List.init shards (fun i ->
        let st = Router.stats router i in
        {
          shard = i;
          submitted = st.Router.submitted;
          committed = st.Router.committed;
          shed = st.Router.shed;
          retried = st.Router.retried;
          max_inflight = st.Router.max_inflight;
          p50_ns = pct st.Router.latency 50.;
          p99_ns = pct st.Router.latency 99.;
        })
  in
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 per_shard in
  let offered = Population.arrivals population in
  let completed = sum (fun r -> r.committed) in
  let per_us count = float_of_int count *. 1000.0 /. float_of_int duration in
  {
    offered;
    completed;
    shed = sum (fun r -> r.shed);
    retried = sum (fun r -> r.retried);
    suppressed = Population.suppressed population;
    duration_ns = duration;
    offered_per_us = per_us offered;
    committed_per_us = per_us completed;
    p50_ns = pct lat 50.;
    p99_ns = pct lat 99.;
    per_shard;
  }
