(** Shard router: key→shard mapping plus per-shard serving counters.

    Routing uses {!Mu.Sharded.key_hash}, so a router created with the
    same shard count as a {!Mu.Sharded.t} agrees with its
    [shard_of_key] by construction. *)

type shard_stats = {
  mutable submitted : int;  (** Requests admitted and sent to the shard. *)
  mutable committed : int;  (** Requests that got an application response. *)
  mutable shed : int;
      (** Admission refusals plus requests that exhausted their retries
          on a shed reply. *)
  mutable retried : int;  (** Back-off retries after a shed reply. *)
  mutable inflight : int;  (** Currently outstanding requests. *)
  mutable max_inflight : int;
  latency : Sim.Stats.Samples.t;  (** Completion latency, ns. *)
}

type t

val create : shards:int -> t
val shards : t -> int

val route : t -> string -> int
(** [Mu.Sharded.key_hash key mod shards]. *)

val stats : t -> int -> shard_stats
