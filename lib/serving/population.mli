(** Open-loop client populations for the serving tier.

    A population models [clients] independent clients — hundreds of
    thousands to millions — without a fiber per client: arrivals are
    drawn from the aggregate arrival process (rate [clients/think_ns],
    optionally diurnally modulated), keys follow a Zipf distribution,
    and a busy-until table enforces per-client think times. All
    randomness comes from the [Sim.Rng.t] passed at creation — never
    from an engine stream — so constructing a population cannot perturb
    a serving-off run, and same-seed serving runs are deterministic. *)

type process =
  | Poisson  (** Constant-rate arrivals. *)
  | Diurnal of { period_ns : int; amplitude : float }
      (** Rate modulated by [1 + amplitude·sin(2π·t/period)], floored at
          5% of base ({!Workload.Generators.diurnal_rate}). *)

type t

type arrival = {
  gap_ns : int;  (** Inter-arrival gap from the time of the draw. *)
  client : int;  (** Modeled client id in [0, clients). *)
  key : string;  (** Zipf-distributed key, [key-%08d]. *)
}

val create :
  ?process:process ->
  ?theta:float ->
  ?keys:int ->
  clients:int ->
  think_ns:int ->
  Sim.Rng.t ->
  t
(** [theta] defaults to 0.99 (YCSB), [keys] to 100_000, [process] to
    {!Poisson}. Raises [Invalid_argument] on non-positive sizes. *)

val rate : t -> now:int -> float
(** Aggregate offered rate (arrivals per ns) at virtual time [now]. *)

val next : t -> now:int -> arrival
(** Draw the next arrival at virtual time [now]. *)

val clients : t -> int
val arrivals : t -> int
(** Arrivals drawn so far. *)

val suppressed : t -> int
(** Client picks redrawn because the picked client was still thinking —
    a measure of how saturated the population is. *)
