(* The shard-count × batch-size throughput/latency surface: Fig. 7
   extended along the §8 sharding axis. Each point is one fresh
   simulation (Workload.Experiments.run_sim, so tracing/telemetry
   compose) of the serving tier under a saturating open-loop
   population; batch sizes > 1 additionally engage the leader's
   doorbell so slot writes coalesce on the wire. *)

type point = {
  shards : int;
  batch : int;
  doorbell : int;
  offered_per_us : float;
  committed_per_us : float;
  shed : int;
  suppressed : int;
  p50_ns : int;
  p99_ns : int;
}

let config ~batch ~doorbell =
  {
    Mu.Config.default with
    Mu.Config.max_batch = batch;
    max_outstanding = 4;
    doorbell;
    log_slots = 8192;
    recycle_slack = 128;
    recycle_interval = 200_000;
    value_cap = max 1024 ((batch * 96) + 64);
  }

let run_point setup ~shards ~batch ?doorbell ~clients ~think_ns ~duration () =
  let doorbell =
    match doorbell with Some d -> d | None -> if batch > 1 then 4 else 1
  in
  Workload.Experiments.run_sim setup ~until:((duration * 50) + 1_000_000_000)
    (fun e ->
      let rng = Sim.Rng.split (Sim.Engine.rng e) in
      let population = Population.create ~clients ~think_ns rng in
      Tier.run e setup.Workload.Experiments.cal (config ~batch ~doorbell) ~shards
        ~population ~duration ())

let point_of ~shards ~batch ~doorbell (r : Tier.report) =
  {
    shards;
    batch;
    doorbell;
    offered_per_us = r.Tier.offered_per_us;
    committed_per_us = r.Tier.committed_per_us;
    shed = r.Tier.shed;
    suppressed = r.Tier.suppressed;
    p50_ns = r.Tier.p50_ns;
    p99_ns = r.Tier.p99_ns;
  }

let sweep setup ~shard_counts ~batches ~clients ~think_ns ~duration =
  List.concat_map
    (fun shards ->
      List.map
        (fun batch ->
          let doorbell = if batch > 1 then 4 else 1 in
          let rep =
            run_point setup ~shards ~batch ~doorbell ~clients ~think_ns ~duration ()
          in
          point_of ~shards ~batch ~doorbell rep)
        batches)
    shard_counts
