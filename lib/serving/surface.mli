(** Shard-count × batch-size throughput/latency surface.

    Extends the paper's Fig. 7 (batching/pipelining throughput) along
    the §8 parallel-instances axis: every (shards, batch) cell runs the
    serving tier under the same saturating open-loop population and
    reports offered vs committed req/µs plus tail latency. Batch sizes
    above 1 engage the leader doorbell ({!Mu.Config.t.doorbell}), so
    the surface measures the combined effect of coalescing on the wire
    and sharding across leaders. *)

type point = {
  shards : int;
  batch : int;
  doorbell : int;
  offered_per_us : float;
  committed_per_us : float;
  shed : int;
  suppressed : int;
  p50_ns : int;
  p99_ns : int;
}

val config : batch:int -> doorbell:int -> Mu.Config.t
(** The per-point cluster config: pipelined (4 outstanding), fast
    recycling, [value_cap] sized to the batch. *)

val run_point :
  Workload.Experiments.setup ->
  shards:int ->
  batch:int ->
  ?doorbell:int ->
  clients:int ->
  think_ns:int ->
  duration:int ->
  unit ->
  Tier.report
(** One fresh simulation of one cell. [doorbell] defaults to 4 when
    [batch > 1], else 1. *)

val sweep :
  Workload.Experiments.setup ->
  shard_counts:int list ->
  batches:int list ->
  clients:int ->
  think_ns:int ->
  duration:int ->
  point list
(** The full matrix, row-major in [shard_counts]. Deterministic per
    setup seed. *)
