(** Chaos for the sharded tier: {!Mu.Sharded} under injected faults.

    A fresh [shards × n] cluster serves the KV application while
    per-shard closed-loop clients record real-time histories; the
    scenario's faults land on shard 0's replicas. Checks:

    - {e per-shard linearizability} — each shard's history must
      linearize on its own (shards order only their own key space);
    - {e cross-shard isolation} — values are stamped with their shard,
      so a read observing another shard's stamp is a routing leak;
    - the Appendix A {e invariants} over every shard's replicas.

    Deterministic per [seed] + scenario, like {!Workload.Chaos}. *)

type outcome = {
  seed : int64;
  n : int;
  shards : int;
  scenario : Faults.Scenario.t;
  completed : bool;
  ops : int;
  per_shard_linearizable : bool;
  isolated : bool;
  violations : Mu.Invariants.violation list;
  rejoins : int;  (** Completed rejoin pipelines (faulted shard). *)
  shed : int;
}

val passed : outcome -> bool
(** Completed, per-shard linearizable, isolated, invariant-clean. *)

val pp_outcome : outcome Fmt.t

val run :
  ?clients_per_shard:int ->
  ?ops_per_client:int ->
  ?think:int ->
  ?horizon:int ->
  seed:int64 ->
  n:int ->
  shards:int ->
  Faults.Scenario.t ->
  outcome
(** One run. Defaults: 2 clients per shard, 20 ops each, 100 µs think
    time (stretching the history across the fault window), 2 s safety
    horizon. Replicas use durable state so [Restart] events can
    recover. Scenario host ids address shard 0's replicas. *)

val keys_for : shards:int -> shard:int -> count:int -> string array
(** [count] keys that provably route to [shard] under
    {!Mu.Sharded.key_hash} routing with [shards] shards. *)
