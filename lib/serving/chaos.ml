(* Sharded chaos: a Mu.Sharded cluster under an injected fault scenario,
   with per-shard KV clients collecting real-time histories. Faults land
   on shard 0's replicas (scenario host ids are that shard's replica
   ids); the checks are per-shard linearizability, cross-shard isolation
   (a shard's reads only ever observe values written to that shard), and
   the Appendix A invariants over every shard's replicas. *)

type outcome = {
  seed : int64;
  n : int;
  shards : int;
  scenario : Faults.Scenario.t;
  completed : bool;
  ops : int;
  per_shard_linearizable : bool;
  isolated : bool;
  violations : Mu.Invariants.violation list;
  rejoins : int;
  shed : int;
}

let passed o =
  o.completed && o.per_shard_linearizable && o.isolated && o.violations = []

let pp_outcome ppf o =
  Fmt.pf ppf "%-18s seed=%-8Ld n=%d shards=%d  %4d ops%s  %s"
    o.scenario.Faults.Scenario.name o.seed o.n o.shards o.ops
    (if o.rejoins > 0 then Fmt.str ", %d rejoin(s)" o.rejoins else "")
    (if passed o then "ok"
     else
       String.concat ", "
         ((if o.completed then [] else [ "stalled" ])
         @ (if o.per_shard_linearizable then [] else [ "NOT LINEARIZABLE" ])
         @ (if o.isolated then [] else [ "CROSS-SHARD LEAK" ])
         @
         match o.violations with
         | [] -> []
         | vs -> [ Printf.sprintf "%d invariant violation(s)" (List.length vs) ]))

(* Keys that provably route to [shard]: probe candidate strings through
   the same hash the cluster routes with. *)
let keys_for ~shards ~shard ~count =
  let acc = ref [] and i = ref 0 in
  while List.length !acc < count do
    let k = Printf.sprintf "s%d-k%d" shard !i in
    if Mu.Sharded.key_hash k mod shards = shard then acc := k :: !acc;
    incr i
  done;
  Array.of_list (List.rev !acc)

let client_fiber e s ~shard ~proc ~ops ~think ~keys ~history ~on_done =
  let rng = Sim.Rng.split (Sim.Engine.rng e) in
  for i = 1 to ops do
    if think > 0 && i > 1 then Sim.Engine.sleep e think;
    let key = keys.(Sim.Rng.int rng (Array.length keys)) in
    let cmd =
      if Sim.Rng.bool rng then
        (* Shard-stamped values make cross-shard leaks observable. *)
        Apps.Kv_store.Put { key; value = Printf.sprintf "s%d:c%d-%d" shard proc i }
      else Apps.Kv_store.Get { key }
    in
    let payload = Apps.Kv_store.encode_command ~client:proc ~req_id:i cmd in
    let invoked = Sim.Engine.now e in
    let rec attempt () =
      let reply = Mu.Sharded.submit s ~key payload in
      if Mu.Smr.is_retryable reply then begin
        Sim.Engine.sleep e 500_000;
        attempt ()
      end
      else reply
    in
    let reply = attempt () in
    let responded = Sim.Engine.now e in
    let kind =
      match (cmd, Apps.Kv_store.decode_reply reply) with
      | Apps.Kv_store.Put { value; _ }, _ -> Workload.Linearizability.Write value
      | Apps.Kv_store.Get _, Some (Apps.Kv_store.Value v) ->
        Workload.Linearizability.Read (Some v)
      | (Apps.Kv_store.Get _ | Apps.Kv_store.Delete _), _ ->
        Workload.Linearizability.Read None
    in
    history.(shard) <-
      { Workload.Linearizability.proc; invoked; responded; key; kind }
      :: history.(shard)
  done;
  on_done ()

let run ?(clients_per_shard = 2) ?(ops_per_client = 20) ?(think = 100_000)
    ?(horizon = 2_000_000_000) ~seed ~n ~shards scenario =
  if shards < 1 then invalid_arg "Serving.Chaos.run: shards must be >= 1";
  let e = Sim.Engine.create ~seed () in
  let cfg =
    {
      Mu.Config.default with
      Mu.Config.n;
      log_slots = 4096;
      recycle_interval = 1_000_000;
      durable_state = true;
    }
  in
  let s =
    Mu.Sharded.create e Sim.Calibration.default cfg ~shards
      ~make_app:(fun ~shard:_ ~replica:_ -> Apps.Kv_store.smr_app ())
  in
  Mu.Sharded.start s;
  (* Scenario host ids are shard 0's replica ids: the faulted shard must
     keep its per-shard guarantees while the others run undisturbed. *)
  let target () = Mu.Sharded.shard s 0 in
  Faults.Injector.install e
    ~hosts:(fun pid ->
      let smr = target () in
      if pid >= 0 && pid < Array.length (Mu.Smr.replicas smr) then
        Some (Mu.Smr.replica smr pid).Mu.Replica.host
      else None)
    ~restart:(fun pid -> Mu.Smr.restart_replica (target ()) ~id:pid)
    scenario;
  let history = Array.make shards [] in
  let remaining = ref (clients_per_shard * shards) in
  let completed = ref false in
  for shard = 0 to shards - 1 do
    let keys = keys_for ~shards ~shard ~count:3 in
    for c = 1 to clients_per_shard do
      let proc = (shard * 100) + c in
      Sim.Engine.spawn e
        ~name:(Printf.sprintf "serving-chaos-s%d-c%d" shard c)
        (fun () ->
          Mu.Sharded.wait_live s;
          client_fiber e s ~shard ~proc ~ops:ops_per_client ~think ~keys ~history
            ~on_done:(fun () ->
              decr remaining;
              if !remaining = 0 then begin
                (* Quiesce past the last scheduled restart so a late
                   rejoin pipeline can finish before the state checks. *)
                let restart_horizon =
                  List.fold_left
                    (fun a ev ->
                      match ev.Faults.Scenario.action with
                      | Faults.Scenario.Restart _ -> max a ev.Faults.Scenario.at
                      | _ -> a)
                    0 scenario.Faults.Scenario.events
                in
                if Sim.Engine.now e < restart_horizon + 1_000 then
                  Sim.Engine.sleep e (restart_horizon + 1_000 - Sim.Engine.now e);
                let budget = ref 100 in
                while Mu.Smr.restarts_in_flight (target ()) > 0 && !budget > 0 do
                  decr budget;
                  Sim.Engine.sleep e 1_000_000
                done;
                Sim.Engine.sleep e 5_000_000;
                completed := true;
                Mu.Sharded.stop s;
                Sim.Engine.halt e
              end))
    done
  done;
  Sim.Engine.run ~until:horizon e;
  let linearizable = ref true and isolated = ref true and ops = ref 0 in
  Array.iteri
    (fun shard h ->
      ops := !ops + List.length h;
      if not (Workload.Linearizability.check h) then linearizable := false;
      let stamp = Printf.sprintf "s%d:" shard in
      List.iter
        (fun (op : Workload.Linearizability.op) ->
          match op.Workload.Linearizability.kind with
          | Workload.Linearizability.Read (Some v) ->
            if not (String.length v >= String.length stamp
                    && String.sub v 0 (String.length stamp) = stamp)
            then isolated := false
          | Workload.Linearizability.Read None
          | Workload.Linearizability.Write _ | Workload.Linearizability.Erase -> ())
        h)
    history;
  let violations = ref [] in
  let rejoins = ref 0 in
  let shed = ref 0 in
  for i = 0 to shards - 1 do
    let smr = Mu.Sharded.shard s i in
    violations := !violations @ Mu.Invariants.check_all (Mu.Smr.replicas smr);
    rejoins := !rejoins + List.length (Mu.Smr.rejoins smr);
    shed := !shed + Mu.Smr.shed_requests smr
  done;
  {
    seed;
    n;
    shards;
    scenario;
    completed = !completed;
    ops = !ops;
    per_shard_linearizable = !linearizable;
    isolated = !isolated;
    violations = !violations;
    rejoins = !rejoins;
    shed = !shed;
  }
