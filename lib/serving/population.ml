(* Open-loop client population: hundreds of thousands to millions of
   modeled clients share one generator — arrivals are drawn from the
   aggregate process, and a small busy-until table models per-client
   seriality (a client thinking after its last request cannot be the
   source of the next arrival). No per-client fiber ever exists, so the
   population size is a model parameter, not a simulator cost. *)

type process = Poisson | Diurnal of { period_ns : int; amplitude : float }

type t = {
  clients : int;
  think_ns : int;
  keys : int;
  theta : float;
  process : process;
  rng : Sim.Rng.t;
  (* client id -> virtual time until which that client is thinking.
     Entries are dropped lazily as expired picks land on them. *)
  busy : (int, int) Hashtbl.t;
  mutable arrivals : int;
  mutable suppressed : int;
}

type arrival = { gap_ns : int; client : int; key : string }

let create ?(process = Poisson) ?(theta = 0.99) ?(keys = 100_000) ~clients ~think_ns rng
    =
  if clients < 1 then invalid_arg "Population.create: clients must be >= 1";
  if think_ns < 1 then invalid_arg "Population.create: think_ns must be >= 1";
  if keys < 1 then invalid_arg "Population.create: keys must be >= 1";
  {
    clients;
    think_ns;
    keys;
    theta;
    process;
    rng;
    busy = Hashtbl.create 4096;
    arrivals = 0;
    suppressed = 0;
  }

(* Aggregate offered rate in arrivals per ns: [clients / think_ns] for a
   Poisson population, modulated sinusoidally for a diurnal one. *)
let rate t ~now =
  let base = float_of_int t.clients /. float_of_int t.think_ns in
  match t.process with
  | Poisson -> base
  | Diurnal { period_ns; amplitude } ->
    Workload.Generators.diurnal_rate ~base ~amplitude ~period_ns ~now

let next t ~now =
  let gap_ns = Workload.Generators.poisson_gap t.rng ~rate:(rate t ~now) in
  let at = now + gap_ns in
  (* Bounded redraw: a pick that lands on a thinking client is counted
     as suppressed and redrawn a few times; a saturated population
     (everyone thinking) accepts the last pick rather than spinning. *)
  let rec pick tries =
    let c = Sim.Rng.int t.rng t.clients in
    match Hashtbl.find_opt t.busy c with
    | Some until when until > at ->
      if tries = 0 then c
      else begin
        t.suppressed <- t.suppressed + 1;
        pick (tries - 1)
      end
    | Some _ ->
      Hashtbl.remove t.busy c;
      c
    | None -> c
  in
  let client = pick 4 in
  Hashtbl.replace t.busy client
    (at + Workload.Generators.think_gap t.rng ~mean_ns:t.think_ns);
  t.arrivals <- t.arrivals + 1;
  let key =
    Printf.sprintf "key-%08d" (Workload.Generators.zipf t.rng ~n:t.keys ~theta:t.theta)
  in
  { gap_ns; client; key }

let clients t = t.clients
let arrivals t = t.arrivals
let suppressed t = t.suppressed
