(* A minimal JSON codec — just enough for fault scenarios and repro
   files. Hand-written because the repo deliberately carries no external
   JSON dependency (the trace and telemetry exporters print JSON by hand
   for the same reason). Printing is deterministic: object fields stay in
   construction order and number formatting is stable, so equal values
   yield byte-identical documents. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let num_of_int i = Num (float_of_int i)

let to_int = function
  | Num f when Float.is_integer f && Float.abs f <= 4.503599627370496e15 ->
    Some (int_of_float f)
  | _ -> None

let to_float = function Num f -> Some f | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_list = function List l -> Some l | _ -> None
let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None

(* --- printing ----------------------------------------------------------- *)

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let print_num buf f =
  if Float.is_integer f && Float.abs f <= 4.503599627370496e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" f)
  else Buffer.add_string buf (Printf.sprintf "%.12g" f)

let rec print buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f -> print_num buf f
  | Str s ->
    Buffer.add_char buf '"';
    escape buf s;
    Buffer.add_char buf '"'
  | List l ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        print buf v)
      l;
    Buffer.add_char buf ']'
  | Obj kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        escape buf k;
        Buffer.add_string buf "\":";
        print buf v)
      kvs;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  print buf v;
  Buffer.contents buf

(* --- parsing ------------------------------------------------------------ *)

exception Parse_error of string

let fail pos msg = raise (Parse_error (Printf.sprintf "at offset %d: %s" pos msg))

type state = { s : string; mutable pos : int }

let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance st;
    skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some got when got = c -> advance st
  | Some got -> fail st.pos (Printf.sprintf "expected %C, found %C" c got)
  | None -> fail st.pos (Printf.sprintf "expected %C, found end of input" c)

let literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.s && String.sub st.s st.pos n = word then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st.pos (Printf.sprintf "invalid literal (expected %s)" word)

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> fail st.pos "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
      advance st;
      match peek st with
      | None -> fail st.pos "unterminated escape"
      | Some c ->
        advance st;
        (match c with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
          if st.pos + 4 > String.length st.s then fail st.pos "truncated \\u escape";
          let hex = String.sub st.s st.pos 4 in
          let code =
            try int_of_string ("0x" ^ hex)
            with _ -> fail st.pos "invalid \\u escape"
          in
          st.pos <- st.pos + 4;
          (* Encode the BMP code point as UTF-8; surrogate pairs are not
             supported (scenario names are ASCII in practice). *)
          if code < 0x80 then Buffer.add_char buf (Char.chr code)
          else if code < 0x800 then begin
            Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end
          else begin
            Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
            Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end
        | c -> fail (st.pos - 1) (Printf.sprintf "invalid escape %C" c));
        loop ())
    | Some c ->
      advance st;
      Buffer.add_char buf c;
      loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while match peek st with Some c when is_num_char c -> true | _ -> false do
    advance st
  done;
  let text = String.sub st.s start (st.pos - start) in
  match float_of_string_opt text with
  | Some f -> Num f
  | None -> fail start (Printf.sprintf "invalid number %S" text)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st.pos "unexpected end of input"
  | Some 'n' -> literal st "null" Null
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some '"' -> Str (parse_string st)
  | Some '[' ->
    advance st;
    skip_ws st;
    if peek st = Some ']' then begin
      advance st;
      List []
    end
    else begin
      let items = ref [ parse_value st ] in
      skip_ws st;
      while peek st = Some ',' do
        advance st;
        items := parse_value st :: !items;
        skip_ws st
      done;
      expect st ']';
      List (List.rev !items)
    end
  | Some '{' ->
    advance st;
    skip_ws st;
    if peek st = Some '}' then begin
      advance st;
      Obj []
    end
    else begin
      let field () =
        skip_ws st;
        let k = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        (k, v)
      in
      let fields = ref [ field () ] in
      skip_ws st;
      while peek st = Some ',' do
        advance st;
        fields := field () :: !fields;
        skip_ws st
      done;
      expect st '}';
      Obj (List.rev !fields)
    end
  | Some ('0' .. '9' | '-') -> parse_number st
  | Some c -> fail st.pos (Printf.sprintf "unexpected character %C" c)

let of_string s =
  let st = { s; pos = 0 } in
  match parse_value st with
  | v ->
    skip_ws st;
    if st.pos <> String.length s then
      Error (Printf.sprintf "at offset %d: trailing garbage" st.pos)
    else Ok v
  | exception Parse_error msg -> Error msg
