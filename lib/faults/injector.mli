(** Scenario execution over a live engine.

    Scheduling happens up front ({!install} before {!Sim.Engine.run}); each
    event then fires at its virtual time, mutating the engine's
    {!Sim.Fabric} or the targeted {!Sim.Host}. When tracing is on, every
    injection emits an instant event in category ["fault"], so injected
    faults are visible in Perfetto next to the protocol's own spans. *)

val install :
  Sim.Engine.t ->
  hosts:(int -> Sim.Host.t option) ->
  ?restart:(int -> unit) ->
  Scenario.t ->
  unit
(** [install e ~hosts s] schedules every event of [s]. [hosts] maps a
    scenario host id to its simulated host; host-targeted events whose id
    resolves to [None] are silently skipped (link faults need no
    lookup). [restart] handles {!Scenario.Restart} events — rebooting the
    named host is a protocol-level operation (fresh process, durable
    restore, rejoin) the harness owns, so the injector only dispatches the
    id; if absent, restarts are skipped. *)
