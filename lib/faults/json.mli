(** A minimal JSON value type with a deterministic printer and a strict
    parser — the repo's policy is to carry no external JSON dependency,
    so scenario files and chaos repros use this codec. Printing preserves
    object field order and formats numbers stably, so equal values yield
    byte-identical documents. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val num_of_int : int -> t

val to_int : t -> int option
(** [Some i] only for numbers that are exact integers within the float
    53-bit mantissa. *)

val to_float : t -> float option
val to_str : t -> string option
val to_list : t -> t list option

val member : string -> t -> t option
(** Field lookup on an object; [None] on missing field or non-object. *)

val to_string : t -> string

val of_string : string -> (t, string) result
(** Strict parse of a complete document (trailing garbage is an error).
    The error carries a byte offset. *)
