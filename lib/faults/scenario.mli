(** Declarative fault scenarios.

    A scenario is a named schedule of virtual-time fault events against a
    simulated cluster: host failures in the paper's model (§2.2 crash-stop,
    §7.3 pauses), link-level faults (partitions, extra delay, loss,
    duplication — applied to the engine's {!Sim.Fabric}), and forced
    permission-switch failures. Scenarios serialize to JSON ({!to_string} /
    {!of_string}) so a failing chaos run can be replayed from its repro
    file, and {!generate} derives random — but liveness-safe — scenarios
    from a seed. *)

type action =
  | Pause of int  (** {!Sim.Host.pause}: delayed, NIC keeps serving. *)
  | Resume of int
  | Stop_process of int
      (** Clean process halt: the replica process exits but the machine —
          and its NIC — stay up, so registered memory remains remotely
          readable and durable state is intact on disk. *)
  | Kill_host of int
      (** Machine crash: the whole host dies, volatile state is lost and
          the NIC becomes unreachable (outstanding verbs time out). Only
          durable (simulated-NVM) state survives. *)
  | Partition of int list * int list
      (** Symmetric partition: block both directions between the sides. *)
  | Block of { src : int; dst : int }  (** Directed (asymmetric) cut. *)
  | Unblock of { src : int; dst : int }
  | Delay of { src : int; dst : int; ns : int }  (** 0 clears. *)
  | Loss of { src : int; dst : int; p : float }  (** 0 clears. *)
  | Dup of { src : int; dst : int; p : float }  (** 0 clears. *)
  | Heal  (** Clear every link fault (not forced permission failures). *)
  | Perm_fail of { pid : int; forced : bool }
      (** Force the permission fast path to fail on [pid] (§7.3). *)
  | Restart of int
      (** Reboot a host previously taken down by {!Stop_process} or
          {!Kill_host}: a fresh process comes up on the same id, restores
          its durable state and rejoins the cluster via §5.4 membership,
          catching up from the leader's log. Only valid after a stop or
          kill of the same host ({!validate} rejects anything else). *)

type event = { at : int  (** Virtual time, ns. *); action : action }
type t = { name : string; events : event list }

val pp_action : action Fmt.t
val pp : t Fmt.t

val validate : n:int -> t -> (unit, string) result
(** Check every event against a cluster of [n] hosts: ids in range, no
    self-loop links, probabilities in [0,1], non-negative times. Also
    walks the schedule in firing order and rejects a {!Restart} of a host
    that is not down at that point (never stopped/killed, or already
    restarted). *)

(** {1 JSON} *)

val to_json : t -> Json.t
val to_string : t -> string

val of_json : Json.t -> (t, string) result
val of_string : string -> (t, string) result

(** {1 Named scenarios}

    Written against a fresh cluster, whose initial leader is replica 0
    (elections pick the lowest alive id). *)

val crash_leader : n:int -> t
(** Pause the leader at 5ms (the paper's fail-over injection, §7.3),
    resume at 25ms. *)

val partition_leader : n:int -> t
(** Symmetric partition of the leader from everyone at 5ms; heal at 25ms. *)

val lossy_fabric : n:int -> t
(** 20% loss leader→followers plus 5µs extra delay on the return links
    from 3ms; heal at 40ms. *)

val kill_restart : n:int -> t
(** Kill the initial leader's host at 5ms, reboot it at 25ms: fail-over,
    then durable-state restore, §5.4 re-admission and log catch-up to
    parity under traffic. *)

val named : string list
val by_name : string -> n:int -> t option

(** {1 Coverage}

    Aggregate statistics over a batch of (typically generated) scenarios,
    so a sweep can report which fault classes it actually exercised —
    every action kind is listed, explicitly at zero when unexercised, so
    a silently-dead branch of the generator is visible in the log rather
    than hidden by omission. *)

type coverage = {
  scenarios : int;
  action_counts : (string * int) list;
      (** One entry per action kind, in a fixed order, including zeros. *)
  partition_shapes : (string * int) list;
      (** Partition side-size shapes, e.g. [("1|2", 4)], sorted. *)
  crashes : int;  (** stop_process + kill_host events. *)
  restarts : int;
}

val coverage : t list -> coverage

val restart_fraction : coverage -> float
(** Restarts over crashes (0 when no crashes): how much of the crash
    budget was crash-{e recovery} rather than crash-stop. *)

val pp_coverage : coverage Fmt.t

(** {1 Shrinking} *)

val drop_event : t -> int -> t option
(** [drop_event t i] removes the [i]-th event of [t.events] (listing
    order); [None] if out of range. Used by the modelcheck shrinker —
    callers must re-{!validate}, since dropping a stop or kill can orphan
    a later restart. *)

(** {1 Random scenarios} *)

val generate : Sim.Rng.t -> n:int -> horizon:int -> t
(** A random scenario over [0, horizon * 3/4], replayable from the PRNG's
    seed. Generated scenarios are liveness-safe: at most [(n-1)/2] hosts
    are out at once (a crash consumes the budget, but a crash paired with
    a {!Restart} hands its slot back once the host reboots), every pause
    has a resume, every partition is healed, every probabilistic link
    fault is cleared, so a run that keeps submitting eventually commits. *)
