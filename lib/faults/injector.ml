(* Turn a declarative scenario into scheduled mutations of the engine's
   fault state. Host-targeted actions go through the [hosts] lookup (the
   harness knows which host backs which replica id); link and permission
   faults go to the engine's fabric directly. *)

let with_host hosts pid f = match hosts pid with Some h -> f h | None -> ()

let apply e ~hosts action =
  let fabric = Sim.Engine.fabric e in
  match action with
  | Scenario.Pause pid -> with_host hosts pid Sim.Host.pause
  | Scenario.Resume pid -> with_host hosts pid Sim.Host.resume
  | Scenario.Stop_process pid -> with_host hosts pid Sim.Host.stop_process
  | Scenario.Kill_host pid -> with_host hosts pid Sim.Host.kill_host
  | Scenario.Partition (a, b) -> Sim.Fabric.partition fabric a b
  | Scenario.Block { src; dst } -> Sim.Fabric.block fabric ~src ~dst
  | Scenario.Unblock { src; dst } -> Sim.Fabric.unblock fabric ~src ~dst
  | Scenario.Delay { src; dst; ns } -> Sim.Fabric.set_delay fabric ~src ~dst ns
  | Scenario.Loss { src; dst; p } -> Sim.Fabric.set_loss fabric ~src ~dst p
  | Scenario.Dup { src; dst; p } -> Sim.Fabric.set_dup fabric ~src ~dst p
  | Scenario.Heal -> Sim.Fabric.heal fabric
  | Scenario.Perm_fail { pid; forced } ->
    Sim.Fabric.force_perm_failure fabric ~pid forced

let install e ~hosts (s : Scenario.t) =
  List.iter
    (fun { Scenario.at; action } ->
      Sim.Engine.schedule e ~at (fun () ->
          (* Annotate the injection itself so dashboards and Perfetto
             traces show where faults begin and end. *)
          if Sim.Engine.traced e then
            Sim.Engine.trace_instant e ~cat:"fault"
              ~args:[ ("scenario", s.Scenario.name) ]
              (Fmt.str "%a" Scenario.pp_action action);
          apply e ~hosts action))
    s.Scenario.events
