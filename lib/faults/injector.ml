(* Turn a declarative scenario into scheduled mutations of the engine's
   fault state. Host-targeted actions go through the [hosts] lookup (the
   harness knows which host backs which replica id); link and permission
   faults go to the engine's fabric directly. *)

let with_host hosts pid f = match hosts pid with Some h -> f h | None -> ()

let apply e ~hosts ?(restart = fun _ -> ()) action =
  let fabric = Sim.Engine.fabric e in
  match action with
  | Scenario.Pause pid -> with_host hosts pid Sim.Host.pause
  | Scenario.Resume pid -> with_host hosts pid Sim.Host.resume
  | Scenario.Stop_process pid -> with_host hosts pid Sim.Host.stop_process
  | Scenario.Kill_host pid -> with_host hosts pid Sim.Host.kill_host
  | Scenario.Partition (a, b) -> Sim.Fabric.partition fabric a b
  | Scenario.Block { src; dst } -> Sim.Fabric.block fabric ~src ~dst
  | Scenario.Unblock { src; dst } -> Sim.Fabric.unblock fabric ~src ~dst
  | Scenario.Delay { src; dst; ns } -> Sim.Fabric.set_delay fabric ~src ~dst ns
  | Scenario.Loss { src; dst; p } -> Sim.Fabric.set_loss fabric ~src ~dst p
  | Scenario.Dup { src; dst; p } -> Sim.Fabric.set_dup fabric ~src ~dst p
  | Scenario.Heal -> Sim.Fabric.heal fabric
  | Scenario.Restart pid -> restart pid
  | Scenario.Perm_fail { pid; forced } ->
    Sim.Fabric.force_perm_failure fabric ~pid forced

(* First-class instant events per injection: a stable event name per
   action kind plus structured target args, so Perfetto can line faults up
   with spans (and `mu_demo explain` can window fail-overs) instead of
   parsing pretty-printed text. *)
let action_event = function
  | Scenario.Pause pid -> ("fault_pause", [ ("pid", string_of_int pid) ])
  | Scenario.Resume pid -> ("fault_resume", [ ("pid", string_of_int pid) ])
  | Scenario.Stop_process pid -> ("fault_stop_process", [ ("pid", string_of_int pid) ])
  | Scenario.Kill_host pid -> ("fault_kill_host", [ ("pid", string_of_int pid) ])
  | Scenario.Partition (a, b) ->
    let side l = String.concat "," (List.map string_of_int l) in
    ("fault_partition", [ ("a", side a); ("b", side b) ])
  | Scenario.Block { src; dst } ->
    ("fault_block", [ ("src", string_of_int src); ("dst", string_of_int dst) ])
  | Scenario.Unblock { src; dst } ->
    ("fault_unblock", [ ("src", string_of_int src); ("dst", string_of_int dst) ])
  | Scenario.Delay { src; dst; ns } ->
    ( "fault_delay",
      [ ("src", string_of_int src); ("dst", string_of_int dst); ("ns", string_of_int ns) ]
    )
  | Scenario.Loss { src; dst; p } ->
    ( "fault_loss",
      [ ("src", string_of_int src); ("dst", string_of_int dst); ("p", Fmt.str "%g" p) ] )
  | Scenario.Dup { src; dst; p } ->
    ( "fault_dup",
      [ ("src", string_of_int src); ("dst", string_of_int dst); ("p", Fmt.str "%g" p) ] )
  | Scenario.Heal -> ("fault_heal", [])
  | Scenario.Restart pid -> ("fault_restart", [ ("pid", string_of_int pid) ])
  | Scenario.Perm_fail { pid; forced } ->
    ( "fault_perm_fail",
      [ ("pid", string_of_int pid); ("forced", if forced then "1" else "0") ] )

let install e ~hosts ?restart (s : Scenario.t) =
  List.iter
    (fun { Scenario.at; action } ->
      Sim.Engine.schedule e ~at (fun () ->
          (* Annotate the injection itself so dashboards and Perfetto
             traces show where faults begin and end. *)
          if Sim.Engine.traced e then begin
            let name, targs = action_event action in
            Sim.Engine.trace_instant e ~cat:"fault"
              ~args:
                (targs
                @ [
                    ("scenario", s.Scenario.name);
                    ("action", Fmt.str "%a" Scenario.pp_action action);
                  ])
              name
          end;
          apply e ~hosts ?restart action))
    s.Scenario.events
