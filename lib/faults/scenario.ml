type action =
  | Pause of int
  | Resume of int
  | Stop_process of int
  | Kill_host of int
  | Partition of int list * int list
  | Block of { src : int; dst : int }
  | Unblock of { src : int; dst : int }
  | Delay of { src : int; dst : int; ns : int }
  | Loss of { src : int; dst : int; p : float }
  | Dup of { src : int; dst : int; p : float }
  | Heal
  | Perm_fail of { pid : int; forced : bool }
  | Restart of int

type event = { at : int; action : action }
type t = { name : string; events : event list }

let pp_action ppf = function
  | Pause pid -> Fmt.pf ppf "pause(%d)" pid
  | Resume pid -> Fmt.pf ppf "resume(%d)" pid
  | Stop_process pid -> Fmt.pf ppf "stop_process(%d)" pid
  | Kill_host pid -> Fmt.pf ppf "kill_host(%d)" pid
  | Partition (a, b) ->
    Fmt.pf ppf "partition(%a|%a)"
      Fmt.(list ~sep:comma int)
      a
      Fmt.(list ~sep:comma int)
      b
  | Block { src; dst } -> Fmt.pf ppf "block(%d->%d)" src dst
  | Unblock { src; dst } -> Fmt.pf ppf "unblock(%d->%d)" src dst
  | Delay { src; dst; ns } -> Fmt.pf ppf "delay(%d->%d,%dns)" src dst ns
  | Loss { src; dst; p } -> Fmt.pf ppf "loss(%d->%d,%g)" src dst p
  | Dup { src; dst; p } -> Fmt.pf ppf "dup(%d->%d,%g)" src dst p
  | Heal -> Fmt.string ppf "heal"
  | Perm_fail { pid; forced } -> Fmt.pf ppf "perm_fail(%d,%b)" pid forced
  | Restart pid -> Fmt.pf ppf "restart(%d)" pid

let pp ppf t =
  Fmt.pf ppf "%s:@ %a" t.name
    Fmt.(list ~sep:semi (fun ppf e -> pf ppf "@%dns %a" e.at pp_action e.action))
    t.events

(* --- validation --------------------------------------------------------- *)

let validate ~n t =
  let err fmt = Fmt.kstr (fun m -> Error m) fmt in
  (* Restart is only meaningful for a host that is down: validation walks
     the schedule in time order and tracks which hosts are stopped or
     killed, so a restart of a host that was never taken down — or was
     already restarted — is rejected up front with a clear error instead
     of being silently ignored at injection time. *)
  let down : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  let check_pid what pid =
    if pid < 0 || pid >= n then err "%s: host %d outside cluster of %d" what pid n
    else Ok ()
  in
  let check_link what src dst =
    if src = dst then err "%s: link %d->%d is a self-loop" what src dst
    else
      Result.bind (check_pid what src) (fun () -> check_pid what dst)
  in
  let check_prob what p =
    if p >= 0. && p <= 1. then Ok () else err "%s: probability %g outside [0,1]" what p
  in
  let check_event { at; action } =
    if at < 0 then err "event at %dns: negative time" at
    else
      match action with
      | Pause pid -> check_pid "pause" pid
      | Resume pid -> check_pid "resume" pid
      | Stop_process pid ->
        Result.map (fun () -> Hashtbl.replace down pid ()) (check_pid "stop_process" pid)
      | Kill_host pid ->
        Result.map (fun () -> Hashtbl.replace down pid ()) (check_pid "kill_host" pid)
      | Restart pid ->
        Result.bind (check_pid "restart" pid) (fun () ->
            if Hashtbl.mem down pid then Ok (Hashtbl.remove down pid)
            else
              err
                "restart: host %d was never stopped or killed before %dns (restart only \
                 follows stop_process or kill_host)"
                pid at)
      | Partition (a, b) ->
        if a = [] || b = [] then err "partition: empty side"
        else if List.exists (fun x -> List.mem x b) a then
          err "partition: sides overlap"
        else
          List.fold_left
            (fun acc pid -> Result.bind acc (fun () -> check_pid "partition" pid))
            (Ok ()) (a @ b)
      | Block { src; dst } -> check_link "block" src dst
      | Unblock { src; dst } -> check_link "unblock" src dst
      | Delay { src; dst; ns } ->
        if ns < 0 then err "delay: negative delay %dns" ns
        else check_link "delay" src dst
      | Loss { src; dst; p } ->
        Result.bind (check_link "loss" src dst) (fun () -> check_prob "loss" p)
      | Dup { src; dst; p } ->
        Result.bind (check_link "dup" src dst) (fun () -> check_prob "dup" p)
      | Heal -> Ok ()
      | Perm_fail { pid; forced = _ } -> check_pid "perm_fail" pid
  in
  (* Events are checked in firing order (stable sort on [at], listed
     order breaking ties — exactly how the injector schedules them), so
     the stop/kill/restart state machine sees the run as it will play. *)
  let events = List.stable_sort (fun a b -> compare a.at b.at) t.events in
  List.fold_left (fun acc e -> Result.bind acc (fun () -> check_event e)) (Ok ()) events

(* --- JSON codec --------------------------------------------------------- *)

let int_field k v = (k, Json.num_of_int v)

let json_of_action = function
  | Pause pid -> [ ("action", Json.Str "pause"); int_field "pid" pid ]
  | Resume pid -> [ ("action", Json.Str "resume"); int_field "pid" pid ]
  | Stop_process pid -> [ ("action", Json.Str "stop_process"); int_field "pid" pid ]
  | Kill_host pid -> [ ("action", Json.Str "kill_host"); int_field "pid" pid ]
  | Partition (a, b) ->
    [
      ("action", Json.Str "partition");
      ("a", Json.List (List.map Json.num_of_int a));
      ("b", Json.List (List.map Json.num_of_int b));
    ]
  | Block { src; dst } ->
    [ ("action", Json.Str "block"); int_field "src" src; int_field "dst" dst ]
  | Unblock { src; dst } ->
    [ ("action", Json.Str "unblock"); int_field "src" src; int_field "dst" dst ]
  | Delay { src; dst; ns } ->
    [ ("action", Json.Str "delay"); int_field "src" src; int_field "dst" dst;
      int_field "ns" ns ]
  | Loss { src; dst; p } ->
    [ ("action", Json.Str "loss"); int_field "src" src; int_field "dst" dst;
      ("p", Json.Num p) ]
  | Dup { src; dst; p } ->
    [ ("action", Json.Str "dup"); int_field "src" src; int_field "dst" dst;
      ("p", Json.Num p) ]
  | Heal -> [ ("action", Json.Str "heal") ]
  | Restart pid -> [ ("action", Json.Str "restart"); int_field "pid" pid ]
  | Perm_fail { pid; forced } ->
    [ ("action", Json.Str "perm_fail"); int_field "pid" pid;
      ("forced", Json.Bool forced) ]

let to_json t =
  Json.Obj
    [
      ("name", Json.Str t.name);
      ( "events",
        Json.List
          (List.map
             (fun e -> Json.Obj (int_field "at" e.at :: json_of_action e.action))
             t.events) );
    ]

let to_string t = Json.to_string (to_json t)

let field_int j k =
  match Option.bind (Json.member k j) Json.to_int with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or non-integer field %S" k)

let field_float j k =
  match Option.bind (Json.member k j) Json.to_float with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or non-number field %S" k)

let field_int_list j k =
  match Option.bind (Json.member k j) Json.to_list with
  | None -> Error (Printf.sprintf "missing or non-array field %S" k)
  | Some items ->
    let ints = List.filter_map Json.to_int items in
    if List.length ints = List.length items then Ok ints
    else Error (Printf.sprintf "field %S: non-integer element" k)

let ( let* ) = Result.bind

let action_of_json j =
  match Option.bind (Json.member "action" j) Json.to_str with
  | None -> Error "event without an \"action\" string"
  | Some kind -> (
    match kind with
    | "pause" ->
      let* pid = field_int j "pid" in
      Ok (Pause pid)
    | "resume" ->
      let* pid = field_int j "pid" in
      Ok (Resume pid)
    | "stop_process" ->
      let* pid = field_int j "pid" in
      Ok (Stop_process pid)
    | "kill_host" ->
      let* pid = field_int j "pid" in
      Ok (Kill_host pid)
    | "partition" ->
      let* a = field_int_list j "a" in
      let* b = field_int_list j "b" in
      Ok (Partition (a, b))
    | "block" ->
      let* src = field_int j "src" in
      let* dst = field_int j "dst" in
      Ok (Block { src; dst })
    | "unblock" ->
      let* src = field_int j "src" in
      let* dst = field_int j "dst" in
      Ok (Unblock { src; dst })
    | "delay" ->
      let* src = field_int j "src" in
      let* dst = field_int j "dst" in
      let* ns = field_int j "ns" in
      Ok (Delay { src; dst; ns })
    | "loss" ->
      let* src = field_int j "src" in
      let* dst = field_int j "dst" in
      let* p = field_float j "p" in
      Ok (Loss { src; dst; p })
    | "dup" ->
      let* src = field_int j "src" in
      let* dst = field_int j "dst" in
      let* p = field_float j "p" in
      Ok (Dup { src; dst; p })
    | "heal" -> Ok Heal
    | "restart" ->
      let* pid = field_int j "pid" in
      Ok (Restart pid)
    | "perm_fail" ->
      let* pid = field_int j "pid" in
      let forced =
        match Json.member "forced" j with Some (Json.Bool b) -> b | _ -> true
      in
      Ok (Perm_fail { pid; forced })
    | other -> Error (Printf.sprintf "unknown action %S" other))

let of_json j =
  match Option.bind (Json.member "name" j) Json.to_str with
  | None -> Error "scenario without a \"name\" string"
  | Some name -> (
    match Option.bind (Json.member "events" j) Json.to_list with
    | None -> Error "scenario without an \"events\" array"
    | Some items ->
      let rec go acc = function
        | [] -> Ok { name; events = List.rev acc }
        | item :: rest ->
          let* at = field_int item "at" in
          let* action = action_of_json item in
          if at < 0 then Error (Printf.sprintf "event at %dns: negative time" at)
          else go ({ at; action } :: acc) rest
      in
      go [] items)

let of_string s =
  let* j = Json.of_string s in
  of_json j

(* --- named scenarios ---------------------------------------------------- *)

(* The initial leader is always the lowest id (0): elections pick the
   lowest alive replica, so scenarios written against a fresh cluster can
   target it by construction. Times leave ~5ms for the cluster to elect
   and confirm followers first. *)

let others n = List.init (n - 1) (fun i -> i + 1)

let crash_leader ~n:_ =
  {
    name = "crash-leader";
    events =
      [
        { at = 5_000_000; action = Pause 0 };
        { at = 25_000_000; action = Resume 0 };
      ];
  }

let partition_leader ~n =
  {
    name = "partition-leader";
    events =
      [
        { at = 5_000_000; action = Partition ([ 0 ], others n) };
        { at = 25_000_000; action = Heal };
      ];
  }

let lossy_fabric ~n =
  let faults =
    List.concat_map
      (fun dst ->
        [
          { at = 3_000_000; action = Loss { src = 0; dst; p = 0.2 } };
          { at = 3_000_000; action = Delay { src = dst; dst = 0; ns = 5_000 } };
        ])
      (others n)
  in
  { name = "lossy-fabric"; events = faults @ [ { at = 40_000_000; action = Heal } ] }

let kill_restart ~n:_ =
  (* Crash the initial leader outright (volatile state lost, NIC dead),
     then reboot the machine 20ms later: the cluster fails over, the
     rebooted replica restores its durable log, is re-admitted via a
     §5.4 configuration entry and catches up to parity under traffic. *)
  {
    name = "kill-restart";
    events =
      [
        { at = 5_000_000; action = Kill_host 0 };
        { at = 25_000_000; action = Restart 0 };
      ];
  }

let named = [ "crash-leader"; "partition-leader"; "lossy-fabric"; "kill-restart" ]

let by_name name ~n =
  match name with
  | "crash-leader" -> Some (crash_leader ~n)
  | "partition-leader" -> Some (partition_leader ~n)
  | "lossy-fabric" -> Some (lossy_fabric ~n)
  | "kill-restart" -> Some (kill_restart ~n)
  | _ -> None

(* --- coverage ------------------------------------------------------------ *)

type coverage = {
  scenarios : int;
  action_counts : (string * int) list;
  partition_shapes : (string * int) list;
  crashes : int;
  restarts : int;
}

(* Fixed kind order: coverage output is byte-stable and always names every
   class, so an unexercised one reads as an explicit zero. *)
let action_kinds =
  [ "pause"; "resume"; "stop_process"; "kill_host"; "partition"; "block"; "unblock";
    "delay"; "loss"; "dup"; "heal"; "perm_fail"; "restart" ]

let action_kind = function
  | Pause _ -> "pause"
  | Resume _ -> "resume"
  | Stop_process _ -> "stop_process"
  | Kill_host _ -> "kill_host"
  | Partition _ -> "partition"
  | Block _ -> "block"
  | Unblock _ -> "unblock"
  | Delay _ -> "delay"
  | Loss _ -> "loss"
  | Dup _ -> "dup"
  | Heal -> "heal"
  | Perm_fail _ -> "perm_fail"
  | Restart _ -> "restart"

let coverage ts =
  let counts = Hashtbl.create 16 in
  let shapes = Hashtbl.create 8 in
  let bump tbl k = Hashtbl.replace tbl k (1 + Option.value (Hashtbl.find_opt tbl k) ~default:0) in
  List.iter
    (fun t ->
      List.iter
        (fun e ->
          bump counts (action_kind e.action);
          match e.action with
          | Partition (a, b) ->
            let la = List.length a and lb = List.length b in
            bump shapes (Printf.sprintf "%d|%d" (min la lb) (max la lb))
          | _ -> ())
        t.events)
    ts;
  let count k = Option.value (Hashtbl.find_opt counts k) ~default:0 in
  {
    scenarios = List.length ts;
    action_counts = List.map (fun k -> (k, count k)) action_kinds;
    partition_shapes =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) shapes []
      |> List.sort (fun (a, _) (b, _) -> compare a b);
    crashes = count "stop_process" + count "kill_host";
    restarts = count "restart";
  }

let restart_fraction c =
  if c.crashes = 0 then 0.0 else float_of_int c.restarts /. float_of_int c.crashes

let pp_coverage ppf c =
  Fmt.pf ppf "coverage over %d scenario(s):" c.scenarios;
  List.iter (fun (k, n) -> Fmt.pf ppf "@,  %-14s %4d" k n) c.action_counts;
  Fmt.pf ppf "@,  partition shapes: %s"
    (if c.partition_shapes = [] then "(none)"
     else
       String.concat ", "
         (List.map (fun (s, n) -> Printf.sprintf "%s x%d" s n) c.partition_shapes));
  Fmt.pf ppf "@,  restart fraction: %.2f (%d restart(s) / %d crash(es))"
    (restart_fraction c) c.restarts c.crashes

(* --- shrinking ----------------------------------------------------------- *)

let drop_event t i =
  if i < 0 || i >= List.length t.events then None
  else Some { t with events = List.filteri (fun j _ -> j <> i) t.events }

(* --- random generation --------------------------------------------------- *)

(* Scenarios must keep the cluster able to make progress once healed, or
   the chaos runner's clients would block forever and a liveness stall
   would masquerade as a safety bug:
   - at most [(n-1)/2] hosts are out at any instant, and crashes
     (permanent under §2.2) consume that budget for the rest of the run;
   - every pause is paired with a resume, every partition with a heal,
     every forced permission failure with its reset;
   - disruptions run in disjoint time windows inside [0, horizon * 3/4],
     so by [horizon] the surviving cluster is fault-free. *)
let generate rng ~n ~horizon =
  let budget = (n - 1) / 2 in
  let windows = 1 + Sim.Rng.int rng 4 in
  let t_first = max 2_000_000 (horizon / 10) in
  let t_last = horizon * 3 / 4 in
  let span = max 1 ((t_last - t_first) / windows) in
  let crashed = ref 0 in
  let events = ref [] in
  let emit at action = events := { at; action } :: !events in
  for w = 0 to windows - 1 do
    let w_start = t_first + (w * span) in
    let start = w_start + Sim.Rng.int rng (max 1 (span / 4)) in
    let stop = start + (span / 2) + Sim.Rng.int rng (max 1 (span / 4)) in
    let victim = Sim.Rng.int rng n in
    let host_budget_left = !crashed + 1 <= budget in
    match Sim.Rng.int rng 6 with
    | 0 when host_budget_left ->
      emit start (Pause victim);
      emit stop (Resume victim)
    | 1 when host_budget_left ->
      let rest = List.filter (fun i -> i <> victim) (List.init n Fun.id) in
      emit start (Partition ([ victim ], rest));
      List.iter
        (fun o ->
          emit stop (Unblock { src = victim; dst = o });
          emit stop (Unblock { src = o; dst = victim }))
        rest
    | 2 when host_budget_left ->
      (* Crash-stop (§2.2) or crash-recovery: the host goes down and, on
         a coin flip, reboots at the window's end. A restarted host
         restores its durable state and rejoins, so it gives its
         below-majority budget slot back — only permanent crashes keep
         consuming it for the rest of the run. Windows are time-disjoint,
         so the freed slot cannot be spent while the host is still down. *)
      incr crashed;
      if Sim.Rng.bool rng then emit start (Stop_process victim)
      else emit start (Kill_host victim);
      if Sim.Rng.bool rng then begin
        emit stop (Restart victim);
        decr crashed
      end
    | 3 ->
      emit start (Perm_fail { pid = victim; forced = true });
      emit stop (Perm_fail { pid = victim; forced = false })
    | _ ->
      let dst = (victim + 1 + Sim.Rng.int rng (n - 1)) mod n in
      if Sim.Rng.bool rng then begin
        let p = 0.05 +. (Sim.Rng.float rng *. 0.25) in
        emit start (Loss { src = victim; dst; p });
        emit stop (Loss { src = victim; dst; p = 0. })
      end
      else begin
        let ns = 1_000 + Sim.Rng.int rng 50_000 in
        emit start (Delay { src = victim; dst; ns });
        emit stop (Delay { src = victim; dst; ns = 0 })
      end
  done;
  let events =
    List.stable_sort (fun a b -> compare a.at b.at) (List.rev !events)
  in
  { name = Printf.sprintf "random-%d" windows; events }
