(** Durable-state layout for a replica.

    A replica with durable state on keeps two {!Sim.Nvm} regions:

    - the {b log} region backs the consensus-log MR directly, so slot
      writes and the FUO/minProposal header are write-through durable;
    - the {b meta} region holds the membership configuration as last
      written by this replica (updated on every wiring change), read
      back first thing on reboot.

    Both survive {!Sim.Host.kill_host}; a clean {!Sim.Host.stop_process}
    trivially keeps them too. *)

val log_region : string
val meta_region : string
val meta_size : int

val log_backing : Sim.Nvm.t -> owner:int -> size:int -> Bytes.t
(** Open (or create) the owner's durable log region. *)

val meta_backing : Sim.Nvm.t -> owner:int -> Bytes.t
(** Open (or create) the owner's durable membership region. *)

val has_durable_state : Sim.Nvm.t -> owner:int -> bool
(** Whether a previous incarnation of [owner] left a durable log. *)

val write_members : Bytes.t -> int list -> unit
(** Overwrite the meta region with a member list (deduplicated,
    sorted; at most 64 ids). *)

val read_members : Bytes.t -> int list option
(** Decode the member list; [None] if the region is blank or from an
    incompatible layout. *)
