(* Bounded admission for a degraded leader's request queue.

   When the leader cannot commit (quorum lost), parked requests must not
   grow without bound: past [limit] queued requests, new submissions are
   rejected with a retryable error instead of being enqueued. [limit = 0]
   disables the bound (the pre-recovery behaviour), which keeps runs
   that never configure it byte-identical. *)

type t = { limit : int; mutable sheds : int }

let create ~limit = { limit; sheds = 0 }

let enabled t = t.limit > 0

let admit t ~depth =
  if t.limit > 0 && depth >= t.limit then begin
    t.sheds <- t.sheds + 1;
    false
  end
  else true

let sheds t = t.sheds
let limit t = t.limit
