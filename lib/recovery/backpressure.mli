(** Bounded admission for the leader's request queue.

    [admit] answers whether a new request may enqueue given the current
    queue depth; a refusal is counted and the caller answers the client
    with a retryable error. [limit = 0] disables the bound entirely. *)

type t

val create : limit:int -> t
val enabled : t -> bool

val admit : t -> depth:int -> bool
(** [admit t ~depth] is false — and counts a shed — iff the bound is
    enabled and [depth] is already at or past it. *)

val sheds : t -> int
val limit : t -> int
