(* Bounded-rate log catch-up for a rejoining replica.

   The rejoiner drives its own recovery (Listing 5's read-and-copy loop,
   run by the replica that is behind instead of the leader): read the
   leader's FUO, pull missed slot images one batch at a time over the
   always-readable replication QP, install and apply them, then idle
   before the next batch. The idle between batches is the rate bound —
   catch-up shares the leader's NIC with the replication hot path, so an
   unthrottled reader would inflate commit tail latency exactly when the
   cluster is busiest.

   The driver is written against closures so it can be unit-tested
   without a cluster and so the caller owns all protocol details (which
   QP to read, how to decode a slot, what "apply" means). *)

type pull_result =
  | Entry of bytes  (** The slot image at this index. *)
  | Recycled
      (** The leader no longer holds this entry (§5.3 recycling moved
          past it): pulling cannot make progress, a fresh checkpoint is
          needed. *)
  | Unreachable  (** Read failed (leader change, fault); retry next round. *)

type progress = {
  mutable entries : int;  (** Slot images installed and committed. *)
  mutable rounds : int;  (** Pull batches issued. *)
  mutable recheckpoints : int;  (** Times a recycled entry forced a new checkpoint. *)
}

type outcome = Parity of progress | Stopped of progress

let run ~batch ~idle_ns ~idle ~target ~fuo ~pull ~install ~commit ~recheckpoint ~stopped ()
    =
  if batch < 1 then invalid_arg "Catchup.run: batch must be >= 1";
  let p = { entries = 0; rounds = 0; recheckpoints = 0 } in
  (* Commit the contiguous prefix [start, idx) pulled so far. *)
  let flush ~start idx =
    if idx > start then begin
      commit idx;
      p.entries <- p.entries + (idx - start)
    end
  in
  let rec loop () =
    if stopped () then Stopped p
    else
      match target () with
      | None ->
        (* No leader in sight (election in progress): wait, don't spin. *)
        idle idle_ns;
        loop ()
      | Some l when fuo () >= l -> Parity p
      | Some l ->
        let start = fuo () in
        let upto = min l (start + batch) in
        let rec pull_batch idx =
          if idx >= upto then flush ~start idx
          else
            match pull idx with
            | Entry img ->
              install idx img;
              pull_batch (idx + 1)
            | Recycled ->
              flush ~start idx;
              p.recheckpoints <- p.recheckpoints + 1;
              recheckpoint ()
            | Unreachable -> flush ~start idx
        in
        pull_batch start;
        p.rounds <- p.rounds + 1;
        idle idle_ns;
        loop ()
  in
  loop ()
