(* Degraded-mode window tracking for a leader that lost its quorum.

   A window opens at the first failed attempt to (re-)establish a
   majority of confirmed followers and closes when an establishment
   succeeds or the replica stops being leader. The tracker is pure
   bookkeeping — entering or leaving consumes no virtual time — so it
   can sit in the leader service loop without perturbing timing. *)

type t = {
  mutable since : int option;
  mutable windows : int;
  mutable total_ns : int;
  mutable last_ns : int option;
}

let create () = { since = None; windows = 0; total_ns = 0; last_ns = None }

let active t = t.since <> None

let enter t ~now = if t.since = None then t.since <- Some now

let leave t ~now =
  match t.since with
  | None -> None
  | Some t0 ->
    t.since <- None;
    let d = now - t0 in
    t.windows <- t.windows + 1;
    t.total_ns <- t.total_ns + d;
    t.last_ns <- Some d;
    Some d

let windows t = t.windows
let total_ns t = t.total_ns
let last_ns t = t.last_ns
