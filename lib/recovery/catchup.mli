(** Bounded-rate log catch-up driver for a rejoining replica.

    Listing 5's read-and-copy loop, driven by the replica that is behind:
    pull missed slot images from the current leader in batches of
    [batch], installing and committing each contiguous prefix, idling
    [idle_ns] between batches so recovery traffic cannot starve the
    replication hot path. Runs until the local FUO reaches the leader's
    (log parity) or [stopped] turns true.

    Written against closures — the caller supplies the actual RDMA reads,
    slot decoding and apply logic — so the loop is unit-testable without
    a cluster. *)

type pull_result =
  | Entry of bytes
  | Recycled
      (** The leader recycled this slot (§5.3); the driver calls
          [recheckpoint] and re-reads its position. *)
  | Unreachable  (** Transient failure; the round ends, retried after [idle_ns]. *)

type progress = {
  mutable entries : int;
  mutable rounds : int;
  mutable recheckpoints : int;
}

type outcome = Parity of progress | Stopped of progress

val run :
  batch:int ->
  idle_ns:int ->
  idle:(int -> unit) ->
  target:(unit -> int option) ->
  fuo:(unit -> int) ->
  pull:(int -> pull_result) ->
  install:(int -> bytes -> unit) ->
  commit:(int -> unit) ->
  recheckpoint:(unit -> unit) ->
  stopped:(unit -> bool) ->
  unit ->
  outcome
(** [idle] sleeps attributed virtual time (the rate bound); [target]
    returns the current leader's FUO ([None] while leaderless); [fuo]
    the local FUO; [pull idx] one remote slot image; [install] stores it
    locally; [commit idx] advances the local FUO to [idx] (exclusive)
    and applies; [recheckpoint] jumps state forward via a fresh
    snapshot after an entry was recycled under us. *)
