(** Degraded-mode window tracking.

    A degraded window spans from a leader's first failed quorum
    (re-)establishment to the establishment that succeeds (or its
    demotion). Bookkeeping only — no virtual time is consumed. *)

type t

val create : unit -> t
val active : t -> bool

val enter : t -> now:int -> unit
(** Open a window at [now] if none is open. *)

val leave : t -> now:int -> int option
(** Close the open window, returning its duration (ns); [None] if no
    window was open. *)

val windows : t -> int
(** Completed windows. *)

val total_ns : t -> int
val last_ns : t -> int option
