(* Durable-state layout for a replica: which NVM regions it keeps and
   what lives in them.

   - [log_region]: the consensus log MR is registered directly over this
     region (write-through by construction), so every slot write and the
     FUO/minProposal header survive a crash.
   - [meta_region]: the membership configuration as last known to this
     replica, rewritten on every wiring change (§5.4 config entries are
     also in the log, but the compact member list is what a rebooting
     replica reads first).

   The meta codec is deliberately tiny and versioned by a magic byte so
   a region from an incompatible build decodes to [None] instead of
   garbage. *)

let log_region = "mu-log"
let meta_region = "mu-meta"

(* meta layout: magic byte, u8 member count, then u32le member ids. *)
let meta_magic = '\xB5' (* "µ" in latin-1 *)

let meta_size = 2 + (4 * 64)

let write_members region members =
  let members = List.sort_uniq compare members in
  if List.length members > 64 then invalid_arg "Durable.write_members: too many members";
  Bytes.fill region 0 (Bytes.length region) '\000';
  Bytes.set region 0 meta_magic;
  Bytes.set region 1 (Char.chr (List.length members));
  List.iteri
    (fun i id -> Bytes.set_int32_le region (2 + (4 * i)) (Int32.of_int id))
    members

let read_members region =
  if Bytes.length region < 2 || Bytes.get region 0 <> meta_magic then None
  else begin
    let count = Char.code (Bytes.get region 1) in
    if Bytes.length region < 2 + (4 * count) then None
    else
      Some
        (List.init count (fun i -> Int32.to_int (Bytes.get_int32_le region (2 + (4 * i)))))
  end

(* Open (or re-open) a replica's durable regions. *)
let log_backing nvm ~owner ~size = Sim.Nvm.region nvm ~owner ~name:log_region ~size

let meta_backing nvm ~owner = Sim.Nvm.region nvm ~owner ~name:meta_region ~size:meta_size

let has_durable_state nvm ~owner = Sim.Nvm.mem nvm ~owner ~name:log_region
