(** Alert log: chronological firing/clearing edges.

    Each entry carries the virtual time, sampler epoch and window
    ordinal of the transition, so alerts line up against traces and
    sampler series. {!to_json} is hand-built and byte-stable — CI
    compares same-seed runs with [cmp]. *)

type entry = {
  seq : int;
  at : int;  (** virtual ns of the window close that made the edge *)
  epoch : int;
  window : int;
  rule : string;
  edge : [ `Fire | `Clear ];
  detail : string;
}

type t

val create : unit -> t

val add :
  t ->
  at:int ->
  epoch:int ->
  window:int ->
  rule:string ->
  edge:[ `Fire | `Clear ] ->
  detail:string ->
  entry
(** Append an edge (and update the firing set); returns the entry. *)

val entries : t -> entry list
(** Chronological. *)

val length : t -> int

val firing : t -> string list
(** Rules currently firing, sorted by name. *)

val to_json : t -> string
(** [mu-monitor-log/1]: entries in order plus the final firing set. *)

val pp_entry : entry Fmt.t
val pp : t Fmt.t
