(* Streaming SLO windows over sampler snapshots.

   The evaluator is fed the same (metric, value) snapshot the telemetry
   sampler just stored (one registry scan per tick, shared via
   Telemetry.Sampler.subscribe) and closes a window by diffing against
   the previous close: counters yield per-window deltas, histograms
   yield the per-window distribution via Hdr.diff on cumulative
   snapshots. Everything is driven by virtual time and touches no PRNG,
   so equal-seed runs evaluate identical windows. *)

type agg = Max | Sum

type window = {
  epoch : int;
  index : int;
  t0 : int;
  t1 : int;
  (* name -> (labels, value) series of the closing snapshot, in registry
     (sorted) order *)
  cur : (string, ((string * string) list * float) list) Hashtbl.t;
  deltas : (string, float) Hashtbl.t;  (* counters: sum of per-series deltas *)
  hists : (string, Telemetry.Hdr.t) Hashtbl.t;  (* merged windowed distributions *)
}

type t = {
  prev_vals : (string, float) Hashtbl.t;  (* series key -> value at last close *)
  prev_hists : (string, Telemetry.Hdr.t) Hashtbl.t;  (* series key -> snapshot *)
  mutable index : int;
}

let create () =
  { prev_vals = Hashtbl.create 64; prev_hists = Hashtbl.create 16; index = 0 }

let skey (m : Telemetry.Registry.metric) =
  String.concat "\x00"
    (m.name :: List.concat_map (fun (k, v) -> [ k; v ]) m.labels)

let advance t ~epoch ~t0 ~t1 samples =
  let w =
    {
      epoch;
      index = t.index;
      t0;
      t1;
      cur = Hashtbl.create 64;
      deltas = Hashtbl.create 32;
      hists = Hashtbl.create 16;
    }
  in
  t.index <- t.index + 1;
  List.iter
    (fun ((m : Telemetry.Registry.metric), v) ->
      let k = skey m in
      let prior = try Hashtbl.find w.cur m.name with Not_found -> [] in
      Hashtbl.replace w.cur m.name (prior @ [ (m.labels, v) ]);
      (match m.kind with
      | Telemetry.Registry.Counter _ ->
        let prev = try Hashtbl.find t.prev_vals k with Not_found -> 0.0 in
        let d = v -. prev in
        let acc = try Hashtbl.find w.deltas m.name with Not_found -> 0.0 in
        Hashtbl.replace w.deltas m.name (acc +. d)
      | Telemetry.Registry.Gauge _ -> ()
      | Telemetry.Registry.Histogram h ->
        (* a histogram's sampled value is its cumulative count, which is
           monotone — expose its window delta like a counter's *)
        let prev = try Hashtbl.find t.prev_vals k with Not_found -> 0.0 in
        let acc = try Hashtbl.find w.deltas m.name with Not_found -> 0.0 in
        Hashtbl.replace w.deltas m.name (acc +. (v -. prev));
        let wh =
          match Hashtbl.find_opt t.prev_hists k with
          | Some since -> Telemetry.Hdr.diff ~since h
          | None -> Telemetry.Hdr.copy h
        in
        Hashtbl.replace t.prev_hists k (Telemetry.Hdr.copy h);
        (match Hashtbl.find_opt w.hists m.name with
        | Some into -> Telemetry.Hdr.merge ~into wh
        | None -> Hashtbl.replace w.hists m.name wh));
      Hashtbl.replace t.prev_vals k v)
    samples;
  w

let epoch (w : window) = w.epoch
let index (w : window) = w.index
let t0 (w : window) = w.t0
let t1 (w : window) = w.t1
let span_ns (w : window) = w.t1 - w.t0

let value w agg name =
  match Hashtbl.find_opt w.cur name with
  | None | Some [] -> None
  | Some ((_, v0) :: rest) ->
    Some
      (List.fold_left
         (fun acc (_, v) -> match agg with Max -> Float.max acc v | Sum -> acc +. v)
         v0 rest)

let delta w name = try Hashtbl.find w.deltas name with Not_found -> 0.0

let rate_per_s w name =
  let span = span_ns w in
  if span <= 0 then 0.0 else delta w name *. 1e9 /. float_of_int span

let hist w name =
  match Hashtbl.find_opt w.hists name with
  | Some h when not (Telemetry.Hdr.is_empty h) -> Some h
  | _ -> None

let quantile_ns w name q =
  match hist w name with None -> None | Some h -> Telemetry.Hdr.quantile h q
