(* Alert rules: a named check evaluated once per SLO window, wrapped in
   a hysteresis state machine. A rule fires after [fire_after]
   consecutive breaching windows and clears after [clear_after]
   consecutive clean ones, so one noisy window cannot flap an alert.
   Checks are pure functions of the window (a few keep one window of
   history in a closure — rate-of-change, stall detection); nothing
   here reads wall time or PRNG. *)

type outcome = Ok | Breach of string

type spec = {
  name : string;
  help : string;
  fire_after : int;
  clear_after : int;
  check : Slo.window -> outcome;
}

type t = {
  spec : spec;
  mutable breaches : int;  (* consecutive breaching windows *)
  mutable oks : int;  (* consecutive clean windows *)
  mutable firing : bool;
}

type edge = [ `Fire | `Clear ]

let make spec =
  if spec.fire_after < 1 || spec.clear_after < 1 then
    invalid_arg "Rules.make: fire_after/clear_after must be >= 1";
  { spec; breaches = 0; oks = 0; firing = false }

let name t = t.spec.name
let help t = t.spec.help
let firing t = t.firing

let step t w =
  match t.spec.check w with
  | Breach detail ->
    t.breaches <- t.breaches + 1;
    t.oks <- 0;
    if (not t.firing) && t.breaches >= t.spec.fire_after then begin
      t.firing <- true;
      Some (`Fire, detail)
    end
    else None
  | Ok ->
    t.oks <- t.oks + 1;
    t.breaches <- 0;
    if t.firing && t.oks >= t.spec.clear_after then begin
      t.firing <- false;
      Some (`Clear, "recovered")
    end
    else None

(* --- built-in checks --------------------------------------------------- *)

let spec ?(fire_after = 1) ?(clear_after = 1) ~name ~help check =
  { name; help; fire_after; clear_after; check }

let quantile_above ?fire_after ?clear_after ~name ~metric ~q ~limit_ns () =
  spec ?fire_after ?clear_after ~name
    ~help:
      (Printf.sprintf "p%g of %s above %dns (windowed)" (q *. 100.) metric limit_ns)
    (fun w ->
      match Slo.quantile_ns w metric q with
      | Some v when v > limit_ns ->
        Breach (Printf.sprintf "p%g=%dns limit=%dns" (q *. 100.) v limit_ns)
      | _ -> Ok)

let rate_floor ?fire_after ?clear_after ~name ~metric ~min_per_s () =
  spec ?fire_after ?clear_after ~name
    ~help:(Printf.sprintf "%s below %g/s" metric min_per_s)
    (fun w ->
      let r = Slo.rate_per_s w metric in
      if r < min_per_s then Breach (Printf.sprintf "rate=%g/s floor=%g/s" r min_per_s)
      else Ok)

let rate_ceiling ?fire_after ?clear_after ~name ~metric ~max_per_s () =
  spec ?fire_after ?clear_after ~name
    ~help:(Printf.sprintf "%s above %g/s" metric max_per_s)
    (fun w ->
      let r = Slo.rate_per_s w metric in
      if r > max_per_s then
        Breach (Printf.sprintf "rate=%g/s ceiling=%g/s" r max_per_s)
      else Ok)

let gauge_above ?fire_after ?clear_after ~name ~metric ~agg ~limit () =
  spec ?fire_after ?clear_after ~name
    ~help:(Printf.sprintf "%s above %g" metric limit)
    (fun w ->
      match Slo.value w agg metric with
      | Some v when v > limit -> Breach (Printf.sprintf "value=%g limit=%g" v limit)
      | _ -> Ok)

(* Rate-of-change: this window's delta exceeds [factor] x the previous
   window's (previous must be non-zero, so a cold start cannot breach). *)
let rate_jump ?fire_after ?clear_after ~name ~metric ~factor () =
  let prev = ref 0.0 in
  spec ?fire_after ?clear_after ~name
    ~help:(Printf.sprintf "%s window delta jumped by more than %gx" metric factor)
    (fun w ->
      let d = Slo.delta w metric in
      let p = !prev in
      prev := d;
      if p > 0.0 && d > p *. factor then
        Breach (Printf.sprintf "delta=%g prev=%g factor=%g" d p factor)
      else Ok)

let leader_flap ?fire_after ?clear_after ?(max_elections = 1) () =
  spec ?fire_after ?clear_after ~name:"leader_flap"
    ~help:
      (Printf.sprintf "more than %d leader election(s) in one window" max_elections)
    (fun w ->
      let d = Slo.delta w "mu_elections_total" in
      if d > float_of_int max_elections then
        Breach (Printf.sprintf "elections=%g in window" d)
      else Ok)

let quorum_loss ?fire_after ?clear_after () =
  spec ?fire_after ?clear_after ~name:"quorum_loss"
    ~help:"a leader is in a degraded (quorum-lost) window"
    (fun w ->
      match Slo.value w Slo.Max "mu_quorum_lost" with
      | Some v when v > 0.0 -> Breach "leader degraded: quorum lost"
      | _ -> Ok)

(* Commit stall: the cluster-wide first-undecided-offset stopped
   advancing while work has been committed before (fuo > 0). The
   closure keeps the previous window's fuo. A finished run keeps the
   rule breaching at the tail — deterministic, and exactly what a
   commit-progress watchdog should say about a cluster that stopped. *)
let quorum_stall ?(fire_after = 3) ?clear_after () =
  let prev = ref (-1.0) in
  spec ~fire_after ?clear_after ~name:"quorum_stall"
    ~help:"first undecided offset not advancing across windows"
    (fun w ->
      match Slo.value w Slo.Max "mu_fuo" with
      | Some v ->
        let p = !prev in
        prev := v;
        if v > 0.0 && v = p then Breach (Printf.sprintf "fuo stuck at %g" v) else Ok
      | None -> Ok)

(* Rejoin watchdog: a restart is in flight (restarts begun exceed
   parities reached) for too many consecutive windows. *)
let rejoin_lag ?(fire_after = 2) ?clear_after () =
  spec ~fire_after ?clear_after ~name:"rejoin_lag"
    ~help:"a restarted replica has not reached log parity"
    (fun w ->
      let restarts =
        match Slo.value w Slo.Sum "mu_restarts_total" with Some v -> v | None -> 0.0
      in
      let parities =
        (* histogram sample values are cumulative counts *)
        match Slo.value w Slo.Sum "mu_rejoin_time_to_parity_ns" with
        | Some v -> v
        | None -> 0.0
      in
      if restarts > parities then
        Breach (Printf.sprintf "rejoins in flight: %g" (restarts -. parities))
      else Ok)

let defaults () =
  [
    quantile_above ~name:"commit_p50" ~metric:"mu_commit_apply_ns" ~q:0.5
      ~limit_ns:20_000 ~fire_after:2 ~clear_after:2 ();
    quantile_above ~name:"commit_p99" ~metric:"mu_commit_apply_ns" ~q:0.99
      ~limit_ns:100_000 ~fire_after:2 ~clear_after:2 ();
    rate_floor ~name:"commit_rate_floor" ~metric:"mu_commit_apply_ns"
      ~min_per_s:1.0 ~fire_after:5 ~clear_after:1 ();
    rate_ceiling ~name:"shed_ceiling" ~metric:"mu_shed_requests_total"
      ~max_per_s:0.0 ~fire_after:1 ~clear_after:2 ();
    gauge_above ~name:"queue_depth" ~metric:"serving_queue_depth" ~agg:Slo.Max
      ~limit:64.0 ~fire_after:2 ~clear_after:2 ();
    rate_jump ~name:"replication_burst" ~metric:"mu_replication_latency_ns"
      ~factor:8.0 ~fire_after:1 ~clear_after:1 ();
    leader_flap ~fire_after:1 ~clear_after:2 ();
    quorum_loss ~fire_after:1 ~clear_after:1 ();
    quorum_stall ~fire_after:5 ~clear_after:1 ();
    rejoin_lag ~fire_after:2 ~clear_after:1 ();
  ]
