(* Observability self-profiling: what does each instrumentation layer
   cost the simulator?

   The workload is fixed and synthetic — [fibers] fibers each doing
   [sleeps] short virtual sleeps, every op wrapped in the hooks a real
   instrumented path hits (a provenance span scope, a trace counter) —
   and is run once per layer configuration. Wall-clock comes from the
   caller's [clock] (the library stays clock-free so simulation code
   can depend on it); allocation comes from [Gc.minor_words] deltas.

   The numbers are wall-clock measurements and therefore NOT
   deterministic — they go into bench results as volatile fields, never
   into byte-compared artifacts. *)

type layer = Baseline | Trace | Telemetry | Provenance | Monitor

let layer_name = function
  | Baseline -> "baseline"
  | Trace -> "trace"
  | Telemetry -> "telemetry"
  | Provenance -> "provenance"
  | Monitor -> "monitor"

let all_layers = [ Baseline; Trace; Telemetry; Provenance; Monitor ]

type sample = {
  layer : string;
  ops : int;  (* instrumented operations executed *)
  wall_s : float;
  ops_per_s : float;
  minor_words_per_op : float;
}

let gap_ns = 1_000

let run ?(fibers = 32) ?(sleeps = 2_000) ~clock layer =
  let e = Sim.Engine.create ~seed:1L () in
  let tracer = Trace.Tracer.create ~capacity:4096 () in
  (match layer with
  | Baseline -> ()
  | Trace -> Trace.Tracer.attach tracer e
  | Telemetry -> Sim.Engine.set_metrics e (Telemetry.Registry.create ())
  | Provenance ->
    Trace.Tracer.attach tracer e;
    Sim.Engine.set_provenance e true
  | Monitor ->
    let reg = Telemetry.Registry.create () in
    let sampler = Telemetry.Sampler.create reg ~interval:10_000 in
    Sim.Engine.set_metrics e reg;
    Telemetry.Sampler.start_epoch sampler;
    let _online = Online.attach e sampler in
    Sim.Engine.spawn e ~name:"telemetry-sampler" (fun () ->
        let rec loop () =
          Telemetry.Sampler.tick sampler ~now:(Sim.Engine.now e);
          Sim.Engine.sleep e (Telemetry.Sampler.interval sampler);
          loop ()
        in
        loop ()));
  for f = 1 to fibers do
    Sim.Engine.spawn e ~name:(Printf.sprintf "load-%d" f) (fun () ->
        (* hoisted so a disabled-layer iteration allocates nothing here *)
        let body () = Sim.Engine.sleep e gap_ns in
        for i = 1 to sleeps do
          Sim.Engine.span_scope e "op" body;
          Sim.Engine.trace_counter e ~cat:"load" "ops" ~value:i
        done)
  done;
  let horizon = (sleeps * gap_ns) + 1_000_000 in
  let w0 = Gc.minor_words () in
  let c0 = clock () in
  Sim.Engine.run ~until:horizon e;
  let wall_s = clock () -. c0 in
  let words = Gc.minor_words () -. w0 in
  let ops = fibers * sleeps in
  {
    layer = layer_name layer;
    ops;
    wall_s;
    ops_per_s = (if wall_s > 0.0 then float_of_int ops /. wall_s else 0.0);
    minor_words_per_op = words /. float_of_int ops;
  }

let run_all ?fibers ?sleeps ~clock () =
  List.map (fun l -> run ?fibers ?sleeps ~clock l) all_layers

let pp_sample ppf s =
  Fmt.pf ppf "%-11s %9.0f ops/s  %6.1f words/op" s.layer s.ops_per_s
    s.minor_words_per_op

let pp ppf samples = Fmt.pf ppf "@[<v>%a@]" (Fmt.list pp_sample) samples

(* --- run-attached sampling ----------------------------------------------

   The synthetic table above answers "what does a layer cost in
   isolation"; [Attached] answers "what did the layers cost in *this*
   run". It interposes on the seams the layers already expose — the
   probe sink (trace + provenance events), the sampler tick
   (telemetry), the online window evaluation (monitor), the engine's
   queue selfcost hook — and stride-samples wall-clock and minor-word
   deltas through each. Everything here is wall-clock and therefore
   volatile: report it, never byte-compare it. The virtual clock never
   sees any of it, so attaching cannot change the simulation. *)

module Attached = struct
  type acc = {
    mutable a_arm : int;
    mutable a_events : int; (* all events through the seam *)
    mutable a_sampled : int; (* events measured *)
    mutable a_wall : float; (* wall seconds over sampled events *)
    mutable a_words : float; (* minor words over sampled events, bias-corrected *)
  }

  type t = {
    clock : unit -> float;
    stride : int;
    gc_bias : float; (* minor words one empty measurement costs *)
    wall_bias : float; (* wall seconds one empty measurement costs *)
    trace : acc;
    prov : acc;
    tel : acc;
    mon : acc;
    mutable queue : Sim.Engine.selfcost option;
    mutable run_wall : float;
    mutable run_words : float;
  }

  (* [Gc.minor_words ()] itself allocates (a boxed float), as does the
     clock; calibrate the cost of an empty measurement and subtract it
     from every sample so a zero-allocation, tens-of-ns seam reports ~0
     rather than the measurement's own cost. *)
  let calibrate clock =
    let best_words = ref infinity in
    let best_wall = ref infinity in
    for _ = 1 to 128 do
      let w0 = Gc.minor_words () in
      let c0 = clock () in
      let wall = clock () -. c0 in
      let d = Gc.minor_words () -. w0 in
      if d < !best_words then best_words := d;
      if wall < !best_wall then best_wall := wall
    done;
    (!best_words, !best_wall)

  let fresh_acc stride =
    { a_arm = stride; a_events = 0; a_sampled = 0; a_wall = 0.0; a_words = 0.0 }

  let create ?(stride = 64) ~clock () =
    if stride <= 0 then invalid_arg "Overhead.Attached.create: stride must be positive";
    let gc_bias, wall_bias = calibrate clock in
    {
      clock;
      stride;
      gc_bias;
      wall_bias;
      trace = fresh_acc stride;
      prov = fresh_acc stride;
      tel = fresh_acc stride;
      mon = fresh_acc stride;
      queue = None;
      run_wall = 0.0;
      run_words = 0.0;
    }

  let measure t acc f =
    acc.a_events <- acc.a_events + 1;
    acc.a_arm <- acc.a_arm - 1;
    if acc.a_arm > 0 then f ()
    else begin
      acc.a_arm <- t.stride;
      let w0 = Gc.minor_words () in
      let c0 = t.clock () in
      f ();
      acc.a_wall <- acc.a_wall +. Float.max 0.0 (t.clock () -. c0 -. t.wall_bias);
      acc.a_words <- acc.a_words +. Float.max 0.0 (Gc.minor_words () -. w0 -. t.gc_bias);
      acc.a_sampled <- acc.a_sampled + 1
    end

  let attach t e =
    let sc = Sim.Engine.selfcost_create ~stride:t.stride ~clock:t.clock () in
    t.queue <- Some sc;
    Sim.Engine.set_selfcost e sc;
    (* Trace vs provenance split rides the existing sink: provenance
       events are cat="prov" instants by construction (DESIGN §13). *)
    match Sim.Probe.sink (Sim.Engine.probe e) with
    | None -> ()
    | Some f ->
      Sim.Probe.set_sink (Sim.Engine.probe e) (fun ev ->
          let acc = if ev.Sim.Probe.cat = "prov" then t.prov else t.trace in
          measure t acc (fun () -> f ev))

  let attach_sampler t sampler =
    Telemetry.Sampler.set_profile sampler (fun body -> measure t t.tel body)

  let attach_online t online = Online.set_profile online (fun body -> measure t t.mon body)

  let measure_run t f =
    let w0 = Gc.minor_words () in
    let c0 = t.clock () in
    let r = f () in
    t.run_wall <- t.run_wall +. (t.clock () -. c0);
    t.run_words <- t.run_words +. (Gc.minor_words () -. w0);
    r

  type row = {
    r_layer : string;
    r_events : int;
    r_sampled : int;
    r_wall_s : float; (* extrapolated to all events *)
    r_minor_words : float; (* extrapolated to all events *)
  }

  let extrapolate acc =
    if acc.a_sampled = 0 then (0.0, 0.0)
    else begin
      let k = float_of_int acc.a_events /. float_of_int acc.a_sampled in
      (acc.a_wall *. k, acc.a_words *. k)
    end

  let report t =
    let qops, qsampled, qwall =
      match t.queue with Some sc -> Sim.Engine.selfcost_queue sc | None -> (0, 0, 0.0)
    in
    let qwall_x =
      if qsampled = 0 then 0.0 else qwall *. float_of_int qops /. float_of_int qsampled
    in
    let layer name acc =
      let wall, words = extrapolate acc in
      {
        r_layer = name;
        r_events = acc.a_events;
        r_sampled = acc.a_sampled;
        r_wall_s = wall;
        r_minor_words = words;
      }
    in
    let rows =
      [
        {
          r_layer = "queue_ops";
          r_events = qops;
          r_sampled = qsampled;
          r_wall_s = qwall_x;
          r_minor_words = 0.0 (* queue push/pop are allocation-free *);
        };
        layer "trace" t.trace;
        layer "provenance" t.prov;
        layer "telemetry_sampler" t.tel;
        layer "monitor" t.mon;
      ]
    in
    let acc_wall = List.fold_left (fun a r -> a +. r.r_wall_s) 0.0 rows in
    let acc_words = List.fold_left (fun a r -> a +. r.r_minor_words) 0.0 rows in
    (* Engine dispatch is the remainder of the whole-run measurement:
       everything not attributed to an instrumented seam (event
       dispatch, fiber bodies, protocol code). *)
    let dispatch =
      {
        r_layer = "engine_dispatch";
        r_events = 0;
        r_sampled = 0;
        r_wall_s = Float.max 0.0 (t.run_wall -. acc_wall);
        r_minor_words = Float.max 0.0 (t.run_words -. acc_words);
      }
    in
    let total =
      {
        r_layer = "run_total";
        r_events = 0;
        r_sampled = 0;
        r_wall_s = t.run_wall;
        r_minor_words = t.run_words;
      }
    in
    total :: dispatch :: rows

  let pp_row ppf r =
    if r.r_events > 0 then
      Fmt.pf ppf "%-18s %10.6f s %12.0f words  (%d events, %d sampled)" r.r_layer
        r.r_wall_s r.r_minor_words r.r_events r.r_sampled
    else Fmt.pf ppf "%-18s %10.6f s %12.0f words" r.r_layer r.r_wall_s r.r_minor_words

  let pp ppf rows = Fmt.pf ppf "@[<v>%a@]" (Fmt.list pp_row) rows
end
