(* Observability self-profiling: what does each instrumentation layer
   cost the simulator?

   The workload is fixed and synthetic — [fibers] fibers each doing
   [sleeps] short virtual sleeps, every op wrapped in the hooks a real
   instrumented path hits (a provenance span scope, a trace counter) —
   and is run once per layer configuration. Wall-clock comes from the
   caller's [clock] (the library stays clock-free so simulation code
   can depend on it); allocation comes from [Gc.minor_words] deltas.

   The numbers are wall-clock measurements and therefore NOT
   deterministic — they go into bench results as volatile fields, never
   into byte-compared artifacts. *)

type layer = Baseline | Trace | Telemetry | Provenance | Monitor

let layer_name = function
  | Baseline -> "baseline"
  | Trace -> "trace"
  | Telemetry -> "telemetry"
  | Provenance -> "provenance"
  | Monitor -> "monitor"

let all_layers = [ Baseline; Trace; Telemetry; Provenance; Monitor ]

type sample = {
  layer : string;
  ops : int;  (* instrumented operations executed *)
  wall_s : float;
  ops_per_s : float;
  minor_words_per_op : float;
}

let gap_ns = 1_000

let run ?(fibers = 32) ?(sleeps = 2_000) ~clock layer =
  let e = Sim.Engine.create ~seed:1L () in
  let tracer = Trace.Tracer.create ~capacity:4096 () in
  (match layer with
  | Baseline -> ()
  | Trace -> Trace.Tracer.attach tracer e
  | Telemetry -> Sim.Engine.set_metrics e (Telemetry.Registry.create ())
  | Provenance ->
    Trace.Tracer.attach tracer e;
    Sim.Engine.set_provenance e true
  | Monitor ->
    let reg = Telemetry.Registry.create () in
    let sampler = Telemetry.Sampler.create reg ~interval:10_000 in
    Sim.Engine.set_metrics e reg;
    Telemetry.Sampler.start_epoch sampler;
    let _online = Online.attach e sampler in
    Sim.Engine.spawn e ~name:"telemetry-sampler" (fun () ->
        let rec loop () =
          Telemetry.Sampler.tick sampler ~now:(Sim.Engine.now e);
          Sim.Engine.sleep e (Telemetry.Sampler.interval sampler);
          loop ()
        in
        loop ()));
  for f = 1 to fibers do
    Sim.Engine.spawn e ~name:(Printf.sprintf "load-%d" f) (fun () ->
        (* hoisted so a disabled-layer iteration allocates nothing here *)
        let body () = Sim.Engine.sleep e gap_ns in
        for i = 1 to sleeps do
          Sim.Engine.span_scope e "op" body;
          Sim.Engine.trace_counter e ~cat:"load" "ops" ~value:i
        done)
  done;
  let horizon = (sleeps * gap_ns) + 1_000_000 in
  let w0 = Gc.minor_words () in
  let c0 = clock () in
  Sim.Engine.run ~until:horizon e;
  let wall_s = clock () -. c0 in
  let words = Gc.minor_words () -. w0 in
  let ops = fibers * sleeps in
  {
    layer = layer_name layer;
    ops;
    wall_s;
    ops_per_s = (if wall_s > 0.0 then float_of_int ops /. wall_s else 0.0);
    minor_words_per_op = words /. float_of_int ops;
  }

let run_all ?fibers ?sleeps ~clock () =
  List.map (fun l -> run ?fibers ?sleeps ~clock l) all_layers

let pp_sample ppf s =
  Fmt.pf ppf "%-11s %9.0f ops/s  %6.1f words/op" s.layer s.ops_per_s
    s.minor_words_per_op

let pp ppf samples = Fmt.pf ppf "@[<v>%a@]" (Fmt.list pp_sample) samples
