(** Streaming SLO windows over telemetry snapshots.

    An evaluator consumes the (metric, value) snapshots that
    {!Telemetry.Sampler} delivers to its subscribers and, at each
    window boundary the orchestrator picks, produces a {!window}: the
    closing snapshot plus, per metric name, the counter delta and the
    windowed latency distribution since the previous close (cumulative
    histogram snapshots diffed with {!Telemetry.Hdr.diff}, merged
    across label sets).

    Window boundaries are virtual-time instants chosen by the caller,
    and evaluation reads no wall clock and no PRNG — equal seeds
    evaluate byte-identical window sequences. *)

type t
(** Evaluator state: the previous close's per-series values and
    histogram snapshots. *)

val create : unit -> t

type window

val advance :
  t ->
  epoch:int ->
  t0:int ->
  t1:int ->
  (Telemetry.Registry.metric * float) list ->
  window
(** Close the window [t0, t1) with the given snapshot (the sampler's
    subscriber payload) and advance the evaluator's baseline to it. *)

type agg = Max | Sum

val epoch : window -> int
val index : window -> int
(** Window ordinal since {!create} (0-based). *)

val t0 : window -> int
val t1 : window -> int
val span_ns : window -> int

val value : window -> agg -> string -> float option
(** Aggregate of the metric's current value across its label sets
    ([Max] for gauges like queue depth, [Sum] for totals); [None] when
    the metric has no series yet. *)

val delta : window -> string -> float
(** Sum over the metric's series of (value at close − value at previous
    close). Meaningful for counters (and histogram counts); [0.] when
    absent. *)

val rate_per_s : window -> string -> float
(** [delta] normalized to events per (virtual) second. *)

val hist : window -> string -> Telemetry.Hdr.t option
(** The values recorded into the named histogram *during* this window,
    merged across label sets; [None] when none were. *)

val quantile_ns : window -> string -> float -> int option
