(* Alert log: the chronological firing/clearing edges a monitor
   produced, with enough context (virtual time, epoch, window ordinal)
   to line an alert up against a trace. The JSON export is hand-built
   in insertion order from integers and escaped strings only, so
   equal-seed runs serialize byte-identically. *)

type entry = {
  seq : int;
  at : int;  (* virtual ns *)
  epoch : int;
  window : int;  (* Slo window ordinal *)
  rule : string;
  edge : [ `Fire | `Clear ];
  detail : string;
}

type t = { mutable rev : entry list; mutable n : int; firing : (string, unit) Hashtbl.t }

let create () = { rev = []; n = 0; firing = Hashtbl.create 8 }

let add t ~at ~epoch ~window ~rule ~edge ~detail =
  let e = { seq = t.n; at; epoch; window; rule; edge; detail } in
  t.n <- t.n + 1;
  t.rev <- e :: t.rev;
  (match edge with
  | `Fire -> Hashtbl.replace t.firing rule ()
  | `Clear -> Hashtbl.remove t.firing rule);
  e

let entries t = List.rev t.rev
let length t = t.n

let firing t =
  Hashtbl.fold (fun k () acc -> k :: acc) t.firing [] |> List.sort compare

let edge_name = function `Fire -> "fire" | `Clear -> "clear"

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json t =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\"schema\":\"mu-monitor-log/1\",\"entries\":[";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"seq\":%d,\"at\":%d,\"epoch\":%d,\"window\":%d,\"rule\":\"%s\",\"edge\":\"%s\",\"detail\":\"%s\"}"
           e.seq e.at e.epoch e.window (escape e.rule) (edge_name e.edge)
           (escape e.detail)))
    (entries t);
  Buffer.add_string b "],\"firing\":[";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_char b '"';
      Buffer.add_string b (escape r);
      Buffer.add_char b '"')
    (firing t);
  Buffer.add_string b "]}";
  Buffer.contents b

let pp_entry ppf e =
  Fmt.pf ppf "[%8dus] %-5s %-18s %s"
    (e.at / 1000)
    (edge_name e.edge) e.rule e.detail

let pp ppf t =
  let es = entries t in
  if es = [] then Fmt.string ppf "no alerts"
  else Fmt.pf ppf "@[<v>%a@]" (Fmt.list pp_entry) es
