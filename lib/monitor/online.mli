(** Online monitor orchestrator.

    [attach engine sampler] subscribes SLO evaluation to the sampler's
    virtual-time ticks: a window closes on the first tick at or past
    each [window_ns] boundary (default: the sampler interval, i.e.
    every tick), every rule is stepped, and state transitions are
    recorded in the {!Log}, emitted onto the trace ring as
    [cat="alert"] instants (only when tracing is on), and handed to
    {!on_alert}.

    The monitor consumes no PRNG and schedules no engine events of its
    own — it rides the sampler fiber — so attaching it never perturbs
    the protocol schedule, and equal-seed monitored runs produce
    byte-identical logs. *)

type t

val attach :
  ?window_ns:int -> ?rules:Rules.spec list -> Sim.Engine.t -> Telemetry.Sampler.t -> t
(** The sampler must already have its epoch open (the run harnesses
    call [start_epoch] before the [on_engine] hook); ticks from later
    epochs — a shared sampler re-attached to a newer engine — are
    ignored. [rules] defaults to {!Rules.defaults}. *)

val log : t -> Log.t
val rules : t -> Rules.t list
val firing : t -> string list

val windows : t -> int
(** Windows evaluated so far. *)

val window_ns : t -> int

val on_alert : t -> (Log.entry -> unit) -> unit
(** Called on every firing/clearing edge, at the virtual time of the
    window close (the live-dashboard hook). *)

val on_window : t -> (Slo.window -> Rules.t list -> unit) -> unit
(** Called after every window evaluation with the closed window and the
    (already stepped) rules. *)

val set_profile : t -> ((unit -> unit) -> unit) -> unit
(** Install a self-cost wrapper: every subsequent window evaluation
    runs inside it, so a profiler can attribute its wall-clock and
    allocation to the monitor layer. The wrapper must call its argument
    exactly once. *)

val clear_profile : t -> unit
