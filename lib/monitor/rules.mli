(** Alert rules with hysteresis.

    A rule is a named check evaluated once per {!Slo.window}. It fires
    after [fire_after] consecutive breaching windows and clears after
    [clear_after] consecutive clean ones, so a single noisy window
    cannot flap an alert. Checks read only the window (two keep one
    window of history in a closure), making equal-seed runs produce
    identical edge sequences. *)

type outcome = Ok | Breach of string  (** [Breach detail] *)

type spec = {
  name : string;
  help : string;
  fire_after : int;  (** consecutive breaching windows before firing *)
  clear_after : int;  (** consecutive clean windows before clearing *)
  check : Slo.window -> outcome;
}

type t
(** A rule instance: spec plus hysteresis state. *)

type edge = [ `Fire | `Clear ]

val make : spec -> t
(** Raises [Invalid_argument] unless [fire_after] and [clear_after] are
    both >= 1. *)

val name : t -> string
val help : t -> string
val firing : t -> bool

val step : t -> Slo.window -> (edge * string) option
(** Evaluate one window; [Some] only on a state transition, carrying
    the breach detail (on [`Fire]) or ["recovered"] (on [`Clear]). *)

(** {1 Built-in checks}

    Constructors return a {!spec}; rules with closure state
    (rate-of-change, stall) are fresh per call, so build a new list per
    monitor. Checks on absent metrics evaluate to [Ok]. *)

val quantile_above :
  ?fire_after:int ->
  ?clear_after:int ->
  name:string ->
  metric:string ->
  q:float ->
  limit_ns:int ->
  unit ->
  spec
(** Windowed quantile of a latency histogram above a band limit; clean
    when the window recorded nothing. *)

val rate_floor :
  ?fire_after:int ->
  ?clear_after:int ->
  name:string ->
  metric:string ->
  min_per_s:float ->
  unit ->
  spec
(** Counter (or histogram-count) rate below a floor, in events per
    virtual second. *)

val rate_ceiling :
  ?fire_after:int ->
  ?clear_after:int ->
  name:string ->
  metric:string ->
  max_per_s:float ->
  unit ->
  spec

val gauge_above :
  ?fire_after:int ->
  ?clear_after:int ->
  name:string ->
  metric:string ->
  agg:Slo.agg ->
  limit:float ->
  unit ->
  spec

val rate_jump :
  ?fire_after:int ->
  ?clear_after:int ->
  name:string ->
  metric:string ->
  factor:float ->
  unit ->
  spec
(** Rate of change: this window's delta exceeds [factor] x the previous
    window's non-zero delta. *)

val leader_flap :
  ?fire_after:int -> ?clear_after:int -> ?max_elections:int -> unit -> spec
(** More than [max_elections] (default 1) elections in one window. *)

val quorum_loss : ?fire_after:int -> ?clear_after:int -> unit -> spec
(** [mu_quorum_lost] raised on any replica — a degraded leader. *)

val quorum_stall : ?fire_after:int -> ?clear_after:int -> unit -> spec
(** Cluster-wide first-undecided-offset not advancing across windows
    (while non-zero). Default [fire_after] 3. A finished run keeps this
    breaching at the tail — deterministic, and what a commit-progress
    watchdog should say about a cluster that stopped. *)

val rejoin_lag : ?fire_after:int -> ?clear_after:int -> unit -> spec
(** A restart begun ([mu_restarts_total]) with no matching log parity
    ([mu_rejoin_time_to_parity_ns] count) for [fire_after] (default 2)
    consecutive windows. *)

val defaults : unit -> spec list
(** The standard rule set: commit p50/p99 latency bands, commit-rate
    floor, shed-rate ceiling, serving queue depth, replication-latency
    burst, leader flap, quorum loss, quorum stall, rejoin lag. *)
