(** Observability self-profiling.

    Runs a fixed synthetic fiber workload (every op passes through a
    provenance span scope and a trace counter hook) once per
    instrumentation layer and reports wall-clock throughput plus
    [Gc.minor_words] allocation per op. The deltas between layers are
    the per-layer observability overhead; the [baseline] row doubles as
    the events/sec floor the bench job checks.

    Wall-clock numbers come from the caller's [clock] (e.g.
    [Unix.gettimeofday]) and are {e not} deterministic — they belong in
    volatile bench fields, never in byte-compared artifacts. *)

type layer = Baseline | Trace | Telemetry | Provenance | Monitor

val layer_name : layer -> string
val all_layers : layer list

type sample = {
  layer : string;
  ops : int;
  wall_s : float;
  ops_per_s : float;
  minor_words_per_op : float;
}

val run : ?fibers:int -> ?sleeps:int -> clock:(unit -> float) -> layer -> sample
(** Default workload: 32 fibers x 2000 sleeps. *)

val run_all :
  ?fibers:int -> ?sleeps:int -> clock:(unit -> float) -> unit -> sample list
(** One sample per {!all_layers}, in order (baseline first). *)

val pp_sample : sample Fmt.t
val pp : sample list Fmt.t

(** Run-attached self-cost sampling: per-subsystem wall-clock and
    [Gc.minor_words] attribution for a {e real} run, not the synthetic
    workload above. Interposes on the seams the observability layers
    already expose (probe sink, sampler tick, online window, engine
    queue hook) with stride sampling. All numbers are wall-clock and
    volatile — report them, never byte-compare them; the virtual clock
    never observes any of it. *)
module Attached : sig
  type t

  val create : ?stride:int -> clock:(unit -> float) -> unit -> t
  (** [stride] (default 64): measure one event in [stride] per seam.
      [clock] is wall seconds (e.g. [Unix.gettimeofday]); calibration of
      the measurement's own allocation happens here. *)

  val attach : t -> Sim.Engine.t -> unit
  (** Hook the engine's queue selfcost and wrap its probe sink (if one
      is installed — attach {e after} the tracer). Trace and provenance
      cost split on the event category (provenance events are
      [cat="prov"]). *)

  val attach_sampler : t -> Telemetry.Sampler.t -> unit
  (** Attribute sampler ticks to the telemetry layer. *)

  val attach_online : t -> Online.t -> unit
  (** Attribute window evaluations to the monitor layer. *)

  val measure_run : t -> (unit -> 'a) -> 'a
  (** Measure a whole run (wall + minor words); the report's
      [engine_dispatch] row is this minus every attributed seam. May be
      called several times; measurements accumulate. *)

  type row = {
    r_layer : string;
    r_events : int;
    r_sampled : int;
    r_wall_s : float;
    r_minor_words : float;
  }

  val report : t -> row list
  (** [run_total; engine_dispatch; queue_ops; trace; provenance;
      telemetry_sampler; monitor], wall and words extrapolated from the
      sampled fraction to all events. *)

  val pp_row : row Fmt.t
  val pp : row list Fmt.t
end
