(** Observability self-profiling.

    Runs a fixed synthetic fiber workload (every op passes through a
    provenance span scope and a trace counter hook) once per
    instrumentation layer and reports wall-clock throughput plus
    [Gc.minor_words] allocation per op. The deltas between layers are
    the per-layer observability overhead; the [baseline] row doubles as
    the events/sec floor the bench job checks.

    Wall-clock numbers come from the caller's [clock] (e.g.
    [Unix.gettimeofday]) and are {e not} deterministic — they belong in
    volatile bench fields, never in byte-compared artifacts. *)

type layer = Baseline | Trace | Telemetry | Provenance | Monitor

val layer_name : layer -> string
val all_layers : layer list

type sample = {
  layer : string;
  ops : int;
  wall_s : float;
  ops_per_s : float;
  minor_words_per_op : float;
}

val run : ?fibers:int -> ?sleeps:int -> clock:(unit -> float) -> layer -> sample
(** Default workload: 32 fibers x 2000 sleeps. *)

val run_all :
  ?fibers:int -> ?sleeps:int -> clock:(unit -> float) -> unit -> sample list
(** One sample per {!all_layers}, in order (baseline first). *)

val pp_sample : sample Fmt.t
val pp : sample list Fmt.t
