(* Online monitor orchestrator.

   Attaches to an engine + sampler pair: it subscribes to the sampler
   (so it sees exactly the snapshots the sampler stores, at the
   sampler's virtual-time cadence, one registry scan per tick) and
   closes an SLO window on the first tick at or past each window
   boundary. At a close it steps every rule; state transitions land in
   the Monitor.Log, on the trace ring as cat="alert" instants (only
   when tracing is on), and in the caller's notify callback (the live
   dashboard).

   Determinism: the monitor consumes no PRNG and adds no engine events
   of its own (it rides the sampler fiber), so a monitored run's
   protocol schedule equals the metrics-only run's, and a monitor-off
   run is byte-identical to seed. *)

type t = {
  engine : Sim.Engine.t;
  slo : Slo.t;
  rules : Rules.t list;
  log : Log.t;
  window_ns : int;
  epoch : int;  (* sampler epoch this monitor watches; others are ignored *)
  mutable win_start : int;
  mutable windows : int;
  mutable notify : (Log.entry -> unit) option;
  mutable on_window : (Slo.window -> Rules.t list -> unit) option;
  (* Self-cost hook: when set, every window evaluation runs through
     this wrapper so the profile plane can attribute its wall-clock and
     allocation to the monitor layer. *)
  mutable prof : ((unit -> unit) -> unit) option;
}

let attach ?window_ns ?rules:specs engine sampler =
  let window_ns =
    match window_ns with Some w -> w | None -> Telemetry.Sampler.interval sampler
  in
  if window_ns <= 0 then invalid_arg "Online.attach: window_ns must be positive";
  let specs = match specs with Some s -> s | None -> Rules.defaults () in
  let t =
    {
      engine;
      slo = Slo.create ();
      rules = List.map Rules.make specs;
      log = Log.create ();
      window_ns;
      epoch = Telemetry.Sampler.current_epoch sampler;
      win_start = 0;
      windows = 0;
      notify = None;
      on_window = None;
      prof = None;
    }
  in
  let close_window ~now ~epoch samples =
    let w = Slo.advance t.slo ~epoch ~t0:t.win_start ~t1:now samples in
    t.win_start <- now;
    t.windows <- t.windows + 1;
    List.iter
      (fun r ->
        match Rules.step r w with
        | None -> ()
        | Some (edge, detail) ->
          let entry =
            Log.add t.log ~at:now ~epoch ~window:(Slo.index w)
              ~rule:(Rules.name r) ~edge ~detail
          in
          if Sim.Engine.traced t.engine then
            Sim.Engine.trace_instant t.engine ~cat:"alert"
              ~args:
                [
                  ("rule", Rules.name r);
                  ("edge", (match edge with `Fire -> "fire" | `Clear -> "clear"));
                  ("detail", detail);
                ]
              "alert";
          (match t.notify with Some f -> f entry | None -> ()))
      t.rules;
    match t.on_window with Some f -> f w t.rules | None -> ()
  in
  Telemetry.Sampler.subscribe sampler (fun ~now ~epoch samples ->
      (* A shared sampler keeps ticking for engines built after this
         one; windows of a foreign epoch belong to a different run. *)
      if epoch = t.epoch && now - t.win_start >= t.window_ns then
        match t.prof with
        | None -> close_window ~now ~epoch samples
        | Some wrap -> wrap (fun () -> close_window ~now ~epoch samples));
  t

let log t = t.log
let rules t = t.rules
let windows t = t.windows
let window_ns t = t.window_ns
let on_alert t f = t.notify <- Some f
let on_window t f = t.on_window <- Some f
let set_profile t wrap = t.prof <- Some wrap
let clear_profile t = t.prof <- None

let firing t = Log.firing t.log
