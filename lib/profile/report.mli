(** Top-N report over folded stacks ({!Vt.folded} output).

    Per-frame self (exclusive, frame is leaf) and total (frame appears
    anywhere on the stack, counted once per stack) nanoseconds, with
    deterministic ordering: descending ns, then frame name. *)

type entry = { frame : string; self_ns : int; total_ns : int }

val of_folded : (string list * int) list -> entry list
(** Sorted by frame name (as {!Trace.Attrib.frame_totals}). *)

val by_self : entry list -> entry list
val by_total : entry list -> entry list

val pp : ?top:int -> Format.formatter -> (string list * int) list -> unit
(** [top] defaults to 15. *)

val to_string : ?top:int -> (string list * int) list -> string
