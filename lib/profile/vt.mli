(** Whole-run virtual-time profiler.

    Attaches to an engine's profiler hooks and attributes every
    virtual-nanosecond of the run to the identity — host, fiber, open
    provenance-span stack — that scheduled the event ending that
    interval. Attribution is exact, not sampled: the bucket values are
    exclusive nanoseconds and (with the ["(idle)"] bucket for virtual
    time no identity claimed) sum to the run's span to the nanosecond.

    Deterministic: attribution consumes no PRNG and emits no events, so
    equal seeds give byte-identical {!to_folded_string} and
    {!to_speedscope_string} output, and attaching a profiler does not
    change the simulation itself (trace bytes and post-run PRNG state
    are unchanged).

    Provenance spans appear as stack frames only when provenance ids
    are maintained — [Engine.set_provenance e true]; a probe sink is
    {e not} required (the engine maintains span stacks whenever a
    profiler is attached). *)

type t

val attach : Sim.Engine.t -> t
(** Register the profiler on the engine. Attach before scheduling any
    work: events scheduled before attach are unwrapped and their
    intervals fall into the ["(idle)"] bucket. At most one profiler per
    engine (a second [attach] replaces the first). *)

val finish : t -> unit
(** Close the profile: virtual time after the last event goes to
    ["(idle)"], and the engine's profiler is detached. Idempotent.
    Must be called before exporting. *)

val span_ns : t -> int
(** Virtual nanoseconds covered: [Engine.now] at {!finish} minus
    [Engine.now] at {!attach}. Equals the sum of all folded weights. *)

val idle_ns : t -> int
(** The ["(idle)"] bucket (valid after {!finish}). *)

(** {1 Exports}

    Folded entries are [(frames, exclusive_ns)] with frames root-first:
    host name (or ["(engine)"] for engine-internal events), fiber name
    (or ["(scheduler)"]), then open provenance spans outermost-first.
    Entries are merged by rendered stack and sorted lexicographically,
    so the export is byte-deterministic. *)

val folded_of : t -> (string list * int) list
(** Folded entries for one engine (call after {!finish}). *)

val folded : t list -> (string list * int) list
(** Merge across engines (e.g. one per replica host process). *)

val total_ns : (string list * int) list -> int

val to_folded_string : (string list * int) list -> string
(** Flamegraph collapsed-stack text: ["frame;frame;frame <ns>\n"] per
    entry, ready for [flamegraph.pl] / [inferno-flamegraph]. [';'] in
    frame names is replaced by [',']. *)

val to_speedscope_string : ?name:string -> (string list * int) list -> string
(** Speedscope file-format JSON (one ["sampled"] profile, unit
    nanoseconds, weights = exclusive ns). *)

val write_file : string -> string -> unit
(** [write_file path contents]. *)
