(* Whole-run virtual-time profiler (domain 1 of DESIGN §18).

   Rides the engine's profiler hooks: the interval between consecutive
   events is attributed to the identity that scheduled the
   interval-ending event — (host, fiber, open provenance-span stack)
   captured inside [Engine.schedule]. Each interval lands in exactly
   one bucket, so bucket values are *exclusive* virtual nanoseconds and
   their sum (plus the idle bucket) equals the run's span to the
   nanosecond: integers in, integers out, no sampling.

   Determinism: attribution consumes no PRNG and emits no events, keys
   are rendered to strings and sorted before export, and every exported
   number is virtual time — equal seeds give byte-identical folded and
   speedscope documents. *)

type key = { k_pid : int; k_tid : int; k_spans : int list (* innermost first *) }

type t = {
  engine : Sim.Engine.t;
  t0 : int; (* virtual time at attach *)
  mutable last : int; (* clock at the last prof_event *)
  mutable pending : int; (* interval not yet claimed *)
  tbl : (key, int ref) Hashtbl.t;
  fibers : (int, string) Hashtbl.t; (* tid -> name (first spawn wins) *)
  hosts : (int, string) Hashtbl.t; (* pid -> name *)
  spans : (int, string) Hashtbl.t; (* span id -> name *)
  mutable idle : int; (* tail + intervals claimed by no wrapped event *)
  mutable finished : bool;
}

let attach e =
  let now = Sim.Engine.now e in
  let t =
    {
      engine = e;
      t0 = now;
      last = now;
      pending = 0;
      tbl = Hashtbl.create 256;
      fibers = Hashtbl.create 64;
      hosts = Hashtbl.create 16;
      spans = Hashtbl.create 256;
      idle = 0;
      finished = false;
    }
  in
  Sim.Engine.set_profiler e
    {
      Sim.Engine.prof_event =
        (fun ~now ->
          t.pending <- t.pending + (now - t.last);
          t.last <- now);
      prof_attr =
        (fun ~pid ~tid ~spans ->
          if t.pending > 0 then begin
            let k = { k_pid = pid; k_tid = tid; k_spans = spans } in
            (match Hashtbl.find_opt t.tbl k with
            | Some r -> r := !r + t.pending
            | None -> Hashtbl.add t.tbl k (ref t.pending));
            t.pending <- 0
          end);
      prof_fiber =
        (fun ~tid ~pid:_ ~name ->
          if not (Hashtbl.mem t.fibers tid) then Hashtbl.add t.fibers tid name);
      prof_span = (fun ~id ~name -> Hashtbl.replace t.spans id name);
      prof_host = (fun ~pid ~name -> Hashtbl.replace t.hosts pid name);
    };
  t

let finish t =
  if not t.finished then begin
    t.finished <- true;
    let now = Sim.Engine.now t.engine in
    (* Tail after the last event (e.g. [run ~until] advancing the clock
       past a drained queue) plus any interval whose ending event was
       scheduled before attach: both belong to no identity. *)
    t.pending <- t.pending + (now - t.last);
    t.last <- now;
    t.idle <- t.idle + t.pending;
    t.pending <- 0;
    Sim.Engine.clear_profiler t.engine
  end

let span_ns t = t.last - t.t0
let idle_ns t = t.idle

(* --- rendering ----------------------------------------------------------- *)

let host_frame t pid =
  if pid < 0 then "(engine)"
  else
    match Hashtbl.find_opt t.hosts pid with
    | Some n -> n
    | None -> Printf.sprintf "host-%d" pid

let fiber_frame t tid =
  if tid = 0 then "(scheduler)"
  else
    match Hashtbl.find_opt t.fibers tid with
    | Some n -> n
    | None -> Printf.sprintf "fiber-%d" tid

let span_frame t id =
  match Hashtbl.find_opt t.spans id with
  | Some n -> n
  | None -> Printf.sprintf "span-%d" id

(* Root-first frame list: host; fiber; outermost span; ...; innermost. *)
let frames_of_key t k =
  host_frame t k.k_pid :: fiber_frame t k.k_tid
  :: List.rev_map (span_frame t) k.k_spans

let idle_stack = [ "(idle)" ]

(* Folded entries, root-first, merged by rendered stack (two fibers
   with the same name fold together, as a flame graph would), sorted by
   stack for byte-determinism. *)
let folded_of t =
  if not t.finished then invalid_arg "Profile.Vt: finish before exporting";
  let merged : (string list, int ref) Hashtbl.t = Hashtbl.create 256 in
  let add frames v =
    if v > 0 then
      match Hashtbl.find_opt merged frames with
      | Some r -> r := !r + v
      | None -> Hashtbl.add merged frames (ref v)
  in
  Hashtbl.iter (fun k v -> add (frames_of_key t k) !v) t.tbl;
  add idle_stack t.idle;
  Hashtbl.fold (fun frames v acc -> (frames, !v) :: acc) merged []
  |> List.sort compare

let folded ts = List.concat_map folded_of ts |> List.sort compare

let total_ns folded = List.fold_left (fun a (_, v) -> a + v) 0 folded

(* Flamegraph collapsed format: "frame;frame;frame weight" per line.
   Frames are ';'-separated, so strip ';' from frame names. *)
let clean f = String.map (fun c -> if c = ';' then ',' else c) f

let to_folded_string folded =
  let b = Buffer.create 4096 in
  List.iter
    (fun (frames, v) ->
      Buffer.add_string b (String.concat ";" (List.map clean frames));
      Buffer.add_char b ' ';
      Buffer.add_string b (string_of_int v);
      Buffer.add_char b '\n')
    folded;
  Buffer.contents b

(* Speedscope "sampled" profile: one sample per folded stack with its
   exclusive nanoseconds as weight. Built on the repo's own JSON codec
   (printing is deterministic: construction order, stable numbers). *)
let to_speedscope_string ?(name = "mu virtual time") folded =
  let module J = Faults.Json in
  let frame_index : (string, int) Hashtbl.t = Hashtbl.create 256 in
  let frames_rev = ref [] in
  let n_frames = ref 0 in
  let index f =
    match Hashtbl.find_opt frame_index f with
    | Some i -> i
    | None ->
      let i = !n_frames in
      Hashtbl.add frame_index f i;
      frames_rev := f :: !frames_rev;
      incr n_frames;
      i
  in
  let samples =
    List.map (fun (frames, _) -> J.List (List.map (fun f -> J.num_of_int (index f)) frames))
      folded
  in
  let weights = List.map (fun (_, v) -> J.num_of_int v) folded in
  let total = total_ns folded in
  let doc =
    J.Obj
      [
        ("$schema", J.Str "https://www.speedscope.app/file-format-schema.json");
        ( "shared",
          J.Obj
            [
              ( "frames",
                J.List
                  (List.rev_map (fun f -> J.Obj [ ("name", J.Str f) ]) !frames_rev) );
            ] );
        ( "profiles",
          J.List
            [
              J.Obj
                [
                  ("type", J.Str "sampled");
                  ("name", J.Str name);
                  ("unit", J.Str "nanoseconds");
                  ("startValue", J.num_of_int 0);
                  ("endValue", J.num_of_int total);
                  ("samples", J.List samples);
                  ("weights", J.List weights);
                ];
            ] );
        ("name", J.Str name);
        ("activeProfileIndex", J.num_of_int 0);
        ("exporter", J.Str "mu-profile");
      ]
  in
  J.to_string doc ^ "\n"

let write_file path s =
  let oc = open_out path in
  output_string oc s;
  close_out oc
