(* Top-N textual report over folded stacks.

   Self = exclusive ns attributed to a frame when it is the leaf;
   total = ns of every stack the frame appears on (counted once per
   stack, so recursion does not double-count). Ties break by frame name
   so the rendering is deterministic. *)

type entry = { frame : string; self_ns : int; total_ns : int }

let of_folded folded =
  Trace.Attrib.frame_totals folded
  |> List.map (fun (frame, self_ns, total_ns) -> { frame; self_ns; total_ns })

let by_self entries =
  List.sort
    (fun a b ->
      match compare b.self_ns a.self_ns with 0 -> compare a.frame b.frame | c -> c)
    entries

let by_total entries =
  List.sort
    (fun a b ->
      match compare b.total_ns a.total_ns with 0 -> compare a.frame b.frame | c -> c)
    entries

let take n l =
  let rec go n = function
    | [] -> []
    | _ when n <= 0 -> []
    | x :: tl -> x :: go (n - 1) tl
  in
  go n l

let pct part whole = if whole = 0 then 0.0 else 100.0 *. float_of_int part /. float_of_int whole

let pp_table ppf ~total entries =
  List.iter
    (fun e ->
      Fmt.pf ppf "%12d ns %6.2f%%  %12d ns %6.2f%%  %s@."
        e.self_ns (pct e.self_ns total) e.total_ns (pct e.total_ns total) e.frame)
    entries

let pp ?(top = 15) ppf folded =
  let total = Vt.total_ns folded in
  let entries = of_folded folded in
  Fmt.pf ppf "virtual-time profile: %d ns over %d stacks, %d frames@." total
    (List.length folded) (List.length entries);
  Fmt.pf ppf "%14s %7s  %14s %7s  %s@." "self" "" "total" "" "frame";
  Fmt.pf ppf "-- top %d by self --@." top;
  pp_table ppf ~total (take top (by_self entries));
  Fmt.pf ppf "-- top %d by total --@." top;
  pp_table ppf ~total (take top (by_total entries))

let to_string ?top folded = Fmt.str "%a" (fun ppf -> pp ?top ppf) folded
