(* Perf-regression gate over mu-bench-results/1 documents.

   Compares the deterministic fields of a current bench results file
   against a baseline (normally the last BENCH_history.jsonl line) with
   per-field worse-direction tolerances. Volatile wall-clock fields
   (ops_per_s, events_per_sec, queue ops/s, selfcost rows) are never
   compared — they measure the box, not the code. Fields missing on
   either side are skipped and listed, not failed, so baselines from
   partial runs (--only) stay usable. *)

module J = Faults.Json

type direction = [ `Lower_is_better | `Higher_is_better ]

type rule = { r_path : string list; r_dir : direction; r_tol_pct : float }

(* Latency percentiles may drift +10% before we call it a regression;
   throughput may drop 15%; allocation counts may grow 15%. The profile
   span is a whole-run virtual-time envelope, so it gets more slack. *)
let default_rules =
  [
    { r_path = [ "replication_latency_ns"; "p50" ]; r_dir = `Lower_is_better; r_tol_pct = 10.0 };
    { r_path = [ "replication_latency_ns"; "p99" ]; r_dir = `Lower_is_better; r_tol_pct = 10.0 };
    { r_path = [ "failover_ns"; "total"; "p50" ]; r_dir = `Lower_is_better; r_tol_pct = 10.0 };
    { r_path = [ "failover_ns"; "total"; "p99" ]; r_dir = `Lower_is_better; r_tol_pct = 10.0 };
    { r_path = [ "failover_ns"; "detection"; "p50" ]; r_dir = `Lower_is_better; r_tol_pct = 10.0 };
    { r_path = [ "failover_ns"; "switch"; "p50" ]; r_dir = `Lower_is_better; r_tol_pct = 10.0 };
    { r_path = [ "serving"; "best_committed_per_us" ]; r_dir = `Higher_is_better; r_tol_pct = 15.0 };
    { r_path = [ "engine_speed"; "minor_words_per_event" ]; r_dir = `Lower_is_better; r_tol_pct = 15.0 };
    { r_path = [ "profile"; "span_ns" ]; r_dir = `Lower_is_better; r_tol_pct = 25.0 };
  ]

let lookup path json =
  List.fold_left (fun acc k -> Option.bind acc (J.member k)) (Some json) path

(* [serving.best_committed_per_us] is derived: the surface's best cell.
   Everything else is a plain path into the document. *)
let value_at json = function
  | [ "serving"; "best_committed_per_us" ] ->
    Option.bind (lookup [ "serving"; "surface" ] json) J.to_list
    |> Option.map
         (List.fold_left
            (fun best cell ->
              match Option.bind (J.member "committed_per_us" cell) J.to_float with
              | Some v -> Float.max best v
              | None -> best)
            0.0)
  | path -> Option.bind (lookup path json) J.to_float

type field = {
  f_path : string;
  f_baseline : float;
  f_current : float;
  f_delta_pct : float; (* (current - baseline) / baseline * 100 *)
  f_tol_pct : float;
  f_regressed : bool;
}

type result = {
  fields : field list; (* compared fields, rule order *)
  skipped : string list; (* fields missing on either side *)
  checks_broken : string list; (* ok in baseline, not ok in current *)
  comparable : bool; (* same schema, seed and quick flag *)
  note : string; (* why not comparable, or "" *)
}

let path_str p = String.concat "." p

let check_map json =
  match Option.bind (J.member "checks" json) J.to_list with
  | None -> []
  | Some cells ->
    List.filter_map
      (fun c ->
        match (Option.bind (J.member "name" c) J.to_str, J.member "ok" c) with
        | Some name, Some (J.Bool ok) -> Some (name, ok)
        | _ -> None)
      cells

let compatible baseline current =
  let schema j = Option.bind (J.member "schema" j) J.to_str in
  let seed j = Option.bind (J.member "seed" j) J.to_float in
  let quick j = match J.member "quick" j with Some (J.Bool b) -> Some b | _ -> None in
  if schema baseline <> Some "mu-bench-results/1" then
    Error "baseline is not a mu-bench-results/1 document"
  else if schema current <> Some "mu-bench-results/1" then
    Error "current results are not a mu-bench-results/1 document"
  else if seed baseline <> seed current then Error "seed differs — runs are not comparable"
  else if quick baseline <> quick current then
    Error "quick flag differs — runs are not comparable"
  else Ok ()

let run ?(rules = default_rules) ~baseline ~current () =
  match compatible baseline current with
  | Error note ->
    { fields = []; skipped = []; checks_broken = []; comparable = false; note }
  | Ok () ->
    let fields, skipped =
      List.fold_left
        (fun (fields, skipped) r ->
          match (value_at baseline r.r_path, value_at current r.r_path) with
          | Some b, Some c when b > 0.0 ->
            let delta = (c -. b) /. b *. 100.0 in
            let regressed =
              match r.r_dir with
              | `Lower_is_better -> delta > r.r_tol_pct
              | `Higher_is_better -> delta < -.r.r_tol_pct
            in
            ( {
                f_path = path_str r.r_path;
                f_baseline = b;
                f_current = c;
                f_delta_pct = delta;
                f_tol_pct = r.r_tol_pct;
                f_regressed = regressed;
              }
              :: fields,
              skipped )
          | _ -> (fields, path_str r.r_path :: skipped))
        ([], []) rules
    in
    let base_checks = check_map baseline in
    let cur_checks = check_map current in
    let checks_broken =
      List.filter_map
        (fun (name, ok) ->
          if not ok then None
          else
            match List.assoc_opt name cur_checks with
            | Some false -> Some name
            | Some true | None -> None)
        base_checks
    in
    {
      fields = List.rev fields;
      skipped = List.rev skipped;
      checks_broken;
      comparable = true;
      note = "";
    }

let regressed r =
  r.comparable && (r.checks_broken <> [] || List.exists (fun f -> f.f_regressed) r.fields)

let pp_field ppf f =
  Fmt.pf ppf "%-40s %14.2f -> %14.2f  %+7.2f%% (tol %.0f%%) %s" f.f_path f.f_baseline
    f.f_current f.f_delta_pct f.f_tol_pct
    (if f.f_regressed then "REGRESSED" else "ok")

let pp ppf r =
  if not r.comparable then Fmt.pf ppf "comparison skipped: %s@." r.note
  else begin
    List.iter (fun f -> Fmt.pf ppf "%a@." pp_field f) r.fields;
    List.iter (fun p -> Fmt.pf ppf "%-40s (missing on one side, skipped)@." p) r.skipped;
    List.iter (fun c -> Fmt.pf ppf "check %s: ok in baseline, FAILING now@." c)
      r.checks_broken;
    Fmt.pf ppf "verdict: %s@." (if regressed r then "REGRESSION" else "no regression")
  end

let to_string r = Fmt.str "%a" pp r

(* --- file helpers --------------------------------------------------------- *)

let read_file path =
  try
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    Ok s
  with Sys_error msg -> Error msg

let load_results path =
  match read_file path with
  | Error msg -> Error msg
  | Ok s -> (
    match J.of_string (String.trim s) with
    | Ok j -> Ok j
    | Error msg -> Error (Printf.sprintf "%s: %s" path msg))

let load_last_history path =
  match read_file path with
  | Error msg -> Error msg
  | Ok s -> (
    let lines =
      String.split_on_char '\n' s
      |> List.filter (fun l -> String.trim l <> "")
    in
    match List.rev lines with
    | [] -> Error (Printf.sprintf "%s: history is empty" path)
    | last :: _ -> (
      match J.of_string (String.trim last) with
      | Ok j -> Ok j
      | Error msg -> Error (Printf.sprintf "%s (last line): %s" path msg)))
