(** Perf-regression gate over [mu-bench-results/1] documents.

    Diffs the {e deterministic} fields of a current bench results file
    against a baseline (normally the last [BENCH_history.jsonl] line)
    with per-field worse-direction tolerances. Volatile wall-clock
    fields are never compared. Fields missing on either side (partial
    [--only] runs) are skipped, not failed. Baselines with a different
    seed or quick flag are incomparable: the result says so and carries
    no verdict. *)

type direction = [ `Lower_is_better | `Higher_is_better ]

type rule = { r_path : string list; r_dir : direction; r_tol_pct : float }

val default_rules : rule list
(** Replication/failover latency percentiles (+10%), best serving
    committed/us (−15%), minor words per event (+15%), profile span
    (+25%). [serving.best_committed_per_us] is derived: the max over
    the surface's cells. *)

type field = {
  f_path : string;
  f_baseline : float;
  f_current : float;
  f_delta_pct : float; (** (current − baseline) / baseline × 100 *)
  f_tol_pct : float;
  f_regressed : bool;
}

type result = {
  fields : field list;
  skipped : string list;
  checks_broken : string list; (** ok in baseline, failing now *)
  comparable : bool;
  note : string; (** why not comparable, or [""] *)
}

val run :
  ?rules:rule list -> baseline:Faults.Json.t -> current:Faults.Json.t -> unit -> result

val regressed : result -> bool
(** True iff comparable and some field regressed or some check broke. *)

val pp_field : field Fmt.t
val pp : result Fmt.t
val to_string : result -> string

val load_results : string -> (Faults.Json.t, string) Stdlib.result
(** Parse a whole results file as one JSON document. *)

val load_last_history : string -> (Faults.Json.t, string) Stdlib.result
(** Parse the last non-empty line of a JSONL history file. *)
