(** An in-memory key-value store with a compact binary command codec.

    This is the application kernel behind the paper's three replicated
    key-value stores (HERD, Memcached, Redis — §7); they differ only in
    the client transport ({!Transport}), not in the service logic.

    Commands carry a client-assigned request id; the store remembers the
    last id applied per client and turns duplicates into no-ops, giving
    exactly-once semantics on top of the SMR layer's at-least-once
    delivery (see {!Mu.Smr}). *)

type t

val create : unit -> t

type command =
  | Get of { key : string }
  | Put of { key : string; value : string }
  | Delete of { key : string }

type reply =
  | Value of string
  | Not_found
  | Stored
  | Deleted

val pp_command : command Fmt.t
val pp_reply : reply Fmt.t

val apply : t -> command -> reply
(** Execute a command directly (no dedup). *)

val apply_dedup : t -> client:int -> req_id:int -> command -> reply
(** Execute with duplicate suppression: a (client, req_id) pair already
    applied returns its recorded reply without re-executing. *)

val size : t -> int
val find : t -> string -> string option

(** {1 Wire codec} *)

val encode_command : ?client:int -> ?req_id:int -> command -> Bytes.t
val decode_command : Bytes.t -> (int * int * command) option
(** Returns [(client, req_id, command)]. *)

val encode_reply : reply -> Bytes.t
val decode_reply : Bytes.t -> reply option

(** {1 SMR integration} *)

val smr_app : unit -> Mu.Smr.app
(** A replica application: decodes commands, applies them with dedup, and
    supports checkpoint/restore for membership changes (§5.4). *)

val test_only_lose_put_every : int ref
(** Deliberate replicated-state-machine bug for the modelcheck self-test
    (DESIGN.md §19); [0] (the default) disables it completely. When set
    to [k > 0], every [k]-th [Put] a {!smr_app} instance applies is
    acknowledged [Stored] but silently not executed — a lost update.
    Every replica applies the same committed sequence, so all replicas
    lose the {e same} writes: the Appendix A invariants stay clean and
    only a client-visible conformance check (a read observing the stale
    value) can catch it. Counted per app instance, in log order, so runs
    remain deterministic per seed. *)

(** {1 Checkpointing} *)

val snapshot : t -> Bytes.t
val restore : Bytes.t -> t
