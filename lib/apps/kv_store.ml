type t = {
  table : (string, string) Hashtbl.t;
  (* (client, req_id) dedup: last id applied and its reply, per client. *)
  last_applied : (int, int * Bytes.t) Hashtbl.t;
}

let create () = { table = Hashtbl.create 1024; last_applied = Hashtbl.create 64 }

type command =
  | Get of { key : string }
  | Put of { key : string; value : string }
  | Delete of { key : string }

type reply = Value of string | Not_found | Stored | Deleted

let pp_command ppf = function
  | Get { key } -> Fmt.pf ppf "get(%s)" key
  | Put { key; value } -> Fmt.pf ppf "put(%s=%s)" key value
  | Delete { key } -> Fmt.pf ppf "delete(%s)" key

let pp_reply ppf = function
  | Value v -> Fmt.pf ppf "value(%s)" v
  | Not_found -> Fmt.string ppf "not_found"
  | Stored -> Fmt.string ppf "stored"
  | Deleted -> Fmt.string ppf "deleted"

let apply t cmd =
  match cmd with
  | Get { key } -> (
    match Hashtbl.find_opt t.table key with Some v -> Value v | None -> Not_found)
  | Put { key; value } ->
    Hashtbl.replace t.table key value;
    Stored
  | Delete { key } ->
    if Hashtbl.mem t.table key then begin
      Hashtbl.remove t.table key;
      Deleted
    end
    else Not_found

let size t = Hashtbl.length t.table
let find t key = Hashtbl.find_opt t.table key

(* --- codec -------------------------------------------------------------- *)

let put_string buf s =
  let b = Bytes.create 4 in
  Bytes.set_int32_le b 0 (Int32.of_int (String.length s));
  Buffer.add_bytes buf b;
  Buffer.add_string buf s

let get_string data off =
  let len = Int32.to_int (Bytes.get_int32_le data off) in
  (Bytes.sub_string data (off + 4) len, off + 4 + len)

let encode_command ?(client = 0) ?(req_id = 0) cmd =
  let buf = Buffer.create 32 in
  let hdr = Bytes.create 9 in
  Bytes.set hdr 0
    (match cmd with Get _ -> 'G' | Put _ -> 'P' | Delete _ -> 'D');
  Bytes.set_int32_le hdr 1 (Int32.of_int client);
  Bytes.set_int32_le hdr 5 (Int32.of_int req_id);
  Buffer.add_bytes buf hdr;
  (match cmd with
  | Get { key } | Delete { key } -> put_string buf key
  | Put { key; value } ->
    put_string buf key;
    put_string buf value);
  Buffer.to_bytes buf

let decode_command data =
  if Bytes.length data < 9 then None
  else
    try
      let client = Int32.to_int (Bytes.get_int32_le data 1) in
      let req_id = Int32.to_int (Bytes.get_int32_le data 5) in
      match Bytes.get data 0 with
      | 'G' ->
        let key, _ = get_string data 9 in
        Some (client, req_id, Get { key })
      | 'D' ->
        let key, _ = get_string data 9 in
        Some (client, req_id, Delete { key })
      | 'P' ->
        let key, off = get_string data 9 in
        let value, _ = get_string data off in
        Some (client, req_id, Put { key; value })
      | _ -> None
    with Invalid_argument _ -> None

let encode_reply r =
  match r with
  | Value v ->
    let buf = Buffer.create (String.length v + 1) in
    Buffer.add_char buf 'V';
    put_string buf v;
    Buffer.to_bytes buf
  | Not_found -> Bytes.of_string "N"
  | Stored -> Bytes.of_string "S"
  | Deleted -> Bytes.of_string "D"

let decode_reply data =
  if Bytes.length data < 1 then None
  else
    try
      match Bytes.get data 0 with
      | 'V' ->
        let v, _ = get_string data 1 in
        Some (Value v)
      | 'N' -> Some Not_found
      | 'S' -> Some Stored
      | 'D' -> Some Deleted
      | _ -> None
    with Invalid_argument _ -> None

let apply_dedup t ~client ~req_id cmd =
  match Hashtbl.find_opt t.last_applied client with
  | Some (last, reply) when last = req_id ->
    Option.value (decode_reply reply) ~default:Not_found
  | Some _ | None ->
    let reply = apply t cmd in
    Hashtbl.replace t.last_applied client (req_id, encode_reply reply);
    reply

(* --- checkpointing -------------------------------------------------------- *)

let snapshot t =
  let buf = Buffer.create 1024 in
  let b = Bytes.create 4 in
  Bytes.set_int32_le b 0 (Int32.of_int (Hashtbl.length t.table));
  Buffer.add_bytes buf b;
  Hashtbl.iter
    (fun k v ->
      put_string buf k;
      put_string buf v)
    t.table;
  Buffer.to_bytes buf

let restore data =
  let t = create () in
  let count = Int32.to_int (Bytes.get_int32_le data 0) in
  let off = ref 4 in
  for _ = 1 to count do
    let k, o = get_string data !off in
    let v, o = get_string data o in
    Hashtbl.replace t.table k v;
    off := o
  done;
  t

(* Test-only injected SMR bug (DESIGN.md §19): every k-th Put is
   acknowledged but not applied. Per-instance counter: every replica
   applies the identical committed sequence, so all replicas lose the
   same writes and the divergence is purely client-visible. *)
let test_only_lose_put_every = ref 0

let smr_app () =
  let store = ref (create ()) in
  let puts_applied = ref 0 in
  {
    Mu.Smr.apply =
      (fun payload ->
        match decode_command payload with
        | Some (client, req_id, cmd) ->
          let lose = !test_only_lose_put_every in
          let fresh =
            (* Dedup check first so a re-delivered Put is not counted (or
               lost) twice — replays must see the recorded reply. *)
            match Hashtbl.find_opt !store.last_applied client with
            | Some (last, _) when last = req_id -> false
            | _ -> true
          in
          if
            lose > 0 && fresh
            &&
            match cmd with
            | Put _ ->
              incr puts_applied;
              !puts_applied mod lose = 0
            | _ -> false
          then begin
            let reply = encode_reply Stored in
            Hashtbl.replace !store.last_applied client (req_id, reply);
            reply
          end
          else encode_reply (apply_dedup !store ~client ~req_id cmd)
        | None -> Bytes.empty);
    snapshot = (fun () -> snapshot !store);
    install = (fun data -> store := restore data);
  }
