type app = { apply : bytes -> bytes; snapshot : unit -> bytes; install : bytes -> unit }

let stateless_app apply = { apply; snapshot = (fun () -> Bytes.empty); install = ignore }

type request = {
  payload : bytes;
  resp : bytes Sim.Engine.Ivar.ivar;
  (* Provenance root span of this request (0 when provenance is off) and
     its submit time; both are stable across retries, requeues and leader
     changes — the id is what `mu_demo explain` follows through the
     fail-over. *)
  prov : int;
  submitted : int;
}

(* One completed rejoin (restart → log parity), kept for harnesses and
   the bench reporter; the same numbers also land in telemetry. *)
type rejoin = {
  pid : int;
  restarted_at : int;
  parity_at : int;
  entries_pulled : int;
  pull_rounds : int;
  recheckpoints : int;
}

type t = {
  engine : Sim.Engine.t;
  calibration : Sim.Calibration.t;
  cfg : Config.t;
  mutable replicas : Replica.t array;
  mutable apps : app array;
  make_app : int -> app;
  incoming : request Sim.Engine.Chan.chan;
  backpressure : Recovery.Backpressure.t;
  (* Hosts with a restart pipeline in flight; guards double restarts. *)
  restarting : (int, unit) Hashtbl.t;
  mutable rejoins : rejoin list;
  mutable degraded_windows : int;
  mutable degraded_total_ns : int;
  (* Leader-side response cache: (replica id, slot index) → responses of
     the batch committed at that slot, filled by the on-commit hook. *)
  responses : (int * int, bytes list) Hashtbl.t;
  (* Provenance: payload image → request span, so the commit hook — which
     only sees decoded payload bytes — can stamp an "applied" point per
     (request, slot). A request applied under two slots is a duplicate. *)
  prov_requests : (string, int) Hashtbl.t;
  (* Provenance span of the last establish() (perm switch / fail-over
     takeover) and when it finished, for blocked-by edges at pickup. *)
  mutable establish_span : int;
  mutable establish_end : int;
  mutable next_id : int;
  mutable stopped : bool;
}

let engine t = t.engine
let config t = t.cfg
let replicas t = t.replicas
let replica t id = t.replicas.(id)
let rejoins t = List.rev t.rejoins
let restarts_in_flight t = Hashtbl.length t.restarting
let shed_requests t = Recovery.Backpressure.sheds t.backpressure
let queue_depth t = Sim.Engine.Chan.length t.incoming
let degraded_windows t = t.degraded_windows
let degraded_total_ns t = t.degraded_total_ns

(* Retryable-error sentinel: returned instead of an application response
   when a degraded leader sheds a request past the queue bound. The '!'
   first byte is reserved — no application reply starts with it. *)
let retryable_error = Bytes.of_string "!RETRY"
let is_retryable b = Bytes.length b > 0 && Bytes.get b 0 = '!'

(* --- batch framing ----------------------------------------------------- *)

let config_marker = 0xFFFFFFFFl

type config_op = Remove of int | Add of int

let encode_batch payloads =
  let total =
    List.fold_left (fun acc p -> acc + 4 + Bytes.length p) 4 payloads
  in
  let buf = Bytes.create total in
  Bytes.set_int32_le buf 0 (Int32.of_int (List.length payloads));
  let off = ref 4 in
  List.iter
    (fun p ->
      Bytes.set_int32_le buf !off (Int32.of_int (Bytes.length p));
      Bytes.blit p 0 buf (!off + 4) (Bytes.length p);
      off := !off + 4 + Bytes.length p)
    payloads;
  buf

let encode_config_op op =
  let buf = Bytes.create 9 in
  Bytes.set_int32_le buf 0 config_marker;
  (match op with
  | Remove id ->
    Bytes.set buf 4 '\001';
    Bytes.set_int32_le buf 5 (Int32.of_int id)
  | Add id ->
    Bytes.set buf 4 '\002';
    Bytes.set_int32_le buf 5 (Int32.of_int id));
  buf

let decode_config_op value =
  if Bytes.length value < 9 || Bytes.get_int32_le value 0 <> config_marker then None
  else
    let id = Int32.to_int (Bytes.get_int32_le value 5) in
    match Bytes.get value 4 with
    | '\001' -> Some (Remove id)
    | '\002' -> Some (Add id)
    | _ -> None

let decode_batch value =
  if Bytes.length value < 4 then Some []
  else if Bytes.get_int32_le value 0 = config_marker then None
  else begin
    let count = Int32.to_int (Bytes.get_int32_le value 0) in
    let off = ref 4 in
    let payloads = ref [] in
    (try
       for _ = 1 to count do
         let len = Int32.to_int (Bytes.get_int32_le value !off) in
         payloads := Bytes.sub value (!off + 4) len :: !payloads;
         off := !off + 4 + len
       done
     with Invalid_argument _ -> ());
    Some (List.rev !payloads)
  end

let noop = encode_batch []

let mu_log_fuo_offset = Log.fuo_offset

(* --- commit hook -------------------------------------------------------- *)

let apply_config _t (r : Replica.t) op =
  match op with
  | Remove id ->
    if id = r.Replica.id then begin
      r.Replica.removed <- true;
      r.Replica.stop <- true
    end
    else begin
      r.Replica.peers <- List.filter (fun p -> p.Replica.pid <> id) r.Replica.peers;
      Hashtbl.remove r.Replica.alive id;
      Hashtbl.remove r.Replica.scores id;
      if List.mem id r.Replica.confirmed then begin
        r.Replica.confirmed <- List.filter (fun c -> c <> id) r.Replica.confirmed;
        r.Replica.need_new_followers <- true
      end
    end
  | Add _ ->
    (* Wiring happens out of band in [add_replica]; the entry serializes
       the membership change in the log (§5.4). *)
    ()

(* [config_floor]: log index below which configuration entries are
   replayed as no-ops. A rejoining replica reconstructs current
   membership directly from the survivors while it is wired back in;
   historical Remove/Add entries replayed from its durable log would
   re-apply those transitions against the *current* member set (e.g. a
   replica's own old Remove would stop its new incarnation). Entries at
   or above the floor were decided after the rewiring and apply
   normally. *)
let install_commit_hook ?(config_floor = 0) t (r : Replica.t) =
  r.Replica.on_commit <-
    (fun idx value ->
      match decode_batch value with
      | None ->
        (match decode_config_op value with
        | Some op when idx >= config_floor -> apply_config t r op
        | Some _ | None -> ())
      | Some payloads ->
        let app = t.apps.(r.Replica.id) in
        let resps = List.map (fun p -> app.apply p) payloads in
        if Sim.Engine.provenance_on t.engine then
          List.iter
            (fun p ->
              match Hashtbl.find_opt t.prov_requests (Bytes.to_string p) with
              | Some span ->
                Sim.Engine.span_point t.engine ~pid:r.Replica.id ~span "applied"
                  ~args:
                    [ ("idx", string_of_int idx); ("replica", string_of_int r.Replica.id) ]
              | None -> ())
            payloads;
        if r.Replica.role = Replica.Leader then
          Hashtbl.replace t.responses (r.Replica.id, idx) resps)

(* --- leader service ----------------------------------------------------- *)

let attach_cost t =
  match t.cfg.Config.attach with
  | Config.Standalone -> 0
  | Config.Direct -> t.calibration.Sim.Calibration.direct_interference
  | Config.Handover -> t.calibration.Sim.Calibration.handover_hop

let stage_cost t payload_len =
  t.calibration.Sim.Calibration.memcpy_request
  + int_of_float (float_of_int payload_len *. t.calibration.Sim.Calibration.memcpy_byte)

let requeue t reqs =
  List.iter
    (fun req ->
      Sim.Engine.span_point t.engine ~span:req.prov "requeue";
      Sim.Engine.Chan.send t.incoming req)
    reqs

let fill_responses t (r : Replica.t) idx reqs =
  match Hashtbl.find_opt t.responses (r.Replica.id, idx) with
  | Some resps when List.length resps = List.length reqs ->
    Hashtbl.remove t.responses (r.Replica.id, idx);
    List.iter2
      (fun req resp ->
        if Sim.Engine.Ivar.try_fill req.resp resp && req.prov <> 0 then
          Sim.Engine.span_close t.engine ~args:[ ("idx", string_of_int idx) ] req.prov)
      reqs resps
  | Some _ | None ->
    (* The batch executed under a different role or got superseded; the
       requests were (or will be) re-proposed. *)
    ()

(* Provenance at batch formation: a "pickup" point per request (queueing
   time = pickup − submit), a batched_into edge to the batch span, and a
   blocked_by edge when the request sat in the queue behind a fail-over
   takeover (establish). *)
let prov_pickup t batch_span reqs =
  if Sim.Engine.provenance_on t.engine then
    List.iter
      (fun req ->
        Sim.Engine.span_point t.engine ~span:req.prov "pickup";
        Sim.Engine.span_edge t.engine ~kind:"batched_into" ~src:req.prov ~dst:batch_span ();
        if req.submitted < t.establish_end && req.prov <> 0 then
          Sim.Engine.span_edge t.engine ~kind:"blocked_by" ~src:req.prov
            ~dst:t.establish_span ())
      reqs

let gather_batch t first =
  let rec go acc k =
    if k = 0 then List.rev acc
    else
      match Sim.Engine.Chan.poll t.incoming with
      | None -> List.rev acc
      | Some req -> go (req :: acc) (k - 1)
  in
  go [ first ] (t.cfg.Config.max_batch - 1)

let establish t (r : Replica.t) =
  Sim.Engine.with_span t.engine ~pid:r.Replica.id "establish" @@ fun span ->
  if span <> 0 then begin
    t.establish_span <- span;
    t.establish_end <- max_int (* open: everything queued now is blocked *)
  end;
  Fun.protect
    ~finally:(fun () ->
      if span <> 0 then t.establish_end <- Sim.Engine.now t.engine)
    (fun () ->
      try
        ignore (Replication.propose r noop);
        true
      with Replication.Aborted _ ->
        Sim.Host.idle r.Replica.host 50_000;
        false)

(* Simple service: one propose at a time (Figs. 3-5 configuration). *)
let serve_simple t (r : Replica.t) =
  let c = Replica.cal r in
  match Sim.Engine.Chan.recv_timeout t.incoming c.Sim.Calibration.fd_read_interval with
  | None -> ()
  | Some first ->
    if r.Replica.role <> Replica.Leader then requeue t [ first ]
    else begin
      let reqs = gather_batch t first in
      Sim.Engine.with_span t.engine ~pid:r.Replica.id
        ~args:[ ("reqs", string_of_int (List.length reqs)) ]
        "batch"
      @@ fun batch_span ->
      prov_pickup t batch_span reqs;
      (match r.Replica.tel with
      | Some tel -> Telem.batch_occupancy tel (List.length reqs)
      | None -> ());
      Sim.Host.cpu r.Replica.host (attach_cost t);
      List.iter
        (fun req -> Sim.Host.cpu r.Replica.host (stage_cost t (Bytes.length req.payload)))
        reqs;
      let value = encode_batch (List.map (fun req -> req.payload) reqs) in
      match Replication.propose r value with
      | idx -> fill_responses t r idx reqs
      | exception Replication.Aborted _ -> requeue t reqs
    end

(* Pipelined service: a window of outstanding slot writes (Fig. 7). *)
type pending = { idx : int; mutable acks : int; reqs : request list; bspan : int }

let serve_pipelined t (r : Replica.t) =
  let c = Replica.cal r in
  let pending : pending Queue.t = Queue.create () in
  let restore_pending () =
    Queue.iter
      (fun slot ->
        if slot.bspan <> 0 then
          Sim.Engine.span_close t.engine ~args:[ ("outcome", "aborted") ] slot.bspan;
        requeue t slot.reqs)
      pending;
    Queue.clear pending
  in
  try
    (* Make sure omit-prepare is active so the fast path below is valid. *)
    if r.Replica.need_new_followers || not r.Replica.skip_prepare then
      ignore (Replication.propose r noop);
    let needed = Replication.remote_majority r in
    while r.Replica.role = Replica.Leader && not r.Replica.stop do
      (* Fill the window. *)
      let filled = ref false in
      if Queue.length pending < t.cfg.Config.max_outstanding then begin
        match Sim.Engine.Chan.poll t.incoming with
        | Some first ->
          let reqs = gather_batch t first in
          Sim.Host.cpu r.Replica.host (attach_cost t);
          List.iter
            (fun req ->
              Sim.Host.cpu r.Replica.host (stage_cost t (Bytes.length req.payload)))
            reqs;
          let idx = Log.fuo r.Replica.log + Queue.length pending in
          Replication.wait_log_space r ~idx;
          let bspan =
            Sim.Engine.span_open t.engine ~pid:r.Replica.id
              ~args:
                [ ("reqs", string_of_int (List.length reqs)); ("idx", string_of_int idx) ]
              "batch"
          in
          prov_pickup t bspan reqs;
          (match r.Replica.tel with
          | Some tel -> Telem.batch_occupancy tel (List.length reqs)
          | None -> ());
          let value = encode_batch (List.map (fun req -> req.payload) reqs) in
          let img = Log.encode_slot r.Replica.log ~proposal:r.Replica.prop_num ~value in
          Replication.post_accept r ~tag:idx ~idx ~img;
          Queue.push { idx; acks = 0; reqs; bspan } pending;
          filled := true
        | None -> ()
      end;
      (* Drain completions; block briefly when there is nothing to send. *)
      let timeout =
        if !filled then 0
        else if Queue.is_empty pending then c.Sim.Calibration.fd_read_interval
        else 2_000
      in
      (if timeout > 0 || not !filled then
         match Replication.drain_completion r ~timeout with
         | Some (_, tag) ->
           Queue.iter (fun slot -> if slot.idx = tag then slot.acks <- slot.acks + 1) pending
         | None -> ());
      (* Commit in order from the head of the window. *)
      let continue_ = ref true in
      let committed = ref false in
      while !continue_ && not (Queue.is_empty pending) do
        let head = Queue.peek pending in
        if head.acks >= needed then begin
          ignore (Queue.pop pending);
          Log.set_fuo r.Replica.log (head.idx + 1);
          Replica.apply_committed r;
          let e = Replica.engine r in
          if Sim.Engine.traced e then
            Sim.Engine.trace_counter e ~cat:"mu" ~pid:r.Replica.id "fuo"
              ~value:(head.idx + 1);
          if head.bspan <> 0 then
            Sim.Engine.span_close t.engine ~args:[ ("outcome", "committed") ]
              head.bspan;
          fill_responses t r head.idx head.reqs;
          committed := true
        end
        else continue_ := false
      done;
      (* Let same-instant client fibers woken by the commit enqueue their
         next requests before the next fill attempt polls the queue. *)
      if !committed then Sim.Engine.yield t.engine
    done;
    restore_pending ()
  with Replication.Aborted _ -> restore_pending ()

(* Doorbell service (§7.4 extended): like serve_pipelined, but each fill
   step gathers up to [cfg.doorbell] batches, stages them into that many
   contiguous log slots, and rings the NIC once — a single RDMA write
   per confirmed follower covers the whole slot range, and one
   completion per peer acknowledges the group. Commit then advances the
   FUO past the group in one move, amortizing both the wire and the
   commit bookkeeping over k entries. *)
type dslot = { didx : int; dreqs : request list; dspan : int }

type dgroup = {
  first : int;
  count : int;
  mutable dacks : int;
  slots : dslot list;
}

let serve_doorbell t (r : Replica.t) =
  let c = Replica.cal r in
  let pending : dgroup Queue.t = Queue.create () in
  let inflight_slots () = Queue.fold (fun acc g -> acc + g.count) 0 pending in
  let restore_pending () =
    Queue.iter
      (fun g ->
        List.iter
          (fun s ->
            if s.dspan <> 0 then
              Sim.Engine.span_close t.engine ~args:[ ("outcome", "aborted") ] s.dspan;
            requeue t s.dreqs)
          g.slots)
      pending;
    Queue.clear pending
  in
  try
    if r.Replica.need_new_followers || not r.Replica.skip_prepare then
      ignore (Replication.propose r noop);
    let needed = Replication.remote_majority r in
    while r.Replica.role = Replica.Leader && not r.Replica.stop do
      (* Fill: gather up to [doorbell] batches into one contiguous group. *)
      let filled = ref false in
      if Queue.length pending < t.cfg.Config.max_outstanding then begin
        match Sim.Engine.Chan.poll t.incoming with
        | Some first ->
          let base = Log.fuo r.Replica.log + inflight_slots () in
          (* One wire write must stay physically contiguous, so a group
             never crosses the circular-log wrap boundary (§5.3). *)
          let room = Log.slots r.Replica.log - (base mod Log.slots r.Replica.log) in
          let limit = max 1 (min t.cfg.Config.doorbell room) in
          let batches = ref [ gather_batch t first ] in
          let nbatches = ref 1 in
          let more = ref true in
          while !nbatches < limit && !more do
            match Sim.Engine.Chan.poll t.incoming with
            | Some next ->
              batches := gather_batch t next :: !batches;
              incr nbatches
            | None -> more := false
          done;
          let batches = List.rev !batches in
          Sim.Host.cpu r.Replica.host (attach_cost t);
          List.iter
            (List.iter (fun req ->
                 Sim.Host.cpu r.Replica.host (stage_cost t (Bytes.length req.payload))))
            batches;
          Replication.wait_log_space r ~idx:(base + !nbatches - 1);
          let slots =
            List.mapi
              (fun i reqs ->
                let didx = base + i in
                let dspan =
                  Sim.Engine.span_open t.engine ~pid:r.Replica.id
                    ~args:
                      [
                        ("reqs", string_of_int (List.length reqs));
                        ("idx", string_of_int didx);
                        ("doorbell", string_of_int !nbatches);
                      ]
                    "batch"
                in
                prov_pickup t dspan reqs;
                (match r.Replica.tel with
                | Some tel -> Telem.batch_occupancy tel (List.length reqs)
                | None -> ());
                { didx; dreqs = reqs; dspan })
              batches
          in
          let imgs =
            List.map
              (fun s ->
                let value = encode_batch (List.map (fun req -> req.payload) s.dreqs) in
                Log.encode_slot r.Replica.log ~proposal:r.Replica.prop_num ~value)
              slots
          in
          Replication.post_accept_range r ~tag:base ~idx:base ~imgs;
          Queue.push { first = base; count = !nbatches; dacks = 0; slots } pending;
          filled := true
        | None -> ()
      end;
      let timeout =
        if !filled then 0
        else if Queue.is_empty pending then c.Sim.Calibration.fd_read_interval
        else 2_000
      in
      (if timeout > 0 || not !filled then
         match Replication.drain_completion r ~timeout with
         | Some (_, tag) ->
           Queue.iter (fun g -> if g.first = tag then g.dacks <- g.dacks + 1) pending
         | None -> ());
      (* Commit whole groups in order from the head of the window. *)
      let continue_ = ref true in
      let committed = ref false in
      while !continue_ && not (Queue.is_empty pending) do
        let head = Queue.peek pending in
        if head.dacks >= needed then begin
          ignore (Queue.pop pending);
          Log.set_fuo r.Replica.log (head.first + head.count);
          Replica.apply_committed r;
          let e = Replica.engine r in
          if Sim.Engine.traced e then
            Sim.Engine.trace_counter e ~cat:"mu" ~pid:r.Replica.id "fuo"
              ~value:(head.first + head.count);
          List.iter
            (fun s ->
              if s.dspan <> 0 then
                Sim.Engine.span_close t.engine ~args:[ ("outcome", "committed") ]
                  s.dspan;
              fill_responses t r s.didx s.dreqs)
            head.slots;
          committed := true
        end
        else continue_ := false
      done;
      if !committed then Sim.Engine.yield t.engine
    done;
    restore_pending ()
  with Replication.Aborted _ -> restore_pending ()

let leader_service t (r : Replica.t) =
  let c = Replica.cal r in
  let doorbell = t.cfg.Config.doorbell > 1 in
  let pipelined = t.cfg.Config.max_outstanding > 1 in
  (* Degraded-mode tracking: a window opens at the first establish that
     fails (no quorum of permission acks — the leader can commit nothing
     and requests park in the queue) and closes when an establish
     succeeds or leadership is lost. Pure bookkeeping, no virtual time. *)
  let deg = Recovery.Degrade.create () in
  let close_degraded () =
    match Recovery.Degrade.leave deg ~now:(Sim.Engine.now t.engine) with
    | None -> ()
    | Some d ->
      t.degraded_windows <- t.degraded_windows + 1;
      t.degraded_total_ns <- t.degraded_total_ns + d;
      (match r.Replica.tel with
      | Some tel ->
        Telem.degraded_ns tel d;
        Telem.set_quorum_lost tel false
      | None -> ())
  in
  let enter_degraded () =
    if not (Recovery.Degrade.active deg) then
      (match r.Replica.tel with
      | Some tel -> Telem.set_quorum_lost tel true
      | None -> ());
    Recovery.Degrade.enter deg ~now:(Sim.Engine.now t.engine)
  in
  let rec loop () =
    if r.Replica.stop || r.Replica.removed then ()
    else begin
      (if r.Replica.role <> Replica.Leader then begin
         close_degraded ();
         Sim.Host.idle r.Replica.host c.Sim.Calibration.fd_read_interval
       end
       else if r.Replica.need_new_followers then begin
         if establish t r then close_degraded () else enter_degraded ()
       end
       else if doorbell then serve_doorbell t r
       else if pipelined then serve_pipelined t r
       else serve_simple t r);
      loop ()
    end
  in
  loop ()

(* --- construction ------------------------------------------------------- *)

let create eng calibration cfg ~make_app =
  Config.validate cfg;
  let replicas = Replica.create_cluster eng calibration cfg in
  let apps = Array.init cfg.Config.n make_app in
  let t =
    {
      engine = eng;
      calibration;
      cfg;
      replicas;
      apps;
      make_app;
      incoming = Sim.Engine.Chan.create eng;
      backpressure = Recovery.Backpressure.create ~limit:cfg.Config.queue_limit;
      restarting = Hashtbl.create 4;
      rejoins = [];
      degraded_windows = 0;
      degraded_total_ns = 0;
      responses = Hashtbl.create 64;
      prov_requests = Hashtbl.create 64;
      establish_span = 0;
      establish_end = 0;
      next_id = cfg.Config.n;
      stopped = false;
    }
  in
  Array.iter (fun r -> install_commit_hook t r) replicas;
  t

let start_replica ?(client_service = true) t (r : Replica.t) =
  Election.start r ~on_role_change:(fun _ -> ());
  Permissions.start r;
  Replayer.start r;
  Recycler.start r;
  if client_service then
    Sim.Host.spawn r.Replica.host ~name:"leader-service" (fun () -> leader_service t r)

let start ?client_service t = Array.iter (fun r -> start_replica ?client_service t r) t.replicas

let leader t =
  let leaders =
    Array.to_list t.replicas
    |> List.filter (fun r ->
           (not r.Replica.removed) && (not r.Replica.stop) && Replica.is_leader r)
  in
  match leaders with [ r ] -> Some r | [] | _ :: _ :: _ -> None

let serving_leader t =
  (* Unlike {!leader}, ignores claimants whose process is not running: a
     paused or crashed ex-leader still carries the Leader role because its
     role fiber cannot run to demote it. *)
  let candidates =
    Array.to_list t.replicas
    |> List.filter (fun r ->
           (not r.Replica.removed)
           && (not r.Replica.stop)
           && Replica.is_leader r
           && Sim.Host.liveness r.Replica.host = Sim.Host.Running)
  in
  match candidates with
  | [] -> None
  | [ r ] -> Some r
  | _ :: _ :: _ ->
    (* Competing claimants — e.g. a partitioned minority replica that
       elected itself and cannot hear the real leader demote it. The one
       actually serving holds write permission on a majority of logs
       (Appendix A.1); each log records a single holder and majorities
       intersect, so at most one claimant can qualify. *)
    let members =
      Array.to_list t.replicas
      |> List.filter (fun (r : Replica.t) -> not r.Replica.removed)
    in
    let majority = (List.length members / 2) + 1 in
    let grants (c : Replica.t) =
      List.length
        (List.filter
           (fun (r : Replica.t) -> r.Replica.perm_holder = Some c.Replica.id)
           members)
    in
    List.find_opt (fun c -> grants c >= majority) candidates

(* A request captured by a leader that then fails stays parked in that
   leader's hands; like any SMR client, we retransmit after a timeout.
   Requests may therefore execute more than once across a leader change
   (at-least-once; see the interface comment). *)
let client_retry_interval = 2_000_000

let submit_admitted ~retry t payload =
  let resp = Sim.Engine.Ivar.create t.engine in
  let prov =
    if not (Sim.Engine.provenance_on t.engine) then 0
    else begin
      (* Parent is the submitting fiber's current span, if any — the chaos
         harness wraps each client op in a span carrying (proc, key, op),
         which then labels the request in `mu_demo explain`. *)
      let span =
        Sim.Engine.span_open t.engine
          ~args:[ ("len", string_of_int (Bytes.length payload)) ]
          "request"
      in
      Hashtbl.replace t.prov_requests (Bytes.to_string payload) span;
      span
    end
  in
  let req = { payload; resp; prov; submitted = Sim.Engine.now t.engine } in
  Sim.Engine.Chan.send t.incoming req;
  if retry then
    Sim.Engine.spawn t.engine ~name:"client-retry" (fun () ->
        let rec watch () =
          Sim.Engine.sleep t.engine client_retry_interval;
          if (not (Sim.Engine.Ivar.is_filled resp)) && not t.stopped then begin
            Sim.Engine.span_point t.engine ~span:prov "client_retry";
            Sim.Engine.Chan.send t.incoming req;
            watch ()
          end
        in
        watch ());
  resp

let submit_async ?(retry = true) t payload =
  (* Graceful degradation: a quorum-lost leader parks requests instead of
     committing them, so the incoming queue is the overload signal. Past
     the configured bound we answer immediately with a retryable error
     rather than growing the backlog without bound. *)
  if
    Recovery.Backpressure.admit t.backpressure
      ~depth:(Sim.Engine.Chan.length t.incoming)
  then submit_admitted ~retry t payload
  else begin
    (match serving_leader t with
    | Some l -> (
      match l.Replica.tel with Some tel -> Telem.shed tel | None -> ())
    | None -> ());
    let resp = Sim.Engine.Ivar.create t.engine in
    Sim.Engine.Ivar.fill resp (Bytes.copy retryable_error);
    resp
  end

let submit t payload = Sim.Engine.Ivar.read (submit_async t payload)

let wait_live t =
  let live = ref false in
  while not !live do
    match leader t with
    | Some r when (not r.Replica.need_new_followers) && Log.fuo r.Replica.log > 0 ->
      live := true
    | Some _ | None -> Sim.Engine.sleep t.engine 20_000
  done

let stop t =
  t.stopped <- true;
  Array.iter (fun r -> r.Replica.stop <- true) t.replicas

(* --- membership (§5.4) -------------------------------------------------- *)

let propose_config_entry t op =
  let resp = Sim.Engine.Ivar.create t.engine in
  (* Configuration entries bypass batching: submit directly and spin until
     some leader commits the entry. *)
  let payload = encode_config_op op in
  let committed () =
    Array.exists
      (fun (r : Replica.t) ->
        (not r.Replica.removed)
        && Replica.is_leader r
        && Log.fuo r.Replica.log > 0
        &&
        let found = ref false in
        for i = max 0 (r.Replica.applied - 4) to Log.fuo r.Replica.log - 1 do
          match Log.read_slot r.Replica.log i with
          | Some { Log.value; _ } when Bytes.equal value payload -> found := true
          | Some _ | None -> ()
        done;
        !found)
      t.replicas
  in
  let rec try_commit attempts =
    if attempts = 0 then failwith "propose_config_entry: no leader committed the entry";
    (* [serving_leader], not [leader]: a crashed ex-leader keeps its stale
       Leader role forever (its role fiber cannot run to demote it), which
       would otherwise make the claimant set permanently ambiguous. *)
    match serving_leader t with
    | Some r when not r.Replica.need_new_followers -> (
      (* Run the propose on the leader's host. Applying a Remove drops the
         peer from the survivors' tables, so capture the handle first: the
         removed replica still needs to learn the entry committed (commit
         piggybacking alone would leave it waiting forever for a successor
         entry it will never receive). One final FUO bump delivers that. *)
      let removed_peer =
        match op with Remove id -> Replica.peer_opt r id | Add _ -> None
      in
      let done_ = Sim.Engine.Ivar.create t.engine in
      Sim.Host.spawn r.Replica.host ~name:"config-change" (fun () ->
          (try
             let idx = Replication.propose r payload in
             match removed_peer with
             | Some p when Rdma.Qp.state p.Replica.repl_qp = Rdma.Verbs.Rts ->
               let fuo_buf = Bytes.create 8 in
               Bytes.set_int64_le fuo_buf 0 (Int64.of_int (idx + 1));
               let wr = Replica.fresh_wr_id r in
               Hashtbl.replace r.Replica.inflight wr (p.Replica.pid, Replica.config_tag);
               Rdma.Qp.post_write p.Replica.repl_qp ~wr_id:wr ~src:fuo_buf ~src_off:0
                 ~len:8 ~mr:p.Replica.remote_log_mr ~dst_off:mu_log_fuo_offset
             | Some _ | None -> ()
           with Replication.Aborted _ -> ());
          Sim.Engine.Ivar.fill done_ ());
      (* Bounded wait: if the leader's host dies mid-propose its fiber
         parks forever and [done_] never fills — time out and retry
         against the next serving leader instead of hanging. *)
      let deadline = Sim.Engine.now t.engine + 20_000_000 in
      while
        (not (Sim.Engine.Ivar.is_filled done_)) && Sim.Engine.now t.engine < deadline
      do
        Sim.Engine.sleep t.engine 50_000
      done;
      if committed () then Sim.Engine.Ivar.try_fill resp () |> ignore
      else begin
        Sim.Engine.sleep t.engine 100_000;
        try_commit (attempts - 1)
      end)
    | Some _ | None ->
      Sim.Engine.sleep t.engine 100_000;
      try_commit (attempts - 1)
  in
  try_commit 100;
  Sim.Engine.Ivar.read resp

let remove_replica t ~id = propose_config_entry t (Remove id)

(* Checkpoint transfer (§5.4): "Mu uses the standard approach of
   check-pointing state; we do so from one of the followers" — taking the
   snapshot off the leader's critical path, falling back to the leader if
   no live follower exists. Shared by [add_replica] and the rejoin
   pipeline, which may call it repeatedly (the first checkpoint races the
   recycler; a recycled entry forces a fresh one). Only ever moves the
   target forward; decided durable entries past the checkpoint replay
   from the target's own log. *)
let install_checkpoint t (newcomer : Replica.t) (l : Replica.t) =
  let id = newcomer.Replica.id in
  let source =
    Array.to_list t.replicas
    |> List.find_opt (fun (r : Replica.t) ->
           r.Replica.id <> l.Replica.id
           && r.Replica.id <> id
           && (not r.Replica.removed)
           && Sim.Host.process_alive r.Replica.host)
    |> Option.value ~default:l
  in
  let s = source.Replica.applied in
  if s > newcomer.Replica.applied then begin
    let snap = t.apps.(source.Replica.id).snapshot () in
    t.apps.(id).install snap;
    newcomer.Replica.applied <- s;
    if Log.fuo newcomer.Replica.log < s then Log.set_fuo newcomer.Replica.log s;
    newcomer.Replica.zeroed_up_to <- s
  end;
  Replica.apply_committed newcomer;
  Rdma.Mr.set_i64 newcomer.Replica.bg_mr ~off:Replica.bg_log_head_offset
    (Int64.of_int newcomer.Replica.applied)

let add_replica t () =
  let id = t.next_id in
  t.next_id <- t.next_id + 1;
  propose_config_entry t (Add id);
  let newcomer = Replica.create_unwired t.engine t.calibration t.cfg ~id in
  Array.iter
    (fun r -> if not r.Replica.removed then Replica.wire r newcomer)
    t.replicas;
  t.replicas <- Array.append t.replicas [| newcomer |];
  let new_apps = Array.init (id + 1) (fun i -> if i < id then t.apps.(i) else t.apps.(0)) in
  (* The newcomer runs a fresh instance of the first app; state is then
     overwritten by the checkpoint. *)
  t.apps <- new_apps;
  install_commit_hook t newcomer;
  (match leader t with
  | Some l ->
    install_checkpoint t newcomer l;
    l.Replica.need_new_followers <- true
  | None -> ());
  start_replica t newcomer;
  newcomer

(* --- crash recovery: restart + rejoin (tying §5.4 to durable state) ----- *)

(* Durable logs survive a crash with a tail of accepted-but-undecided
   entries at indices at or past the restored FUO. Those may conflict
   with values the cluster decided while we were down, and a follower's
   replayer would otherwise self-advance over them as if they were
   decided. Accepts land contiguously from the FUO, so zeroing forward
   until the first empty slot erases exactly the undecided tail; the
   recycler's slack guarantees a zeroed gap exists before the scan could
   wrap into retained decided entries. *)
let truncate_undecided (log : Log.t) =
  let slots = Log.slots log in
  let fuo = Log.fuo log in
  let idx = ref fuo in
  while !idx < fuo + slots && Bytes.get_int64_le (Log.read_slot_raw log !idx) 0 <> 0L do
    Log.zero_slot_local log !idx;
    incr idx
  done

let rejoin_fiber t (newcomer : Replica.t) ~t0 ~span =
  let e = t.engine in
  let id = newcomer.Replica.id in
  let log = newcomer.Replica.log in
  let canary = if t.cfg.Config.checksum_canary then Log.Checksum else Log.Flag in
  let slot_size = Log.slot_size log in
  let stopped () = newcomer.Replica.stop || newcomer.Replica.removed in
  let leader_peer () =
    match serving_leader t with
    | Some l when l.Replica.id <> id -> Replica.peer_opt newcomer l.Replica.id
    | Some _ | None -> None
  in
  (* Catch-up reads ride the replication QP — always readable (§5.2) —
     and this fiber is the sole consumer of the newcomer's replication CQ
     until the replica starts at parity. *)
  let read_remote (p : Replica.peer) ~src_off ~len ~dst =
    Rdma.Qp.repair p.Replica.repl_qp;
    if Rdma.Qp.state p.Replica.repl_qp <> Rdma.Verbs.Rts then false
    else begin
      Rdma.Qp.post_read p.Replica.repl_qp ~wr_id:(Replica.fresh_wr_id newcomer)
        ~dst ~dst_off:0 ~len ~mr:p.Replica.remote_log_mr ~src_off;
      let wc = Rdma.Cq.await newcomer.Replica.repl_cq in
      wc.Rdma.Verbs.status = Rdma.Verbs.Success
    end
  in
  let publish_head () =
    Rdma.Mr.set_i64 newcomer.Replica.bg_mr ~off:Replica.bg_log_head_offset
      (Int64.of_int newcomer.Replica.applied)
  in
  let target () =
    match leader_peer () with
    | None -> None
    | Some p ->
      let buf = Bytes.create 8 in
      if read_remote p ~src_off:mu_log_fuo_offset ~len:8 ~dst:buf then
        Some (Int64.to_int (Bytes.get_int64_le buf 0))
      else None
  in
  let pull idx =
    match leader_peer () with
    | None -> Recovery.Catchup.Unreachable
    | Some p ->
      let buf = Bytes.create slot_size in
      if not (read_remote p ~src_off:(Log.slot_offset log idx) ~len:slot_size ~dst:buf)
      then Recovery.Catchup.Unreachable
      else (
        match Log.decode_slot ~canary buf with
        | Some _ -> Recovery.Catchup.Entry buf
        | None -> Recovery.Catchup.Recycled)
  in
  let install idx img = Log.write_slot_raw_local log idx img in
  let commit idx =
    Log.set_fuo log idx;
    Replica.apply_committed newcomer;
    publish_head ()
  in
  let recheckpoint () =
    match serving_leader t with
    | None -> ()
    | Some l -> install_checkpoint t newcomer l
  in
  (* Recover the application first. If the durable log is complete from
     the origin (nothing recycled before the crash), replay it locally —
     the pure durable-restore path. Otherwise wait for a serving leader
     and take a fresh checkpoint (§5.4). *)
  let rec restore () =
    if stopped () then false
    else if Log.fuo log = 0 || Log.read_slot log 0 <> None then begin
      Replica.apply_committed newcomer;
      publish_head ();
      true
    end
    else
      match serving_leader t with
      | Some l ->
        install_checkpoint t newcomer l;
        true
      | None ->
        Sim.Host.idle newcomer.Replica.host 100_000;
        restore ()
  in
  let finish outcome_args =
    if span <> 0 then Sim.Engine.span_close e ~pid:id ~args:outcome_args span;
    Hashtbl.remove t.restarting id
  in
  if not (restore ()) then finish [ ("outcome", "stopped") ]
  else begin
    if span <> 0 then
      Sim.Engine.span_point e ~pid:id ~span "restored"
        ~args:[ ("applied", string_of_int newcomer.Replica.applied) ];
    match
      Recovery.Catchup.run ~batch:t.cfg.Config.rejoin_batch
        ~idle_ns:t.cfg.Config.rejoin_idle
        ~idle:(fun ns -> Sim.Host.idle newcomer.Replica.host ns)
        ~target
        ~fuo:(fun () -> Log.fuo log)
        ~pull ~install ~commit ~recheckpoint ~stopped ()
    with
    | Recovery.Catchup.Stopped _ -> finish [ ("outcome", "stopped") ]
    | Recovery.Catchup.Parity p ->
      let now = Sim.Engine.now e in
      t.rejoins <-
        {
          pid = id;
          restarted_at = t0;
          parity_at = now;
          entries_pulled = p.Recovery.Catchup.entries;
          pull_rounds = p.Recovery.Catchup.rounds;
          recheckpoints = p.Recovery.Catchup.recheckpoints;
        }
        :: t.rejoins;
      (match newcomer.Replica.tel with
      | Some tel ->
        Telem.rejoin_parity_ns tel (now - t0);
        Telem.catch_up tel p.Recovery.Catchup.entries
      | None -> ());
      if Sim.Engine.traced e then
        Sim.Engine.trace_instant e ~cat:"mu" ~pid:id
          ~args:
            [ ("entries", string_of_int p.Recovery.Catchup.entries);
              ("ns", string_of_int (now - t0)) ]
          "rejoin_parity";
      (* At log parity, start the planes and ask the current leader to
         grow its confirmed-follower set: its next establish() writes us
         a permission request, our permission fiber acks it, and
         Listing 6 pushes any entries decided during the hand-off. *)
      start_replica t newcomer;
      (match serving_leader t with
      | Some l when l.Replica.id <> id -> l.Replica.need_new_followers <- true
      | Some _ | None -> ());
      finish
        [ ("outcome", "parity");
          ("entries", string_of_int p.Recovery.Catchup.entries) ]
  end

let restart_fiber t id =
  let old_r = t.replicas.(id) in
  if
    Hashtbl.mem t.restarting id
    || (Sim.Host.process_alive old_r.Replica.host && not old_r.Replica.stop)
  then () (* already running, or a restart is already in flight *)
  else begin
    Hashtbl.replace t.restarting id ();
    (match old_r.Replica.tel with Some tel -> Telem.restart tel | None -> ());
    let e = t.engine in
    let t0 = Sim.Engine.now e in
    let span =
      if Sim.Engine.provenance_on e then
        Sim.Engine.span_open e ~pid:id ~parent:0
          ~args:[ ("host", string_of_int id) ]
          "rejoin"
      else 0
    in
    (* 1. Re-admission. A replica that was killed but never removed is
       still a member — no configuration entry is needed (and requiring
       one would deadlock quorum restoration: the entry could not commit
       without the very replica that is rejoining). Only a previously
       *removed* replica must be re-added through a §5.4 configuration
       entry; the cluster may be mid-fail-over, so retry until some
       serving leader commits it. *)
    let rec admit attempts =
      match propose_config_entry t (Add id) with
      | () -> true
      | exception Failure _ ->
        if attempts <= 1 then false
        else begin
          Sim.Engine.sleep e 1_000_000;
          admit (attempts - 1)
        end
    in
    if old_r.Replica.removed && not (admit 10) then begin
      (* No leader for the whole window — give up; a later restart event
         can try again. *)
      if span <> 0 then
        Sim.Engine.span_close e ~pid:id ~args:[ ("outcome", "no_leader") ] span;
      Hashtbl.remove t.restarting id
    end
    else begin
      (* 2. Fresh incarnation on a new host; with durable state on, the
         log MR restores from NVM and the undecided tail is truncated. *)
      let newcomer = Replica.create_unwired t.engine t.calibration t.cfg ~id in
      truncate_undecided newcomer.Replica.log;
      let durable_fuo = Log.fuo newcomer.Replica.log in
      (* 3. Rewire the survivors to the new incarnation: tear down every
         stale connection to the dead host, connect fresh QPs, and pin
         the newcomer's score at the floor so elections ignore it until
         real heartbeats lift it past the hysteresis band. No yield
         happens in this block, so no fiber observes a half-wired
         cluster. *)
      let config_floor = ref 0 in
      Array.iter
        (fun (r : Replica.t) ->
          if r.Replica.id <> id && not r.Replica.removed then begin
            Replica.unwire r ~pid:id;
            Replica.wire r newcomer;
            Hashtbl.replace r.Replica.scores id
              t.calibration.Sim.Calibration.score_min;
            Hashtbl.replace r.Replica.alive id false;
            if Sim.Host.process_alive r.Replica.host then
              config_floor := max !config_floor (Log.fuo r.Replica.log)
          end)
        t.replicas;
      t.replicas.(id) <- newcomer;
      t.apps.(id) <- t.make_app id;
      (* Configuration entries already reflected in the membership just
         reconstructed must not re-apply during replay; the floor is the
         highest FUO any live member has at wiring time (no yield since). *)
      install_commit_hook ~config_floor:!config_floor t newcomer;
      if span <> 0 then
        Sim.Engine.span_point e ~pid:id ~span "rewired"
          ~args:[ ("durable_fuo", string_of_int durable_fuo) ];
      (* 4. Restore state and catch up at bounded rate on the new host's
         own fibers, then rejoin the confirmed-follower set. *)
      Sim.Host.spawn newcomer.Replica.host ~name:"rejoin" (fun () ->
          rejoin_fiber t newcomer ~t0 ~span)
    end
  end

let restart_replica t ~id =
  if id < 0 || id >= Array.length t.replicas then
    invalid_arg (Printf.sprintf "Smr.restart_replica: unknown replica %d" id);
  (* Callable from scheduler context (the fault injector's callback runs
     there); the pipeline itself needs a fiber. *)
  Sim.Engine.spawn t.engine ~name:(Printf.sprintf "restart-%d" id) ~pid:id
    (fun () -> restart_fiber t id)
