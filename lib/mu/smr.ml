type app = { apply : bytes -> bytes; snapshot : unit -> bytes; install : bytes -> unit }

let stateless_app apply = { apply; snapshot = (fun () -> Bytes.empty); install = ignore }

type request = {
  payload : bytes;
  resp : bytes Sim.Engine.Ivar.ivar;
  (* Provenance root span of this request (0 when provenance is off) and
     its submit time; both are stable across retries, requeues and leader
     changes — the id is what `mu_demo explain` follows through the
     fail-over. *)
  prov : int;
  submitted : int;
}

type t = {
  engine : Sim.Engine.t;
  calibration : Sim.Calibration.t;
  cfg : Config.t;
  mutable replicas : Replica.t array;
  mutable apps : app array;
  incoming : request Sim.Engine.Chan.chan;
  (* Leader-side response cache: (replica id, slot index) → responses of
     the batch committed at that slot, filled by the on-commit hook. *)
  responses : (int * int, bytes list) Hashtbl.t;
  (* Provenance: payload image → request span, so the commit hook — which
     only sees decoded payload bytes — can stamp an "applied" point per
     (request, slot). A request applied under two slots is a duplicate. *)
  prov_requests : (string, int) Hashtbl.t;
  (* Provenance span of the last establish() (perm switch / fail-over
     takeover) and when it finished, for blocked-by edges at pickup. *)
  mutable establish_span : int;
  mutable establish_end : int;
  mutable next_id : int;
  mutable stopped : bool;
}

let engine t = t.engine
let config t = t.cfg
let replicas t = t.replicas
let replica t id = t.replicas.(id)

(* --- batch framing ----------------------------------------------------- *)

let config_marker = 0xFFFFFFFFl

type config_op = Remove of int | Add of int

let encode_batch payloads =
  let total =
    List.fold_left (fun acc p -> acc + 4 + Bytes.length p) 4 payloads
  in
  let buf = Bytes.create total in
  Bytes.set_int32_le buf 0 (Int32.of_int (List.length payloads));
  let off = ref 4 in
  List.iter
    (fun p ->
      Bytes.set_int32_le buf !off (Int32.of_int (Bytes.length p));
      Bytes.blit p 0 buf (!off + 4) (Bytes.length p);
      off := !off + 4 + Bytes.length p)
    payloads;
  buf

let encode_config_op op =
  let buf = Bytes.create 9 in
  Bytes.set_int32_le buf 0 config_marker;
  (match op with
  | Remove id ->
    Bytes.set buf 4 '\001';
    Bytes.set_int32_le buf 5 (Int32.of_int id)
  | Add id ->
    Bytes.set buf 4 '\002';
    Bytes.set_int32_le buf 5 (Int32.of_int id));
  buf

let decode_config_op value =
  if Bytes.length value < 9 || Bytes.get_int32_le value 0 <> config_marker then None
  else
    let id = Int32.to_int (Bytes.get_int32_le value 5) in
    match Bytes.get value 4 with
    | '\001' -> Some (Remove id)
    | '\002' -> Some (Add id)
    | _ -> None

let decode_batch value =
  if Bytes.length value < 4 then Some []
  else if Bytes.get_int32_le value 0 = config_marker then None
  else begin
    let count = Int32.to_int (Bytes.get_int32_le value 0) in
    let off = ref 4 in
    let payloads = ref [] in
    (try
       for _ = 1 to count do
         let len = Int32.to_int (Bytes.get_int32_le value !off) in
         payloads := Bytes.sub value (!off + 4) len :: !payloads;
         off := !off + 4 + len
       done
     with Invalid_argument _ -> ());
    Some (List.rev !payloads)
  end

let noop = encode_batch []

let mu_log_fuo_offset = Log.fuo_offset

(* --- commit hook -------------------------------------------------------- *)

let apply_config _t (r : Replica.t) op =
  match op with
  | Remove id ->
    if id = r.Replica.id then begin
      r.Replica.removed <- true;
      r.Replica.stop <- true
    end
    else begin
      r.Replica.peers <- List.filter (fun p -> p.Replica.pid <> id) r.Replica.peers;
      Hashtbl.remove r.Replica.alive id;
      Hashtbl.remove r.Replica.scores id;
      if List.mem id r.Replica.confirmed then begin
        r.Replica.confirmed <- List.filter (fun c -> c <> id) r.Replica.confirmed;
        r.Replica.need_new_followers <- true
      end
    end
  | Add _ ->
    (* Wiring happens out of band in [add_replica]; the entry serializes
       the membership change in the log (§5.4). *)
    ()

let install_commit_hook t (r : Replica.t) =
  r.Replica.on_commit <-
    (fun idx value ->
      match decode_batch value with
      | None ->
        (match decode_config_op value with
        | Some op -> apply_config t r op
        | None -> ())
      | Some payloads ->
        let app = t.apps.(r.Replica.id) in
        let resps = List.map (fun p -> app.apply p) payloads in
        if Sim.Engine.provenance_on t.engine then
          List.iter
            (fun p ->
              match Hashtbl.find_opt t.prov_requests (Bytes.to_string p) with
              | Some span ->
                Sim.Engine.span_point t.engine ~pid:r.Replica.id ~span "applied"
                  ~args:
                    [ ("idx", string_of_int idx); ("replica", string_of_int r.Replica.id) ]
              | None -> ())
            payloads;
        if r.Replica.role = Replica.Leader then
          Hashtbl.replace t.responses (r.Replica.id, idx) resps)

(* --- leader service ----------------------------------------------------- *)

let attach_cost t =
  match t.cfg.Config.attach with
  | Config.Standalone -> 0
  | Config.Direct -> t.calibration.Sim.Calibration.direct_interference
  | Config.Handover -> t.calibration.Sim.Calibration.handover_hop

let stage_cost t payload_len =
  t.calibration.Sim.Calibration.memcpy_request
  + int_of_float (float_of_int payload_len *. t.calibration.Sim.Calibration.memcpy_byte)

let requeue t reqs =
  List.iter
    (fun req ->
      Sim.Engine.span_point t.engine ~span:req.prov "requeue";
      Sim.Engine.Chan.send t.incoming req)
    reqs

let fill_responses t (r : Replica.t) idx reqs =
  match Hashtbl.find_opt t.responses (r.Replica.id, idx) with
  | Some resps when List.length resps = List.length reqs ->
    Hashtbl.remove t.responses (r.Replica.id, idx);
    List.iter2
      (fun req resp ->
        if Sim.Engine.Ivar.try_fill req.resp resp then
          Sim.Engine.span_close t.engine ~args:[ ("idx", string_of_int idx) ] req.prov)
      reqs resps
  | Some _ | None ->
    (* The batch executed under a different role or got superseded; the
       requests were (or will be) re-proposed. *)
    ()

(* Provenance at batch formation: a "pickup" point per request (queueing
   time = pickup − submit), a batched_into edge to the batch span, and a
   blocked_by edge when the request sat in the queue behind a fail-over
   takeover (establish). *)
let prov_pickup t batch_span reqs =
  if Sim.Engine.provenance_on t.engine then
    List.iter
      (fun req ->
        Sim.Engine.span_point t.engine ~span:req.prov "pickup";
        Sim.Engine.span_edge t.engine ~kind:"batched_into" ~src:req.prov ~dst:batch_span ();
        if req.submitted < t.establish_end && req.prov <> 0 then
          Sim.Engine.span_edge t.engine ~kind:"blocked_by" ~src:req.prov
            ~dst:t.establish_span ())
      reqs

let gather_batch t first =
  let rec go acc k =
    if k = 0 then List.rev acc
    else
      match Sim.Engine.Chan.poll t.incoming with
      | None -> List.rev acc
      | Some req -> go (req :: acc) (k - 1)
  in
  go [ first ] (t.cfg.Config.max_batch - 1)

let establish t (r : Replica.t) =
  Sim.Engine.with_span t.engine ~pid:r.Replica.id "establish" @@ fun span ->
  if span <> 0 then begin
    t.establish_span <- span;
    t.establish_end <- max_int (* open: everything queued now is blocked *)
  end;
  Fun.protect
    ~finally:(fun () ->
      if span <> 0 then t.establish_end <- Sim.Engine.now t.engine)
    (fun () ->
      try
        ignore (Replication.propose r noop);
        true
      with Replication.Aborted _ ->
        Sim.Host.idle r.Replica.host 50_000;
        false)

(* Simple service: one propose at a time (Figs. 3-5 configuration). *)
let serve_simple t (r : Replica.t) =
  let c = Replica.cal r in
  match Sim.Engine.Chan.recv_timeout t.incoming c.Sim.Calibration.fd_read_interval with
  | None -> ()
  | Some first ->
    if r.Replica.role <> Replica.Leader then requeue t [ first ]
    else begin
      let reqs = gather_batch t first in
      Sim.Engine.with_span t.engine ~pid:r.Replica.id
        ~args:[ ("reqs", string_of_int (List.length reqs)) ]
        "batch"
      @@ fun batch_span ->
      prov_pickup t batch_span reqs;
      Sim.Host.cpu r.Replica.host (attach_cost t);
      List.iter
        (fun req -> Sim.Host.cpu r.Replica.host (stage_cost t (Bytes.length req.payload)))
        reqs;
      let value = encode_batch (List.map (fun req -> req.payload) reqs) in
      match Replication.propose r value with
      | idx -> fill_responses t r idx reqs
      | exception Replication.Aborted _ -> requeue t reqs
    end

(* Pipelined service: a window of outstanding slot writes (Fig. 7). *)
type pending = { idx : int; mutable acks : int; reqs : request list; bspan : int }

let serve_pipelined t (r : Replica.t) =
  let c = Replica.cal r in
  let pending : pending Queue.t = Queue.create () in
  let restore_pending () =
    Queue.iter
      (fun slot ->
        Sim.Engine.span_close t.engine ~args:[ ("outcome", "aborted") ] slot.bspan;
        requeue t slot.reqs)
      pending;
    Queue.clear pending
  in
  try
    (* Make sure omit-prepare is active so the fast path below is valid. *)
    if r.Replica.need_new_followers || not r.Replica.skip_prepare then
      ignore (Replication.propose r noop);
    let needed = Replication.remote_majority r in
    while r.Replica.role = Replica.Leader && not r.Replica.stop do
      (* Fill the window. *)
      let filled = ref false in
      if Queue.length pending < t.cfg.Config.max_outstanding then begin
        match Sim.Engine.Chan.poll t.incoming with
        | Some first ->
          let reqs = gather_batch t first in
          Sim.Host.cpu r.Replica.host (attach_cost t);
          List.iter
            (fun req ->
              Sim.Host.cpu r.Replica.host (stage_cost t (Bytes.length req.payload)))
            reqs;
          let idx = Log.fuo r.Replica.log + Queue.length pending in
          Replication.wait_log_space r ~idx;
          let bspan =
            Sim.Engine.span_open t.engine ~pid:r.Replica.id
              ~args:
                [ ("reqs", string_of_int (List.length reqs)); ("idx", string_of_int idx) ]
              "batch"
          in
          prov_pickup t bspan reqs;
          let value = encode_batch (List.map (fun req -> req.payload) reqs) in
          let img = Log.encode_slot r.Replica.log ~proposal:r.Replica.prop_num ~value in
          Replication.post_accept r ~tag:idx ~idx ~img;
          Queue.push { idx; acks = 0; reqs; bspan } pending;
          filled := true
        | None -> ()
      end;
      (* Drain completions; block briefly when there is nothing to send. *)
      let timeout =
        if !filled then 0
        else if Queue.is_empty pending then c.Sim.Calibration.fd_read_interval
        else 2_000
      in
      (if timeout > 0 || not !filled then
         match Replication.drain_completion r ~timeout with
         | Some (_, tag) ->
           Queue.iter (fun slot -> if slot.idx = tag then slot.acks <- slot.acks + 1) pending
         | None -> ());
      (* Commit in order from the head of the window. *)
      let continue_ = ref true in
      let committed = ref false in
      while !continue_ && not (Queue.is_empty pending) do
        let head = Queue.peek pending in
        if head.acks >= needed then begin
          ignore (Queue.pop pending);
          Log.set_fuo r.Replica.log (head.idx + 1);
          Replica.apply_committed r;
          let e = Replica.engine r in
          if Sim.Engine.traced e then
            Sim.Engine.trace_counter e ~cat:"mu" ~pid:r.Replica.id "fuo"
              ~value:(head.idx + 1);
          Sim.Engine.span_close t.engine ~args:[ ("outcome", "committed") ] head.bspan;
          fill_responses t r head.idx head.reqs;
          committed := true
        end
        else continue_ := false
      done;
      (* Let same-instant client fibers woken by the commit enqueue their
         next requests before the next fill attempt polls the queue. *)
      if !committed then Sim.Engine.yield t.engine
    done;
    restore_pending ()
  with Replication.Aborted _ -> restore_pending ()

let leader_service t (r : Replica.t) =
  let c = Replica.cal r in
  let pipelined = t.cfg.Config.max_outstanding > 1 in
  let rec loop () =
    if r.Replica.stop || r.Replica.removed then ()
    else begin
      (if r.Replica.role <> Replica.Leader then
         Sim.Host.idle r.Replica.host c.Sim.Calibration.fd_read_interval
       else if r.Replica.need_new_followers then ignore (establish t r)
       else if pipelined then serve_pipelined t r
       else serve_simple t r);
      loop ()
    end
  in
  loop ()

(* --- construction ------------------------------------------------------- *)

let create eng calibration cfg ~make_app =
  Config.validate cfg;
  let replicas = Replica.create_cluster eng calibration cfg in
  let apps = Array.init cfg.Config.n make_app in
  let t =
    {
      engine = eng;
      calibration;
      cfg;
      replicas;
      apps;
      incoming = Sim.Engine.Chan.create eng;
      responses = Hashtbl.create 64;
      prov_requests = Hashtbl.create 64;
      establish_span = 0;
      establish_end = 0;
      next_id = cfg.Config.n;
      stopped = false;
    }
  in
  Array.iter (fun r -> install_commit_hook t r) replicas;
  t

let start_replica ?(client_service = true) t (r : Replica.t) =
  Election.start r ~on_role_change:(fun _ -> ());
  Permissions.start r;
  Replayer.start r;
  Recycler.start r;
  if client_service then
    Sim.Host.spawn r.Replica.host ~name:"leader-service" (fun () -> leader_service t r)

let start ?client_service t = Array.iter (fun r -> start_replica ?client_service t r) t.replicas

let leader t =
  let leaders =
    Array.to_list t.replicas
    |> List.filter (fun r ->
           (not r.Replica.removed) && (not r.Replica.stop) && Replica.is_leader r)
  in
  match leaders with [ r ] -> Some r | [] | _ :: _ :: _ -> None

let serving_leader t =
  (* Unlike {!leader}, ignores claimants whose process is not running: a
     paused or crashed ex-leader still carries the Leader role because its
     role fiber cannot run to demote it. *)
  let candidates =
    Array.to_list t.replicas
    |> List.filter (fun r ->
           (not r.Replica.removed)
           && (not r.Replica.stop)
           && Replica.is_leader r
           && Sim.Host.liveness r.Replica.host = Sim.Host.Running)
  in
  match candidates with [ r ] -> Some r | [] | _ :: _ :: _ -> None

(* A request captured by a leader that then fails stays parked in that
   leader's hands; like any SMR client, we retransmit after a timeout.
   Requests may therefore execute more than once across a leader change
   (at-least-once; see the interface comment). *)
let client_retry_interval = 2_000_000

let submit_async ?(retry = true) t payload =
  let resp = Sim.Engine.Ivar.create t.engine in
  let prov =
    if not (Sim.Engine.provenance_on t.engine) then 0
    else begin
      (* Parent is the submitting fiber's current span, if any — the chaos
         harness wraps each client op in a span carrying (proc, key, op),
         which then labels the request in `mu_demo explain`. *)
      let span =
        Sim.Engine.span_open t.engine
          ~args:[ ("len", string_of_int (Bytes.length payload)) ]
          "request"
      in
      Hashtbl.replace t.prov_requests (Bytes.to_string payload) span;
      span
    end
  in
  let req = { payload; resp; prov; submitted = Sim.Engine.now t.engine } in
  Sim.Engine.Chan.send t.incoming req;
  if retry then
    Sim.Engine.spawn t.engine ~name:"client-retry" (fun () ->
        let rec watch () =
          Sim.Engine.sleep t.engine client_retry_interval;
          if (not (Sim.Engine.Ivar.is_filled resp)) && not t.stopped then begin
            Sim.Engine.span_point t.engine ~span:prov "client_retry";
            Sim.Engine.Chan.send t.incoming req;
            watch ()
          end
        in
        watch ());
  resp

let submit t payload = Sim.Engine.Ivar.read (submit_async t payload)

let wait_live t =
  let live = ref false in
  while not !live do
    match leader t with
    | Some r when (not r.Replica.need_new_followers) && Log.fuo r.Replica.log > 0 ->
      live := true
    | Some _ | None -> Sim.Engine.sleep t.engine 20_000
  done

let stop t =
  t.stopped <- true;
  Array.iter (fun r -> r.Replica.stop <- true) t.replicas

(* --- membership (§5.4) -------------------------------------------------- *)

let propose_config_entry t op =
  let resp = Sim.Engine.Ivar.create t.engine in
  (* Configuration entries bypass batching: submit directly and spin until
     some leader commits the entry. *)
  let payload = encode_config_op op in
  let committed () =
    Array.exists
      (fun (r : Replica.t) ->
        (not r.Replica.removed)
        && Replica.is_leader r
        && Log.fuo r.Replica.log > 0
        &&
        let found = ref false in
        for i = max 0 (r.Replica.applied - 4) to Log.fuo r.Replica.log - 1 do
          match Log.read_slot r.Replica.log i with
          | Some { Log.value; _ } when Bytes.equal value payload -> found := true
          | Some _ | None -> ()
        done;
        !found)
      t.replicas
  in
  let rec try_commit attempts =
    if attempts = 0 then failwith "propose_config_entry: no leader committed the entry";
    match leader t with
    | Some r when not r.Replica.need_new_followers -> (
      (* Run the propose on the leader's host. Applying a Remove drops the
         peer from the survivors' tables, so capture the handle first: the
         removed replica still needs to learn the entry committed (commit
         piggybacking alone would leave it waiting forever for a successor
         entry it will never receive). One final FUO bump delivers that. *)
      let removed_peer =
        match op with Remove id -> Replica.peer_opt r id | Add _ -> None
      in
      let done_ = Sim.Engine.Ivar.create t.engine in
      Sim.Host.spawn r.Replica.host ~name:"config-change" (fun () ->
          (try
             let idx = Replication.propose r payload in
             match removed_peer with
             | Some p when Rdma.Qp.state p.Replica.repl_qp = Rdma.Verbs.Rts ->
               let fuo_buf = Bytes.create 8 in
               Bytes.set_int64_le fuo_buf 0 (Int64.of_int (idx + 1));
               let wr = Replica.fresh_wr_id r in
               Hashtbl.replace r.Replica.inflight wr (p.Replica.pid, Replica.config_tag);
               Rdma.Qp.post_write p.Replica.repl_qp ~wr_id:wr ~src:fuo_buf ~src_off:0
                 ~len:8 ~mr:p.Replica.remote_log_mr ~dst_off:mu_log_fuo_offset
             | Some _ | None -> ()
           with Replication.Aborted _ -> ());
          Sim.Engine.Ivar.fill done_ ());
      Sim.Engine.Ivar.read done_;
      if committed () then Sim.Engine.Ivar.try_fill resp () |> ignore
      else begin
        Sim.Engine.sleep t.engine 100_000;
        try_commit (attempts - 1)
      end)
    | Some _ | None ->
      Sim.Engine.sleep t.engine 100_000;
      try_commit (attempts - 1)
  in
  try_commit 100;
  Sim.Engine.Ivar.read resp

let remove_replica t ~id = propose_config_entry t (Remove id)

let add_replica t () =
  let id = t.next_id in
  t.next_id <- t.next_id + 1;
  propose_config_entry t (Add id);
  let newcomer = Replica.create_unwired t.engine t.calibration t.cfg ~id in
  Array.iter
    (fun r -> if not r.Replica.removed then Replica.wire r newcomer)
    t.replicas;
  t.replicas <- Array.append t.replicas [| newcomer |];
  let new_apps = Array.init (id + 1) (fun i -> if i < id then t.apps.(i) else t.apps.(0)) in
  (* The newcomer runs a fresh instance of the first app; state is then
     overwritten by the checkpoint. *)
  t.apps <- new_apps;
  install_commit_hook t newcomer;
  (* Checkpoint transfer (§5.4): "Mu uses the standard approach of
     check-pointing state; we do so from one of the followers" — taking
     the snapshot off the leader's critical path. Fall back to the leader
     if no live follower exists. *)
  (match leader t with
  | Some l ->
    let source =
      Array.to_list t.replicas
      |> List.find_opt (fun (r : Replica.t) ->
             r.Replica.id <> l.Replica.id
             && r.Replica.id <> id
             && (not r.Replica.removed)
             && Sim.Host.process_alive r.Replica.host)
      |> Option.value ~default:l
    in
    let snap = t.apps.(source.Replica.id).snapshot () in
    t.apps.(id).install snap;
    newcomer.Replica.applied <- source.Replica.applied;
    Log.set_fuo newcomer.Replica.log source.Replica.applied;
    newcomer.Replica.zeroed_up_to <- source.Replica.applied;
    Rdma.Mr.set_i64 newcomer.Replica.bg_mr ~off:Replica.bg_log_head_offset
      (Int64.of_int newcomer.Replica.applied);
    l.Replica.need_new_followers <- true
  | None -> ());
  start_replica t newcomer;
  newcomer
