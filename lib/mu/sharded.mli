(** Parallel Mu instances for commuting operations (§8).

    The paper designs Mu for a black-box service and totally orders every
    request, but notes: "If desired, several parallel instances of Mu
    could be used to replicate concurrent operations that commute. This
    could be used to increase throughput in specific applications."

    This module is that extension: [k] independent Mu groups, each with
    its own leader, log and planes; requests are routed by a key so that
    each shard totally orders only its own key-space. Operations on
    different shards commute by construction (the router never splits one
    key across shards), so per-key linearizability is preserved while
    throughput scales with the shard count — demonstrated by the
    [ablation-shards] section of the bench harness. *)

type t

val create :
  Sim.Engine.t ->
  Sim.Calibration.t ->
  Config.t ->
  shards:int ->
  make_app:(shard:int -> replica:int -> Smr.app) ->
  t
(** [shards] independent groups of [config.n] replicas each. *)

val start : t -> unit
val stop : t -> unit
val shards : t -> int
val shard : t -> int -> Smr.t
(** Direct access to one group. *)

val key_hash : string -> int
(** The stable (djb2, 30-bit) key hash behind {!shard_of_key} — exposed
    so external routers can agree with the shard mapping by
    construction. *)

val shard_of_key : t -> string -> int
(** The routing function ([key_hash key mod shards]). *)

val submit : t -> key:string -> bytes -> bytes
(** Route by key and block for the response (fiber context). *)

val submit_async : ?retry:bool -> t -> key:string -> bytes -> bytes Sim.Engine.Ivar.ivar
(** Route by key; [retry] as in {!Smr.submit_async}. *)

val wait_live : t -> unit
(** Block until every shard has an established leader. *)

val queue_depth : t -> int -> int
(** {!Smr.queue_depth} of shard [i]. *)
