type role = Leader | Follower

type peer = {
  pid : int;
  repl_qp : Rdma.Qp.t;
  fd_qp : Rdma.Qp.t;
  fd_cq : Rdma.Cq.t;
  perm_qp : Rdma.Qp.t;
  perm_cq : Rdma.Cq.t;
  req_qp : Rdma.Qp.t;
  req_cq : Rdma.Cq.t;
  misc_qp : Rdma.Qp.t;
  misc_cq : Rdma.Cq.t;
  remote_log_mr : Rdma.Mr.t;
  remote_bg_mr : Rdma.Mr.t;
}

type t = {
  config : Config.t;
  host : Sim.Host.t;
  id : int;
  log : Log.t;
  bg_mr : Rdma.Mr.t;
  repl_cq : Rdma.Cq.t;
  mutable peers : peer list;
  mutable leader_estimate : int;
  scores : (int, int) Hashtbl.t;
  alive : (int, bool) Hashtbl.t;
  last_hb : (int, int64) Hashtbl.t;
  mutable role : role;
  mutable role_generation : int;
  mutable perm_holder : int option;
  last_granted : (int, int64) Hashtbl.t;
  mutable req_gen : int64;
  mutable confirmed : int list;
  mutable need_new_followers : bool;
  mutable prop_num : int64;
  mutable skip_prepare : bool;
  mutable wr_seq : int;
  inflight : (int, int * int) Hashtbl.t;
  mutable propose_started_at : int option;
  mutable election_span : int;
  mutable applied : int;
  mutable on_commit : int -> bytes -> unit;
  mutable zeroed_up_to : int;
  mutable recycler_outstanding : int;
  metrics : Metrics.t;
  tel : Telem.t option;
  mutable removed : bool;
  mutable stop : bool;
}

(* Background-plane layout: heartbeat counter, log head, then the
   permission request and ack arrays indexed by replica id. Arrays are
   sized generously (64 replicas) so membership additions need no
   re-registration. *)
let max_replicas = 64
let bg_hb_offset = 0
let bg_log_head_offset = 8
let bg_req_offset id = 16 + (8 * id)
let bg_ack_offset id = 16 + (8 * max_replicas) + (8 * id)
let bg_size ~n:_ = 16 + (16 * max_replicas)

let engine t = Sim.Host.engine t.host
let cal t = Sim.Host.calibration t.host

(* NVM regions are keyed by owner id; with several clusters on one
   engine (§8 sharding) the replica id alone would collide, so the
   config's durable namespace is folded into the owner. *)
let durable_owner config ~id = (config.Config.durable_ns * max_replicas) + id

let create_unwired eng calib config ~id =
  Config.validate config;
  let host = Sim.Host.create eng calib ~id ~name:(Printf.sprintf "replica%d" id) in
  let log_size =
    Log.required_size ~slots:config.Config.log_slots ~value_cap:config.Config.value_cap
  in
  (* With durable state on, the log MR is registered directly over the
     host's NVM region: every slot write and the FUO header are
     write-through durable, and a region left by a previous incarnation
     of this id is picked up as-is — a rebooted replica comes up with its
     pre-crash log already in place. *)
  let log_backing =
    if config.Config.durable_state then
      Some
        (Recovery.Durable.log_backing (Sim.Engine.nvm eng)
           ~owner:(durable_owner config ~id) ~size:log_size)
    else None
  in
  let log_mr =
    Rdma.Mr.register ~persistent:config.Config.persistent_log ?backing:log_backing host
      ~size:log_size ~access:Rdma.Verbs.access_rw
  in
  let bg_mr =
    Rdma.Mr.register host ~size:(bg_size ~n:config.Config.n) ~access:Rdma.Verbs.access_rw
  in
  {
    config;
    host;
    id;
    log =
      Log.attach
        ~canary:(if config.Config.checksum_canary then Log.Checksum else Log.Flag)
        log_mr ~slots:config.Config.log_slots ~value_cap:config.Config.value_cap;
    bg_mr;
    repl_cq = Rdma.Cq.create eng;
    peers = [];
    leader_estimate = 0;
    scores = Hashtbl.create 8;
    alive = Hashtbl.create 8;
    last_hb = Hashtbl.create 8;
    role = Follower;
    role_generation = 0;
    perm_holder = None;
    last_granted = Hashtbl.create 8;
    req_gen = 0L;
    confirmed = [];
    need_new_followers = true;
    prop_num = 0L;
    skip_prepare = false;
    wr_seq = 0;
    inflight = Hashtbl.create 64;
    propose_started_at = None;
    election_span = 0;
    applied = 0;
    on_commit = (fun _ _ -> ());
    zeroed_up_to = 0;
    recycler_outstanding = 0;
    metrics = Metrics.create ();
    tel = Telem.of_engine eng ~id;
    removed = false;
    stop = false;
  }

let already_wired a b = List.exists (fun p -> p.pid = b.id) a.peers

(* Persist the member list this replica currently sees (self + peers) to
   its durable meta region; no-op when durable state is off. Pure memory
   writes — no virtual time, no randomness. *)
let persist_members t =
  if t.config.Config.durable_state then begin
    let meta =
      Recovery.Durable.meta_backing
        (Sim.Engine.nvm (engine t))
        ~owner:(durable_owner t.config ~id:t.id)
    in
    Recovery.Durable.write_members meta (t.id :: List.map (fun p -> p.pid) t.peers)
  end

let wire a b =
  if a.id = b.id then invalid_arg "Replica.wire: cannot wire a replica to itself";
  if already_wired a b then ()
  else begin
    let eng = engine a in
    let mk_pair cq_a cq_b =
      let qa = Rdma.Qp.create a.host ~cq:cq_a and qb = Rdma.Qp.create b.host ~cq:cq_b in
      Rdma.Qp.connect qa qb;
      (qa, qb)
    in
    (* Replication plane: per-replica shared CQ; background channels get a
       CQ per purpose so each protocol fiber is the sole consumer of its
       completions. *)
    let repl_a, repl_b = mk_pair a.repl_cq b.repl_cq in
    (* The replication QP starts read-only: reads are always safe; writes
       require a permission grant (§5.2). *)
    Rdma.Qp.set_access repl_a Rdma.Verbs.access_ro;
    Rdma.Qp.set_access repl_b Rdma.Verbs.access_ro;
    let fd_cq_a = Rdma.Cq.create eng and fd_cq_b = Rdma.Cq.create eng in
    let fd_a, fd_b = mk_pair fd_cq_a fd_cq_b in
    let perm_cq_a = Rdma.Cq.create eng and perm_cq_b = Rdma.Cq.create eng in
    let perm_a, perm_b = mk_pair perm_cq_a perm_cq_b in
    let req_cq_a = Rdma.Cq.create eng and req_cq_b = Rdma.Cq.create eng in
    let req_a, req_b = mk_pair req_cq_a req_cq_b in
    let misc_cq_a = Rdma.Cq.create eng and misc_cq_b = Rdma.Cq.create eng in
    let misc_a, misc_b = mk_pair misc_cq_a misc_cq_b in
    (* Background-plane QPs are always fully open (§3.2). *)
    List.iter
      (fun qp -> Rdma.Qp.set_access qp Rdma.Verbs.access_rw)
      [ fd_a; fd_b; perm_a; perm_b; req_a; req_b; misc_a; misc_b ];
    let peer_of_b =
      {
        pid = b.id;
        repl_qp = repl_a;
        fd_qp = fd_a;
        fd_cq = fd_cq_a;
        perm_qp = perm_a;
        perm_cq = perm_cq_a;
        req_qp = req_a;
        req_cq = req_cq_a;
        misc_qp = misc_a;
        misc_cq = misc_cq_a;
        remote_log_mr = Log.mr b.log;
        remote_bg_mr = b.bg_mr;
      }
    in
    let peer_of_a =
      {
        pid = a.id;
        repl_qp = repl_b;
        fd_qp = fd_b;
        fd_cq = fd_cq_b;
        perm_qp = perm_b;
        perm_cq = perm_cq_b;
        req_qp = req_b;
        req_cq = req_cq_b;
        misc_qp = misc_b;
        misc_cq = misc_cq_b;
        remote_log_mr = Log.mr a.log;
        remote_bg_mr = a.bg_mr;
      }
    in
    let insert ps p = List.sort (fun x y -> compare x.pid y.pid) (p :: ps) in
    a.peers <- insert a.peers peer_of_b;
    b.peers <- insert b.peers peer_of_a;
    persist_members a;
    persist_members b
  end

let unwire t ~pid =
  match List.find_opt (fun p -> p.pid = pid) t.peers with
  | None -> ()
  | Some p ->
    List.iter Rdma.Qp.disconnect [ p.repl_qp; p.fd_qp; p.perm_qp; p.req_qp; p.misc_qp ];
    t.peers <- List.filter (fun q -> q.pid <> pid) t.peers;
    (* Volatile per-peer state must go with the connection. In particular
       a rebooted incarnation of [pid] restarts its permission request
       generation at zero, so keeping the stale last-granted generation
       would make this replica ignore its permission requests forever. *)
    Hashtbl.remove t.last_granted pid;
    Hashtbl.remove t.last_hb pid;
    Hashtbl.remove t.scores pid;
    Hashtbl.remove t.alive pid;
    let confirmed = List.filter (fun i -> i <> pid) t.confirmed in
    if confirmed <> t.confirmed then begin
      t.confirmed <- confirmed;
      t.need_new_followers <- true
    end;
    persist_members t

let create_cluster eng calib config =
  let replicas = Array.init config.Config.n (fun id -> create_unwired eng calib config ~id) in
  Array.iteri
    (fun i a -> Array.iteri (fun j b -> if i < j then wire a b) replicas)
    replicas;
  replicas

let peer_opt t id = List.find_opt (fun p -> p.pid = id) t.peers

let peer t id =
  match peer_opt t id with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Replica.peer: replica %d has no peer %d" t.id id)

(* Tags in [inflight] identify which plane posted a work request on the
   shared replication CQ. Positive tags are propose/catch-up rounds
   (Replication.fresh_tag); the reserved negative tags below mark
   background writes whose completions the propose path reaps on the
   posting plane's behalf. *)
let recycler_tag = -2
let config_tag = -3

let fresh_wr_id t =
  t.wr_seq <- t.wr_seq + 1;
  t.wr_seq

let is_leader t = t.role = Leader
let quorum_size t = List.length t.peers + 1
let majority t = (quorum_size t / 2) + 1

let fresh_prop_num t ~above =
  (* Proposal numbers are congruent to the replica id modulo a fixed
     stride, so distinct leaders never collide. *)
  let stride = Int64.of_int max_replicas in
  let id = Int64.of_int t.id in
  let above = Int64.max above t.prop_num in
  let k = Int64.div above stride in
  let candidate = Int64.add (Int64.mul (Int64.add k 1L) stride) id in
  let candidate =
    if Int64.compare candidate above > 0 then candidate
    else Int64.add candidate stride
  in
  t.prop_num <- candidate;
  candidate

let apply_committed t =
  let fuo = Log.fuo t.log in
  while t.applied < fuo do
    (match Log.read_slot t.log t.applied with
    | Some { Log.value; _ } ->
      t.metrics.Metrics.entries_applied <- t.metrics.Metrics.entries_applied + 1;
      t.on_commit t.applied value
    | None ->
      (* A decided slot below the FUO is never empty (Lemma A.11). *)
      invalid_arg
        (Printf.sprintf "replica %d: hole at applied index %d (fuo %d)" t.id t.applied fuo));
    t.applied <- t.applied + 1;
    (* Publish the new log head for the recycler (§5.3). *)
    Rdma.Mr.set_i64 t.bg_mr ~off:bg_log_head_offset (Int64.of_int t.applied)
  done
