(** The replication plane: Mu's consensus algorithm (§4, Listings 2–6).

    The leader is the only replica that communicates; followers are silent.
    A propose call:

    + on first use (or after an abort), builds the {e confirmed followers}
      set by requesting write permission from every replica and waiting
      for a majority of acks (growing the set with stragglers that answer
      within a grace period, §4.2 "Growing confirmed followers"); then
      brings itself up to date with its highest-FUO confirmed follower
      (Listing 5) and brings the followers up to date (Listing 6);
    + runs the prepare phase — read each confirmed follower's minProposal,
      pick a higher proposal number, write it to their minProposals, read
      their slot at the current FUO, and adopt the value with the highest
      proposal if any (Listing 2) — unless the {e omit-prepare}
      optimization is active (§4.2): once a prepare found only empty slots,
      subsequent proposes go straight to the accept phase;
    + runs the accept phase: one RDMA Write of the entry (with canary) into
      each confirmed follower's log, waiting for completion at a majority.

    Any failed operation — which, by the permission invariant, means this
    leader was deposed or a follower crashed — raises {!Aborted}; the next
    propose call rebuilds the confirmed-followers set.

    With omit-prepare active the cost of a propose is exactly one parallel
    RDMA Write to a majority: the paper's headline ~1.3 µs path. *)

exception Aborted of string

val propose : Replica.t -> bytes -> int
(** [propose r value] replicates [value]; returns the log index at which
    [value] itself was committed (the call re-commits any adopted values
    it discovers on the way, per Listing 2). Must run in a fiber of [r]'s
    host, and [r] must believe itself leader. Raises {!Aborted} on any
    failed operation or lost permission. *)

val become_leader : Replica.t -> unit
(** The leader-change preamble: permission acquisition, confirmed-follower
    construction, leader catch-up and follower update. Called implicitly
    by {!propose} when needed; exposed for fail-over experiments that time
    it separately. *)

val abort : Replica.t -> string -> 'a
(** Mark the replica as needing a new confirmed-followers set and raise
    {!Aborted}. *)

(** {1 Lower-level helpers for the pipelined fast path (§7.4)}

    These expose the accept-phase plumbing so that {!Smr} can keep several
    outstanding slot writes in flight. They assume omit-prepare is active. *)

val stage_entry : Replica.t -> bytes -> Bytes.t
(** Encode an entry image with the current proposal number and pay the
    leader-side staging cost (the request memcpy — the Fig. 7 throughput
    wall). *)

val post_accept : Replica.t -> tag:int -> idx:int -> img:Bytes.t -> unit
(** Write the entry image locally and post one RDMA Write per confirmed
    follower for slot [idx], tagging completions with [tag]. *)

val post_accept_range : Replica.t -> tag:int -> idx:int -> imgs:Bytes.t list -> unit
(** Doorbell-batched accept: write [imgs] into the contiguous slot range
    starting at [idx] locally, then post {e one} RDMA Write per confirmed
    follower covering the whole range (slot images concatenated at slot
    stride), tagging each peer's single completion with [tag]. The range
    must not cross the circular-log wrap boundary — callers cap group
    size at [Log.slots - (idx mod Log.slots)]. With [persistent_log], the
    flush cost is paid once for the group. *)

val remote_majority : Replica.t -> int
(** Number of remote completions that constitute a majority with self. *)

val drain_completion : Replica.t -> timeout:int -> (int * int) option
(** Consume one completion from the replication CQ: [Some (peer, tag)] on
    success, [None] on timeout or a stale (unmatched) completion. Raises
    {!Aborted} on an error completion. *)

val wait_log_space : Replica.t -> idx:int -> unit
(** Block while slot [idx] would overrun the circular log (§5.3 — "the log
    is never completely full"); the recycler frees space. *)
