type attach_mode = Standalone | Direct | Handover

type t = {
  n : int;
  log_slots : int;
  value_cap : int;
  attach : attach_mode;
  max_batch : int;
  max_outstanding : int;
  grow_followers_grace : int;
  recycle_interval : int;
  recycle_slack : int;
  fate_sharing : bool;
  fate_sharing_stuck_after : int;
  replayer_poll : int;
  disable_omit_prepare : bool;
  checksum_canary : bool;
  persistent_log : bool;
  durable_state : bool;
  queue_limit : int;
  rejoin_batch : int;
  rejoin_idle : int;
  doorbell : int;
  durable_ns : int;
}

let default =
  {
    n = 3;
    log_slots = 8192;
    value_cap = 1024;
    attach = Standalone;
    max_batch = 1;
    max_outstanding = 1;
    grow_followers_grace = 100_000;
    recycle_interval = 10_000_000;
    recycle_slack = 64;
    fate_sharing = false;
    fate_sharing_stuck_after = 10_000_000;
    replayer_poll = 1_000;
    disable_omit_prepare = false;
    checksum_canary = false;
    persistent_log = false;
    durable_state = false;
    queue_limit = 0;
    rejoin_batch = 64;
    rejoin_idle = 20_000;
    doorbell = 1;
    durable_ns = 0;
  }

let majority t = (t.n / 2) + 1

let validate t =
  if t.n < 1 then invalid_arg "Config: n must be >= 1";
  if t.log_slots < 2 * t.recycle_slack then invalid_arg "Config: log too small for slack";
  if t.value_cap <= 0 then invalid_arg "Config: value_cap must be positive";
  if t.max_batch < 1 then invalid_arg "Config: max_batch must be >= 1";
  if t.max_outstanding < 1 then invalid_arg "Config: max_outstanding must be >= 1";
  if t.queue_limit < 0 then invalid_arg "Config: queue_limit must be >= 0";
  if t.rejoin_batch < 1 then invalid_arg "Config: rejoin_batch must be >= 1";
  if t.rejoin_idle < 0 then invalid_arg "Config: rejoin_idle must be >= 0";
  if t.doorbell < 1 then invalid_arg "Config: doorbell must be >= 1";
  if t.doorbell > 1 && t.doorbell > t.log_slots - (2 * t.recycle_slack) then
    invalid_arg "Config: doorbell group cannot exceed usable log window";
  if t.durable_ns < 0 then invalid_arg "Config: durable_ns must be >= 0"
