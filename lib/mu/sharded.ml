type t = { groups : Smr.t array }

let create engine cal config ~shards ~make_app =
  if shards < 1 then invalid_arg "Sharded.create: need at least one shard";
  {
    groups =
      Array.init shards (fun shard ->
          (* Each group gets its own durable namespace so shards sharing
             one engine never open each other's NVM-backed logs. *)
          let config = { config with Config.durable_ns = shard } in
          Smr.create engine cal config ~make_app:(fun replica -> make_app ~shard ~replica));
  }

let start t = Array.iter Smr.start t.groups
let stop t = Array.iter Smr.stop t.groups
let shards t = Array.length t.groups
let shard t i = t.groups.(i)

(* Stable string hash; independent of OCaml's randomized hashing. *)
let key_hash key =
  let h = ref 5381 in
  String.iter (fun c -> h := ((!h lsl 5) + !h + Char.code c) land 0x3FFFFFFF) key;
  !h

let shard_of_key t key = key_hash key mod Array.length t.groups

let submit_async ?retry t ~key payload =
  Smr.submit_async ?retry t.groups.(shard_of_key t key) payload

let submit t ~key payload = Smr.submit t.groups.(shard_of_key t key) payload
let wait_live t = Array.iter Smr.wait_live t.groups
let queue_depth t i = Smr.queue_depth t.groups.(i)
