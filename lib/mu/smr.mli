(** The SMR façade (Fig. 1): assembles the replication and background
    planes on every replica, captures client requests at the leader, and
    injects committed requests into every replica's application.

    Request flow on the leader: capture (attach-mode cost, §7.1) → stage
    into the RDMA buffer (memcpy, §7.4) → propose (one-sided replication,
    §4) → apply → respond. Followers replay committed entries into their
    application copies.

    Two service loops, chosen by configuration:
    - {b simple}: one propose at a time ([max_outstanding = 1],
      [max_batch = 1]) — the latency-oriented setup of Figs. 3–5;
    - {b pipelined}: up to [max_outstanding] slots in flight, each carrying
      up to [max_batch] coalesced requests — the throughput setup of
      Fig. 7.

    Delivery guarantee: entries commit in log order and are injected
    exactly once per replica. A request whose leader aborts mid-propose is
    re-submitted by the service loop, so a request may commit {e twice}
    under leader change (at-least-once); applications needing exactly-once
    must deduplicate by request id, as is standard for SMR systems. *)

(** Application attached to each replica. *)
type app = {
  apply : bytes -> bytes;  (** Execute one request, return the response. *)
  snapshot : unit -> bytes;  (** Checkpoint for state transfer (§5.4). *)
  install : bytes -> unit;  (** Restore from a checkpoint. *)
}

val stateless_app : (bytes -> bytes) -> app
(** An app with no checkpointable state (snapshot returns empty). *)

type t

val create :
  Sim.Engine.t -> Sim.Calibration.t -> Config.t -> make_app:(int -> app) -> t
(** Build a cluster of [config.n] replicas, each running [make_app id]. No
    fibers are started until {!start}. *)

val start : ?client_service:bool -> t -> unit
(** Spawn all planes on every replica: heartbeat + monitors + role fiber
    (election), permission management, replayer, recycler, and the leader
    service loop. [client_service:false] omits the service loop — for
    harnesses (e.g. the standalone latency benches, §7.1) that drive
    {!Replication.propose} themselves. *)

val engine : t -> Sim.Engine.t
val config : t -> Config.t
val replicas : t -> Replica.t array
val replica : t -> int -> Replica.t

val leader : t -> Replica.t option
(** The replica currently acting as leader, if exactly one does. *)

val serving_leader : t -> Replica.t option
(** Like {!leader}, but ignores claimants whose host is paused or crashed
    (a failed ex-leader keeps its stale role until it runs again). When
    several running replicas claim the role — a partitioned minority
    replica elects itself and never hears the real leader — the claimant
    holding write permission on a majority of logs wins (Appendix A.1:
    each log records a single holder, so at most one claimant can). *)

val submit_async : ?retry:bool -> t -> bytes -> bytes Sim.Engine.Ivar.ivar
(** Enqueue a client request; the ivar is filled with the application
    response once the request commits and executes at the leader.
    [retry] (default true) enables client-side retransmission after a
    timeout, covering requests captured by a leader that then fails;
    throughput harnesses that generate their own load can disable it.

    When [config.queue_limit] is positive and the incoming queue is
    already at the bound — the signature of a quorum-lost leader parking
    requests — the request is {e shed}: the ivar fills immediately with
    {!retryable_error} and nothing is enqueued. *)

val retryable_error : bytes
(** Response sentinel for shed requests. Its first byte ['!'] is
    reserved: no application response starts with it. *)

val is_retryable : bytes -> bool
(** Whether a response is the shed sentinel (clients should back off and
    retry; the request was never enqueued). *)

val submit : t -> bytes -> bytes
(** {!submit_async} then block (must run inside a fiber). *)

val wait_live : t -> unit
(** Block until the cluster has an established leader that has committed
    at least one entry (fiber context). *)

val stop : t -> unit
(** Ask every replica's fibers to wind down. *)

(** {1 Membership (§5.4)} *)

val remove_replica : t -> id:int -> unit
(** Propose a configuration entry removing [id]. Once it commits, [id]
    stops executing and the others ignore it (fiber context). *)

val add_replica : t -> unit -> Replica.t
(** Add a fresh replica (next free id): propose the configuration entry,
    wire the newcomer, transfer an application checkpoint (taken from a
    follower, per §5.4), and start its planes (fiber context).

    Known simplification: replicas started before the newcomer joined do
    not spawn a failure-detector monitor for it. Because ids only grow,
    the newcomer is never anyone's leader candidate while unmonitored, so
    leader election is unaffected; it is fully monitored by any replica
    (re)started after the join. *)

(** {1 Crash recovery}

    With [config.durable_state] on, each replica's log and membership
    metadata live in simulated NVM ({!Sim.Nvm}) and survive a
    [kill_host]. {!restart_replica} boots a fresh incarnation under the
    same id and runs the rejoin pipeline: re-admission via a §5.4
    configuration entry, durable-log restore (truncating the
    accepted-but-undecided tail), checkpoint transfer when the durable
    prefix was recycled, bounded-rate catch-up from the leader
    ({!Recovery.Catchup}), and — only at exact log parity — plane
    start-up and confirmed-follower re-entry. *)

val restart_replica : t -> id:int -> unit
(** Restart replica [id] after its host was killed or its process
    stopped. Callable from scheduler context (e.g. a fault-injector
    callback): the pipeline runs on freshly spawned fibers. No-op if the
    old incarnation is still running or a restart is already in flight.
    Raises [Invalid_argument] for an unknown id. *)

(** One completed rejoin, restart → log parity (virtual ns). *)
type rejoin = {
  pid : int;
  restarted_at : int;
  parity_at : int;
  entries_pulled : int;  (** Entries copied from the leader's log. *)
  pull_rounds : int;  (** Bounded-rate catch-up rounds. *)
  recheckpoints : int;  (** Checkpoint re-transfers forced by recycling. *)
}

val rejoins : t -> rejoin list
(** Completed rejoins, oldest first. *)

val restarts_in_flight : t -> int
(** Restart pipelines currently running (admission, catch-up, …). *)

val shed_requests : t -> int
(** Requests refused with {!retryable_error} by the queue bound. *)

val queue_depth : t -> int
(** Client requests currently parked in the incoming queue (submitted
    but not yet picked up by the leader service). *)

val degraded_windows : t -> int
val degraded_total_ns : t -> int
(** Count and total duration of completed quorum-lost windows in which a
    leader could not establish a majority of confirmed followers. *)

(** {1 Batch framing} — exposed for tests. *)

val encode_batch : bytes list -> bytes
val decode_batch : bytes -> bytes list option
(** [None] when the entry is a configuration entry rather than a batch. *)
