(** Log recycling (§5.3).

    The log is conceptually infinite but physically circular. Followers
    publish a {e log head} (first entry not yet executed) in their
    background MR; the leader periodically reads all heads, computes
    [minHead], and zeroes every slot below it — in follower logs via RDMA
    Writes on the replication QPs (it holds write permission) and locally —
    so recycled slots cannot present stale canaries when the log wraps.

    Only an established leader recycles: a new leader first finishes its
    catch-up/update steps, guaranteeing its FUO is at least every
    follower's (§5.3). The zeroing writes are fire-and-forget: their
    completions are consumed by the propose path's completion loop, which
    shares the replication CQ, decrements [Replica.recycler_outstanding]
    and surfaces errors in [Metrics.recycler_errors] and telemetry
    ([mu_recycler_errors_total]) before aborting the propose.

    Fault handling: a round is {e skipped} (watermark unchanged, counted
    in [Metrics.recycle_skips] / [mu_recycle_skips_total]) when a log-head
    read fails on a confirmed peer, when any head read reports a
    permission error, or when mid-round this replica stops being the
    permission holder or a replication QP leaves RTS — all signs the
    leader's view may be stale, in which case zeroing could erase entries
    a live replica still needs. Only a non-confirmed peer whose NIC
    stopped answering (crashed under the §2.2 crash-stop model) is
    excluded from the minimum, which keeps recycling live with a dead
    replica. *)

val start : Replica.t -> unit
(** Spawn the recycling fiber (active only while this replica leads). *)

val recycle_once : Replica.t -> unit
(** One scan-and-zero round; exposed for tests. Must run in a fiber of the
    replica's host while it is an established leader. *)
