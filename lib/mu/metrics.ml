type t = {
  mutable proposes : int;
  mutable commits : int;
  mutable aborts : int;
  mutable prepare_phases : int;
  mutable accept_rounds : int;
  mutable catch_up_entries : int;
  mutable update_entries : int;
  mutable followers_grown : int;
  mutable permission_requests : int;
  mutable permission_grants : int;
  mutable perm_fast_path : int;
  mutable perm_slow_path : int;
  mutable fd_reads : int;
  mutable entries_applied : int;
  mutable slots_recycled : int;
  mutable recycle_skips : int;
  mutable recycler_errors : int;
}

let create () =
  {
    proposes = 0;
    commits = 0;
    aborts = 0;
    prepare_phases = 0;
    accept_rounds = 0;
    catch_up_entries = 0;
    update_entries = 0;
    followers_grown = 0;
    permission_requests = 0;
    permission_grants = 0;
    perm_fast_path = 0;
    perm_slow_path = 0;
    fd_reads = 0;
    entries_applied = 0;
    slots_recycled = 0;
    recycle_skips = 0;
    recycler_errors = 0;
  }

let copy m = { m with proposes = m.proposes }

let reset m =
  m.proposes <- 0;
  m.commits <- 0;
  m.aborts <- 0;
  m.prepare_phases <- 0;
  m.accept_rounds <- 0;
  m.catch_up_entries <- 0;
  m.update_entries <- 0;
  m.followers_grown <- 0;
  m.permission_requests <- 0;
  m.permission_grants <- 0;
  m.perm_fast_path <- 0;
  m.perm_slow_path <- 0;
  m.fd_reads <- 0;
  m.entries_applied <- 0;
  m.slots_recycled <- 0;
  m.recycle_skips <- 0;
  m.recycler_errors <- 0

let diff a b =
  {
    proposes = a.proposes - b.proposes;
    commits = a.commits - b.commits;
    aborts = a.aborts - b.aborts;
    prepare_phases = a.prepare_phases - b.prepare_phases;
    accept_rounds = a.accept_rounds - b.accept_rounds;
    catch_up_entries = a.catch_up_entries - b.catch_up_entries;
    update_entries = a.update_entries - b.update_entries;
    followers_grown = a.followers_grown - b.followers_grown;
    permission_requests = a.permission_requests - b.permission_requests;
    permission_grants = a.permission_grants - b.permission_grants;
    perm_fast_path = a.perm_fast_path - b.perm_fast_path;
    perm_slow_path = a.perm_slow_path - b.perm_slow_path;
    fd_reads = a.fd_reads - b.fd_reads;
    entries_applied = a.entries_applied - b.entries_applied;
    slots_recycled = a.slots_recycled - b.slots_recycled;
    recycle_skips = a.recycle_skips - b.recycle_skips;
    recycler_errors = a.recycler_errors - b.recycler_errors;
  }

let pp ppf m =
  Fmt.pf ppf
    "proposes=%d commits=%d aborts=%d prepares=%d accepts=%d catch-up=%d update=%d \
     grown=%d perm-req=%d perm-grant=%d fast/slow=%d/%d fd-reads=%d applied=%d \
     recycled=%d recycle-skips=%d recycler-errors=%d"
    m.proposes m.commits m.aborts m.prepare_phases m.accept_rounds m.catch_up_entries
    m.update_entries m.followers_grown m.permission_requests m.permission_grants
    m.perm_fast_path m.perm_slow_path m.fd_reads m.entries_applied m.slots_recycled
    m.recycle_skips m.recycler_errors

let total ms =
  let acc = create () in
  List.iter
    (fun m ->
      acc.proposes <- acc.proposes + m.proposes;
      acc.commits <- acc.commits + m.commits;
      acc.aborts <- acc.aborts + m.aborts;
      acc.prepare_phases <- acc.prepare_phases + m.prepare_phases;
      acc.accept_rounds <- acc.accept_rounds + m.accept_rounds;
      acc.catch_up_entries <- acc.catch_up_entries + m.catch_up_entries;
      acc.update_entries <- acc.update_entries + m.update_entries;
      acc.followers_grown <- acc.followers_grown + m.followers_grown;
      acc.permission_requests <- acc.permission_requests + m.permission_requests;
      acc.permission_grants <- acc.permission_grants + m.permission_grants;
      acc.perm_fast_path <- acc.perm_fast_path + m.perm_fast_path;
      acc.perm_slow_path <- acc.perm_slow_path + m.perm_slow_path;
      acc.fd_reads <- acc.fd_reads + m.fd_reads;
      acc.entries_applied <- acc.entries_applied + m.entries_applied;
      acc.slots_recycled <- acc.slots_recycled + m.slots_recycled;
      acc.recycle_skips <- acc.recycle_skips + m.recycle_skips;
      acc.recycler_errors <- acc.recycler_errors + m.recycler_errors)
    ms;
  acc
