exception Aborted of string

let log_src = Logs.Src.create "mu.replication" ~doc:"Replication plane"

module L = (val Logs.src_log log_src : Logs.LOG)

(* Protocol-phase span, attributed to this replica's host. A span's end
   event is emitted even when the phase aborts (trace_span uses
   Fun.protect), so traces of failed rounds stay well-nested. With
   provenance on, the phase is also a stack-scoped provenance span: nested
   phases parent naturally, and the RDMA posts issued inside become its
   per-peer children. *)
let tspan t name f =
  let e = Replica.engine t in
  Sim.Engine.span_scope e ~pid:t.Replica.id name @@ fun () ->
  Sim.Engine.trace_span e ~cat:"mu" ~pid:t.Replica.id name f

let abort t reason =
  L.debug (fun m ->
      m "t=%dns replica %d aborts propose: %s"
        (Sim.Engine.now (Replica.engine t))
        t.Replica.id reason);
  t.Replica.metrics.Metrics.aborts <- t.Replica.metrics.Metrics.aborts + 1;
  t.Replica.need_new_followers <- true;
  t.Replica.skip_prepare <- false;
  (* Resetting [inflight] also forgets any recycler writes still in
     flight; their completions will be discarded as stale, so the
     outstanding count restarts from zero with the next leadership. *)
  Hashtbl.reset t.Replica.inflight;
  t.Replica.recycler_outstanding <- 0;
  raise (Aborted reason)

let confirmed_peers t =
  List.filter_map (fun id -> Replica.peer_opt t id) t.Replica.confirmed

let remote_majority t = Replica.majority t - 1

(* The leader's writes to its own log are plain stores, not fenced by QP
   permissions; awareness of revocation (Appendix A.1: "a leader cannot
   lose permission between two of its writes ... without being aware")
   must therefore be checked explicitly against the local permission
   module before every local log mutation in the leader path. The
   permission manager moves [perm_holder] off this replica the instant it
   grants a rising leader, so a deposed leader aborts here instead of
   clobbering a decided entry in its own log. *)
let check_own_permission t =
  if t.Replica.perm_holder <> Some t.Replica.id then
    abort t "lost write permission on own log"

(* --- completion bookkeeping ------------------------------------------- *)

let fresh_tag =
  let counter = ref 0 in
  fun () ->
    incr counter;
    !counter

let post_tracked t (p : Replica.peer) ~tag ~post =
  let wr = Replica.fresh_wr_id t in
  Hashtbl.replace t.Replica.inflight wr (p.Replica.pid, tag);
  post wr

(* Completions of the recycler's fire-and-forget zeroing writes arrive on
   the shared replication CQ and are reaped here, on the propose path:
   the outstanding count comes down and error statuses — permission
   revocation racing a zeroing write — become visible in metrics and
   telemetry instead of vanishing. (The error still aborts the propose
   below: a failed write to a confirmed follower means this leader lost
   its standing, whatever plane posted it.) *)
let note_recycler t ~pid ~tag ~status =
  if tag = Replica.recycler_tag then begin
    t.Replica.recycler_outstanding <- max 0 (t.Replica.recycler_outstanding - 1);
    match status with
    | Rdma.Verbs.Success -> ()
    | status ->
      t.Replica.metrics.Metrics.recycler_errors <-
        t.Replica.metrics.Metrics.recycler_errors + 1;
      (match t.Replica.tel with Some tel -> Telem.recycler_error tel | None -> ());
      let e = Replica.engine t in
      if Sim.Engine.traced e then
        Sim.Engine.trace_instant e ~cat:"mu" ~pid:t.Replica.id
          ~args:
            [
              ("peer", string_of_int pid);
              ("status", Fmt.str "%a" Rdma.Verbs.pp_wc_status status);
            ]
          "recycler_write_failed"
  end

(* Consume completions until [needed] successes with tag [tag] have been
   seen; returns the peer ids that succeeded. Completions from older tags
   are discarded if successful — but any error completion means this
   leader lost write permission somewhere (or a follower died) and aborts
   the call, matching "abort if any write fails" (Listing 2). *)
let await_tag t ~tag ~needed =
  let successes = ref [] in
  while List.length !successes < needed do
    let wc = Rdma.Cq.await t.Replica.repl_cq in
    match Hashtbl.find_opt t.Replica.inflight wc.Rdma.Verbs.wr_id with
    | None -> () (* stale: belongs to an aborted round *)
    | Some (pid, tg) -> (
      Hashtbl.remove t.Replica.inflight wc.Rdma.Verbs.wr_id;
      note_recycler t ~pid ~tag:tg ~status:wc.Rdma.Verbs.status;
      match wc.Rdma.Verbs.status with
      | Rdma.Verbs.Success -> if tg = tag then successes := pid :: !successes
      | Rdma.Verbs.Remote_access_error | Rdma.Verbs.Operation_timeout | Rdma.Verbs.Flushed
        ->
        abort t
          (Fmt.str "operation on peer %d failed: %a" pid Rdma.Verbs.pp_wc_status
             wc.Rdma.Verbs.status))
  done;
  !successes

let drain_completion t ~timeout =
  match Rdma.Cq.await_timeout t.Replica.repl_cq timeout with
  | None -> None
  | Some wc -> (
    match Hashtbl.find_opt t.Replica.inflight wc.Rdma.Verbs.wr_id with
    | None -> None
    | Some (pid, tg) -> (
      Hashtbl.remove t.Replica.inflight wc.Rdma.Verbs.wr_id;
      note_recycler t ~pid ~tag:tg ~status:wc.Rdma.Verbs.status;
      match wc.Rdma.Verbs.status with
      | Rdma.Verbs.Success -> Some (pid, tg)
      | Rdma.Verbs.Remote_access_error | Rdma.Verbs.Operation_timeout | Rdma.Verbs.Flushed
        ->
        abort t
          (Fmt.str "operation on peer %d failed: %a" pid Rdma.Verbs.pp_wc_status
             wc.Rdma.Verbs.status)))

(* --- permission acquisition (Listing 2, lines 8-12) ------------------- *)

let acquire_followers t =
  tspan t "perm_acquire" @@ fun () ->
  let host = t.Replica.host in
  let gen = Permissions.request_permissions t in
  let deadline = Sim.Engine.now (Replica.engine t) + 500_000_000 in
  let rec wait_majority () =
    let acks = Permissions.acked t ~gen in
    if List.length acks >= Replica.majority t then acks
    else if Sim.Engine.now (Replica.engine t) > deadline then
      abort t "no majority of permission acks"
    else begin
      Sim.Host.idle host Permissions.poll_interval;
      wait_majority ()
    end
  in
  let acks = wait_majority () in
  (* Growing confirmed followers (§4.2): wait briefly for the stragglers so
     timely replicas are not left behind. *)
  let acks =
    if List.length acks >= Replica.quorum_size t then acks
    else begin
      Sim.Host.idle host t.Replica.config.Config.grow_followers_grace;
      Permissions.acked t ~gen
    end
  in
  let cf = List.filter (fun id -> id <> t.Replica.id) acks in
  if List.length cf < remote_majority t then abort t "lost permission acks";
  (* Our requester-side endpoints may still be in ERR from when we were
     deposed; the grant implies the connection was re-established. *)
  List.iter
    (fun id ->
      match Replica.peer_opt t id with
      | Some p -> Rdma.Qp.repair p.Replica.repl_qp
      | None -> ())
    cf;
  t.Replica.confirmed <- cf;
  t.Replica.need_new_followers <- false;
  t.Replica.skip_prepare <- false

(* --- leader catch-up (Listing 5) --------------------------------------- *)

let read_fuos t =
  tspan t "read_fuos" @@ fun () ->
  let cf = confirmed_peers t in
  let tag = fresh_tag () in
  let bufs =
    List.map
      (fun p ->
        let buf = Bytes.create 8 in
        post_tracked t p ~tag ~post:(fun wr_id ->
            Rdma.Qp.post_read p.Replica.repl_qp ~wr_id ~dst:buf ~dst_off:0 ~len:8
              ~mr:p.Replica.remote_log_mr ~src_off:Log.fuo_offset);
        (p, buf))
      cf
  in
  (* Listing 5 reads every confirmed follower's FUO ("abort if any read
     fails"), so we wait for all of them. *)
  let _ = await_tag t ~tag ~needed:(List.length cf) in
  List.map (fun (p, buf) -> (p, Int64.to_int (Bytes.get_int64_le buf 0))) bufs

let copy_remote_slots t (p : Replica.peer) ~from_idx ~to_idx =
  let log = t.Replica.log in
  let slot_size = Log.slot_size log in
  for idx = from_idx to to_idx - 1 do
    let buf = Bytes.create slot_size in
    let tag = fresh_tag () in
    post_tracked t p ~tag ~post:(fun wr_id ->
        Rdma.Qp.post_read p.Replica.repl_qp ~wr_id ~dst:buf ~dst_off:0 ~len:slot_size
          ~mr:p.Replica.remote_log_mr ~src_off:(Log.slot_offset log idx));
    let _ = await_tag t ~tag ~needed:1 in
    if
      Log.decode_slot
        ~canary:(if t.Replica.config.Config.checksum_canary then Log.Checksum else Log.Flag)
        buf
      = None
    then
      abort t
        (Printf.sprintf "catch-up read of slot %d from %d returned an empty entry" idx
           p.Replica.pid);
    Log.write_slot_raw_local log idx buf
  done

let leader_catch_up t fuos =
  tspan t "catch_up" @@ fun () ->
  let log = t.Replica.log in
  let my_fuo = Log.fuo log in
  match List.fold_left (fun acc (p, f) -> match acc with Some (_, best) when best >= f -> acc | _ -> Some (p, f)) None fuos with
  | Some (p, best) when best > my_fuo ->
    t.Replica.metrics.Metrics.catch_up_entries <-
      t.Replica.metrics.Metrics.catch_up_entries + (best - my_fuo);
    copy_remote_slots t p ~from_idx:my_fuo ~to_idx:best;
    Log.set_fuo log best;
    Replica.apply_committed t
  | Some _ | None -> ()

(* --- update followers (Listing 6) -------------------------------------- *)

let update_followers t fuos =
  tspan t "update_followers" @@ fun () ->
  let log = t.Replica.log in
  let my_fuo = Log.fuo log in
  let tag = fresh_tag () in
  let posted = ref 0 in
  List.iter
    (fun (p, f) ->
      if f < my_fuo then begin
        for idx = f to my_fuo - 1 do
          (* A decided slot we are about to copy must never be empty; an
             empty image here would mean the entry was recycled while some
             follower still needed it — fail loudly rather than plant a
             hole in its log (cf. Lemma A.11 and §5.3). *)
          if Log.read_slot log idx = None then
            abort t
              (Printf.sprintf "slot %d needed by follower %d was recycled" idx
                 p.Replica.pid);
          let img = Log.read_slot_raw log idx in
          t.Replica.metrics.Metrics.update_entries <-
            t.Replica.metrics.Metrics.update_entries + 1;
          post_tracked t p ~tag ~post:(fun wr_id ->
              Rdma.Qp.post_write p.Replica.repl_qp ~wr_id ~src:img ~src_off:0
                ~len:(Bytes.length img) ~mr:p.Replica.remote_log_mr
                ~dst_off:(Log.slot_offset log idx));
          incr posted
        done;
        let fuo_buf = Bytes.create 8 in
        Bytes.set_int64_le fuo_buf 0 (Int64.of_int my_fuo);
        post_tracked t p ~tag ~post:(fun wr_id ->
            Rdma.Qp.post_write p.Replica.repl_qp ~wr_id ~src:fuo_buf ~src_off:0 ~len:8
              ~mr:p.Replica.remote_log_mr ~dst_off:Log.fuo_offset);
        incr posted
      end)
    fuos;
  if !posted > 0 then ignore (await_tag t ~tag ~needed:!posted)

let become_leader t =
  tspan t "become_leader" @@ fun () ->
  acquire_followers t;
  let fuos = read_fuos t in
  leader_catch_up t fuos;
  (* update_followers re-reads our FUO, so it uses the post-catch-up one. *)
  update_followers t fuos

(* Growing confirmed followers (§4.2, A.4.4): a replica whose permission
   ack arrived after the leader settled on a majority joins the set on the
   next propose — after being brought up to date, "the behavior is the
   same as if ℓ just became leader and its initial confirmed followers set
   was C ∪ S". *)
let grow_followers t =
  let acks = Permissions.acked t ~gen:t.Replica.req_gen in
  let newcomers =
    List.filter
      (fun id -> id <> t.Replica.id && not (List.mem id t.Replica.confirmed))
      acks
  in
  if newcomers <> [] then begin
    List.iter
      (fun id ->
        match Replica.peer_opt t id with
        | Some p -> Rdma.Qp.repair p.Replica.repl_qp
        | None -> ())
      newcomers;
    t.Replica.metrics.Metrics.followers_grown <-
      t.Replica.metrics.Metrics.followers_grown + List.length newcomers;
    t.Replica.confirmed <- List.sort compare (t.Replica.confirmed @ newcomers);
    (* The enlarged set behaves like a fresh one: catch up both ways and
       re-run the prepare phase before the next accept (A.4.5 (b)). *)
    let fuos = read_fuos t in
    leader_catch_up t fuos;
    update_followers t fuos;
    t.Replica.skip_prepare <- false
  end

(* --- prepare phase (Listing 2, lines 17-29) ---------------------------- *)

let read_min_proposals t =
  let cf = confirmed_peers t in
  let tag = fresh_tag () in
  let bufs =
    List.map
      (fun p ->
        let buf = Bytes.create 8 in
        post_tracked t p ~tag ~post:(fun wr_id ->
            Rdma.Qp.post_read p.Replica.repl_qp ~wr_id ~dst:buf ~dst_off:0 ~len:8
              ~mr:p.Replica.remote_log_mr ~src_off:Log.min_proposal_offset);
        (p.Replica.pid, buf))
      cf
  in
  (* Listing 2 prepare: every confirmed follower must answer ("abort if
     any read fails") — the value-visibility argument of Invariant A.6
     needs the full set, not just a majority. *)
  let ok = await_tag t ~tag ~needed:(List.length cf) in
  List.filter_map
    (fun (pid, buf) -> if List.mem pid ok then Some (Bytes.get_int64_le buf 0) else None)
    bufs

let prepare_phase t ~idx =
  tspan t "prepare" @@ fun () ->  t.Replica.metrics.Metrics.prepare_phases <- t.Replica.metrics.Metrics.prepare_phases + 1;
  let log = t.Replica.log in
  let minps = read_min_proposals t in
  check_own_permission t;
  let highest =
    List.fold_left
      (fun acc mp -> if Int64.compare mp acc > 0 then mp else acc)
      (Log.min_proposal log) minps
  in
  let prop_num = Replica.fresh_prop_num t ~above:highest in
  (* Write the new proposal number into each confirmed follower's
     minProposal, then read their slot at [idx]; RC FIFO ensures the write
     lands before the read executes. *)
  Log.set_min_proposal log prop_num;
  let cf = confirmed_peers t in
  let tag = fresh_tag () in
  let prop_buf = Bytes.create 8 in
  Bytes.set_int64_le prop_buf 0 prop_num;
  let slot_size = Log.slot_size log in
  let bufs =
    List.map
      (fun p ->
        post_tracked t p ~tag:(-1) ~post:(fun wr_id ->
            Rdma.Qp.post_write p.Replica.repl_qp ~wr_id ~src:prop_buf ~src_off:0 ~len:8
              ~mr:p.Replica.remote_log_mr ~dst_off:Log.min_proposal_offset);
        let buf = Bytes.create slot_size in
        post_tracked t p ~tag ~post:(fun wr_id ->
            Rdma.Qp.post_read p.Replica.repl_qp ~wr_id ~dst:buf ~dst_off:0 ~len:slot_size
              ~mr:p.Replica.remote_log_mr ~src_off:(Log.slot_offset log idx));
        (p.Replica.pid, buf))
      cf
  in
  let ok = await_tag t ~tag ~needed:(List.length cf) in
  let canary =
    if t.Replica.config.Config.checksum_canary then Log.Checksum else Log.Flag
  in
  let remote_slots =
    List.filter_map
      (fun (pid, buf) -> if List.mem pid ok then Log.decode_slot ~canary buf else None)
      bufs
  in
  let all_slots =
    match Log.read_slot log idx with Some s -> s :: remote_slots | None -> remote_slots
  in
  match all_slots with
  | [] ->
    (* Only empty slots: adopt our own value and omit the prepare phase
       from now on (§4.2, Corollary A.12). *)
    if not t.Replica.config.Config.disable_omit_prepare then
      t.Replica.skip_prepare <- true;
    (prop_num, None)
  | _ :: _ ->
    let best =
      List.fold_left
        (fun (acc : Log.slot) (s : Log.slot) ->
          if Int64.compare s.Log.proposal acc.Log.proposal > 0 then s else acc)
        (List.hd all_slots) (List.tl all_slots)
    in
    (prop_num, Some best.Log.value)

(* --- accept phase (Listing 2, lines 31-37) ----------------------------- *)

let stage_entry t value =
  let c = Replica.cal t in
  (* Copying the request into the RDMA-registered buffer is the leader's
     per-request CPU cost — the throughput wall of Fig. 7. *)
  Sim.Host.cpu t.Replica.host
    (c.Sim.Calibration.memcpy_request
    + int_of_float (float_of_int (Bytes.length value) *. c.Sim.Calibration.memcpy_byte));
  Log.encode_slot t.Replica.log ~proposal:t.Replica.prop_num ~value

let post_accept t ~tag ~idx ~img =
  check_own_permission t;
  let log = t.Replica.log in
  (* A durable local append must also reach the persistence domain. *)
  if t.Replica.config.Config.persistent_log then
    Sim.Host.cpu t.Replica.host (Replica.cal t).Sim.Calibration.pmem_flush;
  Log.write_slot_raw_local log idx img;
  List.iter
    (fun p ->
      post_tracked t p ~tag ~post:(fun wr_id ->
          Rdma.Qp.post_write p.Replica.repl_qp ~wr_id ~src:img ~src_off:0
            ~len:(Bytes.length img) ~mr:p.Replica.remote_log_mr
            ~dst_off:(Log.slot_offset log idx)))
    (confirmed_peers t)

(* Doorbell-batched accept: one RDMA write per confirmed follower covers
   [List.length imgs] physically contiguous slots starting at [idx]. The
   caller guarantees the range does not cross the circular-log wrap
   boundary, so slot images concatenate (at slot stride) into a single
   wire buffer; slots before the last are padded to the full stride,
   which matches a freshly zeroed slot tail. The persistence-domain
   flush, like the NIC doorbell, is paid once for the whole group — the
   amortization that makes batching a throughput lever. *)
let post_accept_range t ~tag ~idx ~imgs =
  match imgs with
  | [] -> ()
  | [ img ] -> post_accept t ~tag ~idx ~img
  | imgs ->
    check_own_permission t;
    let log = t.Replica.log in
    if t.Replica.config.Config.persistent_log then
      Sim.Host.cpu t.Replica.host (Replica.cal t).Sim.Calibration.pmem_flush;
    List.iteri (fun i img -> Log.write_slot_raw_local log (idx + i) img) imgs;
    let stride = Log.slot_size log in
    let k = List.length imgs in
    let last = List.nth imgs (k - 1) in
    let buf = Bytes.make (((k - 1) * stride) + Bytes.length last) '\000' in
    List.iteri (fun i img -> Bytes.blit img 0 buf (i * stride) (Bytes.length img)) imgs;
    List.iter
      (fun p ->
        post_tracked t p ~tag ~post:(fun wr_id ->
            Rdma.Qp.post_write p.Replica.repl_qp ~wr_id ~src:buf ~src_off:0
              ~len:(Bytes.length buf) ~mr:p.Replica.remote_log_mr
              ~dst_off:(Log.slot_offset log idx)))
      (confirmed_peers t)

let accept_phase t ~prop_num ~value ~idx =
  tspan t "accept" @@ fun () ->  t.Replica.metrics.Metrics.accept_rounds <- t.Replica.metrics.Metrics.accept_rounds + 1;
  let img = Log.encode_slot t.Replica.log ~proposal:prop_num ~value in
  let tag = fresh_tag () in
  post_accept t ~tag ~idx ~img;
  ignore (await_tag t ~tag ~needed:(remote_majority t))

(* --- log-space backpressure (§5.3) ------------------------------------- *)

let wait_log_space t ~idx =
  let cfg = t.Replica.config in
  let limit = cfg.Config.log_slots - cfg.Config.recycle_slack in
  while idx - t.Replica.zeroed_up_to >= limit do
    if t.Replica.stop then abort t "stopped";
    Sim.Host.idle t.Replica.host 10_000
  done

(* --- propose (Listing 2) ------------------------------------------------ *)

let propose t value =
  if t.Replica.stop || t.Replica.removed then raise (Aborted "replica stopped");
  t.Replica.metrics.Metrics.proposes <- t.Replica.metrics.Metrics.proposes + 1;
  t.Replica.propose_started_at <- Some (Sim.Engine.now (Replica.engine t));
  Fun.protect
    ~finally:(fun () -> t.Replica.propose_started_at <- None)
    (fun () ->
      tspan t "propose" @@ fun () ->
      if t.Replica.need_new_followers then become_leader t
      else grow_followers t;
      let committed_at = ref (-1) in
      while !committed_at < 0 do
        let idx = Log.fuo t.Replica.log in
        wait_log_space t ~idx;
        let prop_num, adopted =
          if t.Replica.skip_prepare then (t.Replica.prop_num, None)
          else prepare_phase t ~idx
        in
        let v = match adopted with Some v -> v | None -> value in
        accept_phase t ~prop_num ~value:v ~idx;
        let e = Replica.engine t in
        let commit_t0 = Sim.Engine.now e in
        tspan t "commit" (fun () ->
            Log.set_fuo t.Replica.log (idx + 1);
            Replica.apply_committed t);
        (match t.Replica.tel with
        | Some tel ->
          Telem.commit_ns tel (Sim.Engine.now e - commit_t0);
          Telem.commit_fuo tel (idx + 1)
        | None -> ());
        if Sim.Engine.traced e then
          Sim.Engine.trace_counter e ~cat:"mu" ~pid:t.Replica.id "fuo" ~value:(idx + 1);
        if adopted = None then committed_at := idx
      done;
      t.Replica.metrics.Metrics.commits <- t.Replica.metrics.Metrics.commits + 1;
      (match t.Replica.tel, t.Replica.propose_started_at with
      | Some tel, Some t0 ->
        Telem.replication_ns tel (Sim.Engine.now (Replica.engine t) - t0)
      | _ -> ());
      !committed_at)
