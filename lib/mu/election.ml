let log_src = Logs.Src.create "mu.election" ~doc:"Leader election (pull-score)"

module L = (val Logs.src_log log_src : Logs.LOG)

let read_own_heartbeat t = Rdma.Mr.get_i64 t.Replica.bg_mr ~off:Replica.bg_hb_offset

let is_alive t id =
  if id = t.Replica.id then true
  else Option.value (Hashtbl.find_opt t.Replica.alive id) ~default:true

let current_leader t = t.Replica.leader_estimate

(* Replication-plane activity check for fate sharing: a propose call in
   flight for longer than the configured bound means the replication
   thread is stuck and we should stop advertising liveness (§5.1). *)
let replication_stuck t =
  match t.Replica.propose_started_at with
  | None -> false
  | Some started ->
    Sim.Engine.now (Replica.engine t) - started
    > t.Replica.config.Config.fate_sharing_stuck_after

let heartbeat_fiber t =
  let c = Replica.cal t in
  let rec loop () =
    if t.Replica.stop || t.Replica.removed then ()
    else begin
      if not (t.Replica.config.Config.fate_sharing && replication_stuck t) then begin
        let v = read_own_heartbeat t in
        Rdma.Mr.set_i64 t.Replica.bg_mr ~off:Replica.bg_hb_offset (Int64.add v 1L)
      end;
      Sim.Host.cpu t.Replica.host c.Sim.Calibration.hb_increment_interval;
      loop ()
    end
  in
  loop ()

let clamp c v =
  let lo = c.Sim.Calibration.score_min and hi = c.Sim.Calibration.score_max in
  if v < lo then lo else if v > hi then hi else v

(* One monitor fiber per peer id: read its counter, score it, update the
   alive table with hysteresis. The peer record is re-resolved by id on
   every round — a rebooted peer reappears under the same id with fresh
   QPs, and the monitor must follow the new connection rather than poll a
   dead one forever. *)
let monitor_fiber t pid =
  let c = Replica.cal t in
  Hashtbl.replace t.Replica.scores pid c.Sim.Calibration.score_max;
  Hashtbl.replace t.Replica.alive pid true;
  let buf = Bytes.create 8 in
  let rec loop () =
    if t.Replica.stop || t.Replica.removed then ()
    else
    match Replica.peer_opt t pid with
    | None -> () (* peer was removed from the group *)
    | Some p ->
      Sim.Host.idle t.Replica.host c.Sim.Calibration.fd_read_interval;
      let advanced =
        if Rdma.Qp.state p.Replica.fd_qp <> Rdma.Verbs.Rts then false
        else begin
          t.Replica.metrics.Metrics.fd_reads <- t.Replica.metrics.Metrics.fd_reads + 1;
          Rdma.Qp.post_read p.Replica.fd_qp ~wr_id:(Replica.fresh_wr_id t) ~dst:buf
            ~dst_off:0 ~len:8 ~mr:p.Replica.remote_bg_mr ~src_off:Replica.bg_hb_offset;
          let wc = Rdma.Cq.await p.Replica.fd_cq in
          match wc.Rdma.Verbs.status with
          | Rdma.Verbs.Success ->
            let v = Bytes.get_int64_le buf 0 in
            let prev = Hashtbl.find_opt t.Replica.last_hb p.Replica.pid in
            Hashtbl.replace t.Replica.last_hb p.Replica.pid v;
            (match prev with None -> true | Some v0 -> Int64.compare v v0 > 0)
          | Rdma.Verbs.Remote_access_error | Rdma.Verbs.Operation_timeout
          | Rdma.Verbs.Flushed ->
            false
        end
      in
      let score =
        Option.value (Hashtbl.find_opt t.Replica.scores p.Replica.pid)
          ~default:c.Sim.Calibration.score_max
      in
      let score = clamp c (if advanced then score + 1 else score - 1) in
      Hashtbl.replace t.Replica.scores p.Replica.pid score;
      (match t.Replica.tel with
      | Some tel -> Telem.set_score tel ~peer:p.Replica.pid score
      | None -> ());
      let alive = Option.value (Hashtbl.find_opt t.Replica.alive p.Replica.pid) ~default:true in
      let e = Replica.engine t in
      let flip verdict name =
        Hashtbl.replace t.Replica.alive p.Replica.pid verdict;
        if Sim.Engine.traced e then
          Sim.Engine.trace_instant e ~cat:"mu" ~pid:t.Replica.id
            ~args:
              [ ("peer", string_of_int p.Replica.pid); ("score", string_of_int score) ]
            name;
        (* Provenance: suspecting the replica we believed was leader opens
           an election span — closed by the role fiber on takeover, or here
           when the suspicion turns out to be a false alarm. *)
        if verdict = false && p.Replica.pid = t.Replica.leader_estimate
           && t.Replica.election_span = 0
        then
          t.Replica.election_span <-
            Sim.Engine.span_open e ~pid:t.Replica.id ~parent:0
              ~args:[ ("suspect", string_of_int p.Replica.pid) ]
              "election"
        else if verdict && t.Replica.election_span <> 0
                && p.Replica.pid < t.Replica.id
        then begin
          Sim.Engine.span_close e ~pid:t.Replica.id
            ~args:[ ("outcome", "false_alarm") ]
            t.Replica.election_span;
          t.Replica.election_span <- 0
        end
      in
      if alive && score < c.Sim.Calibration.score_fail then flip false "suspect"
      else if (not alive) && score > c.Sim.Calibration.score_recover then
        flip true "recover";
      loop ()
  in
  loop ()

let lowest_alive t =
  List.fold_left
    (fun best p ->
      if is_alive t p.Replica.pid && p.Replica.pid < best then p.Replica.pid else best)
    t.Replica.id t.Replica.peers

let role_fiber t ~on_role_change =
  let c = Replica.cal t in
  let rec loop () =
    if t.Replica.stop || t.Replica.removed then ()
    else begin
      let leader = lowest_alive t in
      t.Replica.leader_estimate <- leader;
      (match t.Replica.role, leader = t.Replica.id with
      | Replica.Follower, true ->
        t.Replica.role <- Replica.Leader;
        t.Replica.role_generation <- t.Replica.role_generation + 1;
        (match t.Replica.tel with Some tel -> Telem.election tel | None -> ());
        t.Replica.need_new_followers <- true;
        L.info (fun m ->
            m "t=%dns replica %d becomes leader (gen %d)"
              (Sim.Engine.now (Replica.engine t))
              t.Replica.id t.Replica.role_generation);
        let e = Replica.engine t in
        if Sim.Engine.traced e then
          Sim.Engine.trace_instant e ~cat:"mu" ~pid:t.Replica.id
            ~args:[ ("gen", string_of_int t.Replica.role_generation) ]
            "leader";
        if t.Replica.election_span <> 0 then begin
          Sim.Engine.span_close e ~pid:t.Replica.id
            ~args:
              [ ("outcome", "leader");
                ("gen", string_of_int t.Replica.role_generation) ]
            t.Replica.election_span;
          t.Replica.election_span <- 0
        end;
        on_role_change Replica.Leader
      | Replica.Leader, false ->
        t.Replica.role <- Replica.Follower;
        t.Replica.role_generation <- t.Replica.role_generation + 1;
        (match t.Replica.tel with Some tel -> Telem.demotion tel | None -> ());
        L.info (fun m ->
            m "t=%dns replica %d demoted (leader estimate %d)"
              (Sim.Engine.now (Replica.engine t))
              t.Replica.id leader);
        let e = Replica.engine t in
        if Sim.Engine.traced e then
          Sim.Engine.trace_instant e ~cat:"mu" ~pid:t.Replica.id
            ~args:[ ("leader", string_of_int leader) ]
            "demoted";
        on_role_change Replica.Follower
      | Replica.Leader, true | Replica.Follower, false -> ());
      Sim.Host.idle t.Replica.host c.Sim.Calibration.fd_read_interval;
      loop ()
    end
  in
  loop ()

let start t ~on_role_change =
  Sim.Host.spawn t.Replica.host ~name:"heartbeat" (fun () -> heartbeat_fiber t);
  List.iter
    (fun p ->
      Sim.Host.spawn t.Replica.host
        ~name:(Printf.sprintf "monitor-%d" p.Replica.pid)
        (fun () -> monitor_fiber t p.Replica.pid))
    t.Replica.peers;
  Sim.Host.spawn t.Replica.host ~name:"role" (fun () -> role_fiber t ~on_role_change)
