(** Per-replica telemetry handles.

    A replica resolves its instruments once at creation (when the
    engine has a registry attached — see {!Sim.Engine.set_metrics});
    protocol code then updates them through the functions below, each a
    direct field update with no registry lookup. With telemetry off the
    replica holds [None] and every instrumented site is one option
    check. *)

type t

val create : Telemetry.Registry.t -> id:int -> t
val of_engine : Sim.Engine.t -> id:int -> t option

val set_score : t -> peer:int -> int -> unit
(** Update [mu_score{replica,peer}] — the pull-score this replica's
    failure detector assigns to [peer]. *)

val election : t -> unit
val demotion : t -> unit
val commit_fuo : t -> int -> unit
val recycle : t -> int -> unit

(** [recycle_skip] counts recycle rounds abandoned without zeroing (failed
    confirmed-peer head read, revoked permission, or mid-round
    deposition); [recycler_error] counts error completions observed on
    recycler operations. *)

val recycle_skip : t -> unit

val recycler_error : t -> unit
val replication_ns : t -> int -> unit
val commit_ns : t -> int -> unit

(** {1 Crash recovery}

    [rejoin_parity_ns] records the restart→log-parity latency of a
    rejoin; [catch_up] adds entries pulled from the leader during it;
    [shed] counts requests refused by a degraded leader's queue bound;
    [degraded_ns] records completed quorum-lost windows. *)

val rejoin_parity_ns : t -> int -> unit
val catch_up : t -> int -> unit
val shed : t -> unit
val degraded_ns : t -> int -> unit

(** {1 Online-detection edges}

    [degraded_ns] and [catch_up]/[rejoin_parity_ns] only record once a
    window closes or parity is reached, which is useless to a live
    monitor. [set_quorum_lost] raises/clears
    [mu_quorum_lost{replica}] at the degraded-window edges, and
    [restart] bumps [mu_restarts_total{replica}] the moment a restart
    begins, so rejoin-in-flight is observable as restarts minus
    completed parities. *)

val set_quorum_lost : t -> bool -> unit
val restart : t -> unit

val batch_occupancy : t -> int -> unit
(** Record the number of requests coalesced into one committed log
    entry ([mu_batch_occupancy{replica}] — a count histogram, not a
    latency). *)
