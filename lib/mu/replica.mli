(** Per-replica state and cluster wiring (Fig. 1 of the paper).

    A replica owns:
    - a {e replication plane}: its consensus log MR and one RC QP per peer
      sharing one completion queue (§3.2);
    - a {e background plane}: a small always-readable/writable MR holding
      the heartbeat counter, the replayer's log-head, and the permission
      request/ack arrays (§5.1, §5.2), plus dedicated QPs per peer for
      failure detection, permission traffic and log recycling.

    The modules {!Election}, {!Permissions}, {!Replication}, {!Replayer}
    and {!Recycler} implement the protocol logic over this state; {!Smr}
    assembles them. *)

type role = Leader | Follower

(** Handles to one remote peer: our QP endpoints toward it and its
    exchanged memory-region keys. *)
type peer = {
  pid : int;
  repl_qp : Rdma.Qp.t;
  fd_qp : Rdma.Qp.t;
  fd_cq : Rdma.Cq.t;
  perm_qp : Rdma.Qp.t;
  perm_cq : Rdma.Cq.t;
  req_qp : Rdma.Qp.t;
  req_cq : Rdma.Cq.t;
  misc_qp : Rdma.Qp.t;
  misc_cq : Rdma.Cq.t;
  remote_log_mr : Rdma.Mr.t;
  remote_bg_mr : Rdma.Mr.t;
}

type t = {
  config : Config.t;
  host : Sim.Host.t;
  id : int;
  log : Log.t;
  bg_mr : Rdma.Mr.t;
  repl_cq : Rdma.Cq.t;
  mutable peers : peer list;  (** Excludes self; sorted by id. *)
  (* --- leader election state (§5.1) --- *)
  mutable leader_estimate : int;
  scores : (int, int) Hashtbl.t;  (** Pull-score per peer id. *)
  alive : (int, bool) Hashtbl.t;
  last_hb : (int, int64) Hashtbl.t;
  mutable role : role;
  mutable role_generation : int;  (** Bumped on every role change. *)
  (* --- permission state (§5.2) --- *)
  mutable perm_holder : int option;  (** Who may write my log. *)
  last_granted : (int, int64) Hashtbl.t;  (** Per requester: last acked gen. *)
  mutable req_gen : int64;  (** My own request generation counter. *)
  (* --- replication-plane leader state (§4) --- *)
  mutable confirmed : int list;  (** Confirmed followers (peer ids). *)
  mutable need_new_followers : bool;
      (** Set when just elected or after an abort (Listing 2 line 7). *)
  mutable prop_num : int64;
  mutable skip_prepare : bool;  (** Omit-prepare optimization (§4.2). *)
  mutable wr_seq : int;
  inflight : (int, int * int) Hashtbl.t;  (** wr_id → (peer id, tag). *)
  mutable propose_started_at : int option;  (** For fate sharing (§5.1). *)
  mutable election_span : int;
      (** Provenance span open from the moment this replica suspects its
          leader estimate until it takes over (or the suspicion clears);
          0 when no election is in flight or provenance is off. *)
  (* --- execution --- *)
  mutable applied : int;  (** Log head: entries injected into the app. *)
  mutable on_commit : int -> bytes -> unit;
  mutable zeroed_up_to : int;  (** Recycling low-water mark (§5.3). *)
  mutable recycler_outstanding : int;
      (** Zeroing writes posted by {!Recycler} whose completions have not
          been reaped yet (the propose path reaps them; see
          {!recycler_tag}). Bounds the junk a deposed leader can leave on
          the shared CQ. *)
  metrics : Metrics.t;  (** Operation counters for observability. *)
  tel : Telem.t option;  (** Registry-backed telemetry; [None] when off. *)
  mutable removed : bool;  (** Membership: removed from the group (§5.4). *)
  mutable stop : bool;  (** Shut this replica's fibers down. *)
}

(** {1 Background-plane memory layout} *)

val bg_hb_offset : int
val bg_log_head_offset : int
val bg_req_offset : int -> int
(** Offset of the permission-request slot written by replica [id]. *)

val bg_ack_offset : int -> int
(** Offset of the permission-ack slot written by replica [id]. *)

val bg_size : n:int -> int

(** {1 Construction} *)

val create_cluster :
  Sim.Engine.t -> Sim.Calibration.t -> Config.t -> t array
(** Create [config.n] replicas on fresh hosts and fully connect their
    planes. Replica ids are 0..n-1; replica 0 is the expected first leader
    (lowest id, §5.1). *)

val create_unwired :
  Sim.Engine.t -> Sim.Calibration.t -> Config.t -> id:int -> t
(** A replica not yet connected to anyone (for membership changes). *)

val wire : t -> t -> unit
(** Connect the planes of two replicas (idempotent per pair). When
    durable state is on, both replicas' member lists are re-persisted. *)

val unwire : t -> pid:int -> unit
(** Tear down this replica's connection to peer [pid]: every QP toward it
    is force-disconnected (both endpoints go to error, Velos-style), the
    peer record is dropped, and per-peer volatile state (permission
    grants, heartbeats, scores) is cleared so a rebooted incarnation of
    [pid] can be {!wire}d afresh. No-op if [pid] is not a peer. *)

(** {1 Accessors and helpers} *)

val recycler_tag : int
(** Reserved [inflight] tag for the recycler's zeroing writes on the
    replication CQ. Their completions are reaped by the propose path,
    which decrements [recycler_outstanding] and records errors in
    [Metrics.recycler_errors] / telemetry. *)

val config_tag : int
(** Reserved [inflight] tag for membership-configuration writes. *)

val engine : t -> Sim.Engine.t
val cal : t -> Sim.Calibration.t
val peer : t -> int -> peer
val peer_opt : t -> int -> peer option
val fresh_wr_id : t -> int
val is_leader : t -> bool
val majority : t -> int

val quorum_size : t -> int
(** Current group size (peers + self), accounting for removals. *)

val fresh_prop_num : t -> above:int64 -> int64
(** Next proposal number for this replica: unique across replicas
    (multiples of n plus id) and strictly greater than [above]. *)

val apply_committed : t -> unit
(** Inject every decided-but-unapplied entry below the local FUO into the
    application and advance the log head (shared by leader and replayer
    paths so nothing is applied twice). *)
