(** Per-replica operation counters.

    Lightweight observability for experiments and debugging: every plane
    bumps its counters as it works, and harnesses can snapshot or print
    them (e.g. to see how many aborts a contention experiment caused, or
    how often the permission fast path fell back to a QP restart). *)

type t = {
  mutable proposes : int;  (** Propose calls started. *)
  mutable commits : int;  (** Propose calls that returned. *)
  mutable aborts : int;  (** Propose calls that aborted (§4.1). *)
  mutable prepare_phases : int;  (** Prepare phases executed (not omitted). *)
  mutable accept_rounds : int;  (** Accept-phase write rounds. *)
  mutable catch_up_entries : int;  (** Entries copied in (Listing 5). *)
  mutable update_entries : int;  (** Entries pushed to followers (Listing 6). *)
  mutable followers_grown : int;  (** Stragglers admitted to the CF set (§4.2). *)
  mutable permission_requests : int;  (** Requests we broadcast. *)
  mutable permission_grants : int;  (** Grants we performed as responder. *)
  mutable perm_fast_path : int;  (** QP-flag switches that succeeded (§5.2). *)
  mutable perm_slow_path : int;  (** QP restarts (fallback or direct). *)
  mutable fd_reads : int;  (** Heartbeat counter reads issued. *)
  mutable entries_applied : int;  (** Entries injected into the app. *)
  mutable slots_recycled : int;  (** Log slots zeroed for reuse (§5.3). *)
  mutable recycle_skips : int;  (** Recycle rounds skipped: a log-head read
                                    failed on a confirmed peer, permission
                                    was in doubt, or the leader was being
                                    deposed mid-round. *)
  mutable recycler_errors : int;  (** Error completions on recycler
                                      operations (head reads and zeroing
                                      writes). *)
}

val create : unit -> t
val pp : t Fmt.t

val copy : t -> t
(** Independent snapshot; later mutation of the original is not seen. *)

val reset : t -> unit
(** Zero every counter in place. *)

val diff : t -> t -> t
(** [diff after before] — field-wise subtraction; with [before] a
    {!copy} taken earlier from the same live record, the result is the
    activity in between (e.g. the work done by one fail-over). *)

val total : t list -> t
(** Sum across replicas. [total [diff a b]] equals
    [diff (total [a]) (total [b])] field-wise. *)
