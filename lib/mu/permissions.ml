let log_src = Logs.Src.create "mu.permissions" ~doc:"Permission management plane"

module L = (val Logs.src_log log_src : Logs.LOG)

let poll_interval = 2_000

let read_req t id = Rdma.Mr.get_i64 t.Replica.bg_mr ~off:(Replica.bg_req_offset id)
let read_ack t id = Rdma.Mr.get_i64 t.Replica.bg_mr ~off:(Replica.bg_ack_offset id)

let last_granted t id =
  Option.value (Hashtbl.find_opt t.Replica.last_granted id) ~default:0L

(* Change the access our replication QP toward [pid] grants, using Mu's
   fast-slow path. A QP that is not operational (e.g. went to ERR when we
   NAKed a deposed leader) cannot be fixed by a flag change, so it takes
   the restart path directly. *)
let switch_access t pid access =
  match Replica.peer_opt t pid with
  | None -> ()
  | Some p ->
    if Rdma.Qp.state p.Replica.repl_qp <> Rdma.Verbs.Rts then begin
      t.Replica.metrics.Metrics.perm_slow_path <-
        t.Replica.metrics.Metrics.perm_slow_path + 1;
      Rdma.Perm.restart_qp p.Replica.repl_qp access
    end
    else
      match Rdma.Perm.change_qp_flags p.Replica.repl_qp access with
      | Ok () ->
        t.Replica.metrics.Metrics.perm_fast_path <-
          t.Replica.metrics.Metrics.perm_fast_path + 1
      | Error `Qp_error ->
        t.Replica.metrics.Metrics.perm_slow_path <-
          t.Replica.metrics.Metrics.perm_slow_path + 1;
        Rdma.Perm.restart_qp p.Replica.repl_qp access

let revoke_current_holder t ~except =
  match t.Replica.perm_holder with
  | Some holder when holder <> except && holder <> t.Replica.id ->
    switch_access t holder Rdma.Verbs.access_ro;
    t.Replica.perm_holder <- None
  | Some _ | None -> ()

let write_ack t requester gen =
  if requester = t.Replica.id then
    Rdma.Mr.set_i64 t.Replica.bg_mr ~off:(Replica.bg_ack_offset t.Replica.id) gen
  else begin
    let p = Replica.peer t requester in
    let buf = Bytes.create 8 in
    Bytes.set_int64_le buf 0 gen;
    Rdma.Qp.post_write p.Replica.perm_qp ~wr_id:(Replica.fresh_wr_id t) ~src:buf ~src_off:0
      ~len:8 ~mr:p.Replica.remote_bg_mr ~dst_off:(Replica.bg_ack_offset t.Replica.id);
    (* This fiber is the sole consumer of the perm CQ; the outcome does not
       matter (a dead requester simply never reads the ack). *)
    ignore (Rdma.Cq.await p.Replica.perm_cq)
  end

let handle_request t requester gen =
  L.debug (fun m ->
      m "t=%dns replica %d grants write access to %d (gen %Ld)"
        (Sim.Engine.now (Replica.engine t))
        t.Replica.id requester gen);
  Sim.Engine.span_scope (Replica.engine t) ~pid:t.Replica.id
    ~args:[ ("requester", string_of_int requester) ]
    "perm_grant"
  @@ fun () ->
  Sim.Engine.trace_span (Replica.engine t) ~cat:"mu" ~pid:t.Replica.id
    ~args:[ ("requester", string_of_int requester) ]
    "perm_grant"
    (fun () ->
      t.Replica.metrics.Metrics.permission_grants <-
        t.Replica.metrics.Metrics.permission_grants + 1;
      revoke_current_holder t ~except:requester;
      if requester <> t.Replica.id then switch_access t requester Rdma.Verbs.access_rw;
      t.Replica.perm_holder <- Some requester;
      Hashtbl.replace t.Replica.last_granted requester gen;
      write_ack t requester gen)

let pending_request t =
  (* Requests are served in requester-id order (§5.2). *)
  let ids = t.Replica.id :: List.map (fun p -> p.Replica.pid) t.Replica.peers in
  let ids = List.sort compare ids in
  List.find_map
    (fun id ->
      let gen = read_req t id in
      if Int64.compare gen (last_granted t id) > 0 then Some (id, gen) else None)
    ids

let grant_self_local t ~gen = handle_request t t.Replica.id gen

let start t =
  Sim.Host.spawn t.Replica.host ~name:"perm-mgmt" (fun () ->
      let host = t.Replica.host in
      let rec loop () =
        if t.Replica.stop || t.Replica.removed then ()
        else begin
          (match pending_request t with
          | Some (requester, gen) -> handle_request t requester gen
          | None -> ());
          Sim.Host.idle host poll_interval;
          loop ()
        end
      in
      loop ())

let request_permissions t =
  t.Replica.metrics.Metrics.permission_requests <-
    t.Replica.metrics.Metrics.permission_requests + 1;
  t.Replica.req_gen <- Int64.add t.Replica.req_gen 1L;
  let gen = t.Replica.req_gen in
  (* Local request first: fences out the previous holder of our own log. *)
  Rdma.Mr.set_i64 t.Replica.bg_mr ~off:(Replica.bg_req_offset t.Replica.id) gen;
  let buf = Bytes.create 8 in
  Bytes.set_int64_le buf 0 gen;
  List.iter
    (fun p ->
      (* Requests ride their own QP pair; completions are not awaited — the
         grant is observed through the ack array. *)
      Rdma.Qp.repair p.Replica.req_qp;
      Rdma.Qp.post_write p.Replica.req_qp ~wr_id:(Replica.fresh_wr_id t) ~src:buf ~src_off:0
        ~len:8 ~mr:p.Replica.remote_bg_mr ~dst_off:(Replica.bg_req_offset t.Replica.id))
    t.Replica.peers;
  gen

let acked t ~gen =
  let self = if Int64.equal (read_ack t t.Replica.id) gen then [ t.Replica.id ] else [] in
  List.fold_left
    (fun acc p ->
      let id = p.Replica.pid in
      if Int64.equal (read_ack t id) gen then id :: acc else acc)
    self t.Replica.peers
  |> List.sort compare
