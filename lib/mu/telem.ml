(* Per-replica telemetry handles, resolved once at replica creation.
   Every call is a no-op record update on pre-resolved instruments; the
   option check happens at the replica's call site. *)

type t = {
  reg : Telemetry.Registry.t;
  id : int;
  replication : Telemetry.Hdr.t;
  commit : Telemetry.Hdr.t;
  elections : Telemetry.Registry.counter;
  demotions : Telemetry.Registry.counter;
  fuo : Telemetry.Registry.gauge;
  watermark : Telemetry.Registry.gauge;
  recycle_skips : Telemetry.Registry.counter;
  recycler_errors : Telemetry.Registry.counter;
  rejoin_parity : Telemetry.Hdr.t;
  catch_up_entries : Telemetry.Registry.counter;
  shed_requests : Telemetry.Registry.counter;
  degraded : Telemetry.Hdr.t;
  (* Online-detection instruments: [degraded] only records once a window
     *closes*, and catch-up totals only land at parity, so the monitor
     needs live edges — a gauge raised while quorum is lost and a counter
     bumped when a restart begins (rejoin-in-flight = restarts minus
     completed parities). *)
  quorum_lost : Telemetry.Registry.gauge;
  restarts : Telemetry.Registry.counter;
  batch_occupancy : Telemetry.Hdr.t;
  (* mu_score gauges are per (replica, peer); peers are discovered as
     the failure detector first reads them. *)
  score_gauges : (int, Telemetry.Registry.gauge) Hashtbl.t;
}

let create reg ~id =
  let labels = [ ("replica", string_of_int id) ] in
  {
    reg;
    id;
    replication =
      Telemetry.Registry.histogram reg ~help:"Client-visible replication latency" ~labels
        "mu_replication_latency_ns";
    commit =
      Telemetry.Registry.histogram reg ~help:"Leader commit (quorum write) latency" ~labels
        "mu_commit_apply_ns";
    elections =
      Telemetry.Registry.counter reg ~help:"Follower-to-leader transitions" ~labels
        "mu_elections_total";
    demotions =
      Telemetry.Registry.counter reg ~help:"Leader-to-follower transitions" ~labels
        "mu_demotions_total";
    fuo = Telemetry.Registry.gauge reg ~help:"First undecided offset" ~labels "mu_fuo";
    watermark =
      Telemetry.Registry.gauge reg ~help:"Log slots zeroed by the recycler" ~labels
        "mu_recycle_watermark";
    recycle_skips =
      Telemetry.Registry.counter reg
        ~help:"Recycle rounds skipped because a confirmed peer's log head was unreadable or permission was in doubt"
        ~labels "mu_recycle_skips_total";
    recycler_errors =
      Telemetry.Registry.counter reg
        ~help:"Error completions on recycler head reads and zeroing writes" ~labels
        "mu_recycler_errors_total";
    rejoin_parity =
      Telemetry.Registry.histogram reg
        ~help:"Restart-to-log-parity latency of a rejoining replica" ~labels
        "mu_rejoin_time_to_parity_ns";
    catch_up_entries =
      Telemetry.Registry.counter reg
        ~help:"Log entries pulled from the leader during rejoin catch-up" ~labels
        "mu_catch_up_entries_total";
    shed_requests =
      Telemetry.Registry.counter reg
        ~help:"Requests refused with a retryable error by a degraded leader's queue bound"
        ~labels "mu_shed_requests_total";
    degraded =
      Telemetry.Registry.histogram reg
        ~help:"Duration of leader degraded-mode windows (quorum lost)" ~labels
        "mu_degraded_ns";
    quorum_lost =
      Telemetry.Registry.gauge reg
        ~help:"1 while this leader is in a degraded (quorum-lost) window" ~labels
        "mu_quorum_lost";
    restarts =
      Telemetry.Registry.counter reg
        ~help:"Host restarts begun (a rejoin is in flight until log parity)" ~labels
        "mu_restarts_total";
    batch_occupancy =
      Telemetry.Registry.histogram reg
        ~help:"Requests coalesced per committed log entry (batch occupancy)" ~labels
        "mu_batch_occupancy";
    score_gauges = Hashtbl.create 8;
  }

let of_engine eng ~id =
  match Sim.Engine.metrics eng with None -> None | Some reg -> Some (create reg ~id)

let set_score t ~peer v =
  let g =
    match Hashtbl.find_opt t.score_gauges peer with
    | Some g -> g
    | None ->
      let g =
        Telemetry.Registry.gauge t.reg ~help:"Pull-score of a peer as seen by this replica"
          ~labels:[ ("peer", string_of_int peer); ("replica", string_of_int t.id) ]
          "mu_score"
      in
      Hashtbl.replace t.score_gauges peer g;
      g
  in
  Telemetry.Registry.Gauge.set g v

let recycle_skip t = Telemetry.Registry.Counter.inc t.recycle_skips
let recycler_error t = Telemetry.Registry.Counter.inc t.recycler_errors
let election t = Telemetry.Registry.Counter.inc t.elections
let demotion t = Telemetry.Registry.Counter.inc t.demotions
let commit_fuo t v = Telemetry.Registry.Gauge.set t.fuo v
let recycle t v = Telemetry.Registry.Gauge.set t.watermark v
let replication_ns t ns = Telemetry.Hdr.record t.replication ns
let commit_ns t ns = Telemetry.Hdr.record t.commit ns
let rejoin_parity_ns t ns = Telemetry.Hdr.record t.rejoin_parity ns

let catch_up t n =
  if n > 0 then Telemetry.Registry.Counter.add t.catch_up_entries n

let shed t = Telemetry.Registry.Counter.inc t.shed_requests
let degraded_ns t ns = Telemetry.Hdr.record t.degraded ns
let set_quorum_lost t on = Telemetry.Registry.Gauge.set t.quorum_lost (if on then 1 else 0)
let restart t = Telemetry.Registry.Counter.inc t.restarts
let batch_occupancy t n = Telemetry.Hdr.record t.batch_occupancy n
