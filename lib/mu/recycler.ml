(* Read one follower's log head (8 bytes in its background MR) over the
   misc QP; this fiber is that CQ's only consumer. *)
let read_log_head t (p : Replica.peer) =
  let buf = Bytes.create 8 in
  Rdma.Qp.post_read p.Replica.misc_qp ~wr_id:(Replica.fresh_wr_id t) ~dst:buf ~dst_off:0
    ~len:8 ~mr:p.Replica.remote_bg_mr ~src_off:Replica.bg_log_head_offset;
  match (Rdma.Cq.await p.Replica.misc_cq).Rdma.Verbs.status with
  | Rdma.Verbs.Success -> Some (Int64.to_int (Bytes.get_int64_le buf 0))
  | Rdma.Verbs.Remote_access_error | Rdma.Verbs.Operation_timeout | Rdma.Verbs.Flushed ->
    None

(* Zero the physical byte ranges of logical slots [from_idx, to_idx), both
   locally and in each confirmed follower's log. Ranges are coalesced into
   at most two contiguous writes (the region may wrap) and chunked so a
   single write stays modest. *)
let zero_ranges t ~from_idx ~to_idx =
  if to_idx > from_idx then begin
    let log = t.Replica.log in
    let slot_size = Log.slot_size log in
    let nslots = Log.slots log in
    let count = to_idx - from_idx in
    assert (count <= nslots);
    let first_phys = from_idx mod nslots in
    let first_run = min count (nslots - first_phys) in
    let runs =
      if first_run = count then [ (first_phys, count) ]
      else [ (first_phys, first_run); (0, count - first_run) ]
    in
    let chunk_slots = max 1 (262_144 / slot_size) in
    let cf = List.filter_map (fun id -> Replica.peer_opt t id) t.Replica.confirmed in
    List.iter
      (fun (phys_start, run) ->
        let off = ref 0 in
        while !off < run do
          let n = min chunk_slots (run - !off) in
          let byte_off = Log.slot_offset log (phys_start + !off) in
          let zeros = Bytes.make (n * slot_size) '\000' in
          Rdma.Mr.set_bytes (Log.mr log) ~off:byte_off zeros;
          List.iter
            (fun p ->
              let wr = Replica.fresh_wr_id t in
              Hashtbl.replace t.Replica.inflight wr (p.Replica.pid, -2);
              Rdma.Qp.post_write p.Replica.repl_qp ~wr_id:wr ~src:zeros ~src_off:0
                ~len:(Bytes.length zeros) ~mr:p.Replica.remote_log_mr ~dst_off:byte_off)
            cf;
          off := !off + n
        done)
      runs
  end

let recycle_once t =
  (* Log heads of ALL followers, not just the confirmed ones (§5.3): a
     replica that is currently outside the confirmed set — e.g. one whose
     permission ack arrived late — still holds a position in the log, and
     zeroing past it would hand it recycled (empty) entries at the next
     leader change. Only peers whose NIC is unreachable (crashed hosts,
     which under crash-stop never return) are skipped. *)
  let heads = List.filter_map (fun p -> read_log_head t p) t.Replica.peers in
  let min_head = List.fold_left min t.Replica.applied heads in
  if min_head > t.Replica.zeroed_up_to then begin
    let count = min_head - t.Replica.zeroed_up_to in
    t.Replica.metrics.Metrics.slots_recycled <-
      t.Replica.metrics.Metrics.slots_recycled + count;
    Sim.Engine.trace_span (Replica.engine t) ~cat:"mu" ~pid:t.Replica.id
      ~args:[ ("slots", string_of_int count) ]
      "recycle"
      (fun () -> zero_ranges t ~from_idx:t.Replica.zeroed_up_to ~to_idx:min_head);
    t.Replica.zeroed_up_to <- min_head;
    match t.Replica.tel with Some tel -> Telem.recycle tel min_head | None -> ()
  end

let start t =
  Sim.Host.spawn t.Replica.host ~name:"recycler" (fun () ->
      let rec loop () =
        if t.Replica.stop || t.Replica.removed then ()
        else begin
          if
            t.Replica.role = Replica.Leader
            && (not t.Replica.need_new_followers)
            && t.Replica.confirmed <> []
          then recycle_once t;
          Sim.Host.idle t.Replica.host t.Replica.config.Config.recycle_interval;
          loop ()
        end
      in
      loop ())
