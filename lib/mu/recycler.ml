let tel_skip t =
  t.Replica.metrics.Metrics.recycle_skips <- t.Replica.metrics.Metrics.recycle_skips + 1;
  match t.Replica.tel with Some tel -> Telem.recycle_skip tel | None -> ()

let tel_error t =
  t.Replica.metrics.Metrics.recycler_errors <-
    t.Replica.metrics.Metrics.recycler_errors + 1;
  match t.Replica.tel with Some tel -> Telem.recycler_error tel | None -> ()

(* Read one follower's log head (8 bytes in its background MR) over the
   misc QP; this fiber is that CQ's only consumer. Failures are returned,
   not swallowed: which ones may safely exclude the peer from the minimum
   is a policy decision that belongs to [recycle_once]. *)
let read_log_head t (p : Replica.peer) =
  let buf = Bytes.create 8 in
  Rdma.Qp.post_read p.Replica.misc_qp ~wr_id:(Replica.fresh_wr_id t) ~dst:buf ~dst_off:0
    ~len:8 ~mr:p.Replica.remote_bg_mr ~src_off:Replica.bg_log_head_offset;
  match (Rdma.Cq.await p.Replica.misc_cq).Rdma.Verbs.status with
  | Rdma.Verbs.Success -> Ok (Int64.to_int (Bytes.get_int64_le buf 0))
  | status ->
    tel_error t;
    let e = Replica.engine t in
    if Sim.Engine.traced e then
      Sim.Engine.trace_instant e ~cat:"mu" ~pid:t.Replica.id
        ~args:
          [
            ("peer", string_of_int p.Replica.pid);
            ("status", Fmt.str "%a" Rdma.Verbs.pp_wc_status status);
          ]
        "recycle_head_read_failed";
    Error status

(* Cap on fire-and-forget zeroing writes awaiting completions on the
   shared replication CQ. A deposed leader stops proposing, so nothing
   reaps its tag; without a cap it would keep stuffing the CQ every
   recycle round until demotion. *)
let max_outstanding = 256

(* Zero the physical byte ranges of logical slots [from_idx, to_idx), both
   locally and in each confirmed follower's log. Ranges are coalesced into
   at most two contiguous writes (the region may wrap) and chunked so a
   single write stays modest. Returns [true] when every remote write was
   posted; [false] when the round was cut short because this replica's
   standing as leader came into doubt mid-round (permission lost, QP no
   longer ready, too many unreaped completions) — the caller must then
   keep the watermark where it was so the next round retries. Local
   zeroing below [minHead] is safe unconditionally: every replica has
   executed those entries. *)
let zero_ranges t ~from_idx ~to_idx =
  if to_idx <= from_idx then true
  else begin
    let log = t.Replica.log in
    let slot_size = Log.slot_size log in
    let nslots = Log.slots log in
    let count = to_idx - from_idx in
    assert (count <= nslots);
    let first_phys = from_idx mod nslots in
    let first_run = min count (nslots - first_phys) in
    let runs =
      if first_run = count then [ (first_phys, count) ]
      else [ (first_phys, first_run); (0, count - first_run) ]
    in
    let chunk_slots = max 1 (262_144 / slot_size) in
    let cf = List.filter_map (fun id -> Replica.peer_opt t id) t.Replica.confirmed in
    let complete = ref true in
    List.iter
      (fun (phys_start, run) ->
        let off = ref 0 in
        while !off < run do
          let n = min chunk_slots (run - !off) in
          let byte_off = Log.slot_offset log (phys_start + !off) in
          let zeros = Bytes.make (n * slot_size) '\000' in
          Rdma.Mr.set_bytes (Log.mr log) ~off:byte_off zeros;
          List.iter
            (fun p ->
              (* Demote-safety: between two chunks the permission manager
                 may have granted our log away (we are being deposed) or
                 our QP toward this follower may have gone to ERR. Posting
                 regardless would only manufacture error completions for
                 the propose path to trip over; stop and let the next
                 round retry from the old watermark. *)
              if
                t.Replica.perm_holder <> Some t.Replica.id
                || Rdma.Qp.state p.Replica.repl_qp <> Rdma.Verbs.Rts
                || t.Replica.recycler_outstanding >= max_outstanding
              then complete := false
              else begin
                let wr = Replica.fresh_wr_id t in
                Hashtbl.replace t.Replica.inflight wr
                  (p.Replica.pid, Replica.recycler_tag);
                t.Replica.recycler_outstanding <- t.Replica.recycler_outstanding + 1;
                Rdma.Qp.post_write p.Replica.repl_qp ~wr_id:wr ~src:zeros ~src_off:0
                  ~len:(Bytes.length zeros) ~mr:p.Replica.remote_log_mr ~dst_off:byte_off
              end)
            cf;
          off := !off + n
        done)
      runs;
    !complete
  end

(* Decide whether the heads that did answer bound the minimum. Log heads
   of ALL followers are consulted, not just the confirmed ones (§5.3): a
   replica currently outside the confirmed set — e.g. one whose permission
   ack arrived late — still holds a position in the log, and zeroing past
   it would hand it recycled (empty) entries at the next leader change.
   Under the crash-stop model (§2.2) a peer whose NIC stopped answering
   (timeout, or a flushed read on a QP a previous timeout broke) never
   returns, so a non-confirmed unreachable peer may be dropped from the
   minimum — that is what keeps recycling live with a dead replica. But a
   failed read from a *confirmed* peer, or a permission error from anyone,
   says this leader's view is stale; zeroing on such a round could erase
   entries a live replica still needs, so the round is skipped. *)
let round_safe t results =
  List.for_all
    (fun ((p : Replica.peer), r) ->
      match r with
      | Ok _ -> true
      | Error Rdma.Verbs.Remote_access_error -> false
      | Error _ -> not (List.mem p.Replica.pid t.Replica.confirmed))
    results

let recycle_once t =
  let results = List.map (fun p -> (p, read_log_head t p)) t.Replica.peers in
  if not (round_safe t results) then tel_skip t
  else begin
    let heads = List.filter_map (fun (_, r) -> Result.to_option r) results in
    let min_head = List.fold_left min t.Replica.applied heads in
    if min_head > t.Replica.zeroed_up_to then begin
      let count = min_head - t.Replica.zeroed_up_to in
      let complete =
        Sim.Engine.span_scope (Replica.engine t) ~pid:t.Replica.id
          ~args:[ ("slots", string_of_int count) ]
          "recycle"
        @@ fun () ->
        Sim.Engine.trace_span (Replica.engine t) ~cat:"mu" ~pid:t.Replica.id
          ~args:[ ("slots", string_of_int count) ]
          "recycle"
          (fun () -> zero_ranges t ~from_idx:t.Replica.zeroed_up_to ~to_idx:min_head)
      in
      (* The watermark only advances once every follower's copy of the
         range has a zeroing write posted; a cut-short round retries. *)
      if complete then begin
        t.Replica.metrics.Metrics.slots_recycled <-
          t.Replica.metrics.Metrics.slots_recycled + count;
        t.Replica.zeroed_up_to <- min_head;
        match t.Replica.tel with Some tel -> Telem.recycle tel min_head | None -> ()
      end
      else tel_skip t
    end
  end

let start t =
  Sim.Host.spawn t.Replica.host ~name:"recycler" (fun () ->
      let rec loop () =
        if t.Replica.stop || t.Replica.removed then ()
        else begin
          if
            t.Replica.role = Replica.Leader
            && (not t.Replica.need_new_followers)
            && t.Replica.confirmed <> []
            && t.Replica.perm_holder = Some t.Replica.id
          then recycle_once t;
          Sim.Host.idle t.Replica.host t.Replica.config.Config.recycle_interval;
          loop ()
        end
      in
      loop ())
