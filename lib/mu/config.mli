(** Static configuration of a Mu deployment. *)

type attach_mode =
  | Standalone
      (** No application: the leader generates payloads and proposes in a
          tight loop (the paper's "standalone" runs, §7.1). *)
  | Direct
      (** Application and replication share a thread — no handover cost,
          but they contend (used by Liquibook and HERD, §7.1). *)
  | Handover
      (** Application thread hands requests to a separate replication
          thread: one cache-coherence miss (~400 ns) per request (used by
          Memcached and Redis, §7.1). *)

type t = {
  n : int;  (** Number of replicas (the paper evaluates 3-way, §7). *)
  log_slots : int;  (** Circular-log capacity in slots (§5.3). *)
  value_cap : int;  (** Maximum bytes per log entry (batch payload). *)
  attach : attach_mode;
  max_batch : int;  (** Requests coalesced into one entry (§7.4). *)
  max_outstanding : int;  (** Concurrent in-flight proposes (§7.4). *)
  grow_followers_grace : int
      (** Extra ns the leader waits for stragglers' permission acks before
          settling on a majority ("Growing confirmed followers", §4.2). *);
  recycle_interval : int;  (** Period of the log-recycling scan (§5.3). *)
  recycle_slack : int;  (** Slots kept free so the log is never full (§5.3). *)
  fate_sharing : bool
      (** Leader-election thread stops heartbeating when the replication
          thread is stuck (§5.1). The paper describes but does not
          implement this; we implement it behind this flag. *);
  fate_sharing_stuck_after : int
      (** A propose in flight for longer than this is considered stuck. *);
  replayer_poll : int;  (** Follower log-poll period when idle. *)
  disable_omit_prepare : bool;
      (** Ablation switch: run the prepare phase on every propose even
          when it could be omitted (§4.2). *)
  checksum_canary : bool;
      (** Use checksum canaries instead of flag canaries, dropping the
          left-to-right DMA assumption (§4.2). *)
  persistent_log : bool;
      (** Register consensus logs in (simulated) persistent memory: every
          log write pays the RDMA flush cost before acking, making Mu
          durable — the extension the paper anticipates once
          RDMA-to-persistent-memory hardware ships (§1). *)
  durable_state : bool;
      (** Back each replica's log and membership metadata with simulated
          NVM ({!Sim.Nvm}) owned by the engine, so they survive a
          {!Sim.Host.kill_host} and a rebooted replica restores them
          before rejoining. Write-through by construction — the log's
          memory region is registered over the NVM bytes — so enabling it
          costs no extra virtual time or randomness. *)
  queue_limit : int;
      (** Bound on the leader's parked request queue while it cannot
          commit (quorum lost): past this many queued requests, new
          submissions are answered with a retryable error instead of
          enqueued. [0] disables the bound. *)
  rejoin_batch : int;
      (** Log entries a rejoining replica pulls from the leader per
          catch-up round (bounded-rate Listing-5 sweep). *)
  rejoin_idle : int;
      (** Ns a rejoining replica idles between catch-up rounds, bounding
          the read pressure it puts on the leader's NIC. *)
  doorbell : int;
      (** Log slots the leader may coalesce into a single doorbell-style
          RDMA write per peer: up to this many already-queued entries are
          gathered, written locally, and replicated with one wire write
          covering the contiguous slot range, amortizing per-write NIC
          cost and committing the whole group at once (Rabia-style
          batching over the §7.4 pipeline). [1] (the default) disables
          doorbell batching and keeps the classic one-write-per-slot
          paths byte-identical. *)
  durable_ns : int;
      (** Durable-state namespace: disambiguates the {!Sim.Nvm} regions
          of multiple Mu clusters sharing one engine (each
          {!Sharded} group gets its shard index), so replica 0 of shard
          1 never opens replica 0 of shard 0's durable log. *)
}

val default : t
(** 3 replicas, 8192 slots, 1 KiB values, standalone, no batching. *)

val majority : t -> int
(** ⌊n/2⌋ + 1. *)

val validate : t -> unit
(** Raises [Invalid_argument] on inconsistent settings. *)
