(* Post-mortem analysis over a reconstructed span tree: phase attribution,
   tail outliers, leader-epoch timeline, and fail-over request forensics.

   Phase attribution uses only sync spans. They nest strictly per fiber, so
   exclusive times telescope: for any root whose sync descendants are all
   closed, the phase rows sum to the root's duration exactly. Detached spans
   (per-peer RDMA writes, pipelined batches, elections) overlap siblings and
   are reported separately. *)

type phase_row = { phase : string; total : int; count : int }

let sync_children t (s : Tree.span) =
  List.filter_map
    (fun id ->
      match Tree.span t id with
      | Some c when c.Tree.sync && not (Tree.is_open c) -> Some c
      | _ -> None)
    s.Tree.children

(* Exclusive time of [s] = duration minus time covered by closed sync
   children (they never overlap each other). Open children contribute
   nothing and their window stays with the parent, keeping the sum exact. *)
let exclusive t (s : Tree.span) =
  Tree.duration s - List.fold_left (fun acc c -> acc + Tree.duration c) 0 (sync_children t s)

let phases t (root : Tree.span) =
  let acc = Hashtbl.create 16 in
  let order = ref [] in
  let add name v =
    match Hashtbl.find_opt acc name with
    | Some (total, count) -> Hashtbl.replace acc name (total + v, count + 1)
    | None ->
      Hashtbl.replace acc name (v, 1);
      order := name :: !order
  in
  let rec walk s =
    add s.Tree.name (exclusive t s);
    List.iter walk (sync_children t s)
  in
  walk root;
  List.rev_map
    (fun phase ->
      let total, count = Hashtbl.find acc phase in
      { phase; total; count })
    !order

let phase_sum rows = List.fold_left (fun acc r -> acc + r.total) 0 rows

(* Detached descendants carrying a "peer" arg — the per-follower RDMA write
   spans under an accept/prepare — for quorum-straggler attribution. *)
type peer_io = { peer : int; op : string; issued : int; acked : int; status : string }

let peer_ios t (root : Tree.span) =
  let rec walk acc (s : Tree.span) =
    let acc =
      List.fold_left
        (fun acc id -> match Tree.span t id with Some c -> walk acc c | None -> acc)
        acc s.Tree.children
    in
    if s.Tree.sync then acc
    else
      match Tree.int_arg s.Tree.args "peer" with
      | Some peer ->
        {
          peer;
          op = s.Tree.name;
          issued = s.Tree.start;
          acked = s.Tree.finish;
          status = Option.value (Tree.arg s.Tree.end_args "status") ~default:"open";
        }
        :: acc
      | None -> acc
  in
  List.sort
    (fun a b -> compare (a.issued, a.peer) (b.issued, b.peer))
    (walk [] root)

(* Requests: every span named "request" — sync ones from the latency
   harness, detached ones from [Smr.submit_async]. *)

let requests t =
  List.filter (fun (s : Tree.span) -> s.Tree.name = "request") (Tree.spans t)

let top_outliers t ~k =
  let closed = List.filter (fun s -> not (Tree.is_open s)) (requests t) in
  let by_slowest a b =
    match compare (Tree.duration b) (Tree.duration a) with
    | 0 -> compare a.Tree.id b.Tree.id
    | c -> c
  in
  List.filteri (fun i _ -> i < k) (List.sort by_slowest closed)

(* Leader-epoch timeline, straight from the cat="mu" role-change instants
   (these exist whenever tracing is on, independent of provenance). *)

type epoch = { ets : int; epid : int; gen : int }

let leader_timeline events =
  List.filter_map
    (fun (ev : Sim.Probe.event) ->
      if ev.cat = "mu" && ev.kind = Sim.Probe.Instant && ev.name = "leader" then
        Some
          {
            ets = ev.ts;
            epid = ev.pid;
            gen = Option.value (Tree.int_arg ev.args "gen") ~default:0;
          }
      else None)
    events

(* Fail-over forensics. A request's lifecycle is recorded as points on its
   span: "pickup" (leader dequeued it into a batch), "requeue" (batch
   aborted by fail-over), "client_retry" (client resent after timeout),
   "applied" (a replica executed it at a log slot — one point per replica,
   so distinct slots > 1 means the request landed twice in the log). *)

type outcome = Ok | Retried | Duplicated | Lost

let outcome_name = function
  | Ok -> "ok"
  | Retried -> "retried"
  | Duplicated -> "duplicated"
  | Lost -> "lost"

type req_report = {
  rid : int;
  rpid : int;
  submitted : int;
  replied : int option;
  retries : int;
  requeues : int;
  pickups : int;
  slots : int list;  (* distinct log slots applied at, ascending *)
  verdict : outcome;
}

let report t (s : Tree.span) =
  let pts = Tree.points_of t s.Tree.id in
  let count name = List.length (List.filter (fun p -> p.Tree.pname = name) pts) in
  let slots =
    List.sort_uniq compare
      (List.filter_map
         (fun (p : Tree.point) ->
           if p.pname = "applied" then Tree.int_arg p.pargs "idx" else None)
         pts)
  in
  let retries = count "client_retry" in
  let requeues = count "requeue" in
  let pickups = count "pickup" in
  let replied = if Tree.is_open s then None else Some s.Tree.finish in
  let verdict =
    if List.length slots > 1 then Duplicated
    else if replied = None then Lost
    else if retries > 0 || requeues > 0 || pickups > 1 then Retried
    else Ok
  in
  { rid = s.Tree.id; rpid = s.Tree.pid; submitted = s.Tree.start; replied;
    retries; requeues; pickups; slots; verdict }

let request_reports t = List.map (report t) (requests t)

(* Disruption windows: elections that actually elected (suspicion ->
   takeover) and leader establishment (catch-up + update-followers). A
   request was "open across" a window if its [submitted, replied] interval
   overlaps it.

   False-alarm elections are excluded — the real leader kept serving — and
   so are elections still open at the end of a run that completed: a
   replica can keep suspecting a crashed non-leader forever without
   impeding anyone. [include_open] (for stalled runs) counts those too,
   clamped to [horizon]. *)

type window = { wname : string; wpid : int; wstart : int; wfinish : int }

let windows t ~horizon ~include_open =
  List.filter_map
    (fun (s : Tree.span) ->
      let mk () =
        Some
          {
            wname = s.Tree.name;
            wpid = s.Tree.pid;
            wstart = s.Tree.start;
            wfinish = (if Tree.is_open s then horizon else s.Tree.finish);
          }
      in
      match s.Tree.name with
      | "establish" -> mk ()
      | "election" ->
        if Tree.is_open s then if include_open then mk () else None
        else if Tree.arg s.Tree.end_args "outcome" = Some "leader" then mk ()
        else None
      | _ -> None)
    (Tree.spans t)

let open_across ~horizon ws (r : req_report) =
  let finish = Option.value r.replied ~default:horizon in
  List.exists (fun w -> r.submitted < w.wfinish && finish > w.wstart) ws
