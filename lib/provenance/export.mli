(** Deterministic span-tree exporters.

    Both exporters follow the {!Trace.Chrome} determinism rules: integer
    virtual-time arithmetic only, spans in ascending id, edges/points in
    stream order — equal seeds produce byte-identical output. *)

val json_string : Tree.t -> string
(** Standalone JSON document, schema ["mu-provenance/1"]: all spans
    (ascending id, with parent/children links, open spans have
    ["end":-1]), causal edges, lifecycle points, and the dropped-event
    count. *)

val write_json : string -> Tree.t -> unit

val trace_events : Tree.t -> string list
(** Pre-rendered Chrome-trace event objects for
    [Trace.Chrome.to_buffer ~extra]: one nestable-async ["b"]/["e"] pair
    per span (open spans get no ["e"]) plus flow ["s"]/["f"] arrows for
    every causal edge. *)
