(** Post-mortem analysis over a reconstructed span tree.

    Phase attribution is computed over {b sync} spans only: they nest
    strictly per fiber, so per-span exclusive times telescope and
    {!phase_sum} of {!phases} equals the root span's duration exactly
    (when all sync descendants are closed). Detached spans are surfaced
    separately via {!peer_ios}. *)

type phase_row = {
  phase : string;  (** span name, e.g. ["propose"], ["accept"] *)
  total : int;  (** summed exclusive virtual ns across the subtree *)
  count : int;  (** spans contributing *)
}

val phases : Tree.t -> Tree.span -> phase_row list
(** Exclusive-time rows for [root]'s sync subtree, in first-visit
    (pre-order) order — deterministic. *)

val phase_sum : phase_row list -> int
val exclusive : Tree.t -> Tree.span -> int

(** Detached descendant spans carrying a ["peer"] arg: the per-follower
    RDMA write/ack spans — attributes quorum stragglers to a peer. *)
type peer_io = {
  peer : int;
  op : string;  (** e.g. ["write_send"] *)
  issued : int;
  acked : int;  (** -1 while open *)
  status : string;  (** completion status, or ["open"] *)
}

val peer_ios : Tree.t -> Tree.span -> peer_io list

val requests : Tree.t -> Tree.span list
(** All spans named ["request"], ascending id. *)

val top_outliers : Tree.t -> k:int -> Tree.span list
(** Slowest [k] closed requests, slowest first (ties by id). *)

(** Leader-epoch timeline, from the cat=["mu"] ["leader"] instants (present
    whenever tracing is on, independent of provenance). *)
type epoch = { ets : int; epid : int; gen : int }

val leader_timeline : Sim.Probe.event list -> epoch list

(** {2 Fail-over forensics} *)

type outcome =
  | Ok  (** picked up once, applied once, replied *)
  | Retried  (** client resent or the leader requeued it, but applied once *)
  | Duplicated  (** applied at more than one distinct log slot *)
  | Lost  (** never replied within the run *)

val outcome_name : outcome -> string

type req_report = {
  rid : int;
  rpid : int;
  submitted : int;
  replied : int option;
  retries : int;  (** ["client_retry"] points *)
  requeues : int;  (** ["requeue"] points *)
  pickups : int;  (** ["pickup"] points *)
  slots : int list;  (** distinct log slots applied at, ascending *)
  verdict : outcome;
}

val report : Tree.t -> Tree.span -> req_report
val request_reports : Tree.t -> req_report list

(** Disruption windows: ["establish"] spans plus ["election"] spans that
    ended in a takeover. False alarms are excluded; elections still open
    at end of run count only with [include_open] (stalled runs — a
    completed run can carry a harmless open suspicion of a crashed
    non-leader). *)
type window = { wname : string; wpid : int; wstart : int; wfinish : int }

val windows : Tree.t -> horizon:int -> include_open:bool -> window list
(** Open windows are clamped to [horizon] (end of run). *)

val open_across : horizon:int -> window list -> req_report -> bool
(** Did the request's [submitted, replied] interval overlap any window? *)
