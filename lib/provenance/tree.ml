(* Rebuild the span tree from the probe event stream.

   The sim layer emits provenance as flat Instant events in cat "prov"
   (span_begin / span_end / point / edge) so the trace ring and the
   breakdown accumulator need no new event kinds; this module is the other
   half — it folds that stream back into a tree with causal edges. The
   builder is total: events referencing spans whose begin fell out of the
   ring are counted in [dropped], never an error. *)

type span = {
  id : int;
  parent : int;  (* 0 = root *)
  name : string;
  pid : int;
  tid : int;
  start : int;
  sync : bool;
  args : (string * string) list;
  mutable finish : int;  (* -1 while open *)
  mutable end_args : (string * string) list;
  mutable children : int list;  (* ascending ids after [of_events] *)
}

type edge = { src : int; dst : int; ekind : string; ets : int }
type point = { span : int; pname : string; pts : int; ppid : int; pargs : (string * string) list }

type t = {
  spans : (int, span) Hashtbl.t;
  mutable roots : int list;
  mutable edges : edge list;
  mutable points : point list;
  mutable dropped : int;
}

let span t id = Hashtbl.find_opt t.spans id
let is_open s = s.finish < 0
let duration s = if is_open s then 0 else s.finish - s.start

let fold t f acc =
  (* Deterministic iteration: ascending span id. *)
  let ids = Hashtbl.fold (fun id _ acc -> id :: acc) t.spans [] in
  List.fold_left (fun acc id -> f acc (Hashtbl.find t.spans id)) acc (List.sort compare ids)

let spans t = List.rev (fold t (fun acc s -> s :: acc) [])
let size t = Hashtbl.length t.spans

let arg args key = List.assoc_opt key args
let int_arg args key = Option.bind (arg args key) int_of_string_opt

let strip keys args = List.filter (fun (k, _) -> not (List.mem k keys)) args

let of_events events =
  let t =
    { spans = Hashtbl.create 1024; roots = []; edges = []; points = []; dropped = 0 }
  in
  List.iter
    (fun (ev : Sim.Probe.event) ->
      if ev.cat = "prov" && ev.kind = Sim.Probe.Instant then
        match ev.name with
        | "span_begin" -> (
          match int_arg ev.args "span", int_arg ev.args "parent", arg ev.args "name" with
          | Some id, Some parent, Some name ->
            Hashtbl.replace t.spans id
              {
                id;
                parent;
                name;
                pid = ev.pid;
                tid = ev.tid;
                start = ev.ts;
                sync = arg ev.args "sync" = Some "1";
                args = strip [ "span"; "parent"; "name"; "sync" ] ev.args;
                finish = -1;
                end_args = [];
                children = [];
              }
          | _ -> t.dropped <- t.dropped + 1)
        | "span_end" -> (
          match Option.bind (int_arg ev.args "span") (Hashtbl.find_opt t.spans) with
          | Some s ->
            s.finish <- ev.ts;
            s.end_args <- strip [ "span" ] ev.args
          | None -> t.dropped <- t.dropped + 1)
        | "point" -> (
          match int_arg ev.args "span", arg ev.args "name" with
          | Some span, Some pname when Hashtbl.mem t.spans span ->
            t.points <-
              {
                span;
                pname;
                pts = ev.ts;
                ppid = ev.pid;
                pargs = strip [ "span"; "name" ] ev.args;
              }
              :: t.points
          | _ -> t.dropped <- t.dropped + 1)
        | "edge" -> (
          match int_arg ev.args "src", int_arg ev.args "dst", arg ev.args "kind" with
          | Some src, Some dst, Some ekind ->
            t.edges <- { src; dst; ekind; ets = ev.ts } :: t.edges
          | _ -> t.dropped <- t.dropped + 1)
        | _ -> t.dropped <- t.dropped + 1)
    events;
  t.edges <- List.rev t.edges;
  t.points <- List.rev t.points;
  (* Children and roots, ascending. A span whose parent never made it into
     the ring is treated as a root. *)
  let roots = ref [] in
  fold t
    (fun () s ->
      match Hashtbl.find_opt t.spans s.parent with
      | Some p when s.parent <> 0 -> p.children <- s.id :: p.children
      | Some _ | None -> roots := s.id :: !roots)
    ();
  fold t (fun () s -> s.children <- List.rev s.children) ();
  t.roots <- List.rev !roots;
  t

let points_of t id = List.filter (fun p -> p.span = id) t.points
let edges_from t id = List.filter (fun e -> e.src = id) t.edges
let edges_to t id = List.filter (fun e -> e.dst = id) t.edges

(* Well-formedness: parents were allocated (and began) before their
   children — span ids grow monotonically, so a parent id >= child id
   also rules out cycles — and sync spans nest strictly inside their
   parent. Returns human-readable violations; [] = well-formed. *)
let check t =
  let bad = ref [] in
  let err fmt = Fmt.kstr (fun m -> bad := m :: !bad) fmt in
  fold t
    (fun () s ->
      if (not (is_open s)) && s.finish < s.start then
        err "span %d (%s): ends at %d before it starts at %d" s.id s.name s.finish s.start;
      match Hashtbl.find_opt t.spans s.parent with
      | None -> ()
      | Some p ->
        if p.id >= s.id then
          err "span %d (%s): parent %d allocated after it (cycle?)" s.id s.name p.id;
        if p.start > s.start then
          err "span %d (%s): starts at %d before parent %d at %d" s.id s.name s.start p.id
            p.start;
        if s.sync && (not (is_open p)) && (is_open s || s.finish > p.finish) then
          err "sync span %d (%s): outlives its parent %d (%s)" s.id s.name p.id p.name)
    ();
  List.rev !bad
