(** Span-tree reconstruction from the provenance event stream.

    {!Sim.Engine} emits provenance as flat [Instant] events in cat ["prov"]
    ([span_begin] / [span_end] / [point] / [edge]); this module folds the
    stream back into a tree with causal edges and annotation points.

    Two span flavours exist, distinguished by {!span.sync}:
    - {b sync} spans (opened via [Sim.Engine.with_span]) nest strictly
      within their parent on one fiber — their exclusive times telescope,
      so they form an exact partition of the parent's duration.
    - {b detached} spans (opened via [Sim.Engine.span_open]) may overlap
      siblings and outlive their parent — per-peer RDMA writes, client
      requests, pipelined batches, elections. *)

type span = {
  id : int;
  parent : int;  (** 0 = root *)
  name : string;
  pid : int;
  tid : int;
  start : int;  (** virtual ns *)
  sync : bool;
  args : (string * string) list;  (** open-time args, bookkeeping keys stripped *)
  mutable finish : int;  (** -1 while open *)
  mutable end_args : (string * string) list;
  mutable children : int list;  (** ascending ids *)
}

type edge = { src : int; dst : int; ekind : string; ets : int }

type point = {
  span : int;
  pname : string;
  pts : int;
  ppid : int;
  pargs : (string * string) list;
}

type t = {
  spans : (int, span) Hashtbl.t;
  mutable roots : int list;  (** ascending; includes orphans whose parent was ring-dropped *)
  mutable edges : edge list;  (** stream order *)
  mutable points : point list;  (** stream order *)
  mutable dropped : int;  (** malformed / dangling prov events (ring overflow) *)
}

val of_events : Sim.Probe.event list -> t
(** Build from a probe event stream (other categories are ignored).
    Total: dangling references are counted in [dropped], never raised. *)

val span : t -> int -> span option
val is_open : span -> bool

val duration : span -> int
(** [finish - start]; 0 for open spans. *)

val spans : t -> span list
(** All spans, ascending id. *)

val size : t -> int
val fold : t -> ('a -> span -> 'a) -> 'a -> 'a
val points_of : t -> int -> point list
val edges_from : t -> int -> edge list
val edges_to : t -> int -> edge list

val arg : (string * string) list -> string -> string option
val int_arg : (string * string) list -> string -> int option

val check : t -> string list
(** Well-formedness violations ([] = well-formed): every referenced parent
    precedes its child (ids are allocation-ordered, so this also rules out
    cycles), children start no earlier than their parent, and closed sync
    spans do not outlive a closed parent. *)
