(* Span-tree exporters: a standalone JSON document (schema
   "mu-provenance/1") and Chrome-trace extra events (nestable-async phases
   per span + flow arrows per causal edge) to overlay on the regular
   Perfetto export.

   Determinism rules match Trace.Chrome: integer virtual-ns timestamps (the
   JSON document) or fixed-point µs via Chrome.fixed_ts (trace events),
   strings escaped by Chrome.json_string, spans in ascending id, edges and
   points in stream order. Same seed => byte-identical output. *)

let add_args b args =
  Stdlib.Buffer.add_char b '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Stdlib.Buffer.add_char b ',';
      Stdlib.Buffer.add_string b (Trace.Chrome.json_string k);
      Stdlib.Buffer.add_char b ':';
      Stdlib.Buffer.add_string b (Trace.Chrome.json_string v))
    args;
  Stdlib.Buffer.add_char b '}'

let add_span b (s : Tree.span) =
  Stdlib.Buffer.add_string b
    (Printf.sprintf "{\"id\":%d,\"parent\":%d,\"name\":%s,\"pid\":%d,\"tid\":%d" s.Tree.id
       s.Tree.parent
       (Trace.Chrome.json_string s.Tree.name)
       s.Tree.pid s.Tree.tid);
  Stdlib.Buffer.add_string b
    (Printf.sprintf ",\"start\":%d,\"end\":%d,\"sync\":%b,\"args\":" s.Tree.start s.Tree.finish
       s.Tree.sync);
  add_args b s.Tree.args;
  Stdlib.Buffer.add_string b ",\"end_args\":";
  add_args b s.Tree.end_args;
  Stdlib.Buffer.add_string b ",\"children\":[";
  List.iteri
    (fun i c ->
      if i > 0 then Stdlib.Buffer.add_char b ',';
      Stdlib.Buffer.add_string b (string_of_int c))
    s.Tree.children;
  Stdlib.Buffer.add_string b "]}"

let json_string (t : Tree.t) =
  let b = Stdlib.Buffer.create 65536 in
  Stdlib.Buffer.add_string b "{\"schema\":\"mu-provenance/1\",\"spans\":[\n";
  let first = ref true in
  let sep () = if !first then first := false else Stdlib.Buffer.add_string b ",\n" in
  Tree.fold t
    (fun () s ->
      sep ();
      add_span b s)
    ();
  Stdlib.Buffer.add_string b "\n],\"edges\":[";
  List.iteri
    (fun i (e : Tree.edge) ->
      if i > 0 then Stdlib.Buffer.add_char b ',';
      Stdlib.Buffer.add_string b
        (Printf.sprintf "\n{\"src\":%d,\"dst\":%d,\"kind\":%s,\"ts\":%d}" e.src e.dst
           (Trace.Chrome.json_string e.ekind)
           e.ets))
    t.Tree.edges;
  Stdlib.Buffer.add_string b "],\"points\":[";
  List.iteri
    (fun i (p : Tree.point) ->
      if i > 0 then Stdlib.Buffer.add_char b ',';
      Stdlib.Buffer.add_string b
        (Printf.sprintf "\n{\"span\":%d,\"name\":%s,\"ts\":%d,\"pid\":%d,\"args\":" p.span
           (Trace.Chrome.json_string p.pname)
           p.pts p.ppid);
      add_args b p.pargs;
      Stdlib.Buffer.add_char b '}')
    t.Tree.points;
  Stdlib.Buffer.add_string b (Printf.sprintf "],\"dropped\":%d}\n" t.Tree.dropped);
  Stdlib.Buffer.contents b

let write_json path t =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (json_string t))

(* Chrome-trace overlay. Each span becomes a nestable-async "b"/"e" pair
   (id = span id, so Perfetto stacks them into per-process provenance
   tracks); each causal edge becomes a flow "s"->"f" arrow between the two
   span phases. Open spans get no "e" — Perfetto renders them to the end of
   the trace, which is exactly right for lost requests. *)

let out_pid p = if p < 0 then Trace.Chrome.engine_pid else p

let span_phase ~ph ~ts ~pid ~name ~id args =
  let b = Stdlib.Buffer.create 128 in
  Stdlib.Buffer.add_string b
    (Printf.sprintf "{\"name\":%s,\"cat\":\"prov\",\"ph\":\"%s\",\"ts\":%s,\"pid\":%d,\"tid\":0,\"id\":\"0x%x\""
       (Trace.Chrome.json_string name)
       ph (Trace.Chrome.fixed_ts ts) (out_pid pid) id);
  if args <> [] then begin
    Stdlib.Buffer.add_string b ",\"args\":";
    add_args b args
  end;
  Stdlib.Buffer.add_char b '}';
  Stdlib.Buffer.contents b

let flow_phase ~ph ~ts ~pid ~kind ~id =
  Printf.sprintf
    "{\"name\":%s,\"cat\":\"prov_edge\",\"ph\":\"%s\",\"ts\":%s,\"pid\":%d,\"tid\":0,\"id\":\"0x%x\"%s}"
    (Trace.Chrome.json_string kind)
    ph (Trace.Chrome.fixed_ts ts) (out_pid pid) id
    (if ph = "f" then ",\"bp\":\"e\"" else "")

let trace_events (t : Tree.t) =
  let evs = ref [] in
  Tree.fold t
    (fun () (s : Tree.span) ->
      evs :=
        span_phase ~ph:"b" ~ts:s.Tree.start ~pid:s.Tree.pid ~name:s.Tree.name ~id:s.Tree.id
          (("span", string_of_int s.Tree.id)
          :: ("parent", string_of_int s.Tree.parent)
          :: s.Tree.args)
        :: !evs;
      if not (Tree.is_open s) then
        evs :=
          span_phase ~ph:"e" ~ts:s.Tree.finish ~pid:s.Tree.pid ~name:s.Tree.name
            ~id:s.Tree.id s.Tree.end_args
          :: !evs)
    ();
  List.iteri
    (fun i (e : Tree.edge) ->
      match Tree.span t e.src, Tree.span t e.dst with
      | Some src, Some dst ->
        (* Flow ids must not collide with span ids used above; offset into
           a disjoint range keyed by edge index. *)
        let fid = 0x1000000 + i in
        evs := flow_phase ~ph:"s" ~ts:e.ets ~pid:src.Tree.pid ~kind:e.ekind ~id:fid :: !evs;
        evs := flow_phase ~ph:"f" ~ts:e.ets ~pid:dst.Tree.pid ~kind:e.ekind ~id:fid :: !evs
      | _ -> ())
    t.Tree.edges;
  List.rev !evs
