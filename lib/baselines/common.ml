type t = {
  engine : Sim.Engine.t;
  cal : Sim.Calibration.t;
  hosts : Sim.Host.t array;
  mrs : Rdma.Mr.t array;
  qps : Rdma.Qp.t array array;
  cqs : Rdma.Cq.t array;
}

let create engine cal ~n ~mr_size =
  (* Bootstrap through the QP exchange layer, as a real deployment would:
     every node listens, advertises its buffer, and dials its peers. *)
  let exchange = Rdma.Exchange.create engine in
  let hosts =
    Array.init n (fun id -> Sim.Host.create engine cal ~id ~name:(Printf.sprintf "node%d" id))
  in
  let mrs =
    Array.map (fun h -> Rdma.Mr.register h ~size:mr_size ~access:Rdma.Verbs.access_rw) hosts
  in
  let cqs = Array.init n (fun _ -> Rdma.Cq.create engine) in
  Array.iteri
    (fun i h ->
      Rdma.Exchange.listen exchange ~host:h ~service:"data"
        ~make_cq:(fun () -> cqs.(i))
        ~access:Rdma.Verbs.access_rw ();
      Rdma.Exchange.advertise exchange ~host:h ~name:"buffer" mrs.(i))
    hosts;
  let dummy = Rdma.Qp.create hosts.(0) ~cq:cqs.(0) in
  let qps = Array.make_matrix n n dummy in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let qi =
        Rdma.Exchange.dial exchange ~host:hosts.(i)
          ~peer:(Sim.Host.name hosts.(j))
          ~service:"data" ~cq:cqs.(i) ~access:Rdma.Verbs.access_rw ()
      in
      let qj =
        match Rdma.Exchange.accepted exchange ~host:hosts.(j) ~service:"data" with
        | (_, qp) :: _ -> qp
        | [] -> assert false
      in
      qps.(i).(j) <- qi;
      qps.(j).(i) <- qj
    done
  done;
  ignore (Rdma.Exchange.lookup exchange ~peer:(Sim.Host.name hosts.(0)) ~name:"buffer");
  { engine; cal; hosts; mrs; qps; cqs }

let n t = Array.length t.hosts
let majority t = (n t / 2) + 1

let wr_counter = ref 0

let write_to t ~src ~dst ~data ~off =
  incr wr_counter;
  Rdma.Qp.post_write t.qps.(src).(dst) ~wr_id:!wr_counter ~src:data ~src_off:0
    ~len:(Bytes.length data) ~mr:t.mrs.(dst) ~dst_off:off

let await_successes t ~node ~count =
  for _ = 1 to count do
    let wc = Rdma.Cq.await t.cqs.(node) in
    match wc.Rdma.Verbs.status with
    | Rdma.Verbs.Success -> ()
    | st -> failwith (Fmt.str "baseline: operation failed: %a" Rdma.Verbs.pp_wc_status st)
  done

type engine = { name : string; replicate : Bytes.t -> int }

(* When the simulation engine carries a metrics registry, wrap replicate
   so every measured span also lands in the shared
   baseline_replication_latency_ns histogram, making baselines directly
   comparable with Mu's mu_replication_latency_ns in one export. *)
let with_telemetry t e =
  match Sim.Engine.metrics t.engine with
  | None -> e
  | Some reg ->
    let h =
      Telemetry.Registry.histogram reg ~help:"Baseline replication latency"
        ~labels:[ ("system", e.name) ] "baseline_replication_latency_ns"
    in
    {
      e with
      replicate =
        (fun payload ->
          let ns = e.replicate payload in
          Telemetry.Hdr.record h ns;
          ns);
    }
