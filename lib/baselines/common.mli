(** Shared plumbing for the comparison systems (§7.1, §8).

    A fully-connected mini-cluster on the same simulated RDMA fabric as
    Mu: one host per node, one registered buffer per node, one RC QP pair
    per node pair with full remote access (none of the baselines uses
    dynamic permissions the way Mu does). Node 0 acts as leader /
    coordinator in the latency experiments, as in the paper's setup. *)

type t = {
  engine : Sim.Engine.t;
  cal : Sim.Calibration.t;
  hosts : Sim.Host.t array;
  mrs : Rdma.Mr.t array;
  qps : Rdma.Qp.t array array;  (** [qps.(i).(j)]: endpoint at [i] toward [j]. *)
  cqs : Rdma.Cq.t array;  (** One per node; node [i] is the only consumer. *)
}

val create : Sim.Engine.t -> Sim.Calibration.t -> n:int -> mr_size:int -> t
val n : t -> int
val majority : t -> int

val write_to : t -> src:int -> dst:int -> data:Bytes.t -> off:int -> unit
(** Post a one-sided Write of [data] into node [dst]'s buffer (fiber of
    node [src]'s host). *)

val await_successes : t -> node:int -> count:int -> unit
(** Consume [count] successful completions from a node's CQ; raises
    [Failure] on an error completion. *)

(** A baseline replication engine: returns the measured replication span
    (ns) for one request. *)
type engine = { name : string; replicate : Bytes.t -> int }

val with_telemetry : t -> engine -> engine
(** If the cluster's simulation engine has a metrics registry attached,
    wrap [replicate] to record each span into
    [baseline_replication_latency_ns{system}]. Identity otherwise. *)
