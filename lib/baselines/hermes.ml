let inv_process = 1_900
let poll_interval = 500

(* Replica buffer layout: INV slot at 4096; VAL slot at 8192.
   Coordinator layout: ACK slot for replica j at [8*j]. *)
let inv_off = 4096
let val_off = 8192

let create (c : Common.t) =
  let n = Common.n c in
  let members = List.init (n - 1) (fun i -> i + 1) in
  List.iter
    (fun j ->
      let doorbell = Sim.Engine.Chan.create c.Common.engine in
      Rdma.Mr.set_write_hook c.Common.mrs.(j)
        (Some (fun ~off ~len:_ -> if off = inv_off then Sim.Engine.Chan.send doorbell ()));
      Sim.Host.spawn c.Common.hosts.(j) ~name:"hermes-member" (fun () ->
          let rng = Sim.Host.rng c.Common.hosts.(j) in
          let rec loop () =
            Sim.Engine.Chan.recv doorbell;
            Sim.Host.cpu c.Common.hosts.(j) (Sim.Rng.int rng poll_interval + inv_process);
            let seq = Rdma.Mr.get_i64 c.Common.mrs.(j) ~off:inv_off in
            let ack = Bytes.create 8 in
            Bytes.set_int64_le ack 0 seq;
            Common.write_to c ~src:j ~dst:0 ~data:ack ~off:(8 * j);
            Common.await_successes c ~node:j ~count:1;
            loop ()
          in
          loop ()))
    members;
  let acks = Sim.Engine.Chan.create c.Common.engine in
  Rdma.Mr.set_write_hook c.Common.mrs.(0)
    (Some
       (fun ~off ~len:_ ->
         if off < 8 * n then
           Sim.Engine.Chan.send acks (off / 8, Rdma.Mr.get_i64 c.Common.mrs.(0) ~off)));
  let seq = ref 0 in
  let replicate payload =
    incr seq;
    let t0 = Sim.Engine.now c.Common.engine in
    let inv = Bytes.create (8 + Bytes.length payload) in
    Bytes.set_int64_le inv 0 (Int64.of_int !seq);
    Bytes.blit payload 0 inv 8 (Bytes.length payload);
    List.iter (fun j -> Common.write_to c ~src:0 ~dst:j ~data:inv ~off:inv_off) members;
    (* Hermes completes a write only once every live replica acked. *)
    let got = ref 0 in
    while !got < List.length members do
      let _, s = Sim.Engine.Chan.recv acks in
      if Int64.to_int s = !seq then incr got
    done;
    let dt = Sim.Engine.now c.Common.engine - t0 in
    (* VAL broadcast: off the measured path. *)
    let v = Bytes.create 8 in
    Bytes.set_int64_le v 0 (Int64.of_int !seq);
    List.iter (fun j -> Common.write_to c ~src:0 ~dst:j ~data:v ~off:val_off) members;
    (* Drain INV and VAL write completions. *)
    Common.await_successes c ~node:0 ~count:(2 * List.length members);
    dt
  in
  Common.with_telemetry c { Common.name = "Hermes"; replicate }
