let follower_poll_interval = 1_000
let follower_process = 3_100
let leader_poll = 400

(* Follower buffer layout: request entry at 4096 (seq header + payload). *)
let req_off = 4096

(* APUS: the leader writes the request into each follower's log with a
   one-sided Write, but the follower CPU is on the critical path — it
   polls its log, processes the entry, and acknowledges with a two-sided
   Send that the leader receives (§8: "APUS requires active participation
   from the follower replicas during the replication protocol"). *)
let create (c : Common.t) =
  let n = Common.n c in
  let followers = List.init (n - 1) (fun i -> i + 1) in
  let wr = ref 1_000_000 in
  (* Follower fibers: wake on the request write (the doorbell captures the
     sequence number at arrival so a busy follower pays its full poll +
     processing cost for each entry), then Send the ack. *)
  List.iter
    (fun j ->
      let doorbell = Sim.Engine.Chan.create c.Common.engine in
      Rdma.Mr.set_write_hook c.Common.mrs.(j)
        (Some
           (fun ~off ~len:_ ->
             if off = req_off then
               Sim.Engine.Chan.send doorbell (Rdma.Mr.get_i64 c.Common.mrs.(j) ~off:req_off)));
      Sim.Host.spawn c.Common.hosts.(j) ~name:"apus-follower" (fun () ->
          let rng = Sim.Host.rng c.Common.hosts.(j) in
          let last_acked = ref 0L in
          let ack = Bytes.create 8 in
          let rec loop () =
            let seq = Sim.Engine.Chan.recv doorbell in
            if Int64.compare seq !last_acked > 0 then begin
              Sim.Host.cpu c.Common.hosts.(j)
                (Sim.Rng.int rng follower_poll_interval + follower_process);
              last_acked := seq;
              Bytes.set_int64_le ack 0 seq;
              incr wr;
              Rdma.Qp.post_send c.Common.qps.(j).(0) ~wr_id:!wr ~src:ack ~src_off:0 ~len:8;
              Common.await_successes c ~node:j ~count:1
            end;
            loop ()
          in
          loop ()))
    followers;
  (* Leader side: one pre-posted receive buffer per follower, replenished
     as acks are consumed. *)
  let recv_bufs = Array.init n (fun _ -> Bytes.create 8) in
  let post_ack_recv j =
    Rdma.Qp.post_recv c.Common.qps.(0).(j) ~wr_id:j ~dst:recv_bufs.(j) ~dst_off:0 ~max_len:8
  in
  List.iter post_ack_recv followers;
  let seq = ref 0 in
  let needed = Common.majority c - 1 in
  let replicate payload =
    incr seq;
    let t0 = Sim.Engine.now c.Common.engine in
    let entry = Bytes.create (8 + Bytes.length payload) in
    Bytes.set_int64_le entry 0 (Int64.of_int !seq);
    Bytes.blit payload 0 entry 8 (Bytes.length payload);
    List.iter (fun j -> Common.write_to c ~src:0 ~dst:j ~data:entry ~off:req_off) followers;
    (* Collect completions: our request Writes plus ack Receives; a
       majority of current-sequence acks completes the round. *)
    let acks = ref 0 and writes = ref 0 in
    while !acks < needed do
      let wc = Rdma.Cq.await c.Common.cqs.(0) in
      match wc.Rdma.Verbs.status, wc.Rdma.Verbs.kind with
      | Rdma.Verbs.Success, `Recv ->
        let j = wc.Rdma.Verbs.wr_id in
        let s = Bytes.get_int64_le recv_bufs.(j) 0 in
        post_ack_recv j;
        if Int64.to_int s = !seq then incr acks
      | Rdma.Verbs.Success, `Write -> incr writes
      | Rdma.Verbs.Success, (`Read | `Send) -> ()
      | st, _ -> failwith (Fmt.str "APUS: operation failed: %a" Rdma.Verbs.pp_wc_status st)
    done;
    Sim.Host.cpu c.Common.hosts.(0) leader_poll;
    let dt = Sim.Engine.now c.Common.engine - t0 in
    (* Drain this round's leftover write completions so the next round's
       accounting starts clean. *)
    while !writes < List.length followers do
      let wc = Rdma.Cq.await c.Common.cqs.(0) in
      match wc.Rdma.Verbs.status, wc.Rdma.Verbs.kind with
      | Rdma.Verbs.Success, `Write -> incr writes
      | Rdma.Verbs.Success, `Recv -> post_ack_recv wc.Rdma.Verbs.wr_id
      | Rdma.Verbs.Success, (`Read | `Send) -> ()
      | st, _ -> failwith (Fmt.str "APUS: operation failed: %a" Rdma.Verbs.pp_wc_status st)
    done;
    dt
  in
  Common.with_telemetry c { Common.name = "APUS"; replicate }
