let replication =
  Sim.Distribution.Shifted
    { base = 28_000.0; jitter = Lognormal { median = 14_000.0; sigma = 0.5 } }

let failover =
  Sim.Distribution.Shifted
    { base = 9_000_000.0; jitter = Lognormal { median = 1_000_000.0; sigma = 0.4 } }

let create (c : Common.t) =
  let rng = Sim.Host.rng c.Common.hosts.(0) in
  let replicate _payload =
    let dt = Sim.Distribution.sample_ns replication rng in
    Sim.Host.idle c.Common.hosts.(0) dt;
    dt
  in
  Common.with_telemetry c { Common.name = "HovercRaft"; replicate }
