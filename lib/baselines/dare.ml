let rounds = 3

(* Buffer layout on each replica: entry area at 0, tail pointer at 4096,
   commit pointer at 4104. *)
let tail_off = 4096
let commit_off = 4104

let create (c : Common.t) =
  let seq = ref 0 in
  let followers = List.init (Common.n c - 1) (fun i -> i + 1) in
  let needed = Common.majority c - 1 in
  let round data off =
    (* Leader-side protocol bookkeeping per round (log management, offset
       computation) — DARE involves the leader CPU between rounds. *)
    Sim.Host.cpu c.Common.hosts.(0) 250;
    List.iter (fun j -> Common.write_to c ~src:0 ~dst:j ~data ~off) followers;
    Common.await_successes c ~node:0 ~count:needed;
    (* Drain the remaining completions of this round before the next so a
       late straggler is not miscounted later; DARE likewise tracks
       per-entry completion state. *)
    Common.await_successes c ~node:0 ~count:(List.length followers - needed)
  in
  let replicate payload =
    incr seq;
    let t0 = Sim.Engine.now c.Common.engine in
    let entry = Bytes.create (8 + Bytes.length payload) in
    Bytes.set_int64_le entry 0 (Int64.of_int !seq);
    Bytes.blit payload 0 entry 8 (Bytes.length payload);
    let ptr = Bytes.create 8 in
    Bytes.set_int64_le ptr 0 (Int64.of_int !seq);
    (* Round 1: the log entry. *)
    round entry 0;
    (* Round 2: advance each replica's tail pointer. *)
    round ptr tail_off;
    (* Round 3: advance the commit pointer so followers may apply. *)
    round ptr commit_off;
    Sim.Engine.now c.Common.engine - t0
  in
  Common.with_telemetry c { Common.name = "DARE"; replicate }
