(* Shared helpers for the test suite. *)

let engine ?(seed = 7L) () = Sim.Engine.create ~seed ()

(* Run [f] as a fiber and drive the simulation until it finishes; returns
   f's result. Fails the test if the simulation drains without completing
   (deadlock) or exceeds [until]. *)
let run_fiber ?until ?(seed = 7L) f =
  let e = engine ~seed () in
  let result = ref None in
  Sim.Engine.spawn e ~name:"test" (fun () -> result := Some (f e));
  Sim.Engine.run ?until e;
  match !result with
  | Some r -> r
  | None -> Alcotest.fail "test fiber did not complete (deadlock or time limit)"

(* Same, but the body gets the engine and may spawn more fibers; the
   engine keeps running after the body finishes until drained or [until]. *)
let run_scenario ?until ?(seed = 7L) setup =
  let e = engine ~seed () in
  setup e;
  Sim.Engine.run ?until e;
  e

let default_cal = Sim.Calibration.default

let host ?(cal = default_cal) e ~id = Sim.Host.create e cal ~id ~name:(Printf.sprintf "h%d" id)

(* A connected QP pair on two fresh hosts, both fully open. *)
let qp_pair ?(cal = default_cal) e =
  let a = host ~cal e ~id:0 and b = host ~cal e ~id:1 in
  let cq_a = Rdma.Cq.create e and cq_b = Rdma.Cq.create e in
  let qa = Rdma.Qp.create a ~cq:cq_a and qb = Rdma.Qp.create b ~cq:cq_b in
  Rdma.Qp.connect qa qb;
  Rdma.Qp.set_access qa Rdma.Verbs.access_rw;
  Rdma.Qp.set_access qb Rdma.Verbs.access_rw;
  (a, b, qa, qb, cq_a, cq_b)

let bytes_of_string = Bytes.of_string

let check_status = Alcotest.testable Rdma.Verbs.pp_wc_status ( = )

(* A small Mu cluster with all planes running (no client service). *)
let mu_cluster ?(cal = default_cal) ?(cfg = Mu.Config.default) e =
  let smr =
    Mu.Smr.create e cal cfg ~make_app:(fun _ -> Mu.Smr.stateless_app (fun _ -> Bytes.empty))
  in
  Mu.Smr.start ~client_service:false smr;
  smr

let wait_for pred e =
  let deadline = Sim.Engine.now e + 5_000_000_000 in
  while (not (pred ())) && Sim.Engine.now e < deadline do
    Sim.Engine.sleep e 20_000
  done;
  if not (pred ()) then Alcotest.fail "wait_for: condition not reached in 5 sim-seconds"

let contains_substring s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let leader_of smr e =
  wait_for
    (fun () -> match Mu.Smr.leader smr with Some _ -> true | None -> false)
    e;
  Option.get (Mu.Smr.leader smr)
