(* Tests for the serving tier: the open-loop population model, the
   shard router, doorbell batching in Mu.Smr, tier admission control,
   the serving-off PRNG-isolation regression, and Mu.Sharded under
   chaos. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- arrival-process samplers ------------------------------------------- *)

let poisson_gap_mean () =
  let rng = Sim.Rng.create 11L in
  let rate = 0.001 (* one arrival per microsecond *) in
  let n = 20_000 in
  let total = ref 0 in
  for _ = 1 to n do
    let g = Workload.Generators.poisson_gap rng ~rate in
    check "gap positive" true (g >= 1);
    total := !total + g
  done;
  let mean = float_of_int !total /. float_of_int n in
  check "mean near 1/rate" true (mean > 900.0 && mean < 1_100.0)

let diurnal_rate_bounds () =
  let base = 10.0 and amplitude = 0.5 and period_ns = 1_000_000 in
  let lo = ref infinity and hi = ref neg_infinity and sum = ref 0.0 in
  let steps = 1_000 in
  for i = 0 to steps - 1 do
    let r =
      Workload.Generators.diurnal_rate ~base ~amplitude ~period_ns
        ~now:(i * period_ns / steps)
    in
    if r < !lo then lo := r;
    if r > !hi then hi := r;
    sum := !sum +. r
  done;
  check "min near base*(1-a)" true (!lo > 4.9 && !lo < 5.5);
  check "max near base*(1+a)" true (!hi > 14.5 && !hi < 15.1);
  let mean = !sum /. float_of_int steps in
  check "mean near base" true (mean > 9.5 && mean < 10.5)

(* --- population --------------------------------------------------------- *)

let population_deterministic () =
  let draw seed =
    let pop =
      Serving.Population.create ~clients:50_000 ~think_ns:1_000_000
        (Sim.Rng.create seed)
    in
    List.init 500 (fun i ->
        let a = Serving.Population.next pop ~now:(i * 1_000) in
        (a.Serving.Population.gap_ns, a.Serving.Population.client,
         a.Serving.Population.key))
  in
  check "same seed, same arrivals" true (draw 3L = draw 3L);
  check "different seed differs" true (draw 3L <> draw 4L)

let population_zipf_skew () =
  let pop =
    Serving.Population.create ~keys:1_000 ~clients:1_000_000 ~think_ns:10_000_000
      (Sim.Rng.create 5L)
  in
  let counts = Hashtbl.create 64 in
  for i = 0 to 19_999 do
    let a = Serving.Population.next pop ~now:(i * 10) in
    let k = a.Serving.Population.key in
    Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k))
  done;
  (* Under Zipf 0.99 the head key draws a large share. *)
  let head = Option.value ~default:0 (Hashtbl.find_opt counts "key-00000000") in
  check "head key dominates" true (head > 1_000);
  check_int "arrivals counted" 20_000 (Serving.Population.arrivals pop)

let population_think_gate () =
  (* Two clients at an offered rate far beyond what two serial clients
     can generate: most picks land on thinking clients and the
     suppressed counter must show it. *)
  let pop =
    Serving.Population.create ~clients:2 ~think_ns:1_000_000 (Sim.Rng.create 6L)
  in
  let now = ref 0 in
  for _ = 1 to 200 do
    let a = Serving.Population.next pop ~now:!now in
    now := !now + a.Serving.Population.gap_ns
  done;
  check "saturated population suppresses picks" true
    (Serving.Population.suppressed pop > 50)

let population_diurnal_modulates_rate () =
  let period_ns = 1_000_000 in
  let pop =
    Serving.Population.create
      ~process:(Serving.Population.Diurnal { period_ns; amplitude = 0.8 })
      ~clients:100_000 ~think_ns:1_000_000 (Sim.Rng.create 7L)
  in
  let peak = Serving.Population.rate pop ~now:(period_ns / 4) in
  let trough = Serving.Population.rate pop ~now:(3 * period_ns / 4) in
  check "peak well above trough" true (peak > 4.0 *. trough)

(* --- router ------------------------------------------------------------- *)

let router_agrees_with_sharded () =
  Util.run_fiber (fun e ->
      let s =
        Mu.Sharded.create e Util.default_cal Mu.Config.default ~shards:8
          ~make_app:(fun ~shard:_ ~replica:_ -> Mu.Smr.stateless_app Fun.id)
      in
      let router = Serving.Router.create ~shards:8 in
      for i = 0 to 499 do
        let key = Printf.sprintf "key-%08d" i in
        check_int "router matches cluster routing"
          (Mu.Sharded.shard_of_key s key)
          (Serving.Router.route router key)
      done)

let chaos_keys_route_to_shard () =
  let shards = 4 in
  for shard = 0 to shards - 1 do
    let keys = Serving.Chaos.keys_for ~shards ~shard ~count:3 in
    check_int "enough keys" 3 (Array.length keys);
    Array.iter
      (fun k -> check_int "routes to shard" shard (Mu.Sharded.key_hash k mod shards))
      keys
  done

(* --- satellite 2: serving-off runs must not touch the engine PRNG ------- *)

let serving_off_trace_unperturbed () =
  (* Two identical traced Smr runs; the second also constructs serving
     objects (population, router) from their own explicit rng before and
     during the run. Trace bytes must be identical: serving machinery
     draws from the engine stream only when a serving run wires it in. *)
  let run ~with_serving =
    let tracer = Trace.Tracer.create () in
    let e = Sim.Engine.create ~seed:99L () in
    Trace.Tracer.attach tracer e;
    if with_serving then begin
      let pop =
        Serving.Population.create ~clients:100_000 ~think_ns:1_000_000
          (Sim.Rng.create 1234L)
      in
      ignore (Serving.Population.next pop ~now:0);
      ignore (Serving.Router.create ~shards:8)
    end;
    let smr =
      Mu.Smr.create e Util.default_cal Mu.Config.default ~make_app:(fun _ ->
          Mu.Smr.stateless_app Fun.id)
    in
    Mu.Smr.start smr;
    Sim.Engine.spawn e ~name:"client" (fun () ->
        Mu.Smr.wait_live smr;
        (if with_serving then
           let pop2 =
             Serving.Population.create ~clients:1_000 ~think_ns:1_000
               (Sim.Rng.create 77L)
           in
           ignore (Serving.Population.next pop2 ~now:(Sim.Engine.now e)));
        for i = 1 to 10 do
          ignore (Mu.Smr.submit smr (Bytes.of_string (Printf.sprintf "req%d" i)))
        done;
        Mu.Smr.stop smr;
        Sim.Engine.halt e);
    Sim.Engine.run ~until:60_000_000_000 e;
    Trace.Tracer.events tracer
  in
  check "serving-off trace bytes unperturbed" true
    (run ~with_serving:false = run ~with_serving:true)

(* --- doorbell batching -------------------------------------------------- *)

let doorbell_config_default_off () =
  check_int "default doorbell off" 1 Mu.Config.default.Mu.Config.doorbell;
  check "validate rejects doorbell < 1" true
    (try
       Mu.Config.validate { Mu.Config.default with Mu.Config.doorbell = 0 };
       false
     with Invalid_argument _ -> true)

let doorbell_cfg =
  {
    Mu.Config.default with
    Mu.Config.max_batch = 4;
    max_outstanding = 3;
    doorbell = 4;
  }

let doorbell_commits_and_responds () =
  Util.run_scenario ~until:60_000_000_000 (fun e ->
      let smr =
        Mu.Smr.create e Util.default_cal doorbell_cfg ~make_app:(fun _ ->
            Mu.Smr.stateless_app Fun.id)
      in
      Mu.Smr.start smr;
      let finished = ref 0 and clients = 3 and ops = 40 in
      for c = 1 to clients do
        Sim.Engine.spawn e ~name:(Printf.sprintf "client%d" c) (fun () ->
            Mu.Smr.wait_live smr;
            for i = 1 to ops do
              let payload = Bytes.of_string (Printf.sprintf "c%d-%d" c i) in
              let reply = Mu.Smr.submit smr payload in
              check "echo reply matches payload" true (Bytes.equal reply payload)
            done;
            incr finished;
            if !finished = clients then begin
              Mu.Smr.stop smr;
              Sim.Engine.halt e
            end)
      done)
  |> fun e ->
  ignore e

let doorbell_faster_when_saturated () =
  (* Doorbell batching pays off when the queue is deep: flood the leader
     with one open-loop burst and time until the last reply lands. With a
     saturated queue one wire write covers several slots, so the doorbell
     run must drain the burst strictly faster than per-slot pipelining. *)
  let burst = 256 in
  let finish_time cfg =
    let done_at = ref 0 in
    let (_ : Sim.Engine.t) =
      Util.run_scenario ~until:60_000_000_000 ~seed:13L (fun e ->
          let smr =
            Mu.Smr.create e Util.default_cal cfg ~make_app:(fun _ ->
                Mu.Smr.stateless_app Fun.id)
          in
          Mu.Smr.start smr;
          Sim.Engine.spawn e ~name:"burst" (fun () ->
              Mu.Smr.wait_live smr;
              let ivars =
                List.init burst (fun i ->
                    Mu.Smr.submit_async smr (Bytes.of_string (Printf.sprintf "b%04d" i)))
              in
              List.iter (fun iv -> ignore (Sim.Engine.Ivar.read iv)) ivars;
              done_at := Sim.Engine.now e;
              Mu.Smr.stop smr;
              Sim.Engine.halt e))
    in
    !done_at
  in
  let plain = finish_time { doorbell_cfg with Mu.Config.doorbell = 1 } in
  let doorbell = finish_time doorbell_cfg in
  check "doorbell run completes" true (doorbell > 0);
  check "plain run completes" true (plain > 0);
  check "doorbell drains burst faster" true (doorbell < plain)

let doorbell_survives_log_wrap () =
  (* A small ring forces the doorbell groups across the wrap boundary
     many times; every request must still get its own response. *)
  let cfg =
    {
      doorbell_cfg with
      Mu.Config.log_slots = 128;
      recycle_slack = 32;
      recycle_interval = 100_000;
    }
  in
  Util.run_scenario ~until:60_000_000_000 (fun e ->
      let smr =
        Mu.Smr.create e Util.default_cal cfg ~make_app:(fun _ ->
            Mu.Smr.stateless_app Fun.id)
      in
      Mu.Smr.start smr;
      let finished = ref 0 and clients = 4 and ops = 120 in
      for c = 1 to clients do
        Sim.Engine.spawn e ~name:(Printf.sprintf "client%d" c) (fun () ->
            Mu.Smr.wait_live smr;
            for i = 1 to ops do
              let payload = Bytes.of_string (Printf.sprintf "w%d-%d" c i) in
              let reply = Mu.Smr.submit smr payload in
              check "reply matches across wrap" true (Bytes.equal reply payload)
            done;
            incr finished;
            if !finished = clients then begin
              let violations = Mu.Invariants.check_all (Mu.Smr.replicas smr) in
              check "invariants clean" true (violations = []);
              Mu.Smr.stop smr;
              Sim.Engine.halt e
            end)
      done)
  |> ignore

let doorbell_deterministic () =
  let run () =
    let tracer = Trace.Tracer.create () in
    let e = Sim.Engine.create ~seed:21L () in
    Trace.Tracer.attach tracer e;
    let smr =
      Mu.Smr.create e Util.default_cal doorbell_cfg ~make_app:(fun _ ->
          Mu.Smr.stateless_app Fun.id)
    in
    Mu.Smr.start smr;
    Sim.Engine.spawn e ~name:"client" (fun () ->
        Mu.Smr.wait_live smr;
        for i = 1 to 60 do
          ignore (Mu.Smr.submit smr (Bytes.of_string (Printf.sprintf "r%d" i)))
        done;
        Mu.Smr.stop smr;
        Sim.Engine.halt e);
    Sim.Engine.run ~until:60_000_000_000 e;
    Trace.Tracer.events tracer
  in
  check "doorbell runs byte-identical per seed" true (run () = run ())

(* --- tier --------------------------------------------------------------- *)

let tier_setup seed = { Workload.Experiments.default_setup with seed }

let tier_smoke () =
  let report =
    Workload.Experiments.run_sim (tier_setup 31L) ~until:10_000_000_000 (fun e ->
        let population =
          Serving.Population.create ~clients:20_000 ~think_ns:10_000_000
            (Sim.Rng.split (Sim.Engine.rng e))
        in
        Serving.Tier.run e Util.default_cal
          { Mu.Config.default with Mu.Config.max_outstanding = 2 }
          ~shards:2 ~population ~duration:300_000 ())
  in
  check "arrivals generated" true (report.Serving.Tier.offered > 100);
  check "some requests completed" true (report.Serving.Tier.completed > 0);
  check "accounting consistent" true
    (report.Serving.Tier.completed + report.Serving.Tier.shed
    <= report.Serving.Tier.offered);
  check "throughput positive" true (report.Serving.Tier.committed_per_us > 0.0);
  check_int "per-shard reports" 2 (List.length report.Serving.Tier.per_shard);
  let sum_committed =
    List.fold_left
      (fun acc r -> acc + r.Serving.Tier.committed)
      0 report.Serving.Tier.per_shard
  in
  check_int "per-shard sums to total" report.Serving.Tier.completed sum_committed

let tier_sheds_under_pressure () =
  let report =
    Workload.Experiments.run_sim (tier_setup 32L) ~until:10_000_000_000 (fun e ->
        let population =
          (* ~50 req/us offered against one unbatched shard. *)
          Serving.Population.create ~clients:500_000 ~think_ns:10_000_000
            (Sim.Rng.split (Sim.Engine.rng e))
        in
        Serving.Tier.run e Util.default_cal Mu.Config.default ~shards:1 ~population
          ~duration:200_000 ~admit_limit:8 ())
  in
  check "admission sheds under overload" true (report.Serving.Tier.shed > 0);
  check "still commits some" true (report.Serving.Tier.completed > 0)

let tier_deterministic () =
  let run () =
    Workload.Experiments.run_sim (tier_setup 33L) ~until:10_000_000_000 (fun e ->
        let population =
          Serving.Population.create ~clients:50_000 ~think_ns:10_000_000
            (Sim.Rng.split (Sim.Engine.rng e))
        in
        let r =
          Serving.Tier.run e Util.default_cal
            (Serving.Surface.config ~batch:4 ~doorbell:4)
            ~shards:2 ~population ~duration:200_000 ()
        in
        (r.Serving.Tier.offered, r.Serving.Tier.completed, r.Serving.Tier.shed,
         r.Serving.Tier.p99_ns))
  in
  check "tier runs deterministic per seed" true (run () = run ())

(* --- sharded chaos (satellite 3) ---------------------------------------- *)

let sharded_chaos scenario_name =
  match Faults.Scenario.by_name scenario_name ~n:3 with
  | None -> Alcotest.failf "unknown scenario %s" scenario_name
  | Some scenario -> Serving.Chaos.run ~seed:41L ~n:3 ~shards:2 scenario

let sharded_chaos_kill_restart () =
  let o = sharded_chaos "kill-restart" in
  check "kill-restart passes" true (Serving.Chaos.passed o);
  check "rejoin completed" true (o.Serving.Chaos.rejoins >= 1);
  check "history non-trivial" true (o.Serving.Chaos.ops >= 80)

let sharded_chaos_partition () =
  let o = sharded_chaos "partition-leader" in
  check "partition passes" true (Serving.Chaos.passed o);
  check "history non-trivial" true (o.Serving.Chaos.ops >= 80)

let suite =
  [
    ("poisson gap mean", `Quick, poisson_gap_mean);
    ("diurnal rate bounds", `Quick, diurnal_rate_bounds);
    ("population deterministic", `Quick, population_deterministic);
    ("population zipf skew", `Quick, population_zipf_skew);
    ("population think gate", `Quick, population_think_gate);
    ("population diurnal rate", `Quick, population_diurnal_modulates_rate);
    ("router agrees with sharded", `Quick, router_agrees_with_sharded);
    ("chaos keys route to shard", `Quick, chaos_keys_route_to_shard);
    ("serving-off trace unperturbed", `Quick, serving_off_trace_unperturbed);
    ("doorbell default off", `Quick, doorbell_config_default_off);
    ("doorbell commits and responds", `Quick, doorbell_commits_and_responds);
    ("doorbell faster when saturated", `Quick, doorbell_faster_when_saturated);
    ("doorbell survives log wrap", `Quick, doorbell_survives_log_wrap);
    ("doorbell deterministic", `Quick, doorbell_deterministic);
    ("tier smoke", `Quick, tier_smoke);
    ("tier sheds under pressure", `Quick, tier_sheds_under_pressure);
    ("tier deterministic", `Quick, tier_deterministic);
    ("sharded chaos: kill-restart", `Quick, sharded_chaos_kill_restart);
    ("sharded chaos: partition", `Quick, sharded_chaos_partition);
  ]
