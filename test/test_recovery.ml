(* Tests for crash recovery: simulated NVM (lib/sim/nvm), the durable
   state layout and catch-up driver (lib/recovery), and the end-to-end
   kill → restart → rejoin pipeline in Mu.Smr — including graceful
   degradation of a quorum-lost leader and determinism of recovery
   runs. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- simulated NVM ------------------------------------------------------- *)

let nvm_regions_persist () =
  let nvm = Sim.Nvm.create () in
  check "fresh region unknown" false (Sim.Nvm.mem nvm ~owner:0 ~name:"log");
  let r = Sim.Nvm.region nvm ~owner:0 ~name:"log" ~size:64 in
  Bytes.set r 0 'x';
  check "region now known" true (Sim.Nvm.mem nvm ~owner:0 ~name:"log");
  (* Re-opening returns the same backing bytes, not a copy. *)
  let r' = Sim.Nvm.region nvm ~owner:0 ~name:"log" ~size:64 in
  check "same bytes on reopen" true (r == r');
  check "write visible" true (Bytes.get r' 0 = 'x');
  (* Same name under a different owner is a distinct region. *)
  let other = Sim.Nvm.region nvm ~owner:1 ~name:"log" ~size:64 in
  check "per-owner isolation" true (Bytes.get other 0 = '\000');
  (* Size mismatch is a programming error. *)
  (match Sim.Nvm.region nvm ~owner:0 ~name:"log" ~size:128 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "size mismatch accepted");
  Sim.Nvm.erase nvm ~owner:0 ~name:"log";
  check "erase forgets" false (Sim.Nvm.mem nvm ~owner:0 ~name:"log")

let durable_members_roundtrip () =
  let nvm = Sim.Nvm.create () in
  check "no durable state yet" false (Recovery.Durable.has_durable_state nvm ~owner:3);
  let meta = Recovery.Durable.meta_backing nvm ~owner:3 in
  check "blank meta decodes to None" true (Recovery.Durable.read_members meta = None);
  Recovery.Durable.write_members meta [ 2; 0; 1; 1 ];
  check "members round-trip sorted+deduped" true
    (Recovery.Durable.read_members meta = Some [ 0; 1; 2 ]);
  Recovery.Durable.write_members meta [ 0; 2 ];
  check "overwrite shrinks" true (Recovery.Durable.read_members meta = Some [ 0; 2 ]);
  (* The log region is what [has_durable_state] keys on. *)
  ignore (Recovery.Durable.log_backing nvm ~owner:3 ~size:256);
  check "durable state after log creation" true
    (Recovery.Durable.has_durable_state nvm ~owner:3)

(* --- catch-up driver (pure closures) ------------------------------------- *)

let catchup_reaches_parity () =
  let fuo = ref 0 in
  let installed = Array.make 10 false in
  let idles = ref 0 in
  match
    Recovery.Catchup.run ~batch:4 ~idle_ns:10
      ~idle:(fun _ -> incr idles)
      ~target:(fun () -> Some 10)
      ~fuo:(fun () -> !fuo)
      ~pull:(fun i -> Recovery.Catchup.Entry (Bytes.make 1 (Char.chr i)))
      ~install:(fun i _ -> installed.(i) <- true)
      ~commit:(fun i -> fuo := i)
      ~recheckpoint:(fun () -> ())
      ~stopped:(fun () -> false)
      ()
  with
  | Recovery.Catchup.Parity p ->
    check_int "all entries pulled" 10 p.Recovery.Catchup.entries;
    check "all installed" true (Array.for_all Fun.id installed);
    check_int "local fuo at parity" 10 !fuo;
    check_int "ceil(10/4) rounds" 3 p.Recovery.Catchup.rounds;
    check "idled between rounds (rate bound)" true (!idles >= 3)
  | Recovery.Catchup.Stopped _ -> Alcotest.fail "catch-up stopped unexpectedly"

let catchup_recheckpoints_after_recycle () =
  let fuo = ref 0 in
  let recheckpoints = ref 0 in
  match
    Recovery.Catchup.run ~batch:4 ~idle_ns:10
      ~idle:(fun _ -> ())
      ~target:(fun () -> Some 10)
      ~fuo:(fun () -> !fuo)
      ~pull:(fun i ->
        if i < 6 then Recovery.Catchup.Recycled
        else Recovery.Catchup.Entry (Bytes.create 1))
      ~install:(fun _ _ -> ())
      ~commit:(fun i -> fuo := max !fuo i)
        (* A recheckpoint jumps state forward past the recycled prefix,
           as the real pipeline does with a fresh snapshot. *)
      ~recheckpoint:(fun () ->
        incr recheckpoints;
        fuo := 6)
      ~stopped:(fun () -> false)
      ()
  with
  | Recovery.Catchup.Parity p ->
    check_int "one recheckpoint" 1 !recheckpoints;
    check_int "driver counted it" 1 p.Recovery.Catchup.recheckpoints;
    check_int "only the live suffix pulled" 4 p.Recovery.Catchup.entries
  | Recovery.Catchup.Stopped _ -> Alcotest.fail "catch-up stopped unexpectedly"

let catchup_stops_and_waits () =
  (* [stopped] wins immediately. *)
  (match
     Recovery.Catchup.run ~batch:1 ~idle_ns:1
       ~idle:(fun _ -> ())
       ~target:(fun () -> Some 5)
       ~fuo:(fun () -> 0)
       ~pull:(fun _ -> Recovery.Catchup.Entry (Bytes.create 1))
       ~install:(fun _ _ -> ())
       ~commit:(fun _ -> ())
       ~recheckpoint:(fun () -> ())
       ~stopped:(fun () -> true)
       ()
   with
  | Recovery.Catchup.Stopped p -> check_int "nothing pulled" 0 p.Recovery.Catchup.entries
  | Recovery.Catchup.Parity _ -> Alcotest.fail "ran while stopped");
  (* Leaderless ([target () = None]) idles instead of spinning, until
     stopped. *)
  let idles = ref 0 in
  match
    Recovery.Catchup.run ~batch:1 ~idle_ns:1
      ~idle:(fun _ -> incr idles)
      ~target:(fun () -> None)
      ~fuo:(fun () -> 0)
      ~pull:(fun _ -> Recovery.Catchup.Unreachable)
      ~install:(fun _ _ -> ())
      ~commit:(fun _ -> ())
      ~recheckpoint:(fun () -> ())
      ~stopped:(fun () -> !idles >= 3)
      ()
  with
  | Recovery.Catchup.Stopped _ -> check "idled while leaderless" true (!idles >= 3)
  | Recovery.Catchup.Parity _ -> Alcotest.fail "no leader, no parity"

let backpressure_bounds_queue () =
  let bp = Recovery.Backpressure.create ~limit:2 in
  check "enabled" true (Recovery.Backpressure.enabled bp);
  check "below bound" true (Recovery.Backpressure.admit bp ~depth:0);
  check "below bound" true (Recovery.Backpressure.admit bp ~depth:1);
  check "at bound refused" false (Recovery.Backpressure.admit bp ~depth:2);
  check "past bound refused" false (Recovery.Backpressure.admit bp ~depth:7);
  check_int "refusals counted" 2 (Recovery.Backpressure.sheds bp);
  let off = Recovery.Backpressure.create ~limit:0 in
  check "limit 0 disables" true (Recovery.Backpressure.admit off ~depth:1_000_000);
  check_int "no sheds when disabled" 0 (Recovery.Backpressure.sheds off)

let degrade_window_accounting () =
  let d = Recovery.Degrade.create () in
  check "not active" false (Recovery.Degrade.active d);
  check "leave without enter" true (Recovery.Degrade.leave d ~now:5 = None);
  Recovery.Degrade.enter d ~now:10;
  Recovery.Degrade.enter d ~now:20;
  (* second enter is a no-op *)
  check "active" true (Recovery.Degrade.active d);
  check "window spans from first enter" true (Recovery.Degrade.leave d ~now:110 = Some 100);
  Recovery.Degrade.enter d ~now:200;
  check "second window" true (Recovery.Degrade.leave d ~now:250 = Some 50);
  check_int "windows" 2 (Recovery.Degrade.windows d);
  check_int "total" 150 (Recovery.Degrade.total_ns d);
  check "last" true (Recovery.Degrade.last_ns d = Some 50)

(* --- end-to-end: kill, restart, rejoin ----------------------------------- *)

let durable_cfg = { Mu.Config.default with Mu.Config.durable_state = true }

let with_smr ?(cfg = durable_cfg) ?(seed = 7L) f =
  let e = Sim.Engine.create ~seed () in
  let smr = Mu.Smr.create e Util.default_cal cfg ~make_app:(fun _ -> Apps.Kv_store.smr_app ()) in
  Mu.Smr.start smr;
  let result = ref None in
  Sim.Engine.spawn e ~name:"driver" (fun () ->
      result := Some (f e smr);
      Mu.Smr.stop smr;
      Sim.Engine.halt e);
  Sim.Engine.run ~until:120_000_000_000 e;
  match !result with Some r -> r | None -> Alcotest.fail "scenario did not finish"

let put smr k v i =
  ignore
    (Mu.Smr.submit smr
       (Apps.Kv_store.encode_command ~client:1 ~req_id:i
          (Apps.Kv_store.Put { key = k; value = v })))

let get smr k i =
  match
    Apps.Kv_store.decode_reply
      (Mu.Smr.submit smr
         (Apps.Kv_store.encode_command ~client:1 ~req_id:i (Apps.Kv_store.Get { key = k })))
  with
  | Some (Apps.Kv_store.Value v) -> Some v
  | _ -> None

(* Kill a follower under traffic, restart it, and require exact log
   parity: the rejoined incarnation's FUO catches the leader's, with the
   entries decided during the outage pulled from the leader's log. *)
let follower_kill_restart_reaches_parity () =
  with_smr (fun e smr ->
      Mu.Smr.wait_live smr;
      for i = 1 to 10 do
        put smr (Printf.sprintf "k%d" i) (Printf.sprintf "v%d" i) i
      done;
      let r2 = Mu.Smr.replica smr 2 in
      Sim.Host.kill_host r2.Mu.Replica.host;
      check "host dead" false (Sim.Host.process_alive r2.Mu.Replica.host);
      (* The cluster keeps committing on the surviving majority. *)
      for i = 11 to 30 do
        put smr (Printf.sprintf "k%d" i) (Printf.sprintf "v%d" i) i
      done;
      Mu.Smr.restart_replica smr ~id:2;
      Util.wait_for (fun () -> Mu.Smr.rejoins smr <> []) e;
      let r2' = Mu.Smr.replica smr 2 in
      check "fresh incarnation installed" true (r2' != r2);
      check "new host running" true (Sim.Host.process_alive r2'.Mu.Replica.host);
      let rj = List.hd (Mu.Smr.rejoins smr) in
      check_int "rejoin is for host 2" 2 rj.Mu.Smr.pid;
      check "entries pulled from the leader" true (rj.Mu.Smr.entries_pulled > 0);
      check "time to parity measured" true (rj.Mu.Smr.parity_at > rj.Mu.Smr.restarted_at);
      (* New writes confirm it back into the quorum. A follower's FUO
         trails the leader's last commit by one until the next accept
         proves it decided (commit piggybacking), so the convergence
         target is a FUO captured *after* a committed write, not the
         leader's moving FUO: the next write pushes the rejoined
         follower to (and past) it. *)
      put smr "after" "rejoin" 31;
      let l () = Option.get (Mu.Smr.serving_leader smr) in
      let target = Mu.Log.fuo (l ()).Mu.Replica.log in
      put smr "post" "x" 32;
      Util.wait_for (fun () -> List.mem 2 (l ()).Mu.Replica.confirmed) e;
      Util.wait_for (fun () -> Mu.Log.fuo r2'.Mu.Replica.log >= target) e;
      Util.wait_for (fun () -> r2'.Mu.Replica.applied >= target) e;
      check "no invariant violations" true
        (Mu.Invariants.check_all (Mu.Smr.replicas smr) = []))

(* Kill the leader: after fail-over the cluster commits under the next
   leader; the restarted lowest id catches up and — per §5.1's
   lowest-alive-id rule — takes leadership back. *)
let leader_kill_restart_fails_back () =
  with_smr (fun e smr ->
      Mu.Smr.wait_live smr;
      for i = 1 to 5 do
        put smr (Printf.sprintf "a%d" i) "x" i
      done;
      let r0 = Mu.Smr.replica smr 0 in
      Sim.Host.kill_host r0.Mu.Replica.host;
      (* These block across the fail-over and commit under leader 1. *)
      for i = 6 to 15 do
        put smr (Printf.sprintf "b%d" i) "y" i
      done;
      Mu.Smr.restart_replica smr ~id:0;
      Util.wait_for (fun () -> Mu.Smr.rejoins smr <> []) e;
      Util.wait_for
        (fun () ->
          match Mu.Smr.serving_leader smr with
          | Some l -> l.Mu.Replica.id = 0
          | None -> false)
        e;
      put smr "final" "v" 16;
      Alcotest.(check (option string)) "state served by failed-back leader" (Some "v")
        (get smr "final" 17);
      let r0' = Mu.Smr.replica smr 0 in
      check "restarted lowest id leads again" true (Mu.Replica.is_leader r0');
      check "no invariant violations" true
        (Mu.Invariants.check_all (Mu.Smr.replicas smr) = []))

(* Restarting a replica whose process was stopped (not killed) recovers
   the same way — stop-vs-kill differ in how state survives, not in
   whether rejoin works. *)
let stopped_process_restarts () =
  with_smr (fun e smr ->
      Mu.Smr.wait_live smr;
      for i = 1 to 8 do
        put smr (Printf.sprintf "s%d" i) "v" i
      done;
      let r1 = Mu.Smr.replica smr 1 in
      Sim.Host.stop_process r1.Mu.Replica.host;
      for i = 9 to 16 do
        put smr (Printf.sprintf "s%d" i) "v" i
      done;
      Mu.Smr.restart_replica smr ~id:1;
      Util.wait_for (fun () -> Mu.Smr.rejoins smr <> []) e;
      let r1' = Mu.Smr.replica smr 1 in
      put smr "post" "stop" 17;
      let l () = Option.get (Mu.Smr.serving_leader smr) in
      let target = Mu.Log.fuo (l ()).Mu.Replica.log in
      put smr "post2" "stop" 18;
      Util.wait_for (fun () -> List.mem 1 (l ()).Mu.Replica.confirmed) e;
      Util.wait_for (fun () -> Mu.Log.fuo r1'.Mu.Replica.log >= target) e)

(* Restarting a replica that is still running must be a no-op: no second
   incarnation, no rejoin record. *)
let restart_of_running_replica_is_noop () =
  with_smr (fun e smr ->
      Mu.Smr.wait_live smr;
      put smr "a" "1" 1;
      let r2 = Mu.Smr.replica smr 2 in
      Mu.Smr.restart_replica smr ~id:2;
      Sim.Engine.sleep e 5_000_000;
      check "same incarnation" true (Mu.Smr.replica smr 2 == r2);
      check "no rejoin recorded" true (Mu.Smr.rejoins smr = []);
      check_int "nothing in flight" 0 (Mu.Smr.restarts_in_flight smr);
      match Mu.Smr.restart_replica smr ~id:99 with
      | exception Invalid_argument _ -> ()
      | () -> Alcotest.fail "unknown id accepted")

(* Quorum loss: with both followers dead the leader parks requests;
   past the queue bound it sheds with a retryable error; when one
   follower rejoins, the degraded window closes and the parked requests
   commit. *)
let quorum_loss_sheds_then_resumes () =
  let cfg = { durable_cfg with Mu.Config.queue_limit = 4 } in
  with_smr ~cfg (fun e smr ->
      Mu.Smr.wait_live smr;
      put smr "pre" "1" 1;
      let r1 = Mu.Smr.replica smr 1 and r2 = Mu.Smr.replica smr 2 in
      Sim.Host.kill_host r1.Mu.Replica.host;
      Sim.Host.kill_host r2.Mu.Replica.host;
      (* Submit a burst without yielding: the first [queue_limit] park at
         the (soon-to-be) degraded leader, the rest shed immediately. *)
      let mk i =
        Apps.Kv_store.encode_command ~client:9 ~req_id:i
          (Apps.Kv_store.Put { key = "q"; value = string_of_int i })
      in
      let ivs = List.init 12 (fun i -> Mu.Smr.submit_async ~retry:false smr (mk i)) in
      let shed_now, parked =
        List.partition (fun iv -> Sim.Engine.Ivar.is_filled iv) ivs
      in
      (* 12 submitted: the first hands off directly to the service fiber
         parked in Chan.recv (it never occupies the queue), 4 park at the
         bound, the remaining 7 shed. *)
      check_int "burst minus bound shed" 7 (List.length shed_now);
      check_int "sheds counted" 7 (Mu.Smr.shed_requests smr);
      List.iter
        (fun iv ->
          match Sim.Engine.Ivar.peek iv with
          | Some b -> check "shed reply is retryable" true (Mu.Smr.is_retryable b)
          | None -> Alcotest.fail "shed ivar empty")
        shed_now;
      (* The leader notices the lost quorum (first aborted propose) and
         opens a degraded window; nothing commits meanwhile. *)
      let committed_before = Mu.Log.fuo (Mu.Smr.replica smr 0).Mu.Replica.log in
      Sim.Engine.sleep e 30_000_000;
      check "no parked request answered while degraded" true
        (List.for_all (fun iv -> not (Sim.Engine.Ivar.is_filled iv)) parked);
      check_int "nothing committed while degraded"
        committed_before
        (Mu.Log.fuo (Mu.Smr.replica smr 0).Mu.Replica.log);
      (* One follower rejoins: quorum is back, the window closes, parked
         requests commit. *)
      Mu.Smr.restart_replica smr ~id:1;
      Util.wait_for (fun () -> Mu.Smr.rejoins smr <> []) e;
      Util.wait_for
        (fun () -> List.for_all (fun iv -> Sim.Engine.Ivar.is_filled iv) parked)
        e;
      check "degraded window recorded" true (Mu.Smr.degraded_windows smr >= 1);
      check "degraded time accrued" true (Mu.Smr.degraded_total_ns smr > 0);
      Util.wait_for (fun () -> get smr "q" 100 <> None) e;
      check "resumed cluster serves writes" true
        (match get smr "resumed" 101 with None -> true | Some _ -> false);
      put smr "resumed" "yes" 102;
      Alcotest.(check (option string)) "resumed" (Some "yes") (get smr "resumed" 103))

(* --- determinism --------------------------------------------------------- *)

(* Same seed + kill-restart scenario ⇒ byte-identical traces, rejoin
   included; and with no restart in the run, durable state on vs off is
   invisible (identical bytes) — recovery support costs nothing until
   used. *)
let recovery_runs_are_deterministic () =
  let scenario = Option.get (Faults.Scenario.by_name ~n:3 "kill-restart") in
  let run seed =
    let tr = Trace.Tracer.create ~capacity:(1 lsl 18) () in
    let o =
      Workload.Chaos.run ~trace:tr ~ops_per_client:60 ~think:100_000 ~seed ~n:3 scenario
    in
    (Trace.Tracer.chrome_string tr, o)
  in
  let t1, o1 = run 7L in
  let t2, o2 = run 7L in
  Alcotest.(check string) "same seed, identical trace bytes" t1 t2;
  check "run passed" true (Workload.Chaos.passed o1);
  check "rejoin happened" true (o1.Workload.Chaos.rejoins <> []);
  check_int "same rejoins" (List.length o1.Workload.Chaos.rejoins)
    (List.length o2.Workload.Chaos.rejoins);
  check "entries pulled during rejoin" true
    (List.exists (fun r -> r.Mu.Smr.entries_pulled > 0) o1.Workload.Chaos.rejoins);
  let t3, _ = run 8L in
  check "different seed diverges" true (t1 <> t3)

let durable_off_run_is_unchanged () =
  let scenario = Option.get (Faults.Scenario.by_name ~n:3 "crash-leader") in
  let run durable =
    let tr = Trace.Tracer.create ~capacity:(1 lsl 18) () in
    ignore (Workload.Chaos.run ~trace:tr ~durable ~seed:7L ~n:3 scenario);
    Trace.Tracer.chrome_string tr
  in
  Alcotest.(check string) "durable backing invisible without restarts" (run false)
    (run true)

let suite =
  [
    ("nvm regions persist", `Quick, nvm_regions_persist);
    ("durable members round-trip", `Quick, durable_members_roundtrip);
    ("catch-up reaches parity", `Quick, catchup_reaches_parity);
    ("catch-up recheckpoints after recycle", `Quick, catchup_recheckpoints_after_recycle);
    ("catch-up stops and waits", `Quick, catchup_stops_and_waits);
    ("backpressure bounds the queue", `Quick, backpressure_bounds_queue);
    ("degraded-window accounting", `Quick, degrade_window_accounting);
    ("follower kill-restart reaches parity", `Quick, follower_kill_restart_reaches_parity);
    ("leader kill-restart fails back", `Quick, leader_kill_restart_fails_back);
    ("stopped process restarts", `Quick, stopped_process_restarts);
    ("restart of running replica is a no-op", `Quick, restart_of_running_replica_is_noop);
    ("quorum loss sheds then resumes", `Quick, quorum_loss_sheds_then_resumes);
    ("recovery runs deterministic", `Quick, recovery_runs_are_deterministic);
    ("durable off is unchanged", `Quick, durable_off_run_is_unchanged);
  ]
