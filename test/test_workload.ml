(* Tests for the workload library: generators and the linearizability
   checker. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- generators ------------------------------------------------------------ *)

let payload_size_and_determinism () =
  let r1 = Sim.Rng.create 3L and r2 = Sim.Rng.create 3L in
  let p1 = Workload.Generators.payload r1 ~size:64 in
  let p2 = Workload.Generators.payload r2 ~size:64 in
  check_int "size" 64 (Bytes.length p1);
  check "deterministic" true (Bytes.equal p1 p2)

let zipf_skew () =
  let rng = Sim.Rng.create 4L in
  let n = 1_000 in
  let counts = Array.make n 0 in
  for _ = 1 to 50_000 do
    let k = Workload.Generators.zipf rng ~n ~theta:0.99 in
    check "in range" true (k >= 0 && k < n);
    counts.(k) <- counts.(k) + 1
  done;
  (* Head keys dominate under Zipf 0.99. *)
  check "head heavier than tail" true (counts.(0) > 20 * max 1 counts.(n - 1));
  check "head around 12-18%" true (counts.(0) > 3_000 && counts.(0) < 12_000)

let zipf_uniform_when_theta_zero () =
  let rng = Sim.Rng.create 5L in
  let counts = Array.make 10 0 in
  for _ = 1 to 10_000 do
    let k = Workload.Generators.zipf rng ~n:10 ~theta:0.0 in
    counts.(k) <- counts.(k) + 1
  done;
  Array.iter (fun c -> check "roughly uniform" true (c > 700 && c < 1_300)) counts

let order_flow_generates_valid_commands () =
  let rng = Sim.Rng.create 6L in
  let flow = Workload.Generators.order_flow rng in
  let book = Apps.Order_book.create () in
  let rejected = ref 0 and total = 500 in
  for _ = 1 to total do
    let cmd = Workload.Generators.next_order flow in
    let events = Apps.Exchange.apply book cmd in
    List.iter
      (function Apps.Order_book.Rejected _ -> incr rejected | _ -> ())
      events
  done;
  (* Market orders on an empty side get rejected; everything else lands. *)
  check "mostly valid flow" true (!rejected * 5 < total);
  check "book active" true (Apps.Order_book.trades_executed book > 10)

(* --- linearizability checker ------------------------------------------------ *)

let op ~proc ~inv ~res ~key kind =
  { Workload.Linearizability.proc; invoked = inv; responded = res; key; kind }

let lin_sequential_ok () =
  let h =
    [
      op ~proc:1 ~inv:0 ~res:1 ~key:"k" (Workload.Linearizability.Write "a");
      op ~proc:1 ~inv:2 ~res:3 ~key:"k" (Workload.Linearizability.Read (Some "a"));
      op ~proc:1 ~inv:4 ~res:5 ~key:"k" (Workload.Linearizability.Write "b");
      op ~proc:1 ~inv:6 ~res:7 ~key:"k" (Workload.Linearizability.Read (Some "b"));
    ]
  in
  check "linearizable" true (Workload.Linearizability.check h)

let lin_initial_read_none () =
  let h = [ op ~proc:1 ~inv:0 ~res:1 ~key:"k" (Workload.Linearizability.Read None) ] in
  check "read of nothing" true (Workload.Linearizability.check h)

let lin_stale_read_rejected () =
  let h =
    [
      op ~proc:1 ~inv:0 ~res:1 ~key:"k" (Workload.Linearizability.Write "a");
      op ~proc:1 ~inv:2 ~res:3 ~key:"k" (Workload.Linearizability.Write "b");
      (* Reads strictly after both writes cannot see the older value. *)
      op ~proc:2 ~inv:4 ~res:5 ~key:"k" (Workload.Linearizability.Read (Some "a"));
    ]
  in
  check "stale read caught" false (Workload.Linearizability.check h)

let lin_concurrent_write_either_order () =
  let h v =
    [
      op ~proc:1 ~inv:0 ~res:10 ~key:"k" (Workload.Linearizability.Write "a");
      op ~proc:2 ~inv:0 ~res:10 ~key:"k" (Workload.Linearizability.Write "b");
      op ~proc:3 ~inv:11 ~res:12 ~key:"k" (Workload.Linearizability.Read (Some v));
    ]
  in
  check "a possible" true (Workload.Linearizability.check (h "a"));
  check "b possible" true (Workload.Linearizability.check (h "b"))

let lin_read_during_write_flexible () =
  let h =
    [
      op ~proc:1 ~inv:0 ~res:1 ~key:"k" (Workload.Linearizability.Write "a");
      op ~proc:1 ~inv:5 ~res:15 ~key:"k" (Workload.Linearizability.Write "b");
      (* Concurrent with the second write: may see either value. *)
      op ~proc:2 ~inv:6 ~res:14 ~key:"k" (Workload.Linearizability.Read (Some "a"));
    ]
  in
  check "concurrent read of old value ok" true (Workload.Linearizability.check h)

let lin_nonatomic_history_rejected () =
  (* Two sequential reads around a concurrent write observing b then a:
     no single linearization point explains it. *)
  let h =
    [
      op ~proc:1 ~inv:0 ~res:1 ~key:"k" (Workload.Linearizability.Write "a");
      op ~proc:1 ~inv:10 ~res:30 ~key:"k" (Workload.Linearizability.Write "b");
      op ~proc:2 ~inv:12 ~res:14 ~key:"k" (Workload.Linearizability.Read (Some "b"));
      op ~proc:2 ~inv:16 ~res:18 ~key:"k" (Workload.Linearizability.Read (Some "a"));
    ]
  in
  check "b-then-a rejected" false (Workload.Linearizability.check h)

let lin_keys_independent () =
  let h =
    [
      op ~proc:1 ~inv:0 ~res:1 ~key:"x" (Workload.Linearizability.Write "1");
      op ~proc:1 ~inv:2 ~res:3 ~key:"y" (Workload.Linearizability.Write "2");
      op ~proc:2 ~inv:4 ~res:5 ~key:"x" (Workload.Linearizability.Read (Some "1"));
      op ~proc:2 ~inv:6 ~res:7 ~key:"y" (Workload.Linearizability.Read (Some "2"));
    ]
  in
  check "multi-key ok" true (Workload.Linearizability.check h)

let lin_stale_read_after_acked_write_rejected () =
  (* Adversarial: a fourth client reads "v1" strictly after proc1's write
     of "v2" was acknowledged — every read after an acked overwrite must
     observe the new value (or a later one). *)
  let h =
    [
      op ~proc:1 ~inv:0 ~res:1 ~key:"k" (Workload.Linearizability.Write "v1");
      op ~proc:2 ~inv:2 ~res:3 ~key:"k" (Workload.Linearizability.Read (Some "v1"));
      op ~proc:1 ~inv:4 ~res:5 ~key:"k" (Workload.Linearizability.Write "v2");
      op ~proc:3 ~inv:6 ~res:7 ~key:"k" (Workload.Linearizability.Read (Some "v1"));
    ]
  in
  check "stale read after acked write rejected" false
    (Workload.Linearizability.check h)

let lin_cross_client_inversion_rejected () =
  (* Adversarial: two non-overlapping writes ("a" strictly before "b"),
     then a reader sees "b" while a later reader sees "a" — real-time
     order forbids the state from moving backwards across clients. *)
  let h =
    [
      op ~proc:1 ~inv:0 ~res:1 ~key:"k" (Workload.Linearizability.Write "a");
      op ~proc:2 ~inv:2 ~res:3 ~key:"k" (Workload.Linearizability.Write "b");
      op ~proc:3 ~inv:4 ~res:5 ~key:"k" (Workload.Linearizability.Read (Some "b"));
      op ~proc:4 ~inv:6 ~res:7 ~key:"k" (Workload.Linearizability.Read (Some "a"));
    ]
  in
  check "cross-client inversion rejected" false (Workload.Linearizability.check h)

(* --- end to end: the replicated KV is linearizable -------------------------- *)

let replicated_kv_is_linearizable () =
  let e = Util.engine ~seed:21L () in
  let smr =
    Mu.Smr.create e Util.default_cal Mu.Config.default ~make_app:(fun _ ->
        Apps.Kv_store.smr_app ())
  in
  Mu.Smr.start smr;
  let history = ref [] in
  let record o = history := o :: !history in
  let n_clients = 4 and ops_per_client = 25 in
  let finished = ref 0 in
  for proc = 1 to n_clients do
    Sim.Engine.spawn e ~name:(Printf.sprintf "client%d" proc) (fun () ->
        Mu.Smr.wait_live smr;
        let rng = Sim.Rng.create (Int64.of_int (100 + proc)) in
        for i = 1 to ops_per_client do
          let key = Printf.sprintf "key%d" (Sim.Rng.int rng 3) in
          let req_id = (proc * 1000) + i in
          if Sim.Rng.bool rng then begin
            let value = Printf.sprintf "p%d-%d" proc i in
            let inv = Sim.Engine.now e in
            ignore
              (Mu.Smr.submit smr
                 (Apps.Kv_store.encode_command ~client:proc ~req_id
                    (Apps.Kv_store.Put { key; value })));
            record
              (op ~proc ~inv ~res:(Sim.Engine.now e) ~key
                 (Workload.Linearizability.Write value))
          end
          else begin
            let inv = Sim.Engine.now e in
            let reply =
              Mu.Smr.submit smr
                (Apps.Kv_store.encode_command ~client:proc ~req_id
                   (Apps.Kv_store.Get { key }))
            in
            let observed =
              match Apps.Kv_store.decode_reply reply with
              | Some (Apps.Kv_store.Value v) -> Some v
              | _ -> None
            in
            record
              (op ~proc ~inv ~res:(Sim.Engine.now e) ~key
                 (Workload.Linearizability.Read observed))
          end
        done;
        incr finished;
        if !finished = n_clients then begin
          Mu.Smr.stop smr;
          Sim.Engine.halt e
        end)
  done;
  Sim.Engine.run ~until:120_000_000_000 e;
  check_int "all clients finished" n_clients !finished;
  check "history linearizable" true (Workload.Linearizability.check !history)

let suite =
  [
    ("payload generator", `Quick, payload_size_and_determinism);
    ("zipf skew", `Quick, zipf_skew);
    ("zipf uniform at theta 0", `Quick, zipf_uniform_when_theta_zero);
    ("order flow valid", `Quick, order_flow_generates_valid_commands);
    ("lin: sequential ok", `Quick, lin_sequential_ok);
    ("lin: initial read none", `Quick, lin_initial_read_none);
    ("lin: stale read rejected", `Quick, lin_stale_read_rejected);
    ("lin: concurrent writes either order", `Quick, lin_concurrent_write_either_order);
    ("lin: read during write flexible", `Quick, lin_read_during_write_flexible);
    ("lin: non-atomic history rejected", `Quick, lin_nonatomic_history_rejected);
    ("lin: keys independent", `Quick, lin_keys_independent);
    ("lin: stale read after acked write", `Quick, lin_stale_read_after_acked_write_rejected);
    ("lin: cross-client inversion", `Quick, lin_cross_client_inversion_rejected);
    ("replicated kv is linearizable", `Quick, replicated_kv_is_linearizable);
  ]
