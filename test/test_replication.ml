(* Tests for the replication plane (§4): propose, prepare/accept, leader
   catch-up, follower update, omit-prepare, aborts, and the agreement /
   validity invariants of Appendix A under leader changes. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let with_cluster ?(cfg = Mu.Config.default) f =
  let e = Util.engine () in
  let smr = Util.mu_cluster ~cfg e in
  let result = ref None in
  Sim.Engine.spawn e ~name:"driver" (fun () ->
      result := Some (f e smr);
      Mu.Smr.stop smr;
      Sim.Engine.halt e);
  Sim.Engine.run ~until:120_000_000_000 e;
  match !result with Some r -> r | None -> Alcotest.fail "scenario did not finish"

let on_replica (r : Mu.Replica.t) f =
  let done_ = Sim.Engine.Ivar.create (Mu.Replica.engine r) in
  Sim.Host.spawn r.Mu.Replica.host ~name:"test-op" (fun () ->
      Sim.Engine.Ivar.fill done_ (f ()));
  Sim.Engine.Ivar.read done_

let propose (r : Mu.Replica.t) s =
  on_replica r (fun () ->
      try Ok (Mu.Replication.propose r (Bytes.of_string s))
      with Mu.Replication.Aborted m -> Error m)

let propose_ok r s =
  match propose r s with
  | Ok idx -> idx
  | Error m -> Alcotest.fail ("propose aborted: " ^ m)

let slot_value (r : Mu.Replica.t) idx =
  Option.map
    (fun (s : Mu.Log.slot) -> Bytes.to_string s.Mu.Log.value)
    (Mu.Log.read_slot r.Mu.Replica.log idx)

(* No two replicas disagree on any decided slot (Theorem A.7). *)
let check_agreement smr =
  let replicas = Mu.Smr.replicas smr in
  Array.iter
    (fun (a : Mu.Replica.t) ->
      Array.iter
        (fun (b : Mu.Replica.t) ->
          if a.Mu.Replica.id < b.Mu.Replica.id then
            let bound = min (Mu.Log.fuo a.Mu.Replica.log) (Mu.Log.fuo b.Mu.Replica.log) in
            for i = 0 to bound - 1 do
              match slot_value a i, slot_value b i with
              | Some va, Some vb ->
                Alcotest.(check string)
                  (Printf.sprintf "agreement at slot %d (replicas %d,%d)" i a.Mu.Replica.id
                     b.Mu.Replica.id)
                  va vb
              | _ -> ()
            done)
        replicas)
    replicas

let basic_propose_commits () =
  with_cluster (fun e smr ->
      let leader = Util.leader_of smr e in
      let idx = propose_ok leader "hello" in
      check_int "first value at slot 0" 0 idx;
      check_int "fuo advanced" 1 (Mu.Log.fuo leader.Mu.Replica.log);
      (* The entry is decided: present at a majority. *)
      let copies =
        Array.to_list (Mu.Smr.replicas smr)
        |> List.filter (fun r -> slot_value r 0 = Some "hello")
      in
      check "at a majority" true (List.length copies >= 2))

let proposes_are_ordered () =
  with_cluster (fun e smr ->
      let leader = Util.leader_of smr e in
      for i = 0 to 9 do
        check_int "sequential slots" i (propose_ok leader (Printf.sprintf "v%d" i))
      done;
      for i = 0 to 9 do
        Alcotest.(check (option string))
          "content" (Some (Printf.sprintf "v%d" i)) (slot_value leader i)
      done)

let propose_replication_latency () =
  with_cluster (fun e smr ->
      let leader = Util.leader_of smr e in
      ignore (propose_ok leader "warm");
      let t0 = Sim.Engine.now e in
      ignore (propose_ok leader "timed");
      let dt = Sim.Engine.now e - t0 in
      (* The paper's headline: ~1.3 us for a small request (Fig. 4). *)
      check (Printf.sprintf "fast path ~1.3us (got %dns)" dt) true (dt > 900 && dt < 2_500))

let omit_prepare_engages () =
  with_cluster (fun e smr ->
      let leader = Util.leader_of smr e in
      check "prepare required at first" false leader.Mu.Replica.skip_prepare;
      ignore (propose_ok leader "a");
      check "omit-prepare active after clean prepare" true leader.Mu.Replica.skip_prepare)

let omit_prepare_disabled_by_config () =
  let cfg = { Mu.Config.default with Mu.Config.disable_omit_prepare = true } in
  with_cluster ~cfg (fun e smr ->
      let leader = Util.leader_of smr e in
      ignore (propose_ok leader "a");
      check "never skips" false leader.Mu.Replica.skip_prepare;
      ignore (propose_ok leader "b");
      Alcotest.(check (option string)) "still correct" (Some "b") (slot_value leader 1))

let followers_replicate_silently () =
  with_cluster (fun e smr ->
      let leader = Util.leader_of smr e in
      ignore (propose_ok leader "x");
      ignore (propose_ok leader "y");
      (* Followers hold the data without having sent anything: their logs
         were written one-sidedly. *)
      Array.iter
        (fun (r : Mu.Replica.t) ->
          if r.Mu.Replica.id <> leader.Mu.Replica.id then begin
            Alcotest.(check (option string)) "slot0 at follower" (Some "x") (slot_value r 0);
            Alcotest.(check (option string)) "slot1 at follower" (Some "y") (slot_value r 1)
          end)
        (Mu.Smr.replicas smr);
      ignore e)

let commit_piggybacking () =
  with_cluster (fun e smr ->
      let leader = Util.leader_of smr e in
      ignore (propose_ok leader "first");
      Sim.Engine.sleep e 1_000_000;
      let r1 = Mu.Smr.replica smr 1 in
      (* Followers cannot know "first" is committed until the next entry
         exists (§4.2), so their FUO lags at 0. *)
      check_int "follower fuo lags" 0 (Mu.Log.fuo r1.Mu.Replica.log);
      ignore (propose_ok leader "second");
      Util.wait_for (fun () -> Mu.Log.fuo r1.Mu.Replica.log >= 1) e;
      check "follower committed first entry" true (Mu.Log.fuo r1.Mu.Replica.log >= 1))

let new_leader_catches_up () =
  with_cluster (fun e smr ->
      let r0 = Util.leader_of smr e in
      for i = 0 to 4 do
        ignore (propose_ok r0 (Printf.sprintf "v%d" i))
      done;
      Sim.Host.pause r0.Mu.Replica.host;
      let r1 = Mu.Smr.replica smr 1 in
      Util.wait_for (fun () -> Mu.Replica.is_leader r1) e;
      (* r1's log has all entries but its FUO lags (commit piggybacking);
         becoming leader brings it fully up to date (Listing 5). *)
      let idx = propose_ok r1 "from-r1" in
      check_int "appends after the old leader's entries" 5 idx;
      for i = 0 to 4 do
        Alcotest.(check (option string))
          "old entries preserved"
          (Some (Printf.sprintf "v%d" i))
          (slot_value r1 i)
      done;
      Sim.Host.resume r0.Mu.Replica.host;
      check_agreement smr)

let update_followers_on_leader_change () =
  with_cluster (fun e smr ->
      let r0 = Util.leader_of smr e in
      for i = 0 to 4 do
        ignore (propose_ok r0 (Printf.sprintf "v%d" i))
      done;
      Sim.Host.pause r0.Mu.Replica.host;
      let r1 = Mu.Smr.replica smr 1 and r2 = Mu.Smr.replica smr 2 in
      Util.wait_for (fun () -> Mu.Replica.is_leader r1) e;
      ignore (propose_ok r1 "new");
      (* Listing 6: r2 was brought up to date, including its FUO (the last
         entry itself remains pending until its successor exists — commit
         piggybacking). *)
      check "r2 fuo updated" true (Mu.Log.fuo r2.Mu.Replica.log >= 4);
      Alcotest.(check (option string)) "r2 has the data" (Some "v4") (slot_value r2 4);
      Sim.Host.resume r0.Mu.Replica.host;
      check_agreement smr)

let deposed_leader_aborts () =
  with_cluster (fun e smr ->
      let r0 = Util.leader_of smr e in
      ignore (propose_ok r0 "a");
      (* r1 grabs permissions behind r0's back (as a rising leader would). *)
      let r1 = Mu.Smr.replica smr 1 in
      let gen = on_replica r1 (fun () -> Mu.Permissions.request_permissions r1) in
      Util.wait_for (fun () -> List.length (Mu.Permissions.acked r1 ~gen) >= 3) e;
      (* r0's next propose must fail (lost write permission), not commit. *)
      (match propose r0 "b" with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "deposed leader committed without permission");
      check "needs new followers after abort" true r0.Mu.Replica.need_new_followers;
      check_agreement smr)

let deposed_leader_recovers_by_reacquiring () =
  with_cluster (fun e smr ->
      let r0 = Util.leader_of smr e in
      ignore (propose_ok r0 "a");
      let r1 = Mu.Smr.replica smr 1 in
      let gen = on_replica r1 (fun () -> Mu.Permissions.request_permissions r1) in
      Util.wait_for (fun () -> List.length (Mu.Permissions.acked r1 ~gen) >= 3) e;
      (match propose r0 "b" with Error _ -> () | Ok _ -> Alcotest.fail "must abort");
      (* Still the lowest id: the next propose re-requests permission and
         succeeds (Listing 2 line 7). *)
      let idx = propose_ok r0 "b-retry" in
      check "committed on retry" true (idx >= 1);
      check_agreement smr)

let competing_leaders_never_disagree () =
  with_cluster (fun e smr ->
      (* Interleave proposes from two would-be leaders many times. Aborts
         are expected; disagreement is not. *)
      let r0 = Mu.Smr.replica smr 0 and r1 = Mu.Smr.replica smr 1 in
      Util.wait_for (fun () -> Mu.Replica.is_leader r0) e;
      let committed = ref 0 in
      for i = 0 to 19 do
        let r = if i mod 2 = 0 then r0 else r1 in
        (match propose r (Printf.sprintf "c%d" i) with
        | Ok _ -> incr committed
        | Error _ -> ());
        if i mod 5 = 4 then Sim.Engine.sleep e 300_000
      done;
      check "some proposals committed" true (!committed > 0);
      check_agreement smr)

let validity_only_proposed_values () =
  with_cluster (fun e smr ->
      let leader = Util.leader_of smr e in
      let proposed = List.init 8 (fun i -> Printf.sprintf "val%d" i) in
      List.iter (fun v -> ignore (propose_ok leader v)) proposed;
      (* Every decided value was proposed (Theorem A.4); noops from
         establishment may also appear but we issued none here. *)
      Array.iter
        (fun (r : Mu.Replica.t) ->
          for i = 0 to Mu.Log.fuo r.Mu.Replica.log - 1 do
            match slot_value r i with
            | Some v -> check ("decided value was proposed: " ^ v) true (List.mem v proposed)
            | None -> ()
          done)
        (Mu.Smr.replicas smr);
      ignore e)

let no_holes_lemma () =
  with_cluster (fun e smr ->
      let r0 = Util.leader_of smr e in
      for i = 0 to 9 do
        ignore (propose_ok r0 (Printf.sprintf "h%d" i))
      done;
      Sim.Host.pause r0.Mu.Replica.host;
      let r1 = Mu.Smr.replica smr 1 in
      Util.wait_for (fun () -> Mu.Replica.is_leader r1) e;
      ignore (propose_ok r1 "after");
      Sim.Host.resume r0.Mu.Replica.host;
      (* Lemma A.11: if slot i is populated, so is every slot below it. *)
      Array.iter
        (fun (r : Mu.Replica.t) ->
          let top = ref (-1) in
          for i = 0 to 15 do
            if slot_value r i <> None then top := i
          done;
          for i = 0 to !top do
            check
              (Printf.sprintf "no hole at %d (replica %d)" i r.Mu.Replica.id)
              true
              (slot_value r i <> None)
          done)
        (Mu.Smr.replicas smr))

let minority_follower_crash_tolerated () =
  with_cluster (fun e smr ->
      let leader = Util.leader_of smr e in
      ignore (propose_ok leader "before");
      let r2 = Mu.Smr.replica smr 2 in
      Sim.Host.kill_host r2.Mu.Replica.host;
      (* The first propose may abort when the write to the dead follower
         times out; retries must then succeed with the remaining
         majority. *)
      let rec retry n =
        if n = 0 then Alcotest.fail "never recovered with a majority"
        else
          match propose leader (Printf.sprintf "retry%d" n) with
          | Ok _ -> ()
          | Error _ -> retry (n - 1)
      in
      retry 5;
      check "leader still leads" true (Mu.Replica.is_leader leader);
      check_agreement smr)

let majority_loss_blocks_commit () =
  with_cluster (fun e smr ->
      let leader = Util.leader_of smr e in
      ignore (propose_ok leader "before");
      Sim.Host.kill_host (Mu.Smr.replica smr 1).Mu.Replica.host;
      Sim.Host.kill_host (Mu.Smr.replica smr 2).Mu.Replica.host;
      (* Without a majority nothing can commit: every propose aborts. *)
      let any_committed = ref false in
      for i = 0 to 2 do
        match propose leader (Printf.sprintf "m%d" i) with
        | Ok _ -> any_committed := true
        | Error _ -> ()
      done;
      check "no commit without a majority" false !any_committed;
      ignore e)

let log_backpressure_waits_for_recycling () =
  let cfg =
    { Mu.Config.default with Mu.Config.log_slots = 192; recycle_slack = 64;
      recycle_interval = 300_000 }
  in
  with_cluster ~cfg (fun e smr ->
      let leader = Util.leader_of smr e in
      (* Proposing far more entries than the log holds only works if
         recycling keeps freeing slots. *)
      for i = 0 to 599 do
        ignore (propose_ok leader (Printf.sprintf "r%d" i))
      done;
      check_int "all committed" 600 (Mu.Log.fuo leader.Mu.Replica.log);
      check "recycling advanced" true (leader.Mu.Replica.zeroed_up_to > 0);
      ignore e)

let grow_confirmed_followers () =
  with_cluster (fun e smr ->
      (* r1 is paused while r0 acquires leadership: r0's confirmed set is
         just {2}. When r1 comes back, its permission manager acks the
         still-pending request and the next propose admits it (§4.2
         "Growing confirmed followers"), bringing it up to date. *)
      let r0 = Mu.Smr.replica smr 0 and r1 = Mu.Smr.replica smr 1 in
      Sim.Host.pause r1.Mu.Replica.host;
      Util.wait_for (fun () -> Mu.Replica.is_leader r0) e;
      ignore (propose_ok r0 "a");
      ignore (propose_ok r0 "b");
      Alcotest.(check (list int)) "minority set" [ 2 ] r0.Mu.Replica.confirmed;
      Sim.Host.resume r1.Mu.Replica.host;
      (* Give r1's permission manager time to process the pending request. *)
      Sim.Engine.sleep e 2_000_000;
      ignore (propose_ok r0 "c");
      Alcotest.(check (list int)) "straggler admitted" [ 1; 2 ] r0.Mu.Replica.confirmed;
      (* And it was brought up to date (Listing 6 applied to the grown set). *)
      check "r1 caught up" true (Mu.Log.fuo r1.Mu.Replica.log >= 2);
      Alcotest.(check (option string)) "r1 has old entries" (Some "a") (slot_value r1 0);
      ignore (propose_ok r0 "d");
      Alcotest.(check (option string)) "r1 receives new entries" (Some "d") (slot_value r1 3);
      check_agreement smr)

let five_replica_cluster () =
  let cfg = { Mu.Config.default with Mu.Config.n = 5 } in
  with_cluster ~cfg (fun e smr ->
      let r0 = Util.leader_of smr e in
      for i = 0 to 4 do
        ignore (propose_ok r0 (Printf.sprintf "n5-%d" i))
      done;
      (* Two failures are a tolerable minority with n = 5. *)
      Sim.Host.kill_host (Mu.Smr.replica smr 3).Mu.Replica.host;
      Sim.Host.kill_host (Mu.Smr.replica smr 4).Mu.Replica.host;
      let rec retry n =
        if n = 0 then Alcotest.fail "no progress with 3 of 5 alive"
        else
          match propose r0 "after-two-failures" with Ok _ -> () | Error _ -> retry (n - 1)
      in
      retry 6;
      check_agreement smr;
      (* A third failure kills the majority: no more commits. *)
      Sim.Host.kill_host (Mu.Smr.replica smr 2).Mu.Replica.host;
      let any = ref false in
      for _ = 0 to 2 do
        match propose r0 "no-majority" with Ok _ -> any := true | Error _ -> ()
      done;
      check "no commit with 2 of 5" false !any)

let partition_heals () =
  with_cluster (fun e smr ->
      let r0 = Util.leader_of smr e in
      ignore (propose_ok r0 "pre");
      (* Cut r0 off from both peers on the replication plane: its writes
         time out and it aborts; reconnection (permission re-acquisition)
         heals it. *)
      List.iter
        (fun (p : Mu.Replica.peer) -> Rdma.Qp.set_link_up p.Mu.Replica.repl_qp false)
        r0.Mu.Replica.peers;
      (match propose r0 "partitioned" with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "committed across a dead link");
      List.iter
        (fun (p : Mu.Replica.peer) -> Rdma.Qp.set_link_up p.Mu.Replica.repl_qp true)
        r0.Mu.Replica.peers;
      let rec retry n =
        if n = 0 then Alcotest.fail "did not heal"
        else match propose r0 "healed" with Ok _ -> () | Error _ -> retry (n - 1)
      in
      retry 5;
      check_agreement smr)

(* --- recycler under revocation (§5.3 fault handling) ------------------------- *)

(* Establish replica 0 as a leader with [entries] committed and every
   replica's published log head at [entries]. *)
let established_leader rs entries =
  let leader = rs.(0) in
  leader.Mu.Replica.role <- Mu.Replica.Leader;
  leader.Mu.Replica.need_new_followers <- false;
  leader.Mu.Replica.confirmed <-
    Array.to_list rs |> List.filter_map (fun (r : Mu.Replica.t) ->
        if r.Mu.Replica.id = 0 then None else Some r.Mu.Replica.id);
  Array.iter
    (fun (r : Mu.Replica.t) ->
      for i = 0 to entries - 1 do
        Test_replayer.fill_slot r i (string_of_int i)
      done;
      Mu.Log.set_fuo r.Mu.Replica.log entries;
      r.Mu.Replica.applied <- entries;
      Rdma.Mr.set_i64 r.Mu.Replica.bg_mr ~off:Mu.Replica.bg_log_head_offset
        (Int64.of_int entries))
    rs;
  leader

let run_recycle e (leader : Mu.Replica.t) =
  let done_ = ref false in
  Sim.Host.spawn leader.Mu.Replica.host ~name:"recycle" (fun () ->
      Mu.Recycler.recycle_once leader;
      done_ := true);
  Sim.Engine.run ~until:(Sim.Engine.now e + 100_000_000) e;
  check "recycle round finished" true !done_

(* Regression: a failed log-head read on a *confirmed* follower (here its
   misc-plane permissions were revoked) means the leader's view may be
   stale; the round must be skipped — watermark untouched, failure counted
   — not crash the leader or zero entries the follower still needs. *)
let recycler_skips_on_revoked_head_read () =
  let e, rs = Test_replayer.bare_cluster () in
  let leader = established_leader rs 6 in
  let f1 = rs.(1) in
  Rdma.Qp.set_access (Mu.Replica.peer f1 0).Mu.Replica.misc_qp Rdma.Verbs.access_none;
  run_recycle e leader;
  check_int "round skipped, watermark held" 0 leader.Mu.Replica.zeroed_up_to;
  check_int "skip counted" 1 leader.Mu.Replica.metrics.Mu.Metrics.recycle_skips;
  check "read failure counted" true
    (leader.Mu.Replica.metrics.Mu.Metrics.recycler_errors >= 1);
  check "nothing zeroed at the revoked follower" true
    (Mu.Log.read_slot f1.Mu.Replica.log 0 <> None);
  (* Permission restored and the NAK-broken QP pair repaired (what the
     permission plane does after a re-grant): the next round recycles the
     full prefix. *)
  Rdma.Qp.set_access (Mu.Replica.peer f1 0).Mu.Replica.misc_qp Rdma.Verbs.access_rw;
  Rdma.Qp.repair (Mu.Replica.peer leader 1).Mu.Replica.misc_qp;
  Rdma.Qp.repair (Mu.Replica.peer f1 0).Mu.Replica.misc_qp;
  run_recycle e leader;
  check_int "recovered round advances" 6 leader.Mu.Replica.zeroed_up_to

(* Regression: a leader that lost the write permission mid-demotion must
   not post zeroing writes (they would only manufacture error completions
   for the propose path); the watermark stays put until it is leader with
   permission again. *)
let recycler_demote_safety_holds_watermark () =
  let e, rs = Test_replayer.bare_cluster () in
  let leader = established_leader rs 6 in
  leader.Mu.Replica.perm_holder <- Some 1;
  run_recycle e leader;
  check_int "watermark held while deposed" 0 leader.Mu.Replica.zeroed_up_to;
  check_int "cut-short round counted as skip" 1
    leader.Mu.Replica.metrics.Mu.Metrics.recycle_skips;
  check_int "no zeroing writes in flight" 0 leader.Mu.Replica.recycler_outstanding;
  check "followers' copies intact" true (Mu.Log.read_slot rs.(1).Mu.Replica.log 0 <> None);
  (* Back in charge: recycling resumes from the old watermark. *)
  leader.Mu.Replica.perm_holder <- Some 0;
  run_recycle e leader;
  check_int "resumes after regaining permission" 6 leader.Mu.Replica.zeroed_up_to;
  check "zeroing writes posted" true (leader.Mu.Replica.recycler_outstanding > 0)

let suite =
  [
    ("basic propose commits", `Quick, basic_propose_commits);
    ("proposes are ordered", `Quick, proposes_are_ordered);
    ("replication latency ~1.3us", `Quick, propose_replication_latency);
    ("omit-prepare engages", `Quick, omit_prepare_engages);
    ("omit-prepare disabled by config", `Quick, omit_prepare_disabled_by_config);
    ("followers replicate silently", `Quick, followers_replicate_silently);
    ("commit piggybacking", `Quick, commit_piggybacking);
    ("new leader catches up", `Quick, new_leader_catches_up);
    ("update followers on leader change", `Quick, update_followers_on_leader_change);
    ("deposed leader aborts", `Quick, deposed_leader_aborts);
    ("deposed leader recovers by reacquiring", `Quick, deposed_leader_recovers_by_reacquiring);
    ("competing leaders never disagree", `Quick, competing_leaders_never_disagree);
    ("validity: only proposed values decided", `Quick, validity_only_proposed_values);
    ("no holes (Lemma A.11)", `Quick, no_holes_lemma);
    ("minority follower crash tolerated", `Quick, minority_follower_crash_tolerated);
    ("majority loss blocks commit", `Quick, majority_loss_blocks_commit);
    ("log backpressure waits for recycling", `Quick, log_backpressure_waits_for_recycling);
    ("grow confirmed followers", `Quick, grow_confirmed_followers);
    ("five replica cluster", `Quick, five_replica_cluster);
    ("partition heals", `Quick, partition_heals);
    ("recycler skips on revoked head read", `Quick, recycler_skips_on_revoked_head_read);
    ("recycler demote-safety holds watermark", `Quick, recycler_demote_safety_holds_watermark);
  ]
