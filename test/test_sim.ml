(* Tests for the simulation substrate: PRNG, distributions, statistics,
   event heap, engine/fibers, hosts. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- Rng ---------------------------------------------------------------- *)

let rng_deterministic () =
  let a = Sim.Rng.create 42L and b = Sim.Rng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Sim.Rng.int64 a) (Sim.Rng.int64 b)
  done

let rng_seed_sensitivity () =
  let a = Sim.Rng.create 1L and b = Sim.Rng.create 2L in
  check "different seeds differ" true (Sim.Rng.int64 a <> Sim.Rng.int64 b)

let rng_float_range () =
  let r = Sim.Rng.create 3L in
  for _ = 1 to 10_000 do
    let f = Sim.Rng.float r in
    check "in [0,1)" true (f >= 0.0 && f < 1.0)
  done

let rng_int_range () =
  let r = Sim.Rng.create 4L in
  for _ = 1 to 10_000 do
    let v = Sim.Rng.int r 17 in
    check "in range" true (v >= 0 && v < 17)
  done

let rng_int_rejects_bad_bound () =
  let r = Sim.Rng.create 5L in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Sim.Rng.int r 0))

let rng_split_independent () =
  (* Draws from the parent after the split must not perturb the child. *)
  let parent = Sim.Rng.create 6L in
  let child = Sim.Rng.split parent in
  let c1 = Sim.Rng.int64 child in
  let parent2 = Sim.Rng.create 6L in
  let child2 = Sim.Rng.split parent2 in
  for _ = 1 to 10 do
    ignore (Sim.Rng.int64 parent2)
  done;
  Alcotest.(check int64) "child stream stable" c1 (Sim.Rng.int64 child2)

let rng_gaussian_moments () =
  let r = Sim.Rng.create 7L in
  let s = Sim.Stats.Summary.create () in
  for _ = 1 to 50_000 do
    Sim.Stats.Summary.add s (Sim.Rng.gaussian r)
  done;
  check "mean near 0" true (abs_float (Sim.Stats.Summary.mean s) < 0.02);
  check "std near 1" true (abs_float (Sim.Stats.Summary.stddev s -. 1.0) < 0.02)

let rng_exponential_mean () =
  let r = Sim.Rng.create 8L in
  let s = Sim.Stats.Summary.create () in
  for _ = 1 to 50_000 do
    Sim.Stats.Summary.add s (Sim.Rng.exponential r ~mean:250.0)
  done;
  check "mean near 250" true (abs_float (Sim.Stats.Summary.mean s -. 250.0) < 10.0)

(* --- Distribution ------------------------------------------------------- *)

let dist_sampling_matches_mean () =
  let r = Sim.Rng.create 9L in
  let cases =
    [
      Sim.Distribution.Constant 100.0;
      Sim.Distribution.Uniform { lo = 50.0; hi = 150.0 };
      Sim.Distribution.Normal { mean = 100.0; std = 10.0 };
      Sim.Distribution.Exponential { mean = 100.0 };
      Sim.Distribution.Lognormal { median = 90.0; sigma = 0.4 };
      Sim.Distribution.Shifted { base = 40.0; jitter = Constant 60.0 };
      Sim.Distribution.Mixture [ (1.0, Constant 50.0); (1.0, Constant 150.0) ];
    ]
  in
  List.iter
    (fun d ->
      let s = Sim.Stats.Summary.create () in
      for _ = 1 to 50_000 do
        Sim.Stats.Summary.add s (Sim.Distribution.sample d r)
      done;
      let expect = Sim.Distribution.mean d in
      let got = Sim.Stats.Summary.mean s in
      check
        (Fmt.str "mean of %a: %.1f vs %.1f" Sim.Distribution.pp d got expect)
        true
        (abs_float (got -. expect) /. expect < 0.05))
    cases

let dist_nonnegative () =
  let r = Sim.Rng.create 10L in
  let d = Sim.Distribution.Normal { mean = 10.0; std = 100.0 } in
  for _ = 1 to 10_000 do
    check "clamped at 0" true (Sim.Distribution.sample d r >= 0.0)
  done

let dist_pareto_minimum () =
  let r = Sim.Rng.create 11L in
  let d = Sim.Distribution.Pareto { scale = 70.0; shape = 2.5 } in
  for _ = 1 to 10_000 do
    check "above scale" true (Sim.Distribution.sample d r >= 70.0)
  done

let dist_sample_ns_rounds () =
  let r = Sim.Rng.create 12L in
  check_int "constant rounds" 100
    (Sim.Distribution.sample_ns (Sim.Distribution.Constant 100.4) r)

(* --- Stats --------------------------------------------------------------- *)

let stats_summary () =
  let s = Sim.Stats.Summary.create () in
  List.iter (fun x -> Sim.Stats.Summary.add s x) [ 1.0; 2.0; 3.0; 4.0 ];
  check_int "count" 4 (Sim.Stats.Summary.count s);
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Sim.Stats.Summary.mean s);
  Alcotest.(check (float 1e-4)) "stddev" 1.2909944 (Sim.Stats.Summary.stddev s);
  Alcotest.(check (float 0.0)) "min" 1.0 (Sim.Stats.Summary.min s);
  Alcotest.(check (float 0.0)) "max" 4.0 (Sim.Stats.Summary.max s)

let stats_percentiles () =
  let s = Sim.Stats.Samples.create () in
  for i = 100 downto 1 do
    Sim.Stats.Samples.add s i
  done;
  check_int "median" 50 (Sim.Stats.Samples.median s);
  check_int "p1" 1 (Sim.Stats.Samples.percentile s 1.0);
  check_int "p99" 99 (Sim.Stats.Samples.percentile s 99.0);
  check_int "p100" 100 (Sim.Stats.Samples.percentile s 100.0);
  check_int "min" 1 (Sim.Stats.Samples.min s);
  check_int "max" 100 (Sim.Stats.Samples.max s);
  Alcotest.(check (float 1e-9)) "mean" 50.5 (Sim.Stats.Samples.mean s)

let stats_percentile_cache_invalidation () =
  let s = Sim.Stats.Samples.create () in
  Sim.Stats.Samples.add s 10;
  check_int "median of one" 10 (Sim.Stats.Samples.median s);
  Sim.Stats.Samples.add s 2;
  Sim.Stats.Samples.add s 1;
  check_int "median after more adds" 2 (Sim.Stats.Samples.median s)

let stats_empty_percentile_raises () =
  let s = Sim.Stats.Samples.create () in
  check "raises" true
    (try
       ignore (Sim.Stats.Samples.median s);
       false
     with Invalid_argument _ -> true)

let stats_option_empty () =
  let s = Sim.Stats.Samples.create () in
  Alcotest.(check (option int)) "percentile_opt" None (Sim.Stats.Samples.percentile_opt s 50.0);
  Alcotest.(check (option (float 0.0))) "quantile_opt" None (Sim.Stats.Samples.quantile_opt s 0.5);
  Alcotest.(check (option int)) "median_opt" None (Sim.Stats.Samples.median_opt s);
  Alcotest.(check (option int)) "min_opt" None (Sim.Stats.Samples.min_opt s);
  Alcotest.(check (option int)) "max_opt" None (Sim.Stats.Samples.max_opt s);
  Alcotest.(check (option (float 0.0))) "mean_opt" None (Sim.Stats.Samples.mean_opt s)

let stats_option_single_sample () =
  let s = Sim.Stats.Samples.create () in
  Sim.Stats.Samples.add s 7;
  (* A single sample answers every quantile with itself — including the
     endpoints that previously tripped the interpolation index. *)
  List.iter
    (fun q ->
      Alcotest.(check (option (float 0.0)))
        (Printf.sprintf "q=%g" q) (Some 7.0) (Sim.Stats.Samples.quantile_opt s q))
    [ 0.0; 0.25; 0.5; 0.99; 1.0 ];
  Alcotest.(check (option int)) "p0" (Some 7) (Sim.Stats.Samples.percentile_opt s 0.0);
  Alcotest.(check (option int)) "p100" (Some 7) (Sim.Stats.Samples.percentile_opt s 100.0)

let stats_quantile_interpolation () =
  let s = Sim.Stats.Samples.create () in
  List.iter (fun x -> Sim.Stats.Samples.add s x) [ 10; 20; 30; 40 ];
  Alcotest.(check (option (float 1e-9))) "q=0 is min" (Some 10.0)
    (Sim.Stats.Samples.quantile_opt s 0.0);
  Alcotest.(check (option (float 1e-9))) "q=1 is max" (Some 40.0)
    (Sim.Stats.Samples.quantile_opt s 1.0);
  (* R type 7: h = q*(n-1); q=0.5 -> h=1.5 -> 20 + 0.5*(30-20) = 25. *)
  Alcotest.(check (option (float 1e-9))) "q=0.5 interpolates" (Some 25.0)
    (Sim.Stats.Samples.quantile_opt s 0.5);
  Alcotest.(check (option (float 1e-9))) "q=1/3 lands on sample" (Some 20.0)
    (Sim.Stats.Samples.quantile_opt s (1.0 /. 3.0));
  Alcotest.(check (option (float 0.0))) "q out of range" None
    (Sim.Stats.Samples.quantile_opt s 1.5);
  Alcotest.(check (option (float 0.0))) "q NaN" None
    (Sim.Stats.Samples.quantile_opt s Float.nan);
  Alcotest.(check (option int)) "p out of range" None
    (Sim.Stats.Samples.percentile_opt s 101.0)

let stats_histogram () =
  let h = Sim.Stats.Histogram.create ~bucket_width:10 in
  List.iter (fun x -> Sim.Stats.Histogram.add h x) [ 1; 5; 9; 10; 23; 25 ];
  check_int "total" 6 (Sim.Stats.Histogram.total h);
  Alcotest.(check (list (pair int int)))
    "buckets"
    [ (0, 3); (10, 1); (20, 2) ]
    (Sim.Stats.Histogram.buckets h)

(* --- Heap ---------------------------------------------------------------- *)

let heap_ordering () =
  let h = Sim.Heap.create () in
  let xs = [ (5, 'a'); (1, 'b'); (3, 'c'); (1, 'd'); (4, 'e') ] in
  List.iteri (fun seq (k, v) -> Sim.Heap.push h ~key:k ~seq v) xs;
  let popped = List.init 5 (fun _ -> Option.get (Sim.Heap.pop h)) in
  Alcotest.(check (list char)) "sorted by key then seq" [ 'b'; 'd'; 'c'; 'e'; 'a' ] popped;
  check "empty after" true (Sim.Heap.is_empty h)

let heap_fifo_within_key () =
  let h = Sim.Heap.create () in
  for i = 0 to 99 do
    Sim.Heap.push h ~key:7 ~seq:i i
  done;
  for i = 0 to 99 do
    check_int "fifo" i (Option.get (Sim.Heap.pop h))
  done

let heap_interleaved () =
  let h = Sim.Heap.create () in
  let r = Sim.Rng.create 13L in
  let reference = ref [] in
  let seq = ref 0 in
  for _ = 1 to 1000 do
    if Sim.Rng.float r < 0.6 || Sim.Heap.is_empty h then begin
      let k = Sim.Rng.int r 50 in
      incr seq;
      Sim.Heap.push h ~key:k ~seq:!seq (k, !seq);
      reference := (k, !seq) :: !reference
    end
    else begin
      let k, s = Option.get (Sim.Heap.pop h) in
      (* must be the minimum of the reference multiset *)
      let sorted = List.sort compare !reference in
      Alcotest.(check (pair int int)) "pop is minimum" (List.hd sorted) (k, s);
      reference := List.filter (fun x -> x <> (k, s)) !reference
    end
  done

(* --- Wheel ---------------------------------------------------------------- *)

let wheel_ordering () =
  let w = Sim.Wheel.create () in
  let xs = [ (5, 'a'); (1, 'b'); (3, 'c'); (1, 'd'); (4, 'e') ] in
  List.iteri (fun seq (k, v) -> Sim.Wheel.push w ~key:k ~seq v) xs;
  let popped = List.init 5 (fun _ -> Option.get (Sim.Wheel.pop w)) in
  Alcotest.(check (list char)) "sorted by key then seq" [ 'b'; 'd'; 'c'; 'e'; 'a' ] popped;
  check "empty after" true (Sim.Wheel.is_empty w)

let wheel_fifo_within_key () =
  let w = Sim.Wheel.create () in
  for i = 0 to 99 do
    Sim.Wheel.push w ~key:7 ~seq:i i
  done;
  for i = 0 to 99 do
    check_int "fifo" i (Option.get (Sim.Wheel.pop w))
  done

(* Random interleaving across key scales that exercise every internal
   region: level-0 slots, upper levels, the far-future overflow heap
   (keys beyond the 2^32 horizon) and the "past" heap (keys below a
   clock the wheel already advanced past). *)
let wheel_interleaved () =
  let w = Sim.Wheel.create () in
  let r = Sim.Rng.create 13L in
  let reference = ref [] in
  let seq = ref 0 in
  for _ = 1 to 1000 do
    if Sim.Rng.float r < 0.6 || Sim.Wheel.is_empty w then begin
      let k =
        match Sim.Rng.int r 4 with
        | 0 -> Sim.Rng.int r 50
        | 1 -> Sim.Rng.int r 100_000
        | 2 -> Sim.Rng.int r 50_000_000
        | _ -> (1 lsl 33) + Sim.Rng.int r 1_000_000
      in
      incr seq;
      Sim.Wheel.push w ~key:k ~seq:!seq (k, !seq);
      reference := (k, !seq) :: !reference
    end
    else begin
      let k, s = Option.get (Sim.Wheel.pop w) in
      let sorted = List.sort compare !reference in
      Alcotest.(check (pair int int)) "pop is minimum" (List.hd sorted) (k, s);
      reference := List.filter (fun x -> x <> (k, s)) !reference
    end
  done;
  check_int "length agrees" (List.length !reference) (Sim.Wheel.length w)

(* Regression (PR 8): a popped payload must be unreachable from the queue
   the moment it leaves. The original heap moved the last entry to the
   root but never cleared the vacated slot, so popped event closures —
   and everything they capture — stayed reachable until overwritten. *)
let heap_pop_releases_payload () =
  let h = Sim.Heap.create () in
  let w = Weak.create 1 in
  let () =
    let v = ref 42 in
    Weak.set w 0 (Some v);
    Sim.Heap.push h ~key:1 ~seq:1 v;
    match Sim.Heap.pop h with
    | Some r -> check_int "payload intact" 42 !r
    | None -> Alcotest.fail "pop returned None"
  in
  Gc.full_major ();
  let released = Weak.check w 0 in
  (* keep the heap (and its backing arrays) alive across the check, or
     the whole structure could be collected and mask a stale slot *)
  check_int "heap empty" 0 (Sim.Heap.length h);
  check "heap released popped payload" false released

let wheel_pop_releases_payload () =
  (* One near key (wheel bucket) and one far key (overflow heap): both
     storage regions must clear their slots. *)
  let t = Sim.Wheel.create () in
  let w = Weak.create 2 in
  let () =
    let a = ref 1 and b = ref 2 in
    Weak.set w 0 (Some a);
    Weak.set w 1 (Some b);
    Sim.Wheel.push t ~key:5 ~seq:1 a;
    Sim.Wheel.push t ~key:(1 lsl 40) ~seq:2 b;
    check_int "near first" 1 !(Sim.Wheel.pop_exn t);
    check_int "far second" 2 !(Sim.Wheel.pop_exn t)
  in
  Gc.full_major ();
  let near = Weak.check w 0 and far = Weak.check w 1 in
  check_int "wheel empty" 0 (Sim.Wheel.length t);
  check "wheel released near payload" false near;
  check "wheel released far payload" false far

(* --- Engine --------------------------------------------------------------- *)

let engine_time_advances () =
  let trace = ref [] in
  let _e =
    Util.run_scenario (fun e ->
        Sim.Engine.schedule e ~at:50 (fun () -> trace := (50, Sim.Engine.now e) :: !trace);
        Sim.Engine.schedule e ~at:10 (fun () -> trace := (10, Sim.Engine.now e) :: !trace);
        Sim.Engine.schedule e ~at:30 (fun () -> trace := (30, Sim.Engine.now e) :: !trace))
  in
  Alcotest.(check (list (pair int int)))
    "events in time order at right times"
    [ (10, 10); (30, 30); (50, 50) ]
    (List.rev !trace)

let engine_same_time_fifo () =
  let trace = ref [] in
  let _e =
    Util.run_scenario (fun e ->
        for i = 1 to 5 do
          Sim.Engine.schedule e ~at:100 (fun () -> trace := i :: !trace)
        done)
  in
  Alcotest.(check (list int)) "FIFO at same instant" [ 1; 2; 3; 4; 5 ] (List.rev !trace)

let engine_until_limit () =
  let ran = ref false in
  let e = Util.engine () in
  Sim.Engine.schedule e ~at:1_000 (fun () -> ran := true);
  Sim.Engine.run ~until:500 e;
  check "not yet run" false !ran;
  check_int "clock at limit" 500 (Sim.Engine.now e);
  Sim.Engine.run e;
  check "runs after" true !ran

(* Regression (PR 8): [run ~until] must advance the clock to the limit on
   normal return even when the queue drains early — the engine has
   observed all of virtual time up to the limit. Previously [now] was
   only advanced when a pending event lay beyond the limit, so
   back-to-back [run ~until] calls observed inconsistent clocks. *)
let engine_until_empty_queue () =
  let e = Util.engine () in
  Sim.Engine.schedule e ~at:100 (fun () -> ());
  Sim.Engine.run ~until:1_000 e;
  check_int "clock at limit after queue drained" 1_000 (Sim.Engine.now e);
  Sim.Engine.run ~until:2_000 e;
  check_int "clock at limit with empty queue" 2_000 (Sim.Engine.now e)

let engine_until_halt_keeps_clock () =
  let e = Util.engine () in
  Sim.Engine.schedule e ~at:100 (fun () -> Sim.Engine.halt e);
  Sim.Engine.run ~until:1_000 e;
  check_int "halt pins clock at the halting event" 100 (Sim.Engine.now e)

(* Regression (PR 8): the provenance span-stack table must not retain an
   entry per fiber that ever opened a span; entries are dropped when the
   fiber's stack empties, keeping the table bounded by fibers with an
   open span rather than growing for the lifetime of the run. *)
let engine_span_stacks_bounded () =
  let e = Util.engine () in
  Sim.Probe.set_sink (Sim.Engine.probe e) (fun _ -> ());
  Sim.Engine.set_provenance e true;
  for i = 1 to 100 do
    Sim.Engine.spawn e ~name:"spanner" (fun () ->
        Sim.Engine.span_scope e "outer" (fun () ->
            Sim.Engine.sleep e (10 * i);
            Sim.Engine.span_scope e "inner" (fun () -> Sim.Engine.sleep e 5)))
  done;
  Sim.Engine.run e;
  check_int "no span stacks survive their fibers" 0 (Sim.Engine.span_stacks_live e)

(* Regression (PR 8): the sleep/resume path must stay within a minor-word
   budget well below the 71 words/sleep the heap-backed engine spent
   (boxed heap entries, per-resume closure pairs and [Fun.protect]
   machinery). Metrics/trace off — the configuration the events/sec
   baseline is defined on. *)
let engine_resume_allocation_bounded () =
  let e = Util.engine () in
  for _ = 1 to 8 do
    Sim.Engine.spawn e (fun () ->
        for _ = 1 to 5_000 do
          Sim.Engine.sleep e 100
        done)
  done;
  let w0 = Gc.minor_words () in
  Sim.Engine.run e;
  let per_sleep = (Gc.minor_words () -. w0) /. 40_000.0 in
  if per_sleep > 48.0 then
    Alcotest.failf "sleep/resume path allocated %.1f minor words per sleep" per_sleep

let engine_sleep () =
  let t = Util.run_fiber (fun e ->
      Sim.Engine.sleep e 123;
      Sim.Engine.sleep e 77;
      Sim.Engine.now e)
  in
  check_int "slept 200" 200 t

let engine_fiber_crash_propagates () =
  let e = Util.engine () in
  Sim.Engine.spawn e ~name:"boom" (fun () -> failwith "bang");
  check "crash surfaces" true
    (try
       Sim.Engine.run e;
       false
     with Sim.Engine.Fiber_crash ("boom", _) -> true)

let engine_determinism () =
  let run () =
    let order = ref [] in
    let e = Util.engine ~seed:99L () in
    for i = 1 to 10 do
      Sim.Engine.spawn e ~name:"f" (fun () ->
          Sim.Engine.sleep e (Sim.Rng.int (Sim.Engine.rng e) 100);
          order := i :: !order)
    done;
    Sim.Engine.run e;
    !order
  in
  Alcotest.(check (list int)) "identical schedules" (run ()) (run ())

let ivar_basics () =
  Util.run_fiber (fun e ->
      let iv = Sim.Engine.Ivar.create e in
      check "empty" false (Sim.Engine.Ivar.is_filled iv);
      Sim.Engine.Ivar.fill iv 42;
      check_int "read full" 42 (Sim.Engine.Ivar.read iv);
      check "try_fill on full" false (Sim.Engine.Ivar.try_fill iv 43);
      check_int "peek" 42 (Option.get (Sim.Engine.Ivar.peek iv)))

let ivar_blocks_until_filled () =
  let woken_at =
    Util.run_fiber (fun e ->
        let iv = Sim.Engine.Ivar.create e in
        Sim.Engine.spawn e ~name:"filler" (fun () ->
            Sim.Engine.sleep e 500;
            Sim.Engine.Ivar.fill iv "hello");
        let v = Sim.Engine.Ivar.read iv in
        Alcotest.(check string) "value" "hello" v;
        Sim.Engine.now e)
  in
  check_int "woke at fill time" 500 woken_at

let ivar_multiple_readers () =
  let count = ref 0 in
  let _e =
    Util.run_scenario (fun e ->
        let iv = Sim.Engine.Ivar.create e in
        for _ = 1 to 5 do
          Sim.Engine.spawn e ~name:"reader" (fun () ->
              ignore (Sim.Engine.Ivar.read iv);
              incr count)
        done;
        Sim.Engine.spawn e ~name:"filler" (fun () ->
            Sim.Engine.sleep e 10;
            Sim.Engine.Ivar.fill iv ()))
  in
  check_int "all woken" 5 !count

let chan_fifo () =
  Util.run_fiber (fun e ->
      let c = Sim.Engine.Chan.create e in
      List.iter (Sim.Engine.Chan.send c) [ 1; 2; 3 ];
      check_int "1" 1 (Sim.Engine.Chan.recv c);
      check_int "2" 2 (Sim.Engine.Chan.recv c);
      check_int "3" 3 (Sim.Engine.Chan.recv c))

let chan_timeout_expires () =
  Util.run_fiber (fun e ->
      let c : int Sim.Engine.Chan.chan = Sim.Engine.Chan.create e in
      let t0 = Sim.Engine.now e in
      (match Sim.Engine.Chan.recv_timeout c 250 with
      | None -> ()
      | Some _ -> Alcotest.fail "unexpected value");
      check_int "waited full timeout" 250 (Sim.Engine.now e - t0))

let chan_timeout_receives () =
  Util.run_fiber (fun e ->
      let c = Sim.Engine.Chan.create e in
      Sim.Engine.spawn e ~name:"sender" (fun () ->
          Sim.Engine.sleep e 100;
          Sim.Engine.Chan.send c 7);
      match Sim.Engine.Chan.recv_timeout c 1_000 with
      | Some 7 -> check_int "at send time" 100 (Sim.Engine.now e)
      | Some _ | None -> Alcotest.fail "expected 7")

let chan_timeout_no_double_delivery () =
  (* A value arriving just before the timer must not be dropped or doubled. *)
  Util.run_fiber (fun e ->
      let c = Sim.Engine.Chan.create e in
      Sim.Engine.spawn e ~name:"sender" (fun () ->
          Sim.Engine.sleep e 99;
          Sim.Engine.Chan.send c 1;
          Sim.Engine.Chan.send c 2);
      (match Sim.Engine.Chan.recv_timeout c 100 with
      | Some 1 -> ()
      | Some v -> Alcotest.fail (Printf.sprintf "got %d" v)
      | None -> Alcotest.fail "timed out despite earlier send");
      Sim.Engine.sleep e 1_000;
      check_int "second value intact" 2 (Sim.Engine.Chan.recv c))

let chan_timeout_boundary_keeps_value () =
  (* When the timeout fires first at the exact deadline, the racing value
     must stay queued for the next receiver rather than vanish. *)
  Util.run_fiber (fun e ->
      let c = Sim.Engine.Chan.create e in
      Sim.Engine.spawn e ~name:"sender" (fun () ->
          Sim.Engine.sleep e 100;
          Sim.Engine.Chan.send c 1);
      (match Sim.Engine.Chan.recv_timeout c 100 with
      | None -> ()
      | Some _ -> Alcotest.fail "timer scheduled first must win the tie");
      check_int "value preserved" 1 (Sim.Engine.Chan.recv c))

let chan_poll () =
  Util.run_fiber (fun e ->
      let c = Sim.Engine.Chan.create e in
      check "poll empty" true (Sim.Engine.Chan.poll c = None);
      Sim.Engine.Chan.send c 9;
      check "poll full" true (Sim.Engine.Chan.poll c = Some 9))

(* --- Host ----------------------------------------------------------------- *)

let host_cpu_consumes_time () =
  Util.run_fiber (fun e ->
      let h = Util.host e ~id:0 in
      let t0 = Sim.Engine.now e in
      Sim.Host.cpu h 1_000;
      check "at least the compute time" true (Sim.Engine.now e - t0 >= 1_000))

let host_pause_blocks_resume_unblocks () =
  let progress = ref 0 in
  let _e =
    Util.run_scenario (fun e ->
        let h = Util.host e ~id:0 in
        Sim.Host.spawn h ~name:"worker" (fun () ->
            let rec loop () =
              Sim.Host.cpu h 100;
              incr progress;
              if !progress < 1_000 then loop ()
            in
            loop ());
        Sim.Engine.schedule e ~at:5_000 (fun () -> Sim.Host.pause h);
        Sim.Engine.schedule e ~at:100_000 (fun () ->
            Alcotest.(check bool) "stalled while paused" true (!progress < 100);
            Sim.Host.resume h))
  in
  check_int "completed after resume" 1_000 !progress

let host_stop_process_parks_fibers () =
  let progress = ref 0 in
  let _e =
    Util.run_scenario (fun e ->
        let h = Util.host e ~id:0 in
        Sim.Host.spawn h ~name:"worker" (fun () ->
            let rec loop () =
              Sim.Host.cpu h 100;
              incr progress;
              loop ()
            in
            loop ());
        Sim.Engine.schedule e ~at:5_000 (fun () -> Sim.Host.stop_process h))
  in
  check "made some progress" true (!progress > 0);
  check "stopped promptly" true (!progress <= 51)

let host_liveness_transitions () =
  let e = Util.engine () in
  let h = Util.host e ~id:0 in
  check "nic reachable running" true (Sim.Host.nic_reachable h);
  Sim.Host.pause h;
  check "nic reachable paused" true (Sim.Host.nic_reachable h);
  check "process alive paused" true (Sim.Host.process_alive h);
  Sim.Host.resume h;
  Sim.Host.stop_process h;
  check "nic reachable after process crash" true (Sim.Host.nic_reachable h);
  check "process dead" false (Sim.Host.process_alive h);
  Sim.Host.kill_host h;
  check "nic dead" false (Sim.Host.nic_reachable h)

let host_jitter_occurs () =
  (* With a tiny jitter period, cpu calls take visibly longer than the
     nominal time. *)
  let cal =
    { Util.default_cal with Sim.Calibration.cpu_jitter_period = 10_000;
      cpu_jitter = Sim.Distribution.Constant 5_000.0 }
  in
  Util.run_fiber (fun e ->
      let h = Sim.Host.create e cal ~id:0 ~name:"jittery" in
      let t0 = Sim.Engine.now e in
      for _ = 1 to 100 do
        Sim.Host.cpu h 1_000
      done;
      let elapsed = Sim.Engine.now e - t0 in
      check "jitter added" true (elapsed > 110_000))

let disabled_hooks_allocation_free () =
  (* With no tracer attached, provenance off and no metrics registry,
     every observability hook on the engine hot path must return without
     allocating — the simulator pays for instrumentation only when it is
     switched on. Measured as a [Gc.minor_words] delta over many calls;
     the budget of a few words per thousand calls absorbs runtime noise
     without hiding a per-call box. *)
  (* Optional arguments ([~cat], [~args]) box a [Some] at the call site
     before the callee's guard can run — which is why hot-path call
     sites check [traced]/span-id themselves before building them. Here
     we measure the bare hooks. *)
  let e = Util.engine () in
  let iters = 10_000 in
  let body () = () in
  (* warm-up: first calls may fault in lazy runtime structures *)
  Sim.Engine.trace_counter e "ops" ~value:0;
  Sim.Engine.trace_instant e "tick";
  Sim.Engine.span_close e (Sim.Engine.span_open e "op");
  Sim.Engine.span_scope e "op" body;
  let w0 = Gc.minor_words () in
  for i = 1 to iters do
    Sim.Engine.trace_counter e "ops" ~value:i;
    Sim.Engine.trace_instant e "tick";
    Sim.Engine.span_close e (Sim.Engine.span_open e "op");
    Sim.Engine.span_scope e "op" body
  done;
  let per_kilo = (Gc.minor_words () -. w0) /. float_of_int (iters / 1000) in
  if per_kilo > 64.0 then
    Alcotest.failf "disabled hooks allocated %.1f minor words per 1000 calls" per_kilo

let suite =
  [
    ("rng deterministic", `Quick, rng_deterministic);
    ("rng seed sensitivity", `Quick, rng_seed_sensitivity);
    ("rng float range", `Quick, rng_float_range);
    ("rng int range", `Quick, rng_int_range);
    ("rng int bad bound", `Quick, rng_int_rejects_bad_bound);
    ("rng split independent", `Quick, rng_split_independent);
    ("rng gaussian moments", `Quick, rng_gaussian_moments);
    ("rng exponential mean", `Quick, rng_exponential_mean);
    ("distribution means", `Quick, dist_sampling_matches_mean);
    ("distribution nonnegative", `Quick, dist_nonnegative);
    ("distribution pareto minimum", `Quick, dist_pareto_minimum);
    ("distribution sample_ns", `Quick, dist_sample_ns_rounds);
    ("stats summary", `Quick, stats_summary);
    ("stats percentiles", `Quick, stats_percentiles);
    ("stats cache invalidation", `Quick, stats_percentile_cache_invalidation);
    ("stats empty raises", `Quick, stats_empty_percentile_raises);
    ("stats option api on empty", `Quick, stats_option_empty);
    ("stats option api single sample", `Quick, stats_option_single_sample);
    ("stats quantile interpolation", `Quick, stats_quantile_interpolation);
    ("stats histogram", `Quick, stats_histogram);
    ("heap ordering", `Quick, heap_ordering);
    ("heap fifo within key", `Quick, heap_fifo_within_key);
    ("heap interleaved", `Quick, heap_interleaved);
    ("heap pop releases payload", `Quick, heap_pop_releases_payload);
    ("wheel ordering", `Quick, wheel_ordering);
    ("wheel fifo within key", `Quick, wheel_fifo_within_key);
    ("wheel interleaved", `Quick, wheel_interleaved);
    ("wheel pop releases payload", `Quick, wheel_pop_releases_payload);
    ("engine time advances", `Quick, engine_time_advances);
    ("engine same-time fifo", `Quick, engine_same_time_fifo);
    ("engine until limit", `Quick, engine_until_limit);
    ("engine until empty queue", `Quick, engine_until_empty_queue);
    ("engine until halt keeps clock", `Quick, engine_until_halt_keeps_clock);
    ("engine span stacks bounded", `Quick, engine_span_stacks_bounded);
    ("engine resume allocation bounded", `Quick, engine_resume_allocation_bounded);
    ("engine sleep", `Quick, engine_sleep);
    ("engine fiber crash propagates", `Quick, engine_fiber_crash_propagates);
    ("engine determinism", `Quick, engine_determinism);
    ("disabled hooks allocation-free", `Quick, disabled_hooks_allocation_free);
    ("ivar basics", `Quick, ivar_basics);
    ("ivar blocks until filled", `Quick, ivar_blocks_until_filled);
    ("ivar multiple readers", `Quick, ivar_multiple_readers);
    ("chan fifo", `Quick, chan_fifo);
    ("chan timeout expires", `Quick, chan_timeout_expires);
    ("chan timeout receives", `Quick, chan_timeout_receives);
    ("chan timeout no double delivery", `Quick, chan_timeout_no_double_delivery);
    ("chan timeout boundary keeps value", `Quick, chan_timeout_boundary_keeps_value);
    ("chan poll", `Quick, chan_poll);
    ("host cpu consumes time", `Quick, host_cpu_consumes_time);
    ("host pause/resume", `Quick, host_pause_blocks_resume_unblocks);
    ("host stop parks fibers", `Quick, host_stop_process_parks_fibers);
    ("host liveness transitions", `Quick, host_liveness_transitions);
    ("host jitter occurs", `Quick, host_jitter_occurs);
  ]
