(* Profile library: virtual-time profiler determinism and exactness,
   the perf-regression compare gate, wheel occupancy stats, and the
   shared stack-attribution core. *)

module E = Workload.Experiments
module Vt = Profile.Vt
module J = Faults.Json

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* --- virtual-time profiler ---------------------------------------------- *)

(* Failover with a profiler attached to every engine the experiment
   creates; provenance on so span frames appear in the stacks. *)
let profiled_failover ?(rounds = 2) seed =
  let vts = ref [] in
  let setup =
    {
      E.seed;
      cal = Util.default_cal;
      trace = None;
      metrics = None;
      faults = None;
      provenance = true;
      on_engine = Some (fun e -> vts := Vt.attach e :: !vts);
    }
  in
  let (_ : E.failover_stats) = E.failover setup ~rounds in
  match !vts with
  | [] -> Alcotest.fail "profiler never attached"
  | vts ->
    List.iter Vt.finish vts;
    vts

let exports vts =
  let folded = Vt.folded vts in
  (Vt.to_folded_string folded, Vt.to_speedscope_string folded)

let profile_deterministic () =
  let fa, sa = exports (profiled_failover 7L) in
  let fb, sb = exports (profiled_failover 7L) in
  check_str "byte-identical folded export" fa fb;
  check_str "byte-identical speedscope export" sa sb;
  check "folded export is non-trivial" true (String.length fa > 0);
  let fc, _ = exports (profiled_failover 8L) in
  check "different seed changes the profile" true (fa <> fc)

(* The profiler must be a pure observer: with it attached (vs not), the
   trace bytes, the final virtual clock and the post-run PRNG state of
   the same-seed run are all unchanged. *)
let traced_failover ~profile seed =
  let tr = Trace.Tracer.create ~capacity:65_536 () in
  let eng = ref None in
  let vts = ref [] in
  let setup =
    {
      E.seed;
      cal = Util.default_cal;
      trace = Some tr;
      metrics = None;
      faults = None;
      provenance = false;
      on_engine =
        Some
          (fun e ->
            eng := Some e;
            if profile then vts := Vt.attach e :: !vts);
    }
  in
  let (_ : E.failover_stats) = E.failover setup ~rounds:2 in
  List.iter Vt.finish !vts;
  match !eng with
  | None -> Alcotest.fail "on_engine never called"
  | Some e ->
    (Trace.Tracer.chrome_string tr, Sim.Engine.now e, Sim.Rng.int64 (Sim.Engine.rng e))

let profile_off_byte_identical () =
  let trace_off, now_off, draw_off = traced_failover ~profile:false 7L in
  let trace_on, now_on, draw_on = traced_failover ~profile:true 7L in
  check_str "trace bytes unchanged by profiler" trace_off trace_on;
  check_int "virtual clock unchanged by profiler" now_off now_on;
  check "PRNG stream unchanged by profiler" true (Int64.equal draw_off draw_on)

let profile_exact_sum () =
  let vts = profiled_failover 11L in
  let span = List.fold_left (fun a vt -> a + Vt.span_ns vt) 0 vts in
  let folded = Vt.folded vts in
  check "run has positive span" true (span > 0);
  check_int "exclusive weights sum exactly to the span" span (Vt.total_ns folded);
  List.iter
    (fun vt ->
      check_int "per-engine sum is exact" (Vt.span_ns vt) (Vt.total_ns (Vt.folded_of vt));
      check "idle bucket within span" true
        (Vt.idle_ns vt >= 0 && Vt.idle_ns vt <= Vt.span_ns vt))
    vts

(* Profiler off must add nothing to the per-event hot path: the same
   workload as the engine's resume-allocation regression test must stay
   within the same budget (the profiler hook is a single field check). *)
let profile_off_zero_allocation () =
  let e = Util.engine () in
  for _ = 1 to 8 do
    Sim.Engine.spawn e (fun () ->
        for _ = 1 to 5_000 do
          Sim.Engine.sleep e 100
        done)
  done;
  let w0 = Gc.minor_words () in
  Sim.Engine.run e;
  let per_sleep = (Gc.minor_words () -. w0) /. 40_000.0 in
  if per_sleep > 48.0 then
    Alcotest.failf "profile-off sleep path allocated %.1f minor words per sleep" per_sleep

(* --- compare gate -------------------------------------------------------- *)

let doc s =
  match J.of_string s with
  | Ok j -> j
  | Error e -> Alcotest.failf "test JSON does not parse: %s" e

let base_doc =
  doc
    {|{"schema":"mu-bench-results/1","seed":42,"quick":true,
       "replication_latency_ns":{"p50":1000,"p99":2000},
       "checks":[{"name":"smr_agree","ok":true}]}|}

let variant ~p99 ~ok =
  doc
    (Printf.sprintf
       {|{"schema":"mu-bench-results/1","seed":42,"quick":true,
          "replication_latency_ns":{"p50":1000,"p99":%d},
          "checks":[{"name":"smr_agree","ok":%b}]}|}
       p99 ok)

let compare_identical () =
  let r = Profile.Compare.run ~baseline:base_doc ~current:base_doc () in
  check "identical docs are comparable" true r.Profile.Compare.comparable;
  check "identical docs do not regress" false (Profile.Compare.regressed r);
  check "latency fields were compared" true (List.length r.Profile.Compare.fields >= 2);
  check "absent fields are skipped, not failed" true (r.Profile.Compare.skipped <> [])

let compare_regression () =
  let r =
    Profile.Compare.run ~baseline:base_doc ~current:(variant ~p99:3000 ~ok:true) ()
  in
  check "p99 +50%% beyond 10%% tolerance regresses" true (Profile.Compare.regressed r);
  let p99 =
    List.find
      (fun f -> f.Profile.Compare.f_path = "replication_latency_ns.p99")
      r.Profile.Compare.fields
  in
  check "the regressed field is flagged" true p99.Profile.Compare.f_regressed

let compare_within_tolerance () =
  let r =
    Profile.Compare.run ~baseline:base_doc ~current:(variant ~p99:2100 ~ok:true) ()
  in
  check "+5%% within 10%% tolerance passes" false (Profile.Compare.regressed r)

let compare_higher_is_better () =
  let rules =
    [ { Profile.Compare.r_path = [ "rate" ]; r_dir = `Higher_is_better; r_tol_pct = 10.0 } ]
  in
  let with_rate v =
    doc
      (Printf.sprintf {|{"schema":"mu-bench-results/1","seed":1,"quick":false,"rate":%d}|} v)
  in
  let worse =
    Profile.Compare.run ~rules ~baseline:(with_rate 100) ~current:(with_rate 80) ()
  in
  check "-20%% throughput beyond tolerance regresses" true (Profile.Compare.regressed worse);
  let fine =
    Profile.Compare.run ~rules ~baseline:(with_rate 100) ~current:(with_rate 95) ()
  in
  check "-5%% throughput within tolerance passes" false (Profile.Compare.regressed fine)

let compare_seed_mismatch () =
  let other = doc {|{"schema":"mu-bench-results/1","seed":43,"quick":true}|} in
  let r = Profile.Compare.run ~baseline:base_doc ~current:other () in
  check "seed mismatch is incomparable" false r.Profile.Compare.comparable;
  check "incomparable carries no verdict" false (Profile.Compare.regressed r);
  check "note explains why" true (r.Profile.Compare.note <> "")

let compare_check_broken () =
  let r =
    Profile.Compare.run ~baseline:base_doc ~current:(variant ~p99:2000 ~ok:false) ()
  in
  check "a check going ok->fail regresses" true (Profile.Compare.regressed r);
  check "the broken check is named" true
    (r.Profile.Compare.checks_broken = [ "smr_agree" ])

(* --- wheel occupancy ------------------------------------------------------ *)

let wheel_stats () =
  let w = Sim.Wheel.create () in
  Sim.Wheel.push w ~key:10 ~seq:0 "l0";
  Sim.Wheel.push w ~key:10_000 ~seq:1 "l1";
  Sim.Wheel.push w ~key:5_000_000 ~seq:2 "l2";
  Sim.Wheel.push w ~key:(1 lsl 33) ~seq:3 "far";
  check_int "short delay sits at level 0" 1 (Sim.Wheel.level_events w 0);
  check_int "10us delay sits at level 1" 1 (Sim.Wheel.level_events w 1);
  check_int "5ms delay sits at level 2" 1 (Sim.Wheel.level_events w 2);
  check_int "beyond-horizon event overflows" 1 (Sim.Wheel.overflow_size w);
  let s = Sim.Wheel.stats w in
  let in_levels = Array.fold_left ( + ) 0 s.Sim.Wheel.level_events in
  check_int "stats account for every queued event" (Sim.Wheel.length w)
    (in_levels + s.Sim.Wheel.past + s.Sim.Wheel.overflow);
  check "occupied slots are counted" true
    (Array.fold_left ( + ) 0 s.Sim.Wheel.level_slots >= 3);
  (* Popping advances the wheel clock; pushing behind it lands in the
     past heap, which still drains first. *)
  check_str "pops in key order" "l0" (Sim.Wheel.pop_exn w);
  Sim.Wheel.push w ~key:1 ~seq:4 "late";
  check_int "behind-the-clock push goes to the past heap" 1 (Sim.Wheel.past_size w);
  check_str "past heap drains first" "late" (Sim.Wheel.pop_exn w)

(* --- stack attribution core ----------------------------------------------- *)

let ev ts kind name = { Sim.Probe.ts; kind; name; cat = "t"; pid = 1; tid = 1; id = 0; args = [] }

let attrib_exclusive () =
  let a = Trace.Attrib.create () in
  let closed = ref [] in
  Trace.Attrib.on_close a (fun ~cat:_ ~name ~pid:_ ~tid:_ ~inclusive ~exclusive ->
      closed := (name, inclusive, exclusive) :: !closed);
  (* parent open 0..100 with a child 20..50: parent exclusive = 70 *)
  Trace.Attrib.add a (ev 0 Sim.Probe.Span_begin "parent");
  Trace.Attrib.add a (ev 20 Sim.Probe.Span_begin "child");
  Trace.Attrib.add a (ev 50 Sim.Probe.Span_end "child");
  Trace.Attrib.add a (ev 100 Sim.Probe.Span_end "parent");
  check_int "all frames matched" 0 (Trace.Attrib.unmatched a);
  check_int "no frames left open" 0 (Trace.Attrib.open_frames a);
  (match List.assoc_opt "child" (List.map (fun (n, i, x) -> (n, (i, x))) !closed) with
  | Some (i, x) ->
    check_int "child inclusive" 30 i;
    check_int "child exclusive" 30 x
  | None -> Alcotest.fail "child frame never closed");
  match List.assoc_opt "parent" (List.map (fun (n, i, x) -> (n, (i, x))) !closed) with
  | Some (i, x) ->
    check_int "parent inclusive" 100 i;
    check_int "parent exclusive (child time removed)" 70 x
  | None -> Alcotest.fail "parent frame never closed"

let attrib_frame_totals () =
  let folded = [ ([ "parent" ], 70); ([ "parent"; "child" ], 30) ] in
  match Trace.Attrib.frame_totals folded with
  | [ ("child", cs, ct); ("parent", ps, pt) ] ->
    check_int "child self" 30 cs;
    check_int "child total" 30 ct;
    check_int "parent self" 70 ps;
    check_int "parent total (self + child)" 100 pt
  | other ->
    Alcotest.failf "unexpected frame_totals shape (%d rows)" (List.length other)

let suite =
  [
    Alcotest.test_case "same seed gives byte-identical exports" `Quick profile_deterministic;
    Alcotest.test_case "profiler attach does not perturb the run" `Quick
      profile_off_byte_identical;
    Alcotest.test_case "exclusive times sum exactly to the span" `Quick profile_exact_sum;
    Alcotest.test_case "profile off allocates nothing extra" `Quick
      profile_off_zero_allocation;
    Alcotest.test_case "compare: identical results pass" `Quick compare_identical;
    Alcotest.test_case "compare: beyond-tolerance regression fails" `Quick compare_regression;
    Alcotest.test_case "compare: within-tolerance drift passes" `Quick
      compare_within_tolerance;
    Alcotest.test_case "compare: higher-is-better direction" `Quick compare_higher_is_better;
    Alcotest.test_case "compare: seed mismatch is incomparable" `Quick compare_seed_mismatch;
    Alcotest.test_case "compare: broken check regresses" `Quick compare_check_broken;
    Alcotest.test_case "wheel occupancy stats" `Quick wheel_stats;
    Alcotest.test_case "attrib: exclusive vs inclusive" `Quick attrib_exclusive;
    Alcotest.test_case "attrib: frame totals from folded stacks" `Quick attrib_frame_totals;
  ]
