(* Monitor plane: SLO window arithmetic, rule hysteresis, the online
   evaluator's determinism through chaos, trace neutrality when the
   monitor is off, and the overhead harness. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* Build the (metric, value) snapshot the sampler would publish: the
   sampled value of a histogram is its cumulative count. *)
let snapshot reg =
  List.map
    (fun (m : Telemetry.Registry.metric) ->
      let v =
        match m.kind with
        | Telemetry.Registry.Counter c ->
          float_of_int (Telemetry.Registry.Counter.value c)
        | Telemetry.Registry.Gauge g ->
          float_of_int (Telemetry.Registry.Gauge.value g)
        | Telemetry.Registry.Histogram h -> float_of_int (Telemetry.Hdr.count h)
      in
      (m, v))
    (Telemetry.Registry.metrics reg)

(* --- Slo ------------------------------------------------------------------ *)

let slo_window_deltas () =
  let reg = Telemetry.Registry.create () in
  let c = Telemetry.Registry.counter reg "ops_total" in
  let g = Telemetry.Registry.gauge reg "depth" in
  let h = Telemetry.Registry.histogram reg "lat_ns" in
  let slo = Monitor.Slo.create () in
  Telemetry.Registry.Counter.add c 10;
  Telemetry.Registry.Gauge.set g 7;
  Telemetry.Hdr.record h 100;
  Telemetry.Hdr.record h 200;
  let w0 = Monitor.Slo.advance slo ~epoch:1 ~t0:0 ~t1:1_000 (snapshot reg) in
  check_int "first window sees full counter" 10
    (int_of_float (Monitor.Slo.delta w0 "ops_total"));
  check_int "histogram delta is count" 2
    (int_of_float (Monitor.Slo.delta w0 "lat_ns"));
  Alcotest.(check (option int))
    "windowed p100" (Some 200)
    (Monitor.Slo.quantile_ns w0 "lat_ns" 1.0);
  (* second window: only what happened since the first close *)
  Telemetry.Registry.Counter.add c 3;
  Telemetry.Registry.Gauge.set g 2;
  Telemetry.Hdr.record h 5_000;
  let w1 = Monitor.Slo.advance slo ~epoch:1 ~t0:1_000 ~t1:2_000 (snapshot reg) in
  check_int "counter delta windowed" 3
    (int_of_float (Monitor.Slo.delta w1 "ops_total"));
  check_int "gauge reads current value" 2
    (int_of_float (Option.get (Monitor.Slo.value w1 Monitor.Slo.Max "depth")));
  (match Monitor.Slo.quantile_ns w1 "lat_ns" 0.5 with
  | Some v -> check "second window sees only the new sample" true (v > 4_000)
  | None -> Alcotest.fail "windowed histogram empty");
  check_int "window index increments" 1 (Monitor.Slo.index w1);
  (* rate: 3 ops over 1000 ns = 3e6/s *)
  let r = Monitor.Slo.rate_per_s w1 "ops_total" in
  check "rate per second" true (Float.abs (r -. 3e6) < 1.0)

(* --- Rules ---------------------------------------------------------------- *)

let rules_hysteresis () =
  let reg = Telemetry.Registry.create () in
  let g = Telemetry.Registry.gauge reg "depth" in
  let slo = Monitor.Slo.create () in
  let rule =
    Monitor.Rules.make
      (Monitor.Rules.gauge_above ~name:"depth_high" ~metric:"depth"
         ~agg:Monitor.Slo.Max ~limit:10.0 ~fire_after:2 ~clear_after:2 ())
  in
  let t = ref 0 in
  let step v =
    Telemetry.Registry.Gauge.set g v;
    let t0 = !t in
    t := !t + 1_000;
    Monitor.Rules.step rule
      (Monitor.Slo.advance slo ~epoch:1 ~t0 ~t1:!t (snapshot reg))
  in
  check "one breach does not fire" true (step 50 = None);
  (match step 50 with
  | Some (`Fire, _) -> ()
  | _ -> Alcotest.fail "second consecutive breach must fire");
  check "firing" true (Monitor.Rules.firing rule);
  check "steady breach is edge-free" true (step 50 = None);
  check "one clean window does not clear" true (step 1 = None);
  (* a breach in between resets the clear counter *)
  check "breach resets clean streak" true (step 50 = None);
  check "clean 1/2" true (step 1 = None);
  (match step 1 with
  | Some (`Clear, _) -> ()
  | _ -> Alcotest.fail "second consecutive clean window must clear");
  check "cleared" false (Monitor.Rules.firing rule)

(* --- Log ------------------------------------------------------------------ *)

let log_json_shape () =
  let log = Monitor.Log.create () in
  let (_ : Monitor.Log.entry) =
    Monitor.Log.add log ~at:100 ~epoch:1 ~window:4 ~rule:"quorum_loss" ~edge:`Fire
      ~detail:"lost \"it\""
  in
  let (_ : Monitor.Log.entry) =
    Monitor.Log.add log ~at:300 ~epoch:1 ~window:6 ~rule:"quorum_loss" ~edge:`Clear
      ~detail:"recovered"
  in
  let (_ : Monitor.Log.entry) =
    Monitor.Log.add log ~at:400 ~epoch:1 ~window:7 ~rule:"rejoin_lag" ~edge:`Fire
      ~detail:"in flight"
  in
  let j = Monitor.Log.to_json log in
  check "schema tag" true (Util.contains_substring j "mu-monitor-log/1");
  check "escaped detail" true (Util.contains_substring j "lost \\\"it\\\"");
  check_int "length" 3 (Monitor.Log.length log);
  Alcotest.(check (list string)) "firing set" [ "rejoin_lag" ] (Monitor.Log.firing log)

(* --- Online through chaos ------------------------------------------------- *)

let run_monitored ?(scenario = "kill-restart") ?(ops = 600) ?(think = 50_000) seed =
  let scenario = Option.get (Faults.Scenario.by_name ~n:3 scenario) in
  let reg = Telemetry.Registry.create () in
  let sampler = Telemetry.Sampler.create reg ~interval:10_000 in
  let online = ref None in
  let o =
    Workload.Chaos.run ~metrics:sampler
      ~on_engine:(fun e ->
        online := Some (Monitor.Online.attach ~window_ns:20_000 e sampler))
      ~ops_per_client:ops ~think ~seed ~n:3 scenario
  in
  (o, Option.get !online)

let chaos_alert_log_deterministic () =
  let o1, m1 = run_monitored 7L in
  let o2, m2 = run_monitored 7L in
  check "runs pass" true (Workload.Chaos.passed o1 && Workload.Chaos.passed o2);
  check_str "same seed: byte-identical alert log"
    (Monitor.Log.to_json (Monitor.Online.log m1))
    (Monitor.Log.to_json (Monitor.Online.log m2));
  check_int "same seed: same window count" (Monitor.Online.windows m1)
    (Monitor.Online.windows m2);
  (* the kill-restart story must produce both watchdog edges *)
  let entries = Monitor.Log.entries (Monitor.Online.log m1) in
  let has rule edge =
    List.exists
      (fun (en : Monitor.Log.entry) -> en.rule = rule && en.edge = edge)
      entries
  in
  check "quorum_loss fires" true (has "quorum_loss" `Fire);
  check "quorum_loss clears" true (has "quorum_loss" `Clear);
  check "rejoin_lag fires" true (has "rejoin_lag" `Fire);
  check "rejoin_lag clears" true (has "rejoin_lag" `Clear);
  (* same property through a partition scenario (smaller run) *)
  let _, p1 = run_monitored ~scenario:"partition-leader" ~ops:150 11L in
  let _, p2 = run_monitored ~scenario:"partition-leader" ~ops:150 11L in
  check_str "partition: byte-identical alert log"
    (Monitor.Log.to_json (Monitor.Online.log p1))
    (Monitor.Log.to_json (Monitor.Online.log p2))

let monitor_off_trace_identical () =
  (* Attaching the monitor must not perturb the simulation: the trace
     with the monitor on, minus its cat="alert" instants, is exactly the
     trace with the monitor off. *)
  let scenario = Option.get (Faults.Scenario.by_name ~n:3 "kill-restart") in
  let run with_monitor =
    let tr = Trace.Tracer.create ~capacity:(1 lsl 19) () in
    let reg = Telemetry.Registry.create () in
    let sampler = Telemetry.Sampler.create reg ~interval:10_000 in
    let on_engine e =
      if with_monitor then
        ignore (Monitor.Online.attach ~window_ns:20_000 e sampler)
    in
    let o =
      Workload.Chaos.run ~trace:tr ~metrics:sampler ~on_engine ~ops_per_client:150
        ~think:50_000 ~seed:7L ~n:3 scenario
    in
    (o, tr)
  in
  let o_off, tr_off = run false in
  let o_on, tr_on = run true in
  check_int "no ring drops (off)" 0 (Trace.Tracer.dropped tr_off);
  check_int "no ring drops (on)" 0 (Trace.Tracer.dropped tr_on);
  check_int "same commits" o_off.Workload.Chaos.committed o_on.Workload.Chaos.committed;
  let ev_off = Trace.Tracer.events tr_off in
  let ev_on = Trace.Tracer.events tr_on in
  let alerts, rest =
    List.partition (fun (e : Sim.Probe.event) -> e.cat = "alert") ev_on
  in
  check "monitor emitted alert instants" true (alerts <> []);
  check "monitor-off trace identical modulo alerts" true (rest = ev_off)

(* --- Overhead harness ----------------------------------------------------- *)

let overhead_smoke () =
  (* Deterministic fake clock: one second per reading. *)
  let t = ref 0.0 in
  let clock () =
    t := !t +. 1.0;
    !t
  in
  let samples = Monitor.Overhead.run_all ~fibers:4 ~sleeps:50 ~clock () in
  Alcotest.(check (list string))
    "one sample per layer, in order"
    (List.map Monitor.Overhead.layer_name Monitor.Overhead.all_layers)
    (List.map (fun (s : Monitor.Overhead.sample) -> s.layer) samples);
  List.iter
    (fun (s : Monitor.Overhead.sample) ->
      check_int (s.layer ^ " ops") 200 s.Monitor.Overhead.ops;
      check (s.layer ^ " alloc sane") true (s.Monitor.Overhead.minor_words_per_op >= 0.0))
    samples

let suite =
  [
    Alcotest.test_case "slo window deltas" `Quick slo_window_deltas;
    Alcotest.test_case "rule hysteresis" `Quick rules_hysteresis;
    Alcotest.test_case "log json shape" `Quick log_json_shape;
    Alcotest.test_case "chaos alert log deterministic" `Quick
      chaos_alert_log_deterministic;
    Alcotest.test_case "monitor-off trace identical" `Quick monitor_off_trace_identical;
    Alcotest.test_case "overhead smoke" `Quick overhead_smoke;
  ]
