(* lib/provenance: span-tree reconstruction from prov events, exact phase
   attribution, byte-deterministic exports, fail-over request forensics, and
   the zero-cost-when-off guarantee. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

module Tree = Provenance.Tree
module An = Provenance.Analyze
module Export = Provenance.Export
module E = Workload.Experiments

(* One provenance-on latency run: tracer + samples + reconstructed tree. *)
let latency_run ?(provenance = true) ?(samples = 40) seed =
  let tr = Trace.Tracer.create ~capacity:(1 lsl 16) () in
  let setup = { E.default_setup with E.seed; trace = Some tr; provenance } in
  let s = E.mu_replication_latency setup ~samples ~payload:64 ~attach:Mu.Config.Standalone in
  (tr, s, Tree.of_events (Trace.Tracer.events tr))

let chaos_run ?(provenance = true) seed =
  let tr = Trace.Tracer.create ~capacity:(1 lsl 19) () in
  let scenario = Option.get (Faults.Scenario.by_name "crash-leader" ~n:3) in
  let o =
    (* 60 ops x 100 us think stretches each client past the 5 ms crash. *)
    Workload.Chaos.run ~trace:tr ~provenance ~ops_per_client:60 ~think:100_000 ~seed ~n:3
      scenario
  in
  (tr, o, Tree.of_events (Trace.Tracer.events tr))

(* --- well-formedness ----------------------------------------------------- *)

let tree_well_formed () =
  let _, _, t = latency_run 42L in
  check "non-empty" true (Tree.size t > 0);
  check_int "no dangling refs" 0 t.Tree.dropped;
  (match Tree.check t with
  | [] -> ()
  | vs -> Alcotest.failf "tree violations: %s" (String.concat "; " vs));
  (* Every measured propose produced a closed request span with children. *)
  let reqs = An.requests t in
  check "requests present" true (List.length reqs > 0);
  List.iter
    (fun (r : Tree.span) ->
      check "request closed" false (Tree.is_open r);
      check "request has children" true (r.Tree.children <> []))
    reqs

let chaos_tree_well_formed () =
  let _, _, t = chaos_run 7L in
  check "non-empty" true (Tree.size t > 0);
  (match Tree.check t with
  | [] -> ()
  | vs -> Alcotest.failf "chaos tree violations: %s" (String.concat "; " vs))

(* --- exact phase attribution --------------------------------------------- *)

let phases_sum_exactly () =
  let _, _, t = latency_run 42L in
  List.iter
    (fun (r : Tree.span) ->
      let rows = An.phases t r in
      check_int "phase rows sum to end-to-end latency" (Tree.duration r)
        (An.phase_sum rows))
    (An.requests t);
  (* Outliers are a subset of requests, slowest first. *)
  match An.top_outliers t ~k:3 with
  | a :: b :: _ -> check "sorted slowest-first" true (Tree.duration a >= Tree.duration b)
  | _ -> Alcotest.fail "expected >= 2 outliers"

(* --- determinism --------------------------------------------------------- *)

let same_seed_identical_export () =
  let _, _, t1 = latency_run 42L in
  let _, _, t2 = latency_run 42L in
  check_str "json_string byte-identical" (Export.json_string t1) (Export.json_string t2);
  let _, _, c1 = chaos_run 7L in
  let _, _, c2 = chaos_run 7L in
  check_str "chaos json_string byte-identical" (Export.json_string c1)
    (Export.json_string c2)

(* Provenance must be free when off: no prov events, identical trace bytes,
   and the same virtual-time measurements as a provenance-on run (the spans
   observe the schedule, never perturb it). *)
let off_is_invisible () =
  let tr_off, s_off, _ = latency_run ~provenance:false 42L in
  let prov_events =
    List.filter (fun (e : Sim.Probe.event) -> e.cat = "prov") (Trace.Tracer.events tr_off)
  in
  check_int "no prov events when off" 0 (List.length prov_events);
  let tr_off2, _, _ = latency_run ~provenance:false 42L in
  check_str "off-run trace bytes stable" (Trace.Tracer.chrome_string tr_off)
    (Trace.Tracer.chrome_string tr_off2);
  let _, s_on, _ = latency_run ~provenance:true 42L in
  check "identical latency samples on vs off" true
    (Sim.Stats.Samples.to_list s_on = Sim.Stats.Samples.to_list s_off)

(* --- fail-over forensics ------------------------------------------------- *)

let chaos_forensics () =
  let _, o, t = chaos_run 7L in
  check "run completed" true o.Workload.Chaos.completed;
  check "linearizable" true o.Workload.Chaos.linearizable;
  let reports = An.request_reports t in
  check_int "one report per client op" o.Workload.Chaos.ops (List.length reports);
  (* crash-leader must produce at least one disruption window, and the
     requests open across it must all be accounted for (none lost or
     duplicated on a completed, linearizable run). *)
  let horizon = 2_000_000_000 in
  let ws = An.windows t ~horizon ~include_open:false in
  check "disruption window found" true (ws <> []);
  let caught = List.filter (An.open_across ~horizon ws) reports in
  check "some requests were in flight at the crash" true (caught <> []);
  List.iter
    (fun (r : An.req_report) ->
      check "caught request replied" true (r.An.replied <> None);
      check "no duplicates" true (r.An.verdict <> An.Duplicated);
      check "no losses" true (r.An.verdict <> An.Lost))
    caught;
  (* At least one in-flight request needed a retry/requeue to survive. *)
  check "a retried request exists" true
    (List.exists (fun (r : An.req_report) -> r.An.verdict = An.Retried) caught)

let suite =
  [
    Alcotest.test_case "tree well-formed (latency)" `Quick tree_well_formed;
    Alcotest.test_case "tree well-formed (chaos)" `Quick chaos_tree_well_formed;
    Alcotest.test_case "phase rows sum to latency" `Quick phases_sum_exactly;
    Alcotest.test_case "same seed, identical export" `Quick same_seed_identical_export;
    Alcotest.test_case "provenance off is invisible" `Quick off_is_invisible;
    Alcotest.test_case "chaos fail-over forensics" `Quick chaos_forensics;
  ]
