(* Telemetry subsystem: HDR histogram correctness, registry semantics,
   sampler epochs/decimation, exporter determinism, and end-to-end
   instrumentation through the experiment drivers. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

module T = Telemetry

(* --- Hdr ------------------------------------------------------------------ *)

let hdr_exact_small_values () =
  let h = T.Hdr.create () in
  (* precision 7: values below 2^8 = 256 are recorded exactly. *)
  for v = 0 to 255 do
    T.Hdr.record h v
  done;
  check_int "count" 256 (T.Hdr.count h);
  Alcotest.(check (option int)) "min" (Some 0) (T.Hdr.min_value h);
  Alcotest.(check (option int)) "max" (Some 255) (T.Hdr.max_value h);
  Alcotest.(check (option int)) "median exact" (Some 127) (T.Hdr.quantile h 0.5);
  Alcotest.(check (option int)) "p0 exact" (Some 0) (T.Hdr.quantile h 0.0);
  Alcotest.(check (option int)) "p1 exact" (Some 255) (T.Hdr.quantile h 1.0)

let hdr_quantile_error_bound () =
  (* Record pseudo-random values over four decades and check every
     quantile answer is within the documented relative error of the true
     order statistic. *)
  let h = T.Hdr.create () in
  let n = 20_000 in
  let values = Array.init n (fun i -> 1 + ((i * 48271) mod 999_983) * 10) in
  Array.iter (fun v -> T.Hdr.record h v) values;
  let sorted = Array.copy values in
  Array.sort compare sorted;
  let bound = 2.0 *. (2.0 ** float_of_int (-T.Hdr.precision h)) in
  List.iter
    (fun q ->
      let truth = float_of_int sorted.(int_of_float (q *. float_of_int (n - 1))) in
      match T.Hdr.quantile h q with
      | None -> Alcotest.fail "quantile on non-empty histogram"
      | Some v ->
        let rel = Float.abs (float_of_int v -. truth) /. truth in
        if rel > bound then
          Alcotest.failf "q=%g: got %d, true %.0f, rel error %.4f > %.4f" q v truth rel
            bound)
    [ 0.01; 0.1; 0.5; 0.9; 0.99; 0.999 ]

let hdr_empty_and_bad_inputs () =
  let h = T.Hdr.create () in
  check "empty" true (T.Hdr.is_empty h);
  Alcotest.(check (option int)) "quantile empty" None (T.Hdr.quantile h 0.5);
  Alcotest.(check (option int)) "min empty" None (T.Hdr.min_value h);
  T.Hdr.record h 100;
  Alcotest.(check (option int)) "q out of range" None (T.Hdr.quantile h 1.5);
  T.Hdr.record h (-5);
  (* negative clamps to 0 *)
  Alcotest.(check (option int)) "clamped min" (Some 0) (T.Hdr.min_value h)

let hdr_merge_associative () =
  let mk offsets =
    let h = T.Hdr.create () in
    List.iter (fun o -> Array.iter (fun v -> T.Hdr.record h (v + o)) (Array.init 500 (fun i -> 1 + (i * 7919 mod 100_000)))) offsets;
    h
  in
  (* (a <- b) <- c vs a' <- (b' <- c'): merged counts must agree bucket
     for bucket, which the CSV export makes easy to compare. *)
  let dump h =
    let reg = T.Registry.create () in
    T.Hdr.merge ~into:(T.Registry.histogram reg "m_ns") h;
    T.Export.csv reg
  in
  let a = mk [ 0 ] and b = mk [ 3 ] and c = mk [ 50_000 ] in
  T.Hdr.merge ~into:a b;
  T.Hdr.merge ~into:a c;
  let a' = mk [ 0 ] and b' = mk [ 3 ] and c' = mk [ 50_000 ] in
  T.Hdr.merge ~into:b' c';
  T.Hdr.merge ~into:a' b';
  check_int "merged count" (T.Hdr.count a) (T.Hdr.count a');
  check_str "merge associativity (byte-equal export)" (dump a) (dump a');
  check "merge precision mismatch raises" true
    (try
       T.Hdr.merge ~into:(T.Hdr.create ~precision:5 ()) (T.Hdr.create ());
       false
     with Invalid_argument _ -> true)

(* --- Registry ------------------------------------------------------------- *)

let registry_find_or_create () =
  let reg = T.Registry.create () in
  let c1 = T.Registry.counter reg ~labels:[ ("host", "h0") ] "ops_total" in
  let c2 = T.Registry.counter reg ~labels:[ ("host", "h0") ] "ops_total" in
  T.Registry.Counter.inc c1;
  T.Registry.Counter.inc c2;
  (* Same (name, labels) -> same instrument. *)
  check_int "shared instrument" 2 (T.Registry.Counter.value c1);
  let c3 = T.Registry.counter reg ~labels:[ ("host", "h1") ] "ops_total" in
  check_int "distinct labels distinct" 0 (T.Registry.Counter.value c3);
  check_int "metrics" 2 (List.length (T.Registry.metrics reg));
  check "kind mismatch raises" true
    (try
       ignore (T.Registry.gauge reg ~labels:[ ("host", "h0") ] "ops_total");
       false
     with Invalid_argument _ -> true);
  check "bad name raises" true
    (try
       ignore (T.Registry.counter reg "bad name");
       false
     with Invalid_argument _ -> true)

let registry_label_canonicalisation () =
  let reg = T.Registry.create () in
  let g1 = T.Registry.gauge reg ~labels:[ ("b", "2"); ("a", "1") ] "g" in
  let g2 = T.Registry.gauge reg ~labels:[ ("a", "1"); ("b", "2") ] "g" in
  T.Registry.Gauge.set g1 9;
  check_int "label order irrelevant" 9 (T.Registry.Gauge.value g2);
  match T.Registry.metrics reg with
  | [ m ] ->
    Alcotest.(check (list (pair string string)))
      "labels sorted" [ ("a", "1"); ("b", "2") ] m.T.Registry.labels
  | ms -> Alcotest.failf "expected 1 metric, got %d" (List.length ms)

(* --- Sampler -------------------------------------------------------------- *)

let sampler_epochs () =
  let reg = T.Registry.create () in
  let g = T.Registry.gauge reg "depth" in
  let s = T.Sampler.create reg ~interval:1_000 in
  check_int "no epoch yet" (-1) (T.Sampler.current_epoch s);
  check "tick before epoch raises" true
    (try
       T.Sampler.tick s ~now:0;
       false
     with Invalid_argument _ -> true);
  T.Sampler.start_epoch s;
  T.Registry.Gauge.set g 1;
  T.Sampler.tick s ~now:0;
  T.Registry.Gauge.set g 2;
  T.Sampler.tick s ~now:1_000;
  T.Sampler.start_epoch s;
  T.Registry.Gauge.set g 3;
  T.Sampler.tick s ~now:0;
  match T.Sampler.series s with
  | [ (_, epochs) ] ->
    check_int "two epochs" 2 (List.length epochs);
    let e0, pts0 = List.nth epochs 0 and e1, pts1 = List.nth epochs 1 in
    check_int "epoch ids" 0 e0;
    check_int "epoch ids" 1 e1;
    Alcotest.(check (array (pair int (float 0.0)))) "epoch 0 points"
      [| (0, 1.0); (1_000, 2.0) |] pts0;
    Alcotest.(check (array (pair int (float 0.0)))) "epoch 1 points" [| (0, 3.0) |] pts1
  | ss -> Alcotest.failf "expected 1 series, got %d" (List.length ss)

let sampler_decimation_cap () =
  let reg = T.Registry.create () in
  let g = T.Registry.gauge reg "v" in
  let cap = 64 in
  let s = T.Sampler.create ~max_points_per_epoch:cap reg ~interval:1 in
  T.Sampler.start_epoch s;
  for i = 0 to 999 do
    T.Registry.Gauge.set g i;
    T.Sampler.tick s ~now:i
  done;
  match T.Sampler.series s with
  | [ (_, [ (_, pts) ]) ] ->
    check "bounded" true (Array.length pts <= cap);
    check "kept a useful fraction" true (Array.length pts > cap / 4);
    (* Deterministic: same tick sequence, same surviving points. *)
    let reg' = T.Registry.create () in
    let g' = T.Registry.gauge reg' "v" in
    let s' = T.Sampler.create ~max_points_per_epoch:cap reg' ~interval:1 in
    T.Sampler.start_epoch s';
    for i = 0 to 999 do
      T.Registry.Gauge.set g' i;
      T.Sampler.tick s' ~now:i
    done;
    check_str "decimation deterministic" (T.Export.series_csv s) (T.Export.series_csv s')
  | _ -> Alcotest.fail "expected 1 series with 1 epoch"

let sampler_subscribe () =
  (* Subscribers see the same snapshot the series store records, in
     registration order, tagged with the tick's virtual time and epoch. *)
  let reg = T.Registry.create () in
  let g = T.Registry.gauge reg "depth" in
  let c = T.Registry.counter reg "ops_total" in
  let s = T.Sampler.create reg ~interval:1_000 in
  let seen = ref [] in
  T.Sampler.subscribe s (fun ~now ~epoch samples ->
      seen := ("a", now, epoch, samples) :: !seen);
  T.Sampler.subscribe s (fun ~now:_ ~epoch:_ _ -> seen := ("b", 0, 0, []) :: !seen);
  T.Sampler.start_epoch s;
  T.Registry.Gauge.set g 5;
  T.Registry.Counter.add c 3;
  T.Sampler.tick s ~now:2_000;
  (match List.rev !seen with
  | [ ("a", now, epoch, samples); ("b", _, _, _) ] ->
    check_int "now" 2_000 now;
    check_int "epoch" 0 epoch;
    let value name =
      let m, v =
        List.find (fun ((m : T.Registry.metric), _) -> m.name = name) samples
      in
      ignore m;
      int_of_float v
    in
    check_int "counter sampled" 3 (value "ops_total");
    check_int "gauge sampled" 5 (value "depth")
  | l -> Alcotest.failf "expected callbacks a then b, got %d" (List.length l));
  (* a subscriber added mid-run starts receiving on the next tick *)
  let late = ref 0 in
  T.Sampler.subscribe s (fun ~now:_ ~epoch:_ _ -> incr late);
  T.Sampler.tick s ~now:3_000;
  check_int "late subscriber called once" 1 !late

let hdr_copy_diff () =
  let h = T.Hdr.create () in
  T.Hdr.record h 100;
  T.Hdr.record h 200;
  let snap = T.Hdr.copy h in
  T.Hdr.record h 50;
  T.Hdr.record h 5_000;
  (* the copy is insulated from later records *)
  check_int "snapshot frozen" 2 (T.Hdr.count snap);
  let w = T.Hdr.diff ~since:snap h in
  check_int "window count" 2 (T.Hdr.count w);
  Alcotest.(check (option int)) "window min" (Some 50) (T.Hdr.min_value w);
  (match T.Hdr.max_value w with
  | Some v -> check "window max ~5000" true (v >= 5_000 && v < 5_200)
  | None -> Alcotest.fail "window max");
  check "window sum" true (Float.abs (T.Hdr.sum w -. 5_050.0) < 1.0);
  (* diff against an identical snapshot is empty *)
  let z = T.Hdr.diff ~since:(T.Hdr.copy h) h in
  check "empty diff" true (T.Hdr.is_empty z);
  Alcotest.(check (option int)) "empty diff quantile" None (T.Hdr.quantile z 0.5)

(* --- Exporters ------------------------------------------------------------ *)

let build_reg () =
  let reg = T.Registry.create () in
  let c = T.Registry.counter reg ~help:"ops" ~labels:[ ("host", "h0") ] "ops_total" in
  T.Registry.Counter.add c 5;
  let g = T.Registry.gauge reg "queue_depth" in
  T.Registry.Gauge.set g 3;
  let h = T.Registry.histogram reg ~help:"lat" "lat_ns" in
  List.iter (fun v -> T.Hdr.record h v) [ 100; 200; 300; 4_000; 50_000 ];
  reg

let export_deterministic () =
  check_str "prometheus" (T.Export.prometheus (build_reg ())) (T.Export.prometheus (build_reg ()));
  check_str "csv" (T.Export.csv (build_reg ())) (T.Export.csv (build_reg ()));
  check_str "json" (T.Export.json (build_reg ())) (T.Export.json (build_reg ()))

let export_prometheus_shape () =
  let out = T.Export.prometheus (build_reg ()) in
  let contains s = check (Printf.sprintf "contains %S" s) true
      (let n = String.length s and m = String.length out in
       let rec go i = i + n <= m && (String.sub out i n = s || go (i + 1)) in
       go 0)
  in
  contains "# TYPE ops_total counter";
  contains "ops_total{host=\"h0\"} 5";
  contains "# TYPE queue_depth gauge";
  contains "# TYPE lat_ns histogram";
  contains "lat_ns_bucket{le=\"+Inf\"} 5";
  contains "lat_ns_count 5"

(* --- End to end through the experiment drivers --------------------------- *)

module E = Workload.Experiments

let metrics_setup seed interval =
  let s = T.Sampler.create (T.Registry.create ()) ~interval in
  ({ E.seed; cal = Util.default_cal; trace = None; metrics = Some s; faults = None; provenance = false; on_engine = None }, s)

let e2e_replication_instrumented () =
  let setup, smp = metrics_setup 42L 50_000 in
  let samples = 500 in
  let (_ : Sim.Stats.Samples.t) =
    E.mu_replication_latency setup ~samples ~payload:64 ~attach:Mu.Config.Standalone
  in
  let reg = T.Sampler.registry smp in
  (match T.Registry.find reg ~labels:[ ("replica", "0") ] "mu_replication_latency_ns" with
  | Some { T.Registry.kind = T.Registry.Histogram h; _ } ->
    check "replication histogram populated" true (T.Hdr.count h >= samples)
  | _ -> Alcotest.fail "mu_replication_latency_ns{replica=0} not registered");
  (* The sim + rdma layers report through the same registry. *)
  check "sim events counted" true
    (match T.Registry.find reg "sim_events_total" with
    | Some { T.Registry.kind = T.Registry.Counter c; _ } -> T.Registry.Counter.value c > 0
    | _ -> false);
  check "rdma posts counted" true
    (List.exists
       (fun (m : T.Registry.metric) ->
         m.T.Registry.name = "rdma_wr_posted_total"
         && match m.T.Registry.kind with
            | T.Registry.Counter c -> T.Registry.Counter.value c > 0
            | _ -> false)
       (T.Registry.metrics reg));
  check "time-series recorded" true (T.Sampler.series smp <> [])

let e2e_failover_instrumented () =
  let setup, smp = metrics_setup 42L 20_000 in
  let (_ : E.failover_stats) = E.failover setup ~rounds:2 in
  let reg = T.Sampler.registry smp in
  (match T.Registry.find reg "failover_total_ns" with
  | Some { T.Registry.kind = T.Registry.Histogram h; _ } ->
    check_int "one sample per round" 2 (T.Hdr.count h)
  | _ -> Alcotest.fail "failover_total_ns not registered");
  check "score timeline crossed fail then recover" true
    (T.Dashboard.has_fail_recover_crossing ~fail:2 ~recover:6 smp);
  let dash = T.Dashboard.render ~sampler:smp reg in
  check "dashboard has sections" true (String.length dash > 0 && dash <> "(no telemetry recorded)\n")

(* The crash-recovery dashboard section renders the rejoin instruments
   (parity latency + catch-up entries per replica, shed and degraded
   totals) and stays silent when no recovery ran. *)
let dashboard_recovery_section () =
  let reg = T.Registry.create () in
  check "silent without recovery metrics" true (T.Dashboard.recovery_summary reg = "");
  let labels = [ ("replica", "2") ] in
  let tel = Mu.Telem.create reg ~id:2 in
  Mu.Telem.rejoin_parity_ns tel 24_000;
  Mu.Telem.catch_up tel 17;
  Mu.Telem.shed tel;
  Mu.Telem.shed tel;
  Mu.Telem.degraded_ns tel 400_000;
  let s = T.Dashboard.recovery_summary reg in
  let has sub = Util.contains_substring s sub in
  check "rejoin row" true (has "replica=2");
  check "entries pulled" true (has "17");
  check "shed total" true (has "shed requests: 2");
  check "degraded windows" true (has "degraded windows: 1");
  (match T.Registry.find reg ~labels "mu_rejoin_time_to_parity_ns" with
  | Some { T.Registry.kind = T.Registry.Histogram h; _ } ->
    check_int "one rejoin recorded" 1 (T.Hdr.count h)
  | _ -> Alcotest.fail "mu_rejoin_time_to_parity_ns not registered");
  let dash = T.Dashboard.render reg in
  check "render includes crash recovery section" true
    (Util.contains_substring dash "crash recovery")

let e2e_export_deterministic () =
  let dump seed =
    let setup, smp = metrics_setup seed 20_000 in
    let (_ : E.failover_stats) = E.failover setup ~rounds:2 in
    T.Export.json ~sampler:smp (T.Sampler.registry smp)
  in
  check_str "equal seeds byte-identical" (dump 42L) (dump 42L);
  check "different seed differs" true (dump 42L <> dump 43L)

let suite =
  [
    ("hdr exact small values", `Quick, hdr_exact_small_values);
    ("hdr quantile error bound", `Quick, hdr_quantile_error_bound);
    ("hdr empty and bad inputs", `Quick, hdr_empty_and_bad_inputs);
    ("hdr merge associative", `Quick, hdr_merge_associative);
    ("registry find-or-create", `Quick, registry_find_or_create);
    ("registry label canonicalisation", `Quick, registry_label_canonicalisation);
    ("sampler epochs", `Quick, sampler_epochs);
    ("sampler decimation cap", `Quick, sampler_decimation_cap);
    ("sampler subscribe", `Quick, sampler_subscribe);
    ("hdr copy and diff", `Quick, hdr_copy_diff);
    ("export deterministic", `Quick, export_deterministic);
    ("export prometheus shape", `Quick, export_prometheus_shape);
    ("e2e replication instrumented", `Quick, e2e_replication_instrumented);
    ("e2e failover instrumented", `Quick, e2e_failover_instrumented);
    ("dashboard recovery section", `Quick, dashboard_recovery_section);
    ("e2e export deterministic", `Quick, e2e_export_deterministic);
  ]
