(* Edge-case coverage: configuration validation, proposal-number
   uniqueness, background-plane layout, calibration sanity, CQ timeouts,
   and metrics arithmetic. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- Config ------------------------------------------------------------- *)

let config_validation () =
  let bad cfg =
    try
      Mu.Config.validate cfg;
      false
    with Invalid_argument _ -> true
  in
  check "n = 0" true (bad { Mu.Config.default with Mu.Config.n = 0 });
  check "tiny log vs slack" true
    (bad { Mu.Config.default with Mu.Config.log_slots = 10; recycle_slack = 64 });
  check "zero value cap" true (bad { Mu.Config.default with Mu.Config.value_cap = 0 });
  check "zero batch" true (bad { Mu.Config.default with Mu.Config.max_batch = 0 });
  check "zero outstanding" true
    (bad { Mu.Config.default with Mu.Config.max_outstanding = 0 });
  Mu.Config.validate Mu.Config.default;
  check_int "majority of 3" 2 (Mu.Config.majority Mu.Config.default);
  check_int "majority of 5" 3 (Mu.Config.majority { Mu.Config.default with Mu.Config.n = 5 });
  check_int "majority of 4" 3 (Mu.Config.majority { Mu.Config.default with Mu.Config.n = 4 })

(* --- proposal numbers ----------------------------------------------------- *)

let proposal_numbers_unique_and_increasing () =
  let e = Util.engine () in
  let replicas = Mu.Replica.create_cluster e Util.default_cal Mu.Config.default in
  let seen = Hashtbl.create 64 in
  let last = Array.make 3 0L in
  for round = 1 to 50 do
    Array.iteri
      (fun i r ->
        let above = if round mod 3 = 0 then last.((i + 1) mod 3) else last.(i) in
        let p = Mu.Replica.fresh_prop_num r ~above in
        check "strictly above" true (Int64.compare p above > 0);
        check "strictly increasing per replica" true (Int64.compare p last.(i) > 0);
        check "globally unique" false (Hashtbl.mem seen p);
        Hashtbl.replace seen p ();
        last.(i) <- p)
      replicas
  done

(* --- background-plane layout ----------------------------------------------- *)

let bg_layout_disjoint () =
  let cells =
    [ ("hb", Mu.Replica.bg_hb_offset); ("head", Mu.Replica.bg_log_head_offset) ]
    @ List.init 8 (fun i -> (Printf.sprintf "req%d" i, Mu.Replica.bg_req_offset i))
    @ List.init 8 (fun i -> (Printf.sprintf "ack%d" i, Mu.Replica.bg_ack_offset i))
  in
  List.iteri
    (fun i (na, a) ->
      List.iteri
        (fun j (nb, b) ->
          if i < j then
            check (Printf.sprintf "%s/%s disjoint" na nb) true (abs (a - b) >= 8))
        cells)
    cells;
  List.iter
    (fun (_, off) -> check "inside the MR" true (off + 8 <= Mu.Replica.bg_size ~n:3))
    cells

(* --- calibration sanity ------------------------------------------------------ *)

let calibration_relationships () =
  let c = Sim.Calibration.default in
  check "flags 10x faster than restart (Fig. 2)" true
    (Sim.Distribution.mean c.Sim.Calibration.perm_qp_restart
    > 5.0 *. Sim.Distribution.mean c.Sim.Calibration.perm_qp_flags);
  check "detection window ~600us" true
    (let reads =
       (c.Sim.Calibration.score_max - c.Sim.Calibration.score_fail + 1)
       * c.Sim.Calibration.fd_read_interval
     in
     reads > 450_000 && reads < 750_000);
  check "4 GiB rereg ~100ms (Fig. 2)" true
    (let d = Sim.Calibration.mr_rereg_time c ~bytes:(4 * 1024 * 1024 * 1024) in
     let m = Sim.Distribution.mean d in
     m > 60.0e6 && m < 140.0e6);
  check "hb faster than fd reads" true
    (c.Sim.Calibration.hb_increment_interval < c.Sim.Calibration.fd_read_interval)

(* --- CQ behaviour ------------------------------------------------------------- *)

let cq_await_timeout () =
  Util.run_fiber (fun e ->
      let cq = Rdma.Cq.create e in
      let t0 = Sim.Engine.now e in
      check "empty poll" true (Rdma.Cq.poll cq = None);
      check "timeout" true (Rdma.Cq.await_timeout cq 5_000 = None);
      check_int "waited" 5_000 (Sim.Engine.now e - t0);
      Rdma.Cq.push cq { Rdma.Verbs.wr_id = 1; kind = `Write; status = Rdma.Verbs.Success; byte_len = 0 };
      check_int "pending" 1 (Rdma.Cq.pending cq);
      check "delivered" true (Rdma.Cq.await_timeout cq 5_000 <> None))

(* --- metrics arithmetic --------------------------------------------------------- *)

let metrics_totals () =
  let a = Mu.Metrics.create () and b = Mu.Metrics.create () in
  a.Mu.Metrics.proposes <- 3;
  a.Mu.Metrics.aborts <- 1;
  b.Mu.Metrics.proposes <- 4;
  b.Mu.Metrics.perm_fast_path <- 2;
  let t = Mu.Metrics.total [ a; b ] in
  check_int "proposes" 7 t.Mu.Metrics.proposes;
  check_int "aborts" 1 t.Mu.Metrics.aborts;
  check_int "fast path" 2 t.Mu.Metrics.perm_fast_path;
  check "pp renders" true (String.length (Fmt.str "%a" Mu.Metrics.pp t) > 0)

let metrics_reset_copy_diff () =
  let m = Mu.Metrics.create () in
  m.Mu.Metrics.proposes <- 5;
  m.Mu.Metrics.commits <- 4;
  m.Mu.Metrics.fd_reads <- 100;
  let before = Mu.Metrics.copy m in
  (* copy is an independent snapshot. *)
  m.Mu.Metrics.proposes <- 9;
  m.Mu.Metrics.slots_recycled <- 2;
  check_int "copy unaffected" 5 before.Mu.Metrics.proposes;
  check_int "copy unaffected (recycled)" 0 before.Mu.Metrics.slots_recycled;
  (* diff after before = the activity in between. *)
  let d = Mu.Metrics.diff m before in
  check_int "diff proposes" 4 d.Mu.Metrics.proposes;
  check_int "diff commits" 0 d.Mu.Metrics.commits;
  check_int "diff recycled" 2 d.Mu.Metrics.slots_recycled;
  (* reset zeroes in place. *)
  Mu.Metrics.reset m;
  check_int "reset proposes" 0 m.Mu.Metrics.proposes;
  check_int "reset fd_reads" 0 m.Mu.Metrics.fd_reads;
  check "reset equals fresh" true (m = Mu.Metrics.create ())

let metrics_total_diff_round_trip () =
  (* total [diff a b] = diff (total [a...]) (total [b...]) field-wise. *)
  let mk p c f =
    let m = Mu.Metrics.create () in
    m.Mu.Metrics.proposes <- p;
    m.Mu.Metrics.commits <- c;
    m.Mu.Metrics.perm_fast_path <- f;
    m
  in
  let after = [ mk 10 8 3; mk 7 7 0 ] and before = [ mk 4 4 1; mk 2 1 0 ] in
  let per_replica = Mu.Metrics.total (List.map2 Mu.Metrics.diff after before) in
  let of_totals = Mu.Metrics.diff (Mu.Metrics.total after) (Mu.Metrics.total before) in
  check "total/diff commute" true (per_replica = of_totals);
  check_int "proposes delta" 11 per_replica.Mu.Metrics.proposes;
  check_int "commits delta" 10 per_replica.Mu.Metrics.commits;
  check_int "fast-path delta" 2 per_replica.Mu.Metrics.perm_fast_path

(* --- failover models -------------------------------------------------------------- *)

let failover_models_ordering () =
  let rng = Sim.Rng.create 3L in
  let med d =
    let s = Sim.Stats.Samples.create () in
    for _ = 1 to 500 do
      Sim.Stats.Samples.add s (int_of_float (Baselines.Failover_model.sample_us d rng))
    done;
    Sim.Stats.Samples.median s
  in
  let hc = med Baselines.Failover_model.hovercraft in
  let dare = med Baselines.Failover_model.dare in
  let hermes = med Baselines.Failover_model.hermes in
  check "hovercraft ~10ms" true (hc > 7_000 && hc < 14_000);
  check "dare ~30ms" true (dare > 20_000 && dare < 40_000);
  check "hermes >= 150ms" true (hermes >= 140_000);
  check "ordering (paper §1)" true (hc < dare && dare < hermes)

(* --- sharded router ----------------------------------------------------------------- *)

let shard_router_stable_and_bounded () =
  let e = Util.engine () in
  let s =
    Mu.Sharded.create e Util.default_cal Mu.Config.default ~shards:4
      ~make_app:(fun ~shard:_ ~replica:_ -> Mu.Smr.stateless_app Fun.id)
  in
  check_int "shards" 4 (Mu.Sharded.shards s);
  let hits = Array.make 4 0 in
  for i = 0 to 999 do
    let k = Printf.sprintf "key-%d" i in
    let sh = Mu.Sharded.shard_of_key s k in
    check "bounded" true (sh >= 0 && sh < 4);
    check_int "stable" sh (Mu.Sharded.shard_of_key s k);
    hits.(sh) <- hits.(sh) + 1
  done;
  Array.iter (fun h -> check "roughly balanced" true (h > 100 && h < 500)) hits

let suite =
  [
    ("config validation", `Quick, config_validation);
    ("proposal numbers unique", `Quick, proposal_numbers_unique_and_increasing);
    ("bg layout disjoint", `Quick, bg_layout_disjoint);
    ("calibration relationships", `Quick, calibration_relationships);
    ("cq await timeout", `Quick, cq_await_timeout);
    ("metrics totals", `Quick, metrics_totals);
    ("metrics reset/copy/diff", `Quick, metrics_reset_copy_diff);
    ("metrics total/diff round-trip", `Quick, metrics_total_diff_round_trip);
    ("failover models ordering", `Quick, failover_models_ordering);
    ("shard router stable and bounded", `Quick, shard_router_stable_and_bounded);
  ]
