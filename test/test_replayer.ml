(* Focused tests for the replayer (Listing 7 / §4.2) and the recycler
   (§5.3), exercised directly on replica state rather than through the
   full SMR loop. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* A wired cluster with NO fibers running: tests drive state by hand.
   Replica 0 is pre-granted write access everywhere (as an established
   leader would be). *)
let bare_cluster ?(cfg = Mu.Config.default) () =
  let e = Util.engine () in
  let replicas = Mu.Replica.create_cluster e Util.default_cal cfg in
  Array.iter
    (fun (r : Mu.Replica.t) ->
      if r.Mu.Replica.id <> 0 then
        Rdma.Qp.set_access (Mu.Replica.peer r 0).Mu.Replica.repl_qp Rdma.Verbs.access_rw;
      (* Every replica (including 0 itself) regards 0 as the permission
         holder, as after a completed permission round — the recycler
         checks this before posting zeroing writes. *)
      r.Mu.Replica.perm_holder <- Some 0)
    replicas;
  (e, replicas)

let fill_slot (r : Mu.Replica.t) idx s =
  Mu.Log.write_slot_local r.Mu.Replica.log idx ~proposal:8L ~value:(Bytes.of_string s)

(* --- replayer ------------------------------------------------------------- *)

let self_advance_needs_successor () =
  let _e, rs = bare_cluster () in
  let r = rs.(1) in
  fill_slot r 0 "a";
  (* Listing 7: entry 0 is only known committed once entry 1 exists. *)
  check "no successor, no advance" false (Mu.Replayer.self_advance_fuo r);
  check_int "fuo still 0" 0 (Mu.Log.fuo r.Mu.Replica.log);
  fill_slot r 1 "b";
  check "advances with successor" true (Mu.Replayer.self_advance_fuo r);
  check_int "fuo = 1 (entry 1 still pending)" 1 (Mu.Log.fuo r.Mu.Replica.log)

let self_advance_runs_over_prefix () =
  let _e, rs = bare_cluster () in
  let r = rs.(1) in
  for i = 0 to 5 do
    fill_slot r i (string_of_int i)
  done;
  ignore (Mu.Replayer.self_advance_fuo r);
  check_int "fuo reaches the last-but-one entry" 5 (Mu.Log.fuo r.Mu.Replica.log)

let self_advance_stops_at_hole () =
  let _e, rs = bare_cluster () in
  let r = rs.(1) in
  fill_slot r 0 "a";
  fill_slot r 1 "b";
  fill_slot r 3 "d";
  (* hole at 2 *)
  ignore (Mu.Replayer.self_advance_fuo r);
  check_int "stops before the hole" 1 (Mu.Log.fuo r.Mu.Replica.log)

let replayer_fiber_applies_and_publishes_head () =
  let e, rs = bare_cluster () in
  let r = rs.(2) in
  let applied = ref [] in
  r.Mu.Replica.on_commit <- (fun idx v -> applied := (idx, Bytes.to_string v) :: !applied);
  Mu.Replayer.start r;
  Sim.Engine.spawn e ~name:"writer" (fun () ->
      for i = 0 to 3 do
        fill_slot r i (string_of_int i);
        Sim.Engine.sleep e 100_000
      done);
  Sim.Engine.run ~until:3_000_000 e;
  Alcotest.(check (list (pair int string)))
    "applied prefix in order"
    [ (0, "0"); (1, "1"); (2, "2") ]
    (List.rev !applied);
  check_int "log head published" 3
    (Int64.to_int (Rdma.Mr.get_i64 r.Mu.Replica.bg_mr ~off:Mu.Replica.bg_log_head_offset))

let replayer_respects_remote_fuo () =
  (* A leader bumping the follower's FUO releases entries even without a
     successor (the update-followers path). *)
  let e, rs = bare_cluster () in
  let r = rs.(1) in
  let applied = ref 0 in
  r.Mu.Replica.on_commit <- (fun _ _ -> incr applied);
  Mu.Replayer.start r;
  Sim.Engine.spawn e ~name:"leaderish" (fun () ->
      fill_slot r 0 "a";
      fill_slot r 1 "b";
      Mu.Log.set_fuo r.Mu.Replica.log 2);
  Sim.Engine.run ~until:2_000_000 e;
  check_int "both applied via explicit FUO" 2 !applied

let leader_does_not_self_advance () =
  let _e, rs = bare_cluster () in
  let r = rs.(0) in
  r.Mu.Replica.role <- Mu.Replica.Leader;
  fill_slot r 0 "a";
  fill_slot r 1 "b";
  (* The fiber guards on the follower role; the helper itself is exposed
     for tests, so emulate the guard here. *)
  check "fiber guard"
    true
    (r.Mu.Replica.role = Mu.Replica.Leader);
  check_int "leader fuo managed by propose only" 0 (Mu.Log.fuo r.Mu.Replica.log)

(* --- recycler --------------------------------------------------------------- *)

let recycle_zeroes_below_min_head () =
  let e, rs = bare_cluster () in
  let leader = rs.(0) and f1 = rs.(1) and f2 = rs.(2) in
  (* Simulate an established leader with 6 committed entries. *)
  leader.Mu.Replica.role <- Mu.Replica.Leader;
  leader.Mu.Replica.need_new_followers <- false;
  leader.Mu.Replica.confirmed <- [ 1; 2 ];
  Array.iter
    (fun (r : Mu.Replica.t) ->
      for i = 0 to 5 do
        fill_slot r i (string_of_int i)
      done;
      Mu.Log.set_fuo r.Mu.Replica.log 6)
    rs;
  leader.Mu.Replica.applied <- 6;
  (* Followers have applied different prefixes. *)
  f1.Mu.Replica.applied <- 4;
  Rdma.Mr.set_i64 f1.Mu.Replica.bg_mr ~off:Mu.Replica.bg_log_head_offset 4L;
  f2.Mu.Replica.applied <- 2;
  Rdma.Mr.set_i64 f2.Mu.Replica.bg_mr ~off:Mu.Replica.bg_log_head_offset 2L;
  let done_ = ref false in
  Sim.Host.spawn leader.Mu.Replica.host ~name:"recycle" (fun () ->
      Mu.Recycler.recycle_once leader;
      done_ := true);
  Sim.Engine.run ~until:50_000_000 e;
  check "ran" true !done_;
  check_int "minHead = slowest follower" 2 leader.Mu.Replica.zeroed_up_to;
  (* Slots 0 and 1 zeroed everywhere the leader reaches, slot 2 intact. *)
  check "slot 0 zeroed at leader" true (Mu.Log.read_slot leader.Mu.Replica.log 0 = None);
  check "slot 1 zeroed at f1" true (Mu.Log.read_slot f1.Mu.Replica.log 1 = None);
  check "slot 2 intact" true (Mu.Log.read_slot f2.Mu.Replica.log 2 <> None)

let recycle_counts_all_peers_not_just_confirmed () =
  (* The regression behind the kv_failover crash: a peer outside the
     confirmed set still holds the log back. *)
  let e, rs = bare_cluster () in
  let leader = rs.(0) and f1 = rs.(1) and f2 = rs.(2) in
  leader.Mu.Replica.role <- Mu.Replica.Leader;
  leader.Mu.Replica.need_new_followers <- false;
  leader.Mu.Replica.confirmed <- [ 1 ];
  (* f2 NOT confirmed *)
  Array.iter
    (fun (r : Mu.Replica.t) ->
      for i = 0 to 5 do
        fill_slot r i (string_of_int i)
      done;
      Mu.Log.set_fuo r.Mu.Replica.log 6)
    rs;
  leader.Mu.Replica.applied <- 6;
  f1.Mu.Replica.applied <- 6;
  Rdma.Mr.set_i64 f1.Mu.Replica.bg_mr ~off:Mu.Replica.bg_log_head_offset 6L;
  f2.Mu.Replica.applied <- 1;
  Rdma.Mr.set_i64 f2.Mu.Replica.bg_mr ~off:Mu.Replica.bg_log_head_offset 1L;
  Sim.Host.spawn leader.Mu.Replica.host ~name:"recycle" (fun () ->
      Mu.Recycler.recycle_once leader);
  Sim.Engine.run ~until:50_000_000 e;
  check_int "held back by the unconfirmed peer" 1 leader.Mu.Replica.zeroed_up_to;
  check "f2's unapplied entries survive" true (Mu.Log.read_slot f2.Mu.Replica.log 1 <> None)

let recycle_skips_dead_hosts () =
  let e, rs = bare_cluster () in
  let leader = rs.(0) and f1 = rs.(1) and f2 = rs.(2) in
  leader.Mu.Replica.role <- Mu.Replica.Leader;
  leader.Mu.Replica.need_new_followers <- false;
  leader.Mu.Replica.confirmed <- [ 1 ];
  Array.iter
    (fun (r : Mu.Replica.t) ->
      for i = 0 to 3 do
        fill_slot r i (string_of_int i)
      done;
      Mu.Log.set_fuo r.Mu.Replica.log 4)
    rs;
  leader.Mu.Replica.applied <- 4;
  f1.Mu.Replica.applied <- 3;
  Rdma.Mr.set_i64 f1.Mu.Replica.bg_mr ~off:Mu.Replica.bg_log_head_offset 3L;
  (* A dead host never recovers under crash-stop; it must not pin the log
     forever. *)
  Sim.Host.kill_host f2.Mu.Replica.host;
  Sim.Host.spawn leader.Mu.Replica.host ~name:"recycle" (fun () ->
      Mu.Recycler.recycle_once leader);
  Sim.Engine.run ~until:100_000_000 e;
  check_int "dead host skipped" 3 leader.Mu.Replica.zeroed_up_to;
  ignore e

let recycled_slots_are_reusable () =
  let e, rs =
    bare_cluster ~cfg:{ Mu.Config.default with Mu.Config.log_slots = 8; recycle_slack = 2 } ()
  in
  let leader = rs.(0) in
  leader.Mu.Replica.role <- Mu.Replica.Leader;
  leader.Mu.Replica.need_new_followers <- false;
  leader.Mu.Replica.confirmed <- [ 1; 2 ];
  Array.iter
    (fun (r : Mu.Replica.t) ->
      for i = 0 to 5 do
        fill_slot r i (string_of_int i)
      done;
      Mu.Log.set_fuo r.Mu.Replica.log 6;
      r.Mu.Replica.applied <- 6;
      Rdma.Mr.set_i64 r.Mu.Replica.bg_mr ~off:Mu.Replica.bg_log_head_offset 6L)
    rs;
  Sim.Host.spawn leader.Mu.Replica.host ~name:"recycle" (fun () ->
      Mu.Recycler.recycle_once leader);
  Sim.Engine.run ~until:50_000_000 e;
  check_int "all applied slots recycled" 6 leader.Mu.Replica.zeroed_up_to;
  (* Index 8 shares a physical slot with index 0; after zeroing it is
     cleanly writable and readable. *)
  fill_slot leader 8 "wrapped";
  match Mu.Log.read_slot leader.Mu.Replica.log 8 with
  | Some s -> Alcotest.(check string) "wrapped entry" "wrapped" (Bytes.to_string s.Mu.Log.value)
  | None -> Alcotest.fail "wrapped slot unreadable"

let suite =
  [
    ("self-advance needs successor", `Quick, self_advance_needs_successor);
    ("self-advance runs over prefix", `Quick, self_advance_runs_over_prefix);
    ("self-advance stops at hole", `Quick, self_advance_stops_at_hole);
    ("replayer applies and publishes head", `Quick, replayer_fiber_applies_and_publishes_head);
    ("replayer respects remote FUO", `Quick, replayer_respects_remote_fuo);
    ("leader does not self-advance", `Quick, leader_does_not_self_advance);
    ("recycle zeroes below minHead", `Quick, recycle_zeroes_below_min_head);
    ("recycle counts all peers", `Quick, recycle_counts_all_peers_not_just_confirmed);
    ("recycle skips dead hosts", `Quick, recycle_skips_dead_hosts);
    ("recycled slots reusable", `Quick, recycled_slots_are_reusable);
  ]
