(* Tests for lib/modelcheck: pure reference models, the conformance
   checker, history generation, the triple shrinker and the repro
   bundle codec (DESIGN.md §19). *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* --- pure KV model --------------------------------------------------------- *)

let kv_model_semantics () =
  let open Modelcheck.Model in
  let m = Kv.empty in
  let m, r = Kv.apply m ~client:1 ~req_id:1 (Apps.Kv_store.Get { key = "a" }) in
  check "fresh get" true (r = Apps.Kv_store.Not_found);
  let m, r =
    Kv.apply m ~client:1 ~req_id:2 (Apps.Kv_store.Put { key = "a"; value = "x" })
  in
  check "put stored" true (r = Apps.Kv_store.Stored);
  let m, r = Kv.apply m ~client:2 ~req_id:1 (Apps.Kv_store.Get { key = "a" }) in
  check "get sees put" true (r = Apps.Kv_store.Value "x");
  (* Replaying the last (client, req) returns the memo, not a re-execution. *)
  let m, r =
    Kv.apply m ~client:1 ~req_id:2 (Apps.Kv_store.Put { key = "a"; value = "y" })
  in
  check "dup suppressed" true (r = Apps.Kv_store.Stored);
  check "dup did not re-execute" true (Kv.find m "a" = Some "x");
  let m, r = Kv.apply m ~client:1 ~req_id:3 (Apps.Kv_store.Delete { key = "a" }) in
  check "delete deleted" true (r = Apps.Kv_store.Deleted);
  let _, r = Kv.apply m ~client:1 ~req_id:4 (Apps.Kv_store.Delete { key = "a" }) in
  check "second delete not found" true (r = Apps.Kv_store.Not_found)

(* The pure book model must emit event-for-event what the real matching
   engine emits, on generated order flow and on the replace edge cases. *)
let book_model_matches_engine () =
  let rng = Sim.Rng.create 11L in
  let flow = Workload.Generators.order_flow rng in
  let real = Apps.Order_book.create () in
  let model = ref Modelcheck.Model.Book.empty in
  for i = 1 to 400 do
    let cmd = Workload.Generators.next_order flow in
    let real_events = Apps.Exchange.apply real cmd in
    let model', model_events = Modelcheck.Model.Book.apply !model cmd in
    model := model';
    if real_events <> model_events then
      Alcotest.failf "order %d: real %a / model %a" i
        (Fmt.Dump.list Apps.Order_book.pp_event)
        real_events
        (Fmt.Dump.list Apps.Order_book.pp_event)
        model_events
  done;
  check_int "open orders agree" (Apps.Order_book.open_order_count real)
    (Modelcheck.Model.Book.open_orders !model);
  check_int "bid qty agrees"
    (Apps.Order_book.open_qty real Apps.Order_book.Buy)
    (Modelcheck.Model.Book.open_qty !model Apps.Order_book.Buy)

let book_model_replace_rules () =
  let real = Apps.Order_book.create () in
  let model = ref Modelcheck.Model.Book.empty in
  let step cmd =
    let real_events = Apps.Exchange.apply real cmd in
    let model', model_events = Modelcheck.Model.Book.apply !model cmd in
    model := model';
    check "replace events agree" true (real_events = model_events)
  in
  step (Apps.Exchange.Limit { id = 1; side = Apps.Order_book.Buy; price = 100; qty = 10 });
  step (Apps.Exchange.Limit { id = 2; side = Apps.Order_book.Buy; price = 100; qty = 10 });
  (* Pure size decrease keeps priority... *)
  step (Apps.Exchange.Replace { id = 1; price = None; qty = 5 });
  (* ...a price change loses it (cancel + re-enter). *)
  step (Apps.Exchange.Replace { id = 2; price = Some 101; qty = 10 });
  (* Crossing replace matches immediately. *)
  step (Apps.Exchange.Limit { id = 3; side = Apps.Order_book.Sell; price = 102; qty = 4 });
  step (Apps.Exchange.Replace { id = 2; price = Some 102; qty = 10 });
  step (Apps.Exchange.Cancel { id = 1 });
  step (Apps.Exchange.Cancel { id = 99 });
  check_int "books agree at end" (Apps.Order_book.open_order_count real)
    (Modelcheck.Model.Book.open_orders !model)

(* --- history generation ---------------------------------------------------- *)

let history_deterministic_and_mixed () =
  let gen seed =
    Modelcheck.History.generate ~clients:3 ~ops_per_client:20 (Sim.Rng.create seed)
  in
  check "same seed, same history" true (gen 5L = gen 5L);
  check "different seed, different history" true (gen 5L <> gen 6L);
  let h = gen 5L in
  let s = Modelcheck.History.stats h in
  check_int "all ops counted" 60 s.Modelcheck.History.h_ops;
  check "all op kinds exercised" true
    (s.Modelcheck.History.h_puts > 0
    && s.Modelcheck.History.h_gets > 0
    && s.Modelcheck.History.h_deletes > 0);
  (* Request ids are per-client 1..N — the dedup identity the cluster
     relies on. *)
  List.iter
    (fun client ->
      List.iteri
        (fun i (op : Workload.Chaos.scripted_op) ->
          check_int "req ids sequential" (i + 1) op.Workload.Chaos.s_req)
        client)
    h

(* --- conformance checker --------------------------------------------------- *)

let rcd ?reply ~proc ~req ~inv ~res cmd =
  {
    Workload.Chaos.r_proc = proc;
    r_req = req;
    r_invoked = inv;
    r_responded = res;
    r_cmd = cmd;
    r_reply = reply;
  }

let conformance_sequential_pass () =
  let records =
    [
      rcd ~proc:1 ~req:1 ~inv:0 ~res:10
        ~reply:Apps.Kv_store.Stored
        (Apps.Kv_store.Put { key = "a"; value = "x" });
      rcd ~proc:1 ~req:2 ~inv:20 ~res:30
        ~reply:(Apps.Kv_store.Value "x")
        (Apps.Kv_store.Get { key = "a" });
      rcd ~proc:1 ~req:3 ~inv:40 ~res:50 ~reply:Apps.Kv_store.Deleted
        (Apps.Kv_store.Delete { key = "a" });
      rcd ~proc:1 ~req:4 ~inv:60 ~res:70 ~reply:Apps.Kv_store.Not_found
        (Apps.Kv_store.Get { key = "a" });
    ]
  in
  check "conformant" true (Modelcheck.Conformance.check records = None)

let conformance_catches_lost_update () =
  (* The injected-bug shape: a Put acked Stored whose value a later read
     never observes. The register checker cannot fault the [Erase]-free
     equivalent of this; the model checker must. *)
  let records =
    [
      rcd ~proc:1 ~req:1 ~inv:0 ~res:10 ~reply:Apps.Kv_store.Stored
        (Apps.Kv_store.Put { key = "a"; value = "x" });
      rcd ~proc:1 ~req:2 ~inv:20 ~res:30 ~reply:Apps.Kv_store.Not_found
        (Apps.Kv_store.Get { key = "a" });
    ]
  in
  match Modelcheck.Conformance.check records with
  | None -> Alcotest.fail "lost update not caught"
  | Some w ->
    check_str "witness key" "a" w.Modelcheck.Conformance.ckey;
    check_int "witness is the minimal pair" 2
      (List.length w.Modelcheck.Conformance.cops)

let conformance_delete_reply_semantics () =
  (* [Deleted] asserts the key existed: with no possible prior value, the
     reply is non-conformant even though as an abstract register erase it
     would pass. *)
  let records =
    [
      rcd ~proc:1 ~req:1 ~inv:0 ~res:10 ~reply:Apps.Kv_store.Deleted
        (Apps.Kv_store.Delete { key = "a" });
    ]
  in
  check "deleted-without-put caught" true
    (Modelcheck.Conformance.check records <> None)

let conformance_concurrency_flexible () =
  (* A read overlapping a put may order either side of it. *)
  let records =
    [
      rcd ~proc:1 ~req:1 ~inv:0 ~res:100 ~reply:Apps.Kv_store.Stored
        (Apps.Kv_store.Put { key = "a"; value = "x" });
      rcd ~proc:2 ~req:1 ~inv:10 ~res:90 ~reply:Apps.Kv_store.Not_found
        (Apps.Kv_store.Get { key = "a" });
      rcd ~proc:3 ~req:1 ~inv:10 ~res:95
        ~reply:(Apps.Kv_store.Value "x")
        (Apps.Kv_store.Get { key = "a" });
    ]
  in
  check "both orders admitted" true (Modelcheck.Conformance.check records = None)

let conformance_pending_write_harmless () =
  (* An unanswered put may be linearized last, so it can never manufacture
     a violation on its own. *)
  let records =
    [
      rcd ~proc:1 ~req:1 ~inv:0 ~res:max_int
        (Apps.Kv_store.Put { key = "a"; value = "x" });
      rcd ~proc:2 ~req:1 ~inv:5 ~res:20 ~reply:Apps.Kv_store.Not_found
        (Apps.Kv_store.Get { key = "a" });
    ]
  in
  check "pending write placed last" true
    (Modelcheck.Conformance.check records = None)

(* --- linearizability witness (workload layer) ------------------------------ *)

let lin_op ~proc ~inv ~res ~key kind =
  { Workload.Linearizability.proc; invoked = inv; responded = res; key; kind }

let witness_minimal_counterexample () =
  (* Three ops of noise around a two-op violation: witness keeps the pair. *)
  let ops =
    [
      lin_op ~proc:1 ~inv:0 ~res:10 ~key:"a" (Workload.Linearizability.Write "x");
      lin_op ~proc:1 ~inv:20 ~res:30 ~key:"b" (Workload.Linearizability.Write "y");
      lin_op ~proc:2 ~inv:40 ~res:50 ~key:"b"
        (Workload.Linearizability.Read (Some "y"));
      lin_op ~proc:2 ~inv:60 ~res:70 ~key:"a" (Workload.Linearizability.Read None);
      lin_op ~proc:2 ~inv:80 ~res:90 ~key:"a"
        (Workload.Linearizability.Read (Some "x"));
    ]
  in
  check "history fails" false (Workload.Linearizability.check ops);
  match Workload.Linearizability.witness ops with
  | None -> Alcotest.fail "no witness for failing history"
  | Some w ->
    check_str "failing key" "a" w.Workload.Linearizability.wkey;
    (* The minimizer drops the trailing Read (Some x): the acked write
       plus the read that misses it is already a counterexample. *)
    check_int "minimal size" 2 (List.length w.Workload.Linearizability.wops);
    check "witness itself fails" false
      (Workload.Linearizability.check w.Workload.Linearizability.wops);
    check "passing history has no witness" true
      (Workload.Linearizability.witness
         [
           lin_op ~proc:1 ~inv:0 ~res:10 ~key:"a"
             (Workload.Linearizability.Write "x");
         ]
      = None)

let witness_erase_semantics () =
  (* Erase then read-none is fine; read of the erased value after the
     erase's response is not. *)
  let ok =
    [
      lin_op ~proc:1 ~inv:0 ~res:10 ~key:"a" (Workload.Linearizability.Write "x");
      lin_op ~proc:1 ~inv:20 ~res:30 ~key:"a" Workload.Linearizability.Erase;
      lin_op ~proc:1 ~inv:40 ~res:50 ~key:"a" (Workload.Linearizability.Read None);
    ]
  in
  check "erase linearizable" true (Workload.Linearizability.check ok);
  let bad =
    [
      lin_op ~proc:1 ~inv:0 ~res:10 ~key:"a" (Workload.Linearizability.Write "x");
      lin_op ~proc:1 ~inv:20 ~res:30 ~key:"a" Workload.Linearizability.Erase;
      lin_op ~proc:1 ~inv:40 ~res:50 ~key:"a"
        (Workload.Linearizability.Read (Some "x"));
    ]
  in
  check "read after erase rejected" false (Workload.Linearizability.check bad)

(* --- scripted chaos runs --------------------------------------------------- *)

let op think req cmd = { Workload.Chaos.s_think = think; s_req = req; s_cmd = cmd }

let scripted_run_records_replies () =
  let script =
    [
      [
        op 0 1 (Apps.Kv_store.Put { key = "a"; value = "x" });
        op 100_000 2 (Apps.Kv_store.Get { key = "a" });
        op 0 3 (Apps.Kv_store.Delete { key = "a" });
      ];
      [ op 50_000 1 (Apps.Kv_store.Get { key = "b" }) ];
    ]
  in
  let scenario = { Faults.Scenario.name = "none"; events = [] } in
  let o = Workload.Chaos.run ~script ~seed:3L ~n:3 scenario in
  check "completed" true o.Workload.Chaos.completed;
  check_int "every op recorded" 4 (List.length o.Workload.Chaos.record);
  check "every op answered" true
    (List.for_all
       (fun (r : Workload.Chaos.recorded) -> r.r_reply <> None)
       o.Workload.Chaos.record);
  check "record sorted by invocation" true
    (let rec sorted = function
       | (a : Workload.Chaos.recorded) :: (b : Workload.Chaos.recorded) :: rest
         ->
         (a.r_invoked, a.r_proc) <= (b.r_invoked, b.r_proc)
         && sorted (b :: rest)
       | _ -> true
     in
     sorted o.Workload.Chaos.record);
  let verdict, _ = Modelcheck.Conformance.judge o in
  check "fault-free run conformant" true (verdict = Modelcheck.Conformance.Pass)

let scripted_run_deterministic () =
  let script =
    [ [ op 0 1 (Apps.Kv_store.Put { key = "a"; value = "x" }) ] ]
  in
  let scenario = Faults.Scenario.crash_leader ~n:3 in
  let r () = Workload.Chaos.run ~script ~seed:9L ~n:3 scenario in
  check "same seed, same record" true
    ((r ()).Workload.Chaos.record = (r ()).Workload.Chaos.record)

let crash_leader_scripted_conformant () =
  let history =
    Modelcheck.History.generate ~clients:2 ~ops_per_client:6 ~think_max:4_000_000
      (Sim.Rng.create 17L)
  in
  let t =
    {
      Modelcheck.Shrink.t_seed = 17L;
      t_n = 3;
      t_inject = 0;
      t_scenario = Faults.Scenario.crash_leader ~n:3;
      t_history = history;
    }
  in
  let r = Modelcheck.Shrink.run t in
  check "conformant across fail-over" true
    (r.Modelcheck.Shrink.verdict = Modelcheck.Conformance.Pass)

let rejoin_survives_minority_self_claimant () =
  (* Regression for a liveness bug this harness found: an isolated
     minority replica elects itself and keeps the Leader role forever
     (nothing heals the partition), so [serving_leader] saw two running
     claimants and returned [None] — starving a concurrent rejoin until
     the harness gave up, with the restored log stuck at applied=0 <
     fuo=1 over a recycled slot ("hole below the FUO"). The minimized
     bundle is embedded verbatim; the run must now pass, with replica 1
     reaching parity. *)
  let bundle_json =
    {|{"schema":"mu-verify-repro/1","seed":"-4476619285473380616","n":5,"inject":0,"scenario":{"name":"random-4","events":[{"at":5086597,"action":"partition","a":[3],"b":[0,1,2,4]},{"at":25057667,"action":"stop_process","pid":1},{"at":29714380,"action":"restart","pid":1}]},"history":[[{"think":793592,"req":1,"cmd":{"op":"put","key":"b","value":"v1.1"}}]],"verdict":"invariant-violation"}|}
  in
  match Modelcheck.Repro.of_string bundle_json with
  | Error e -> Alcotest.fail e
  | Ok bundle ->
    let r = Modelcheck.Shrink.run bundle.Modelcheck.Repro.b_triple in
    check "run passes" true
      (r.Modelcheck.Shrink.verdict = Modelcheck.Conformance.Pass);
    check_int "replica 1 rejoined" 1
      (List.length r.Modelcheck.Shrink.outcome.Workload.Chaos.rejoins)

(* --- sweep, injected bug, shrinking ---------------------------------------- *)

let fault_free_like_sweep_passes () =
  let report =
    Modelcheck.Verify.sweep ~cases:4 ~ns:[ 3 ] ~clients:2 ~ops_per_client:5
      ~seed:23L ()
  in
  check_int "all cases pass" 0 report.Modelcheck.Verify.failed;
  check "no bundle emitted" true (report.Modelcheck.Verify.minimized = None);
  check_int "coverage covers every case" 4
    report.Modelcheck.Verify.coverage.Faults.Scenario.scenarios;
  check "op mix recorded" true
    (report.Modelcheck.Verify.op_stats.Modelcheck.History.h_ops = 4 * 2 * 5)

let injected_bug_caught_and_shrunk () =
  (* The self-test (DESIGN.md §19): with every 3rd Put silently lost by
     all replicas, invariants stay green but a generated case must catch
     the stale read and shrink to a tiny repro. *)
  let report =
    Modelcheck.Verify.sweep ~cases:3 ~ns:[ 3 ] ~clients:2 ~ops_per_client:6
      ~inject:3 ~budget:600 ~seed:41L ()
  in
  check "bug caught" true (report.Modelcheck.Verify.failed > 0);
  match report.Modelcheck.Verify.minimized with
  | None -> Alcotest.fail "no minimized bundle"
  | Some (bundle, shrunk) ->
    check "shrink reached fixpoint" false shrunk.Modelcheck.Shrink.exhausted;
    check "minimized still fails" true
      (Modelcheck.Conformance.failing bundle.Modelcheck.Repro.b_verdict);
    let t = bundle.Modelcheck.Repro.b_triple in
    check "<= 6 ops" true (Modelcheck.Shrink.ops t <= 6);
    check "<= 2 fault actions" true
      (List.length t.Modelcheck.Shrink.t_scenario.Faults.Scenario.events <= 2);
    (* Re-running the minimized triple independently still fails. *)
    let r = Modelcheck.Shrink.run t in
    check "independent rerun fails" true
      (Modelcheck.Conformance.failing r.Modelcheck.Shrink.verdict)

let shrink_deterministic () =
  (* Same failing triple, shrunk twice, must yield byte-identical
     bundles. *)
  let go () =
    let report =
      Modelcheck.Verify.sweep ~cases:1 ~ns:[ 3 ] ~clients:2 ~ops_per_client:6
        ~inject:1 ~budget:600 ~seed:7L ()
    in
    match report.Modelcheck.Verify.minimized with
    | Some (bundle, _) -> Modelcheck.Repro.to_string bundle
    | None -> Alcotest.fail "expected a failure with inject=1"
  in
  check_str "same minimized bundle" (go ()) (go ())

let passing_triple_rejected_by_shrinker () =
  let t =
    {
      Modelcheck.Shrink.t_seed = 5L;
      t_n = 3;
      t_inject = 0;
      t_scenario = { Faults.Scenario.name = "none"; events = [] };
      t_history = [ [ op 0 1 (Apps.Kv_store.Put { key = "a"; value = "x" }) ] ];
    }
  in
  let r = Modelcheck.Shrink.run t in
  check "triple passes" true (r.Modelcheck.Shrink.verdict = Modelcheck.Conformance.Pass);
  check "shrinker refuses passing triple" true
    (try
       ignore (Modelcheck.Shrink.shrink t r);
       false
     with Invalid_argument _ -> true)

(* --- repro bundle codec ---------------------------------------------------- *)

let sample_bundle () =
  {
    Modelcheck.Repro.b_triple =
      {
        Modelcheck.Shrink.t_seed = -3721L;
        t_n = 3;
        t_inject = 3;
        t_scenario = Faults.Scenario.kill_restart ~n:3;
        t_history =
          [
            [
              op 0 1 (Apps.Kv_store.Put { key = "a"; value = "v1.1" });
              op 250_000 2 (Apps.Kv_store.Get { key = "a" });
            ];
            [ op 10 1 (Apps.Kv_store.Delete { key = "b" }) ];
          ];
      };
    b_verdict = Modelcheck.Conformance.Not_conformant;
  }

let repro_roundtrip () =
  let b = sample_bundle () in
  let s = Modelcheck.Repro.to_string b in
  match Modelcheck.Repro.of_string s with
  | Error e -> Alcotest.failf "roundtrip parse failed: %s" e
  | Ok b' ->
    check "structural roundtrip" true (b = b');
    check_str "byte-stable reprint" s (Modelcheck.Repro.to_string b');
    check "rejects unknown schema" true
      (Result.is_error
         (Modelcheck.Repro.of_string {|{"schema":"mu-verify-repro/999"}|}))

let repro_golden_byte_stable () =
  (* The committed bundle must parse and re-print to the identical bytes:
     any codec drift breaks CI's byte-compare replay of old repros. *)
  let ic = open_in_bin "golden/verify_repro.json" in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  match Modelcheck.Repro.of_string s with
  | Error e -> Alcotest.failf "golden bundle does not parse: %s" e
  | Ok b -> check_str "golden bytes stable" s (Modelcheck.Repro.to_string b)

let replay_reemits_bundle () =
  let report =
    Modelcheck.Verify.sweep ~cases:1 ~ns:[ 3 ] ~clients:2 ~ops_per_client:6
      ~inject:1 ~budget:600 ~seed:7L ()
  in
  match report.Modelcheck.Verify.minimized with
  | None -> Alcotest.fail "expected a failure with inject=1"
  | Some (bundle, _) ->
    let r, bytes = Modelcheck.Verify.replay bundle in
    check "replay verdict matches" true
      (r.Modelcheck.Shrink.verdict = bundle.Modelcheck.Repro.b_verdict);
    check_str "replay re-emits byte-identical bundle"
      (Modelcheck.Repro.to_string bundle)
      bytes

(* --- coverage -------------------------------------------------------------- *)

let sweep_coverage_no_silent_gaps () =
  let c =
    Faults.Scenario.coverage
      [
        Faults.Scenario.crash_leader ~n:3;
        Faults.Scenario.partition_leader ~n:3;
        Faults.Scenario.kill_restart ~n:3;
      ]
  in
  check_int "scenarios counted" 3 c.Faults.Scenario.scenarios;
  (* Every action kind is present, exercised or not. *)
  check_int "all kinds listed" 13 (List.length c.Faults.Scenario.action_counts);
  check "zeros are explicit" true
    (List.exists (fun (_, n) -> n = 0) c.Faults.Scenario.action_counts);
  check "partition shape recorded" true
    (List.mem_assoc "1|2" c.Faults.Scenario.partition_shapes);
  check_int "one crash" 1 c.Faults.Scenario.crashes;
  check_int "one restart" 1 c.Faults.Scenario.restarts;
  check "restart fraction" true (Faults.Scenario.restart_fraction c = 1.0)

let chaos_sweep_reports_coverage () =
  let s = Workload.Chaos.sweep ~count:2 ~ns:[ 3 ] ~seed:3L () in
  check_int "coverage spans the sweep" 2
    s.Workload.Chaos.coverage.Faults.Scenario.scenarios;
  check_int "sweep ran" 2 s.Workload.Chaos.runs

let suite =
  [
    ("kv model semantics", `Quick, kv_model_semantics);
    ("book model matches engine", `Quick, book_model_matches_engine);
    ("book model replace rules", `Quick, book_model_replace_rules);
    ("history generator", `Quick, history_deterministic_and_mixed);
    ("conformance: sequential pass", `Quick, conformance_sequential_pass);
    ("conformance: lost update caught", `Quick, conformance_catches_lost_update);
    ("conformance: delete reply semantics", `Quick, conformance_delete_reply_semantics);
    ("conformance: concurrency flexible", `Quick, conformance_concurrency_flexible);
    ("conformance: pending write harmless", `Quick, conformance_pending_write_harmless);
    ("lin witness: minimal counterexample", `Quick, witness_minimal_counterexample);
    ("lin witness: erase semantics", `Quick, witness_erase_semantics);
    ("scripted run records replies", `Quick, scripted_run_records_replies);
    ("scripted run deterministic", `Quick, scripted_run_deterministic);
    ("crash-leader scripted conformant", `Quick, crash_leader_scripted_conformant);
    ("rejoin survives minority self-claimant", `Quick,
      rejoin_survives_minority_self_claimant);
    ("fault-free sweep passes", `Quick, fault_free_like_sweep_passes);
    ("injected bug caught and shrunk", `Slow, injected_bug_caught_and_shrunk);
    ("shrink deterministic", `Slow, shrink_deterministic);
    ("passing triple rejected by shrinker", `Quick, passing_triple_rejected_by_shrinker);
    ("repro roundtrip", `Quick, repro_roundtrip);
    ("repro golden byte stable", `Quick, repro_golden_byte_stable);
    ("replay re-emits bundle", `Slow, replay_reemits_bundle);
    ("scenario coverage explicit", `Quick, sweep_coverage_no_silent_gaps);
    ("chaos sweep coverage", `Quick, chaos_sweep_reports_coverage);
  ]
