(* Tests for membership changes (§5.4): removing and adding replicas via
   configuration entries and checkpoint transfer. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let with_smr ?(make_app = fun _ -> Apps.Kv_store.smr_app ()) f =
  let e = Util.engine () in
  let smr = Mu.Smr.create e Util.default_cal Mu.Config.default ~make_app in
  Mu.Smr.start smr;
  let result = ref None in
  Sim.Engine.spawn e ~name:"driver" (fun () ->
      result := Some (f e smr);
      Mu.Smr.stop smr;
      Sim.Engine.halt e);
  Sim.Engine.run ~until:120_000_000_000 e;
  match !result with Some r -> r | None -> Alcotest.fail "scenario did not finish"

let put smr k v i =
  ignore
    (Mu.Smr.submit smr
       (Apps.Kv_store.encode_command ~client:1 ~req_id:i
          (Apps.Kv_store.Put { key = k; value = v })))

let get smr k i =
  match
    Apps.Kv_store.decode_reply
      (Mu.Smr.submit smr
         (Apps.Kv_store.encode_command ~client:1 ~req_id:i (Apps.Kv_store.Get { key = k })))
  with
  | Some (Apps.Kv_store.Value v) -> Some v
  | _ -> None

let remove_follower () =
  with_smr (fun e smr ->
      Mu.Smr.wait_live smr;
      put smr "a" "1" 1;
      Mu.Smr.remove_replica smr ~id:2;
      let r2 = Mu.Smr.replica smr 2 in
      Util.wait_for (fun () -> r2.Mu.Replica.removed) e;
      check "r2 stopped" true r2.Mu.Replica.stop;
      (* The survivors keep working as a 2-group. *)
      put smr "b" "2" 2;
      Alcotest.(check (option string)) "state intact" (Some "2") (get smr "b" 3);
      let r0 = Mu.Smr.replica smr 0 in
      check_int "r0 now has one peer" 1 (List.length r0.Mu.Replica.peers))

let removed_replica_ignored_by_election () =
  with_smr (fun e smr ->
      Mu.Smr.wait_live smr;
      Mu.Smr.remove_replica smr ~id:2;
      let r2 = Mu.Smr.replica smr 2 in
      Util.wait_for (fun () -> r2.Mu.Replica.removed) e;
      Sim.Engine.sleep e 3_000_000;
      let r0 = Mu.Smr.replica smr 0 in
      check "r0 still leads" true (Mu.Replica.is_leader r0);
      check "r2 not in alive table" true (not (Hashtbl.mem r0.Mu.Replica.alive 2)))

let add_replica_receives_state () =
  with_smr (fun e smr ->
      Mu.Smr.wait_live smr;
      for i = 1 to 5 do
        put smr (Printf.sprintf "k%d" i) (Printf.sprintf "v%d" i) i
      done;
      let newcomer = Mu.Smr.add_replica smr () in
      check_int "new id" 3 newcomer.Mu.Replica.id;
      (* New writes replicate to the newcomer too. *)
      put smr "after" "join" 6;
      put smr "after2" "join2" 7;
      Util.wait_for
        (fun () ->
          match Mu.Log.read_slot newcomer.Mu.Replica.log (Mu.Log.fuo newcomer.Mu.Replica.log) with
          | Some _ -> true
          | None -> newcomer.Mu.Replica.applied > 5)
        e;
      Sim.Engine.sleep e 3_000_000;
      check "newcomer applying" true (newcomer.Mu.Replica.applied > 0);
      ignore e)

let add_then_remove_leader_failover () =
  with_smr (fun e smr ->
      Mu.Smr.wait_live smr;
      put smr "x" "1" 1;
      let _newcomer = Mu.Smr.add_replica smr () in
      put smr "y" "2" 2;
      (* Now kill the leader; the 4-group must elect replica 1 and keep
         serving. *)
      let r0 = Mu.Smr.replica smr 0 in
      Sim.Host.pause r0.Mu.Replica.host;
      Alcotest.(check (option string)) "served after failover" (Some "2") (get smr "y" 3);
      Sim.Host.resume r0.Mu.Replica.host;
      ignore e)

(* §5.4 under an asymmetric partition: host 1 cannot hear host 2 (so its
   failure detector scores 2 dead) while the leader still reaches both.
   Remove and add still commit through the leader's quorum — membership
   changes don't require symmetric connectivity. *)
let membership_changes_under_asymmetric_partition () =
  with_smr (fun e smr ->
      Mu.Smr.wait_live smr;
      put smr "a" "1" 1;
      let f = Sim.Engine.fabric e in
      Sim.Fabric.block f ~src:2 ~dst:1;
      Mu.Smr.remove_replica smr ~id:2;
      let r2 = Mu.Smr.replica smr 2 in
      Util.wait_for (fun () -> r2.Mu.Replica.removed) e;
      put smr "b" "2" 2;
      Alcotest.(check (option string)) "2-group serves" (Some "2") (get smr "b" 3);
      (* Growing the cluster works under the same stale half-link. *)
      let newcomer = Mu.Smr.add_replica smr () in
      check_int "new id" 3 newcomer.Mu.Replica.id;
      put smr "c" "3" 4;
      put smr "d" "4" 5;
      Util.wait_for (fun () -> newcomer.Mu.Replica.applied > 0) e;
      Sim.Fabric.unblock f ~src:2 ~dst:1;
      check "no invariant violations" true
        (Mu.Invariants.check_all
           (Array.of_list
              (List.filter
                 (fun (r : Mu.Replica.t) -> not r.Mu.Replica.removed)
                 (Array.to_list (Mu.Smr.replicas smr))))
        = []))

(* A *removed* replica rejoining under its old id goes through the
   re-admission path: a §5.4 Add configuration entry commits before the
   rejoin pipeline runs, and the new incarnation is a member again. *)
let removed_replica_rejoins_same_id () =
  with_smr (fun e smr ->
      Mu.Smr.wait_live smr;
      for i = 1 to 5 do
        put smr (Printf.sprintf "k%d" i) "v" i
      done;
      Mu.Smr.remove_replica smr ~id:2;
      let r2 = Mu.Smr.replica smr 2 in
      Util.wait_for (fun () -> r2.Mu.Replica.removed) e;
      put smr "while-out" "w" 6;
      Mu.Smr.restart_replica smr ~id:2;
      Util.wait_for (fun () -> Mu.Smr.rejoins smr <> []) e;
      let r2' = Mu.Smr.replica smr 2 in
      check "fresh incarnation" true (r2' != r2);
      check "no longer removed" true (not r2'.Mu.Replica.removed);
      check "member again on the leader" true
        (List.exists
           (fun (p : Mu.Replica.peer) -> p.Mu.Replica.pid = 2)
           (Mu.Smr.replica smr 0).Mu.Replica.peers);
      let rj = List.hd (Mu.Smr.rejoins smr) in
      check "caught up the history decided while out" true
        (rj.Mu.Smr.entries_pulled > 0);
      (* It participates again: new writes reach its log (a follower's
         FUO trails the last commit by one until the next accept, so the
         target is a captured FUO, pushed over by one more write). *)
      put smr "after" "rejoin" 7;
      let l () = Option.get (Mu.Smr.serving_leader smr) in
      let target = Mu.Log.fuo (l ()).Mu.Replica.log in
      put smr "post" "x" 8;
      Util.wait_for (fun () -> Mu.Log.fuo r2'.Mu.Replica.log >= target) e)

let suite =
  [
    ("remove follower", `Quick, remove_follower);
    ("removed replica ignored by election", `Quick, removed_replica_ignored_by_election);
    ("add replica receives state", `Quick, add_replica_receives_state);
    ("add then remove leader failover", `Quick, add_then_remove_leader_failover);
    ( "membership changes under asymmetric partition",
      `Quick,
      membership_changes_under_asymmetric_partition );
    ("removed replica rejoins same id", `Quick, removed_replica_rejoins_same_id);
  ]
