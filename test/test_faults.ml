(* Tests for the fault-injection subsystem (lib/faults) and the chaos
   harness: scenario JSON round-trips, validation, the named library, the
   randomized generator's safety properties, and the determinism guarantee
   (same seed + scenario => byte-identical traces). *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* A scenario exercising every action constructor. *)
let kitchen_sink : Faults.Scenario.t =
  {
    Faults.Scenario.name = "kitchen-sink";
    events =
      [
        { at = 1_000_000; action = Faults.Scenario.Pause 1 };
        { at = 2_000_000; action = Faults.Scenario.Resume 1 };
        { at = 3_000_000; action = Faults.Scenario.Stop_process 2 };
        { at = 4_000_000; action = Faults.Scenario.Kill_host 2 };
        { at = 5_000_000; action = Faults.Scenario.Partition ([ 0 ], [ 1; 2 ]) };
        { at = 6_000_000; action = Faults.Scenario.Block { src = 0; dst = 1 } };
        { at = 7_000_000; action = Faults.Scenario.Unblock { src = 0; dst = 1 } };
        { at = 8_000_000; action = Faults.Scenario.Delay { src = 1; dst = 0; ns = 5_000 } };
        { at = 9_000_000; action = Faults.Scenario.Loss { src = 0; dst = 2; p = 0.25 } };
        { at = 10_000_000; action = Faults.Scenario.Dup { src = 2; dst = 0; p = 0.1 } };
        { at = 11_000_000; action = Faults.Scenario.Heal };
        { at = 12_000_000; action = Faults.Scenario.Perm_fail { pid = 0; forced = true } };
        { at = 13_000_000; action = Faults.Scenario.Perm_fail { pid = 0; forced = false } };
        { at = 14_000_000; action = Faults.Scenario.Restart 2 };
      ];
  }

let json_round_trip () =
  let s = Faults.Scenario.to_string kitchen_sink in
  match Faults.Scenario.of_string s with
  | Error m -> Alcotest.fail m
  | Ok back ->
    check "round-trips structurally" true (back = kitchen_sink);
    (* Printing is deterministic: a second trip yields identical bytes. *)
    Alcotest.(check string) "stable bytes" s (Faults.Scenario.to_string back)

let json_rejects_garbage () =
  let bad s =
    match Faults.Scenario.of_string s with Error _ -> true | Ok _ -> false
  in
  check "not json" true (bad "{nope");
  check "not an object" true (bad "[1,2]");
  check "missing events" true (bad {|{"name":"x"}|});
  check "unknown action" true
    (bad {|{"name":"x","events":[{"at":1,"action":"explode","pid":0}]}|});
  check "missing pid" true (bad {|{"name":"x","events":[{"at":1,"action":"pause"}]}|})

let validation_catches_bad_scenarios () =
  let invalid (s : Faults.Scenario.t) =
    match Faults.Scenario.validate ~n:3 s with Error _ -> true | Ok () -> false
  in
  check "pid out of range" true
    (invalid
       { name = "bad"; events = [ { at = 1; action = Faults.Scenario.Pause 7 } ] });
  check "negative time" true
    (invalid
       { name = "bad"; events = [ { at = -1; action = Faults.Scenario.Heal } ] });
  check "self loop" true
    (invalid
       {
         name = "bad";
         events = [ { at = 1; action = Faults.Scenario.Block { src = 1; dst = 1 } } ];
       });
  check "probability > 1" true
    (invalid
       {
         name = "bad";
         events =
           [ { at = 1; action = Faults.Scenario.Loss { src = 0; dst = 1; p = 1.5 } } ];
       });
  check "kitchen sink is valid" true
    (match Faults.Scenario.validate ~n:3 kitchen_sink with Ok () -> true | Error _ -> false)

(* Stop-vs-kill-vs-restart: restart is only valid for a host the schedule
   has already taken down (stop_process or kill_host), tracked in firing
   order — a restart of a running host is a scenario bug, caught up
   front rather than silently ignored at injection time. *)
let restart_validation () =
  let valid events =
    match Faults.Scenario.validate ~n:3 { name = "r"; events } with
    | Ok () -> true
    | Error _ -> false
  in
  check "restart after kill" true
    (valid
       [
         { at = 1; action = Faults.Scenario.Kill_host 1 };
         { at = 2; action = Faults.Scenario.Restart 1 };
       ]);
  check "restart after stop" true
    (valid
       [
         { at = 1; action = Faults.Scenario.Stop_process 2 };
         { at = 2; action = Faults.Scenario.Restart 2 };
       ]);
  check "down-restart cycle can repeat" true
    (valid
       [
         { at = 1; action = Faults.Scenario.Kill_host 1 };
         { at = 2; action = Faults.Scenario.Restart 1 };
         { at = 3; action = Faults.Scenario.Stop_process 1 };
         { at = 4; action = Faults.Scenario.Restart 1 };
       ]);
  check "restart of never-downed host rejected" false
    (valid [ { at = 1; action = Faults.Scenario.Restart 0 } ]);
  check "restart of a different host rejected" false
    (valid
       [
         { at = 1; action = Faults.Scenario.Kill_host 1 };
         { at = 2; action = Faults.Scenario.Restart 2 };
       ]);
  check "double restart without re-down rejected" false
    (valid
       [
         { at = 1; action = Faults.Scenario.Kill_host 1 };
         { at = 2; action = Faults.Scenario.Restart 1 };
         { at = 3; action = Faults.Scenario.Restart 1 };
       ]);
  (* Firing order, not listing order: the restart scheduled before its
     kill is rejected even when listed after it. *)
  check "restart scheduled before the kill rejected" false
    (valid
       [
         { at = 5; action = Faults.Scenario.Kill_host 1 };
         { at = 2; action = Faults.Scenario.Restart 1 };
       ])

let named_scenarios_resolve () =
  check "crash-leader" true (Faults.Scenario.by_name ~n:3 "crash-leader" <> None);
  check "partition-leader" true (Faults.Scenario.by_name ~n:3 "partition-leader" <> None);
  check "lossy-fabric" true (Faults.Scenario.by_name ~n:5 "lossy-fabric" <> None);
  check "kill-restart" true (Faults.Scenario.by_name ~n:3 "kill-restart" <> None);
  check "unknown" true (Faults.Scenario.by_name ~n:3 "meteor-strike" = None);
  List.iter
    (fun name ->
      match Faults.Scenario.by_name ~n:3 name with
      | None -> Alcotest.fail ("named scenario vanished: " ^ name)
      | Some s -> (
        match Faults.Scenario.validate ~n:3 s with
        | Ok () -> ()
        | Error m -> Alcotest.fail (name ^ ": " ^ m)))
    Faults.Scenario.named

(* Generated scenarios must always be valid and liveness-safe enough for
   the sweep: every event inside the horizon, and permanent crashes
   bounded by the minority budget (a majority must survive). *)
let generator_produces_valid_scenarios () =
  List.iter
    (fun seed ->
      List.iter
        (fun n ->
          let s =
            Faults.Scenario.generate (Sim.Rng.create seed) ~n ~horizon:40_000_000
          in
          (match Faults.Scenario.validate ~n s with
          | Ok () -> ()
          | Error m -> Alcotest.fail (Printf.sprintf "seed %Ld n %d: %s" seed n m));
          (* A restarted host hands its crash-budget slot back, so the
             liveness bound is on *concurrently* down hosts, walked in
             firing order — not on the total count of stop/kill events. *)
          let sorted =
            List.stable_sort
              (fun a b -> compare a.Faults.Scenario.at b.Faults.Scenario.at)
              s.Faults.Scenario.events
          in
          let max_down, _ =
            List.fold_left
              (fun (mx, down) { Faults.Scenario.action; _ } ->
                match action with
                | Faults.Scenario.Stop_process _ | Faults.Scenario.Kill_host _ ->
                  (max mx (down + 1), down + 1)
                | Faults.Scenario.Restart _ -> (mx, down - 1)
                | _ -> (mx, down))
              (0, 0) sorted
          in
          check "concurrent crashes within minority budget" true
            (max_down <= (n - 1) / 2);
          List.iter
            (fun { Faults.Scenario.at; _ } ->
              check "event inside horizon" true (at >= 0 && at <= 40_000_000))
            s.Faults.Scenario.events)
        [ 3; 5 ])
    [ 1L; 2L; 3L; 42L; -7L; 123456789L ]

(* The tentpole guarantee: the same seed and scenario replay to the byte.
   Two full chaos runs (cluster + clients + injected faults) must emit
   identical traces; a different seed must not. *)
let chaos_run_is_deterministic () =
  let scenario =
    Option.get (Faults.Scenario.by_name ~n:3 "crash-leader")
  in
  let trace seed =
    let tr = Trace.Tracer.create ~capacity:65536 () in
    let o = Workload.Chaos.run ~trace:tr ~seed ~n:3 scenario in
    (Trace.Tracer.chrome_string tr, o)
  in
  let t1, o1 = trace 7L in
  let t2, o2 = trace 7L in
  Alcotest.(check string) "same seed, identical trace bytes" t1 t2;
  check "same outcome" true (Workload.Chaos.passed o1 = Workload.Chaos.passed o2);
  check_int "same op count" o1.Workload.Chaos.ops o2.Workload.Chaos.ops;
  let t3, _ = trace 8L in
  check "different seed diverges" true (t1 <> t3)

let chaos_named_scenarios_pass () =
  List.iter
    (fun name ->
      let scenario = Option.get (Faults.Scenario.by_name ~n:3 name) in
      let o = Workload.Chaos.run ~seed:11L ~n:3 scenario in
      if not (Workload.Chaos.passed o) then
        Alcotest.fail (Fmt.str "%s: %a" name Workload.Chaos.pp_outcome o))
    Faults.Scenario.named

(* A minimized repro replays the exact run it came from. *)
let repro_round_trips_and_replays () =
  let scenario = Option.get (Faults.Scenario.by_name ~n:3 "partition-leader") in
  let o = Workload.Chaos.run ~seed:21L ~n:3 scenario in
  let repro = Workload.Chaos.repro_json o in
  match Workload.Chaos.parse_repro repro with
  | Error m -> Alcotest.fail m
  | Ok (seed, n, scenario') ->
    check "seed preserved" true (seed = 21L);
    check_int "n preserved" 3 n;
    check "scenario preserved" true (scenario' = scenario);
    let o' = Workload.Chaos.run ~seed ~n scenario' in
    check_int "replay: same ops" o.Workload.Chaos.ops o'.Workload.Chaos.ops;
    check_int "replay: same committed" o.Workload.Chaos.committed
      o'.Workload.Chaos.committed;
    check "replay: same verdict" true
      (Workload.Chaos.passed o = Workload.Chaos.passed o')

(* A scenario that kills a majority must stall — and the stalled run must
   still be judged safe (no invariant violation, incomplete ops handled)
   rather than crash the harness. *)
let chaos_majority_loss_stalls_safely () =
  let scenario =
    {
      Faults.Scenario.name = "kill-majority";
      events =
        [
          (* Before the cluster can even elect: no majority ever forms. *)
          { at = 1_000; action = Faults.Scenario.Kill_host 0 };
          { at = 1_000; action = Faults.Scenario.Kill_host 1 };
        ];
    }
  in
  let o = Workload.Chaos.run ~seed:5L ~n:3 ~horizon:300_000_000 scenario in
  check "stalled" true (not o.Workload.Chaos.completed);
  check "still linearizable" true o.Workload.Chaos.linearizable;
  check "no invariant violations" true (o.Workload.Chaos.violations = [])

let suite =
  [
    ("scenario json round-trip", `Quick, json_round_trip);
    ("scenario json rejects garbage", `Quick, json_rejects_garbage);
    ("scenario validation", `Quick, validation_catches_bad_scenarios);
    ("restart validation (stop/kill state machine)", `Quick, restart_validation);
    ("named scenarios resolve", `Quick, named_scenarios_resolve);
    ("generator produces valid scenarios", `Quick, generator_produces_valid_scenarios);
    ("chaos run deterministic (trace bytes)", `Quick, chaos_run_is_deterministic);
    ("named scenarios pass chaos", `Quick, chaos_named_scenarios_pass);
    ("repro round-trips and replays", `Quick, repro_round_trips_and_replays);
    ("majority loss stalls safely", `Quick, chaos_majority_loss_stalls_safely);
  ]
