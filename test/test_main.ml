let () =
  Alcotest.run "mu"
    [
      ("sim", Test_sim.suite);
      ("rdma", Test_rdma.suite);
      ("rdma-layers", Test_rdma_layers.suite);
      ("log", Test_log.suite);
      ("election", Test_election.suite);
      ("permissions", Test_permissions.suite);
      ("replication", Test_replication.suite);
      ("smr", Test_smr.suite);
      ("membership", Test_membership.suite);
      ("order-book", Test_order_book.suite);
      ("apps", Test_apps.suite);
      ("lock-service", Test_lock_service.suite);
      ("herd", Test_herd.suite);
      ("baselines", Test_baselines.suite);
      ("dare-election", Test_dare_election.suite);
      ("workload", Test_workload.suite);
      ("replayer-recycler", Test_replayer.suite);
      ("invariants", Test_invariants.suite);
      ("faults", Test_faults.suite);
      ("recovery", Test_recovery.suite);
      ("misc", Test_misc.suite);
      ("trace", Test_trace.suite);
      ("telemetry", Test_telemetry.suite);
      ("provenance", Test_provenance.suite);
      ("properties", Test_properties.suite);
      ("serving", Test_serving.suite);
      ("monitor", Test_monitor.suite);
      ("profile", Test_profile.suite);
      ("modelcheck", Test_modelcheck.suite);
    ]
