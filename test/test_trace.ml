(* lib/trace: ring-buffer bounds, breakdown pairing, Chrome export shape
   and the end-to-end determinism guarantee. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let ev ?(ts = 0) ?(cat = "c") ?(pid = 0) ?(tid = 0) ?(id = 0) ?(args = []) kind name =
  { Sim.Probe.ts; kind; name; cat; pid; tid; id; args }

(* --- ring buffer --------------------------------------------------------- *)

let ring_bounds () =
  let b = Trace.Buffer.create ~capacity:4 in
  for i = 1 to 10 do
    Trace.Buffer.add b (ev ~ts:i Sim.Probe.Instant "e")
  done;
  check_int "capacity" 4 (Trace.Buffer.capacity b);
  check_int "length capped" 4 (Trace.Buffer.length b);
  check_int "dropped" 6 (Trace.Buffer.dropped b);
  check_int "recorded" 10 (Trace.Buffer.recorded b);
  (* The newest window survives, oldest first. *)
  let ts = List.map (fun e -> e.Sim.Probe.ts) (Trace.Buffer.to_list b) in
  check "newest window in order" true (ts = [ 7; 8; 9; 10 ]);
  Trace.Buffer.clear b;
  check_int "cleared" 0 (Trace.Buffer.length b);
  check_int "cleared dropped" 0 (Trace.Buffer.dropped b)

(* --- breakdown accumulator ---------------------------------------------- *)

let breakdown_sync_pairing () =
  let bd = Trace.Breakdown.create () in
  (* Nested spans on one thread: outer [0,100], inner [10,30]. *)
  List.iter (Trace.Breakdown.add bd)
    [
      ev ~ts:0 Sim.Probe.Span_begin "outer";
      ev ~ts:10 Sim.Probe.Span_begin "inner";
      ev ~ts:30 Sim.Probe.Span_end "inner";
      ev ~ts:100 Sim.Probe.Span_end "outer";
    ];
  check_int "outer total" 100 (Trace.Breakdown.total_ns bd ~cat:"c" ~name:"outer");
  check_int "inner total" 20 (Trace.Breakdown.total_ns bd ~cat:"c" ~name:"inner");
  check_int "no unmatched" 0 (Trace.Breakdown.unmatched bd);
  (* Same span name on two threads does not cross-pair. *)
  let bd2 = Trace.Breakdown.create () in
  List.iter (Trace.Breakdown.add bd2)
    [
      ev ~ts:0 ~tid:1 Sim.Probe.Span_begin "s";
      ev ~ts:5 ~tid:2 Sim.Probe.Span_begin "s";
      ev ~ts:7 ~tid:1 Sim.Probe.Span_end "s";
      ev ~ts:50 ~tid:2 Sim.Probe.Span_end "s";
    ];
  let samples = Option.get (Trace.Breakdown.find bd2 ~cat:"c" ~name:"s") in
  check_int "two samples" 2 (Sim.Stats.Samples.count samples);
  check_int "durations 7+45" 52 (Trace.Breakdown.total_ns bd2 ~cat:"c" ~name:"s")

let breakdown_async_pairing () =
  let bd = Trace.Breakdown.create () in
  (* Async spans interleave freely; pairing is by (cat, name, id). *)
  List.iter (Trace.Breakdown.add bd)
    [
      ev ~ts:0 ~id:1 Sim.Probe.Async_begin "write";
      ev ~ts:2 ~id:2 Sim.Probe.Async_begin "write";
      ev ~ts:9 ~id:2 Sim.Probe.Async_end "write";
      ev ~ts:20 ~id:1 Sim.Probe.Async_end "write";
    ];
  check_int "total 20+7" 27 (Trace.Breakdown.total_ns bd ~cat:"c" ~name:"write");
  check_int "no unmatched" 0 (Trace.Breakdown.unmatched bd);
  (* An end with no begin counts unmatched, records nothing. *)
  Trace.Breakdown.add bd (ev ~ts:30 ~id:99 Sim.Probe.Async_end "write");
  check_int "unmatched end" 1 (Trace.Breakdown.unmatched bd);
  check_int "total unchanged" 27 (Trace.Breakdown.total_ns bd ~cat:"c" ~name:"write")

let breakdown_rows_sorted () =
  let bd = Trace.Breakdown.create () in
  List.iter (Trace.Breakdown.add bd)
    [
      ev ~ts:0 ~cat:"zz" Sim.Probe.Span_begin "a";
      ev ~ts:4 ~cat:"zz" Sim.Probe.Span_end "a";
      ev ~ts:0 ~cat:"aa" Sim.Probe.Span_begin "b";
      ev ~ts:6 ~cat:"aa" Sim.Probe.Span_end "b";
    ];
  let keys = List.map (fun (c, n, _, _) -> (c, n)) (Trace.Breakdown.rows bd) in
  check "rows sorted by (cat, name)" true (keys = [ ("aa", "b"); ("zz", "a") ]);
  check "absent row is 0" true (Trace.Breakdown.total_ns bd ~cat:"nope" ~name:"x" = 0);
  let table = Fmt.str "%a" Trace.Breakdown.pp bd in
  check "pp includes both rows" true (contains table "zz" && contains table "aa")

(* --- chrome export ------------------------------------------------------- *)

let chrome_event_shape () =
  let events =
    [
      ev ~ts:1_234_567 ~cat:"mu" ~pid:2 ~tid:3 Sim.Probe.Span_begin "propose";
      ev ~ts:1_300_000 ~cat:"mu" ~pid:2 ~tid:3 Sim.Probe.Span_end "propose";
      ev ~ts:5_000 ~cat:"rdma" ~pid:0 ~id:77 ~args:[ ("len", "8") ]
        Sim.Probe.Async_begin "read";
      ev ~ts:9_999 ~pid:(-1) Sim.Probe.Instant "jit\"ter";
      ev ~ts:0 ~cat:"mu" ~pid:1 ~args:[ ("value", "42") ] Sim.Probe.Counter "fuo";
    ]
  in
  let json =
    Trace.Chrome.to_string
      ~processes:[ (2, "replica-2") ]
      ~threads:[ ((2, 3), "smr") ]
      events
  in
  let has sub = contains json sub in
  (* Timestamps are fixed-point microseconds with exactly 3 decimals. *)
  check "B phase, fixed-point us" true
    (has "\"ph\":\"B\",\"ts\":1234.567,\"pid\":2,\"tid\":3");
  check "E phase" true (has "\"ph\":\"E\",\"ts\":1300.000");
  check "async id rendered as hex" true (has "\"ph\":\"b\"" && has "\"id\":\"0x4d\"");
  check "numeric arg unquoted" true (has "\"args\":{\"len\":8}");
  check "instant is thread-scoped" true (has "\"ph\":\"i\"" && has "\"s\":\"t\"");
  check "quote escaped in name" true (has "jit\\\"ter");
  check "pid -1 maps to synthetic engine pid" true
    (has (Printf.sprintf "\"pid\":%d" Trace.Chrome.engine_pid));
  check "counter phase" true (has "\"ph\":\"C\"" && has "\"args\":{\"value\":42}");
  check "process metadata" true
    (has "\"process_name\"" && has "\"args\":{\"name\":\"replica-2\"}");
  check "thread metadata" true (has "\"thread_name\"" && has "\"name\":\"smr\"");
  check "trailer" true (has "\"displayTimeUnit\":\"ns\"")

(* --- tracer attached to a live engine ------------------------------------ *)

let tracer_engine_integration () =
  let tr = Trace.Tracer.create ~capacity:1024 () in
  let _e =
    Util.run_scenario (fun e ->
        Trace.Tracer.attach tr e;
        let h = Util.host e ~id:0 in
        Sim.Host.spawn h ~name:"worker" (fun () ->
            Sim.Engine.trace_span e ~cat:"test" ~pid:(Sim.Host.id h) "work"
              (fun () -> Sim.Engine.sleep e 1_000)))
  in
  check "recorded something" true (Trace.Tracer.recorded tr > 0);
  check_int "work span lasted the sleep" 1_000
    (Trace.Breakdown.total_ns (Trace.Tracer.breakdown tr) ~cat:"test" ~name:"work");
  (* Host.create registered the process name; spawn registered the fiber. *)
  check "process registered" true
    (List.mem_assoc 0 (Trace.Tracer.processes tr));
  check "some thread registered" true (Trace.Tracer.threads tr <> []);
  (* Span end survives an aborting body. *)
  let tr2 = Trace.Tracer.create () in
  let _e =
    Util.run_scenario (fun e ->
        Trace.Tracer.attach tr2 e;
        Sim.Engine.spawn e ~name:"crash" (fun () ->
            try
              Sim.Engine.trace_span e ~cat:"test" "doomed" (fun () ->
                  Sim.Engine.sleep e 500;
                  failwith "boom")
            with Failure _ -> ()))
  in
  check_int "span closed on raise" 500
    (Trace.Breakdown.total_ns (Trace.Tracer.breakdown tr2) ~cat:"test" ~name:"doomed")

(* --- determinism + fail-over share --------------------------------------- *)

module E = Workload.Experiments

let run_traced_failover seed =
  let tr = Trace.Tracer.create () in
  let setup = { E.seed; cal = Util.default_cal; trace = Some tr; metrics = None; faults = None; provenance = false; on_engine = None } in
  let (_ : E.failover_stats) = E.failover setup ~rounds:2 in
  tr

let failover_trace_deterministic () =
  let a = run_traced_failover 42L and b = run_traced_failover 42L in
  check "equal event counts" true (Trace.Tracer.recorded a = Trace.Tracer.recorded b);
  check_str "byte-identical chrome export"
    (Trace.Tracer.chrome_string a) (Trace.Tracer.chrome_string b);
  (* A different seed must actually change the stream (guards against the
     exporter ignoring its input). *)
  let c = run_traced_failover 43L in
  check "different seed differs" true
    (Trace.Tracer.chrome_string a <> Trace.Tracer.chrome_string c)

let failover_phase_breakdown () =
  let tr = run_traced_failover 7L in
  let bd = Trace.Tracer.breakdown tr in
  let total = Trace.Breakdown.total_ns bd ~cat:"failover" ~name:"total" in
  let detect = Trace.Breakdown.total_ns bd ~cat:"failover" ~name:"detect" in
  let switch = Trace.Breakdown.total_ns bd ~cat:"failover" ~name:"perm_switch" in
  check "phases recorded" true (total > 0 && detect > 0 && switch > 0);
  check "phases partition the total" true (detect + switch <= total);
  (* Paper Fig. 6: permission switching is roughly 30% of fail-over; the
     bench asserts 25-35%, here we only need the decomposition sane. *)
  let share = 100. *. float_of_int switch /. float_of_int total in
  check "perm_switch share plausible" true (share > 10. && share < 60.);
  check "no unmatched failover spans" true (Trace.Breakdown.unmatched bd = 0)

let suite =
  [
    Alcotest.test_case "ring bounds" `Quick ring_bounds;
    Alcotest.test_case "breakdown sync pairing" `Quick breakdown_sync_pairing;
    Alcotest.test_case "breakdown async pairing" `Quick breakdown_async_pairing;
    Alcotest.test_case "breakdown rows sorted" `Quick breakdown_rows_sorted;
    Alcotest.test_case "chrome event shape" `Quick chrome_event_shape;
    Alcotest.test_case "tracer on live engine" `Quick tracer_engine_integration;
    Alcotest.test_case "trace determinism" `Quick failover_trace_deterministic;
    Alcotest.test_case "failover phase breakdown" `Quick failover_phase_breakdown;
  ]
