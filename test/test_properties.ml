(* Property-based tests (qcheck): codec roundtrips, order-book invariants,
   a model-based KV check, and — most importantly — the consensus safety
   invariants of Appendix A under randomized fault schedules. *)

let to_alcotest = QCheck_alcotest.to_alcotest

(* --- codecs ---------------------------------------------------------------- *)

let bytes_gen = QCheck.Gen.(map Bytes.of_string (string_size (0 -- 200)))

let log_roundtrip =
  QCheck.Test.make ~name:"log entry roundtrip" ~count:300
    QCheck.(
      make
        ~print:(fun (p, v) -> Printf.sprintf "(%Ld, %S)" p (Bytes.to_string v))
        Gen.(pair (map Int64.of_int (1 -- 1_000_000)) bytes_gen))
    (fun (proposal, value) ->
      let e = Util.engine () in
      let h = Util.host e ~id:0 in
      let mr =
        Rdma.Mr.register h
          ~size:(Mu.Log.required_size ~slots:4 ~value_cap:256)
          ~access:Rdma.Verbs.access_rw
      in
      let log = Mu.Log.attach mr ~slots:4 ~value_cap:256 in
      Mu.Log.write_slot_local log 1 ~proposal ~value;
      match Mu.Log.read_slot log 1 with
      | Some s -> Int64.equal s.Mu.Log.proposal proposal && Bytes.equal s.Mu.Log.value value
      | None -> false)

let batch_roundtrip =
  QCheck.Test.make ~name:"batch framing roundtrip" ~count:300
    QCheck.(
      make
        ~print:(fun l -> String.concat ";" (List.map Bytes.to_string l))
        Gen.(list_size (0 -- 10) bytes_gen))
    (fun payloads ->
      match Mu.Smr.decode_batch (Mu.Smr.encode_batch payloads) with
      | Some got -> List.for_all2 Bytes.equal payloads got
      | None -> false)

let kv_codec_roundtrip =
  let cmd_gen =
    QCheck.Gen.(
      oneof
        [
          map (fun k -> Apps.Kv_store.Get { key = k }) (string_size (0 -- 40));
          map2
            (fun k v -> Apps.Kv_store.Put { key = k; value = v })
            (string_size (0 -- 40)) (string_size (0 -- 120));
          map (fun k -> Apps.Kv_store.Delete { key = k }) (string_size (0 -- 40));
        ])
  in
  QCheck.Test.make ~name:"kv command codec roundtrip" ~count:300
    QCheck.(make cmd_gen)
    (fun cmd ->
      match Apps.Kv_store.decode_command (Apps.Kv_store.encode_command ~client:3 ~req_id:9 cmd) with
      | Some (3, 9, cmd') -> cmd = cmd'
      | _ -> false)

let exchange_codec_roundtrip =
  let side = QCheck.Gen.oneofl [ Apps.Order_book.Buy; Apps.Order_book.Sell ] in
  let cmd_gen =
    QCheck.Gen.(
      oneof
        [
          map3
            (fun id s (p, q) -> Apps.Exchange.Limit { id; side = s; price = p; qty = q })
            (1 -- 100_000) side (pair (1 -- 100_000) (1 -- 10_000));
          map3
            (fun id s q -> Apps.Exchange.Market { id; side = s; qty = q })
            (1 -- 100_000) side (1 -- 10_000);
          map (fun id -> Apps.Exchange.Cancel { id }) (1 -- 100_000);
          map3
            (fun id p q -> Apps.Exchange.Replace { id; price = p; qty = q })
            (1 -- 100_000)
            (option (1 -- 100_000))
            (1 -- 10_000);
        ])
  in
  QCheck.Test.make ~name:"exchange codec roundtrip" ~count:300 (QCheck.make cmd_gen)
    (fun cmd -> Apps.Exchange.decode_command (Apps.Exchange.encode_command cmd) = Some cmd)

(* --- order book invariants --------------------------------------------------- *)

type ob_action = Limit of bool * int * int | Market of bool * int | Cancel_nth of int

let ob_action_gen =
  QCheck.Gen.(
    frequency
      [
        (6, map3 (fun b p q -> Limit (b, p, q)) bool (90 -- 110) (1 -- 30));
        (1, map2 (fun b q -> Market (b, q)) bool (1 -- 20));
        (2, map (fun i -> Cancel_nth i) (0 -- 20));
      ])

let print_action = function
  | Limit (b, p, q) -> Printf.sprintf "Limit(%b,%d,%d)" b p q
  | Market (b, q) -> Printf.sprintf "Market(%b,%d)" b q
  | Cancel_nth i -> Printf.sprintf "Cancel(%d)" i

let side_of b = if b then Apps.Order_book.Buy else Apps.Order_book.Sell

let order_book_invariants =
  QCheck.Test.make ~name:"order book: conservation and uncrossed book" ~count:100
    QCheck.(
      make
        ~print:(fun l -> String.concat "; " (List.map print_action l))
        Gen.(list_size (1 -- 120) ob_action_gen))
    (fun actions ->
      let b = Apps.Order_book.create () in
      let submitted = ref 0 and cancelled = ref 0 in
      let live = ref [] in
      let next_id = ref 0 in
      let count_cancel events =
        List.iter
          (function
            | Apps.Order_book.Cancelled { remaining; _ } -> cancelled := !cancelled + remaining
            | _ -> ())
          events
      in
      List.iter
        (fun a ->
          incr next_id;
          match a with
          | Limit (buy, price, qty) ->
            submitted := !submitted + qty;
            let ev =
              Apps.Order_book.submit_limit b ~id:!next_id ~side:(side_of buy) ~price ~qty
            in
            if List.mem (Apps.Order_book.Accepted { id = !next_id }) ev then
              live := !next_id :: !live
          | Market (buy, qty) ->
            submitted := !submitted + qty;
            let ev = Apps.Order_book.submit_market b ~id:!next_id ~side:(side_of buy) ~qty in
            count_cancel ev;
            List.iter
              (function
                | Apps.Order_book.Rejected _ -> cancelled := !cancelled + qty
                | _ -> ())
              ev
          | Cancel_nth i -> (
            match List.nth_opt !live i with
            | Some id ->
              live := List.filter (fun x -> x <> id) !live;
              count_cancel (Apps.Order_book.cancel b ~id)
            | None -> ()))
        actions;
      let open_qty =
        Apps.Order_book.open_qty b Apps.Order_book.Buy
        + Apps.Order_book.open_qty b Apps.Order_book.Sell
      in
      let conservation =
        !submitted = open_qty + (2 * Apps.Order_book.volume_traded b) + !cancelled
      in
      let uncrossed =
        match Apps.Order_book.best_bid b, Apps.Order_book.best_ask b with
        | Some (bid, _), Some (ask, _) -> bid < ask
        | _ -> true
      in
      conservation && uncrossed)

(* --- KV model check ------------------------------------------------------------ *)

let kv_matches_model =
  QCheck.Test.make ~name:"kv store matches a model" ~count:100
    QCheck.(
      make
        Gen.(
          list_size (1 -- 200)
            (pair (0 -- 2) (pair (string_size (1 -- 4)) (string_size (0 -- 8))))))
    (fun ops ->
      let s = Apps.Kv_store.create () in
      let model : (string, string) Hashtbl.t = Hashtbl.create 16 in
      List.for_all
        (fun (op, (k, v)) ->
          match op with
          | 0 ->
            let got = Apps.Kv_store.apply s (Apps.Kv_store.Get { key = k }) in
            let want =
              match Hashtbl.find_opt model k with
              | Some v -> Apps.Kv_store.Value v
              | None -> Apps.Kv_store.Not_found
            in
            got = want
          | 1 ->
            Hashtbl.replace model k v;
            Apps.Kv_store.apply s (Apps.Kv_store.Put { key = k; value = v })
            = Apps.Kv_store.Stored
          | _ ->
            let existed = Hashtbl.mem model k in
            Hashtbl.remove model k;
            Apps.Kv_store.apply s (Apps.Kv_store.Delete { key = k })
            = (if existed then Apps.Kv_store.Deleted else Apps.Kv_store.Not_found))
        ops)

(* --- consensus safety under random fault schedules ----------------------------- *)

type cluster_action =
  | Propose of int
  | Crash of int
  | Recover of int
  | Wait of int
  | Partition of int  (** cut one replica's replication links *)
  | Heal of int

let print_cluster_action = function
  | Propose i -> Printf.sprintf "Propose(r%d)" i
  | Crash i -> Printf.sprintf "Crash(r%d)" i
  | Recover i -> Printf.sprintf "Recover(r%d)" i
  | Wait us -> Printf.sprintf "Wait(%dus)" us
  | Partition i -> Printf.sprintf "Partition(r%d)" i
  | Heal i -> Printf.sprintf "Heal(r%d)" i

let cluster_action_gen =
  QCheck.Gen.(
    frequency
      [
        (6, map (fun i -> Propose i) (0 -- 2));
        (2, map (fun i -> Crash i) (0 -- 2));
        (2, map (fun i -> Recover i) (0 -- 2));
        (2, map (fun us -> Wait us) (50 -- 2_000));
        (1, map (fun i -> Partition i) (0 -- 2));
        (1, map (fun i -> Heal i) (0 -- 2));
      ])

(* Execute a random schedule of proposes, pauses and resumes (keeping a
   majority alive), then verify agreement (Theorem A.7), validity
   (Theorem A.4) and the no-holes lemma (A.11) across all replicas. *)
let consensus_safety =
  QCheck.Test.make ~name:"consensus safety under random fault schedules" ~count:30
    QCheck.(
      make
        ~print:(fun (seed, l) ->
          Printf.sprintf "seed=%d [%s]" seed
            (String.concat "; " (List.map print_cluster_action l)))
        Gen.(pair (0 -- 10_000) (list_size (1 -- 25) cluster_action_gen)))
    (fun (seed, actions) ->
      let e = Sim.Engine.create ~seed:(Int64.of_int (seed + 1)) () in
      let smr = Util.mu_cluster e in
      let proposed = Hashtbl.create 64 in
      let ok = ref true in
      let paused = Array.make 3 false in
      let cut = Array.make 3 false in
      let paused_count () =
        Array.fold_left (fun a b -> a + if b then 1 else 0) 0 paused
        + Array.fold_left (fun a b -> a + if b then 1 else 0) 0 cut
      in
      let set_links i up =
        let r = Mu.Smr.replica smr i in
        List.iter
          (fun (p : Mu.Replica.peer) -> Rdma.Qp.set_link_up p.Mu.Replica.repl_qp up)
          r.Mu.Replica.peers
      in
      Sim.Engine.spawn e ~name:"schedule" (fun () ->
          Sim.Engine.sleep e 500_000;
          let counter = ref 0 in
          List.iter
            (fun action ->
              match action with
              | Propose i ->
                let r = Mu.Smr.replica smr i in
                if not paused.(i) then begin
                  incr counter;
                  let v = Printf.sprintf "v%d-%d" i !counter in
                  Hashtbl.replace proposed v ();
                  let d = Sim.Engine.Ivar.create e in
                  Sim.Host.spawn r.Mu.Replica.host ~name:"prop" (fun () ->
                      (try ignore (Mu.Replication.propose r (Bytes.of_string v))
                       with Mu.Replication.Aborted _ -> ());
                      Sim.Engine.Ivar.fill d ());
                  Sim.Engine.Ivar.read d
                end
              | Crash i ->
                if (not paused.(i)) && paused_count () = 0 then begin
                  paused.(i) <- true;
                  Sim.Host.pause (Mu.Smr.replica smr i).Mu.Replica.host
                end
              | Recover i ->
                if paused.(i) then begin
                  paused.(i) <- false;
                  Sim.Host.resume (Mu.Smr.replica smr i).Mu.Replica.host
                end
              | Wait us -> Sim.Engine.sleep e (us * 1_000)
              | Partition i ->
                if (not cut.(i)) && (not paused.(i)) && paused_count () = 0 then begin
                  cut.(i) <- true;
                  set_links i false
                end
              | Heal i ->
                if cut.(i) then begin
                  cut.(i) <- false;
                  set_links i true
                end)
            actions;
          (* Let everything settle. *)
          Array.iteri
            (fun i p ->
              if p then begin
                paused.(i) <- false;
                Sim.Host.resume (Mu.Smr.replica smr i).Mu.Replica.host
              end)
            paused;
          Array.iteri
            (fun i c ->
              if c then begin
                cut.(i) <- false;
                set_links i true
              end)
            cut;
          Sim.Engine.sleep e 5_000_000;
          (* The full invariant battery (agreement, no holes, decided at a
             majority, single writer) plus validity of decided values. *)
          let replicas = Mu.Smr.replicas smr in
          if Mu.Invariants.check_all replicas <> [] then ok := false;
          let slot r i =
            Option.map
              (fun (s : Mu.Log.slot) -> Bytes.to_string s.Mu.Log.value)
              (Mu.Log.read_slot r.Mu.Replica.log i)
          in
          Array.iter
            (fun (a : Mu.Replica.t) ->
              for i = a.Mu.Replica.applied to Mu.Log.fuo a.Mu.Replica.log - 1 do
                match slot a i with
                | Some v ->
                  if not (Hashtbl.mem proposed v || v = "") then
                    if Mu.Smr.decode_batch (Bytes.of_string v) <> Some [] then ok := false
                | None -> ok := false
              done)
            replicas;
          Mu.Smr.stop smr;
          Sim.Engine.halt e);
      Sim.Engine.run ~until:300_000_000_000 e;
      !ok)

(* Engine scheduling: events fire in non-decreasing time order, FIFO among
   equal timestamps, regardless of insertion order. *)
let engine_event_order =
  QCheck.Test.make ~name:"engine: event ordering" ~count:200
    QCheck.(make Gen.(list_size (1 -- 60) (0 -- 500)))
    (fun times ->
      let e = Sim.Engine.create ~seed:1L () in
      let fired = ref [] in
      List.iteri
        (fun i at -> Sim.Engine.schedule e ~at (fun () -> fired := (at, i) :: !fired))
        times;
      Sim.Engine.run e;
      let fired = List.rev !fired in
      let rec ordered = function
        | (t1, i1) :: ((t2, i2) :: _ as rest) ->
          (t1 < t2 || (t1 = t2 && i1 < i2)) && ordered rest
        | _ -> true
      in
      List.length fired = List.length times && ordered fired)

(* Event-queue model test (PR 8): random push/pop interleavings checked
   against a sorted-list reference, asserting the (key, seq) FIFO
   tie-break total order and payload integrity. Runs the same op
   sequence through both backends — the binary heap and the timing
   wheel — so the wheel swap is provably order-preserving. Keys are
   spread across four scales so the wheel's level-0 slots, upper
   levels, far-future overflow heap (beyond the 2^32 horizon) and past
   heap (pushes behind an advanced wheel clock) are all exercised.
   Pushes use a globally monotonic seq, the contract the engine
   provides and the wheel's bucket ordering relies on. *)
let event_queue_matches_reference =
  QCheck.Test.make ~name:"event queue matches sorted-list reference (heap and wheel)"
    ~count:150
    QCheck.(make Gen.(list_size (1 -- 150) (pair (0 -- 100) (0 -- 5))))
    (fun ops ->
      let run_backend push pop =
        let reference = ref [] in
        let seq = ref 0 in
        let ok = ref true in
        let do_pop () =
          match pop () with
          | None -> ok := !ok && !reference = []
          | Some (k, s) ->
            (match List.sort compare !reference with
            | m :: _ -> ok := !ok && m = (k, s)
            | [] -> ok := false);
            reference := List.filter (fun x -> x <> (k, s)) !reference
        in
        List.iter
          (fun (k, tag) ->
            if tag >= 4 then do_pop ()
            else begin
              let key =
                match tag with
                | 0 -> k (* level 0 *)
                | 1 -> k * 1_009 (* levels 1-2 *)
                | 2 -> (k * 524_287) land 0xFFFFFF (* level 3 *)
                | _ -> k * 1_000_003 * 4_096 (* overflow beyond 2^32 *)
              in
              incr seq;
              push ~key ~seq:!seq (key, !seq);
              reference := (key, !seq) :: !reference
            end)
          ops;
        while !reference <> [] && !ok do
          do_pop ()
        done;
        !ok
      in
      let heap = Sim.Heap.create () in
      let wheel = Sim.Wheel.create () in
      run_backend (fun ~key ~seq v -> Sim.Heap.push heap ~key ~seq v) (fun () ->
          Sim.Heap.pop heap)
      && run_backend (fun ~key ~seq v -> Sim.Wheel.push wheel ~key ~seq v) (fun () ->
             Sim.Wheel.pop wheel))

(* QP FIFO under randomized payload sizes and timing: writes posted on one
   QP always apply in order, so the last write's value persists and every
   completion arrives in posting order. *)
let qp_fifo_property =
  QCheck.Test.make ~name:"qp: fifo under random sizes" ~count:60
    QCheck.(
      make
        Gen.(pair (0 -- 10_000) (list_size (2 -- 40) (1 -- 512))))
    (fun (seed, sizes) ->
      let result = ref true in
      let e = Sim.Engine.create ~seed:(Int64.of_int (seed + 1)) () in
      Sim.Engine.spawn e ~name:"t" (fun () ->
          let _a, b, qa, _qb, cq_a, _ = Util.qp_pair e in
          let mr = Rdma.Mr.register b ~size:1024 ~access:Rdma.Verbs.access_rw in
          List.iteri
            (fun i len ->
              let payload = Bytes.make len (Char.chr (i mod 256)) in
              Rdma.Qp.post_write qa ~wr_id:i ~src:payload ~src_off:0 ~len ~mr ~dst_off:0)
            sizes;
          let expect = ref 0 in
          List.iter
            (fun _ ->
              let wc = Rdma.Cq.await cq_a in
              if wc.Rdma.Verbs.wr_id <> !expect then result := false;
              incr expect)
            sizes;
          (* Final memory: the last write's byte at offset 0. *)
          let last = List.length sizes - 1 in
          if Bytes.get (Rdma.Mr.buffer mr) 0 <> Char.chr (last mod 256) then result := false);
      Sim.Engine.run e;
      !result)

(* The lock service against a simple model: an owner option plus a FIFO
   list per lock. *)
let lock_service_matches_model =
  QCheck.Test.make ~name:"lock service matches a model" ~count:100
    QCheck.(
      make
        Gen.(list_size (1 -- 150) (pair (0 -- 1) (pair (1 -- 4) (0 -- 2)))))
    (fun ops ->
      let t = Apps.Lock_service.create () in
      let model_owner = Hashtbl.create 4 in
      let model_queue : (string, int list ref) Hashtbl.t = Hashtbl.create 4 in
      let q lock =
        match Hashtbl.find_opt model_queue lock with
        | Some r -> r
        | None ->
          let r = ref [] in
          Hashtbl.replace model_queue lock r;
          r
      in
      List.for_all
        (fun (op, (client, lock_i)) ->
          let lock = Printf.sprintf "L%d" lock_i in
          match op with
          | 0 -> (
            let reply =
              Apps.Lock_service.apply t (Apps.Lock_service.Acquire { client; lock })
            in
            match Hashtbl.find_opt model_owner lock with
            | None ->
              Hashtbl.replace model_owner lock client;
              (match reply with Apps.Lock_service.Granted _ -> true | _ -> false)
            | Some owner when owner = client -> (
              match reply with Apps.Lock_service.Granted _ -> true | _ -> false)
            | Some _ ->
              let waiters = q lock in
              if not (List.mem client !waiters) then waiters := !waiters @ [ client ];
              (match reply with
              | Apps.Lock_service.Queued { position } ->
                List.nth_opt !waiters (position - 1) = Some client
              | _ -> false))
          | _ -> (
            let reply =
              Apps.Lock_service.apply t (Apps.Lock_service.Release { client; lock })
            in
            match Hashtbl.find_opt model_owner lock with
            | Some owner when owner = client ->
              let waiters = q lock in
              (match !waiters with
              | next :: rest ->
                Hashtbl.replace model_owner lock next;
                waiters := rest
              | [] -> Hashtbl.remove model_owner lock);
              reply = Apps.Lock_service.Released
            | Some _ | None -> reply = Apps.Lock_service.Not_held))
        ops)

(* Whole-run determinism: two simulations from the same seed produce
   byte-identical replica logs — the property that makes every experiment
   in this repository reproducible. *)
let run_determinism =
  QCheck.Test.make ~name:"whole-run determinism by seed" ~count:15
    QCheck.(make Gen.(pair (0 -- 10_000) (2 -- 15)))
    (fun (seed, nreq) ->
      let run () =
        let e = Sim.Engine.create ~seed:(Int64.of_int (seed + 1)) () in
        let smr =
          Mu.Smr.create e Util.default_cal Mu.Config.default ~make_app:(fun _ ->
              Mu.Smr.stateless_app Fun.id)
        in
        Mu.Smr.start smr;
        Sim.Engine.spawn e ~name:"driver" (fun () ->
            Mu.Smr.wait_live smr;
            for i = 1 to nreq do
              ignore (Mu.Smr.submit smr (Bytes.of_string (string_of_int i)))
            done;
            (match Mu.Smr.leader smr with
            | Some l -> Sim.Host.pause l.Mu.Replica.host
            | None -> ());
            ignore (Mu.Smr.submit smr (Bytes.of_string "post-failover"));
            Sim.Engine.sleep e 2_000_000;
            Mu.Smr.stop smr;
            Sim.Engine.halt e);
        Sim.Engine.run ~until:120_000_000_000 e;
        ( Sim.Engine.now e,
          Array.to_list (Mu.Smr.replicas smr)
          |> List.map (fun (r : Mu.Replica.t) ->
                 ( Mu.Log.fuo r.Mu.Replica.log,
                   r.Mu.Replica.applied,
                   Bytes.to_string (Rdma.Mr.buffer (Mu.Log.mr r.Mu.Replica.log)) )) )
      in
      run () = run ())

(* Cross-validate the linearizability checker against brute-force
   permutation search on tiny histories. *)
let lin_checker_matches_bruteforce =
  let op_gen =
    QCheck.Gen.(
      map3
        (fun proc (inv, dur) kind -> (proc, inv, inv + 1 + dur, kind))
        (1 -- 3)
        (pair (0 -- 20) (0 -- 10))
        (oneof
           [
             return `W;
             map (fun v -> `R (Some (string_of_int v))) (1 -- 3);
             return (`R None);
           ]))
  in
  QCheck.Test.make ~name:"linearizability checker vs brute force" ~count:150
    QCheck.(make Gen.(list_size (1 -- 6) op_gen))
    (fun raw ->
      (* Assign distinct write values; make per-process ops sequential. *)
      let counter = ref 0 in
      let by_proc = Hashtbl.create 4 in
      let ops =
        List.map
          (fun (proc, inv, res, kind) ->
            let last = Option.value (Hashtbl.find_opt by_proc proc) ~default:0 in
            let inv = max inv last + 1 in
            let res = max res (inv + 1) in
            Hashtbl.replace by_proc proc res;
            let kind =
              match kind with
              | `W ->
                incr counter;
                Workload.Linearizability.Write (string_of_int !counter)
              | `R v -> Workload.Linearizability.Read v
            in
            { Workload.Linearizability.proc; invoked = inv; responded = res; key = "k"; kind })
          raw
      in
      (* Brute force: try every permutation respecting real-time order. *)
      let rec permutations = function
        | [] -> [ [] ]
        | l ->
          List.concat_map
            (fun x -> List.map (fun p -> x :: p) (permutations (List.filter (( != ) x) l)))
            l
      in
      let respects_realtime seq =
        (* Every pair ordered (x before y) must not contradict real time:
           y finishing before x was invoked forces y first. *)
        let arr = Array.of_list seq in
        let ok = ref true in
        Array.iteri
          (fun i x ->
            Array.iteri
              (fun j y ->
                if i < j
                   && y.Workload.Linearizability.responded
                      < x.Workload.Linearizability.invoked
                then ok := false)
              arr)
          arr;
        !ok
      in
      let valid_sequential seq =
        let rec go state = function
          | [] -> true
          | o :: rest -> (
            match o.Workload.Linearizability.kind with
            | Workload.Linearizability.Write v -> go (Some v) rest
            | Workload.Linearizability.Erase -> go None rest
            | Workload.Linearizability.Read observed -> observed = state && go state rest)
        in
        go None seq
      in
      let brute =
        List.exists (fun p -> respects_realtime p && valid_sequential p) (permutations ops)
      in
      Workload.Linearizability.check ops = brute)

let suite =
  List.map to_alcotest
    [
      log_roundtrip;
      batch_roundtrip;
      kv_codec_roundtrip;
      exchange_codec_roundtrip;
      order_book_invariants;
      kv_matches_model;
      engine_event_order;
      event_queue_matches_reference;
      run_determinism;
      qp_fifo_property;
      lock_service_matches_model;
      lin_checker_matches_bruteforce;
      consensus_safety;
    ]
