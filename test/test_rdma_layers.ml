(* Tests for the reusable RDMA layers of §6: the QP exchange (connection
   bootstrap + region directory) and the quorum write helper. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- Exchange --------------------------------------------------------------- *)

let exchange_dial_connects () =
  Util.run_fiber (fun e ->
      let x = Rdma.Exchange.create e in
      let a = Util.host e ~id:0 and b = Util.host e ~id:1 in
      Rdma.Exchange.listen x ~host:b ~service:"log"
        ~make_cq:(fun () -> Rdma.Cq.create e)
        ~access:Rdma.Verbs.access_rw ();
      let mr_b = Rdma.Mr.register b ~size:64 ~access:Rdma.Verbs.access_rw in
      Rdma.Exchange.advertise x ~host:b ~name:"log-mr" mr_b;
      let cq_a = Rdma.Cq.create e in
      let qp = Rdma.Exchange.dial x ~host:a ~peer:"h1" ~service:"log" ~cq:cq_a () in
      check "connected" true (Rdma.Qp.state qp = Rdma.Verbs.Rts);
      (* Use the advertised region handle exactly like an exchanged rkey. *)
      let remote = Rdma.Exchange.lookup x ~peer:"h1" ~name:"log-mr" in
      Rdma.Qp.post_write qp ~wr_id:1 ~src:(Bytes.of_string "via-exch") ~src_off:0 ~len:8
        ~mr:remote ~dst_off:0;
      Alcotest.check Util.check_status "write lands" Rdma.Verbs.Success
        (Rdma.Cq.await cq_a).Rdma.Verbs.status;
      Alcotest.(check string) "data" "via-exch"
        (Bytes.to_string (Rdma.Mr.get_bytes mr_b ~off:0 ~len:8)))

let exchange_tracks_accepted () =
  let e = Util.engine () in
  let x = Rdma.Exchange.create e in
  let srv = Util.host e ~id:0 in
  Rdma.Exchange.listen x ~host:srv ~service:"svc" ~make_cq:(fun () -> Rdma.Cq.create e) ();
  for i = 1 to 3 do
    let h = Util.host e ~id:i in
    ignore (Rdma.Exchange.dial x ~host:h ~peer:"h0" ~service:"svc" ~cq:(Rdma.Cq.create e) ())
  done;
  let acc = Rdma.Exchange.accepted x ~host:srv ~service:"svc" in
  check_int "three accepted" 3 (List.length acc);
  Alcotest.(check (list string)) "dialer names" [ "h3"; "h2"; "h1" ] (List.map fst acc)

let exchange_rejects_duplicate_listener () =
  let e = Util.engine () in
  let x = Rdma.Exchange.create e in
  let h = Util.host e ~id:0 in
  Rdma.Exchange.listen x ~host:h ~service:"s" ~make_cq:(fun () -> Rdma.Cq.create e) ();
  check "raises" true
    (try
       Rdma.Exchange.listen x ~host:h ~service:"s" ~make_cq:(fun () -> Rdma.Cq.create e) ();
       false
     with Invalid_argument _ -> true)

let exchange_unknown_service () =
  let e = Util.engine () in
  let x = Rdma.Exchange.create e in
  let h = Util.host e ~id:0 in
  check "raises Not_found" true
    (try
       ignore (Rdma.Exchange.dial x ~host:h ~peer:"nobody" ~service:"s" ~cq:(Rdma.Cq.create e) ());
       false
     with Not_found -> true)

(* --- Quorum ------------------------------------------------------------------ *)

(* Three hosts: h0 writes to h1 and h2 through one shared CQ. *)
let quorum_rig e =
  let h0 = Util.host e ~id:0 and h1 = Util.host e ~id:1 and h2 = Util.host e ~id:2 in
  let cq0 = Rdma.Cq.create e in
  let mk peer =
    let q0 = Rdma.Qp.create h0 ~cq:cq0 in
    let qp = Rdma.Qp.create peer ~cq:(Rdma.Cq.create e) in
    Rdma.Qp.connect q0 qp;
    Rdma.Qp.set_access qp Rdma.Verbs.access_rw;
    let mr = Rdma.Mr.register peer ~size:64 ~access:Rdma.Verbs.access_rw in
    (q0, qp, mr)
  in
  (h0, cq0, mk h1, mk h2)

let quorum_majority_returns_early () =
  Util.run_fiber (fun e ->
      let _h0, cq0, (q1, _, mr1), (q2, _, mr2) = quorum_rig e in
      let q = Rdma.Quorum.create cq0 in
      let data = Bytes.make 8 'q' in
      let t0 = Sim.Engine.now e in
      let r =
        Rdma.Quorum.post_and_wait q ~needed:1
          ~post:
            [
              (fun ~wr_id ->
                Rdma.Qp.post_write q1 ~wr_id ~src:data ~src_off:0 ~len:8 ~mr:mr1 ~dst_off:0);
              (fun ~wr_id ->
                Rdma.Qp.post_write q2 ~wr_id ~src:data ~src_off:0 ~len:8 ~mr:mr2 ~dst_off:0);
            ]
      in
      let dt = Sim.Engine.now e - t0 in
      check_int "one success suffices" 1 (List.length r.Rdma.Quorum.succeeded);
      check_int "one still pending" 1 r.Rdma.Quorum.pending;
      check "returned at first completion" true (dt < 2_500);
      (* The straggler is absorbed by the next round, not miscounted. *)
      let r2 =
        Rdma.Quorum.post_and_wait q ~needed:2
          ~post:
            [
              (fun ~wr_id ->
                Rdma.Qp.post_write q1 ~wr_id ~src:data ~src_off:0 ~len:8 ~mr:mr1 ~dst_off:0);
              (fun ~wr_id ->
                Rdma.Qp.post_write q2 ~wr_id ~src:data ~src_off:0 ~len:8 ~mr:mr2 ~dst_off:0);
            ]
      in
      check_int "both of round 2" 2 (List.length r2.Rdma.Quorum.succeeded);
      Rdma.Quorum.drain q)

let quorum_error_raises () =
  Util.run_fiber (fun e ->
      let _h0, cq0, (q1, _, mr1), (q2, qp2, mr2) = quorum_rig e in
      Rdma.Qp.set_access qp2 Rdma.Verbs.access_ro;
      let q = Rdma.Quorum.create cq0 in
      let data = Bytes.make 8 'x' in
      check "error surfaces" true
        (try
           ignore
             (Rdma.Quorum.post_and_wait q ~needed:2
                ~post:
                  [
                    (fun ~wr_id ->
                      Rdma.Qp.post_write q1 ~wr_id ~src:data ~src_off:0 ~len:8 ~mr:mr1
                        ~dst_off:0);
                    (fun ~wr_id ->
                      Rdma.Qp.post_write q2 ~wr_id ~src:data ~src_off:0 ~len:8 ~mr:mr2
                        ~dst_off:0);
                  ]);
           false
         with Rdma.Quorum.Operation_failed { index = 1; _ } -> true))

(* Regression: an error completion from an abandoned round (here a NIC
   timeout from a partitioned follower — exactly what a new leader's first
   propose after fail-over sees) must not abort the round that merely
   shares the CQ. *)
let quorum_stale_failure_ignored () =
  Util.run_fiber (fun e ->
      let _h0, cq0, (q1, _, mr1), (q2, _, mr2) = quorum_rig e in
      Rdma.Qp.set_link_up q2 false;
      let q = Rdma.Quorum.create cq0 in
      let data = Bytes.make 8 's' in
      let post_both =
        [
          (fun ~wr_id ->
            Rdma.Qp.post_write q1 ~wr_id ~src:data ~src_off:0 ~len:8 ~mr:mr1 ~dst_off:0);
          (fun ~wr_id ->
            Rdma.Qp.post_write q2 ~wr_id ~src:data ~src_off:0 ~len:8 ~mr:mr2 ~dst_off:0);
        ]
      in
      (* Round 1: majority of 1 returns on h1's completion; h2's write is
         still in flight and will surface as Operation_timeout. *)
      let r1 = Rdma.Quorum.post_and_wait q ~needed:1 ~post:post_both in
      check_int "round 1 quorum" 1 (List.length r1.Rdma.Quorum.succeeded);
      check_int "round 1 straggler" 1 r1.Rdma.Quorum.pending;
      (* Let the dead link's timeout expire so the stale failure is the
         first completion the next round consumes. *)
      Sim.Engine.sleep e (2 * Sim.Calibration.default.Sim.Calibration.rnic_timeout);
      let r2 =
        Rdma.Quorum.post_and_wait q ~needed:1
          ~post:
            [
              (fun ~wr_id ->
                Rdma.Qp.post_write q1 ~wr_id ~src:data ~src_off:0 ~len:8 ~mr:mr1 ~dst_off:0);
            ]
      in
      check_int "round 2 unaffected" 1 (List.length r2.Rdma.Quorum.succeeded);
      check_int "stale failure counted" 1 (Rdma.Quorum.stale_failures q))

(* Regression: [drain] must absorb failed leftovers, not re-raise them. *)
let quorum_drain_absorbs_failures () =
  Util.run_fiber (fun e ->
      let _h0, cq0, (q1, _, mr1), (q2, _, mr2) = quorum_rig e in
      Rdma.Qp.set_link_up q2 false;
      let q = Rdma.Quorum.create cq0 in
      let data = Bytes.make 8 'd' in
      let r =
        Rdma.Quorum.post_and_wait q ~needed:1
          ~post:
            [
              (fun ~wr_id ->
                Rdma.Qp.post_write q1 ~wr_id ~src:data ~src_off:0 ~len:8 ~mr:mr1 ~dst_off:0);
              (fun ~wr_id ->
                Rdma.Qp.post_write q2 ~wr_id ~src:data ~src_off:0 ~len:8 ~mr:mr2 ~dst_off:0);
            ]
      in
      check_int "one pending" 1 r.Rdma.Quorum.pending;
      Rdma.Quorum.drain q;
      check_int "drain counted the failure" 1 (Rdma.Quorum.stale_failures q);
      (* A fresh round on the drained tracker works normally. *)
      let r2 =
        Rdma.Quorum.post_and_wait q ~needed:1
          ~post:
            [
              (fun ~wr_id ->
                Rdma.Qp.post_write q1 ~wr_id ~src:data ~src_off:0 ~len:8 ~mr:mr1 ~dst_off:0);
            ]
      in
      check_int "post-drain round" 1 (List.length r2.Rdma.Quorum.succeeded))

let quorum_needed_validation () =
  Util.run_fiber (fun e ->
      let _h0, cq0, _, _ = quorum_rig e in
      let q = Rdma.Quorum.create cq0 in
      check "raises" true
        (try
           ignore (Rdma.Quorum.post_and_wait q ~needed:1 ~post:[]);
           false
         with Invalid_argument _ -> true))

let suite =
  [
    ("exchange: dial connects and advertises", `Quick, exchange_dial_connects);
    ("exchange: tracks accepted", `Quick, exchange_tracks_accepted);
    ("exchange: rejects duplicate listener", `Quick, exchange_rejects_duplicate_listener);
    ("exchange: unknown service", `Quick, exchange_unknown_service);
    ("quorum: majority returns early", `Quick, quorum_majority_returns_early);
    ("quorum: error raises", `Quick, quorum_error_raises);
    ("quorum: stale failure ignored", `Quick, quorum_stale_failure_ignored);
    ("quorum: drain absorbs failures", `Quick, quorum_drain_absorbs_failures);
    ("quorum: needed validation", `Quick, quorum_needed_validation);
  ]
