(* The evaluation harness: regenerates every table and figure of the
   paper's evaluation (§7) on the simulated substrate, printing the
   paper's reported numbers next to ours. See DESIGN.md for the
   experiment index and EXPERIMENTS.md for a recorded run.

   Usage: dune exec bench/main.exe [-- --quick] [-- --only fig4 --only fig6]
                                   [-- --seed N] [-- --bechamel] [-- --csv DIR]
                                   [-- --metrics FILE] [-- --metrics-interval NS]
                                   [-- --results FILE] [-- --faults SCENARIO.json]
                                   [-- --history FILE | --no-history]
                                   [-- --git-rev REV] [-- --stamp S]
                                   [-- --compare] [-- --compare-with FILE]
                                   [-- --compare-report FILE]

   Every run appends one JSONL line (schema mu-bench-results/1, tagged with
   --git-rev / --stamp) to the history log so regressions are greppable
   across commits; --no-history disables it.

   --compare diffs this run's deterministic fields against the last
   history line (read before this run is appended) with per-field
   tolerances (Profile.Compare) and exits nonzero on regression;
   --compare-with substitutes an explicit baseline file (results JSON or
   history JSONL), --compare-report writes the diff to a file. *)

module E = Workload.Experiments

let quick = ref false
let only : string list ref = ref []
let seed = ref 42L
let with_bechamel = ref false
let csv_dir : string option ref = ref None
let trace_file : string option ref = ref None
let tracer : Trace.Tracer.t option ref = ref None
let metrics_file : string option ref = ref None
let metrics_interval = ref 50_000
let sampler : Telemetry.Sampler.t option ref = ref None
let results_file = ref "BENCH_results.json"
let history_file : string option ref = ref (Some "BENCH_history.jsonl")
let git_rev = ref "unknown"
let stamp = ref ""
let faults_file : string option ref = ref None
let faults : Faults.Scenario.t option ref = ref None
let compare_flag = ref false
let compare_with : string option ref = ref None
let compare_report : string option ref = ref None
let exit_code = ref 0

let () =
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
      quick := true;
      parse rest
    | "--only" :: id :: rest ->
      only := id :: !only;
      parse rest
    | "--bechamel" :: rest ->
      with_bechamel := true;
      parse rest
    | "--seed" :: n :: rest ->
      seed := Int64.of_string n;
      parse rest
    | "--csv" :: dir :: rest ->
      csv_dir := Some dir;
      parse rest
    | "--trace" :: file :: rest ->
      trace_file := Some file;
      parse rest
    | "--metrics" :: file :: rest ->
      metrics_file := Some file;
      parse rest
    | "--metrics-interval" :: n :: rest ->
      metrics_interval := int_of_string n;
      parse rest
    | "--results" :: file :: rest ->
      results_file := file;
      parse rest
    | "--history" :: file :: rest ->
      history_file := Some file;
      parse rest
    | "--no-history" :: rest ->
      history_file := None;
      parse rest
    | "--git-rev" :: rev :: rest ->
      git_rev := rev;
      parse rest
    | "--stamp" :: s :: rest ->
      stamp := s;
      parse rest
    | "--faults" :: file :: rest ->
      faults_file := Some file;
      parse rest
    | "--compare" :: rest ->
      compare_flag := true;
      parse rest
    | "--compare-with" :: file :: rest ->
      compare_flag := true;
      compare_with := Some file;
      parse rest
    | "--compare-report" :: file :: rest ->
      compare_report := Some file;
      parse rest
    | arg :: _ -> failwith ("unknown argument: " ^ arg)
  in
  parse (List.tl (Array.to_list Sys.argv));
  (match !faults_file with
  | None -> ()
  | Some file ->
    let ic = open_in_bin file in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    (match Faults.Scenario.of_string s with
    | Ok sc -> faults := Some sc
    | Error msg -> failwith (Printf.sprintf "--faults %s: %s" file msg)));
  if !trace_file <> None then tracer := Some (Trace.Tracer.create ());
  if !metrics_file <> None then
    sampler :=
      Some
        (Telemetry.Sampler.create (Telemetry.Registry.create ()) ~interval:!metrics_interval)

let want id = (!only = [] && id <> "bechamel") || List.mem id !only || (id = "bechamel" && !with_bechamel)

let setup () =
  { E.seed = !seed; cal = Sim.Calibration.default; trace = !tracer; metrics = !sampler;
    faults = !faults; provenance = false; on_engine = None }

(* Captured for BENCH_results.json and the acceptance checks. *)
let mu_samples : Sim.Stats.Samples.t option ref = ref None
let failover_result : E.failover_stats option ref = ref None
let figures_run : string list ref = ref []
let checks : (string * bool * string) list ref = ref []

let record_check name ok detail =
  checks := (name, ok, detail) :: !checks;
  if not ok then exit_code := 1
let scale n = if !quick then max 100 (n / 10) else n

let section id title =
  figures_run := id :: !figures_run;
  Fmt.pr "@.=== %s — %s ===@." id title

(* Optional gnuplot-ready CSV dumps alongside the printed report. *)
let csv_write name ~header rows =
  match !csv_dir with
  | None -> ()
  | Some dir ->
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    let oc = open_out (Filename.concat dir name) in
    output_string oc (header ^ "\n");
    List.iter (fun row -> output_string oc (row ^ "\n")) rows;
    close_out oc

let csv_rows : (string, string list ref) Hashtbl.t = Hashtbl.create 8

let csv_row file row =
  let r =
    match Hashtbl.find_opt csv_rows file with
    | Some r -> r
    | None ->
      let r = ref [] in
      Hashtbl.replace csv_rows file r;
      r
  in
  r := row :: !r

let csv_flush file ~header =
  match Hashtbl.find_opt csv_rows file with
  | Some r -> csv_write file ~header (List.rev !r)
  | None -> ()

let csv_samples file label s =
  csv_row file
    (Printf.sprintf "%s,%.3f,%.3f,%.3f" label
       (Sim.Stats.ns_to_us (Sim.Stats.Samples.median s))
       (Sim.Stats.ns_to_us (Sim.Stats.Samples.percentile s 1.0))
       (Sim.Stats.ns_to_us (Sim.Stats.Samples.percentile s 99.0)))

let pp_samples ?csv name ~paper s =
  (match csv with Some file -> csv_samples file name s | None -> ());
  Fmt.pr "  %-34s %-26s measured: %a@." name paper Sim.Stats.Samples.pp_us s

let us ns = Sim.Stats.ns_to_us ns

(* --- Table 1 ----------------------------------------------------------- *)

let tab1 () =
  section "tab1" "hardware (paper) vs calibration constants (ours)";
  Fmt.pr
    "  Paper testbed: 4x (2x Xeon E5-2640 v4, 256 GiB, ConnectX-4, 100 Gb/s IB,@.\
    \  MSB7700 switch, Ubuntu 18.04, OFED 4.7). We substitute a calibrated@.\
    \  simulation; the constants below are the model's datasheet (Sim.Calibration):@.";
  let c = Sim.Calibration.default in
  Fmt.pr "  one-way wire            : %a@." Sim.Distribution.pp c.Sim.Calibration.wire;
  Fmt.pr "  NIC tx/rx per WR        : %d / %d ns@." c.Sim.Calibration.nic_tx
    c.Sim.Calibration.nic_rx;
  Fmt.pr "  inline threshold        : %d B@." c.Sim.Calibration.inline_threshold;
  Fmt.pr "  QP flags / QP restart   : %a / %a@." Sim.Distribution.pp
    c.Sim.Calibration.perm_qp_flags Sim.Distribution.pp c.Sim.Calibration.perm_qp_restart;
  Fmt.pr "  MR rereg                : %.0f ns + %.0f ns/MiB@."
    c.Sim.Calibration.perm_mr_rereg_base c.Sim.Calibration.perm_mr_rereg_per_mib;
  Fmt.pr "  FD read interval        : %d ns; scores [%d..%d], fail <%d, recover >%d@."
    c.Sim.Calibration.fd_read_interval c.Sim.Calibration.score_min
    c.Sim.Calibration.score_max c.Sim.Calibration.score_fail c.Sim.Calibration.score_recover;
  Fmt.pr "  request staging memcpy  : %d ns + %.3f ns/B@." c.Sim.Calibration.memcpy_request
    c.Sim.Calibration.memcpy_byte

(* --- Fig. 2 ------------------------------------------------------------ *)

let fig2 () =
  section "fig2" "permission-switch latency vs log size (§5.2)";
  Fmt.pr
    "  Paper: MR re-reg grows with size to ~100 ms at 4 GiB; QP flags and QP@.\
    \  restart are size-independent, flags ~10x faster than restart.@.";
  let gib = 1024 * 1024 * 1024 in
  let sizes =
    [ 1024; 64 * 1024; 1024 * 1024; 64 * 1024 * 1024; gib; 4 * gib ]
  in
  let rows = E.fig2_permission_switch (setup ()) ~samples:(scale 200) ~sizes in
  Fmt.pr "  %12s %14s %14s %14s@." "log size" "QP flags (us)" "QP restart (us)"
    "MR rereg (us)";
  List.iter
    (fun r ->
      let size =
        if r.E.log_size >= gib then Printf.sprintf "%d GiB" (r.E.log_size / gib)
        else if r.E.log_size >= 1024 * 1024 then
          Printf.sprintf "%d MiB" (r.E.log_size / (1024 * 1024))
        else Printf.sprintf "%d KiB" (r.E.log_size / 1024)
      in
      Fmt.pr "  %12s %14.1f %14.1f %14.1f@." size r.E.qp_flags_us r.E.qp_restart_us
        r.E.mr_rereg_us)
    rows

(* --- Fig. 3 ------------------------------------------------------------ *)

let fig3 () =
  section "fig3" "replication latency: standalone vs attached, payload sweep (§7.1)";
  let pp_samples = pp_samples ~csv:"fig3.csv" in
  Fmt.pr
    "  Paper: ~1.3 us median at 64 B; flat below the 256 B inline threshold, then@.\
    \  gradual growth (+35%% at 512 B); handover attach adds ~400 ns; direct less.@.";
  let s = setup () in
  let n = scale 50_000 in
  List.iter
    (fun payload ->
      let r = E.mu_replication_latency s ~samples:n ~payload ~attach:Mu.Config.Standalone in
      if payload = 64 then mu_samples := Some r;
      pp_samples
        (Printf.sprintf "standalone %dB" payload)
        ~paper:(if payload <= 128 then "paper: ~1.30 us (inline)" else "paper: inline+DMA")
        r)
    [ 32; 64; 128; 256; 512 ];
  pp_samples "attached LiQ 32B (direct)" ~paper:"paper: standalone + <400ns"
    (E.mu_replication_latency s ~samples:n ~payload:32 ~attach:Mu.Config.Direct);
  pp_samples "attached HERD 50B (direct)" ~paper:"paper: standalone + <400ns"
    (E.mu_replication_latency s ~samples:n ~payload:50 ~attach:Mu.Config.Direct);
  pp_samples "attached mcd 64B (handover)" ~paper:"paper: standalone + ~400ns"
    (E.mu_replication_latency s ~samples:n ~payload:64 ~attach:Mu.Config.Handover);
  pp_samples "attached rds 64B (handover)" ~paper:"paper: standalone + ~400ns"
    (E.mu_replication_latency s ~samples:n ~payload:64 ~attach:Mu.Config.Handover)

(* --- Fig. 4 ------------------------------------------------------------ *)

let fig4 () =
  section "fig4" "replication latency vs other systems, 64 B (§7.1)";
  let pp_samples = pp_samples ~csv:"fig4.csv" in
  Fmt.pr
    "  Paper: Mu 1.3 us beats every alternative by >= 2.7x (best: Hermes) and@.\
    \  APUS by ~4x; Mu's 99p-1p spread <= 0.5 us, others >= 4 us of variation.@.";
  let s = setup () in
  let n = scale 50_000 in
  let mu = E.mu_replication_latency s ~samples:n ~payload:64 ~attach:Mu.Config.Standalone in
  mu_samples := Some mu;
  pp_samples "Mu" ~paper:"paper: 1.30 us" mu;
  let mu_med = Sim.Stats.Samples.median mu in
  List.iter
    (fun (name, system, paper) ->
      let r = E.baseline_replication_latency s ~samples:n ~system ~payload:64 in
      pp_samples name ~paper r;
      Fmt.pr "  %-34s ratio vs Mu: %.1fx@." ""
        (float_of_int (Sim.Stats.Samples.median r) /. float_of_int mu_med))
    [
      ("Hermes", `Hermes, "paper: ~3.5 us (>=2.7x Mu)");
      ("DARE", `Dare, "paper: ~4-5 us");
      ("APUS (mcd)", `Apus, "paper: ~4x Mu");
      ("HovercRaft", `Hovercraft, "paper: 30-60 us (excluded)");
    ]

(* --- Fig. 5 ------------------------------------------------------------ *)

let fig5 () =
  section "fig5" "end-to-end client latency (§7.2)";
  let pp_samples = pp_samples ~csv:"fig5.csv" in
  let s = setup () in
  let n = scale 20_000 in
  Fmt.pr "  Panel 1 — financial exchange (Liquibook over eRPC):@.";
  Fmt.pr "  Paper: unreplicated 4.08 us median; +Mu ~35%% overhead; large client tail.@.";
  pp_samples "LiQ unreplicated" ~paper:"paper: 4.08 us"
    (E.end_to_end_latency s ~samples:n ~app:Apps.Transport.Erpc ~system:E.Unreplicated);
  pp_samples "LiQ + Mu" ~paper:"paper: ~5.5 us (+35%)"
    (E.end_to_end_latency s ~samples:n ~app:Apps.Transport.Erpc ~system:E.With_mu);
  Fmt.pr "  Cross-check: the executable matching engine behind the eRPC layer@.";
  pp_samples "  LiQ (real service)" ~paper:"matches the model above"
    (E.liquibook_real s ~samples:n ~replicated:false);
  pp_samples "  LiQ + Mu (real, Fig. 1)" ~paper:"matches the model above"
    (E.liquibook_real s ~samples:n ~replicated:true);
  Fmt.pr "  Panel 2 — microsecond KV (HERD-class):@.";
  Fmt.pr "  Paper: HERD 2.25 us; +Mu adds 1.34 us; ~2x better than DARE's KV.@.";
  pp_samples "HERD unreplicated" ~paper:"paper: 2.25 us"
    (E.end_to_end_latency s ~samples:n ~app:Apps.Transport.Herd_rdma ~system:E.Unreplicated);
  pp_samples "HERD + Mu" ~paper:"paper: ~3.6 us"
    (E.end_to_end_latency s ~samples:n ~app:Apps.Transport.Herd_rdma ~system:E.With_mu);
  pp_samples "DARE (own KV)" ~paper:"paper: ~2x HERD+Mu"
    (E.end_to_end_latency s ~samples:n ~app:Apps.Transport.Herd_rdma ~system:E.Dare_kv);
  Fmt.pr "  Cross-check: the executable HERD server (Apps.Herd) on the raw fabric@.";
  pp_samples "  HERD (real server)" ~paper:"matches the model above"
    (E.herd_real s ~samples:n ~replicated:false);
  pp_samples "  HERD + Mu (real, Fig. 1)" ~paper:"matches the model above"
    (E.herd_real s ~samples:n ~replicated:true);
  Fmt.pr "  Panel 3 — traditional KV over TCP (note: 100 us scale):@.";
  Fmt.pr "  Paper: Mu adds ~1.5 us (invisible); ~5 us less than APUS.@.";
  List.iter
    (fun (label, app) ->
      pp_samples (label ^ " unreplicated") ~paper:"paper: 100-300 us"
        (E.end_to_end_latency s ~samples:n ~app ~system:E.Unreplicated);
      pp_samples (label ^ " + Mu") ~paper:"paper: +~1.5 us"
        (E.end_to_end_latency s ~samples:n ~app ~system:E.With_mu);
      pp_samples (label ^ " + APUS") ~paper:"paper: +~5 us vs Mu"
        (E.end_to_end_latency s ~samples:n ~app ~system:E.With_apus))
    [ ("mcd", Apps.Transport.Tcp_memcached); ("rds", Apps.Transport.Tcp_redis) ]

(* --- Fig. 6 ------------------------------------------------------------ *)

let fig6 () =
  section "fig6" "fail-over time distribution (§7.3)";
  Fmt.pr
    "  Paper: median 873 us, 99p 947 us; detection ~600 us; permission switch@.\
    \  ~30%% of total (mean 244 us, 99p 294 us — two permission changes).@.";
  let rounds = scale 1_000 in
  let r = E.failover (setup ()) ~rounds in
  failover_result := Some r;
  pp_samples "total fail-over" ~paper:"paper: 873 (.. 947) us" r.E.total;
  pp_samples "  detection" ~paper:"paper: ~600 us" r.E.detection;
  pp_samples "  permission switch + catch-up" ~paper:"paper: 244 (.. 294) us" r.E.switch;
  Fmt.pr "  share of switch in total: %.0f%% (paper: ~30%%)@."
    (100.0
    *. float_of_int (Sim.Stats.Samples.median r.E.switch)
    /. float_of_int (Sim.Stats.Samples.median r.E.total));
  (* Acceptance check against the trace itself: the perm_switch spans the
     fail-over rounds emitted must sum to the paper's ~30% of total. *)
  (match !tracer with
  | None -> ()
  | Some tr ->
    let bd = Trace.Tracer.breakdown tr in
    let sw = Trace.Breakdown.total_ns bd ~cat:"failover" ~name:"perm_switch" in
    let tot = Trace.Breakdown.total_ns bd ~cat:"failover" ~name:"total" in
    if tot = 0 then begin
      Fmt.pr "  trace check: FAIL (no failover spans recorded)@.";
      exit_code := 1
    end
    else begin
      let share = 100.0 *. float_of_int sw /. float_of_int tot in
      let ok = share >= 25.0 && share <= 35.0 in
      Fmt.pr "  traced perm_switch share of fail-over: %.1f%% (accept: 25-35%%) %s@." share
        (if ok then "OK" else "FAIL");
      if not ok then exit_code := 1
    end);
  Fmt.pr "  histogram of total fail-over (50 us buckets):@.";
  let h = Sim.Stats.Histogram.create ~bucket_width:50_000 in
  List.iter (Sim.Stats.Histogram.add h) (Sim.Stats.Samples.to_list r.E.total);
  List.iter
    (fun (start, count) ->
      csv_row "fig6_hist.csv" (Printf.sprintf "%.1f,%d" (Sim.Stats.ns_to_us start) count))
    (Sim.Stats.Histogram.buckets h);
  csv_flush "fig6_hist.csv" ~header:"bucket_us,count";
  Fmt.pr "%a" (Sim.Stats.Histogram.pp ~max_width:44 ()) h;
  (* The order-of-magnitude comparison from §1: prior systems' fail-over
     is bounded below by their conservative timeouts. *)
  let rng = Sim.Rng.create !seed in
  let med d =
    let s = Sim.Stats.Samples.create () in
    for _ = 1 to 200 do
      Sim.Stats.Samples.add s (int_of_float (Baselines.Failover_model.sample_us d rng))
    done;
    float_of_int (Sim.Stats.Samples.median s) /. 1000.0
  in
  Fmt.pr "  fail-over vs prior systems (paper §1: Mu cuts it by >= 90%%):@.";
  Fmt.pr "    %-12s %10.2f ms   (paper: 0.873 ms)@." "Mu"
    (float_of_int (Sim.Stats.Samples.median r.E.total) /. 1.0e6);
  Fmt.pr "    %-12s %10.2f ms   (paper: ~10 ms; modelled)@." "HovercRaft"
    (med Baselines.Failover_model.hovercraft);
  let dare = E.dare_failover (setup ()) ~rounds:(scale 60) in
  Fmt.pr "    %-12s %10.2f ms   (paper: ~30 ms; measured, RAFT-style election)@." "DARE"
    (float_of_int (Sim.Stats.Samples.median dare) /. 1.0e6);
  Fmt.pr "    %-12s %10.2f ms   (paper: >= 150 ms; modelled)@." "Hermes"
    (med Baselines.Failover_model.hermes)

(* --- Fig. 7 ------------------------------------------------------------ *)

let fig7 () =
  section "fig7" "throughput vs latency: batching and outstanding requests (§7.4)";
  Fmt.pr
    "  Paper: peak ~47 ops/us at batch 128 x 8 outstanding (17 us median);@.\
    \  2 outstanding beats 1 by 20-50%% at tiny latency cost; wall ~45 ops/us@.\
    \  from the leader's request-staging memcpy.@.";
  let s = setup () in
  let requests = scale 30_000 in
  let batches = if !quick then [ 1; 8; 32; 128 ] else [ 1; 2; 4; 8; 16; 32; 64; 128 ] in
  let outs = if !quick then [ 1; 2; 8 ] else [ 1; 2; 4; 8 ] in
  Fmt.pr "  %4s %4s %12s %14s %12s@." "out" "batch" "ops/us" "median (us)" "p99 (us)";
  List.iter
    (fun outstanding ->
      List.iter
        (fun batch ->
          let p = E.throughput_point s ~requests ~batch ~outstanding in
          csv_row "fig7.csv"
            (Printf.sprintf "%d,%d,%.3f,%.3f,%.3f" outstanding batch p.E.ops_per_us
               (us p.E.median_latency_ns) (us p.E.p99_latency_ns));
          Fmt.pr "  %4d %4d %12.2f %14.2f %12.2f@." outstanding batch p.E.ops_per_us
            (us p.E.median_latency_ns) (us p.E.p99_latency_ns))
        batches;
      Fmt.pr "@.")
    outs

(* --- Ablations ---------------------------------------------------------- *)

let ablations () =
  section "ablation-prepare" "omit-prepare optimization (§4.2, DESIGN.md §6.4)";
  let w, wo = E.ablation_omit_prepare (setup ()) ~samples:(scale 20_000) in
  pp_samples "with omit-prepare (Mu)" ~paper:"one write round" w;
  pp_samples "prepare every propose" ~paper:"+2 read rounds + write" wo;
  section "ablation-perm" "permissions vs re-read race detection (DESIGN.md §6.2)";
  let mu, dp = E.ablation_permissions (setup ()) ~samples:(scale 20_000) in
  pp_samples "Mu (permission-fenced write)" ~paper:"1 round" mu;
  pp_samples "Disk-Paxos style write+re-read" ~paper:"2 rounds" dp;
  section "ablation-shards" "parallel Mu instances for commuting ops (§8)";
  Fmt.pr
    "  Paper: \"several parallel instances of Mu could be used to replicate@.\
    \  concurrent operations that commute... to increase throughput\".@.";
  List.iter
    (fun shards ->
      let tput = E.sharded_throughput (setup ()) ~requests:(scale 20_000) ~shards in
      Fmt.pr "  %d shard(s): %6.2f ops/us@." shards tput)
    [ 1; 2; 4 ];
  section "ablation-pmem" "persistent log: RDMA flush-to-PMEM extension (§1)";
  let vol = E.mu_latency_persistence (setup ()) ~samples:(scale 20_000) ~persistent:false in
  let dur = E.mu_latency_persistence (setup ()) ~samples:(scale 20_000) ~persistent:true in
  pp_samples "volatile (paper's Mu)" ~paper:"in-memory only" vol;
  pp_samples "durable (PMEM flush before ack)" ~paper:"paper: \"minimum latency\"" dur;
  Fmt.pr
    "  (One remote flush per accept: +%.2f us — consistent with the paper's@.\
    \   expectation that the SNIA persistence extension adds minimal latency.)@."
    (us (Sim.Stats.Samples.median dur - Sim.Stats.Samples.median vol));
  section "ablation-fd" "pull-score vs push heartbeats under delay spikes (§5.1)";
  let rows = E.ablation_failure_detector (setup ()) in
  Fmt.pr "  %-34s %14s %16s@." "detector" "detection (us)" "false positives";
  List.iter
    (fun r ->
      Fmt.pr "  %-34s %14.0f %10d in %.0fs@." r.E.detector r.E.detection_us
        r.E.false_positives r.E.observation_s)
    rows;
  Fmt.pr
    "  (The pull-score detector reaches sub-ms detection with zero false@.\
    \   positives; a push detector needs a timeout above the worst network@.\
    \   delay spike to avoid false positives, costing ~10x the detection time.)@."

(* --- Crash recovery ------------------------------------------------------ *)

let recovery_outcome : Workload.Chaos.outcome option ref = ref None

let recovery () =
  section "recovery" "crash-recovery: kill -> restart -> rejoin under traffic (DESIGN.md §14)";
  Fmt.pr
    "  Beyond the paper's crash-stop model (§2.2): the leader's host is killed@.\
    \  at 5 ms and rebooted at 25 ms under client traffic. The rebooted replica@.\
    \  restores its durable log, catches up from the new leader at bounded rate@.\
    \  and rejoins the quorum at exact log parity.@.";
  let scenario = Option.get (Faults.Scenario.by_name ~n:3 "kill-restart") in
  let o =
    Workload.Chaos.run ~ops_per_client:(scale 600 / 10) ~think:100_000 ~seed:!seed ~n:3
      scenario
  in
  recovery_outcome := Some o;
  Fmt.pr "  %a@." Workload.Chaos.pp_outcome o;
  List.iter
    (fun (r : Mu.Smr.rejoin) ->
      Fmt.pr
        "  host %d: time to parity %8.1f us   entries pulled %4d   rounds %3d   \
         recheckpoints %d@."
        r.Mu.Smr.pid
        (us (r.Mu.Smr.parity_at - r.Mu.Smr.restarted_at))
        r.Mu.Smr.entries_pulled r.Mu.Smr.pull_rounds r.Mu.Smr.recheckpoints)
    o.Workload.Chaos.rejoins;
  if o.Workload.Chaos.degraded_ns > 0 then
    Fmt.pr "  degraded (quorum-lost) time: %.1f us@." (us o.Workload.Chaos.degraded_ns);
  if o.Workload.Chaos.shed > 0 then
    Fmt.pr "  requests shed by the queue bound: %d@." o.Workload.Chaos.shed;
  record_check "recovery_kill_restart"
    (Workload.Chaos.passed o && o.Workload.Chaos.rejoins <> [])
    (Fmt.str "%a" Workload.Chaos.pp_outcome o);
  Fmt.pr "  check: rejoin reached parity, run linearizable + invariant-clean: %s@."
    (if Workload.Chaos.passed o && o.Workload.Chaos.rejoins <> [] then "OK" else "FAIL")

(* --- Serving tier -------------------------------------------------------- *)

let serving_points : Serving.Surface.point list ref = ref []

let serving () =
  section "serving" "serving tier: shard-count x batch-size surface (§8 x §7.4)";
  Fmt.pr
    "  An open-loop client population (Zipf keys, Poisson arrivals) drives the@.\
    \  sharded cluster through the serving tier; batch > 1 engages the leader@.\
    \  doorbell (one RDMA write per group of log slots). Fig. 7 extended along@.\
    \  the §8 parallel-instances axis:@.";
  let s = setup () in
  let shard_counts = if !quick then [ 1; 2; 4 ] else [ 1; 2; 4; 8 ] in
  let batches = if !quick then [ 1; 8 ] else [ 1; 4; 16 ] in
  let clients = if !quick then 200_000 else 400_000 in
  let think_ns = 10_000_000 in
  let duration = if !quick then 1_000_000 else 3_000_000 in
  Fmt.pr "  (%d modeled clients, %.0f us think time, %d us per cell)@." clients
    (us think_ns) (duration / 1000);
  let points = Serving.Surface.sweep s ~shard_counts ~batches ~clients ~think_ns ~duration in
  serving_points := points;
  Fmt.pr "  %6s %5s %8s %11s %13s %7s %9s %9s@." "shards" "batch" "doorbell" "offered/us"
    "committed/us" "shed" "p50 (us)" "p99 (us)";
  List.iter
    (fun (p : Serving.Surface.point) ->
      csv_row "serving.csv"
        (Printf.sprintf "%d,%d,%d,%.3f,%.3f,%d,%d,%.3f,%.3f" p.Serving.Surface.shards
           p.Serving.Surface.batch p.Serving.Surface.doorbell p.Serving.Surface.offered_per_us
           p.Serving.Surface.committed_per_us p.Serving.Surface.shed
           p.Serving.Surface.suppressed
           (us p.Serving.Surface.p50_ns)
           (us p.Serving.Surface.p99_ns));
      Fmt.pr "  %6d %5d %8d %11.2f %13.2f %7d %9.2f %9.2f@." p.Serving.Surface.shards
        p.Serving.Surface.batch p.Serving.Surface.doorbell p.Serving.Surface.offered_per_us
        p.Serving.Surface.committed_per_us p.Serving.Surface.shed
        (us p.Serving.Surface.p50_ns)
        (us p.Serving.Surface.p99_ns))
    points;
  csv_flush "serving.csv"
    ~header:"shards,batch,doorbell,offered_per_us,committed_per_us,shed,suppressed,p50_us,p99_us";
  (* Acceptance: at every shard count, the largest batch (doorbell on)
     must commit more requests per us than unbatched replication. *)
  let max_batch = List.fold_left max 1 batches in
  let cell sc b =
    List.find_opt
      (fun (p : Serving.Surface.point) ->
        p.Serving.Surface.shards = sc && p.Serving.Surface.batch = b)
      points
  in
  let ok =
    List.for_all
      (fun sc ->
        match (cell sc 1, cell sc max_batch) with
        | Some p1, Some pk ->
          pk.Serving.Surface.committed_per_us > p1.Serving.Surface.committed_per_us
        | _ -> false)
      shard_counts
  in
  record_check "serving_batching_beats_unbatched" ok
    (Printf.sprintf "batch %d out-commits batch 1 at shard counts %s" max_batch
       (String.concat "," (List.map string_of_int shard_counts)));
  Fmt.pr "  check: batch %d beats batch 1 at every shard count: %s@." max_batch
    (if ok then "OK" else "FAIL")

(* --- Online SLO monitor --------------------------------------------------- *)

let monitor_log : Monitor.Log.t option ref = ref None
let monitor_windows = ref 0

let monitor () =
  section "monitor" "online SLO monitor: deterministic alerting through kill-restart chaos";
  Fmt.pr
    "  The monitor plane (DESIGN.md \xc2\xa716) rides the telemetry sampler during a@.\
    \  kill-restart chaos run: virtual-time SLO windows close every 20 us and a@.\
    \  hysteresis rule engine turns breaches into fire/clear alert edges.@.";
  let scenario = Option.get (Faults.Scenario.by_name ~n:3 "kill-restart") in
  let reg = Telemetry.Registry.create () in
  let sampler = Telemetry.Sampler.create reg ~interval:10_000 in
  let online = ref None in
  (* Dense traffic (think 50 us) keeps every window non-empty so the rate
     rules do not flap; the run outlives the 25 ms restart so the rejoin
     watchdog sees the catch-up in flight. Deliberately not [scale]d. *)
  let o =
    Workload.Chaos.run ~metrics:sampler
      ~on_engine:(fun e ->
        online := Some (Monitor.Online.attach ~window_ns:20_000 e sampler))
      ~ops_per_client:600 ~think:50_000 ~seed:!seed ~n:3 scenario
  in
  let online = Option.get !online in
  let log = Monitor.Online.log online in
  monitor_log := Some log;
  monitor_windows := Monitor.Online.windows online;
  Fmt.pr "  %a@." Workload.Chaos.pp_outcome o;
  Fmt.pr "  windows evaluated: %d; alert edges: %d@." (Monitor.Online.windows online)
    (Monitor.Log.length log);
  List.iter (fun en -> Fmt.pr "  %a@." Monitor.Log.pp_entry en) (Monitor.Log.entries log);
  (match Monitor.Log.firing log with
  | [] -> ()
  | still -> Fmt.pr "  still firing at halt: %s@." (String.concat ", " still));
  let edges rule =
    let es = List.filter (fun (en : Monitor.Log.entry) -> en.rule = rule)
        (Monitor.Log.entries log) in
    ( List.exists (fun (en : Monitor.Log.entry) -> en.edge = `Fire) es,
      List.exists (fun (en : Monitor.Log.entry) -> en.edge = `Clear) es )
  in
  List.iter
    (fun rule ->
      let fired, cleared = edges rule in
      let ok = fired && cleared in
      record_check ("monitor_" ^ rule ^ "_edges") ok
        (Printf.sprintf "%s fired=%b cleared=%b during kill-restart" rule fired cleared);
      Fmt.pr "  check: %s fires and clears: %s@." rule (if ok then "OK" else "FAIL"))
    [ "quorum_loss"; "rejoin_lag" ]

(* --- Observability self-profiling ----------------------------------------- *)

let overhead_samples : Monitor.Overhead.sample list ref = ref []

let observability () =
  section "observability" "self-profiling: per-layer observability overhead";
  Fmt.pr
    "  The same synthetic fiber workload (every op passes a span scope and a@.\
    \  trace-counter hook) run once per instrumentation layer; deltas against@.\
    \  the baseline row are the per-layer hook cost.@.";
  let sleeps = if !quick then 500 else 2_000 in
  let samples = Monitor.Overhead.run_all ~sleeps ~clock:Unix.gettimeofday () in
  overhead_samples := samples;
  List.iter (fun s -> Fmt.pr "  %a@." Monitor.Overhead.pp_sample s) samples;
  let baseline =
    List.find (fun (s : Monitor.Overhead.sample) -> s.layer = "baseline") samples
  in
  (* Disabled hooks must stay lean: the budget covers the fiber loop and
     the engine's own sleep bookkeeping, not per-hook allocation (the
     exact zero-allocation claim is asserted by the sim test suite). *)
  let ok_alloc = baseline.Monitor.Overhead.minor_words_per_op < 128.0 in
  record_check "observability_disabled_hooks_lean" ok_alloc
    (Printf.sprintf "baseline %.1f minor words/op (budget 128)"
       baseline.Monitor.Overhead.minor_words_per_op);
  Fmt.pr "  check: disabled hooks lean (%.1f words/op < 128): %s@."
    baseline.Monitor.Overhead.minor_words_per_op
    (if ok_alloc then "OK" else "FAIL");
  (* Generous wall-clock floor: catches order-of-magnitude regressions
     only, never flakes on a loaded CI box. *)
  let ok_rate = baseline.Monitor.Overhead.ops_per_s > 20_000.0 in
  record_check "observability_events_per_sec_floor" ok_rate
    (Printf.sprintf "baseline %.0f ops/s (floor 20000)"
       baseline.Monitor.Overhead.ops_per_s);
  Fmt.pr "  check: baseline throughput above generous floor: %s@."
    (if ok_rate then "OK" else "FAIL")

(* --- Engine event-rate microbench ---------------------------------------- *)

(* Pre-wheel baseline, measured on this box at the PR-8 cut point with the
   boxed-entry binary heap and Fun.protect resume path (64 fibers x 20k
   sleeps, metrics/trace off). Events/sec is wall-clock and so only
   meaningful relative to the same box; minor words per event is a pure
   allocation count and is machine-independent. *)
let heap_baseline_events_per_sec = 5.92e6
let heap_baseline_minor_words_per_event = 35.5

let engine_events_per_sec : float option ref = ref None

type engine_speed_stats = {
  es_rate : float;
  es_words_per_event : float;
  es_heap_ops : float;
  es_wheel_ops : float;
}

let engine_speed_stats : engine_speed_stats option ref = ref None

(* Raw queue throughput at a fixed depth: a pop immediately followed by a
   push of a slightly later key, the steady-state pattern of a busy
   engine. Same op sequence for both backends, so the ratio is a
   same-box, load-insensitive measure of the wheel swap. *)
let queue_ops_per_sec push pop =
  let depth = 8192 and ops = if !quick then 200_000 else 2_000_000 in
  let keys = Array.init 65_536 (fun i -> i * 2_654_435_761 land 0xFFFFF) in
  for i = 0 to depth - 1 do
    push ~key:keys.(i) ~seq:i
  done;
  let t0 = Unix.gettimeofday () in
  for i = 0 to ops - 1 do
    pop ();
    push ~key:(keys.(i land 65_535) + i) ~seq:(depth + i)
  done;
  let dt = Unix.gettimeofday () -. t0 in
  if dt > 0.0 then float_of_int ops /. dt else 0.0

let engine_speed () =
  section "engine-speed" "wall-clock event throughput of the simulation core";
  Fmt.pr
    "  How many discrete events the DES core retires per wall-clock second@.\
    \  (sleep-wakeup pairs across concurrent fibers; no RDMA, no protocol),@.\
    \  and how many minor words each event allocates with metrics and@.\
    \  tracing off — the configuration million-client runs pay for.@.";
  let fibers = 64 in
  let per_fiber = if !quick then 2_000 else 20_000 in
  let e = Sim.Engine.create ~seed:1L () in
  for i = 1 to fibers do
    Sim.Engine.spawn e ~name:(Printf.sprintf "spin%d" i) (fun () ->
        for _ = 1 to per_fiber do
          Sim.Engine.sleep e 100
        done)
  done;
  let w0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  Sim.Engine.run e;
  let dt = Unix.gettimeofday () -. t0 in
  let words = Gc.minor_words () -. w0 in
  (* one sleep = timer event + resume event *)
  let events = 2 * fibers * per_fiber in
  let rate = if dt > 0.0 then float_of_int events /. dt else 0.0 in
  let words_per_event = words /. float_of_int events in
  engine_events_per_sec := Some rate;
  Fmt.pr "  %d fibers x %d sleeps: %.2e events/s (%.0f ns/event wall)@." fibers per_fiber
    rate
    (if rate > 0.0 then 1e9 /. rate else 0.0);
  Fmt.pr "  allocation: %.2f minor words/event (heap-engine baseline %.1f)@."
    words_per_event heap_baseline_minor_words_per_event;
  Fmt.pr "  vs recorded heap baseline on this box: %.2fx events/s@."
    (rate /. heap_baseline_events_per_sec);
  (* Same-box raw queue comparison at depth 8192. *)
  let h = Sim.Heap.create () in
  let heap_ops =
    queue_ops_per_sec
      (fun ~key ~seq -> Sim.Heap.push h ~key ~seq ())
      (fun () -> ignore (Sim.Heap.pop h))
  in
  let w = Sim.Wheel.create () in
  let wheel_ops =
    queue_ops_per_sec
      (fun ~key ~seq -> Sim.Wheel.push w ~key ~seq ())
      (fun () -> ignore (Sim.Wheel.pop_exn w))
  in
  let speedup = if heap_ops > 0.0 then wheel_ops /. heap_ops else 0.0 in
  Fmt.pr "  raw queue at depth 8192: heap %.2e ops/s, wheel %.2e ops/s (%.1fx)@." heap_ops
    wheel_ops speedup;
  engine_speed_stats :=
    Some { es_rate = rate; es_words_per_event = words_per_event; es_heap_ops = heap_ops;
           es_wheel_ops = wheel_ops };
  (* Same-box, load-insensitive speedup gate for the wheel swap. *)
  let ok_queue = speedup >= 1.5 in
  record_check "engine_speed_queue_speedup" ok_queue
    (Printf.sprintf "wheel %.2fx heap at depth 8192 (floor 1.5x)" speedup);
  Fmt.pr "  check: wheel >= 1.5x heap on raw queue ops: %s@."
    (if ok_queue then "OK" else "FAIL");
  (* Allocation is a count, not a clock: the ceiling is hard. 24 words
     per event sits well under the 35.5 the heap engine spent and well
     over the 14.1 the wheel engine measures, absorbing minor runtime
     variation without hiding a per-event box. *)
  let ok_alloc = words_per_event <= 24.0 in
  record_check "engine_speed_alloc_ceiling" ok_alloc
    (Printf.sprintf "%.2f minor words/event (ceiling 24, heap baseline %.1f)"
       words_per_event heap_baseline_minor_words_per_event);
  Fmt.pr "  check: minor words/event under hard ceiling (%.2f <= 24): %s@." words_per_event
    (if ok_alloc then "OK" else "FAIL");
  (* Generous wall-clock floor: catches order-of-magnitude regressions
     only, never flakes on a loaded CI box. *)
  let ok_rate = rate > 500_000.0 in
  record_check "engine_speed_events_floor" ok_rate
    (Printf.sprintf "%.2e events/s (floor 5e5)" rate);
  Fmt.pr "  check: events/s above generous floor: %s@." (if ok_rate then "OK" else "FAIL")

(* --- Whole-run profiler ---------------------------------------------------- *)

type profile_result = {
  pr_rounds : int;
  pr_span_ns : int;
  pr_idle_ns : int;
  pr_stacks : int;
  pr_frames : int;
  pr_selfcost : Monitor.Overhead.Attached.row list; (* volatile *)
}

let profile_result : profile_result option ref = ref None

let profile_section () =
  section "profile" "whole-run profiler: exact virtual-time attribution of a fail-over run";
  Fmt.pr
    "  The deterministic profiler (DESIGN.md \xc2\xa718) attributes every virtual@.\
    \  nanosecond of a fail-over run to (host, fiber, provenance-span stack);@.\
    \  the attributed buckets sum to the run's span exactly. Self-cost rows@.\
    \  (what the observability layers cost the wall clock) are volatile.@.";
  let attached = Monitor.Overhead.Attached.create ~clock:Unix.gettimeofday () in
  let vts = ref [] in
  let s =
    {
      (setup ()) with
      E.provenance = true;
      on_engine =
        Some
          (fun e ->
            vts := Profile.Vt.attach e :: !vts;
            Monitor.Overhead.Attached.attach attached e);
    }
  in
  let rounds = scale 200 in
  let _stats =
    Monitor.Overhead.Attached.measure_run attached (fun () -> E.failover s ~rounds)
  in
  List.iter Profile.Vt.finish !vts;
  let folded = Profile.Vt.folded !vts in
  let total = Profile.Vt.total_ns folded in
  let span = List.fold_left (fun a vt -> a + Profile.Vt.span_ns vt) 0 !vts in
  let idle = List.fold_left (fun a vt -> a + Profile.Vt.idle_ns vt) 0 !vts in
  let frames = List.length (Profile.Report.of_folded folded) in
  profile_result :=
    Some
      {
        pr_rounds = rounds;
        pr_span_ns = span;
        pr_idle_ns = idle;
        pr_stacks = List.length folded;
        pr_frames = frames;
        pr_selfcost = Monitor.Overhead.Attached.report attached;
      };
  Fmt.pr "%a" (fun ppf -> Profile.Report.pp ~top:8 ppf) folded;
  let ok = total = span in
  record_check "profile_exact_attribution" ok
    (Printf.sprintf "folded sum %d ns vs run span %d ns over %d rounds" total span rounds);
  Fmt.pr "  check: attributed buckets sum exactly to the run span: %s@."
    (if ok then "OK" else "FAIL");
  Fmt.pr "  simulator self-cost (wall-clock, volatile):@.";
  List.iter
    (fun r -> Fmt.pr "    %a@." Monitor.Overhead.Attached.pp_row r)
    (Monitor.Overhead.Attached.report attached)

(* --- Bechamel microbenchmarks ------------------------------------------- *)

let bechamel_suite () =
  section "bechamel" "wall-clock microbenchmarks of the implementation hot paths";
  let open Bechamel in
  let eng = Sim.Engine.create ~seed:1L () in
  let host = Sim.Host.create eng Sim.Calibration.default ~id:0 ~name:"bench" in
  let mr =
    Rdma.Mr.register host
      ~size:(Mu.Log.required_size ~slots:64 ~value_cap:256)
      ~access:Rdma.Verbs.access_rw
  in
  let log = Mu.Log.attach mr ~slots:64 ~value_cap:256 in
  let value = Bytes.make 64 'x' in
  let img = Mu.Log.encode_slot log ~proposal:7L ~value in
  let book = Apps.Order_book.create () in
  let rng = Sim.Rng.create 2L in
  let flow = Workload.Generators.order_flow rng in
  let kv = Apps.Kv_store.create () in
  let heap_src = Sim.Heap.create () in
  let wheel_src = Sim.Wheel.create () in
  let idx = ref 0 in
  let tests =
    Test.make_grouped ~name:"mu"
      [
        Test.make ~name:"log/encode_slot(64B)"
          (Staged.stage (fun () -> ignore (Mu.Log.encode_slot log ~proposal:7L ~value)));
        Test.make ~name:"log/write+read_slot"
          (Staged.stage (fun () ->
               Mu.Log.write_slot_raw_local log 3 img;
               ignore (Mu.Log.read_slot log 3)));
        Test.make ~name:"order_book/submit+match"
          (Staged.stage (fun () ->
               ignore (Apps.Exchange.apply book (Workload.Generators.next_order flow))));
        Test.make ~name:"kv/put"
          (Staged.stage (fun () ->
               incr idx;
               ignore
                 (Apps.Kv_store.apply kv
                    (Apps.Kv_store.Put { key = string_of_int (!idx land 1023); value = "v" }))));
        Test.make ~name:"heap/push+pop"
          (Staged.stage (fun () ->
               incr idx;
               Sim.Heap.push heap_src ~key:(!idx land 255) ~seq:!idx ();
               ignore (Sim.Heap.pop heap_src)));
        Test.make ~name:"wheel/push+pop"
          (Staged.stage (fun () ->
               incr idx;
               (* advancing key: keeps the op in the wheel proper rather
                  than the behind-the-clock past heap *)
               Sim.Wheel.push wheel_src ~key:(!idx + (!idx land 255)) ~seq:!idx ();
               ignore (Sim.Wheel.pop_exn wheel_src)));
        Test.make ~name:"rng/int64" (Staged.stage (fun () -> ignore (Sim.Rng.int64 rng)));
        Test.make ~name:"batch/encode+decode"
          (Staged.stage (fun () ->
               ignore (Mu.Smr.decode_batch (Mu.Smr.encode_batch [ value ]))));
      ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) () in
  let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) results [] in
  List.iter
    (fun (name, o) ->
      match Analyze.OLS.estimates o with
      | Some (est :: _) -> Fmt.pr "  %-34s %10.1f ns/op@." name est
      | Some [] | None -> Fmt.pr "  %-34s (no estimate)@." name)
    (List.sort compare rows)

let () =
  Fmt.pr "Mu reproduction benchmark harness (seed %Ld%s)@." !seed
    (if !quick then ", quick mode" else "");
  if want "tab1" then tab1 ();
  if want "fig2" then fig2 ();
  if want "fig3" then fig3 ();
  if want "fig4" then fig4 ();
  if want "fig5" then fig5 ();
  if want "fig6" then fig6 ();
  if want "fig7" then fig7 ();
  if
    want "ablations"
    || List.exists (fun id -> String.length id >= 8 && String.sub id 0 8 = "ablation") !only
  then ablations ();
  if want "recovery" then recovery ();
  if want "serving" then serving ();
  if want "monitor" then monitor ();
  if want "observability" then observability ();
  if want "engine-speed" then engine_speed ();
  if want "profile" then profile_section ();
  if want "bechamel" then bechamel_suite ();
  csv_flush "fig3.csv" ~header:"configuration,median_us,p1_us,p99_us";
  csv_flush "fig4.csv" ~header:"system,median_us,p1_us,p99_us";
  csv_flush "fig5.csv" ~header:"configuration,median_us,p1_us,p99_us";
  csv_flush "fig7.csv" ~header:"outstanding,batch,ops_per_us,median_us,p99_us";
  (match !csv_dir with
  | Some dir -> Fmt.pr "@.CSV series written to %s/@." dir
  | None -> ());
  (match !tracer, !trace_file with
  | Some tr, Some file ->
    Trace.Tracer.write_chrome tr file;
    Fmt.pr "@.%a" Trace.Tracer.pp_summary tr;
    Fmt.pr "Chrome trace written to %s (open in ui.perfetto.dev)@." file
  | _ -> ());
  (* --- acceptance checks -------------------------------------------------- *)
  (match !mu_samples with
  | None -> ()
  | Some s ->
    (* Calibrated band for 64 B standalone replication: the paper reports
       ~1.3 us median; accept [0.9, 2.0] us. *)
    let p50 = Sim.Stats.Samples.median s in
    let ok = p50 >= 900 && p50 <= 2_000 in
    record_check "replication_p50_band" ok
      (Printf.sprintf "p50 %.2f us (accept 0.90-2.00 us)" (us p50));
    Fmt.pr "@.check: 64B replication median in calibrated band: %.2f us %s@." (us p50)
      (if ok then "OK" else "FAIL"));
  (match !sampler, !failover_result with
  | Some smp, Some _ ->
    (* The exported score timeline must show some follower's view of the
       paused leader crossing below the fail threshold and, after the
       resume, back above the recover threshold. *)
    let ok = Telemetry.Dashboard.has_fail_recover_crossing ~fail:2 ~recover:6 smp in
    record_check "score_fail_recover_crossing" ok
      "mu_score timeline crosses <2 then >6 during fail-over";
    Fmt.pr "check: score timeline crosses fail(<2) then recover(>6): %s@."
      (if ok then "OK" else "FAIL")
  | _ -> ());
  (* --- metrics export ----------------------------------------------------- *)
  (match !sampler, !metrics_file with
  | Some smp, Some file ->
    Telemetry.Export.to_file ~sampler:smp (Telemetry.Sampler.registry smp) file;
    Fmt.pr "@.Metrics written to %s@." file;
    Fmt.pr "%s" (Telemetry.Dashboard.render ~sampler:smp (Telemetry.Sampler.registry smp))
  | _ -> ());
  (* --- BENCH_results.json / BENCH_history.jsonl ---------------------------- *)
  (let b = Buffer.create 1024 in
   let samples_json s =
     Printf.sprintf "{\"p50\":%d,\"p99\":%d,\"p999\":%d}"
       (Sim.Stats.Samples.median s)
       (Sim.Stats.Samples.percentile s 99.0)
       (Sim.Stats.Samples.percentile s 99.9)
   in
   Buffer.add_string b (Printf.sprintf "\"seed\":%Ld,\"quick\":%b," !seed !quick);
   Buffer.add_string b
     (Printf.sprintf "\"figures\":[%s],"
        (String.concat ","
           (List.map (fun f -> "\"" ^ f ^ "\"") (List.rev !figures_run))));
   Buffer.add_string b "\"replication_latency_ns\":";
   (match !mu_samples with
   | Some s -> Buffer.add_string b (samples_json s)
   | None -> Buffer.add_string b "null");
   Buffer.add_string b ",\"failover_ns\":";
   (match !failover_result with
   | Some r ->
     Buffer.add_string b
       (Printf.sprintf "{\"total\":%s,\"detection\":%s,\"switch\":%s}"
          (samples_json r.E.total) (samples_json r.E.detection) (samples_json r.E.switch))
   | None -> Buffer.add_string b "null");
   Buffer.add_string b ",\"recovery\":";
   (match !recovery_outcome with
   | Some o ->
     let rejoins =
       String.concat ","
         (List.map
            (fun (r : Mu.Smr.rejoin) ->
              Printf.sprintf
                "{\"pid\":%d,\"rejoin_time_to_parity_ns\":%d,\"catch_up_entries\":%d,\
                 \"pull_rounds\":%d,\"recheckpoints\":%d}"
                r.Mu.Smr.pid
                (r.Mu.Smr.parity_at - r.Mu.Smr.restarted_at)
                r.Mu.Smr.entries_pulled r.Mu.Smr.pull_rounds r.Mu.Smr.recheckpoints)
            o.Workload.Chaos.rejoins)
     in
     Buffer.add_string b
       (Printf.sprintf
          "{\"passed\":%b,\"rejoins\":[%s],\"shed\":%d,\"degraded_ns\":%d}"
          (Workload.Chaos.passed o) rejoins o.Workload.Chaos.shed
          o.Workload.Chaos.degraded_ns)
   | None -> Buffer.add_string b "null");
   Buffer.add_string b ",\"serving\":";
   (match !serving_points with
   | [] -> Buffer.add_string b "null"
   | points ->
     let cells =
       String.concat ","
         (List.map
            (fun (p : Serving.Surface.point) ->
              Printf.sprintf
                "{\"shards\":%d,\"batch\":%d,\"doorbell\":%d,\"offered_per_us\":%.3f,\
                 \"committed_per_us\":%.3f,\"shed\":%d,\"suppressed\":%d,\"p50_ns\":%d,\
                 \"p99_ns\":%d}"
                p.Serving.Surface.shards p.Serving.Surface.batch p.Serving.Surface.doorbell
                p.Serving.Surface.offered_per_us p.Serving.Surface.committed_per_us
                p.Serving.Surface.shed p.Serving.Surface.suppressed p.Serving.Surface.p50_ns
                p.Serving.Surface.p99_ns)
            points)
     in
     Buffer.add_string b (Printf.sprintf "{\"surface\":[%s]}" cells));
   Buffer.add_string b ",\"monitor\":";
   (match !monitor_log with
   | None -> Buffer.add_string b "null"
   | Some log ->
     (* Virtual-time alert edges: fully deterministic per seed. *)
     let entries =
       String.concat ","
         (List.map
            (fun (en : Monitor.Log.entry) ->
              Printf.sprintf "{\"at\":%d,\"window\":%d,\"rule\":\"%s\",\"edge\":\"%s\"}"
                en.at en.window en.rule
                (match en.edge with `Fire -> "fire" | `Clear -> "clear"))
            (Monitor.Log.entries log))
     in
     Buffer.add_string b
       (Printf.sprintf "{\"windows\":%d,\"edges\":%d,\"alerts\":[%s],\"firing\":[%s]}"
          !monitor_windows (Monitor.Log.length log) entries
          (String.concat ","
             (List.map (fun r -> "\"" ^ r ^ "\"") (Monitor.Log.firing log)))));
   Buffer.add_string b ",\"observability\":";
   (match !overhead_samples with
   | [] -> Buffer.add_string b "null"
   | samples ->
     (* Wall-clock fields are volatile — never byte-compared. *)
     let rows =
       String.concat ","
         (List.map
            (fun (s : Monitor.Overhead.sample) ->
              Printf.sprintf
                "{\"layer\":\"%s\",\"ops\":%d,\"ops_per_s\":%.0f,\
                 \"minor_words_per_op\":%.2f}"
                s.layer s.ops s.ops_per_s s.minor_words_per_op)
            samples)
     in
     Buffer.add_string b (Printf.sprintf "{\"layers\":[%s]}" rows));
   Buffer.add_string b ",\"engine_events_per_sec\":";
   (match !engine_events_per_sec with
   | Some r -> Buffer.add_string b (Printf.sprintf "%.0f" r)
   | None -> Buffer.add_string b "null");
   Buffer.add_string b ",\"engine_speed\":";
   (match !engine_speed_stats with
   | Some s ->
     (* Wall-clock fields are volatile — never byte-compared. The
        recorded heap baselines pin what the checks compare against. *)
     Buffer.add_string b
       (Printf.sprintf
          "{\"events_per_sec\":%.0f,\"minor_words_per_event\":%.2f,\
           \"queue_depth\":8192,\"heap_queue_ops_per_sec\":%.0f,\
           \"wheel_queue_ops_per_sec\":%.0f,\"queue_speedup\":%.2f,\
           \"heap_baseline_events_per_sec\":%.0f,\
           \"heap_baseline_minor_words_per_event\":%.1f}"
          s.es_rate s.es_words_per_event s.es_heap_ops s.es_wheel_ops
          (if s.es_heap_ops > 0.0 then s.es_wheel_ops /. s.es_heap_ops else 0.0)
          heap_baseline_events_per_sec heap_baseline_minor_words_per_event)
   | None -> Buffer.add_string b "null");
   Buffer.add_string b ",\"profile\":";
   (match !profile_result with
   | Some p ->
     (* span/idle/stacks/frames are virtual-time and deterministic per
        seed; selfcost rows are wall-clock and volatile. *)
     let selfcost =
       String.concat ","
         (List.map
            (fun (r : Monitor.Overhead.Attached.row) ->
              Printf.sprintf
                "{\"layer\":\"%s\",\"events\":%d,\"sampled\":%d,\"wall_s\":%.6f,\
                 \"minor_words\":%.0f}"
                r.Monitor.Overhead.Attached.r_layer r.Monitor.Overhead.Attached.r_events
                r.Monitor.Overhead.Attached.r_sampled r.Monitor.Overhead.Attached.r_wall_s
                r.Monitor.Overhead.Attached.r_minor_words)
            p.pr_selfcost)
     in
     Buffer.add_string b
       (Printf.sprintf
          "{\"mode\":\"failover\",\"rounds\":%d,\"span_ns\":%d,\"idle_ns\":%d,\
           \"stacks\":%d,\"frames\":%d,\"selfcost\":[%s]}"
          p.pr_rounds p.pr_span_ns p.pr_idle_ns p.pr_stacks p.pr_frames selfcost)
   | None -> Buffer.add_string b "null");
   Buffer.add_string b ",\"checks\":[";
   List.iteri
     (fun i (name, ok, detail) ->
       if i > 0 then Buffer.add_char b ',';
       Buffer.add_string b
         (Printf.sprintf "{\"name\":\"%s\",\"ok\":%b,\"detail\":\"%s\"}" name ok detail))
     (List.rev !checks);
   Buffer.add_string b "]";
   let core = Buffer.contents b in
   let oc = open_out !results_file in
   output_string oc ("{\"schema\":\"mu-bench-results/1\"," ^ core ^ "}\n");
   close_out oc;
   Fmt.pr "@.Results written to %s@." !results_file;
   (* Regression gate: diff this run against the baseline *before* the
      history append below makes this run the new last line. A missing
      or incomparable baseline fails the gate — a gate that silently
      passes on a typo'd path is no gate. *)
   (if !compare_flag then begin
      let baseline =
        match !compare_with with
        | Some f -> (
          (* Accept a results file or a history JSONL. *)
          match Profile.Compare.load_results f with
          | Ok j -> Ok j
          | Error _ -> Profile.Compare.load_last_history f)
        | None ->
          let hist = Option.value !history_file ~default:"BENCH_history.jsonl" in
          Profile.Compare.load_last_history hist
      in
      let outcome =
        match baseline with
        | Error msg -> Error (Printf.sprintf "baseline unavailable: %s" msg)
        | Ok baseline -> (
          match
            Faults.Json.of_string ("{\"schema\":\"mu-bench-results/1\"," ^ core ^ "}")
          with
          | Error msg -> Error (Printf.sprintf "current results unparseable: %s" msg)
          | Ok current -> Ok (Profile.Compare.run ~baseline ~current ()))
      in
      match outcome with
      | Error msg ->
        Fmt.pr "@.=== compare vs baseline ===@.%s@." msg;
        (match !compare_report with
        | Some f ->
          let oc = open_out f in
          output_string oc (msg ^ "\n");
          close_out oc
        | None -> ());
        exit_code := 1
      | Ok r ->
        Fmt.pr "@.=== compare vs baseline ===@.%a" Profile.Compare.pp r;
        (match !compare_report with
        | Some f ->
          let oc = open_out f in
          output_string oc (Profile.Compare.to_string r);
          close_out oc;
          Fmt.pr "Compare report written to %s@." f
        | None -> ());
        if (not r.Profile.Compare.comparable) || Profile.Compare.regressed r then
          exit_code := 1
    end);
   (* Append one line per run to the history log, keyed by git revision and a
      caller-supplied stamp (virtual or CI time — never sampled here, to keep
      same-input runs byte-identical). *)
   match !history_file with
   | None -> ()
   | Some file ->
     let oc = open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 file in
     output_string oc
       (Printf.sprintf "{\"schema\":\"mu-bench-results/1\",\"rev\":%S,\"stamp\":%S,%s}\n"
          !git_rev !stamp core);
     close_out oc;
     Fmt.pr "History appended to %s@." file);
  Fmt.pr "@.done.@.";
  exit !exit_code
