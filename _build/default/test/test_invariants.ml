(* Tests for the invariant checker and the metrics counters. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let with_smr ?(cfg = Mu.Config.default) f =
  let e = Util.engine () in
  let smr =
    Mu.Smr.create e Util.default_cal cfg ~make_app:(fun _ -> Mu.Smr.stateless_app Fun.id)
  in
  Mu.Smr.start smr;
  let result = ref None in
  Sim.Engine.spawn e ~name:"driver" (fun () ->
      result := Some (f e smr);
      Mu.Smr.stop smr;
      Sim.Engine.halt e);
  Sim.Engine.run ~until:120_000_000_000 e;
  match !result with Some r -> r | None -> Alcotest.fail "scenario did not finish"

let healthy_cluster_has_no_violations () =
  with_smr (fun e smr ->
      Mu.Smr.wait_live smr;
      for _ = 1 to 20 do
        ignore (Mu.Smr.submit smr (Bytes.make 32 'a'))
      done;
      Sim.Engine.sleep e 2_000_000;
      Alcotest.(check (list string))
        "clean" []
        (List.map
           (Fmt.str "%a" Mu.Invariants.pp_violation)
           (Mu.Invariants.check_all (Mu.Smr.replicas smr))))

let violations_after_failover_none () =
  with_smr (fun e smr ->
      Mu.Smr.wait_live smr;
      ignore (Mu.Smr.submit smr (Bytes.make 32 'a'));
      let r0 = Mu.Smr.replica smr 0 in
      Sim.Host.pause r0.Mu.Replica.host;
      ignore (Mu.Smr.submit smr (Bytes.make 32 'b'));
      Sim.Host.resume r0.Mu.Replica.host;
      Util.wait_for (fun () -> Mu.Replica.is_leader r0) e;
      ignore (Mu.Smr.submit smr (Bytes.make 32 'c'));
      Sim.Engine.sleep e 2_000_000;
      check_int "no violations through failover" 0
        (List.length (Mu.Invariants.check_all (Mu.Smr.replicas smr))))

let detector_catches_planted_disagreement () =
  with_smr (fun e smr ->
      Mu.Smr.wait_live smr;
      ignore (Mu.Smr.submit smr (Bytes.make 32 'a'));
      ignore (Mu.Smr.submit smr (Bytes.make 32 'a'));
      (* Corrupt a decided slot on one replica. *)
      let r2 = Mu.Smr.replica smr 2 in
      Mu.Log.write_slot_local r2.Mu.Replica.log 0 ~proposal:99L
        ~value:(Bytes.of_string "corrupt");
      Mu.Log.set_fuo r2.Mu.Replica.log (max 1 (Mu.Log.fuo r2.Mu.Replica.log));
      let vs = Mu.Invariants.agreement (Mu.Smr.replicas smr) in
      check "disagreement detected" true (vs <> []);
      ignore e)

let detector_catches_planted_hole () =
  with_smr (fun e smr ->
      Mu.Smr.wait_live smr;
      for _ = 1 to 3 do
        ignore (Mu.Smr.submit smr (Bytes.make 32 'a'))
      done;
      let leader = Option.get (Mu.Smr.leader smr) in
      Mu.Log.zero_slot_local leader.Mu.Replica.log (leader.Mu.Replica.applied + 0);
      (* Zeroing an unapplied decided slot is a hole... unless everything
         is already applied; force the range to be non-empty. *)
      if leader.Mu.Replica.applied < Mu.Log.fuo leader.Mu.Replica.log then
        check "hole detected" true (Mu.Invariants.no_holes (Mu.Smr.replicas smr) <> [])
      else begin
        leader.Mu.Replica.applied <- leader.Mu.Replica.applied - 1;
        Mu.Log.zero_slot_local leader.Mu.Replica.log leader.Mu.Replica.applied;
        check "hole detected" true (Mu.Invariants.no_holes (Mu.Smr.replicas smr) <> [])
      end;
      ignore e)

let detector_catches_double_writer () =
  with_smr (fun e smr ->
      Mu.Smr.wait_live smr;
      let r2 = Mu.Smr.replica smr 2 in
      List.iter
        (fun (p : Mu.Replica.peer) -> Rdma.Qp.set_access p.Mu.Replica.repl_qp Rdma.Verbs.access_rw)
        r2.Mu.Replica.peers;
      check "double writer detected" true
        (Mu.Invariants.single_writer (Mu.Smr.replicas smr) <> []);
      ignore e)

let metrics_count_activity () =
  with_smr (fun e smr ->
      Mu.Smr.wait_live smr;
      for _ = 1 to 10 do
        ignore (Mu.Smr.submit smr (Bytes.make 32 'm'))
      done;
      Sim.Engine.sleep e 2_000_000;
      let leader = Option.get (Mu.Smr.leader smr) in
      let m = leader.Mu.Replica.metrics in
      check "proposes counted" true (m.Mu.Metrics.proposes >= 10);
      check "commits counted" true (m.Mu.Metrics.commits >= 10);
      check "one prepare (then omitted)" true
        (m.Mu.Metrics.prepare_phases >= 1 && m.Mu.Metrics.prepare_phases < m.Mu.Metrics.commits);
      check "accept per commit" true (m.Mu.Metrics.accept_rounds >= m.Mu.Metrics.commits);
      check "permission request made" true (m.Mu.Metrics.permission_requests >= 1);
      check "fd reads running" true (m.Mu.Metrics.fd_reads > 100);
      let follower = Mu.Smr.replica smr 1 in
      check "grants at follower" true
        (follower.Mu.Replica.metrics.Mu.Metrics.permission_grants >= 1);
      check "applies at follower" true
        (follower.Mu.Replica.metrics.Mu.Metrics.entries_applied >= 10))

let metrics_abort_and_slow_path_counted () =
  with_smr (fun e smr ->
      Mu.Smr.wait_live smr;
      ignore (Mu.Smr.submit smr (Bytes.make 8 'x'));
      let r0 = Mu.Smr.replica smr 0 in
      (* Depose and restore the leader a few times to force aborts. *)
      for _ = 1 to 3 do
        Sim.Host.pause r0.Mu.Replica.host;
        ignore (Mu.Smr.submit smr (Bytes.make 8 'y'));
        Sim.Host.resume r0.Mu.Replica.host;
        Util.wait_for
          (fun () ->
            match Mu.Smr.leader smr with
            | Some r -> r.Mu.Replica.id = 0 && not r.Mu.Replica.need_new_followers
            | None -> false)
          e
      done;
      let totals =
        Mu.Metrics.total
          (Array.to_list (Mu.Smr.replicas smr)
          |> List.map (fun (r : Mu.Replica.t) -> r.Mu.Replica.metrics))
      in
      check "aborts happened" true (totals.Mu.Metrics.aborts >= 3);
      check "grants on each takeover" true (totals.Mu.Metrics.permission_grants >= 6);
      check "permission switches took a path" true
        (totals.Mu.Metrics.perm_fast_path + totals.Mu.Metrics.perm_slow_path > 0))

let suite =
  [
    ("healthy cluster clean", `Quick, healthy_cluster_has_no_violations);
    ("no violations through failover", `Quick, violations_after_failover_none);
    ("catches planted disagreement", `Quick, detector_catches_planted_disagreement);
    ("catches planted hole", `Quick, detector_catches_planted_hole);
    ("catches double writer", `Quick, detector_catches_double_writer);
    ("metrics count activity", `Quick, metrics_count_activity);
    ("metrics count aborts and slow path", `Quick, metrics_abort_and_slow_path_counted);
  ]
