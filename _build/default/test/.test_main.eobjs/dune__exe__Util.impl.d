test/util.ml: Alcotest Bytes Mu Option Printf Rdma Sim
