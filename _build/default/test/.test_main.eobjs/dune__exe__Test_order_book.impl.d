test/test_order_book.ml: Alcotest Apps List Order_book Sim
