test/test_sim.ml: Alcotest Fmt List Option Printf Sim Util
