test/test_properties.ml: Apps Array Bytes Char Fun Gen Hashtbl Int64 List Mu Option Printf QCheck QCheck_alcotest Rdma Sim String Util Workload
