test/test_invariants.ml: Alcotest Array Bytes Fmt Fun List Mu Option Rdma Sim Util
