test/test_permissions.ml: Alcotest Array Bytes Hashtbl Int64 List Mu Option Printf Rdma Sim Util
