test/test_rdma_layers.ml: Alcotest Bytes List Rdma Sim Util
