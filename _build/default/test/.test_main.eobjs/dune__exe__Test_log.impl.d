test/test_log.ml: Alcotest Bytes Char Mu Rdma Util
