test/test_election.ml: Alcotest Array Hashtbl Int64 Mu Printf Sim Util
