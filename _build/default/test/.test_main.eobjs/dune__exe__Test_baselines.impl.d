test/test_baselines.ml: Alcotest Array Baselines Bytes Char Int64 List Mu Printf Rdma Sim Util Workload
