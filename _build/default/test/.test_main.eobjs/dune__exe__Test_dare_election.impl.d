test/test_dare_election.ml: Alcotest Array Baselines Hashtbl Printf Sim Util
