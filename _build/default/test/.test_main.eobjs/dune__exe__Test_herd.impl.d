test/test_herd.ml: Alcotest Apps Array Bytes Fun Mu Printf Sim Util
