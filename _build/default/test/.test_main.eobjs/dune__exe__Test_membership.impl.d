test/test_membership.ml: Alcotest Apps Hashtbl List Mu Printf Sim Util
