test/test_smr.ml: Alcotest Array Bytes Fmt Fun Hashtbl List Mu Option Printf Sim Util
