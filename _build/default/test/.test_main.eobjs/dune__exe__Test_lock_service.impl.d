test/test_lock_service.ml: Alcotest Apps Bytes Fmt Fun List Lock_service Mu Printf Sim Util Workload
