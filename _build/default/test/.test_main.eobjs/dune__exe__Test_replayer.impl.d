test/test_replayer.ml: Alcotest Array Bytes Int64 List Mu Rdma Sim Util
