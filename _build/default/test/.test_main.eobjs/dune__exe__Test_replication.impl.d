test/test_replication.ml: Alcotest Array Bytes List Mu Option Printf Rdma Sim Util
