test/test_apps.ml: Alcotest Apps Bytes Exchange Kv_store List Mu Order_book Sim String Transport Util Workload
