test/test_workload.ml: Alcotest Apps Array Bytes Int64 List Mu Printf Sim Util Workload
