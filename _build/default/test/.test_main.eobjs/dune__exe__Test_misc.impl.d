test/test_misc.ml: Alcotest Array Baselines Fmt Fun Hashtbl Int64 List Mu Printf Rdma Sim String Util
