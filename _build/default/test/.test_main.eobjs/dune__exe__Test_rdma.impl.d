test/test_rdma.ml: Alcotest Array Bytes Int64 Printf Rdma Sim Util
