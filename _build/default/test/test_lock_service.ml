(* Tests for the replicated lock service, plus the persistent-log
   extension. *)

open Apps

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let acquire t c l = Lock_service.apply t (Lock_service.Acquire { client = c; lock = l })
let release t c l = Lock_service.apply t (Lock_service.Release { client = c; lock = l })
let holder_q t l = Lock_service.apply t (Lock_service.Holder { lock = l })

let free_lock_granted () =
  let t = Lock_service.create () in
  (match acquire t 1 "L" with
  | Lock_service.Granted { fence } -> check "fence positive" true (fence > 0)
  | _ -> Alcotest.fail "expected grant");
  check "held" true (Lock_service.holder t "L" <> None)

let reacquire_is_idempotent () =
  let t = Lock_service.create () in
  let f1 = match acquire t 1 "L" with Lock_service.Granted { fence } -> fence | _ -> -1 in
  let f2 = match acquire t 1 "L" with Lock_service.Granted { fence } -> fence | _ -> -1 in
  check_int "same fence on re-acquire" f1 f2

let contender_queues_fifo () =
  let t = Lock_service.create () in
  ignore (acquire t 1 "L");
  check "2 queued at 1" true (acquire t 2 "L" = Lock_service.Queued { position = 1 });
  check "3 queued at 2" true (acquire t 3 "L" = Lock_service.Queued { position = 2 });
  check "re-queue keeps position" true (acquire t 2 "L" = Lock_service.Queued { position = 1 });
  ignore (release t 1 "L");
  (* FIFO hand-off: 2 now holds. *)
  (match Lock_service.holder t "L" with
  | Some (2, _) -> ()
  | _ -> Alcotest.fail "lock should pass to client 2");
  check_int "queue shrank" 1 (Lock_service.queue_length t "L")

let fences_strictly_increase () =
  let t = Lock_service.create () in
  let fence_of = function Lock_service.Granted { fence } -> fence | _ -> -1 in
  let f1 = fence_of (acquire t 1 "L") in
  ignore (release t 1 "L");
  let f2 = fence_of (acquire t 2 "L") in
  ignore (release t 2 "L");
  let f3 = fence_of (acquire t 1 "L") in
  check "monotonic" true (f1 < f2 && f2 < f3)

let release_by_non_holder_rejected () =
  let t = Lock_service.create () in
  ignore (acquire t 1 "L");
  check "not held" true (release t 2 "L" = Lock_service.Not_held);
  check "free lock release rejected" true (release t 3 "M" = Lock_service.Not_held)

let holder_query () =
  let t = Lock_service.create () in
  check "free" true (holder_q t "L" = Lock_service.Free);
  ignore (acquire t 5 "L");
  match holder_q t "L" with
  | Lock_service.Held_by { client = 5; _ } -> ()
  | _ -> Alcotest.fail "expected held by 5"

let independent_locks () =
  let t = Lock_service.create () in
  ignore (acquire t 1 "A");
  (match acquire t 2 "B" with
  | Lock_service.Granted _ -> ()
  | _ -> Alcotest.fail "distinct locks are independent");
  check_int "two held" 2 (Lock_service.locks_held t)

let codec_roundtrip () =
  List.iter
    (fun cmd ->
      match Lock_service.decode_command (Lock_service.encode_command ~client:9 ~req_id:4 cmd) with
      | Some (9, 4, cmd') -> check "roundtrip" true (cmd = cmd')
      | _ -> Alcotest.fail "decode failed")
    [
      Lock_service.Acquire { client = 3; lock = "a-lock" };
      Lock_service.Release { client = 4; lock = "" };
      Lock_service.Holder { lock = "x" };
    ];
  List.iter
    (fun r ->
      check "reply roundtrip" true
        (Lock_service.decode_reply (Lock_service.encode_reply r) = Some r))
    [
      Lock_service.Granted { fence = 7 };
      Lock_service.Queued { position = 2 };
      Lock_service.Released;
      Lock_service.Not_held;
      Lock_service.Held_by { client = 1; fence = 9 };
      Lock_service.Free;
    ]

let snapshot_restore () =
  let t = Lock_service.create () in
  ignore (acquire t 1 "L");
  ignore (acquire t 2 "L");
  ignore (acquire t 3 "L");
  ignore (acquire t 4 "M");
  let t' = Lock_service.restore (Lock_service.snapshot t) in
  check "owner preserved" true (Lock_service.holder t' "L" = Lock_service.holder t "L");
  check_int "queue preserved" 2 (Lock_service.queue_length t' "L");
  (* Hand-off still works after restore, with a fresh (higher) fence. *)
  ignore (release t' 1 "L");
  match Lock_service.holder t' "L" with
  | Some (2, f) ->
    let original_fence = match Lock_service.holder t "L" with Some (_, f) -> f | None -> -1 in
    check "fence advanced past snapshot" true (f > original_fence)
  | _ -> Alcotest.fail "hand-off after restore failed"

(* --- replicated, with fail-over ------------------------------------------- *)

let replicated_lock_service_failover () =
  let e = Util.engine () in
  let smr =
    Mu.Smr.create e Util.default_cal Mu.Config.default ~make_app:(fun _ ->
        Lock_service.smr_app ())
  in
  Mu.Smr.start smr;
  let result = ref None in
  Sim.Engine.spawn e ~name:"driver" (fun () ->
      Mu.Smr.wait_live smr;
      let call client req_id cmd =
        Lock_service.decode_reply
          (Mu.Smr.submit smr (Lock_service.encode_command ~client ~req_id cmd))
      in
      (match call 1 1 (Lock_service.Acquire { client = 1; lock = "leader-election" }) with
      | Some (Lock_service.Granted _) -> ()
      | _ -> Alcotest.fail "client 1 should acquire");
      ignore (call 2 1 (Lock_service.Acquire { client = 2; lock = "leader-election" }));
      (* Kill the SMR leader; the lock state must survive. *)
      let r0 = Mu.Smr.replica smr 0 in
      Sim.Host.pause r0.Mu.Replica.host;
      (match call 3 1 (Lock_service.Holder { lock = "leader-election" }) with
      | Some (Lock_service.Held_by { client = 1; _ }) -> ()
      | _ -> Alcotest.fail "lock lost across failover");
      (* Client 1 releases; client 2 must inherit, still during failover. *)
      (match call 1 2 (Lock_service.Release { client = 1; lock = "leader-election" }) with
      | Some Lock_service.Released -> ()
      | _ -> Alcotest.fail "release failed");
      (match call 3 2 (Lock_service.Holder { lock = "leader-election" }) with
      | Some (Lock_service.Held_by { client = 2; _ }) -> ()
      | _ -> Alcotest.fail "hand-off lost across failover");
      Sim.Host.resume r0.Mu.Replica.host;
      result := Some true;
      Mu.Smr.stop smr;
      Sim.Engine.halt e);
  Sim.Engine.run ~until:120_000_000_000 e;
  check "completed" true (!result = Some true)

(* --- persistent log (the paper's anticipated extension) --------------------- *)

let persistent_log_costs_flush () =
  let base =
    Workload.Experiments.mu_latency_persistence
      { Workload.Experiments.default_setup with seed = 5L }
      ~samples:3_000 ~persistent:false
  in
  let durable =
    Workload.Experiments.mu_latency_persistence
      { Workload.Experiments.default_setup with seed = 5L }
      ~samples:3_000 ~persistent:true
  in
  let b = Sim.Stats.Samples.median base and d = Sim.Stats.Samples.median durable in
  check
    (Printf.sprintf "durable costs one flush (%d vs %d ns)" b d)
    true
    (d > b + 200 && d < b + 1_500)

let persistent_cluster_correct () =
  let cfg = { Mu.Config.default with Mu.Config.persistent_log = true } in
  let e = Util.engine () in
  let smr =
    Mu.Smr.create e Util.default_cal cfg ~make_app:(fun _ -> Mu.Smr.stateless_app Fun.id)
  in
  Mu.Smr.start smr;
  Sim.Engine.spawn e ~name:"driver" (fun () ->
      Mu.Smr.wait_live smr;
      for i = 1 to 10 do
        ignore (Mu.Smr.submit smr (Bytes.of_string (string_of_int i)))
      done;
      Sim.Engine.sleep e 2_000_000;
      Alcotest.(check (list string))
        "invariants hold" []
        (List.map
           (Fmt.str "%a" Mu.Invariants.pp_violation)
           (Mu.Invariants.check_all (Mu.Smr.replicas smr)));
      Mu.Smr.stop smr;
      Sim.Engine.halt e);
  Sim.Engine.run ~until:120_000_000_000 e

let suite =
  [
    ("free lock granted", `Quick, free_lock_granted);
    ("reacquire idempotent", `Quick, reacquire_is_idempotent);
    ("contenders queue fifo", `Quick, contender_queues_fifo);
    ("fences strictly increase", `Quick, fences_strictly_increase);
    ("release by non-holder rejected", `Quick, release_by_non_holder_rejected);
    ("holder query", `Quick, holder_query);
    ("independent locks", `Quick, independent_locks);
    ("codec roundtrip", `Quick, codec_roundtrip);
    ("snapshot/restore", `Quick, snapshot_restore);
    ("replicated lock service failover", `Quick, replicated_lock_service_failover);
    ("persistent log costs flush", `Quick, persistent_log_costs_flush);
    ("persistent cluster correct", `Quick, persistent_cluster_correct);
  ]
