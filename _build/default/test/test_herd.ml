(* Tests for the executable HERD-style server, standalone and composed
   with Mu replication as in Fig. 1. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let kv_handler () =
  let store = Apps.Kv_store.create () in
  fun payload ->
    match Apps.Kv_store.decode_command payload with
    | Some (client, req_id, cmd) ->
      Apps.Kv_store.encode_reply (Apps.Kv_store.apply_dedup store ~client ~req_id cmd)
    | None -> Bytes.empty

let with_sim f =
  let e = Util.engine () in
  let result = ref None in
  Sim.Engine.spawn e ~name:"driver" (fun () ->
      result := Some (f e);
      Sim.Engine.halt e);
  Sim.Engine.run ~until:120_000_000_000 e;
  match !result with Some r -> r | None -> Alcotest.fail "did not finish"

let rpc_roundtrip () =
  with_sim (fun e ->
      let srv_host = Util.host e ~id:10 in
      let srv = Apps.Herd.server e Util.default_cal ~host:srv_host ~clients:2 ~handler:(kv_handler ()) in
      let cl_host = Util.host e ~id:11 in
      let cl = Apps.Herd.connect srv ~id:0 ~host:cl_host in
      let put =
        Apps.Herd.call cl
          (Apps.Kv_store.encode_command ~client:1 ~req_id:1
             (Apps.Kv_store.Put { key = "k"; value = "v" }))
      in
      check "stored" true (Apps.Kv_store.decode_reply put = Some Apps.Kv_store.Stored);
      let got =
        Apps.Herd.call cl
          (Apps.Kv_store.encode_command ~client:1 ~req_id:2 (Apps.Kv_store.Get { key = "k" }))
      in
      check "value back" true
        (Apps.Kv_store.decode_reply got = Some (Apps.Kv_store.Value "v")))

let rpc_latency_is_microseconds () =
  with_sim (fun e ->
      let srv_host = Util.host e ~id:10 in
      let srv = Apps.Herd.server e Util.default_cal ~host:srv_host ~clients:1 ~handler:Fun.id in
      let cl = Apps.Herd.connect srv ~id:0 ~host:(Util.host e ~id:11) in
      let s = Sim.Stats.Samples.create () in
      for _ = 1 to 500 do
        let t0 = Sim.Engine.now e in
        ignore (Apps.Herd.call cl (Bytes.make 50 'h'));
        Sim.Stats.Samples.add s (Sim.Engine.now e - t0)
      done;
      let m = Sim.Stats.Samples.median s in
      (* The paper's HERD: ~2.25 us client-to-client. *)
      check (Printf.sprintf "~2 us (%dns)" m) true (m > 1_200 && m < 3_200))

let concurrent_clients_isolated () =
  with_sim (fun e ->
      let srv_host = Util.host e ~id:10 in
      let srv = Apps.Herd.server e Util.default_cal ~host:srv_host ~clients:3 ~handler:Fun.id in
      let results = Array.make 3 "" in
      let done_count = ref 0 in
      for i = 0 to 2 do
        let cl = Apps.Herd.connect srv ~id:i ~host:(Util.host e ~id:(20 + i)) in
        Sim.Engine.spawn e ~name:(Printf.sprintf "cl%d" i) (fun () ->
            for k = 1 to 20 do
              let payload = Bytes.of_string (Printf.sprintf "c%d-%d" i k) in
              let r = Apps.Herd.call cl payload in
              if not (Bytes.equal r payload) then
                Alcotest.fail "response crossed between clients";
              results.(i) <- Bytes.to_string r
            done;
            incr done_count)
      done;
      Util.wait_for (fun () -> !done_count = 3) e;
      Array.iteri
        (fun i r -> check_int "last echo" 0 (compare r (Printf.sprintf "c%d-20" i)))
        results)

let oversized_request_rejected () =
  with_sim (fun e ->
      let srv_host = Util.host e ~id:10 in
      let srv = Apps.Herd.server e Util.default_cal ~host:srv_host ~clients:1 ~handler:Fun.id in
      let cl = Apps.Herd.connect srv ~id:0 ~host:(Util.host e ~id:11) in
      check "raises" true
        (try
           ignore (Apps.Herd.call cl (Bytes.make 1_000 'x'));
           false
         with Invalid_argument _ -> true))

(* HERD replicated with Mu, composed as in Fig. 1: the server captures the
   request, proposes it, and only then executes and responds. *)
let herd_over_mu () =
  let e = Util.engine () in
  let smr = Util.mu_cluster e in
  let result = ref None in
  Sim.Engine.spawn e ~name:"driver" (fun () ->
      let leader = Util.leader_of smr e in
      (* Establish leadership first. *)
      let established = Sim.Engine.Ivar.create e in
      Sim.Host.spawn leader.Mu.Replica.host ~name:"establish" (fun () ->
          (try ignore (Mu.Replication.propose leader (Bytes.of_string "boot"))
           with Mu.Replication.Aborted _ -> ());
          Sim.Engine.Ivar.fill established ());
      Sim.Engine.Ivar.read established;
      let store = Apps.Kv_store.create () in
      let handler payload =
        (* Capture-replicate-execute on the leader host (Fig. 1). *)
        (try ignore (Mu.Replication.propose leader payload)
         with Mu.Replication.Aborted _ -> ());
        match Apps.Kv_store.decode_command payload with
        | Some (client, req_id, cmd) ->
          Apps.Kv_store.encode_reply (Apps.Kv_store.apply_dedup store ~client ~req_id cmd)
        | None -> Bytes.empty
      in
      let srv =
        Apps.Herd.server e Util.default_cal ~host:leader.Mu.Replica.host ~clients:1 ~handler
      in
      let cl = Apps.Herd.connect srv ~id:0 ~host:(Util.host e ~id:30) in
      let s = Sim.Stats.Samples.create () in
      for i = 1 to 300 do
        let t0 = Sim.Engine.now e in
        ignore
          (Apps.Herd.call cl
             (Apps.Kv_store.encode_command ~client:1 ~req_id:i
                (Apps.Kv_store.Put { key = string_of_int (i mod 10); value = "v" })));
        Sim.Stats.Samples.add s (Sim.Engine.now e - t0)
      done;
      result := Some (Sim.Stats.Samples.median s);
      Mu.Smr.stop smr;
      Sim.Engine.halt e);
  Sim.Engine.run ~until:120_000_000_000 e;
  match !result with
  | Some m ->
    (* Paper: HERD 2.25 us + Mu 1.34 us ≈ 3.6 us. *)
    check (Printf.sprintf "HERD+Mu ~3.5-4.5us (%dns)" m) true (m > 2_800 && m < 4_800)
  | None -> Alcotest.fail "did not finish"

(* --- eRPC layer -------------------------------------------------------- *)

let erpc_roundtrip () =
  with_sim (fun e ->
      let srv_host = Util.host e ~id:10 in
      let srv =
        Apps.Erpc.server e Util.default_cal ~host:srv_host
          ~handler:(fun req -> Bytes.cat (Bytes.of_string "re:") req)
      in
      let cl = Apps.Erpc.connect srv ~host:(Util.host e ~id:11) in
      Alcotest.(check string) "echoed" "re:ping" (Bytes.to_string (Apps.Erpc.call cl (Bytes.of_string "ping")));
      Alcotest.(check string) "second call" "re:pong" (Bytes.to_string (Apps.Erpc.call cl (Bytes.of_string "pong"))))

let erpc_multiple_clients () =
  with_sim (fun e ->
      let srv_host = Util.host e ~id:10 in
      let srv = Apps.Erpc.server e Util.default_cal ~host:srv_host ~handler:Fun.id in
      let done_count = ref 0 in
      for i = 0 to 2 do
        let cl = Apps.Erpc.connect srv ~host:(Util.host e ~id:(20 + i)) in
        Sim.Engine.spawn e ~name:(Printf.sprintf "c%d" i) (fun () ->
            for k = 1 to 15 do
              let p = Bytes.of_string (Printf.sprintf "m%d-%d" i k) in
              if not (Bytes.equal (Apps.Erpc.call cl p) p) then
                Alcotest.fail "responses crossed";
              ignore k
            done;
            incr done_count)
      done;
      Util.wait_for (fun () -> !done_count = 3) e;
      check_int "all clients done" 3 !done_count)

let erpc_latency_has_heavy_tail () =
  with_sim (fun e ->
      let srv_host = Util.host e ~id:10 in
      let srv = Apps.Erpc.server e Util.default_cal ~host:srv_host ~handler:Fun.id in
      let cl = Apps.Erpc.connect srv ~host:(Util.host e ~id:11) in
      let s = Sim.Stats.Samples.create () in
      for _ = 1 to 1_500 do
        let t0 = Sim.Engine.now e in
        ignore (Apps.Erpc.call cl (Bytes.make 32 'e'));
        Sim.Stats.Samples.add s (Sim.Engine.now e - t0)
      done;
      let med = Sim.Stats.Samples.median s and p99 = Sim.Stats.Samples.percentile s 99.0 in
      (* The paper's Liquibook latency is wide even unreplicated (§7.2);
         the eRPC layer carries that tail. *)
      check (Printf.sprintf "p99 %.1fx median" (float_of_int p99 /. float_of_int med)) true
        (p99 > 2 * med))

let erpc_oversized_rejected () =
  with_sim (fun e ->
      let srv_host = Util.host e ~id:10 in
      let srv = Apps.Erpc.server e Util.default_cal ~host:srv_host ~handler:Fun.id in
      let cl = Apps.Erpc.connect srv ~host:(Util.host e ~id:11) in
      check "raises" true
        (try
           ignore (Apps.Erpc.call cl (Bytes.make 4_096 'x'));
           false
         with Invalid_argument _ -> true))

let suite =
  [
    ("rpc roundtrip", `Quick, rpc_roundtrip);
    ("rpc latency ~2us", `Quick, rpc_latency_is_microseconds);
    ("concurrent clients isolated", `Quick, concurrent_clients_isolated);
    ("oversized request rejected", `Quick, oversized_request_rejected);
    ("herd over mu (Fig. 1 composition)", `Quick, herd_over_mu);
    ("erpc roundtrip", `Quick, erpc_roundtrip);
    ("erpc multiple clients", `Quick, erpc_multiple_clients);
    ("erpc latency has heavy tail", `Quick, erpc_latency_has_heavy_tail);
    ("erpc oversized rejected", `Quick, erpc_oversized_rejected);
  ]
