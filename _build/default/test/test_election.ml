(* Tests for the background plane: pull-score leader election (§5.1). *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let with_cluster ?(cfg = Mu.Config.default) f =
  let e = Util.engine () in
  let smr = Util.mu_cluster ~cfg e in
  let result = ref None in
  Sim.Engine.spawn e ~name:"driver" (fun () ->
      result := Some (f e smr);
      Mu.Smr.stop smr;
      Sim.Engine.halt e);
  Sim.Engine.run ~until:60_000_000_000 e;
  match !result with Some r -> r | None -> Alcotest.fail "scenario did not finish"

let lowest_id_becomes_leader () =
  with_cluster (fun e smr ->
      let leader = Util.leader_of smr e in
      check_int "replica 0 leads" 0 leader.Mu.Replica.id;
      Array.iter
        (fun (r : Mu.Replica.t) ->
          check_int
            (Printf.sprintf "replica %d agrees" r.Mu.Replica.id)
            0 r.Mu.Replica.leader_estimate)
        (Mu.Smr.replicas smr))

let heartbeats_advance () =
  with_cluster (fun e smr ->
      let r0 = Mu.Smr.replica smr 0 in
      let v0 = Mu.Election.read_own_heartbeat r0 in
      Sim.Engine.sleep e 1_000_000;
      let v1 = Mu.Election.read_own_heartbeat r0 in
      check "counter moved" true (Int64.compare v1 v0 > 0))

let scores_saturate_when_healthy () =
  with_cluster (fun e smr ->
      Sim.Engine.sleep e 3_000_000;
      Array.iter
        (fun (r : Mu.Replica.t) ->
          Hashtbl.iter
            (fun peer score ->
              check
                (Printf.sprintf "replica %d's score for %d at max" r.Mu.Replica.id peer)
                true
                (score = Util.default_cal.Sim.Calibration.score_max))
            r.Mu.Replica.scores)
        (Mu.Smr.replicas smr))

let paused_leader_detected () =
  with_cluster (fun e smr ->
      let r0 = Mu.Smr.replica smr 0 and r1 = Mu.Smr.replica smr 1 in
      Sim.Engine.sleep e 2_000_000;
      let t0 = Sim.Engine.now e in
      Sim.Host.pause r0.Mu.Replica.host;
      Util.wait_for (fun () -> not (Mu.Election.is_alive r1 0)) e;
      let dt = Sim.Engine.now e - t0 in
      (* 14 score decrements at the 40 us read interval ≈ 600 us. *)
      check "detection near 600us" true (dt > 450_000 && dt < 900_000);
      (* The role fiber runs on its own cadence; give it one interval. *)
      Util.wait_for (fun () -> r1.Mu.Replica.leader_estimate = 1) e;
      check_int "r1 takes over" 1 r1.Mu.Replica.leader_estimate)

let stopped_process_detected () =
  with_cluster (fun e smr ->
      let r0 = Mu.Smr.replica smr 0 and r1 = Mu.Smr.replica smr 1 in
      Sim.Engine.sleep e 2_000_000;
      Sim.Host.stop_process r0.Mu.Replica.host;
      Util.wait_for (fun () -> Mu.Replica.is_leader r1) e;
      check_int "r1 leads" 1 r1.Mu.Replica.leader_estimate)

let dead_host_detected () =
  with_cluster (fun e smr ->
      let r0 = Mu.Smr.replica smr 0 and r1 = Mu.Smr.replica smr 1 in
      Sim.Engine.sleep e 2_000_000;
      Sim.Host.kill_host r0.Mu.Replica.host;
      (* Reads now time out (the longer RDMA timeout, §5.1); detection is
         slower but still bounded. *)
      Util.wait_for (fun () -> Mu.Replica.is_leader r1) e;
      check "r1 eventually leads" true (Mu.Replica.is_leader r1))

let recovered_leader_reclaims () =
  with_cluster (fun e smr ->
      let r0 = Mu.Smr.replica smr 0 and r1 = Mu.Smr.replica smr 1 in
      Sim.Engine.sleep e 2_000_000;
      Sim.Host.pause r0.Mu.Replica.host;
      Util.wait_for (fun () -> Mu.Replica.is_leader r1) e;
      Sim.Host.resume r0.Mu.Replica.host;
      (* Hysteresis: r0 must climb back above the recovery threshold, then
         every replica flips back to the lowest id. *)
      Util.wait_for
        (fun () -> Mu.Replica.is_leader r0 && not (Mu.Replica.is_leader r1))
        e;
      check_int "estimates back to 0" 0 r1.Mu.Replica.leader_estimate)

let hysteresis_no_flapping () =
  (* A replica paused briefly (shorter than the detection window) must not
     be declared failed at all. *)
  with_cluster (fun e smr ->
      let r0 = Mu.Smr.replica smr 0 and r1 = Mu.Smr.replica smr 1 in
      Sim.Engine.sleep e 2_000_000;
      Sim.Host.pause r0.Mu.Replica.host;
      Sim.Engine.sleep e 200_000;
      (* < 14 reads *)
      Sim.Host.resume r0.Mu.Replica.host;
      Sim.Engine.sleep e 2_000_000;
      check "r0 never lost leadership" true (Mu.Replica.is_leader r0);
      check "r1 never took over" false (Mu.Replica.is_leader r1))

let role_generation_counts_changes () =
  with_cluster (fun e smr ->
      let r0 = Mu.Smr.replica smr 0 and r1 = Mu.Smr.replica smr 1 in
      Sim.Engine.sleep e 2_000_000;
      let g1 = r1.Mu.Replica.role_generation in
      Sim.Host.pause r0.Mu.Replica.host;
      Util.wait_for (fun () -> Mu.Replica.is_leader r1) e;
      Sim.Host.resume r0.Mu.Replica.host;
      Util.wait_for (fun () -> not (Mu.Replica.is_leader r1)) e;
      check "two role changes at r1" true (r1.Mu.Replica.role_generation >= g1 + 2))

let fate_sharing_stops_heartbeat () =
  let cfg =
    { Mu.Config.default with Mu.Config.fate_sharing = true; fate_sharing_stuck_after = 500_000 }
  in
  with_cluster ~cfg (fun e smr ->
      let r0 = Mu.Smr.replica smr 0 in
      Sim.Engine.sleep e 2_000_000;
      (* Wedge the replication plane: pretend a propose has been stuck. *)
      r0.Mu.Replica.propose_started_at <- Some (Sim.Engine.now e - 1_000_000);
      Sim.Engine.sleep e 1_000_000;
      let v0 = Mu.Election.read_own_heartbeat r0 in
      Sim.Engine.sleep e 1_000_000;
      let v1 = Mu.Election.read_own_heartbeat r0 in
      check "heartbeat frozen while stuck" true (Int64.equal v0 v1);
      (* Other replicas depose the wedged leader. *)
      let r1 = Mu.Smr.replica smr 1 in
      Util.wait_for (fun () -> Mu.Replica.is_leader r1) e;
      r0.Mu.Replica.propose_started_at <- None;
      Sim.Engine.sleep e 1_000_000;
      let v2 = Mu.Election.read_own_heartbeat r0 in
      Sim.Engine.sleep e 1_000_000;
      check "heartbeat resumes when unstuck" true
        (Int64.compare (Mu.Election.read_own_heartbeat r0) v2 > 0))

let without_fate_sharing_stuck_leader_keeps_beating () =
  with_cluster (fun e smr ->
      let r0 = Mu.Smr.replica smr 0 in
      Sim.Engine.sleep e 2_000_000;
      r0.Mu.Replica.propose_started_at <- Some 0;
      Sim.Engine.sleep e 2_000_000;
      let v0 = Mu.Election.read_own_heartbeat r0 in
      Sim.Engine.sleep e 1_000_000;
      check "still beating (flag off)" true
        (Int64.compare (Mu.Election.read_own_heartbeat r0) v0 > 0))

let suite =
  [
    ("lowest id becomes leader", `Quick, lowest_id_becomes_leader);
    ("heartbeats advance", `Quick, heartbeats_advance);
    ("scores saturate when healthy", `Quick, scores_saturate_when_healthy);
    ("paused leader detected ~600us", `Quick, paused_leader_detected);
    ("stopped process detected", `Quick, stopped_process_detected);
    ("dead host detected", `Quick, dead_host_detected);
    ("recovered leader reclaims", `Quick, recovered_leader_reclaims);
    ("hysteresis: no flapping on short pause", `Quick, hysteresis_no_flapping);
    ("role generation counts changes", `Quick, role_generation_counts_changes);
    ("fate sharing stops heartbeat", `Quick, fate_sharing_stops_heartbeat);
    ("no fate sharing: stuck leader beats", `Quick, without_fate_sharing_stuck_leader_keeps_beating);
  ]
